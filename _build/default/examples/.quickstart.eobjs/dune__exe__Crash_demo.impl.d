examples/crash_demo.ml: Format Int64 List Machine Pmapps Pmem String
