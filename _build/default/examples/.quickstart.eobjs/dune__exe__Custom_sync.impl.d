examples/custom_sync.ml: Format Hawkset Int64 Machine Pmem String
