examples/custom_sync.mli:
