examples/detector_comparison.ml: Array Baselines Harness Hawkset List Machine Pmapps Pmem Workload
