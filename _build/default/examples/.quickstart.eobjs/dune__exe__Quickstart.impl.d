examples/quickstart.ml: Baselines Format Hawkset Int64 Machine Pmem Trace
