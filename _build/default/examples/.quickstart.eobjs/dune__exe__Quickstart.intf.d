examples/quickstart.mli:
