examples/witness_replay.ml: Array Format Hawkset List Machine Pmem String Trace
