examples/witness_replay.mli:
