(* Crash demo: Fast-Fair bug #1 actually manifesting.

   HawkSet *predicts* the race from a single execution; this example
   shows the damage is real. We run concurrent inserts against the
   Fast-Fair B+-tree, cut the power (crash the machine) at a scheduling
   point, recover from the persistent image, and compare what survived
   with what the application acknowledged. Inserts routed through a
   published-but-unpersisted sibling pointer are stranded in an
   unreachable node: durably written, silently lost.

     dune exec examples/crash_demo.exe *)

module S = Machine.Sched

let try_crash ~seed ~crash_after =
  let heap = Pmem.Heap.create ~size:(16 * 1024 * 1024) () in
  let meta = ref 0 in
  let acked = ref [] in
  let outcome =
    S.run ~seed ~crash_after_events:crash_after ~heap (fun ctx ->
        let tree = Pmapps.Fast_fair.create ctx in
        meta := Pmapps.Fast_fair.meta_addr tree;
        let worker lo =
          S.spawn ctx (fun ctx ->
              for k = 0 to 199 do
                let key = lo + (2 * k) in
                Pmapps.Fast_fair.insert tree ctx ~key ~value:(Int64.of_int key);
                (* The insert returned: the application would acknowledge
                   it to the client here. *)
                acked := key :: !acked
              done)
        in
        let w1 = worker 1 and w2 = worker 2 in
        S.join ctx w1;
        S.join ctx w2)
  in
  if outcome.S.outcome <> S.Crashed then None
  else begin
    (* Power is gone: only the persistent image survives. *)
    let post_crash = Pmem.Heap.of_image (Pmem.Heap.crash_image heap) in
    let lost = ref [] in
    ignore
      (S.run ~heap:post_crash (fun ctx ->
           let tree = Pmapps.Fast_fair.recover ctx ~meta_addr:!meta in
           let survived = Pmapps.Fast_fair.keys tree ctx in
           List.iter
             (fun k -> if not (List.mem k survived) then lost := k :: !lost)
             !acked));
    Some (List.length !acked, List.sort compare !lost)
  end

let () =
  (* Hunt across crash points until an acknowledged insert is lost. *)
  let rec hunt seed crash_after tries =
    if tries = 0 then
      print_endline
        "(no acknowledged insert was lost at the crash points tried)"
    else
      match try_crash ~seed ~crash_after with
      | Some (acked, (_ :: _ as lost)) ->
          Format.printf
            "crash after %d events: %d inserts acknowledged, %d LOST:@.  %s@.@."
            crash_after acked (List.length lost)
            (String.concat ", " (List.map string_of_int lost));
          Format.printf
            "Every lost key was acknowledged to the client before the@.\
             crash — it sat in a node whose sibling pointer was visible@.\
             in cache but not yet flushed (bug #1, Table 2).@."
      | Some (_, []) | None ->
          hunt (seed + 1) (crash_after + 977) (tries - 1)
  in
  hunt 1 2500 400
