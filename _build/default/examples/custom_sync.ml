(* Custom synchronization primitives and the configuration file (§4,
   §5.5, A.5 "Notes on Reusability").

   HawkSet instruments pthread primitives out of the box. An application
   using its own CAS-based lock is still *correct*, but the instrumenter
   cannot see its critical sections — every protected access looks
   unprotected and floods the report with false races. Listing the
   primitive in a one-line configuration file fixes it: no source
   changes, no drivers, no annotations.

     dune exec examples/custom_sync.exe *)

module S = Machine.Sched

(* An application protecting a PM counter with a custom spinlock. *)
let app ctx =
  let data = S.alloc ctx 8 in
  let lock = Machine.Spinlock.create ~primitive:"my_cas_lock" ctx in
  let work ctx =
    for _ = 1 to 10 do
      Machine.Spinlock.lock lock ctx __POS__;
      let v = S.load_i64 ctx __POS__ data in
      S.store_i64 ctx __POS__ data (Int64.add v 1L);
      S.persist ctx __POS__ data 8;
      Machine.Spinlock.unlock lock ctx __POS__
    done
  in
  let a = S.spawn ctx work and b = S.spawn ctx work in
  S.join ctx a;
  S.join ctx b

let run sync_config =
  let heap = Pmem.Heap.create ~size:(1 lsl 20) () in
  let report = S.run ~seed:3 ~sync_config ~heap app in
  Hawkset.Report.count (Hawkset.Pipeline.races report.S.trace)

let () =
  (* 1. Default configuration: the custom lock is invisible. *)
  let without = run Machine.Sync_config.builtin in
  Format.printf
    "without configuration: %d race reports (the critical sections are@.\
     invisible, so correctly-synchronized accesses look racy)@.@."
    without;

  (* 2. The §4-style configuration file: one line per primitive. *)
  let config_file = "lock my_cas_lock\n" in
  let with_config = run (Machine.Sync_config.of_string config_file) in
  Format.printf
    "with the one-line configuration %S: %d race reports@.@."
    (String.trim config_file) with_config;
  assert (without > 0);
  assert (with_config = 0);
  print_endline
    "The configuration names the acquire/release functions; it can be\n\
     written once per synchronization library and reused by every\n\
     application built on it (Section 4)."
