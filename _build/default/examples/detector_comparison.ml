(* Detector comparison on one application.

   Runs WIPE (whose three bugs all have the "persist outside the critical
   section" shape of Figure 1c) once, then lets four detectors loose:

   - HawkSet: PM-aware lockset analysis over the trace (one execution);
   - Eraser: traditional lockset analysis over the same trace;
   - PMRace: observation-based fuzzing (many executions with delay
     injection, reports only directly-witnessed inconsistencies);
   - Durinn: serialized candidate extraction + targeted adversarial
     interleavings (also needs direct observation).

     dune exec examples/detector_comparison.exe *)

module S = Machine.Sched

let () =
  let ops = 800 in
  (* One instrumented execution, shared by the trace-based detectors. *)
  let report = Pmapps.Driver.run_kv_ycsb (module Pmapps.Wipe) ~seed:5 ~ops () in
  let trace = report.S.trace in

  let hawkset = Hawkset.Pipeline.races trace in
  let eraser = Baselines.Eraser.analyse trace in

  (* PMRace needs its own executions: it must observe races directly. *)
  let seed_ops =
    (Workload.Seeds.corpus ~count:1 ~ops_per_seed:ops ~base_seed:5 ()).(0)
  in
  let pmrace =
    Baselines.Pmrace.fuzz
      ~run:(fun ~per_thread ~seed ~policy ~observe ->
        Pmapps.Driver.run_kv
          (module Pmapps.Wipe)
          ~seed ~policy ~observe ~load:[] ~per_thread ())
      ~seed_workload:seed_ops ~executions:10 ()
  in

  let found races id =
    Pmapps.Ground_truth.bug_found ~bugs:Pmapps.Wipe.bugs races id
  in
  (* Durinn: serialize, extract candidates, then force interleavings. *)
  let durinn =
    Baselines.Durinn.run
      ~serial_run:(fun () ->
        let heap = Pmem.Heap.create ~size:(64 * 1024 * 1024) () in
        S.run ~seed:0 ~heap (fun ctx ->
            let t = Pmapps.Wipe.create ctx in
            List.iter
              (fun op ->
                match op with
                | Workload.Op.Insert (key, value)
                | Workload.Op.Update (key, value) ->
                    Pmapps.Wipe.insert t ctx ~key ~value
                | Workload.Op.Get key -> ignore (Pmapps.Wipe.get t ctx ~key)
                | Workload.Op.Delete key -> Pmapps.Wipe.delete t ctx ~key)
              seed_ops))
      ~concurrent_run:(fun ~policy ~seed ->
        Pmapps.Driver.run_kv
          (module Pmapps.Wipe)
          ~seed ~policy ~observe:true ~load:[]
          ~per_thread:(Workload.Seeds.split ~threads:8 seed_ops)
          ())
      ~attempts_per_candidate:4 ()
  in
  let durinn_found id =
    match
      List.find_opt
        (fun (b : Pmapps.Ground_truth.bug) -> b.Pmapps.Ground_truth.gt_id = id)
        Pmapps.Wipe.bugs
    with
    | Some b ->
        Baselines.Durinn.observed_pair durinn
          ~store_locs:b.Pmapps.Ground_truth.gt_store_locs
          ~load_locs:b.Pmapps.Ground_truth.gt_load_locs
    | None -> false
  in
  let pm_found id =
    match
      List.find_opt
        (fun (b : Pmapps.Ground_truth.bug) -> b.Pmapps.Ground_truth.gt_id = id)
        Pmapps.Wipe.bugs
    with
    | Some b ->
        Baselines.Pmrace.observed pmrace
          ~store_locs:b.Pmapps.Ground_truth.gt_store_locs
          ~load_locs:b.Pmapps.Ground_truth.gt_load_locs
    | None -> false
  in
  print_string
    (Harness.Tables.render
       ~headers:[ "Detector"; "Executions"; "Bug #16"; "Bug #17"; "Bug #18" ]
       ~rows:
         [
           [
             "HawkSet"; "1";
             string_of_bool (found hawkset 16);
             string_of_bool (found hawkset 17);
             string_of_bool (found hawkset 18);
           ];
           [
             "Eraser (traditional)"; "1";
             string_of_bool (found eraser 16);
             string_of_bool (found eraser 17);
             string_of_bool (found eraser 18);
           ];
           [
             "PMRace (observation)";
             string_of_int pmrace.Baselines.Pmrace.executions;
             string_of_bool (pm_found 16);
             string_of_bool (pm_found 17);
             string_of_bool (pm_found 18);
           ];
           [
             "Durinn (targeted)";
             string_of_int durinn.Baselines.Durinn.executions;
             string_of_bool (durinn_found 16);
             string_of_bool (durinn_found 17);
             string_of_bool (durinn_found 18);
           ];
         ]);
  print_newline ();
  print_endline
    "WIPE's bugs pair same-lock accesses with a late (or missing) persist:";
  print_endline
    "traditional lockset analysis is structurally blind to them, and the";
  print_endline
    "observation-based search must get lucky with the interleaving, while";
  print_endline "the effective lockset exposes all three from one run."
