(* Quickstart: write a tiny PM program, run it on the instrumented
   machine, and let HawkSet find its persistency-induced race.

   The program is Figure 1c from the paper: two threads share a PM
   counter protected by a mutex — correct from a pure concurrency
   standpoint — but the writer persists the counter only AFTER leaving
   the critical section. A reader can therefore act on a value that a
   crash will erase.

     dune exec examples/quickstart.exe *)

module S = Machine.Sched

let () =
  (* 1. A 1 MiB PM pool ("the mmap'ed PM file"). *)
  let heap = Pmem.Heap.create ~size:(1 lsl 20) () in

  (* 2. Run the application: every store/load/flush/fence and lock
        operation is recorded into the report's trace. *)
  let report =
    S.run ~seed:7 ~heap (fun ctx ->
        let counter = S.alloc ctx 8 in
        let lock = Machine.Mutex.create ctx in

        let writer =
          S.spawn ctx (fun ctx ->
              for i = 1 to 5 do
                Machine.Mutex.lock lock ctx __POS__;
                S.store_i64 ctx __POS__ counter (Int64.of_int i);
                Machine.Mutex.unlock lock ctx __POS__;
                (* BUG: the persist lives outside the critical section. *)
                S.persist ctx __POS__ counter 8
              done)
        in
        let reader =
          S.spawn ctx (fun ctx ->
              for _ = 1 to 5 do
                Machine.Mutex.lock lock ctx __POS__;
                (* This load can observe a visible-but-not-durable value:
                   replying to a client with it is a lost-update waiting
                   for a crash. *)
                ignore (S.load_i64 ctx __POS__ counter);
                Machine.Mutex.unlock lock ctx __POS__
              done)
        in
        S.join ctx writer;
        S.join ctx reader)
  in

  (* 3. Analyse the trace — no annotations, drivers or models needed. *)
  let result = Hawkset.Pipeline.run report.S.trace in

  Format.printf "trace: %d events (%a)@.@." report.S.event_count
    Trace.Tracebuf.pp_stats
    (Trace.Tracebuf.stats report.S.trace);
  Format.printf "%a@.@." Hawkset.Report.pp result.Hawkset.Pipeline.races;
  Format.printf
    "Note: both accesses hold the same mutex — a traditional data-race@.\
     detector sees nothing here. The effective lockset of the store is@.\
     empty because its persist happens outside the critical section.@.";

  (* 4. The same trace under traditional lockset analysis: silence. *)
  let eraser = Baselines.Eraser.analyse report.S.trace in
  Format.printf "@.Traditional lockset analysis on the same trace: %d reports@."
    (Hawkset.Report.count eraser);
  assert (Hawkset.Report.count result.Hawkset.Pipeline.races = 1);
  assert (Hawkset.Report.count eraser = 0)
