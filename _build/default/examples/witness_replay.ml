(* From prediction to witness.

   HawkSet's lockset analysis reports races it never observed (§3.3) —
   so is a report real? This example closes the loop: it takes the
   Figure 1c program, gets HawkSet's report from ONE arbitrary execution,
   then enumerates deterministic scripted schedules until it finds a
   concrete interleaving in which the reader provably consumes the
   visible-but-not-durable value — and prints that witness schedule
   event by event.

     dune exec examples/witness_replay.exe *)

module S = Machine.Sched

let program ctx =
  let x = S.alloc ctx 8 in
  let lock = Machine.Mutex.create ctx in
  let writer =
    S.spawn ctx (fun ctx ->
        Machine.Mutex.lock lock ctx __POS__;
        S.store_i64 ctx __POS__ x 42L;
        Machine.Mutex.unlock lock ctx __POS__;
        (* the persist is outside the critical section *)
        S.persist ctx __POS__ x 8)
  in
  let reader =
    S.spawn ctx (fun ctx ->
        Machine.Mutex.lock lock ctx __POS__;
        ignore (S.load_i64 ctx __POS__ x);
        Machine.Mutex.unlock lock ctx __POS__)
  in
  S.join ctx writer;
  S.join ctx reader

let run ?policy ?(observe = false) () =
  let heap = Pmem.Heap.create ~size:(1 lsl 12) () in
  S.run ?policy ~observe ~heap program

let () =
  (* 1. One ordinary execution; HawkSet predicts the race. *)
  let report = run () in
  let races = Hawkset.Pipeline.races ~config:Hawkset.Pipeline.no_irh report.S.trace in
  Format.printf "HawkSet's prediction from one execution:@.@.%a@.@."
    Hawkset.Report.pp races;
  assert (Hawkset.Report.count races = 1);

  (* 2. Enumerate scripted schedules until one directly witnesses it. *)
  let witness = ref None in
  let tried = ref 0 in
  let script = Array.make 8 0 in
  let rec search d =
    if !witness = None then
      if d = Array.length script then begin
        incr tried;
        let r = run ~policy:(S.Scripted (Array.copy script)) ~observe:true () in
        if r.S.observations <> [] then witness := Some (Array.copy script, r)
      end
      else
        for c = 0 to 2 do
          script.(d) <- c;
          search (d + 1)
        done
  in
  search 0;
  match !witness with
  | None -> print_endline "no witness found (unexpected)"
  | Some (script, r) ->
      Format.printf
        "Witness found after %d scripted schedules (script [%s]):@.@." !tried
        (String.concat ";" (Array.to_list (Array.map string_of_int script)));
      Trace.Tracebuf.iter
        (fun ev -> Format.printf "  %a@." Trace.Event.pp ev)
        r.S.trace;
      let o = List.hd r.S.observations in
      Format.printf
        "@.In this schedule the load at %a reads the store from %a while@.\
         the data is still unflushed: a crash here loses the store but@.\
         keeps whatever the reader did with the value.@."
        Trace.Site.pp o.S.obs_load_site Trace.Site.pp o.S.obs_store_site
