lib/apps/apex.ml: Array Ground_truth Int64 List Machine Option
