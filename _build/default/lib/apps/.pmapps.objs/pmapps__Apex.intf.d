lib/apps/apex.mli: App_intf
