lib/apps/app_intf.ml: Ground_truth Machine
