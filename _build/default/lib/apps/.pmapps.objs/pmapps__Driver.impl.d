lib/apps/driver.ml: App_intf Array List Machine Pmem Workload
