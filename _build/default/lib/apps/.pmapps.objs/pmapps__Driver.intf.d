lib/apps/driver.mli: App_intf Machine Workload
