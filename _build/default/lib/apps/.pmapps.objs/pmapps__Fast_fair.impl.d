lib/apps/fast_fair.ml: Ground_truth Int64 List Machine
