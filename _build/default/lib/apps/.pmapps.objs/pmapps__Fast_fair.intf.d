lib/apps/fast_fair.mli: App_intf Machine
