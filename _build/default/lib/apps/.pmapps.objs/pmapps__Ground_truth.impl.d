lib/apps/ground_truth.ml: Format Hawkset List Printf String Trace
