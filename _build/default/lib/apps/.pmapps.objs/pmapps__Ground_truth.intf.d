lib/apps/ground_truth.mli: Format Hawkset
