lib/apps/madfs.ml: Bytes Ground_truth Int64 List Machine
