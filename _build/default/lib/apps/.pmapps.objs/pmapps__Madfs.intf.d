lib/apps/madfs.mli: Ground_truth Machine
