lib/apps/memcached.ml: Ground_truth Int64 List Machine
