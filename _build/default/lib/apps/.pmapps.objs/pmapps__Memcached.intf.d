lib/apps/memcached.mli: Ground_truth Machine
