lib/apps/p_art.ml: Ground_truth Int64 List Machine
