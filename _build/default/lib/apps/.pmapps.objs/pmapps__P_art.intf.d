lib/apps/p_art.mli: App_intf Machine
