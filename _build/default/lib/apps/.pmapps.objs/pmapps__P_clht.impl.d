lib/apps/p_clht.ml: Array Fun Ground_truth Int64 List Machine Pmem
