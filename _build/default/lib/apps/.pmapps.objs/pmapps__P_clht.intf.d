lib/apps/p_clht.mli: App_intf Machine
