lib/apps/p_masstree.ml: Ground_truth Int64 List Machine
