lib/apps/p_masstree.mli: App_intf Machine
