lib/apps/pmlog.ml: Hashtbl Int64 Machine
