lib/apps/pmlog.mli: App_intf Machine
