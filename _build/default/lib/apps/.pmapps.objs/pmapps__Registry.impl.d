lib/apps/registry.ml: Apex App_intf Array Bytes Driver Fast_fair Ground_truth List Machine Madfs Memcached P_art P_clht P_masstree Pmem String Turbo_hash Wipe Workload
