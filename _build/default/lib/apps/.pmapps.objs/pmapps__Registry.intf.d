lib/apps/registry.mli: Ground_truth Machine
