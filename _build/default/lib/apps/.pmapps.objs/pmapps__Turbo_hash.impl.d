lib/apps/turbo_hash.ml: Array Ground_truth Int64 List Machine Pmem Printf
