lib/apps/turbo_hash.mli: App_intf Machine
