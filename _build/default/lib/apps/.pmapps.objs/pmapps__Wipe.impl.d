lib/apps/wipe.ml: Array Ground_truth Int64 List Machine
