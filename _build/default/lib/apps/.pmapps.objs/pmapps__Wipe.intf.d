lib/apps/wipe.mli: App_intf Machine
