module S = Machine.Sched

let name = "apex"
let node_count = 512
let node_slots = 64

(* Data node: a gapped array. word 0 = count, word 1 = overflow-node
   pointer; then [node_slots] slots of (key, value); key 0 = gap. The
   per-node model predicts a slot, probing resolves collisions, and fully
   occupied nodes chain into overflow nodes (standing in for ALEX's node
   expansion). Directory: [node_count] node pointers. *)
let node_bytes = (2 + (2 * node_slots)) * 8
let off_cnt = 0
let off_next = 8
let off_key i = 16 + (16 * i)
let off_val i = 24 + (16 * i)

type t = { dir : int; locks : Machine.Spinlock.t array }

(* ---- named sites ---- *)

(* #19: value stores of insert/update/erase — correctly persisted inside
   the lock, yet racy against the lock-free search. *)
let bug19_insert_val_pos = __POS__
let bug19_update_val_pos = __POS__

(* #20: key stores of insert/erase. *)
let bug20_insert_key_pos = __POS__
let bug20_erase_key_pos = __POS__

(* The lock-free search loads. *)
let search_key_load_pos = __POS__
let search_val_load_pos = __POS__

(* Benign lock-free loads. *)
let lf_dir_load_pos = __POS__
let lf_cnt_load_pos = __POS__

let bugs =
  let l = Ground_truth.loc in
  [
    { Ground_truth.gt_id = 19; gt_new = true;
      gt_desc = "load unpersisted value";
      gt_store_locs = [ l bug19_insert_val_pos; l bug19_update_val_pos ];
      gt_load_locs = [ l search_val_load_pos ] };
    { Ground_truth.gt_id = 20; gt_new = true;
      gt_desc = "load unpersisted key";
      gt_store_locs = [ l bug20_insert_key_pos; l bug20_erase_key_pos ];
      gt_load_locs = [ l search_key_load_pos ] };
  ]

let benign =
  List.map
    (fun pos -> Ground_truth.Load_at (Ground_truth.loc pos))
    [ lf_dir_load_pos; lf_cnt_load_pos; search_key_load_pos;
      search_val_load_pos ]

let primitive = "apex_cas_lock"
let sync_config = Machine.Sync_config.register Machine.Sync_config.builtin primitive

(* The root model: trained on the workload's key distribution, it spreads
   keys evenly over the directory. We model "trained on a uniform key
   stream" with a fixed mixing transform of the key. *)
let mix key =
  let h = key lxor (key lsr 33) in
  let h = h * 0x2545F4914F6CDD1D in
  (h lxor (h lsr 29)) land max_int

let node_for key = mix key land (node_count - 1)

(* The per-node model: predicted slot within the gapped array. *)
let predicted_slot key = (mix key lsr 24) land (node_slots - 1)


let alloc_data_node ctx =
  let n = S.alloc ctx ~align:64 node_bytes in
  S.persist ctx __POS__ n 16;
  n

let create ctx =
  let dir = S.alloc ctx ~align:64 (8 * node_count) in
  for i = 0 to node_count - 1 do
    let n = alloc_data_node ctx in
    S.store_i64 ctx __POS__ (dir + (8 * i)) (Int64.of_int n)
  done;
  S.persist ctx __POS__ dir (8 * node_count);
  { dir; locks = Array.init node_count (fun _ -> Machine.Spinlock.create ~primitive ctx) }

let node_of t ctx i =
  Int64.to_int (S.load_i64 ctx lf_dir_load_pos (t.dir + (8 * i)))

(* Writer-side probe from the model's prediction: full wrap-around scan,
   returning the key's slot (if present) and the first gap. *)
let probe ctx n key =
  let k64 = Int64.of_int key in
  let start = predicted_slot key in
  let rec go step gap =
    if step >= node_slots then (None, gap)
    else begin
      let i = (start + step) mod node_slots in
      let k = S.load_i64 ctx __POS__ (n + off_key i) in
      if Int64.equal k k64 then (Some i, gap)
      else if Int64.equal k 0L && gap = None then go (step + 1) (Some i)
      else go (step + 1) gap
    end
  in
  go 0 None

let next_node ctx n = Int64.to_int (S.load_i64 ctx __POS__ (n + off_next))

let insert t ctx ~key ~value =
  S.with_frame ctx "apex_insert" @@ fun () ->
  let ni = node_for key in
  Machine.Spinlock.with_lock t.locks.(ni) ctx __POS__ @@ fun () ->
  let store_entry n gap =
    S.store_i64 ctx bug19_insert_val_pos (n + off_val gap) value;
    S.store_i64 ctx bug20_insert_key_pos (n + off_key gap) (Int64.of_int key);
    let c = Int64.to_int (S.load_i64 ctx __POS__ (n + off_cnt)) in
    S.store_i64 ctx __POS__ (n + off_cnt) (Int64.of_int (c + 1));
    (* Correctly persisted inside the critical section. *)
    S.persist ctx __POS__ (n + off_key gap) 8;
    S.persist ctx __POS__ (n + off_val gap) 8;
    S.persist ctx __POS__ (n + off_cnt) 8
  in
  (* Walk the overflow chain: update in place, or take the first gap, or
     append a fresh overflow node. *)
  let rec walk n first_gap =
    match probe ctx n key with
    | Some i, _ ->
        S.store_i64 ctx bug19_update_val_pos (n + off_val i) value;
        S.persist ctx __POS__ (n + off_val i) 8
    | None, gap -> (
        let first_gap =
          match first_gap with
          | Some _ -> first_gap
          | None -> Option.map (fun g -> (n, g)) gap
        in
        match next_node ctx n with
        | 0 -> (
            match first_gap with
            | Some (gn, g) -> store_entry gn g
            | None ->
                let fresh = alloc_data_node ctx in
                store_entry fresh (predicted_slot key);
                S.store_i64 ctx __POS__ (n + off_next) (Int64.of_int fresh);
                S.persist ctx __POS__ (n + off_next) 8)
        | next -> walk next first_gap)
  in
  walk (node_of t ctx ni) None

let update = insert

let delete t ctx ~key =
  S.with_frame ctx "apex_erase" @@ fun () ->
  let ni = node_for key in
  Machine.Spinlock.with_lock t.locks.(ni) ctx __POS__ @@ fun () ->
  let rec walk n =
    if n <> 0 then
      match probe ctx n key with
      | Some i, _ ->
          S.store_i64 ctx bug20_erase_key_pos (n + off_key i) 0L;
          let c = Int64.to_int (S.load_i64 ctx __POS__ (n + off_cnt)) in
          S.store_i64 ctx __POS__ (n + off_cnt) (Int64.of_int (max 0 (c - 1)));
          S.persist ctx __POS__ (n + off_key i) 8;
          S.persist ctx __POS__ (n + off_cnt) 8
      | None, _ -> walk (next_node ctx n)
  in
  walk (node_of t ctx ni)

(* Lock-free search (the racy reader of bugs #19/#20). *)
let get t ctx ~key =
  S.with_frame ctx "apex_search" @@ fun () ->
  let k64 = Int64.of_int key in
  let start = predicted_slot key in
  let rec walk n =
    if n = 0 then None
    else
      let rec go step =
        if step >= node_slots then
          walk (Int64.to_int (S.load_i64 ctx lf_cnt_load_pos (n + off_next)))
        else begin
          let i = (start + step) mod node_slots in
          let k = S.load_i64 ctx search_key_load_pos (n + off_key i) in
          if Int64.equal k k64 then
            Some (S.load_i64 ctx search_val_load_pos (n + off_val i))
          else go (step + 1)
        end
      in
      go 0
  in
  walk (node_of t ctx (node_for key))
