(** APEX: a high-performance learned index on PM (VLDB'22), the PM and
    concurrency extension of Microsoft's ALEX.

    Keys map through a linear model into a directory of gapped-array data
    nodes. Writers (insert / update / erase) take the node's lock —
    modelled as the ["apex_cas_lock"] CAS-wrapper primitive that needed a
    sync-configuration entry in the paper (§5.5) — and persist correctly
    {e inside} the critical section. Searches are lock-free.

    Injected bugs (Table 2 #19/#20, both new): precisely because searches
    are lock-free, they can observe a stored key (#20) or value (#19)
    {e inside} its store-to-persist window: "although the latter
    operations are protected via mutex, and correctly persisted, the
    lock-free search can still observe an unpersisted value" (§5.1). *)

include App_intf.KV

val node_count : int
(** Number of directory nodes. *)
