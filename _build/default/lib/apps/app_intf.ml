(** Application interfaces.

    Seven of the nine evaluated applications expose key-value semantics
    and run under the shared YCSB driver; Memcached-pmem and MadFS have
    dedicated drivers. Every application also declares its ground truth
    (injected bugs and tolerated races) and the sync configuration its
    custom primitives need (§5.5). *)

module type KV = sig
  val name : string

  type t

  val create : Machine.Sched.ctx -> t
  (** Allocates and persists the initial structure; runs on the main
      thread before workers start. *)

  val insert : t -> Machine.Sched.ctx -> key:int -> value:int64 -> unit
  val update : t -> Machine.Sched.ctx -> key:int -> value:int64 -> unit
  val get : t -> Machine.Sched.ctx -> key:int -> int64 option
  val delete : t -> Machine.Sched.ctx -> key:int -> unit

  val bugs : Ground_truth.bug list
  val benign : Ground_truth.benign_rule list

  val sync_config : Machine.Sync_config.t
  (** The configuration needed to instrument this application's custom
      synchronization primitives ({!Machine.Sync_config.builtin} when the
      app only uses pthread-style locks). *)
end
