module S = Machine.Sched

let name = "fast-fair"
let order = 8 (* entries per node *)

(* Node layout (64-byte-aligned, four cache lines):
     line 0:   word 0 = tag (1 = leaf, 2 = inner), word 1 = count,
               first entries
     lines 0-2: entries, 16 bytes each: key_i at 16+16i, val_i at 24+16i
     line 3:   word 24 = sibling pointer — on its OWN cache line, so
               persisting the header/entries never (accidentally) covers
               the racy pointer publication of bugs #1/#2. *)
let node_size = 256
let off_tag = 0
let off_count = 8
let off_sibling = 192
let off_key i = 16 + (16 * i)
let off_val i = 24 + (16 * i)

(* Byte length of the header + entry region (excludes the sibling line). *)
let entries_bytes = 16 + (16 * order)
let leaf_tag = 1L
let inner_tag = 2L

(* Metadata block: word 0 = root pointer, word 1 = height. *)
type t = { meta : int; lock : Machine.Mutex.t }

(* ---- sites shared with the ground-truth registry ----

   Each named position is bound here and passed to the instrumented
   access, so the registry and the emitted events agree on file:line. *)

(* Bug #1: the new leaf sibling's pointer store; its persist is deferred
   until after the critical section (see [insert]). *)
let bug1_store_pos = __POS__

(* Bug #2: the same pattern on the inner-node split path (Figure 5). *)
let bug2_store_pos = __POS__

(* Loads that can observe the unpersisted sibling pointer: the lock-free
   traversal (the paper's btree.h:878) and the writer-side sibling-chain
   read during a later split of the same node. *)
let ptr_load_pos = __POS__
let wr_sibling_load_pos = __POS__

(* Lock-free read sites of the get path (benign: the design tolerates
   readers observing not-yet-persisted, correctly-published data). *)
let lf_root_load_pos = __POS__
let lf_tag_load_pos = __POS__
let lf_count_load_pos = __POS__
let leaf_key_load_pos = __POS__
let leaf_val_load_pos = __POS__

(* Writer store sites participating in benign races with those reads. *)
let entry_key_store_pos = __POS__
let entry_val_store_pos = __POS__
let count_store_pos = __POS__
let root_store_pos = __POS__

let bugs =
  [
    {
      Ground_truth.gt_id = 1;
      gt_new = false;
      gt_desc = "load unpersisted pointer";
      gt_store_locs = [ Ground_truth.loc bug1_store_pos ];
      gt_load_locs =
        [ Ground_truth.loc ptr_load_pos; Ground_truth.loc wr_sibling_load_pos ];
    };
    {
      Ground_truth.gt_id = 2;
      gt_new = true;
      gt_desc = "load unpersisted pointer";
      gt_store_locs = [ Ground_truth.loc bug2_store_pos ];
      gt_load_locs =
        [ Ground_truth.loc ptr_load_pos; Ground_truth.loc wr_sibling_load_pos ];
    };
  ]

let benign =
  List.map
    (fun pos -> Ground_truth.Load_at (Ground_truth.loc pos))
    [
      lf_root_load_pos;
      lf_tag_load_pos;
      lf_count_load_pos;
      leaf_key_load_pos;
      leaf_val_load_pos;
      ptr_load_pos;
    ]

let sync_config = Machine.Sync_config.builtin

(* ---- node helpers (writer side, under the tree mutex) ---- *)

let alloc_node ctx ~tag =
  let n = S.alloc ctx ~align:64 node_size in
  S.store_i64 ctx __POS__ (n + off_tag) tag;
  S.store_i64 ctx __POS__ (n + off_count) 0L;
  S.store_i64 ctx __POS__ (n + off_sibling) 0L;
  n

let count ctx n = Int64.to_int (S.load_i64 ctx __POS__ (n + off_count))

let set_count ctx n c =
  S.store_i64 ctx count_store_pos (n + off_count) (Int64.of_int c)

let key_at ctx n i = S.load_i64 ctx __POS__ (n + off_key i)
let val_at ctx n i = S.load_i64 ctx __POS__ (n + off_val i)
let set_key ctx n i k = S.store_i64 ctx entry_key_store_pos (n + off_key i) k
let set_val ctx n i v = S.store_i64 ctx entry_val_store_pos (n + off_val i) v
let is_leaf ctx n = Int64.equal (S.load_i64 ctx __POS__ (n + off_tag)) leaf_tag
let persist_node ctx n = S.persist ctx __POS__ n node_size
let persist_entries ctx n = S.persist ctx __POS__ n entries_bytes

let create ctx =
  let meta = S.alloc ctx ~align:64 16 in
  let root = alloc_node ctx ~tag:leaf_tag in
  persist_node ctx root;
  S.store_i64 ctx root_store_pos (meta + 0) (Int64.of_int root);
  S.store_i64 ctx __POS__ (meta + 8) 1L;
  S.persist ctx __POS__ meta 16;
  { meta; lock = Machine.Mutex.create ctx }

let meta_addr t = t.meta

let recover ctx ~meta_addr =
  { meta = meta_addr; lock = Machine.Mutex.create ctx }

let root ctx t = Int64.to_int (S.load_i64 ctx __POS__ (t.meta + 0))

let find_slot ctx n key =
  (* Index of the first entry with key > [key]. *)
  let c = count ctx n in
  let rec go i =
    if i >= c then c
    else if key_at ctx n i > key then i
    else go (i + 1)
  in
  go 0

let child_for ctx n key =
  (* Inner nodes: entry i covers keys >= key_i; entry 0 holds the minimum
     sentinel, so [find_slot - 1] always exists. *)
  let slot = find_slot ctx n key in
  Int64.to_int (val_at ctx n (max 0 (slot - 1)))

let shift_right ctx n ~from ~cnt =
  for j = cnt - 1 downto from do
    set_key ctx n (j + 1) (key_at ctx n j);
    set_val ctx n (j + 1) (val_at ctx n j)
  done

let shift_left ctx n ~from ~cnt =
  for j = from to cnt - 2 do
    set_key ctx n j (key_at ctx n (j + 1));
    set_val ctx n j (val_at ctx n (j + 1))
  done

(* Insert or overwrite in a non-full node; persists the node. *)
let upsert_entry ctx n key value =
  let c = count ctx n in
  let rec existing i =
    if i >= c then None else if key_at ctx n i = key then Some i else existing (i + 1)
  in
  match existing 0 with
  | Some i ->
      set_val ctx n i value;
      S.persist ctx __POS__ (n + off_val i) 8
  | None ->
      let slot = find_slot ctx n key in
      if slot < c then begin
        (* FAST&FAIR-style endurable shift: first duplicate the last
           entry into the new tail slot and commit the extended count,
           so no existing entry is ever unreachable mid-shift (a crash
           leaves a tolerated duplicate, never a lost key). *)
        set_key ctx n c (key_at ctx n (c - 1));
        set_val ctx n c (val_at ctx n (c - 1));
        set_count ctx n (c + 1);
        shift_right ctx n ~from:slot ~cnt:(c - 1);
        set_key ctx n slot key;
        set_val ctx n slot value
      end
      else begin
        (* Append: the entry becomes visible only when the count commits. *)
        set_key ctx n slot key;
        set_val ctx n slot value;
        set_count ctx n (c + 1)
      end;
      persist_entries ctx n

let contains ctx n key =
  let c = count ctx n in
  let rec go i = i < c && (key_at ctx n i = key || go (i + 1)) in
  go 0

(* Split [n]; returns (median key, new sibling address). The new node is
   fully initialized and persisted before becoming reachable; the sibling
   link of [n] is stored — visible immediately — but its persist is
   deferred to the caller, which (buggily) performs it outside the
   critical section. [ptr_pos] selects the bug-#1 or bug-#2 site. *)
let split ctx n ~ptr_pos =
  let tag = if is_leaf ctx n then leaf_tag else inner_tag in
  let sibling = alloc_node ctx ~tag in
  let c = count ctx n in
  let half = c / 2 in
  for j = half to c - 1 do
    set_key ctx sibling (j - half) (key_at ctx n j);
    set_val ctx sibling (j - half) (val_at ctx n j)
  done;
  set_count ctx sibling (c - half);
  S.store_i64 ctx __POS__ (sibling + off_sibling)
    (S.load_i64 ctx wr_sibling_load_pos (n + off_sibling));
  persist_node ctx sibling;
  (* FAST&FAIR ordering: link the sibling BEFORE shrinking the count, so
     a crash mid-split leaves duplicates (tolerated) rather than lost
     keys. The link store itself is the racy publication: visible
     immediately, persisted late (bug #1/#2). *)
  S.store_i64 ctx ptr_pos (n + off_sibling) (Int64.of_int sibling);
  set_count ctx n half;
  S.persist ctx __POS__ (n + off_count) 8;
  (key_at ctx sibling 0, sibling)

(* Recursive insert; returns a promoted (key, node) when this level split.
   Deferred persists of racy sibling pointers accumulate in [deferred]. *)
let rec insert_rec ctx t n key value ~deferred =
  if is_leaf ctx n then
    if count ctx n < order || contains ctx n key then begin
      upsert_entry ctx n key value;
      None
    end
    else begin
      let median, sibling = split ctx n ~ptr_pos:bug1_store_pos in
      deferred := (n + off_sibling, 8) :: !deferred;
      let target = if key >= median then sibling else n in
      upsert_entry ctx target key value;
      Some (median, sibling)
    end
  else begin
    let child = child_for ctx n key in
    match insert_rec ctx t child key value ~deferred with
    | None -> None
    | Some (median, new_child) ->
        if count ctx n < order then begin
          upsert_entry ctx n median (Int64.of_int new_child);
          None
        end
        else begin
          let up_median, sibling = split ctx n ~ptr_pos:bug2_store_pos in
          deferred := (n + off_sibling, 8) :: !deferred;
          let target = if median >= up_median then sibling else n in
          upsert_entry ctx target median (Int64.of_int new_child);
          Some (up_median, sibling)
        end
  end

let grow_root ctx t old_root median new_node =
  let new_root = alloc_node ctx ~tag:inner_tag in
  set_key ctx new_root 0 Int64.min_int;
  set_val ctx new_root 0 (Int64.of_int old_root);
  set_key ctx new_root 1 median;
  set_val ctx new_root 1 (Int64.of_int new_node);
  set_count ctx new_root 2;
  persist_node ctx new_root;
  S.store_i64 ctx root_store_pos (t.meta + 0) (Int64.of_int new_root);
  S.persist ctx __POS__ t.meta 16

let insert t ctx ~key ~value =
  S.with_frame ctx "ff_insert" @@ fun () ->
  let deferred = ref [] in
  Machine.Mutex.lock t.lock ctx __POS__;
  let r = root ctx t in
  (match insert_rec ctx t r (Int64.of_int key) value ~deferred with
  | None -> ()
  | Some (median, new_node) -> grow_root ctx t r median new_node);
  Machine.Mutex.unlock t.lock ctx __POS__;
  (* BUG (#1/#2): the sibling pointers published during splits are only
     persisted here, outside the critical section. *)
  List.iter (fun (addr, size) -> S.persist ctx __POS__ addr size) !deferred

(* Fast-Fair treats insert and update as the same operation (§5). *)
let update = insert

let rec find_leaf ctx n key =
  if is_leaf ctx n then n else find_leaf ctx (child_for ctx n key) key

let find_leaf_i ctx n key = find_leaf ctx n (Int64.of_int key)

let delete t ctx ~key =
  S.with_frame ctx "ff_delete" @@ fun () ->
  Machine.Mutex.with_lock t.lock ctx __POS__ @@ fun () ->
  let leaf = find_leaf_i ctx (root ctx t) key in
  let c = count ctx leaf in
  let rec go i =
    if i >= c then ()
    else if Int64.to_int (key_at ctx leaf i) = key then begin
      shift_left ctx leaf ~from:i ~cnt:c;
      set_count ctx leaf (c - 1);
      persist_entries ctx leaf
    end
    else go (i + 1)
  in
  go 0

(* ---- lock-free read side ---- *)

let lf_tag ctx n = S.load_i64 ctx lf_tag_load_pos (n + off_tag)

let lf_count ctx n =
  let c = Int64.to_int (S.load_i64 ctx lf_count_load_pos (n + off_count)) in
  min (max c 0) order

let lf_key_at ctx n i = S.load_i64 ctx leaf_key_load_pos (n + off_key i)
let lf_val_at ctx n i = S.load_i64 ctx leaf_val_load_pos (n + off_val i)
let lf_ptr ctx addr = Int64.to_int (S.load_i64 ctx ptr_load_pos addr)

let rec lf_descend ctx n key =
  if Int64.equal (lf_tag ctx n) leaf_tag then n
  else begin
    let c = max (lf_count ctx n) 1 in
    let rec pick i best =
      if i >= c then best
      else if lf_key_at ctx n i <= key then pick (i + 1) i
      else best
    in
    let child = lf_ptr ctx (n + off_val (pick 1 0)) in
    if child = 0 then n else lf_descend ctx child key
  end

let get t ctx ~key =
  S.with_frame ctx "ff_get" @@ fun () ->
  let k64 = Int64.of_int key in
  let r = Int64.to_int (S.load_i64 ctx lf_root_load_pos (t.meta + 0)) in
  let leaf = lf_descend ctx r k64 in
  let scan_node n =
    let c = lf_count ctx n in
    let rec scan i =
      if i >= c then None
      else if Int64.equal (lf_key_at ctx n i) k64 then Some (lf_val_at ctx n i)
      else scan (i + 1)
    in
    scan 0
  in
  match scan_node leaf with
  | Some v -> Some v
  | None ->
      (* B-link: the key may have moved right during a concurrent split. *)
      let c = lf_count ctx leaf in
      if c > 0 && lf_key_at ctx leaf (c - 1) < k64 then begin
        let sib = lf_ptr ctx (leaf + off_sibling) in
        if sib = 0 then None else scan_node sib
      end
      else None

let range t ctx ~lo ~hi =
  S.with_frame ctx "ff_range" @@ fun () ->
  let lo64 = Int64.of_int lo and hi64 = Int64.of_int hi in
  let r = Int64.to_int (S.load_i64 ctx lf_root_load_pos (t.meta + 0)) in
  let rec walk leaf acc steps =
    if leaf = 0 || steps > 100000 then List.rev acc
    else begin
      let c = lf_count ctx leaf in
      let rec scan i acc =
        if i >= c then `More acc
        else
          let k = lf_key_at ctx leaf i in
          if k > hi64 then `Done acc
          else if k >= lo64 then
            scan (i + 1) ((Int64.to_int k, lf_val_at ctx leaf i) :: acc)
          else scan (i + 1) acc
      in
      match scan 0 acc with
      | `Done acc -> List.rev acc
      | `More acc -> walk (lf_ptr ctx (leaf + off_sibling)) acc (steps + 1)
    end
  in
  walk (lf_descend ctx r lo64) [] 0

(* ---- maintenance / verification ---- *)

let rec leftmost_leaf ctx n =
  if is_leaf ctx n then n
  else leftmost_leaf ctx (Int64.to_int (val_at ctx n 0))

let keys t ctx =
  let rec walk leaf acc =
    if leaf = 0 then List.rev acc
    else begin
      let c = count ctx leaf in
      let acc = ref acc in
      for i = 0 to c - 1 do
        acc := Int64.to_int (key_at ctx leaf i) :: !acc
      done;
      walk (Int64.to_int (S.load_i64 ctx __POS__ (leaf + off_sibling))) !acc
    end
  in
  walk (leftmost_leaf ctx (root ctx t)) []

let check t ctx =
  let rec check_node n ~depth =
    if depth > 64 then failwith "fast-fair: cyclic or too-deep structure";
    let c = count ctx n in
    if c < 0 || c > order then failwith "fast-fair: bad count";
    for i = 1 to c - 1 do
      if key_at ctx n i < key_at ctx n (i - 1) then
        failwith "fast-fair: unsorted keys"
    done;
    if not (is_leaf ctx n) then
      for i = 0 to c - 1 do
        let child = Int64.to_int (val_at ctx n i) in
        if child = 0 then failwith "fast-fair: null child";
        check_node child ~depth:(depth + 1)
      done
  in
  check_node (root ctx t) ~depth:0;
  let ks = keys t ctx in
  let rec sorted = function
    | a :: (b :: _ as rest) ->
        if a > b then failwith "fast-fair: leaf chain unsorted" else sorted rest
    | [ _ ] | [] -> ()
  in
  sorted ks
