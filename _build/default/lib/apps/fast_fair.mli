(** Fast-Fair: a PM-backed B+-tree (Hwang et al., FAST'18).

    A B-link-style B+-tree with sibling pointers, mutex-protected writes
    and lock-free reads, the concurrency-control mix of the original
    (Table 1: Lock / Lock-Free). Nodes hold up to 8 entries so splits —
    the code path both Fast-Fair bugs live on — occur frequently.

    Injected bugs (Table 2):
    - {b Bug #1} (known, reported by PMRace): when a leaf splits, the new
      sibling's pointer is stored and published inside the critical
      section but only persisted {e after} the lock is released. A thread
      that inserts through the unpersisted pointer can have its durable
      insert stranded in an unreachable node after a crash.
    - {b Bug #2} (new, Figure 5): the same deferred-persist pattern on the
      much rarer inner-node split path — it needs a split that propagates
      one level up, i.e. roughly 64+ distinct keys with 8-entry nodes.

    Both bugs share the traversal's pointer-load site, like the paper's
    btree.h:878. *)

include App_intf.KV

val check : t -> Machine.Sched.ctx -> unit
(** Structural invariant check (sorted keys, coherent counts); raises
    [Failure] on violation. Call while no other thread is running. *)

val recover : Machine.Sched.ctx -> meta_addr:int -> t
(** Reopens a tree from a (post-crash) heap given the metadata block
    address. *)

val meta_addr : t -> int
(** Address of the tree's metadata block, for {!recover}. *)

val keys : t -> Machine.Sched.ctx -> int list
(** All keys currently reachable in the tree, in order (lock-free scan via
    the leaf sibling chain). *)

val range : t -> Machine.Sched.ctx -> lo:int -> hi:int -> (int * int64) list
(** Lock-free range scan over [lo, hi] inclusive, in key order, walking
    the B-link leaf chain (the same racy reads as {!get}). *)
