type bug = {
  gt_id : int;
  gt_new : bool;
  gt_desc : string;
  gt_store_locs : string list;
  gt_load_locs : string list;
}

type benign_rule =
  | Pair of string * string
  | Store_at of string
  | Load_at of string

type classification = Malign of int | Benign | False_positive

let loc ((file, line, _, _) : string * int * int * int) =
  Printf.sprintf "%s:%d" file line

let race_locs (r : Hawkset.Report.race) =
  ( Trace.Site.location r.Hawkset.Report.store_site,
    Trace.Site.location r.Hawkset.Report.load_site )

let matches_bug (store_loc, load_loc) bug =
  List.mem store_loc bug.gt_store_locs && List.mem load_loc bug.gt_load_locs

let matches_benign (store_loc, load_loc) = function
  | Pair (s, l) -> String.equal s store_loc && String.equal l load_loc
  | Store_at s -> String.equal s store_loc
  | Load_at l -> String.equal l load_loc

let classify ~bugs ~benign race =
  let locs = race_locs race in
  match List.find_opt (matches_bug locs) bugs with
  | Some bug -> Malign bug.gt_id
  | None ->
      if List.exists (matches_benign locs) benign then Benign
      else False_positive

let bug_found ~bugs report id =
  match List.find_opt (fun b -> b.gt_id = id) bugs with
  | None -> false
  | Some bug ->
      List.exists
        (fun r -> matches_bug (race_locs r) bug)
        (Hawkset.Report.sorted report)

let pp_classification ppf = function
  | Malign id -> Format.fprintf ppf "malign(#%d)" id
  | Benign -> Format.pp_print_string ppf "benign"
  | False_positive -> Format.pp_print_string ppf "false-positive"
