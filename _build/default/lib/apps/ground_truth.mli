(** Ground-truth registry for the evaluated applications.

    Each application declares its injected bugs (the Table 2 entries) and
    the races its design tolerates. The harness matches HawkSet's reports
    against this registry to regenerate Table 2 and to automate the
    "Manual" classification of Table 4 (Malign / Benign / False Positive,
    §3.3): in the paper that classification was done by hand; here the
    bugs are injected deliberately, so the registry {e is} the manual
    knowledge. *)

type bug = {
  gt_id : int;  (** The paper's Table 2 race number. *)
  gt_new : bool;  (** Previously unknown (the ✓ column). *)
  gt_desc : string;  (** e.g. "load unpersisted pointer". *)
  gt_store_locs : string list;  (** ["file:line"] store sites. *)
  gt_load_locs : string list;  (** ["file:line"] load sites. *)
}

(** A rule declaring reported races as tolerated by design (§3.3's Benign
    persistency-induced races — typically lock-free readers that the
    application retries or revalidates). Rules are consulted only after
    the malign bugs, so a benign rule can cover a load site that also
    participates in a bug. *)
type benign_rule =
  | Pair of string * string  (** Exact (store, load) location pair. *)
  | Store_at of string  (** Any race whose store is at this location. *)
  | Load_at of string  (** Any race whose load is at this location. *)

type classification = Malign of int | Benign | False_positive

val loc : string * int * int * int -> string
(** [loc __POS__] is the ["file:line"] string of a source position — apps
    bind positions with [let site = __POS__] and pass the binding to both
    the access and the registry so the two always agree. *)

val classify :
  bugs:bug list -> benign:benign_rule list -> Hawkset.Report.race ->
  classification

val bug_found : bugs:bug list -> Hawkset.Report.t -> int -> bool
(** [bug_found ~bugs report id] is [true] when some reported race matches
    bug [id]'s site pairs. *)

val pp_classification : Format.formatter -> classification -> unit
