module S = Machine.Sched

let name = "madfs"
let block_size = 256
let log_capacity = 1 lsl 17

(* File layout:
     word 0: log tail index
     words 1 .. log_capacity: log entries, packed (vblock << 32 | pblock)
     then the block table: one physical pointer per virtual block. *)
type t = { base : int; blocks : int }

let off_tail = 0
let off_log i = 8 + (8 * i)
let off_table t v = ((1 + log_capacity) * 8) + (8 * v) + t.base

(* ---- named sites (all benign by design) ---- *)

let tail_load_pos = __POS__
let tail_cas_pos = __POS__
let log_store_pos = __POS__
let log_load_pos = __POS__
let table_store_pos = __POS__
let table_load_pos = __POS__
let data_store_pos = __POS__
let data_load_pos = __POS__

let bugs = []

let benign =
  List.map
    (fun pos -> Ground_truth.Load_at (Ground_truth.loc pos))
    [ tail_load_pos; tail_cas_pos; log_load_pos; table_load_pos; data_load_pos ]

let sync_config = Machine.Sync_config.builtin

let create ctx ~blocks =
  let size = ((1 + log_capacity + blocks) * 8) in
  let base = S.alloc ctx ~align:64 size in
  { base; blocks }

let log_length t ctx =
  Int64.to_int (S.load_i64 ctx tail_load_pos (t.base + off_tail))

let base_addr t = t.base

let recover ctx ~base ~blocks =
  let t = { base; blocks } in
  (* The log is the truth: replay every persisted entry in order. An
     entry is 8 bytes and written before the tail advances, so the
     persisted tail bounds a fully-valid prefix; zero entries (a tail
     that persisted ahead of its entry) are skipped. *)
  let tail = Int64.to_int (S.load_i64 ctx __POS__ (t.base + off_tail)) in
  for i = 0 to min tail log_capacity - 1 do
    let entry = S.load_i64 ctx __POS__ (t.base + off_log i) in
    if not (Int64.equal entry 0L) then begin
      let packed = Int64.to_int entry in
      let vblock = packed lsr 32 in
      let pblock = packed land 0xFFFFFFFF in
      S.store_i64 ctx table_store_pos (off_table t vblock) (Int64.of_int pblock)
    end
  done;
  S.persist ctx __POS__ (off_table t 0) (8 * t.blocks);
  t

let write t ctx ~offset ~data =
  S.with_frame ctx "madfs_write" @@ fun () ->
  let vblock = (offset / block_size) mod t.blocks in
  (* Copy-on-write: fresh physical block, data persisted before the log
     entry makes it reachable. *)
  let pblock = S.alloc ctx ~align:64 block_size in
  let chunk = Bytes.make block_size '\000' in
  Bytes.blit data 0 chunk 0 (min (Bytes.length data) block_size);
  S.store_bytes ctx data_store_pos pblock chunk;
  S.persist ctx data_store_pos pblock block_size;
  (* Append the 8-byte log entry atomically (lock-free tail bump). *)
  let entry = Int64.of_int ((vblock lsl 32) lor (pblock land 0xFFFFFFFF)) in
  let rec append () =
    let tail = S.load_i64 ctx tail_load_pos (t.base + off_tail) in
    let idx = Int64.to_int tail in
    if idx >= log_capacity then failwith "madfs: log full";
    if
      S.cas_i64 ctx tail_cas_pos (t.base + off_tail) ~expected:tail
        ~desired:(Int64.add tail 1L)
    then idx
    else append ()
  in
  let idx = append () in
  S.store_i64 ctx log_store_pos (t.base + off_log idx) entry;
  S.persist ctx log_store_pos (t.base + off_log idx) 8;
  (* The block table is a volatile-style cache of the log: its update is
     visible immediately and only made durable by fsync — tolerated by
     MadFS's contract (benign races). *)
  S.store_i64 ctx table_store_pos (off_table t vblock) (Int64.of_int pblock)

let read t ctx ~offset =
  S.with_frame ctx "madfs_read" @@ fun () ->
  let vblock = (offset / block_size) mod t.blocks in
  let pblock =
    Int64.to_int (S.load_i64 ctx table_load_pos (off_table t vblock))
  in
  if pblock = 0 then Bytes.make block_size '\000'
  else S.load_bytes ctx data_load_pos pblock block_size

let fsync t ctx =
  S.with_frame ctx "madfs_fsync" @@ fun () ->
  S.persist ctx __POS__ (t.base + off_tail) 8;
  S.persist ctx __POS__ (off_table t 0) (8 * t.blocks)
