(** MadFS: a userspace PM filesystem with per-file virtualization
    (FAST'23).

    Each file is a virtual-to-physical block mapping maintained through a
    compact crash-consistent log whose 8-byte entries are appended
    atomically with CAS — everything is lock-free (Table 1). Writes
    allocate a fresh physical block (copy-on-write), persist the data,
    append a log entry and update the block table.

    MadFS has {e no injected bugs}: HawkSet reports several
    persistency-induced races on it, but its relaxed, fsync-based
    guarantees tolerate all of them — they are the all-benign row of
    Table 4 ("we show that HawkSet is able to detect these races when
    MadFS is incorrectly used in a crash-consistent application", §5.1).

    Block size is scaled from the paper's 4 KiB to 256 bytes so that the
    trace volume of data stores stays proportionate in the simulator
    (documented in DESIGN.md). *)

type t

val block_size : int

val create : Machine.Sched.ctx -> blocks:int -> t
(** A file of [blocks] virtual blocks, initially holes (reads as zero). *)

val write : t -> Machine.Sched.ctx -> offset:int -> data:bytes -> unit
(** Copy-on-write block write; [offset] is rounded down to a block
    boundary and [data] is truncated/padded to one block. *)

val read : t -> Machine.Sched.ctx -> offset:int -> bytes
(** Reads the block containing [offset]. *)

val fsync : t -> Machine.Sched.ctx -> unit
(** Persists the log tail and block table — the explicit durability point
    of MadFS's contract. *)

val log_length : t -> Machine.Sched.ctx -> int

val base_addr : t -> int

val recover : Machine.Sched.ctx -> base:int -> blocks:int -> t
(** Post-crash recovery: replays the persisted log prefix into the block
    table — MadFS's "compact, crash-consistent log" is the single source
    of truth; the table is merely its cache. *)

val bugs : Ground_truth.bug list
val benign : Ground_truth.benign_rule list
val sync_config : Machine.Sync_config.t
val name : string
