module S = Machine.Sched

let name = "p-art"

(* Node type tags. *)
let tag_leaf = 1L
let tag_n4 = 4L
let tag_n16 = 16L
let tag_n48 = 48L
let tag_n256 = 256L

(* Common header: word 0 = tag, word 1 = count.
   Leaf: word 1 = key, word 2 = value.
   Children always start on their own cache line, after the header/keys
   region the bookkeeping persists cover — so a child-pointer store is
   durable only through its own (buggily deferred) persist:
   N4:   bytes 16-47 = key bytes (as words); children from byte 64.
   N16:  bytes 16-143 = key bytes; children from byte 192.
   N48:  bytes 16-271 = 256-byte child index (0 = empty, else slot+1);
         children from byte 320.
   N256: children from byte 64, indexed by key byte. *)
let leaf_size = 3 * 8
let n4_size = 128
let n16_size = 320
let n48_size = 704
let n256_size = 64 + (256 * 8)
let n48_index_off = 16
let n48_children_off = 320
let n4_children_off = 64
let n16_children_off = 192
let n256_children_off = 64

type t = { meta : int; lock : Machine.Spinlock.t }

(* ---- named sites ---- *)

(* Bug #8: add_child pointer stores, one per node type (the paper's
   N4.cpp:22 / N16.cpp:13 / N256.cpp:17); persisted after the critical
   section. *)
let bug8_n4_pos = __POS__
let bug8_n16_pos = __POS__
let bug8_n48_pos = __POS__
let bug8_n256_pos = __POS__

(* Bug #9: remove_child's slot clear; persisted after the critical
   section. *)
let bug9_store_pos = __POS__

(* Lookup-side child loads (N4.cpp:56 / N16.cpp:61 / N256.cpp:39). *)
let lf_find_n4_pos = __POS__
let lf_find_n16_pos = __POS__
let lf_find_n48_pos = __POS__
let lf_find_n256_pos = __POS__

(* Writer-side child loads (under the tree lock). *)
let wr_find_pos = __POS__

(* Benign lock-free loads. *)
let lf_tag_pos = __POS__
let lf_leaf_key_pos = __POS__
let lf_leaf_val_pos = __POS__

(* Lock-free loads of node bookkeeping (counts, key bytes, N48 index). *)
let lf_meta_pos = __POS__

let bugs =
  let l = Ground_truth.loc in
  let load_locs =
    [ l lf_find_n4_pos; l lf_find_n16_pos; l lf_find_n48_pos;
      l lf_find_n256_pos; l wr_find_pos ]
  in
  [
    {
      Ground_truth.gt_id = 8;
      gt_new = false;
      gt_desc = "load unpersisted value";
      gt_store_locs =
        [ l bug8_n4_pos; l bug8_n16_pos; l bug8_n48_pos; l bug8_n256_pos ];
      gt_load_locs = load_locs;
    };
    {
      Ground_truth.gt_id = 9;
      gt_new = false;
      gt_desc = "load unpersisted value (removal)";
      gt_store_locs = [ l bug9_store_pos ];
      gt_load_locs = load_locs;
    };
  ]

let benign =
  List.map
    (fun pos -> Ground_truth.Load_at (Ground_truth.loc pos))
    [
      lf_tag_pos; lf_leaf_key_pos; lf_leaf_val_pos; lf_find_n4_pos;
      lf_find_n16_pos; lf_find_n48_pos; lf_find_n256_pos; lf_meta_pos;
    ]

let primitive = "art_lock"
let sync_config = Machine.Sync_config.register Machine.Sync_config.builtin primitive

(* ---- construction ---- *)

let alloc_node ctx tag size =
  let n = S.alloc ctx ~align:64 size in
  S.store_i64 ctx __POS__ n tag;
  S.store_i64 ctx __POS__ (n + 8) 0L;
  n

let alloc_leaf ctx ~key ~value =
  let n = S.alloc ctx ~align:8 leaf_size in
  S.store_i64 ctx __POS__ n tag_leaf;
  S.store_i64 ctx __POS__ (n + 8) (Int64.of_int key);
  S.store_i64 ctx __POS__ (n + 16) value;
  S.persist ctx __POS__ n leaf_size;
  n

let create ctx =
  let meta = S.alloc ctx ~align:64 16 in
  let root = alloc_node ctx tag_n4 n4_size in
  S.persist ctx __POS__ root n4_size;
  S.store_i64 ctx __POS__ meta (Int64.of_int root);
  S.persist ctx __POS__ meta 8;
  { meta; lock = Machine.Spinlock.create ~primitive ctx }

let meta_addr t = t.meta

let recover_at ctx ~meta_addr =
  { meta = meta_addr; lock = Machine.Spinlock.create ~primitive ctx }

let key_byte key level = (key lsr (8 * (7 - level))) land 0xFF
let tag ctx n = S.load_i64 ctx __POS__ n
let count ctx n = Int64.to_int (S.load_i64 ctx __POS__ (n + 8))

let set_count ctx n c =
  S.store_i64 ctx __POS__ (n + 8) (Int64.of_int c)

(* ---- per-type child access (writer side unless noted) ---- *)

let n4_key ctx n i = Int64.to_int (S.load_i64 ctx __POS__ (n + 16 + (8 * i)))
let n4_child_addr n i = n + n4_children_off + (8 * i)
let n16_key ctx n i = Int64.to_int (S.load_i64 ctx __POS__ (n + 16 + (8 * i)))
let n16_child_addr n i = n + n16_children_off + (8 * i)
let n48_slot ctx n b = S.load_u8 ctx __POS__ (n + n48_index_off + b)
let n48_child_addr n s = n + n48_children_off + (8 * s)
let n256_child_addr n b = n + n256_children_off + (8 * b)

let find_child ctx pos n b =
  match Int64.to_int (tag ctx n) with
  | 4 ->
      let c = min (count ctx n) 4 in
      let rec go i =
        if i >= c then 0
        else if n4_key ctx n i = b then
          Int64.to_int (S.load_i64 ctx pos (n4_child_addr n i))
        else go (i + 1)
      in
      go 0
  | 16 ->
      let c = min (count ctx n) 16 in
      let rec go i =
        if i >= c then 0
        else if n16_key ctx n i = b then
          Int64.to_int (S.load_i64 ctx pos (n16_child_addr n i))
        else go (i + 1)
      in
      go 0
  | 48 ->
      let s = n48_slot ctx n b in
      if s = 0 then 0
      else Int64.to_int (S.load_i64 ctx pos (n48_child_addr n (s - 1)))
  | 256 -> Int64.to_int (S.load_i64 ctx pos (n256_child_addr n b))
  | _ -> 0

let is_full ctx n =
  match Int64.to_int (tag ctx n) with
  | 4 -> count ctx n >= 4
  | 16 -> count ctx n >= 16
  | 48 -> count ctx n >= 48
  | _ -> false

(* Adds [child] under byte [b]; the pointer store uses the per-type bug-#8
   site and its persist is pushed onto [deferred]. The bookkeeping words
   (count, key byte / index byte) are persisted immediately. *)
let add_child ctx n b child ~deferred =
  let child64 = Int64.of_int child in
  (* A slot whose key byte matches but whose pointer was cleared by a
     removal is reused, so delete-then-reinsert finds the new child. *)
  let existing_slot keyed_count key_of =
    let rec go i =
      if i >= keyed_count then None
      else if key_of i = b then Some i
      else go (i + 1)
    in
    go 0
  in
  match Int64.to_int (tag ctx n) with
  | 4 -> (
      match existing_slot (count ctx n) (n4_key ctx n) with
      | Some i ->
          S.store_i64 ctx bug8_n4_pos (n4_child_addr n i) child64;
          deferred := (n4_child_addr n i, 8) :: !deferred
      | None ->
          let c = count ctx n in
          S.store_i64 ctx __POS__ (n + 16 + (8 * c)) (Int64.of_int b);
          S.store_i64 ctx bug8_n4_pos (n4_child_addr n c) child64;
          set_count ctx n (c + 1);
          S.persist ctx __POS__ n 48;
          deferred := (n4_child_addr n c, 8) :: !deferred)
  | 16 -> (
      match existing_slot (count ctx n) (n16_key ctx n) with
      | Some i ->
          S.store_i64 ctx bug8_n16_pos (n16_child_addr n i) child64;
          deferred := (n16_child_addr n i, 8) :: !deferred
      | None ->
          let c = count ctx n in
          S.store_i64 ctx __POS__ (n + 16 + (8 * c)) (Int64.of_int b);
          S.store_i64 ctx bug8_n16_pos (n16_child_addr n c) child64;
          set_count ctx n (c + 1);
          S.persist ctx __POS__ n 144;
          deferred := (n16_child_addr n c, 8) :: !deferred)
  | 48 ->
      let s = n48_slot ctx n b in
      if s <> 0 then begin
        S.store_i64 ctx bug8_n48_pos (n48_child_addr n (s - 1)) child64;
        deferred := (n48_child_addr n (s - 1), 8) :: !deferred
      end
      else begin
        let c = count ctx n in
        S.store_u8 ctx __POS__ (n + n48_index_off + b) (c + 1);
        S.store_i64 ctx bug8_n48_pos (n48_child_addr n c) child64;
        set_count ctx n (c + 1);
        S.persist ctx __POS__ n n48_children_off;
        deferred := (n48_child_addr n c, 8) :: !deferred
      end
  | _ ->
      S.store_i64 ctx bug8_n256_pos (n256_child_addr n b) child64;
      set_count ctx n (count ctx n + 1);
      S.persist ctx __POS__ (n + 8) 8;
      deferred := (n256_child_addr n b, 8) :: !deferred

(* Copy all children of [n] into a fresh, larger node (initialization:
   plain stores, persisted before publication). *)
let grow ctx n =
  let each f =
    match Int64.to_int (tag ctx n) with
    | 4 ->
        for i = 0 to count ctx n - 1 do
          f (n4_key ctx n i)
            (Int64.to_int (S.load_i64 ctx wr_find_pos (n4_child_addr n i)))
        done
    | 16 ->
        for i = 0 to count ctx n - 1 do
          f (n16_key ctx n i)
            (Int64.to_int (S.load_i64 ctx wr_find_pos (n16_child_addr n i)))
        done
    | _ ->
        for b = 0 to 255 do
          let s = n48_slot ctx n b in
          if s <> 0 then
            f b
              (Int64.to_int
                 (S.load_i64 ctx wr_find_pos (n48_child_addr n (s - 1))))
        done
  in
  let ntag, size =
    match Int64.to_int (tag ctx n) with
    | 4 -> (tag_n16, n16_size)
    | 16 -> (tag_n48, n48_size)
    | _ -> (tag_n256, n256_size)
  in
  let bigger = alloc_node ctx ntag size in
  let slot = ref 0 in
  each (fun b child ->
      (match Int64.to_int ntag with
      | 16 ->
          S.store_i64 ctx __POS__ (bigger + 16 + (8 * !slot)) (Int64.of_int b);
          S.store_i64 ctx __POS__ (n16_child_addr bigger !slot)
            (Int64.of_int child)
      | 48 ->
          S.store_u8 ctx __POS__ (bigger + n48_index_off + b) (!slot + 1);
          S.store_i64 ctx __POS__ (n48_child_addr bigger !slot)
            (Int64.of_int child)
      | _ ->
          S.store_i64 ctx __POS__ (n256_child_addr bigger b)
            (Int64.of_int child));
      incr slot);
  set_count ctx bigger !slot;
  S.persist ctx __POS__ bigger size;
  bigger

(* Replace the child slot of [parent] that points to [old_child]; this is
   the growth publication and is persisted in-section (not a bug site). *)
let replace_child ctx parent b old_child new_child =
  let slot_addr =
    match Int64.to_int (tag ctx parent) with
    | 4 ->
        let rec go i =
          if i >= count ctx parent then None
          else if n4_key ctx parent i = b then Some (n4_child_addr parent i)
          else go (i + 1)
        in
        go 0
    | 16 ->
        let rec go i =
          if i >= count ctx parent then None
          else if n16_key ctx parent i = b then Some (n16_child_addr parent i)
          else go (i + 1)
        in
        go 0
    | 48 ->
        let s = n48_slot ctx parent b in
        if s = 0 then None else Some (n48_child_addr parent (s - 1))
    | _ -> Some (n256_child_addr parent b)
  in
  match slot_addr with
  | Some addr ->
      assert (Int64.to_int (S.load_i64 ctx wr_find_pos addr) = old_child);
      S.store_i64 ctx __POS__ addr (Int64.of_int new_child);
      S.persist ctx __POS__ addr 8
  | None -> assert false

let remove_child ctx n b ~deferred =
  match Int64.to_int (tag ctx n) with
  | 4 | 16 ->
      let keys_off = 16 in
      let child_addr =
        if Int64.to_int (tag ctx n) = 4 then n4_child_addr n
        else n16_child_addr n
      in
      let c = count ctx n in
      let rec go i =
        if i >= c then ()
        else if
          Int64.to_int (S.load_i64 ctx __POS__ (n + keys_off + (8 * i))) = b
        then begin
          S.store_i64 ctx bug9_store_pos (child_addr i) 0L;
          deferred := (child_addr i, 8) :: !deferred
        end
        else go (i + 1)
      in
      go 0
  | 48 ->
      let s = n48_slot ctx n b in
      if s <> 0 then begin
        S.store_i64 ctx bug9_store_pos (n48_child_addr n (s - 1)) 0L;
        deferred := (n48_child_addr n (s - 1), 8) :: !deferred
      end
  | _ ->
      S.store_i64 ctx bug9_store_pos (n256_child_addr n b) 0L;
      deferred := (n256_child_addr n b, 8) :: !deferred

(* ---- operations ---- *)

let leaf_key ctx l = Int64.to_int (S.load_i64 ctx __POS__ (l + 8))

(* True when a keyed slot for byte [b] already exists (even if cleared by
   a removal) — adding there does not need room. *)
let has_keyed_slot ctx n b =
  match Int64.to_int (tag ctx n) with
  | 4 ->
      let rec go i = i < count ctx n && (n4_key ctx n i = b || go (i + 1)) in
      go 0
  | 16 ->
      let rec go i = i < count ctx n && (n16_key ctx n i = b || go (i + 1)) in
      go 0
  | 48 -> n48_slot ctx n b <> 0
  | _ -> true

let insert t ctx ~key ~value =
  S.with_frame ctx "art_insert" @@ fun () ->
  let deferred = ref [] in
  Machine.Spinlock.lock t.lock ctx __POS__;
  let rec descend parent pb node level =
    let b = key_byte key level in
    let child = find_child ctx wr_find_pos node b in
    if child = 0 then begin
      if is_full ctx node && find_child ctx wr_find_pos node b = 0
         && not (has_keyed_slot ctx node b)
      then begin
        let bigger = grow ctx node in
        (if parent = 0 then begin
           (* Root growth: publish through the metadata block. *)
           S.store_i64 ctx __POS__ (t.meta + 0) (Int64.of_int bigger);
           S.persist ctx __POS__ (t.meta + 0) 8
         end
         else replace_child ctx parent pb node bigger);
        add_child ctx bigger b (alloc_leaf ctx ~key ~value) ~deferred
      end
      else add_child ctx node b (alloc_leaf ctx ~key ~value) ~deferred
    end
    else if Int64.equal (tag ctx child) tag_leaf then begin
      let k' = leaf_key ctx child in
      if k' = key then begin
        (* In-place value update, correctly persisted. *)
        S.store_i64 ctx __POS__ (child + 16) value;
        S.persist ctx __POS__ (child + 16) 8
      end
      else begin
        (* Build the chain of fresh N4 nodes down to the diverging byte
           (initialization: persisted before publication). *)
        let rec build lvl =
          let nb = key_byte key lvl and ob = key_byte k' lvl in
          let node' = alloc_node ctx tag_n4 n4_size in
          if nb = ob then begin
            let inner = build (lvl + 1) in
            let d = ref [] in
            add_child ctx node' nb inner ~deferred:d;
            List.iter (fun (a, s) -> S.persist ctx __POS__ a s) !d
          end
          else begin
            let d = ref [] in
            add_child ctx node' nb (alloc_leaf ctx ~key ~value) ~deferred:d;
            add_child ctx node' ob child ~deferred:d;
            List.iter (fun (a, s) -> S.persist ctx __POS__ a s) !d
          end;
          S.persist ctx __POS__ node' n4_size;
          node'
        in
        let sub = build (level + 1) in
        replace_child ctx node b child sub
      end
    end
    else descend node b child (level + 1)
  in
  let root = Int64.to_int (S.load_i64 ctx __POS__ (t.meta + 0)) in
  descend 0 0 root 0;
  Machine.Spinlock.unlock t.lock ctx __POS__;
  (* BUG #8/#9: child-slot persists happen only here, after unlock. *)
  List.iter (fun (addr, size) -> S.persist ctx __POS__ addr size) !deferred

let update = insert

let delete t ctx ~key =
  S.with_frame ctx "art_delete" @@ fun () ->
  let deferred = ref [] in
  Machine.Spinlock.lock t.lock ctx __POS__;
  let rec descend node level =
    let b = key_byte key level in
    let child = find_child ctx wr_find_pos node b in
    if child = 0 then ()
    else if Int64.equal (tag ctx child) tag_leaf then begin
      if leaf_key ctx child = key then remove_child ctx node b ~deferred
    end
    else descend child (level + 1)
  in
  let root = Int64.to_int (S.load_i64 ctx __POS__ (t.meta + 0)) in
  descend root 0;
  Machine.Spinlock.unlock t.lock ctx __POS__;
  List.iter (fun (addr, size) -> S.persist ctx __POS__ addr size) !deferred

let get t ctx ~key =
  S.with_frame ctx "art_get" @@ fun () ->
  let lf_count n =
    min (max (Int64.to_int (S.load_i64 ctx lf_meta_pos (n + 8))) 0) 256
  in
  let lf_key n i = Int64.to_int (S.load_i64 ctx lf_meta_pos (n + 16 + (8 * i))) in
  let lf_find ctx n b =
    match Int64.to_int (S.load_i64 ctx lf_tag_pos n) with
    | 4 ->
        let c = min (lf_count n) 4 in
        let rec go i =
          if i >= c then 0
          else if lf_key n i = b then
            Int64.to_int (S.load_i64 ctx lf_find_n4_pos (n4_child_addr n i))
          else go (i + 1)
        in
        go 0
    | 16 ->
        let c = min (lf_count n) 16 in
        let rec go i =
          if i >= c then 0
          else if lf_key n i = b then
            Int64.to_int (S.load_i64 ctx lf_find_n16_pos (n16_child_addr n i))
          else go (i + 1)
        in
        go 0
    | 48 ->
        let s = S.load_u8 ctx lf_meta_pos (n + n48_index_off + b) in
        if s = 0 then 0
        else Int64.to_int (S.load_i64 ctx lf_find_n48_pos (n48_child_addr n (s - 1)))
    | 256 -> Int64.to_int (S.load_i64 ctx lf_find_n256_pos (n256_child_addr n b))
    | _ -> 0
  in
  let rec descend node level =
    if node = 0 then None
    else if Int64.equal (S.load_i64 ctx lf_tag_pos node) tag_leaf then
      if Int64.to_int (S.load_i64 ctx lf_leaf_key_pos (node + 8)) = key then
        Some (S.load_i64 ctx lf_leaf_val_pos (node + 16))
      else None
    else descend (lf_find ctx node (key_byte key level)) (level + 1)
  in
  descend (Int64.to_int (S.load_i64 ctx lf_tag_pos (t.meta + 0))) 0

let node_type_counts t ctx =
  let n4 = ref 0 and n16 = ref 0 and n48 = ref 0 and n256 = ref 0 in
  let rec walk node =
    if node <> 0 then
      match Int64.to_int (tag ctx node) with
      | 1 -> ()
      | 4 ->
          incr n4;
          for i = 0 to count ctx node - 1 do
            walk (Int64.to_int (S.load_i64 ctx __POS__ (n4_child_addr node i)))
          done
      | 16 ->
          incr n16;
          for i = 0 to count ctx node - 1 do
            walk (Int64.to_int (S.load_i64 ctx __POS__ (n16_child_addr node i)))
          done
      | 48 ->
          incr n48;
          for b = 0 to 255 do
            let s = n48_slot ctx node b in
            if s <> 0 then
              walk
                (Int64.to_int
                   (S.load_i64 ctx __POS__ (n48_child_addr node (s - 1))))
          done
      | 256 ->
          incr n256;
          for b = 0 to 255 do
            walk (Int64.to_int (S.load_i64 ctx __POS__ (n256_child_addr node b)))
          done
      | _ -> ()
  in
  walk (Int64.to_int (S.load_i64 ctx __POS__ (t.meta + 0)));
  (!n4, !n16, !n48, !n256)
