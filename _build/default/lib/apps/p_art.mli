(** P-ART: a crash-consistent adaptive radix tree (RECIPE, SOSP'19; the
    Durinn-provided variant of §5).

    Keys are traversed byte-by-byte; nodes adapt among the classic ART
    arities N4 / N16 / N48 / N256, growing in place-replacement style
    (copy to the bigger node, swap the parent pointer). Writes take the
    tree lock — modelled as a custom ["art_lock"] primitive that needs a
    sync-configuration entry (§5.5) — and gets are lock-free.

    Injected bugs (Table 2, believed to match Durinn's reports):
    - {b Bug #8}: the child-pointer stores of every [add_child] variant
      are persisted only after the critical section; a lock-free lookup
      can traverse (and a crash can orphan) the unpersisted child.
    - {b Bug #9}: [remove_child] clears the slot but persists the clear
      after the critical section — a lookup's "not found" can outlive a
      crash that resurrects the child. *)

include App_intf.KV

val node_type_counts : t -> Machine.Sched.ctx -> int * int * int * int
(** (n4, n16, n48, n256) populations — checks that growth actually
    exercises every node type. *)

val meta_addr : t -> int
val recover_at : Machine.Sched.ctx -> meta_addr:int -> t
