(** P-CLHT: a PM cache-line hash table (RECIPE, SOSP'19).

    Buckets are cache-line-sized (three key/value pairs plus an overflow
    chain pointer). Insertions and updates synchronize on per-bucket
    CAS-based locks — modelled as {!Machine.Spinlock} with the
    ["clht_cas_lock"] primitive, which needs a sync-configuration entry
    exactly like the paper had to wrap P-CLHT's CAS instructions (§5.5).
    Rehashing takes a global pthread mutex; gets are lock-free.

    Injected bug (Table 2 {b #4}, known): rehashing allocates a new table,
    re-inserts and persists every entry, then swaps the root pointer — but
    the root's persist happens only after the rehash lock is released.
    A thread that inserts through the unpersisted root loses its durable
    entry if the system crashes before the late persist. *)

include App_intf.KV

val bucket_count : t -> Machine.Sched.ctx -> int
(** Current number of top-level buckets (doubles on rehash). *)

val header_addr : t -> int

val recover : Machine.Sched.ctx -> header_addr:int -> t
(** Reopens the table from a (post-crash) heap: the root pointer read
    from PM decides which table generation survived — bug #4's damage is
    a crash landing on the OLD generation after inserts were acknowledged
    into the new one. *)
