module S = Machine.Sched

let name = "p-masstree"
let leaf_slots = 14 (* permutation word: 4 count bits + 14 rank nibbles *)
let inner_order = 8

(* Border (leaf) node layout:
     word 0: tag (1 = leaf, 2 = inner)
     word 1: permutation (bits 0-3 count, bits 4+4i slot of rank i)
     word 2: nslots (physical slots used; slots are append-only)
     word 3 + 2i: key_i   word 4 + 2i: val_i *)
let leaf_size = (3 + (2 * leaf_slots)) * 8
let off_tag = 0
let off_perm = 8
let off_nslots = 16
let off_key i = 24 + (16 * i)
let off_val i = 32 + (16 * i)

(* Inner node layout: word 0 tag, word 1 count, word 2+2i key_i,
   word 3+2i child_i. Entry 0's key is a minimum sentinel. *)
let inner_size = (2 + (2 * inner_order)) * 8
let off_count = 8
let off_ikey i = 16 + (16 * i)
let off_child i = 24 + (16 * i)
let leaf_tag = 1L
let inner_tag = 2L

type t = { meta : int; lock : Machine.Mutex.t }

(* ---- permutation word helpers (pure arithmetic) ---- *)

let perm_count p = p land 0xF
let perm_slot p rank = (p lsr (4 + (4 * rank))) land 0xF

let perm_insert p rank slot =
  let c = perm_count p in
  let low_mask = (1 lsl (4 + (4 * rank))) - 1 in
  let low = p land low_mask land lnot 0xF in
  let high = p land lnot low_mask in
  ((high lsl 4) lor (slot lsl (4 + (4 * rank))) lor low lor (c + 1))
  land max_int

let perm_remove p rank =
  let c = perm_count p in
  let rec rebuild r acc =
    if r >= c then acc
    else if r = rank then rebuild (r + 1) acc
    else
      let dst = if r < rank then r else r - 1 in
      rebuild (r + 1) (acc lor (perm_slot p r lsl (4 + (4 * dst))))
  in
  rebuild 0 (c - 1)

(* ---- named sites ---- *)

(* Bug #5: the entry stores of a plain insert; their persist is deferred
   past the critical section while the permutation is already durable. *)
let bug5_key_store_pos = __POS__
let bug5_val_store_pos = __POS__

(* Bug #6: the entry stores that populate the right replacement leaf
   during a split; also persisted too late. *)
let bug6_key_store_pos = __POS__
let bug6_val_store_pos = __POS__

(* Bug #7: the permutation store that hides a deleted key; persisted
   after the critical section. *)
let bug7_store_pos = __POS__

(* Loads that can observe the racy data. *)
let lf_val_load_pos = __POS__ (* lock-free get's value read (bugs #5/#6) *)
let lf_key_load_pos = __POS__
let lf_perm_load_pos = __POS__ (* lock-free get's permutation read (bug #7) *)
let wr_kv_load_pos = __POS__ (* writer-side entry reads (scans, splits) *)
let wr_perm_load_pos = __POS__

(* Benign-only lock-free descend loads. *)
let lf_tag_load_pos = __POS__
let lf_inner_load_pos = __POS__
let lf_root_load_pos = __POS__

let bugs =
  let l = Ground_truth.loc in
  [
    {
      Ground_truth.gt_id = 5;
      gt_new = false;
      gt_desc = "load unpersisted value";
      gt_store_locs = [ l bug5_key_store_pos; l bug5_val_store_pos ];
      gt_load_locs =
        [ l lf_val_load_pos; l lf_key_load_pos; l wr_kv_load_pos ];
    };
    {
      Ground_truth.gt_id = 6;
      gt_new = false;
      gt_desc = "load unpersisted value";
      gt_store_locs = [ l bug6_key_store_pos; l bug6_val_store_pos ];
      gt_load_locs =
        [ l lf_val_load_pos; l lf_key_load_pos; l wr_kv_load_pos ];
    };
    {
      Ground_truth.gt_id = 7;
      gt_new = false;
      gt_desc = "unpersisted removal";
      gt_store_locs = [ l bug7_store_pos ];
      gt_load_locs = [ l lf_perm_load_pos; l wr_perm_load_pos ];
    };
  ]

let benign =
  List.map
    (fun pos -> Ground_truth.Load_at (Ground_truth.loc pos))
    [
      lf_val_load_pos; lf_key_load_pos; lf_perm_load_pos; lf_tag_load_pos;
      lf_inner_load_pos; lf_root_load_pos;
    ]

let sync_config = Machine.Sync_config.builtin

(* ---- node construction ---- *)

let alloc_leaf ctx =
  let n = S.alloc ctx ~align:64 leaf_size in
  S.store_i64 ctx __POS__ (n + off_tag) leaf_tag;
  S.store_i64 ctx __POS__ (n + off_perm) 0L;
  S.store_i64 ctx __POS__ (n + off_nslots) 0L;
  n

let alloc_inner ctx =
  let n = S.alloc ctx ~align:64 inner_size in
  S.store_i64 ctx __POS__ (n + off_tag) inner_tag;
  S.store_i64 ctx __POS__ (n + off_count) 0L;
  n

let create ctx =
  let meta = S.alloc ctx ~align:64 16 in
  let root = alloc_leaf ctx in
  S.persist ctx __POS__ root leaf_size;
  S.store_i64 ctx __POS__ meta (Int64.of_int root);
  S.persist ctx __POS__ meta 8;
  { meta; lock = Machine.Mutex.create ctx }

let root ctx t = Int64.to_int (S.load_i64 ctx __POS__ (t.meta + 0))
let meta_addr t = t.meta

let recover ctx ~meta_addr =
  { meta = meta_addr; lock = Machine.Mutex.create ctx }
let is_leaf ctx n = Int64.equal (S.load_i64 ctx __POS__ (n + off_tag)) leaf_tag

(* ---- writer-side helpers (under the tree lock) ---- *)

let icount ctx n = Int64.to_int (S.load_i64 ctx __POS__ (n + off_count))
let ikey ctx n i = S.load_i64 ctx __POS__ (n + off_ikey i)
let ichild ctx n i = Int64.to_int (S.load_i64 ctx __POS__ (n + off_child i))
let perm ctx n = Int64.to_int (S.load_i64 ctx wr_perm_load_pos (n + off_perm))
let nslots ctx n = Int64.to_int (S.load_i64 ctx __POS__ (n + off_nslots))
let kv_key ctx n i = S.load_i64 ctx wr_kv_load_pos (n + off_key i)
let kv_val ctx n i = S.load_i64 ctx wr_kv_load_pos (n + off_val i)

let child_for ctx n key =
  let c = icount ctx n in
  let rec go i best =
    if i >= c then best
    else if ikey ctx n i <= key then go (i + 1) i
    else best
  in
  ichild ctx n (go 1 0)

(* Rank of [key] in the leaf's sorted view, or the insertion rank. *)
let leaf_rank ctx n key =
  let p = perm ctx n in
  let c = perm_count p in
  let rec go r =
    if r >= c then `Insert_at r
    else
      let k = kv_key ctx n (perm_slot p r) in
      if Int64.equal k key then `Found r
      else if k > key then `Insert_at r
      else go (r + 1)
  in
  go 0

(* Insert into a non-full leaf. Returns the deferred persists: the entry
   words are persisted only after the critical section (bug #5). *)
let leaf_insert ctx n key value ~kv_pos ~deferred =
  let p = perm ctx n in
  match leaf_rank ctx n key with
  | `Found r ->
      let slot = perm_slot p r in
      S.store_i64 ctx bug5_val_store_pos (n + off_val slot) value;
      deferred := (n + off_val slot, 8) :: !deferred
  | `Insert_at r ->
      let slot = nslots ctx n in
      let kpos, vpos = kv_pos in
      S.store_i64 ctx kpos (n + off_key slot) key;
      S.store_i64 ctx vpos (n + off_val slot) value;
      S.store_i64 ctx __POS__ (n + off_nslots) (Int64.of_int (slot + 1));
      let p' = perm_insert p r slot in
      S.store_i64 ctx __POS__ (n + off_perm) (Int64.of_int p');
      (* The permutation — the publication — is durable immediately; the
         entry itself is not (bug #5/#6). *)
      S.persist ctx __POS__ (n + off_perm) 16;
      deferred := (n + off_key slot, 16) :: !deferred

let leaf_full ctx n =
  perm_count (perm ctx n) >= leaf_slots || nslots ctx n >= leaf_slots

(* Split a full leaf into two fresh, compacted leaves. The left one is
   persisted here; the right one's entries are persisted by the caller
   after the critical section (bug #6). *)
let split_leaf ctx n ~deferred =
  let p = perm ctx n in
  let c = perm_count p in
  let half = c / 2 in
  let left = alloc_leaf ctx and right = alloc_leaf ctx in
  let fill dst ~kv_pos first last =
    let kpos, vpos = kv_pos in
    let pm = ref 0 in
    for r = first to last do
      let slot = r - first in
      S.store_i64 ctx kpos (dst + off_key slot) (kv_key ctx n (perm_slot p r));
      S.store_i64 ctx vpos (dst + off_val slot) (kv_val ctx n (perm_slot p r));
      pm := perm_insert !pm slot slot
    done;
    S.store_i64 ctx __POS__ (dst + off_perm) (Int64.of_int !pm);
    S.store_i64 ctx __POS__ (dst + off_nslots) (Int64.of_int (last - first + 1))
  in
  fill left ~kv_pos:(__POS__, __POS__) 0 (half - 1);
  S.persist ctx __POS__ left leaf_size;
  fill right ~kv_pos:(bug6_key_store_pos, bug6_val_store_pos) half (c - 1);
  (* BUG #6: only the right leaf's header and permutation are flushed —
     the copied entries are never explicitly persisted, so readers act on
     values that a crash can erase while the permutation survives. *)
  S.persist ctx __POS__ (right + off_tag) 24;
  ignore deferred;
  let median = kv_key ctx n (perm_slot p half) in
  (left, median, right)

let inner_insert_at ctx n key child =
  let c = icount ctx n in
  let rec slot i = if i >= c then c else if ikey ctx n i > key then i else slot (i + 1) in
  let s = slot 0 in
  for j = c - 1 downto s do
    S.store_i64 ctx __POS__ (n + off_ikey (j + 1)) (ikey ctx n j);
    S.store_i64 ctx __POS__ (n + off_child (j + 1))
      (Int64.of_int (ichild ctx n j))
  done;
  S.store_i64 ctx __POS__ (n + off_ikey s) key;
  S.store_i64 ctx __POS__ (n + off_child s) (Int64.of_int child);
  S.store_i64 ctx __POS__ (n + off_count) (Int64.of_int (c + 1));
  S.persist ctx __POS__ n inner_size

let split_inner ctx n =
  let c = icount ctx n in
  let half = c / 2 in
  let sib = alloc_inner ctx in
  for j = half to c - 1 do
    S.store_i64 ctx __POS__ (sib + off_ikey (j - half)) (ikey ctx n j);
    S.store_i64 ctx __POS__ (sib + off_child (j - half))
      (Int64.of_int (ichild ctx n j))
  done;
  S.store_i64 ctx __POS__ (sib + off_count) (Int64.of_int (c - half));
  S.persist ctx __POS__ sib inner_size;
  S.store_i64 ctx __POS__ (n + off_count) (Int64.of_int half);
  S.persist ctx __POS__ (n + off_count) 8;
  (ikey ctx sib 0, sib)

let replace_child ctx n old_child left =
  let c = icount ctx n in
  let rec go i =
    if i >= c then ()
    else if ichild ctx n i = old_child then begin
      S.store_i64 ctx __POS__ (n + off_child i) (Int64.of_int left);
      S.persist ctx __POS__ (n + off_child i) 8
    end
    else go (i + 1)
  in
  go 0

(* Returns [Some (replacement, promoted_key, promoted_node)] when this
   subtree's node was replaced/split. *)
let rec insert_rec ctx n key value ~deferred =
  if is_leaf ctx n then
    if not (leaf_full ctx n) then begin
      leaf_insert ctx n key value
        ~kv_pos:(bug5_key_store_pos, bug5_val_store_pos)
        ~deferred;
      None
    end
    else begin
      let left, median, right = split_leaf ctx n ~deferred in
      let target = if key >= median then right else left in
      leaf_insert ctx target key value
        ~kv_pos:(bug5_key_store_pos, bug5_val_store_pos)
        ~deferred;
      Some (left, median, right)
    end
  else begin
    let child = child_for ctx n key in
    match insert_rec ctx child key value ~deferred with
    | None -> None
    | Some (left, median, right) ->
        replace_child ctx n child left;
        if icount ctx n < inner_order then begin
          inner_insert_at ctx n median right;
          None
        end
        else begin
          let up_median, sib = split_inner ctx n in
          let target = if median >= up_median then sib else n in
          inner_insert_at ctx target median right;
          Some (n, up_median, sib)
        end
  end

let insert t ctx ~key ~value =
  S.with_frame ctx "mt_insert" @@ fun () ->
  let deferred = ref [] in
  Machine.Mutex.lock t.lock ctx __POS__;
  let r = root ctx t in
  (match insert_rec ctx r (Int64.of_int key) value ~deferred with
  | None -> ()
  | Some (left, median, right) ->
      let new_root = alloc_inner ctx in
      S.store_i64 ctx __POS__ (new_root + off_ikey 0) Int64.min_int;
      S.store_i64 ctx __POS__ (new_root + off_child 0) (Int64.of_int left);
      S.store_i64 ctx __POS__ (new_root + off_ikey 1) median;
      S.store_i64 ctx __POS__ (new_root + off_child 1) (Int64.of_int right);
      S.store_i64 ctx __POS__ (new_root + off_count) 2L;
      S.persist ctx __POS__ new_root inner_size;
      S.store_i64 ctx __POS__ t.meta (Int64.of_int new_root);
      S.persist ctx __POS__ t.meta 8);
  Machine.Mutex.unlock t.lock ctx __POS__;
  (* BUGS #5/#6: entry persists happen only here, after unlock. *)
  List.iter (fun (addr, size) -> S.persist ctx __POS__ addr size) !deferred

let update = insert

let rec find_leaf ctx n key =
  if is_leaf ctx n then n else find_leaf ctx (child_for ctx n key) key

let delete t ctx ~key =
  S.with_frame ctx "mt_delete" @@ fun () ->
  let deferred = ref [] in
  Machine.Mutex.lock t.lock ctx __POS__;
  let leaf = find_leaf ctx (root ctx t) (Int64.of_int key) in
  (match leaf_rank ctx leaf (Int64.of_int key) with
  | `Found r ->
      let p' = perm_remove (perm ctx leaf) r in
      S.store_i64 ctx bug7_store_pos (leaf + off_perm) (Int64.of_int p');
      deferred := [ (leaf + off_perm, 8) ]
  | `Insert_at _ -> ());
  Machine.Mutex.unlock t.lock ctx __POS__;
  (* BUG #7: the removal's permutation store persists after unlock. *)
  List.iter (fun (addr, size) -> S.persist ctx __POS__ addr size) !deferred

(* ---- lock-free read side ---- *)

let get t ctx ~key =
  S.with_frame ctx "mt_get" @@ fun () ->
  let k64 = Int64.of_int key in
  let rec descend n =
    if Int64.equal (S.load_i64 ctx lf_tag_load_pos (n + off_tag)) leaf_tag then n
    else begin
      let c =
        let c = Int64.to_int (S.load_i64 ctx lf_inner_load_pos (n + off_count)) in
        min (max c 1) inner_order
      in
      let rec pick i best =
        if i >= c then best
        else if S.load_i64 ctx lf_inner_load_pos (n + off_ikey i) <= k64 then
          pick (i + 1) i
        else best
      in
      let child =
        Int64.to_int (S.load_i64 ctx lf_inner_load_pos (n + off_child (pick 1 0)))
      in
      if child = 0 then n else descend child
    end
  in
  let leaf =
    descend (Int64.to_int (S.load_i64 ctx lf_root_load_pos (t.meta + 0)))
  in
  let p = Int64.to_int (S.load_i64 ctx lf_perm_load_pos (leaf + off_perm)) in
  let c = min (perm_count p) leaf_slots in
  let rec scan r =
    if r >= c then None
    else
      let slot = perm_slot p r in
      if Int64.equal (S.load_i64 ctx lf_key_load_pos (leaf + off_key slot)) k64
      then Some (S.load_i64 ctx lf_val_load_pos (leaf + off_val slot))
      else scan (r + 1)
  in
  scan 0

let scan t ctx ~lo ~hi =
  S.with_frame ctx "mt_scan" @@ fun () ->
  Machine.Mutex.with_lock t.lock ctx __POS__ @@ fun () ->
  let lo64 = Int64.of_int lo and hi64 = Int64.of_int hi in
  let out = ref [] in
  let rec walk n =
    if is_leaf ctx n then begin
      let p = perm ctx n in
      for r = perm_count p - 1 downto 0 do
        let slot = perm_slot p r in
        let k = kv_key ctx n slot in
        if k >= lo64 && k <= hi64 then
          out := (Int64.to_int k, kv_val ctx n slot) :: !out
      done
    end
    else begin
      (* Visit children whose key range can intersect [lo, hi]. *)
      let c = icount ctx n in
      for i = c - 1 downto 0 do
        let child_min = ikey ctx n i in
        let child_max = if i + 1 < c then ikey ctx n (i + 1) else Int64.max_int in
        if child_min <= hi64 && child_max >= lo64 then walk (ichild ctx n i)
      done
    end
  in
  walk (root ctx t);
  List.sort compare !out

let leaf_count t ctx =
  let rec go n =
    if is_leaf ctx n then 1
    else begin
      let c = icount ctx n in
      let total = ref 0 in
      for i = 0 to c - 1 do
        total := !total + go (ichild ctx n i)
      done;
      !total
    end
  in
  go (root ctx t)
