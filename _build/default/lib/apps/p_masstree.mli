(** P-Masstree: a PM B+-trie with permutation-based border nodes
    (RECIPE, SOSP'19; the Durinn-provided variant of §5).

    Border (leaf) nodes hold up to 15 entries in {e append-only} physical
    slots; the logical, sorted view lives in a single packed permutation
    word, updated with one atomic store — Masstree's signature mechanism.
    Writes take the tree lock; gets are lock-free (Table 1: Lock /
    Lock-Free).

    Injected bugs (Table 2, believed to match Durinn's reports):
    - {b Bug #5}: insert stores the entry, publishes it through the
      permutation word and persists the permutation — but the entry's own
      persist is deferred until after the critical section. A lock-free
      get returns a value whose durability is not guaranteed, and a crash
      leaves a durable permutation pointing at garbage.
    - {b Bug #6}: the same deferred entry persist on the leaf-split path:
      the two replacement leaves are published before the right one's
      entries are durable.
    - {b Bug #7}: delete updates the permutation word (hiding the key)
      but persists it only after the critical section: a get's "not
      found" side effect can survive a crash that resurrects the key
      ("unpersisted removal"). *)

include App_intf.KV

val leaf_count : t -> Machine.Sched.ctx -> int
(** Number of border nodes (testing aid). *)

val meta_addr : t -> int
val recover : Machine.Sched.ctx -> meta_addr:int -> t

val scan : t -> Machine.Sched.ctx -> lo:int -> hi:int -> (int * int64) list
(** Masstree's scan operation — performed under the tree lock like its
    puts and deletes (§5: "performs put, scan and delete operations using
    locks while get operations are lock-free"). In-order over [lo, hi]
    inclusive. *)
