module S = Machine.Sched

let name = "pmlog"
let capacity = 1 lsl 16

(* Layout: word 0 = entry count; entries follow, 3 words each:
   (key, value, op) with op 1 = put, 2 = delete. Reads scan the log
   backwards for the newest entry of a key; a volatile index would be the
   obvious optimization but the point here is PM correctness, not speed —
   so a small volatile cache fronts the log and is rebuilt on recovery. *)
type t = {
  base : int;
  lock : Machine.Rwlock.t;
  index : (int, int option) Hashtbl.t;
      (* volatile: key -> position of its newest entry (None = deleted) *)
}

let off_count = 0
let off_key i = 8 + (24 * i)
let off_val i = 16 + (24 * i)
let off_op i = 24 + (24 * i)

let bugs = []
let benign = []
let sync_config = Machine.Sync_config.builtin

let create ctx =
  let base = S.alloc ctx ~align:64 (8 + (24 * capacity)) in
  (* The fresh region is durable zeros: count = 0 needs no persist. *)
  { base; lock = Machine.Rwlock.create ctx; index = Hashtbl.create 1024 }

let base_addr t = t.base

let recover ctx ~base =
  let t =
    { base; lock = Machine.Rwlock.create ctx; index = Hashtbl.create 1024 }
  in
  let n = Int64.to_int (S.load_i64 ctx __POS__ (t.base + off_count)) in
  for i = 0 to min n capacity - 1 do
    let key = Int64.to_int (S.load_i64 ctx __POS__ (t.base + off_key i)) in
    let op = S.load_i64 ctx __POS__ (t.base + off_op i) in
    Hashtbl.replace t.index key (if Int64.equal op 1L then Some i else None)
  done;
  t

let entries t ctx =
  Machine.Rwlock.with_read t.lock ctx __POS__ @@ fun () ->
  Int64.to_int (S.load_i64 ctx __POS__ (t.base + off_count))

let append t ctx ~key ~value ~op =
  Machine.Rwlock.with_write t.lock ctx __POS__ @@ fun () ->
  let n = Int64.to_int (S.load_i64 ctx __POS__ (t.base + off_count)) in
  if n >= capacity then failwith "pmlog: log full";
  (* Entry first, fully persisted, THEN the count that publishes it —
     both inside the exclusive section. *)
  S.store_i64 ctx __POS__ (t.base + off_key n) (Int64.of_int key);
  S.store_i64 ctx __POS__ (t.base + off_val n) value;
  S.store_i64 ctx __POS__ (t.base + off_op n) op;
  S.persist ctx __POS__ (t.base + off_key n) 24;
  S.store_i64 ctx __POS__ (t.base + off_count) (Int64.of_int (n + 1));
  S.persist ctx __POS__ (t.base + off_count) 8;
  Hashtbl.replace t.index key (if Int64.equal op 1L then Some n else None)

let insert t ctx ~key ~value = append t ctx ~key ~value ~op:1L
let update = insert
let delete t ctx ~key = append t ctx ~key ~value:0L ~op:2L

let get t ctx ~key =
  Machine.Rwlock.with_read t.lock ctx __POS__ @@ fun () ->
  match Hashtbl.find_opt t.index key with
  | Some (Some pos) ->
      (* Read the PM entry under the shared lock and validate the key. *)
      if Int64.to_int (S.load_i64 ctx __POS__ (t.base + off_key pos)) = key
      then Some (S.load_i64 ctx __POS__ (t.base + off_val pos))
      else None
  | Some None | None -> None
