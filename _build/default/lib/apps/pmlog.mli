(** Pmlog: a deliberately {e correct} PM key-value store.

    The control group for the detector: a log-structured store whose
    every persist happens inside the critical section that made the data
    visible, guarded by a reader-writer lock (writers exclusive, reads
    shared). Structures are fully persisted before publication.

    HawkSet must report {e nothing} on it — `test_apps.ml` pins that down
    — demonstrating that the analysis's reports on the nine target
    applications are properties of those applications, not noise the tool
    produces on any concurrent PM program. Not part of the paper's Table 1
    registry; it exists for validation. *)

include App_intf.KV

val entries : t -> Machine.Sched.ctx -> int
(** Log length (live + superseded entries). *)

val base_addr : t -> int

val recover : Machine.Sched.ctx -> base:int -> t
(** Rebuilds the volatile index by replaying the persisted log prefix.
    Because every append persists its entry before committing the count,
    recovery sees exactly the acknowledged operations — the
    crash-consistency property the qcheck test pins down. *)
