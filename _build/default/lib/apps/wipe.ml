module S = Machine.Sched

let name = "wipe"
let slots = 256
let initial_capacity = 8

(* Bucket ("bentry") layout: word 0 = capacity, word 1 = count,
   then (key, value) pairs.
   Root block: [slots] bucket pointers (the learned model's targets). *)
let bucket_bytes cap = (2 + (2 * cap)) * 8
let off_cap = 0
let off_cnt = 8
let off_key i = 16 + (16 * i)
let off_val i = 24 + (16 * i)

type t = { root : int; locks : Machine.Mutex.t array }

(* ---- named sites ---- *)

(* #16/#17: put's key/value stores; persisted after unlock. *)
let bug16_key_store_pos = __POS__
let bug17_val_store_pos = __POS__

(* #18: the expansion's bucket-pointer swap; never persisted. *)
let bug18_store_pos = __POS__

(* Locked loads that observe them. *)
let get_key_load_pos = __POS__
let get_val_load_pos = __POS__
let bucket_ptr_load_pos = __POS__

(* Writer-side entry loads (sorted insert, expansion copy). *)
let wr_entry_load_pos = __POS__

(* Count store/load (persisted in-section). *)
let count_store_pos = __POS__

(* Lock-free fast-path probe of get (benign: WIPE tolerates a stale
   emptiness check — the locked scan revalidates). *)
let lf_count_probe_pos = __POS__
let lf_bucket_probe_pos = __POS__

let bugs =
  let l = Ground_truth.loc in
  [
    { Ground_truth.gt_id = 16; gt_new = true;
      gt_desc = "load unpersisted key";
      gt_store_locs = [ l bug16_key_store_pos ];
      gt_load_locs = [ l get_key_load_pos; l wr_entry_load_pos ] };
    { Ground_truth.gt_id = 17; gt_new = true;
      gt_desc = "load unpersisted value";
      gt_store_locs = [ l bug17_val_store_pos ];
      gt_load_locs = [ l get_val_load_pos; l wr_entry_load_pos ] };
    { Ground_truth.gt_id = 18; gt_new = true;
      gt_desc = "load unpersisted pointer";
      gt_store_locs = [ l bug18_store_pos ];
      gt_load_locs = [ l bucket_ptr_load_pos ] };
  ]

let benign =
  [
    Ground_truth.Load_at (Ground_truth.loc lf_count_probe_pos);
    Ground_truth.Load_at (Ground_truth.loc lf_bucket_probe_pos);
  ]
let sync_config = Machine.Sync_config.builtin

(* The "learned model": trained on the workload's key distribution so
   keys spread evenly over the buckets; we model this with a fixed mixing
   transform of the key. *)
let model_slot key =
  let h = key lxor (key lsr 33) in
  let h = h * 0x2545F4914F6CDD1D in
  (h lxor (h lsr 29)) land max_int land (slots - 1)


let alloc_bucket ctx cap =
  let b = S.alloc ctx ~align:64 (bucket_bytes cap) in
  S.store_i64 ctx __POS__ (b + off_cap) (Int64.of_int cap);
  S.store_i64 ctx __POS__ (b + off_cnt) 0L;
  S.persist ctx __POS__ b 16;
  b

let create ctx =
  let root = S.alloc ctx ~align:64 (8 * slots) in
  for i = 0 to slots - 1 do
    let b = alloc_bucket ctx initial_capacity in
    S.store_i64 ctx __POS__ (root + (8 * i)) (Int64.of_int b)
  done;
  S.persist ctx __POS__ root (8 * slots);
  { root; locks = Array.init slots (fun _ -> Machine.Mutex.create ctx) }

let root_addr t = t.root

let recover ctx ~root_addr =
  { root = root_addr;
    locks = Array.init slots (fun _ -> Machine.Mutex.create ctx) }

let bucket_of t ctx slot =
  Int64.to_int (S.load_i64 ctx bucket_ptr_load_pos (t.root + (8 * slot)))

let cap ctx b = Int64.to_int (S.load_i64 ctx __POS__ (b + off_cap))
let cnt ctx b = Int64.to_int (S.load_i64 ctx __POS__ (b + off_cnt))
let bucket_capacity t ctx ~slot = cap ctx (bucket_of t ctx slot)

(* Expansion: copy entries into a double-size bucket (persisted), then
   swap the root pointer — which is never persisted (bug #18). *)
let expand t ctx slot b =
  let c = cnt ctx b in
  let new_cap = 2 * cap ctx b in
  let nb = alloc_bucket ctx new_cap in
  for i = 0 to c - 1 do
    S.store_i64 ctx __POS__ (nb + off_key i)
      (S.load_i64 ctx wr_entry_load_pos (b + off_key i));
    S.store_i64 ctx __POS__ (nb + off_val i)
      (S.load_i64 ctx wr_entry_load_pos (b + off_val i))
  done;
  S.store_i64 ctx __POS__ (nb + off_cnt) (Int64.of_int c);
  S.persist ctx __POS__ nb (bucket_bytes new_cap);
  (* BUG #18: the pointer swap is atomic and visible — and never
     flushed. *)
  S.store_i64 ctx bug18_store_pos (t.root + (8 * slot)) (Int64.of_int nb);
  nb

let insert t ctx ~key ~value =
  S.with_frame ctx "wipe_put" @@ fun () ->
  let slot = model_slot key in
  let deferred = ref [] in
  Machine.Mutex.lock t.locks.(slot) ctx __POS__;
  let b = bucket_of t ctx slot in
  let b = if cnt ctx b >= cap ctx b then expand t ctx slot b else b in
  let c = cnt ctx b in
  let k64 = Int64.of_int key in
  let rec existing i =
    if i >= c then None
    else if Int64.equal (S.load_i64 ctx wr_entry_load_pos (b + off_key i)) k64
    then Some i
    else existing (i + 1)
  in
  (match existing 0 with
  | Some i ->
      S.store_i64 ctx bug17_val_store_pos (b + off_val i) value;
      deferred := [ (b + off_val i, 8) ]
  | None ->
      (* Sorted insert: shift the tail right. *)
      let rec slot_for i =
        if i >= c then i
        else if S.load_i64 ctx wr_entry_load_pos (b + off_key i) > k64 then i
        else slot_for (i + 1)
      in
      let pos = slot_for 0 in
      for j = c - 1 downto pos do
        S.store_i64 ctx bug16_key_store_pos (b + off_key (j + 1))
          (S.load_i64 ctx wr_entry_load_pos (b + off_key j));
        S.store_i64 ctx bug17_val_store_pos (b + off_val (j + 1))
          (S.load_i64 ctx wr_entry_load_pos (b + off_val j))
      done;
      S.store_i64 ctx bug16_key_store_pos (b + off_key pos) k64;
      S.store_i64 ctx bug17_val_store_pos (b + off_val pos) value;
      S.store_i64 ctx count_store_pos (b + off_cnt) (Int64.of_int (c + 1));
      S.persist ctx __POS__ (b + off_cnt) 8;
      deferred := [ (b + off_key pos, 16 * (c + 1 - pos)) ]);
  Machine.Mutex.unlock t.locks.(slot) ctx __POS__;
  (* BUG #16/#17: the entries persist in a separate, re-acquired critical
     section (the Figure 2d shape): the lock is the same, but the atomic
     section is not — only the timestamped effective lockset sees it. *)
  if !deferred <> [] then
    Machine.Mutex.with_lock t.locks.(slot) ctx __POS__ (fun () ->
        List.iter (fun (addr, size) -> S.persist ctx __POS__ addr size)
          !deferred)

let update = insert

let get t ctx ~key =
  S.with_frame ctx "wipe_get" @@ fun () ->
  let slot = model_slot key in
  (* Lock-free emptiness fast path (revalidated under the lock). *)
  let b0 = Int64.to_int (S.load_i64 ctx lf_bucket_probe_pos (t.root + (8 * slot))) in
  if Int64.equal (S.load_i64 ctx lf_count_probe_pos (b0 + off_cnt)) 0L then None
  else
  Machine.Mutex.with_lock t.locks.(slot) ctx __POS__ @@ fun () ->
  let b = bucket_of t ctx slot in
  let c = cnt ctx b in
  let k64 = Int64.of_int key in
  let rec scan i =
    if i >= c then None
    else if Int64.equal (S.load_i64 ctx get_key_load_pos (b + off_key i)) k64
    then Some (S.load_i64 ctx get_val_load_pos (b + off_val i))
    else scan (i + 1)
  in
  scan 0

let delete t ctx ~key =
  S.with_frame ctx "wipe_delete" @@ fun () ->
  let slot = model_slot key in
  let deferred = ref [] in
  Machine.Mutex.lock t.locks.(slot) ctx __POS__;
  let b = bucket_of t ctx slot in
  let c = cnt ctx b in
  let k64 = Int64.of_int key in
  let rec scan i =
    if i >= c then ()
    else if Int64.equal (S.load_i64 ctx wr_entry_load_pos (b + off_key i)) k64
    then begin
      for j = i to c - 2 do
        S.store_i64 ctx bug16_key_store_pos (b + off_key j)
          (S.load_i64 ctx wr_entry_load_pos (b + off_key (j + 1)));
        S.store_i64 ctx bug17_val_store_pos (b + off_val j)
          (S.load_i64 ctx wr_entry_load_pos (b + off_val (j + 1)))
      done;
      S.store_i64 ctx count_store_pos (b + off_cnt) (Int64.of_int (c - 1));
      S.persist ctx __POS__ (b + off_cnt) 8;
      deferred := [ (b + off_key i, 16 * (c - i)) ]
    end
    else scan (i + 1)
  in
  scan 0;
  Machine.Mutex.unlock t.locks.(slot) ctx __POS__;
  (* Same release-and-reacquire persist pattern as insert. *)
  if !deferred <> [] then
    Machine.Mutex.with_lock t.locks.(slot) ctx __POS__ (fun () ->
        List.iter (fun (addr, size) -> S.persist ctx __POS__ addr size)
          !deferred)
