(** WIPE: a write-optimized learned index for PM (TACO 2024).

    A two-level structure: a linear model maps a key to one of the
    buckets ("bentries"); each bucket is a sorted array guarded by its
    own pthread mutex (Table 1: Lock). Buckets grow by copy-and-swap
    expansion.

    Injected bugs (Table 2 #16-#18, all new). All three have the
    Figure 1c shape — both racing accesses hold the {e same} bucket lock,
    so traditional lockset analysis is structurally blind to them (the
    Eraser-baseline ablation demonstrates this):
    - {b #16}/{b #17}: put inserts the key and value inside the critical
      section but persists them only after unlock; a locked get of the
      same bucket acts on visible-but-not-durable data.
    - {b #18}: bucket expansion copies and persists the entries into a
      larger buffer, then swaps the bucket pointer — but the pointer
      itself is never persisted: later (durable) puts into the new buffer
      are stranded if a crash reverts the pointer (§5.1). *)

include App_intf.KV

val bucket_capacity : t -> Machine.Sched.ctx -> slot:int -> int
(** Capacity of bucket [slot] (testing aid: grows on expansion). *)

val slots : int
(** Number of model-addressed buckets. *)

val root_addr : t -> int
val recover : Machine.Sched.ctx -> root_addr:int -> t
