lib/baselines/durinn.ml: Hashtbl Hawkset List Machine Pmem String Trace Unix
