lib/baselines/durinn.mli: Machine Trace
