lib/baselines/eraser.ml: Hawkset
