lib/baselines/eraser.mli: Hawkset Trace
