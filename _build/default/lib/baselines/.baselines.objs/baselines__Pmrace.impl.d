lib/baselines/pmrace.ml: Hashtbl List Machine Trace Unix Workload
