lib/baselines/pmrace.mli: Machine Workload
