(** Durinn-style adversarial interleaving (Fu et al., OSDI'22), miniature.

    Durinn detects durable-linearizability bugs in two steps (§6.3):
    it first {e serializes} the execution to extract potentially racy
    operation pairs, then — for each candidate — forces the suspected
    interleaving with breakpoints, re-executing until the race is (or is
    not) observed. Like PMRace it must directly witness the race; unlike
    PMRace its search is {e targeted} rather than fuzzed, which works well
    on small workloads and "quickly becomes impractical for large" ones.

    This miniature reproduces that structure application-agnostically at
    the trace level:

    - {b Candidate extraction}: run the workload single-threaded
      (serialized), collect the trace, and take every store site whose
      value was visible-but-not-durable for a nonzero window (closed
      late or never) together with the load sites touching overlapping
      addresses — the "potentially racy operation pairs".
    - {b Adversarial phase}: for each candidate store site, re-execute
      concurrently under {!Machine.Sched.Targeted_delay}, descheduling
      the storing thread right at that site (the breakpoint), and report
      the candidate only when the runtime monitor directly observes the
      inconsistency. *)

type candidate = {
  cand_store_loc : string;
  cand_load_locs : string list;  (** Loads overlapping the store's data. *)
}

type report = {
  candidates : candidate list;  (** From the serialized execution. *)
  executions : int;  (** Concurrent re-executions performed. *)
  confirmed : (string * string) list;
      (** (store, load) location pairs directly observed. *)
  seconds : float;
}

val candidates_of_trace : Trace.Tracebuf.t -> candidate list
(** Candidate extraction from a serialized trace. *)

val run :
  serial_run:(unit -> Machine.Sched.report) ->
  concurrent_run:
    (policy:Machine.Sched.policy -> seed:int -> Machine.Sched.report) ->
  ?attempts_per_candidate:int ->
  ?delay:int ->
  unit ->
  report
(** [run ~serial_run ~concurrent_run ()] performs both phases.
    [serial_run] executes the workload on one thread; [concurrent_run]
    executes it with the full thread count under the given policy (pass
    [observe:true] machines). [attempts_per_candidate] (default 3) bounds
    the targeted re-executions per candidate — the knob that blows up on
    large workloads. *)

val observed_pair : report -> store_locs:string list -> load_locs:string list -> bool
