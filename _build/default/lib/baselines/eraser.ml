let traditional =
  {
    Hawkset.Pipeline.default with
    Hawkset.Pipeline.effective_lockset = false;
    timestamps = false;
  }

let analyse trace = Hawkset.Pipeline.races ~config:traditional trace

let analyse_no_hb trace =
  Hawkset.Pipeline.races
    ~config:{ traditional with Hawkset.Pipeline.vector_clocks = false }
    trace
