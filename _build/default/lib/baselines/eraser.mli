(** Traditional lockset analysis (Eraser, Savage et al., TOCS'97),
    adapted to consume the same trace as HawkSet.

    The classic algorithm intersects the lockset of each store with the
    lockset of each load to the same region and reports when the
    intersection is empty (§3.1.1). It is PM-oblivious: it looks at the
    lockset {e at the store}, ignoring where — or whether — the value is
    persisted. It therefore misses every Figure 1c-shaped bug (store and
    load protected by the same lock, persist outside the critical
    section), which is all three WIPE bugs, and cannot reason about
    missing-persist windows between same-lock accesses.

    Implementation-wise this is HawkSet's pipeline with the effective
    lockset and timestamps disabled; the happens-before filter is kept
    (Eraser-style tools grew one too — Helgrind+). The IRH is also kept
    so the comparison isolates the PM-awareness, not the FP pruning. *)

val analyse : Trace.Tracebuf.t -> Hawkset.Report.t

val analyse_no_hb : Trace.Tracebuf.t -> Hawkset.Report.t
(** The original Eraser had no happens-before reasoning at all; this
    variant is the ablation point used to quantify Figure 3's false
    positives. *)
