(** PMRace-style observation-based detection (Chen et al., ASPLOS'22).

    PMRace's first stage — the one compared in Table 3 — searches for
    {e PM inter-thread inconsistencies} by fuzzing: starting from a seed
    workload it repeatedly mutates the workload and re-executes the
    application with delay injection, hoping to {e directly observe} an
    interleaving in which a thread loads another thread's
    visible-but-not-durable data. A race that is never observed is never
    reported — the structural difference from lockset analysis that
    Table 3 quantifies.

    The runtime observation itself comes from the machine's [observe]
    mode: a load of bytes whose last writer is another thread and whose
    cache line is not yet guaranteed persistent. *)

type report = {
  executions : int;  (** Application runs performed. *)
  observations : Machine.Sched.observation list;
      (** Deduplicated (store site, load site) inconsistencies observed
          across all executions. *)
  seconds : float;  (** Wall-clock time of the whole campaign. *)
}

val fuzz :
  run:
    (per_thread:Workload.Op.kv list array ->
    seed:int ->
    policy:Machine.Sched.policy ->
    observe:bool ->
    Machine.Sched.report) ->
  seed_workload:Workload.Op.kv list ->
  ?threads:int ->
  ?executions:int ->
  ?mutation_seed:int ->
  ?delay_probability:float ->
  ?delay_duration:int ->
  unit ->
  report
(** [fuzz ~run ~seed_workload ()] executes the application [executions]
    times (default 20): the first run uses the seed workload verbatim,
    every later run a fresh mutation of it, each under delay injection
    with a different scheduler seed. [run] is the application driver
    (e.g. a closure over [Driver.run_kv]). *)

val observed :
  report -> store_locs:string list -> load_locs:string list -> bool
(** Did the campaign directly observe an inconsistency matching the given
    ground-truth site pair? *)
