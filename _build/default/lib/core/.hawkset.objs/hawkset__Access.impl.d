lib/core/access.ml: Lockset Trace Vclock
