lib/core/access.mli: Lockset Trace Vclock
