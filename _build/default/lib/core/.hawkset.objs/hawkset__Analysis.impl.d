lib/core/analysis.ml: Access Collector Hashtbl List Lockset Pmem Report Vclock
