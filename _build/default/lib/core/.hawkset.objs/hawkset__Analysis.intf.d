lib/core/analysis.mli: Collector Report
