lib/core/collector.ml: Access Array Format Hashtbl Lazy List Lockset Option Pmem Trace Vclock
