lib/core/collector.mli: Access Format Hashtbl Trace
