lib/core/lockset.ml: Array Format List Trace
