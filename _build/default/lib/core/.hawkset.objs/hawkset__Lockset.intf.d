lib/core/lockset.mli: Format Trace
