lib/core/pipeline.ml: Analysis Collector Report Unix
