lib/core/pipeline.mli: Collector Report Trace
