lib/core/reference.ml: Access Collector Hashtbl List Lockset Pmem Report Trace Vclock
