lib/core/reference.mli: Collector Report
