lib/core/report.ml: Access Buffer Char Format List Printf String Trace
