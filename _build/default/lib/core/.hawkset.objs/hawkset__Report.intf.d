lib/core/report.mli: Access Format Trace
