lib/core/vclock.ml: Array Format
