type end_kind =
  | Persisted_same_thread
  | Persisted_other_thread
  | Overwritten_same_thread
  | Overwritten_other_thread
  | Open_at_exit

type window = {
  w_id : int;
  w_tid : int;
  w_addr : int;
  w_size : int;
  w_site : Trace.Site.t;
  w_store_ls : int;
  w_eff : int;
  w_store_vec : int;
  w_end_vec : int option;
  w_end : end_kind;
}

type load = {
  l_id : int;
  l_tid : int;
  l_addr : int;
  l_size : int;
  l_site : Trace.Site.t;
  l_ls : int;
  l_vec : int;
}

module Ls_table = struct
  include Trace.Interner.Make (struct
    type t = Lockset.t

    let equal = Lockset.equal
    let hash = Lockset.hash
  end)

  let create () = create ()
end

module Vc_table = struct
  include Trace.Interner.Make (struct
    type t = Vclock.t

    let equal = Vclock.equal
    let hash = Vclock.hash
  end)

  let create () = create ()
end

type tables = { ls : Ls_table.t; vc : Vc_table.t }

let create_tables () = { ls = Ls_table.create (); vc = Vc_table.create () }
