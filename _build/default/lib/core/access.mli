(** PM access records produced by stage 1+2 and consumed by stage 3.

    Locksets and vector clocks are interned ({!tables}): records carry
    integer ids, giving O(1) equality, cheap hashing and the memory
    sharing described in §4 ("locksets and vector clocks are shared across
    PM accesses ... unique and identifiable by a unique integer"). *)

(** How a store's visible-but-not-durable window ended. *)
type end_kind =
  | Persisted_same_thread
      (** Explicit flush+fence by the storing thread. *)
  | Persisted_other_thread
      (** Flushed/fenced by another thread: no lock can span the window
          atomically, so the effective lockset is empty. *)
  | Overwritten_same_thread
  | Overwritten_other_thread
  | Open_at_exit
      (** Never persisted nor overwritten: the window never closes, the
          missing-persistence bug family (§5.1). *)

(** A store's lifetime window on one 8-byte word (§3.1.2): from the store
    that makes the value visible until its explicit persistency or
    overwrite. *)
type window = {
  w_id : int;  (** Unique per collection, for pair deduplication. *)
  w_tid : int;
  w_addr : int;  (** Byte address of the original store. *)
  w_size : int;
  w_site : Trace.Site.t;
  w_store_ls : int;  (** Lockset id at store time. *)
  w_eff : int;  (** Effective lockset id. *)
  w_store_vec : int;  (** Vector clock id at store time. *)
  w_end_vec : int option;  (** Clock id at window end; [None] = open. *)
  w_end : end_kind;
}

type load = {
  l_id : int;
  l_tid : int;
  l_addr : int;
  l_size : int;
  l_site : Trace.Site.t;
  l_ls : int;  (** Lockset id at the load. *)
  l_vec : int;  (** Vector clock id at the load. *)
}

module Ls_table : sig
  type t

  val create : unit -> t
  val intern : t -> Lockset.t -> int
  val get : t -> int -> Lockset.t
  val count : t -> int
end

module Vc_table : sig
  type t

  val create : unit -> t
  val intern : t -> Vclock.t -> int
  val get : t -> int -> Vclock.t
  val count : t -> int
end

type tables = { ls : Ls_table.t; vc : Vc_table.t }

val create_tables : unit -> tables
