(** Stage 3: the PM-Aware Lockset Analysis (Algorithm 1).

    Pairs every store window with every load on an overlapping address
    range from a different thread that may execute concurrently according
    to the inter-thread happens-before analysis, and reports a
    persistency-induced race when the store's effective lockset and the
    load's lockset are disjoint (ignoring timestamps, which are only
    meaningful thread-locally).

    The implementation uses the optimizations of §4 instead of the
    quadratic presentation: accesses are grouped by word, records are
    deduplicated upstream, lockset/vector-clock comparisons are memoized
    on interned ids, and each (window, load) pair is examined at a single
    canonical word even when the ranges share several.

    The [features] record exposes the design-ablation switches used by the
    evaluation: each corresponds to one step of the §3.1 construction. *)

type features = {
  effective_lockset : bool;
      (** [false]: use the store-time lockset instead of the effective
          lockset — traditional lockset analysis, misses Figure 1c. *)
  timestamps : bool;
      (** [false]: ignore logical-clock timestamps when intersecting the
          store and persist locksets — misses Figure 2d. *)
  vector_clocks : bool;
      (** [false]: skip the happens-before filter — reintroduces the
          Figure 3 false positives. *)
}

val all_features : features
val traditional : features
(** Plain lockset analysis with only the happens-before filter. *)

val analyse : ?features:features -> Collector.result -> Report.t
(** Runs Algorithm 1 over the collected access records. *)

val pairs_examined : unit -> int
(** Number of (window, load) pairs examined by the most recent {!analyse}
    call — the work metric reported by the efficiency benchmarks. *)
