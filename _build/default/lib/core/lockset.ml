(* Sorted-by-lock-id immutable array of (lock, acquisition timestamp). *)

type entry = { lock : int; ts : int }
type t = entry array

let empty = [||]
let is_empty t = Array.length t = 0
let cardinal = Array.length

let find_index t lock =
  (* Locksets are tiny (a handful of locks); linear scan beats binary
     search in practice and keeps the code obvious. *)
  let n = Array.length t in
  let rec go i = if i >= n then None else
      if t.(i).lock = lock then Some i
      else if t.(i).lock > lock then None
      else go (i + 1)
  in
  go 0

let acquire t lock ~ts =
  let lock = Trace.Lock_id.to_int lock in
  match find_index t lock with
  | Some _ -> t
  | None ->
      let n = Array.length t in
      let out = Array.make (n + 1) { lock; ts } in
      let pos = ref n in
      (try
         for i = 0 to n - 1 do
           if t.(i).lock > lock then begin
             pos := i;
             raise Exit
           end
         done
       with Exit -> ());
      Array.blit t 0 out 0 !pos;
      out.(!pos) <- { lock; ts };
      Array.blit t !pos out (!pos + 1) (n - !pos);
      out

let release t lock =
  let lock = Trace.Lock_id.to_int lock in
  match find_index t lock with
  | None -> t
  | Some i ->
      let n = Array.length t in
      if n = 1 then empty
      else begin
        let out = Array.make (n - 1) t.(0) in
        Array.blit t 0 out 0 i;
        Array.blit t (i + 1) out i (n - 1 - i);
        out
      end

let mem t lock = find_index t (Trace.Lock_id.to_int lock) <> None

let inter ~with_ts a b =
  let out = ref [] in
  let na = Array.length a and nb = Array.length b in
  let i = ref 0 and j = ref 0 in
  while !i < na && !j < nb do
    let ea = a.(!i) and eb = b.(!j) in
    if ea.lock = eb.lock then begin
      if (not with_ts) || ea.ts = eb.ts then out := ea :: !out;
      incr i;
      incr j
    end
    else if ea.lock < eb.lock then incr i
    else incr j
  done;
  Array.of_list (List.rev !out)

let inter_same_thread a b = inter ~with_ts:true a b
let inter_same_thread_no_ts a b = inter ~with_ts:false a b
let disjoint_locks a b = Array.length (inter ~with_ts:false a b) = 0
let locks t = Array.to_list (Array.map (fun e -> Trace.Lock_id.of_int e.lock) t)

let strip_ts t =
  if Array.for_all (fun e -> e.ts = 0) t then t
  else Array.map (fun e -> { e with ts = 0 }) t

let equal a b =
  Array.length a = Array.length b
  && (let ok = ref true in
      Array.iteri
        (fun i ea -> if ea.lock <> b.(i).lock || ea.ts <> b.(i).ts then ok := false)
        a;
      !ok)

let hash t =
  Array.fold_left (fun acc e -> (acc * 31) + (e.lock * 7) + e.ts) 17 t

let pp ppf t =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       (fun ppf e -> Format.fprintf ppf "L%d@@%d" e.lock e.ts))
    (Array.to_list t)
