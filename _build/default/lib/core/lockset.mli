(** Timestamped locksets (§3.1.2).

    A lockset is the set of locks held at a point of a thread's execution.
    Each entry also carries the value of the thread-local logical clock at
    acquisition time — the clock is incremented on every lock acquisition,
    so two operations hold "the same lock at the same timestamp" exactly
    when they sit in the same atomic section (no release/reacquire in
    between). This is what lets the effective lockset reject the
    release-and-reacquire pattern of Figure 2d.

    Locksets are immutable; entries are kept sorted by lock id so that
    equality, hashing and intersections are linear. *)

type t

val empty : t
val is_empty : t -> bool
val cardinal : t -> int

val acquire : t -> Trace.Lock_id.t -> ts:int -> t
(** Adds the lock with the given acquisition timestamp. If the lock is
    already present (reentrant read locks), the original entry — and its
    timestamp — is kept: the outermost acquisition delimits the atomic
    section. *)

val release : t -> Trace.Lock_id.t -> t
(** Removes the lock; no-op when absent. *)

val mem : t -> Trace.Lock_id.t -> bool

val inter_same_thread : t -> t -> t
(** Timestamp-aware intersection: keeps entries present in both locksets
    with the {e same} timestamp. Used to compute the effective lockset of
    a store and its persistency/overwrite within one thread (§3.1.2). *)

val inter_same_thread_no_ts : t -> t -> t
(** Intersection on lock identity only — the ablation variant without the
    logical-clock extension (misses Figure 2d-style races). *)

val disjoint_locks : t -> t -> bool
(** [true] when the two locksets share no lock, {e ignoring} timestamps:
    the inter-thread test of Algorithm 1 line 18 (timestamps are only
    meaningful within a thread, §3.1.2). *)

val locks : t -> Trace.Lock_id.t list
(** Sorted lock ids, timestamps stripped. *)

val strip_ts : t -> t
(** Zeroes every timestamp. Timestamps only matter for the same-thread
    effective-lockset intersection; stripping them before interning lets
    records from different atomic sections share one lockset id — the §4
    sharing optimization that keeps per-word record populations small. *)

val equal : t -> t -> bool
val hash : t -> int
val pp : Format.formatter -> t -> unit
