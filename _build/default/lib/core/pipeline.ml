type config = {
  irh : bool;
  effective_lockset : bool;
  timestamps : bool;
  vector_clocks : bool;
  eadr : bool;
}

let default =
  { irh = true; effective_lockset = true; timestamps = true;
    vector_clocks = true; eadr = false }

let no_irh = { default with irh = false }

type result = {
  races : Report.t;
  collector_stats : Collector.stats;
  pairs_examined : int;
  analysis_seconds : float;
}

let run ?(config = default) trace =
  let t0 = Unix.gettimeofday () in
  let collected =
    Collector.collect ~irh:config.irh ~timestamps:config.timestamps
      ~eadr:config.eadr trace
  in
  let features =
    {
      Analysis.effective_lockset = config.effective_lockset;
      timestamps = config.timestamps;
      vector_clocks = config.vector_clocks;
    }
  in
  let races = Analysis.analyse ~features collected in
  let t1 = Unix.gettimeofday () in
  {
    races;
    collector_stats = collected.Collector.stats;
    pairs_examined = Analysis.pairs_examined ();
    analysis_seconds = t1 -. t0;
  }

let races ?config trace = (run ?config trace).races
