(** Algorithm 1, literally.

    A deliberately naive transcription of the paper's PM-Aware Lockset
    Analysis pseudocode: every store window is paired with every load —
    no grouping by word, no canonical-word shortcut, no memoization, no
    interned-id comparisons. Quadratic and slow, but it is short enough
    to audit against the paper line by line, which makes it the oracle
    for the property test that the optimized {!Analysis} computes exactly
    the same race set on arbitrary traces. *)

val analyse : Collector.result -> Report.t
(** Same inputs and report semantics as {!Analysis.analyse} with
    {!Analysis.all_features}. *)

val same_races : Report.t -> Report.t -> bool
(** Equality of the reported (store location, load location) sets. *)
