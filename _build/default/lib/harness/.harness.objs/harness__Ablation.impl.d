lib/harness/ablation.ml: Hawkset List Machine Pmapps Printf Tables
