lib/harness/ablation.mli:
