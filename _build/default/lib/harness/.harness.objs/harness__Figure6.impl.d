lib/harness/figure6.ml: Hawkset List Machine Metrics Pmapps Printf Tables Trace
