lib/harness/figure6.mli:
