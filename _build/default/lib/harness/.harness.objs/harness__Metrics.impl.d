lib/harness/metrics.ml: Gc Sys Unix
