lib/harness/metrics.mli:
