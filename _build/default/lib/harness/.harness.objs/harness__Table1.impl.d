lib/harness/table1.ml: List Pmapps Tables
