lib/harness/table2.ml: Filename Hawkset List Machine Pmapps Printf Tables
