lib/harness/table2.mli:
