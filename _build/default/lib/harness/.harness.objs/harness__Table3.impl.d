lib/harness/table3.ml: Array Baselines Hawkset List Machine Metrics Pmapps Printf Tables Workload
