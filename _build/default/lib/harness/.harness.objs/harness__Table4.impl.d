lib/harness/table4.ml: Hawkset List Machine Pmapps Printf Tables
