lib/harness/table4.mli:
