lib/harness/tables.ml: List Printf String
