lib/harness/tables.mli:
