type row = {
  config_name : string;
  detected_bugs : int;
  total_reports : int;
  false_positives : int;
}

type result = { rows : row list; total_bugs : int }

let configs =
  [
    ("full (HawkSet)", Hawkset.Pipeline.default);
    ( "no effective lockset",
      { Hawkset.Pipeline.default with effective_lockset = false } );
    ("no timestamps", { Hawkset.Pipeline.default with timestamps = false });
    ( "no vector clocks",
      { Hawkset.Pipeline.default with vector_clocks = false } );
    ("no IRH", Hawkset.Pipeline.no_irh);
    ( "traditional lockset",
      {
        Hawkset.Pipeline.default with
        Hawkset.Pipeline.effective_lockset = false;
        timestamps = false;
      } );
    ("eADR hardware", { Hawkset.Pipeline.default with eadr = true });
  ]

let run ?(ops = 1500) ?(seed = 42) () =
  (* One execution per app, analysed under every configuration. *)
  let traces =
    List.map
      (fun (e : Pmapps.Registry.entry) ->
        let ops = Pmapps.Registry.clamp_ops e ops in
        (e, (e.Pmapps.Registry.run ~seed ~ops ()).Machine.Sched.trace))
      Pmapps.Registry.all
  in
  let total_bugs =
    List.fold_left
      (fun acc (e, _) -> acc + List.length e.Pmapps.Registry.bugs)
      0 traces
  in
  let rows =
    List.map
      (fun (config_name, config) ->
        let detected = ref 0 and reports = ref 0 and fps = ref 0 in
        List.iter
          (fun ((e : Pmapps.Registry.entry), trace) ->
            let races = Hawkset.Pipeline.races ~config trace in
            reports := !reports + Hawkset.Report.count races;
            List.iter
              (fun (b : Pmapps.Ground_truth.bug) ->
                if
                  Pmapps.Ground_truth.bug_found ~bugs:e.Pmapps.Registry.bugs
                    races b.Pmapps.Ground_truth.gt_id
                then incr detected)
              e.Pmapps.Registry.bugs;
            List.iter
              (fun race ->
                match
                  Pmapps.Ground_truth.classify ~bugs:e.Pmapps.Registry.bugs
                    ~benign:e.Pmapps.Registry.benign race
                with
                | Pmapps.Ground_truth.False_positive -> incr fps
                | Pmapps.Ground_truth.Malign _ | Pmapps.Ground_truth.Benign ->
                    ())
              (Hawkset.Report.sorted races))
          traces;
        {
          config_name;
          detected_bugs = !detected;
          total_reports = !reports;
          false_positives = !fps;
        })
      configs
  in
  { rows; total_bugs }

let to_string r =
  Tables.section "Ablation: PM-Aware Lockset Analysis design choices"
  ^ Tables.render
      ~headers:[ "Configuration"; "Bugs detected"; "Reports"; "FPs" ]
      ~rows:
        (List.map
           (fun x ->
             [
               x.config_name;
               Printf.sprintf "%d/%d" x.detected_bugs r.total_bugs;
               string_of_int x.total_reports;
               string_of_int x.false_positives;
             ])
           r.rows)
