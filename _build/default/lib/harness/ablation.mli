(** Design-choice ablations (§3's constructive steps, DESIGN.md).

    Each row disables exactly one ingredient of the PM-Aware Lockset
    Analysis on the same set of traces and reports how detection changes:
    - no effective lockset → traditional analysis: misses the Figure 1c
      family (all WIPE bugs);
    - no timestamps → misses release-and-reacquire windows (Figure 2d);
    - no vector clocks → initialization false positives return (Figure 3);
    - no IRH → every pruned init report returns. *)

type row = {
  config_name : string;
  detected_bugs : int;  (** Ground-truth bugs detected across all apps. *)
  total_reports : int;
  false_positives : int;
}

type result = { rows : row list; total_bugs : int }

val run : ?ops:int -> ?seed:int -> unit -> result
val to_string : result -> string
