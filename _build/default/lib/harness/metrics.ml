let timed f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let live_mb () =
  Gc.full_major ();
  let s = Gc.stat () in
  float_of_int s.Gc.live_words *. float_of_int (Sys.word_size / 8)
  /. (1024.0 *. 1024.0)

let avg_time_to_race ~t ~found ~missed =
  if found <= 0 then None
  else Some (t *. ((float_of_int missed /. 2.0) +. 1.0))

let avg_time_to_race_binomial ~t ~found ~missed =
  if found <= 0 then None
  else begin
    (* sum_i C(E,i) * S * T * (i+1) / sum_i C(E,i) * S, with the weights
       kept normalized to avoid overflow: w_i = C(E,i) / 2^E. *)
    let e = missed in
    let num = ref 0.0 and den = ref 0.0 in
    let w = ref (exp (-.float_of_int e *. log 2.0)) in
    for i = 0 to e do
      num := !num +. (!w *. float_of_int (i + 1));
      den := !den +. !w;
      if i < e then w := !w *. float_of_int (e - i) /. float_of_int (i + 1)
    done;
    Some (t *. !num /. !den)
  end
