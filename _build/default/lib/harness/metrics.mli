(** Measurement helpers for the efficiency evaluation (Figure 6). *)

val timed : (unit -> 'a) -> 'a * float
(** Result and wall-clock seconds. *)

val live_mb : unit -> float
(** Live heap megabytes after a minor+major collection — the
    peak-bookkeeping proxy used for Figure 6b (the trace, access records
    and interning tables are all live at the end of an analysis). *)

val avg_time_to_race : t:float -> found:int -> missed:int -> float option
(** The §5.2 metric: expected time to find a race when workloads are
    drawn at random without replacement, given the per-workload time [t],
    the number of workloads where the tool finds the race ([found]) and
    where it does not ([missed]). Closed form [t * (missed/2 + 1)]
    (the paper's binomial sum reduces to it); [None] when [found = 0]
    (the race is never found — the paper prints ∞). *)

val avg_time_to_race_binomial : t:float -> found:int -> missed:int -> float option
(** The paper's formula evaluated literally (normalized binomial
    weights), used to cross-check the closed form in tests. *)
