let to_string () =
  Tables.section "Table 1: PM applications tested"
  ^ Tables.render
      ~headers:
        [ "Application"; "Synchronization Method"; "Custom sync config";
          "Ground-truth bugs" ]
      ~rows:
        (List.map
           (fun (e : Pmapps.Registry.entry) ->
             [
               e.Pmapps.Registry.reg_name;
               e.Pmapps.Registry.sync_method;
               (if e.Pmapps.Registry.needs_sync_config then "yes (sec 5.5)"
                else "no");
               string_of_int (List.length e.Pmapps.Registry.bugs);
             ])
           Pmapps.Registry.all)
