(** Table 1: the evaluated PM applications.

    Regenerated from the registry: name, synchronization method, and
    whether analysing the app needed a custom-primitive configuration
    entry (the "Supported by" columns are replaced by the ground-truth
    bug count, since both comparison tools are reproduced in-repo). *)

val to_string : unit -> string
