(** Table 2: persistency-induced races detected using HawkSet.

    Runs every registered application under its §5 workload, analyses the
    trace with the full pipeline, and matches the reports against the
    ground-truth registry. The printed table mirrors the paper's columns:
    application, race number, new?, store/load sites, description — plus
    a "Detected" column (the artifact's E1 prints detection rather than
    re-deriving the original line numbers, §A.4.1 C1). *)

type row = {
  app : string;
  bug_id : int;
  is_new : bool;
  store_locs : string list;
  load_locs : string list;
  desc : string;
  detected : bool;
}

type result = {
  rows : row list;
  total_races_reported : int;  (** Distinct site pairs across all apps. *)
}

val run : ?sizes:int list -> ?seed:int -> unit -> result
(** [sizes] are the main-phase sizes analysed per application (default
    [[1000; 10000]]; the paper also runs 100k); detections are the union
    across sizes, like the artifact's E1. P-ART is clamped to 1k. *)

val detected_count : result -> int
val to_string : result -> string
