type tool_row = {
  tool : string;
  bug_id : int;
  seeds : int;
  racy : int;
  avg_seconds_per_workload : float;
  avg_time_to_race : float option;
}

type result = { rows : tool_row list; speedup : float option }

let bug_locs id =
  match
    List.find_opt
      (fun (b : Pmapps.Ground_truth.bug) -> b.Pmapps.Ground_truth.gt_id = id)
      Pmapps.Fast_fair.bugs
  with
  | Some b ->
      (b.Pmapps.Ground_truth.gt_store_locs, b.Pmapps.Ground_truth.gt_load_locs)
  | None -> ([], [])

let run ?(seeds = 24) ?(ops_per_seed = 400) ?(pmrace_executions = 12)
    ?(base_seed = 1000) () =
  let corpus = Workload.Seeds.corpus ~count:seeds ~ops_per_seed ~base_seed () in
  (* HawkSet: one execution + analysis per seed. *)
  let hk_found1 = ref 0 and hk_found2 = ref 0 and hk_time = ref 0.0 in
  Array.iteri
    (fun i seed_ops ->
      let (), dt =
        Metrics.timed (fun () ->
            let per_thread = Workload.Seeds.split ~threads:8 seed_ops in
            let report =
              Pmapps.Driver.run_kv
                (module Pmapps.Fast_fair)
                ~seed:(base_seed + i) ~load:[] ~per_thread ()
            in
            let races = Hawkset.Pipeline.races report.Machine.Sched.trace in
            if
              Pmapps.Ground_truth.bug_found ~bugs:Pmapps.Fast_fair.bugs races 1
            then incr hk_found1;
            if
              Pmapps.Ground_truth.bug_found ~bugs:Pmapps.Fast_fair.bugs races 2
            then incr hk_found2)
      in
      hk_time := !hk_time +. dt)
    corpus;
  (* PMRace: fuzzing campaign per seed; a bug counts only when the racy
     interleaving is directly observed. *)
  let pm_found1 = ref 0 and pm_found2 = ref 0 and pm_time = ref 0.0 in
  let store1, load1 = bug_locs 1 and store2, load2 = bug_locs 2 in
  Array.iteri
    (fun i seed_ops ->
      let run ~per_thread ~seed ~policy ~observe =
        Pmapps.Driver.run_kv
          (module Pmapps.Fast_fair)
          ~seed ~policy ~observe ~load:[] ~per_thread ()
      in
      let report =
        Baselines.Pmrace.fuzz ~run ~seed_workload:seed_ops
          ~executions:pmrace_executions ~mutation_seed:(base_seed + i) ()
      in
      pm_time := !pm_time +. report.Baselines.Pmrace.seconds;
      if Baselines.Pmrace.observed report ~store_locs:store1 ~load_locs:load1
      then incr pm_found1;
      if Baselines.Pmrace.observed report ~store_locs:store2 ~load_locs:load2
      then incr pm_found2)
    corpus;
  let n = Array.length corpus in
  let hk_avg = !hk_time /. float_of_int n in
  let pm_avg = !pm_time /. float_of_int n in
  let row tool bug racy avg =
    {
      tool;
      bug_id = bug;
      seeds = n;
      racy;
      avg_seconds_per_workload = avg;
      avg_time_to_race =
        Metrics.avg_time_to_race ~t:avg ~found:racy ~missed:(n - racy);
    }
  in
  let rows =
    [
      row "PMRace" 1 !pm_found1 pm_avg;
      row "HawkSet" 1 !hk_found1 hk_avg;
      row "PMRace" 2 !pm_found2 pm_avg;
      row "HawkSet" 2 !hk_found2 hk_avg;
    ]
  in
  let speedup =
    match
      ( Metrics.avg_time_to_race ~t:pm_avg ~found:!pm_found1
          ~missed:(n - !pm_found1),
        Metrics.avg_time_to_race ~t:hk_avg ~found:!hk_found1
          ~missed:(n - !hk_found1) )
    with
    | Some pm, Some hk when hk > 0.0 -> Some (pm /. hk)
    | _ -> None
  in
  { rows; speedup }

let to_string r =
  let fmt_opt = function
    | Some v -> Printf.sprintf "%.3f" v
    | None -> "inf"
  in
  Tables.section "Table 3: comparison with PMRace (Fast-Fair seeds)"
  ^ Tables.render
      ~headers:
        [ "Tool"; "Bug"; "Workloads"; "Racy"; "Avg time/workload (s)";
          "Avg time to race (s)" ]
      ~rows:
        (List.map
           (fun x ->
             [
               x.tool;
               Printf.sprintf "#%d" x.bug_id;
               string_of_int x.seeds;
               string_of_int x.racy;
               Printf.sprintf "%.3f" x.avg_seconds_per_workload;
               fmt_opt x.avg_time_to_race;
             ])
           r.rows)
  ^
  match r.speedup with
  | Some s -> Printf.sprintf "\nSpeedup (bug #1, avg time to race): %.1fx\n" s
  | None -> "\nSpeedup: undefined (a tool never found bug #1)\n"
