(** Table 3: HawkSet vs PMRace on Fast-Fair.

    For each seed workload both tools hunt Fast-Fair's two sibling-pointer
    bugs:
    - HawkSet runs the workload {e once} and analyses the trace;
    - the PMRace baseline fuzzes (mutation + delay injection) and must
      directly observe the race, within a per-seed execution budget
      standing in for the paper's 600-second cap (documented in
      EXPERIMENTS.md).

    The table reports, per bug and tool: racy workloads out of the seed
    count, average time per workload, and the §5.2 average time to race
    ([t * (missed/2 + 1)], ∞ when never found), plus the resulting
    speedup — the paper's headline is 159×. *)

type tool_row = {
  tool : string;
  bug_id : int;
  seeds : int;
  racy : int;  (** Workloads where the tool found/observed the bug. *)
  avg_seconds_per_workload : float;
  avg_time_to_race : float option;  (** [None] = ∞. *)
}

type result = {
  rows : tool_row list;
  speedup : float option;
      (** PMRace's avg time to race over HawkSet's, for bug #1. *)
}

val run :
  ?seeds:int ->
  ?ops_per_seed:int ->
  ?pmrace_executions:int ->
  ?base_seed:int ->
  unit ->
  result
(** Defaults: 24 seeds of 400 ops, 12 fuzzing executions per seed — a
    scaled-down version of the paper's 240 seeds × 600 s; pass
    [~seeds:240] for the full experiment. *)

val to_string : result -> string
