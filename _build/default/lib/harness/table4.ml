type row = {
  app : string;
  malign : int;
  benign : int;
  false_positives : int;
  after_irh : int;
  reported_races : int;
  malign_after_irh : int; (* ground-truth bugs still detected with IRH *)
  bugs_without_irh : int; (* ground-truth bugs detected without IRH *)
}

type result = { rows : row list }

let classify_counts (e : Pmapps.Registry.entry) races =
  List.fold_left
    (fun (m, b, f) race ->
      match
        Pmapps.Ground_truth.classify ~bugs:e.Pmapps.Registry.bugs
          ~benign:e.Pmapps.Registry.benign race
      with
      | Pmapps.Ground_truth.Malign _ -> (m + 1, b, f)
      | Pmapps.Ground_truth.Benign -> (m, b + 1, f)
      | Pmapps.Ground_truth.False_positive -> (m, b, f + 1))
    (0, 0, 0) (Hawkset.Report.sorted races)

let run ?(ops = 2000) ?(seed = 42) () =
  let rows =
    List.map
      (fun (e : Pmapps.Registry.entry) ->
        let ops = Pmapps.Registry.clamp_ops e ops in
        let report = e.Pmapps.Registry.run ~seed ~ops () in
        let trace = report.Machine.Sched.trace in
        let with_irh = Hawkset.Pipeline.races trace in
        let without =
          Hawkset.Pipeline.races ~config:Hawkset.Pipeline.no_irh trace
        in
        let malign, benign, fps = classify_counts e without in
        let bugs_covered races =
          List.length
            (List.filter
               (fun (b : Pmapps.Ground_truth.bug) ->
                 Pmapps.Ground_truth.bug_found ~bugs:e.Pmapps.Registry.bugs
                   races b.Pmapps.Ground_truth.gt_id)
               e.Pmapps.Registry.bugs)
        in
        let malign_after = bugs_covered with_irh in
        {
          app = e.Pmapps.Registry.reg_name;
          malign;
          benign;
          false_positives = fps;
          after_irh = Hawkset.Report.count with_irh;
          reported_races = Hawkset.Report.count without;
          malign_after_irh = malign_after;
          bugs_without_irh = bugs_covered without;
        })
      Pmapps.Registry.all
  in
  { rows }

(* The §5.4 claim, at bug granularity: every ground-truth bug detectable
   without the IRH is still detected with it (the IRH may prune redundant
   witnessing pairs of a bug whose store was persisted pre-publication,
   but never the bug's detection). *)
let irh_never_drops_malign r =
  List.for_all (fun x -> x.malign_after_irh >= x.bugs_without_irh) r.rows

let to_string r =
  Tables.section
    "Table 4: report breakdown and Initialization Removal Heuristic"
  ^ Tables.render
      ~headers:
        [ "Application"; "MR"; "BR"; "FP"; "After IRH"; "Reported Races" ]
      ~rows:
        (List.map
           (fun x ->
             [
               x.app;
               string_of_int x.malign;
               string_of_int x.benign;
               string_of_int x.false_positives;
               string_of_int x.after_irh;
               string_of_int x.reported_races;
             ])
           r.rows)
  ^ Printf.sprintf "\nIRH preserved every malign race: %b\n"
      (irh_never_drops_malign r)
