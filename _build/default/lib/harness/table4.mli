(** Table 4: breakdown of reports and the Initialization Removal
    Heuristic's impact.

    Every application is analysed twice — IRH on and IRH off. The
    "Manual" columns classify the IRH-off reports against the ground
    truth (Malign / Benign / False Positive, §3.3); the "Automatic"
    columns give the report counts after the IRH and without it, like the
    paper's table. The paper's headline checks hold programmatically: the
    IRH never removes a malign race, and removes only false positives. *)

type row = {
  app : string;
  malign : int;
  benign : int;
  false_positives : int;  (** Manual classification of IRH-off reports. *)
  after_irh : int;
  reported_races : int;  (** Without the IRH. *)
  malign_after_irh : int;
      (** Ground-truth bugs still detected with the IRH on. *)
  bugs_without_irh : int;  (** Ground-truth bugs detected with it off. *)
}

type result = { rows : row list }

val run : ?ops:int -> ?seed:int -> unit -> result

val irh_never_drops_malign : result -> bool
(** The §5.4 claim at bug granularity: every bug detectable without the
    IRH remains detected with it. *)

val to_string : result -> string
