let render ~headers ~rows =
  let ncols = List.length headers in
  let pad row = row @ List.init (max 0 (ncols - List.length row)) (fun _ -> "") in
  let rows = List.map pad rows in
  let width i =
    List.fold_left
      (fun acc row -> max acc (String.length (List.nth row i)))
      (String.length (List.nth headers i))
      rows
  in
  let widths = List.init ncols width in
  let line cells =
    String.concat "  "
      (List.map2
         (fun cell w -> cell ^ String.make (w - String.length cell) ' ')
         cells widths)
  in
  let sep =
    String.concat "  " (List.map (fun w -> String.make w '-') widths)
  in
  String.concat "\n" (line headers :: sep :: List.map line rows) ^ "\n"

let section title =
  let bar = String.make (String.length title + 8) '=' in
  Printf.sprintf "\n%s\n==  %s  ==\n%s\n" bar title bar
