(** Plain-text table rendering for the experiment harness. *)

val render : headers:string list -> rows:string list list -> string
(** Column-aligned ASCII table with a header separator. Rows shorter than
    the header are padded with empty cells. *)

val section : string -> string
(** A titled separator line. *)
