lib/machine/mutex.ml: Fun List Sched Trace
