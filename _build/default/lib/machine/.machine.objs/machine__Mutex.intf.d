lib/machine/mutex.mli: Sched Trace
