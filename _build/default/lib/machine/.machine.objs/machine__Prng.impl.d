lib/machine/prng.ml: Int64
