lib/machine/prng.mli:
