lib/machine/rwlock.ml: Fun List Sched Trace
