lib/machine/rwlock.mli: Sched Trace
