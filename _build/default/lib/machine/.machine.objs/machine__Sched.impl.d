lib/machine/sched.ml: Array Bytes Effect Fun Hashtbl Int64 List Pmem Printf Prng String Sync_config Trace
