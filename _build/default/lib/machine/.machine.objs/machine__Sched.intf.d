lib/machine/sched.mli: Pmem Prng Sync_config Trace
