lib/machine/spinlock.ml: Fun Sched Trace
