lib/machine/spinlock.mli: Sched Trace
