lib/machine/sync_config.ml: List Map Printf String
