lib/machine/sync_config.mli:
