type t = {
  lock_id : Trace.Lock_id.t;
  primitive : string;
  mutable owner : Trace.Tid.t option;
  mutable waiters : Trace.Tid.t list;
}

let create ?(primitive = "pthread_mutex") ctx =
  { lock_id = Sched.fresh_lock_id ctx; primitive; owner = None; waiters = [] }

let id t = t.lock_id

let lock t ctx pos =
  let me = Sched.tid ctx in
  (match t.owner with
  | Some o when Trace.Tid.equal o me ->
      failwith "Mutex.lock: relock by owner (mutex is not reentrant)"
  | Some _ | None -> ());
  while t.owner <> None do
    t.waiters <- me :: t.waiters;
    Sched.park ctx
  done;
  t.owner <- Some me;
  Sched.emit_acquire ctx pos ~primitive:t.primitive t.lock_id

let try_lock t ctx pos =
  match t.owner with
  | Some _ -> false
  | None ->
      t.owner <- Some (Sched.tid ctx);
      Sched.emit_acquire ctx pos ~primitive:t.primitive t.lock_id;
      true

let unlock t ctx pos =
  let me = Sched.tid ctx in
  (match t.owner with
  | Some o when Trace.Tid.equal o me -> ()
  | Some _ | None -> failwith "Mutex.unlock: caller does not hold the mutex");
  Sched.emit_release ctx pos ~primitive:t.primitive t.lock_id;
  t.owner <- None;
  (* Wake every waiter: they race to retake the lock, losers re-park. *)
  let ws = t.waiters in
  t.waiters <- [];
  List.iter (Sched.unpark ctx) ws;
  Sched.yield ctx

let with_lock t ctx pos f =
  lock t ctx pos;
  Fun.protect ~finally:(fun () -> unlock t ctx pos) f
