(** Blocking mutual-exclusion lock (the pthread_mutex model).

    Lock and unlock emit [Lock_acquire]/[Lock_release] events when the
    primitive name is instrumented by the machine's {!Sync_config}
    (["pthread_mutex"] by default, so mutexes are always visible unless a
    test deliberately removes them from the configuration). *)

type t

val create : ?primitive:string -> Sched.ctx -> t
(** [create ctx] makes a fresh unlocked mutex. [primitive] defaults to
    ["pthread_mutex"]. *)

val lock : t -> Sched.ctx -> Sched.pos -> unit
(** Blocks until the mutex is available. Not reentrant: raises [Failure]
    on relock by the owner. *)

val try_lock : t -> Sched.ctx -> Sched.pos -> bool
(** Non-blocking acquire; [true] when the lock was taken (the
    pthread_mutex_trylock model: the acquire event is emitted only on
    success, §4). *)

val unlock : t -> Sched.ctx -> Sched.pos -> unit
(** Raises [Failure] when the caller does not hold the mutex. *)

val with_lock : t -> Sched.ctx -> Sched.pos -> (unit -> 'a) -> 'a
val id : t -> Trace.Lock_id.t
