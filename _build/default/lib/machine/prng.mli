(** Deterministic splitmix64 pseudo-random generator.

    Every source of nondeterminism in the runtime (scheduling choices,
    delay injection) draws from one of these, so an execution is a pure
    function of (program, workload, seed) and any reported race can be
    replayed exactly. *)

type t

val create : int -> t
(** [create seed] is a fresh generator. Equal seeds yield equal streams. *)

val split : t -> t
(** An independent generator derived from [t]'s stream. *)

val next_int64 : t -> int64

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Raises [Invalid_argument]
    when [bound <= 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
