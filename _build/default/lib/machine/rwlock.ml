type t = {
  lock_id : Trace.Lock_id.t;
  primitive : string;
  mutable readers : int;
  mutable writer : Trace.Tid.t option;
  mutable waiters : Trace.Tid.t list;
}

let create ?(primitive = "pthread_rwlock") ctx =
  {
    lock_id = Sched.fresh_lock_id ctx;
    primitive;
    readers = 0;
    writer = None;
    waiters = [];
  }

let id t = t.lock_id

let wait t ctx =
  t.waiters <- Sched.tid ctx :: t.waiters;
  Sched.park ctx

let wake_all t ctx =
  let ws = t.waiters in
  t.waiters <- [];
  List.iter (Sched.unpark ctx) ws

let read_lock t ctx pos =
  while t.writer <> None do
    wait t ctx
  done;
  t.readers <- t.readers + 1;
  Sched.emit_acquire ctx pos ~primitive:t.primitive t.lock_id

let read_unlock t ctx pos =
  if t.readers <= 0 then failwith "Rwlock.read_unlock: no readers";
  Sched.emit_release ctx pos ~primitive:t.primitive t.lock_id;
  t.readers <- t.readers - 1;
  if t.readers = 0 then wake_all t ctx;
  Sched.yield ctx

let write_lock t ctx pos =
  let me = Sched.tid ctx in
  (match t.writer with
  | Some o when Trace.Tid.equal o me ->
      failwith "Rwlock.write_lock: relock by owner"
  | Some _ | None -> ());
  while t.writer <> None || t.readers > 0 do
    wait t ctx
  done;
  t.writer <- Some me;
  Sched.emit_acquire ctx pos ~primitive:t.primitive t.lock_id

let write_unlock t ctx pos =
  let me = Sched.tid ctx in
  (match t.writer with
  | Some o when Trace.Tid.equal o me -> ()
  | Some _ | None -> failwith "Rwlock.write_unlock: caller is not the writer");
  Sched.emit_release ctx pos ~primitive:t.primitive t.lock_id;
  t.writer <- None;
  wake_all t ctx;
  Sched.yield ctx

let with_read t ctx pos f =
  read_lock t ctx pos;
  Fun.protect ~finally:(fun () -> read_unlock t ctx pos) f

let with_write t ctx pos f =
  write_lock t ctx pos;
  Fun.protect ~finally:(fun () -> write_unlock t ctx pos) f
