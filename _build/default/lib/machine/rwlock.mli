(** Reader-writer lock (the pthread_rwlock model).

    Read and write acquisitions share a single lock id: the PM-aware
    lockset analysis only pairs stores with loads, so a reader and the
    writer appearing to hold "the same lock" is precisely the exclusion
    the id must express, while two concurrent readers are never compared
    against each other. *)

type t

val create : ?primitive:string -> Sched.ctx -> t
(** [primitive] defaults to ["pthread_rwlock"]. *)

val read_lock : t -> Sched.ctx -> Sched.pos -> unit
val read_unlock : t -> Sched.ctx -> Sched.pos -> unit
val write_lock : t -> Sched.ctx -> Sched.pos -> unit
val write_unlock : t -> Sched.ctx -> Sched.pos -> unit
val with_read : t -> Sched.ctx -> Sched.pos -> (unit -> 'a) -> 'a
val with_write : t -> Sched.ctx -> Sched.pos -> (unit -> 'a) -> 'a
val id : t -> Trace.Lock_id.t
