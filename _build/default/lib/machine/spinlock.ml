type t = {
  lock_id : Trace.Lock_id.t;
  primitive : string;
  mutable held_by : Trace.Tid.t option;
}

let create ~primitive ctx =
  { lock_id = Sched.fresh_lock_id ctx; primitive; held_by = None }

let id t = t.lock_id

let try_lock t ctx pos =
  match t.held_by with
  | Some _ -> false
  | None ->
      t.held_by <- Some (Sched.tid ctx);
      Sched.emit_acquire ctx pos ~primitive:t.primitive t.lock_id;
      true

let lock t ctx pos =
  while not (try_lock t ctx pos) do
    Sched.yield ctx
  done

let unlock t ctx pos =
  let me = Sched.tid ctx in
  (match t.held_by with
  | Some o when Trace.Tid.equal o me -> ()
  | Some _ | None -> failwith "Spinlock.unlock: caller does not hold the lock");
  Sched.emit_release ctx pos ~primitive:t.primitive t.lock_id;
  t.held_by <- None;
  Sched.yield ctx

let with_lock t ctx pos f =
  lock t ctx pos;
  Fun.protect ~finally:(fun () -> unlock t ctx pos) f
