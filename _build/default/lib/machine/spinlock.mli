(** CAS-based spinlock — the "custom concurrency control" case.

    P-CLHT and APEX implement their concurrency control with bare CAS
    instructions; to analyse them the paper wraps those CAS uses in
    functions and lists the wrappers in a configuration file (§5.5).
    This primitive models that situation: it works regardless, but its
    acquire/release events are only emitted when its [primitive] name is
    registered in the machine's {!Sync_config}. Running an application
    that uses an unregistered spinlock therefore floods the analysis with
    false races — the experiment behind the automation discussion. *)

type t

val create : primitive:string -> Sched.ctx -> t

val lock : t -> Sched.ctx -> Sched.pos -> unit
(** Spins (yielding to the scheduler) until the CAS succeeds. *)

val try_lock : t -> Sched.ctx -> Sched.pos -> bool
val unlock : t -> Sched.ctx -> Sched.pos -> unit
val with_lock : t -> Sched.ctx -> Sched.pos -> (unit -> 'a) -> 'a
val id : t -> Trace.Lock_id.t
