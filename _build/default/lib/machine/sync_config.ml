module Smap = Map.Make (String)

type t = int Smap.t
(* name -> trylock success value *)

let empty = Smap.empty

let builtin =
  List.fold_left
    (fun m name -> Smap.add name 0 m)
    empty
    [ "pthread_mutex"; "pthread_rwlock"; "pthread_spin"; "pmemobj_mutex" ]

let register t ?(trylock_success = 0) name = Smap.add name trylock_success t
let is_instrumented t name = Smap.mem name t
let trylock_success t name = Smap.find_opt name t

let of_string s =
  let parse_line cfg line =
    let line =
      match String.index_opt line '#' with
      | Some i -> String.sub line 0 i
      | None -> line
    in
    match String.split_on_char ' ' (String.trim line)
          |> List.filter (fun w -> w <> "")
    with
    | [] -> cfg
    | [ "lock"; name ] -> register cfg name
    | [ "trylock"; name; success ] -> (
        match int_of_string_opt success with
        | Some v -> register cfg ~trylock_success:v name
        | None ->
            failwith
              (Printf.sprintf "Sync_config: bad success value %S" success))
    | _ -> failwith (Printf.sprintf "Sync_config: malformed line %S" line)
  in
  List.fold_left parse_line builtin (String.split_on_char '\n' s)

let of_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let contents = really_input_string ic len in
  close_in ic;
  of_string contents

let names t = List.map fst (Smap.bindings t)
