(** Synchronization-primitive configuration.

    HawkSet instruments pthread primitives out of the box; applications
    with custom concurrency control (TurboHash, P-ART) or CAS-wrapped
    locking (P-CLHT, APEX) describe their primitives in a small
    configuration file naming the functions with acquire-and-release
    semantics and, for tentative acquires, the return value that signals
    success (§4, §A.5). This module reproduces that mechanism: a primitive
    whose name is not registered is {e not} instrumented, so its critical
    sections are invisible to the analysis — exactly what happens when a
    PIN tool does not know about a custom lock. *)

type t

val empty : t
(** No custom primitives: only the built-ins are instrumented. *)

val builtin : t
(** The default configuration: pthread and libpmemobj primitive names
    ([pthread_mutex], [pthread_rwlock], [pthread_spin],
    [pmemobj_mutex]). *)

val register : t -> ?trylock_success:int -> string -> t
(** [register t name] returns a configuration that additionally
    instruments the primitive called [name]. [trylock_success] is the
    return value of the primitive's tentative acquire that indicates the
    lock was taken (default [0], the pthread convention). *)

val is_instrumented : t -> string -> bool
val trylock_success : t -> string -> int option

val of_string : string -> t
(** Parses a configuration file's contents. Each non-empty, non-[#] line
    has the form [lock NAME] or [trylock NAME SUCCESS]. The result extends
    {!builtin}. Raises [Failure] on malformed lines. *)

val of_file : string -> t
(** [of_file path] is [of_string] of the file's contents. *)

val names : t -> string list
(** All instrumented primitive names, sorted. *)
