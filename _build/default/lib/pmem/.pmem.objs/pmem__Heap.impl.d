lib/pmem/heap.ml: Array Bytes Char Hashtbl Layout List Option Trace
