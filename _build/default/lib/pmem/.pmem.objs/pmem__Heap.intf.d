lib/pmem/heap.mli: Trace
