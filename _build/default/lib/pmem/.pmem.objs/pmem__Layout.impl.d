lib/pmem/layout.ml: List
