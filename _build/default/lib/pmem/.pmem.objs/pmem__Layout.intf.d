lib/pmem/layout.mli:
