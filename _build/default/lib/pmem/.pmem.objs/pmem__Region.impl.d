lib/pmem/region.ml: Layout List
