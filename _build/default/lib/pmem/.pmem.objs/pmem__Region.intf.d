lib/pmem/region.mli:
