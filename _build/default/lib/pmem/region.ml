type region = { r_name : string; r_addr : int; r_size : int }

type t = { mutable sorted : region list (* by base address *) }

let create () = { sorted = [] }

let overlaps a b =
  Layout.ranges_overlap a.r_addr a.r_size b.r_addr b.r_size

let register t ~name ~addr ~size =
  if addr < 0 || size <= 0 then invalid_arg "Region.register: bad range";
  let r = { r_name = name; r_addr = addr; r_size = size } in
  if List.exists (overlaps r) t.sorted then
    invalid_arg "Region.register: overlapping region";
  t.sorted <-
    List.sort (fun a b -> compare a.r_addr b.r_addr) (r :: t.sorted)

let find t addr =
  let rec go = function
    | [] -> None
    | r :: rest ->
        if addr < r.r_addr then None
        else if addr < r.r_addr + r.r_size then
          Some (r.r_name, r.r_addr, r.r_size)
        else go rest
  in
  go t.sorted

let is_pm t addr = find t addr <> None

let regions t = List.map (fun r -> (r.r_name, r.r_addr, r.r_size)) t.sorted

let all_pm ~size =
  let t = create () in
  register t ~name:"/mnt/pmem/pool" ~addr:0 ~size;
  t
