(** PM region registry — the [mmap]-of-PM-files model (§4, §A.5).

    The paper's tool distinguishes PM accesses from ordinary memory
    accesses by recording [mmap] calls on files under the PM mount point
    (the [PM_MOUNT] environment variable) and comparing target addresses
    against the recorded regions: "Make sure to set this variable such
    that all PM, and only PM, is allocated from files in it" (§A.5).

    This registry is that mechanism. The instrumented runtime consults it
    on every access: addresses inside a registered region are traced and
    cache-simulated; everything else is ordinary volatile memory and is
    invisible to the analysis — which is also what makes lockset analysis
    affordable, since PM is a small fraction of all accesses (§3.1,
    WHISPER's ~4%). *)

type t

val create : unit -> t

val register : t -> name:string -> addr:int -> size:int -> unit
(** Records an mmap'ed PM file. Raises [Invalid_argument] on a negative
    range or an overlap with an existing region. *)

val is_pm : t -> int -> bool
(** Is this address inside some registered PM region? *)

val find : t -> int -> (string * int * int) option
(** [(name, base, size)] of the region containing the address. *)

val regions : t -> (string * int * int) list
(** All regions, sorted by base address. *)

val all_pm : size:int -> t
(** A registry covering one whole heap of [size] bytes — the default for
    applications whose every tracked access is PM (this repository's
    apps allocate volatile state as ordinary OCaml values). *)
