lib/trace/event.ml: Format Lock_id Site Tid
