lib/trace/event.mli: Format Lock_id Site Tid
