lib/trace/interner.ml: Array Hashtbl
