lib/trace/interner.mli: Hashtbl
