lib/trace/lock_id.ml: Format Int
