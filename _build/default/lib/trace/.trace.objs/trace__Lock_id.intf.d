lib/trace/lock_id.mli: Format
