lib/trace/site.ml: Format Hashtbl Int List Printf String
