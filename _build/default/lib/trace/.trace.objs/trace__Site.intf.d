lib/trace/site.mli: Format
