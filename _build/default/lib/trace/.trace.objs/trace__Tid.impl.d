lib/trace/tid.ml: Format Int
