lib/trace/trace_io.ml: Event Fun List Lock_id Printf Site String Tid Tracebuf
