lib/trace/tracebuf.ml: Array Event Format List Site Tid
