lib/trace/tracebuf.mli: Event Format
