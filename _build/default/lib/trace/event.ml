type flush_kind = Clwb | Clflushopt | Clflush

type t =
  | Store of {
      tid : Tid.t;
      addr : int;
      size : int;
      site : Site.t;
      non_temporal : bool;
    }
  | Load of { tid : Tid.t; addr : int; size : int; site : Site.t }
  | Flush of { tid : Tid.t; line : int; kind : flush_kind; site : Site.t }
  | Fence of { tid : Tid.t; site : Site.t }
  | Lock_acquire of { tid : Tid.t; lock : Lock_id.t; site : Site.t }
  | Lock_release of { tid : Tid.t; lock : Lock_id.t; site : Site.t }
  | Thread_create of { parent : Tid.t; child : Tid.t }
  | Thread_join of { waiter : Tid.t; joined : Tid.t }

let tid = function
  | Store { tid; _ }
  | Load { tid; _ }
  | Flush { tid; _ }
  | Fence { tid; _ }
  | Lock_acquire { tid; _ }
  | Lock_release { tid; _ } ->
      tid
  | Thread_create { parent; _ } -> parent
  | Thread_join { waiter; _ } -> waiter

let is_pm_access = function
  | Store _ | Load _ -> true
  | Flush _ | Fence _ | Lock_acquire _ | Lock_release _ | Thread_create _
  | Thread_join _ ->
      false

let pp_flush_kind ppf = function
  | Clwb -> Format.pp_print_string ppf "clwb"
  | Clflushopt -> Format.pp_print_string ppf "clflushopt"
  | Clflush -> Format.pp_print_string ppf "clflush"

let pp ppf = function
  | Store { tid; addr; size; site; non_temporal } ->
      Format.fprintf ppf "%a store%s 0x%x+%d @ %a" Tid.pp tid
        (if non_temporal then "(nt)" else "")
        addr size Site.pp site
  | Load { tid; addr; size; site } ->
      Format.fprintf ppf "%a load 0x%x+%d @ %a" Tid.pp tid addr size Site.pp
        site
  | Flush { tid; line; kind; site } ->
      Format.fprintf ppf "%a %a 0x%x @ %a" Tid.pp tid pp_flush_kind kind line
        Site.pp site
  | Fence { tid; site } ->
      Format.fprintf ppf "%a sfence @ %a" Tid.pp tid Site.pp site
  | Lock_acquire { tid; lock; site } ->
      Format.fprintf ppf "%a acquire %a @ %a" Tid.pp tid Lock_id.pp lock
        Site.pp site
  | Lock_release { tid; lock; site } ->
      Format.fprintf ppf "%a release %a @ %a" Tid.pp tid Lock_id.pp lock
        Site.pp site
  | Thread_create { parent; child } ->
      Format.fprintf ppf "%a create %a" Tid.pp parent Tid.pp child
  | Thread_join { waiter; joined } ->
      Format.fprintf ppf "%a join %a" Tid.pp waiter Tid.pp joined
