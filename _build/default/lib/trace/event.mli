(** Trace events.

    The instrumentation stage (stage 1 of the pipeline, Figure 4) reduces
    an execution to a sequence of these events: PM accesses, persistency
    instructions, synchronization primitives, and thread lifecycle
    operations. This is exactly the information the paper's PIN tool
    collects; every detector in this repository (HawkSet, Eraser, PMRace)
    consumes or produces it. *)

type flush_kind =
  | Clwb  (** Cache-line write back: line stays in cache. *)
  | Clflushopt  (** Optimized flush-and-invalidate. *)
  | Clflush  (** Legacy ordered flush-and-invalidate. *)

type t =
  | Store of {
      tid : Tid.t;
      addr : int;
      size : int;
      site : Site.t;
      non_temporal : bool;
          (** Non-temporal stores bypass the cache: they need no flush but
              still require a fence to be guaranteed persistent (§2.1). *)
    }
  | Load of { tid : Tid.t; addr : int; size : int; site : Site.t }
  | Flush of { tid : Tid.t; line : int; kind : flush_kind; site : Site.t }
      (** [line] is the cache-line-aligned address being flushed. *)
  | Fence of { tid : Tid.t; site : Site.t }
  | Lock_acquire of { tid : Tid.t; lock : Lock_id.t; site : Site.t }
  | Lock_release of { tid : Tid.t; lock : Lock_id.t; site : Site.t }
  | Thread_create of { parent : Tid.t; child : Tid.t }
  | Thread_join of { waiter : Tid.t; joined : Tid.t }

val tid : t -> Tid.t
(** The thread that issued the event (the parent for [Thread_create], the
    waiter for [Thread_join]). *)

val is_pm_access : t -> bool
(** [true] for [Store] and [Load]. *)

val pp : Format.formatter -> t -> unit
