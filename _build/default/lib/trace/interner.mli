(** Hash-consing tables.

    The paper's implementation shares locksets, vector clocks and
    backtraces across PM accesses and identifies each by a unique integer,
    enabling O(1) equality, fast hashing and compact access records (§4).
    This functor provides that mechanism for any hashable type. *)

module Make (H : Hashtbl.HashedType) : sig
  type t

  val create : ?size:int -> unit -> t

  val intern : t -> H.t -> int
  (** [intern t v] returns the unique id of [v], allocating a fresh id
      (densely from [0]) the first time [v] is seen. Two values with
      [H.equal] receive the same id. *)

  val get : t -> int -> H.t
  (** [get t id] is the value registered under [id]. Raises
      [Invalid_argument] for unknown ids. *)

  val count : t -> int
  (** Number of distinct values interned so far. *)

  val iter : (int -> H.t -> unit) -> t -> unit
end
