type t = int

let of_int n =
  if n < 0 then invalid_arg "Lock_id.of_int: negative lock id";
  n

let to_int t = t
let equal = Int.equal
let compare = Int.compare
let hash t = t
let pp ppf t = Format.fprintf ppf "L%d" t
