(** Lock identifiers.

    Every synchronization object (mutex, rwlock, spinlock, custom primitive
    registered through the sync configuration) receives a unique id at
    creation time. Read-write locks use two ids so that a read acquisition
    and a write acquisition can be distinguished by the analysis. *)

type t = private int

val of_int : int -> t
(** [of_int n] is the lock id [n]. Raises [Invalid_argument] if [n < 0]. *)

val to_int : t -> int

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit
