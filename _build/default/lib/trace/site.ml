type t = { file : string; line : int; frames : string list }

let none = { file = "<none>"; line = 0; frames = [] }

let of_pos ?(frames = []) (file, line, _, _) = { file; line; frames }
let v ?(frames = []) file line = { file; line; frames }
let location t = Printf.sprintf "%s:%d" t.file t.line

let equal a b =
  String.equal a.file b.file && a.line = b.line
  && List.equal String.equal a.frames b.frames

let compare a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c else List.compare String.compare a.frames b.frames

let hash t = Hashtbl.hash (t.file, t.line, t.frames)
let pp ppf t = Format.fprintf ppf "%s:%d" t.file t.line

let pp_backtrace ppf t =
  pp ppf t;
  List.iter (fun f -> Format.fprintf ppf "@\n    in %s" f) t.frames
