(** Source sites.

    A site identifies the program location of an instrumented operation:
    the file and line of the instruction plus the lightweight call stack
    maintained by the runtime (the paper instruments call/return
    instructions to build backtraces cheaply instead of using
    [PIN_Backtrace], §4). Race reports carry the sites of both accesses,
    mirroring Table 2's [file:line] columns. *)

type t = {
  file : string;  (** Source file of the access. *)
  line : int;  (** Source line of the access. *)
  frames : string list;  (** Call stack, innermost frame first. *)
}

val none : t
(** Placeholder site for operations without source attribution
    (e.g. synthetic traces built in tests). *)

val of_pos : ?frames:string list -> string * int * int * int -> t
(** [of_pos __POS__] builds a site from OCaml's built-in source position. *)

val v : ?frames:string list -> string -> int -> t
(** [v file line] builds a site explicitly. *)

val location : t -> string
(** [location s] is ["file:line"], the key used to match reports against
    the ground-truth bug registry. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val pp : Format.formatter -> t -> unit
(** Prints ["file:line"]. *)

val pp_backtrace : Format.formatter -> t -> unit
(** Prints the site and its call stack, one frame per line. *)
