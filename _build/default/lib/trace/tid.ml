type t = int

let main = 0

let of_int n =
  if n < 0 then invalid_arg "Tid.of_int: negative thread id";
  n

let to_int t = t
let equal = Int.equal
let compare = Int.compare
let hash t = t
let pp ppf t = Format.fprintf ppf "T%d" t
