(** Thread identifiers.

    Threads are numbered densely from [0] (the main thread) in creation
    order, which lets per-thread state live in growable arrays and vector
    clocks use the thread id as index. *)

type t = private int

val main : t
(** The initial thread of every execution. *)

val of_int : int -> t
(** [of_int n] is the thread id [n]. Raises [Invalid_argument] if [n < 0]. *)

val to_int : t -> int

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit
