exception Parse_error of int * string

let header = "# hawkset-trace 1"

(* Sites: "<file>:<line>" plus an optional ";"-joined frame list. File
   names may not contain spaces, ':' is split from the right. *)
let site_to_string (s : Site.t) =
  let base = Printf.sprintf "%s:%d" s.Site.file s.Site.line in
  match s.Site.frames with
  | [] -> base
  | frames -> base ^ " " ^ String.concat ";" frames

(* [err] must be let-bound inside (a function parameter would be
   monomorphic and is used at several types). *)
let site_of_fields ~lineno fields =
  let err msg = raise (Parse_error (lineno, msg)) in
  match fields with
  | [] -> err "missing site"
  | locstr :: rest ->
      let file, line =
        match String.rindex_opt locstr ':' with
        | None -> err "site has no ':'"
        | Some i -> (
            let file = String.sub locstr 0 i in
            let l = String.sub locstr (i + 1) (String.length locstr - i - 1) in
            match int_of_string_opt l with
            | Some n -> (file, n)
            | None -> err "bad line number")
      in
      let frames =
        match rest with
        | [] -> []
        | [ fs ] -> String.split_on_char ';' fs
        | _ :: _ :: _ -> err "trailing fields"
      in
      Site.v ~frames file line

let flush_kind_to_string = function
  | Event.Clwb -> "clwb"
  | Event.Clflushopt -> "clflushopt"
  | Event.Clflush -> "clflush"

let flush_kind_of_string ~lineno = function
  | "clwb" -> Event.Clwb
  | "clflushopt" -> Event.Clflushopt
  | "clflush" -> Event.Clflush
  | s -> raise (Parse_error (lineno, Printf.sprintf "unknown flush kind %S" s))

let event_to_line ev =
  let t tid = string_of_int (Tid.to_int tid) in
  match ev with
  | Event.Store { tid; addr; size; site; non_temporal } ->
      Printf.sprintf "S %s %d %d %d %s" (t tid) addr size
        (if non_temporal then 1 else 0)
        (site_to_string site)
  | Event.Load { tid; addr; size; site } ->
      Printf.sprintf "L %s %d %d %s" (t tid) addr size (site_to_string site)
  | Event.Flush { tid; line; kind; site } ->
      Printf.sprintf "F %s %d %s %s" (t tid) line (flush_kind_to_string kind)
        (site_to_string site)
  | Event.Fence { tid; site } ->
      Printf.sprintf "M %s %s" (t tid) (site_to_string site)
  | Event.Lock_acquire { tid; lock; site } ->
      Printf.sprintf "A %s %d %s" (t tid) (Lock_id.to_int lock)
        (site_to_string site)
  | Event.Lock_release { tid; lock; site } ->
      Printf.sprintf "R %s %d %s" (t tid) (Lock_id.to_int lock)
        (site_to_string site)
  | Event.Thread_create { parent; child } ->
      Printf.sprintf "C %s %s" (t parent) (t child)
  | Event.Thread_join { waiter; joined } ->
      Printf.sprintf "J %s %s" (t waiter) (t joined)

let event_of_line_at lineno line =
  let err msg = raise (Parse_error (lineno, msg)) in
  let int s =
    match int_of_string_opt s with
    | Some v -> v
    | None -> err (Printf.sprintf "expected integer, got %S" s)
  in
  let tid s = Tid.of_int (int s) in
  let fields =
    List.filter (fun s -> s <> "") (String.split_on_char ' ' line)
  in
  match fields with
  | "S" :: t :: addr :: size :: nt :: site ->
      Event.Store
        {
          tid = tid t;
          addr = int addr;
          size = int size;
          non_temporal = int nt <> 0;
          site = site_of_fields ~lineno site;
        }
  | "L" :: t :: addr :: size :: site ->
      Event.Load
        { tid = tid t; addr = int addr; size = int size;
          site = site_of_fields ~lineno site }
  | "F" :: t :: line_addr :: kind :: site ->
      Event.Flush
        {
          tid = tid t;
          line = int line_addr;
          kind = flush_kind_of_string ~lineno kind;
          site = site_of_fields ~lineno site;
        }
  | "M" :: t :: site -> Event.Fence { tid = tid t; site = site_of_fields ~lineno site }
  | "A" :: t :: lock :: site ->
      Event.Lock_acquire
        { tid = tid t; lock = Lock_id.of_int (int lock);
          site = site_of_fields ~lineno site }
  | "R" :: t :: lock :: site ->
      Event.Lock_release
        { tid = tid t; lock = Lock_id.of_int (int lock);
          site = site_of_fields ~lineno site }
  | [ "C"; parent; child ] ->
      Event.Thread_create { parent = tid parent; child = tid child }
  | [ "J"; waiter; joined ] ->
      Event.Thread_join { waiter = tid waiter; joined = tid joined }
  | tag :: _ -> err (Printf.sprintf "unknown event tag %S" tag)
  | [] -> err "empty line"

let event_of_line line = event_of_line_at 0 line

let write oc trace =
  output_string oc header;
  output_char oc '\n';
  Tracebuf.iter
    (fun ev ->
      output_string oc (event_to_line ev);
      output_char oc '\n')
    trace

let read ic =
  let trace = Tracebuf.create () in
  let lineno = ref 0 in
  (try
     while true do
       let line = input_line ic in
       incr lineno;
       let trimmed = String.trim line in
       if trimmed <> "" && trimmed.[0] <> '#' then
         Tracebuf.push trace (event_of_line_at !lineno trimmed)
     done
   with End_of_file -> ());
  trace

let save path trace =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> write oc trace)

let load path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> read ic)
