(** Trace serialization.

    A simple line-oriented text format, one event per line, so traces can
    be collected once and analysed offline (or by other tools) — the
    workflow of the paper's pipeline, where instrumentation and analysis
    are separate stages. The format is stable and human-greppable:

    {v
    # hawkset-trace 1
    S <tid> <addr> <size> <nt:0|1> <file>:<line> [frame;frame...]
    L <tid> <addr> <size> <file>:<line> [frames]
    F <tid> <line-addr> <clwb|clflushopt|clflush> <file>:<line> [frames]
    M <tid> <file>:<line> [frames]            (sfence)
    A <tid> <lock> <file>:<line> [frames]     (acquire)
    R <tid> <lock> <file>:<line> [frames]     (release)
    C <parent> <child>                        (thread create)
    J <waiter> <joined>                       (thread join)
    v} *)

exception Parse_error of int * string
(** Line number and message. *)

val write : out_channel -> Tracebuf.t -> unit
val read : in_channel -> Tracebuf.t

val save : string -> Tracebuf.t -> unit
(** [save path trace] writes the trace to [path]. *)

val load : string -> Tracebuf.t
(** Raises {!Parse_error} on malformed input and [Sys_error] on IO
    failure. *)

val event_to_line : Event.t -> string
val event_of_line : string -> Event.t
(** Raises {!Parse_error} (with line number 0). *)
