lib/workload/op.ml: Format
