lib/workload/seeds.ml: Array List Machine Op
