lib/workload/seeds.mli: Machine Op
