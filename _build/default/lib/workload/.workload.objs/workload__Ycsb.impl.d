lib/workload/ycsb.ml: Array List Machine Op Zipf
