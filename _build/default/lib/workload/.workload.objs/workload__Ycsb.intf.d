lib/workload/ycsb.mli: Op
