lib/workload/zipf.ml: Array Machine
