lib/workload/zipf.mli: Machine
