type kv =
  | Insert of int * int64
  | Update of int * int64
  | Get of int
  | Delete of int

type mc =
  | Mc_set of int * int64
  | Mc_get of int
  | Mc_add of int * int64
  | Mc_replace of int * int64
  | Mc_append of int * int64
  | Mc_prepend of int * int64
  | Mc_cas of int * int64 * int64
  | Mc_delete of int
  | Mc_incr of int
  | Mc_decr of int

type fs = Fs_write of int * int | Fs_read of int * int

let pp_kv ppf = function
  | Insert (k, v) -> Format.fprintf ppf "insert %d=%Ld" k v
  | Update (k, v) -> Format.fprintf ppf "update %d=%Ld" k v
  | Get k -> Format.fprintf ppf "get %d" k
  | Delete k -> Format.fprintf ppf "delete %d" k

let pp_mc ppf = function
  | Mc_set (k, v) -> Format.fprintf ppf "set %d=%Ld" k v
  | Mc_get k -> Format.fprintf ppf "get %d" k
  | Mc_add (k, v) -> Format.fprintf ppf "add %d=%Ld" k v
  | Mc_replace (k, v) -> Format.fprintf ppf "replace %d=%Ld" k v
  | Mc_append (k, v) -> Format.fprintf ppf "append %d+=%Ld" k v
  | Mc_prepend (k, v) -> Format.fprintf ppf "prepend %d=+%Ld" k v
  | Mc_cas (k, e, d) -> Format.fprintf ppf "cas %d %Ld->%Ld" k e d
  | Mc_delete k -> Format.fprintf ppf "delete %d" k
  | Mc_incr k -> Format.fprintf ppf "incr %d" k
  | Mc_decr k -> Format.fprintf ppf "decr %d" k

let pp_fs ppf = function
  | Fs_write (o, s) -> Format.fprintf ppf "write @%d+%d" o s
  | Fs_read (o, s) -> Format.fprintf ppf "read @%d+%d" o s

let kv_key = function Insert (k, _) | Update (k, _) | Get k | Delete k -> k
