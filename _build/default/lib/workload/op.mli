(** Workload operations.

    Three operation families cover the nine evaluated applications: the
    YCSB-style key-value operations (the seven index/hash-table apps), the
    Memcached command set, and MadFS file writes/reads (§5 "Workloads"). *)

type kv =
  | Insert of int * int64
  | Update of int * int64
  | Get of int
  | Delete of int

type mc =
  | Mc_set of int * int64
  | Mc_get of int
  | Mc_add of int * int64
  | Mc_replace of int * int64
  | Mc_append of int * int64
  | Mc_prepend of int * int64
  | Mc_cas of int * int64 * int64  (** key, expected, desired *)
  | Mc_delete of int
  | Mc_incr of int
  | Mc_decr of int

type fs =
  | Fs_write of int * int  (** offset, size *)
  | Fs_read of int * int

val pp_kv : Format.formatter -> kv -> unit
val pp_mc : Format.formatter -> mc -> unit
val pp_fs : Format.formatter -> fs -> unit

val kv_key : kv -> int
