let gen_op prng ~key_space =
  let key () = 1 + Machine.Prng.int prng key_space in
  let value () = Machine.Prng.next_int64 prng in
  match Machine.Prng.int prng 100 with
  | r when r < 50 -> Op.Insert (key (), value ())
  | r when r < 70 -> Op.Update (key (), value ())
  | r when r < 90 -> Op.Get (key ())
  | _ -> Op.Delete (key ())

let corpus ?(count = 240) ?(ops_per_seed = 400) ?(base_seed = 1000) () =
  Array.init count (fun i ->
      let prng = Machine.Prng.create (base_seed + i) in
      let key_space = 64 + Machine.Prng.int prng 512 in
      List.init ops_per_seed (fun _ -> gen_op prng ~key_space))

let mutate prng ops =
  let arr = Array.of_list ops in
  let n = Array.length arr in
  if n = 0 then [ gen_op prng ~key_space:64 ]
  else begin
    let mutations = 1 + Machine.Prng.int prng (max 1 (n / 10)) in
    let out = ref (Array.to_list arr) in
    for _ = 1 to mutations do
      let cur = Array.of_list !out in
      let m = Array.length cur in
      if m > 0 then begin
        let i = Machine.Prng.int prng m in
        match Machine.Prng.int prng 4 with
        | 0 ->
            (* Replace with a fresh operation. *)
            cur.(i) <- gen_op prng ~key_space:(64 + Machine.Prng.int prng 512);
            out := Array.to_list cur
        | 1 ->
            (* Duplicate an operation. *)
            out := Array.to_list cur @ [ cur.(i) ]
        | 2 ->
            (* Drop an operation. *)
            out :=
              List.filteri (fun j _ -> j <> i) (Array.to_list cur)
        | _ ->
            (* Swap two operations. *)
            let j = Machine.Prng.int prng m in
            let tmp = cur.(i) in
            cur.(i) <- cur.(j);
            cur.(j) <- tmp;
            out := Array.to_list cur
      end
    done;
    !out
  end

let split ~threads ops =
  let per_thread = Array.make threads [] in
  List.iteri
    (fun i op ->
      let t = i mod threads in
      per_thread.(t) <- op :: per_thread.(t))
    ops;
  Array.map List.rev per_thread
