(** PMRace-style seed corpus and mutation engine (§5.2).

    PMRace starts from an initial workload (a "seed" of ~400 operations),
    executes the application with it, then repeatedly mutates the workload
    and re-executes, injecting delays in the hope of directly observing a
    racy interleaving. The paper's Fast-Fair comparison uses 240 seeds;
    each tool is run once per seed and the average time to find a given
    race is compared (Table 3). *)

val corpus :
  ?count:int -> ?ops_per_seed:int -> ?base_seed:int -> unit -> Op.kv list array
(** [corpus ()] generates the seed workloads (default 240 seeds of ~400
    operations each, matching the paper). Seed [i] is deterministic in
    [base_seed + i]. The mix is insert-heavy so that structural operations
    (node splits, rehashes) actually occur. *)

val mutate : Machine.Prng.t -> Op.kv list -> Op.kv list
(** One fuzzing step: randomly replaces, duplicates, drops or reorders
    operations and perturbs keys, preserving rough workload size. *)

val split : threads:int -> Op.kv list -> Op.kv list array
(** Deals a seed's operations round-robin onto [threads] worker lists, the
    way the comparison harness feeds them to the application. *)
