type spec = {
  load_ops : int;
  main_ops : int;
  threads : int;
  insert_pct : int;
  update_pct : int;
  get_pct : int;
  delete_pct : int;
  key_space : int;
  zipfian : bool;
}

let paper_mix ~ops =
  {
    load_ops = 1000;
    main_ops = ops;
    threads = 8;
    insert_pct = 30;
    update_pct = 30;
    get_pct = 30;
    delete_pct = 10;
    key_space = max 2048 (2 * ops);
    zipfian = false;
  }

type t = { load : Op.kv list; per_thread : Op.kv list array }

let validate spec =
  if spec.insert_pct + spec.update_pct + spec.get_pct + spec.delete_pct <> 100
  then invalid_arg "Ycsb.generate: operation mix must sum to 100";
  if spec.load_ops < 0 || spec.main_ops < 0 || spec.threads <= 0
     || spec.key_space <= 0
  then invalid_arg "Ycsb.generate: non-positive field"

let generate ~seed spec =
  validate spec;
  let prng = Machine.Prng.create seed in
  let zipf = if spec.zipfian then Some (Zipf.create spec.key_space) else None in
  let key () =
    match zipf with
    | Some z -> 1 + Zipf.sample z prng
    | None -> 1 + Machine.Prng.int prng spec.key_space
  in
  let value () = Machine.Prng.next_int64 prng in
  (* Load phase: distinct keys so the structure actually grows. *)
  let load =
    List.init spec.load_ops (fun i -> Op.Insert ((i * 7) + 1, value ()))
  in
  let main_op () =
    let r = Machine.Prng.int prng 100 in
    if r < spec.insert_pct then Op.Insert (key (), value ())
    else if r < spec.insert_pct + spec.update_pct then Op.Update (key (), value ())
    else if r < spec.insert_pct + spec.update_pct + spec.get_pct then
      Op.Get (key ())
    else Op.Delete (key ())
  in
  let per_thread = Array.make spec.threads [] in
  for i = spec.main_ops - 1 downto 0 do
    let t = i mod spec.threads in
    per_thread.(t) <- main_op () :: per_thread.(t)
  done;
  { load; per_thread }

let total_ops t =
  List.length t.load
  + Array.fold_left (fun acc l -> acc + List.length l) 0 t.per_thread

let memcached_mix ~seed ~ops ~threads =
  let prng = Machine.Prng.create seed in
  let key_space = max 512 ops in
  let zipf = Zipf.create key_space in
  let key () = 1 + Zipf.sample zipf prng in
  let value () = Machine.Prng.next_int64 prng in
  let main_op () =
    match Machine.Prng.int prng 10 with
    | 0 -> Op.Mc_set (key (), value ())
    | 1 -> Op.Mc_get (key ())
    | 2 -> Op.Mc_add (key (), value ())
    | 3 -> Op.Mc_replace (key (), value ())
    | 4 -> Op.Mc_append (key (), value ())
    | 5 -> Op.Mc_prepend (key (), value ())
    | 6 -> Op.Mc_cas (key (), value (), value ())
    | 7 -> Op.Mc_delete (key ())
    | 8 -> Op.Mc_incr (key ())
    | _ -> Op.Mc_decr (key ())
  in
  let per_thread = Array.make threads [] in
  for i = ops - 1 downto 0 do
    let t = i mod threads in
    per_thread.(t) <- main_op () :: per_thread.(t)
  done;
  (* 1000-set load phase, executed before workers start. *)
  let load = List.init 1000 (fun i -> Op.Mc_set ((i mod key_space) + 1, value ())) in
  per_thread.(0) <- load @ per_thread.(0);
  per_thread

let madfs_mix ~seed ~ops ~threads ~file_blocks =
  let prng = Machine.Prng.create seed in
  let zipf = Zipf.create file_blocks in
  let block_size = 4096 in
  let per_thread = Array.make threads [] in
  for i = ops - 1 downto 0 do
    let t = i mod threads in
    let block = Zipf.sample zipf prng in
    let op =
      if Machine.Prng.int prng 100 < 80 then
        Op.Fs_write (block * block_size, block_size)
      else Op.Fs_read (block * block_size, block_size)
    in
    per_thread.(t) <- op :: per_thread.(t)
  done;
  per_thread
