(** YCSB-style workload generator (§5 "Workloads").

    The paper's evaluation runs, for the seven key-value applications, a
    load phase of 1k insertions followed by a main phase mixing 30%
    insertions, 30% updates, 30% gets and 10% deletes over 1k/10k/100k
    operations, split across eight worker threads. *)

type spec = {
  load_ops : int;  (** Insertions in the load phase. *)
  main_ops : int;  (** Total operations in the main phase. *)
  threads : int;  (** Worker threads sharing the main phase. *)
  insert_pct : int;
  update_pct : int;
  get_pct : int;
  delete_pct : int;  (** The four percentages must sum to 100. *)
  key_space : int;  (** Keys are drawn from [\[1, key_space\]]. *)
  zipfian : bool;  (** Zipfian (vs uniform) key popularity. *)
}

val paper_mix : ops:int -> spec
(** The paper's configuration: 1k-insert load phase, [ops] main
    operations, 8 threads, 30/30/30/10 mix, uniform keys over a space
    sized to the workload. *)

type t = {
  load : Op.kv list;  (** Executed single-threaded before the main phase. *)
  per_thread : Op.kv list array;  (** One op list per worker thread. *)
}

val generate : seed:int -> spec -> t
(** Deterministic in [seed] and [spec]. Raises [Invalid_argument] when the
    percentages do not sum to 100 or a field is non-positive. *)

val total_ops : t -> int

val memcached_mix : seed:int -> ops:int -> threads:int -> Op.mc list array
(** The Memcached workload: a 1000-set load phase is produced as the first
    chunk of thread 0's list; the main phase mixes set, get, add, replace,
    append, prepend, CAS, delete, incr and decr over zipfian keys (§5). *)

val madfs_mix :
  seed:int -> ops:int -> threads:int -> file_blocks:int -> Op.fs list array
(** The MadFS workload: 4 KiB writes (and reads) at zipfian offsets of a
    file shared by all threads (§5). *)
