type t = { cdf : float array }

let create ?(theta = 0.99) n =
  if n <= 0 then invalid_arg "Zipf.create: non-positive size";
  let weights = Array.init n (fun i -> 1.0 /. (float_of_int (i + 1) ** theta)) in
  let total = Array.fold_left ( +. ) 0.0 weights in
  let cdf = Array.make n 0.0 in
  let acc = ref 0.0 in
  Array.iteri
    (fun i w ->
      acc := !acc +. (w /. total);
      cdf.(i) <- !acc)
    weights;
  cdf.(n - 1) <- 1.0;
  { cdf }

let sample t prng =
  let u = Machine.Prng.float prng 1.0 in
  (* Binary search for the first index with cdf >= u. *)
  let lo = ref 0 and hi = ref (Array.length t.cdf - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.cdf.(mid) >= u then hi := mid else lo := mid + 1
  done;
  !lo

let size t = Array.length t.cdf
