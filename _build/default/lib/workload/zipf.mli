(** Zipfian distribution sampler.

    Used by the Memcached and MadFS workloads ("the target offset ... is
    randomized following a zipfian distribution", §5) and available to the
    YCSB generator. Standard inverse-CDF sampling with a precomputed
    harmonic table. *)

type t

val create : ?theta:float -> int -> t
(** [create n] prepares a sampler over [\[0, n)]. [theta] is the skew
    (default 0.99, the YCSB default). Raises [Invalid_argument] when
    [n <= 0]. *)

val sample : t -> Machine.Prng.t -> int
(** Draws a rank in [\[0, n)]; rank 0 is the most popular. *)

val size : t -> int
