test/test_apps.ml: Alcotest Array Bytes Char Format Hashtbl Hawkset Int64 List Machine Option Pmapps Pmem Printf QCheck QCheck_alcotest Trace Workload
