test/test_baselines.ml: Alcotest Array Baselines Hawkset Int64 List Machine Pmapps Pmem Trace Workload
