test/test_harness.ml: Alcotest Float Harness List Pmapps QCheck QCheck_alcotest String
