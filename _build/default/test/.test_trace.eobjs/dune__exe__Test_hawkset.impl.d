test/test_hawkset.ml: Alcotest Bytes Format Hashtbl Hawkset Int List Lockset Machine Pmem Printf QCheck QCheck_alcotest Random Str String Trace Vclock
