test/test_hawkset.mli:
