test/test_machine.ml: Alcotest Array Bytes Format Int64 List Machine Pmem Printf QCheck QCheck_alcotest Trace
