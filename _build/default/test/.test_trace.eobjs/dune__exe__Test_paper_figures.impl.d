test/test_paper_figures.ml: Alcotest Hawkset Pmem Trace
