test/test_pmem.ml: Alcotest Bytes Hashtbl Int64 List Pmem QCheck QCheck_alcotest Trace
