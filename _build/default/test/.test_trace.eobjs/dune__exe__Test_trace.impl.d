test/test_trace.ml: Alcotest Filename Format Fun Hashtbl Hawkset List Printf QCheck QCheck_alcotest String Sys Trace
