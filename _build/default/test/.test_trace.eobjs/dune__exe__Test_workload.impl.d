test/test_workload.ml: Alcotest Array Hashtbl List Machine Option Printf QCheck QCheck_alcotest Workload
