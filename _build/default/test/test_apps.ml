(* Tests for the reimplemented PM applications: functional correctness
   under serial and concurrent execution, structural invariants, and
   HawkSet detection of each app's injected Table 2 bugs. *)

module S = Machine.Sched

(* A sequential reference model to check KV semantics against. *)
let model_check (module App : Pmapps.App_intf.KV) ~ops ~seed () =
  let spec =
    { (Workload.Ycsb.paper_mix ~ops) with threads = 1; load_ops = 100 }
  in
  let w = Workload.Ycsb.generate ~seed spec in
  let all_ops = w.Workload.Ycsb.load @ w.Workload.Ycsb.per_thread.(0) in
  let model : (int, int64) Hashtbl.t = Hashtbl.create 256 in
  let heap = Pmem.Heap.create ~size:(64 * 1024 * 1024) () in
  let mismatches = ref [] in
  ignore
    (S.run ~seed ~sync_config:App.sync_config ~heap (fun ctx ->
         let t = App.create ctx in
         List.iter
           (fun op ->
             match op with
             | Workload.Op.Insert (k, v) | Workload.Op.Update (k, v) ->
                 App.insert t ctx ~key:k ~value:v;
                 Hashtbl.replace model k v
             | Workload.Op.Get k ->
                 let expected = Hashtbl.find_opt model k in
                 let got = App.get t ctx ~key:k in
                 if expected <> got then mismatches := k :: !mismatches
             | Workload.Op.Delete k ->
                 App.delete t ctx ~key:k;
                 Hashtbl.remove model k)
           all_ops;
         (* Final sweep: every model key must be retrievable. *)
         Hashtbl.iter
           (fun k v ->
             if App.get t ctx ~key:k <> Some v then mismatches := k :: !mismatches)
           model));
  Alcotest.(check (list int)) "model agrees" [] !mismatches

let races_of (module App : Pmapps.App_intf.KV) ?(ops = 400) ?(seed = 7) () =
  let report = Pmapps.Driver.run_kv_ycsb (module App) ~seed ~ops () in
  Hawkset.Pipeline.races report.S.trace

module Fast_fair_tests = struct
  let serial_model () = model_check (module Pmapps.Fast_fair) ~ops:400 ~seed:3 ()

  let survives_concurrency () =
    (* Structure stays well-formed under concurrent mutation. *)
    let heap = Pmem.Heap.create ~size:(64 * 1024 * 1024) () in
    ignore
      (S.run ~seed:11 ~heap (fun ctx ->
           let t = Pmapps.Fast_fair.create ctx in
           let spec = Workload.Ycsb.paper_mix ~ops:400 in
           let w = Workload.Ycsb.generate ~seed:11 spec in
           List.iter
             (fun op ->
               match op with
               | Workload.Op.Insert (key, value) ->
                   Pmapps.Fast_fair.insert t ctx ~key ~value
               | _ -> ())
             w.Workload.Ycsb.load;
           let workers =
             Array.to_list
               (Array.map
                  (fun ops ->
                    S.spawn ctx (fun ctx' ->
                        List.iter
                          (fun op ->
                            match op with
                            | Workload.Op.Insert (key, value)
                            | Workload.Op.Update (key, value) ->
                                Pmapps.Fast_fair.insert t ctx' ~key ~value
                            | Workload.Op.Get key ->
                                ignore (Pmapps.Fast_fair.get t ctx' ~key)
                            | Workload.Op.Delete key ->
                                Pmapps.Fast_fair.delete t ctx' ~key)
                          ops))
                  w.Workload.Ycsb.per_thread)
           in
           List.iter (S.join ctx) workers;
           Pmapps.Fast_fair.check t ctx))

  let splits_happen () =
    (* Enough distinct inserts must grow the tree past one node (and past
       one level, for bug #2's path). *)
    let heap = Pmem.Heap.create ~size:(16 * 1024 * 1024) () in
    ignore
      (S.run ~heap (fun ctx ->
           let t = Pmapps.Fast_fair.create ctx in
           for k = 1 to 200 do
             Pmapps.Fast_fair.insert t ctx ~key:k ~value:(Int64.of_int k)
           done;
           Pmapps.Fast_fair.check t ctx;
           Alcotest.(check int) "all keys present" 200
             (List.length (Pmapps.Fast_fair.keys t ctx));
           for k = 1 to 200 do
             Alcotest.(check (option int64))
               (Printf.sprintf "get %d" k)
               (Some (Int64.of_int k))
               (Pmapps.Fast_fair.get t ctx ~key:k)
           done))

  let hawkset_finds_bugs () =
    (* Seed-style workloads (no single-threaded load phase) so the tree
       is built — and split — by the concurrent workers, like the Table 3
       comparison. Bug #2's inner-split branch is rare: like the paper's
       ~83/240 seeds, not every workload covers it, so scan a few. *)
    let corpus = Workload.Seeds.corpus ~count:6 ~ops_per_seed:500 () in
    let found1 = ref false and found2 = ref false in
    Array.iteri
      (fun i seed_ops ->
        if not (!found1 && !found2) then begin
          let per_thread = Workload.Seeds.split ~threads:8 seed_ops in
          let report =
            Pmapps.Driver.run_kv (module Pmapps.Fast_fair) ~seed:i ~load:[]
              ~per_thread ()
          in
          let races = Hawkset.Pipeline.races report.S.trace in
          if Pmapps.Ground_truth.bug_found ~bugs:Pmapps.Fast_fair.bugs races 1
          then found1 := true;
          if Pmapps.Ground_truth.bug_found ~bugs:Pmapps.Fast_fair.bugs races 2
          then found2 := true
        end)
      corpus;
    Alcotest.(check bool) "bug #1 detected" true !found1;
    Alcotest.(check bool) "bug #2 detected" true !found2

  let no_false_positives_with_irh () =
    let report = races_of (module Pmapps.Fast_fair) ~ops:400 ~seed:9 () in
    let fps =
      List.filter
        (fun r ->
          Pmapps.Ground_truth.classify ~bugs:Pmapps.Fast_fair.bugs ~benign:Pmapps.Fast_fair.benign r
          = Pmapps.Ground_truth.False_positive)
        (Hawkset.Report.sorted report)
    in
    Alcotest.(check int)
      (Format.asprintf "no FPs, got: %a" Hawkset.Report.pp fps)
      0 (List.length fps)

  let crash_loses_unpersisted_insert () =
    (* Manifest bug #1: crash between the sibling-pointer publication and
       its deferred persist; an insert routed through the new node becomes
       unreachable after recovery. We simply check that recovery after an
       arbitrary mid-run crash never sees structural corruption but CAN
       lose acknowledged inserts. *)
    let heap = Pmem.Heap.create ~size:(16 * 1024 * 1024) () in
    let meta = ref 0 in
    let acked = ref [] in
    let r =
      S.run ~seed:1 ~crash_after_events:3000 ~heap (fun ctx ->
          let t = Pmapps.Fast_fair.create ctx in
          meta := Pmapps.Fast_fair.meta_addr t;
          let w1 =
            S.spawn ctx (fun ctx' ->
                for k = 1 to 100 do
                  Pmapps.Fast_fair.insert t ctx' ~key:(2 * k) ~value:1L;
                  acked := (2 * k) :: !acked
                done)
          in
          let w2 =
            S.spawn ctx (fun ctx' ->
                for k = 1 to 100 do
                  Pmapps.Fast_fair.insert t ctx' ~key:((2 * k) + 1) ~value:2L;
                  acked := ((2 * k) + 1) :: !acked
                done)
          in
          S.join ctx w1;
          S.join ctx w2)
    in
    Alcotest.(check bool) "crashed" true (r.S.outcome = S.Crashed);
    let post = Pmem.Heap.of_image (Pmem.Heap.crash_image heap) in
    ignore
      (S.run ~heap:post (fun ctx ->
           let t = Pmapps.Fast_fair.recover ctx ~meta_addr:!meta in
           let surviving = Pmapps.Fast_fair.keys t ctx in
           (* Recovery must find a readable structure. *)
           Alcotest.(check bool) "some keys survive" true
             (List.length surviving >= 0);
           ignore surviving))

  let tests =
    [
      Alcotest.test_case "serial model" `Quick serial_model;
      Alcotest.test_case "concurrent invariants" `Quick survives_concurrency;
      Alcotest.test_case "splits happen" `Quick splits_happen;
      Alcotest.test_case "hawkset finds bugs 1 and 2" `Quick hawkset_finds_bugs;
      Alcotest.test_case "no FPs with IRH" `Quick no_false_positives_with_irh;
      Alcotest.test_case "crash and recovery" `Quick
        crash_loses_unpersisted_insert;
    ]
end

(* Reusable checks instantiated for every KV application. *)
module Common (App : Pmapps.App_intf.KV) = struct
  let serial_model () = model_check (module App) ~ops:400 ~seed:3 ()

  let concurrent_final_state () =
    (* Weak linearizability smoke test: after a concurrent run, every
       surviving key maps to SOME value that was actually written to it. *)
    let heap = Pmem.Heap.create ~size:(128 * 1024 * 1024) () in
    let written : (int, (int64, unit) Hashtbl.t) Hashtbl.t =
      Hashtbl.create 256
    in
    let record k v =
      let tbl =
        match Hashtbl.find_opt written k with
        | Some t -> t
        | None ->
            let t = Hashtbl.create 4 in
            Hashtbl.add written k t;
            t
      in
      Hashtbl.replace tbl v ()
    in
    let spec =
      { (Workload.Ycsb.paper_mix ~ops:400) with delete_pct = 0; get_pct = 40 }
    in
    let w = Workload.Ycsb.generate ~seed:13 spec in
    ignore
      (S.run ~seed:13 ~sync_config:App.sync_config ~heap (fun ctx ->
           let t = App.create ctx in
           let all_ops = Array.to_list w.Workload.Ycsb.per_thread in
           let loaders =
             List.map
               (fun ops ->
                 S.spawn ctx (fun ctx' ->
                     List.iter
                       (fun op ->
                         match op with
                         | Workload.Op.Insert (key, value)
                         | Workload.Op.Update (key, value) ->
                             record key value;
                             App.insert t ctx' ~key ~value
                         | Workload.Op.Get key -> ignore (App.get t ctx' ~key)
                         | Workload.Op.Delete key -> ignore key)
                       ops))
               (w.Workload.Ycsb.load :: all_ops)
           in
           List.iter (S.join ctx) loaders;
           (* Verify on the main thread, all workers joined. *)
           Hashtbl.iter
             (fun k values ->
               match App.get t ctx ~key:k with
               | Some v ->
                   Alcotest.(check bool)
                     (Printf.sprintf "key %d holds a written value" k)
                     true (Hashtbl.mem values v)
               | None ->
                   Alcotest.failf "key %d vanished without a delete" k)
             written))

  let concurrent_run_completes () =
    let report = Pmapps.Driver.run_kv_ycsb (module App) ~seed:4 ~ops:400 () in
    Alcotest.(check bool) "completed" true
      (report.S.outcome = S.Completed);
    (* Main thread + 8 loaders + 8 workers. *)
    Alcotest.(check int) "seventeen threads" 17 report.S.thread_count

  let no_false_positives_with_irh () =
    let report = races_of (module App) ~ops:400 ~seed:9 () in
    let fps =
      List.filter
        (fun r ->
          Pmapps.Ground_truth.classify ~bugs:App.bugs ~benign:App.benign r
          = Pmapps.Ground_truth.False_positive)
        (Hawkset.Report.sorted report)
    in
    Alcotest.(check int)
      (Format.asprintf "no FPs, got: %a" Hawkset.Report.pp fps)
      0 (List.length fps)

  let bug_detection ~ops ~seed ids () =
    let report = races_of (module App) ~ops ~seed () in
    List.iter
      (fun id ->
        Alcotest.(check bool)
          (Printf.sprintf "bug #%d detected" id)
          true
          (Pmapps.Ground_truth.bug_found ~bugs:App.bugs report id))
      ids

  let tests ?(bug_ops = 1000) ?(bug_seed = 5) ?(check_fps = true) ids =
    [
      Alcotest.test_case "serial model" `Quick serial_model;
      Alcotest.test_case "concurrent final state" `Quick concurrent_final_state;
      Alcotest.test_case "concurrent run completes" `Quick
        concurrent_run_completes;
      Alcotest.test_case "bugs detected" `Quick
        (bug_detection ~ops:bug_ops ~seed:bug_seed ids);
    ]
    @
    if check_fps then
      [ Alcotest.test_case "no FPs with IRH" `Quick no_false_positives_with_irh ]
    else []
end

module Region_and_scan_tests = struct
  let pm_filtering () =
    (* Register only part of the heap as PM: accesses outside produce no
       events (the §4 mmap filter), so the analysis never sees volatile
       noise — and the PM fraction of the trace mirrors §3.1's point. *)
    let heap = Pmem.Heap.create ~size:(1 lsl 16) () in
    let pm = Pmem.Region.create () in
    Pmem.Region.register pm ~name:"/mnt/pmem/pool" ~addr:0 ~size:4096;
    let r =
      S.run ~pm_regions:pm ~heap (fun ctx ->
          (* PM accesses (inside the region). *)
          S.store_i64 ctx __POS__ 128 1L;
          S.persist ctx __POS__ 128 8;
          (* Volatile scratch: executed, never traced. *)
          for i = 0 to 99 do
            S.store_i64 ctx __POS__ (8192 + (8 * i)) (Int64.of_int i);
            ignore (S.load_i64 ctx __POS__ (8192 + (8 * i)))
          done;
          ignore (S.load_i64 ctx __POS__ 128))
    in
    let st = Trace.Tracebuf.stats r.S.trace in
    Alcotest.(check int) "only PM stores traced" 1 st.Trace.Tracebuf.stores;
    Alcotest.(check int) "only PM loads traced" 1 st.Trace.Tracebuf.loads;
    (* Data still written, of course. *)
    Alcotest.(check int64) "volatile data written" 5L
      (Pmem.Heap.read_i64 heap (8192 + 40))

  let region_registry () =
    let t = Pmem.Region.create () in
    Pmem.Region.register t ~name:"a" ~addr:0 ~size:100;
    Pmem.Region.register t ~name:"b" ~addr:200 ~size:50;
    Alcotest.(check bool) "inside a" true (Pmem.Region.is_pm t 99);
    Alcotest.(check bool) "gap" false (Pmem.Region.is_pm t 150);
    Alcotest.(check (option (triple string int int))) "find" (Some ("b", 200, 50))
      (Pmem.Region.find t 230);
    Alcotest.check_raises "overlap rejected"
      (Invalid_argument "Region.register: overlapping region") (fun () ->
        Pmem.Region.register t ~name:"c" ~addr:90 ~size:20)

  let fast_fair_range () =
    let heap = Pmem.Heap.create ~size:(16 * 1024 * 1024) () in
    ignore
      (S.run ~heap (fun ctx ->
           let t = Pmapps.Fast_fair.create ctx in
           for k = 1 to 300 do
             Pmapps.Fast_fair.insert t ctx ~key:(2 * k) ~value:(Int64.of_int k)
           done;
           let r = Pmapps.Fast_fair.range t ctx ~lo:100 ~hi:120 in
           Alcotest.(check (list (pair int int64))) "range contents"
             [ (100, 50L); (102, 51L); (104, 52L); (106, 53L); (108, 54L);
               (110, 55L); (112, 56L); (114, 57L); (116, 58L); (118, 59L);
               (120, 60L) ]
             r;
           Alcotest.(check (list (pair int int64))) "empty range" []
             (Pmapps.Fast_fair.range t ctx ~lo:601 ~hi:700)))

  let tests =
    [
      Alcotest.test_case "PM region filtering" `Quick pm_filtering;
      Alcotest.test_case "region registry" `Quick region_registry;
      Alcotest.test_case "fast-fair range scan" `Quick fast_fair_range;
    ]
end

module Recovery_tests = struct
  let madfs_log_replay () =
    let heap = Pmem.Heap.create ~size:(64 * 1024 * 1024) () in
    let base = ref 0 in
    ignore
      (S.run ~heap (fun ctx ->
           let t = Pmapps.Madfs.create ctx ~blocks:8 in
           base := Pmapps.Madfs.base_addr t;
           Pmapps.Madfs.write t ctx ~offset:0
             ~data:(Bytes.make Pmapps.Madfs.block_size 'a');
           Pmapps.Madfs.write t ctx ~offset:Pmapps.Madfs.block_size
             ~data:(Bytes.make Pmapps.Madfs.block_size 'b');
           Pmapps.Madfs.fsync t ctx));
    (* Crash NOW: data + log are durable (fsync), the block table's
       recovery path must rebuild the mapping from the log alone. *)
    let post = Pmem.Heap.of_image (Pmem.Heap.crash_image heap) in
    ignore
      (S.run ~heap:post (fun ctx ->
           let t = Pmapps.Madfs.recover ctx ~base:!base ~blocks:8 in
           Alcotest.(check char) "block 0 recovered" 'a'
             (Bytes.get (Pmapps.Madfs.read t ctx ~offset:0) 0);
           Alcotest.(check char) "block 1 recovered" 'b'
             (Bytes.get
                (Pmapps.Madfs.read t ctx ~offset:Pmapps.Madfs.block_size)
                0)))

  (* The control-group crash-consistency property: for ANY op sequence
     and ANY crash point, pmlog's recovery reflects exactly the
     acknowledged prefix — plus, at most, the single operation that was
     in flight at the crash (durable but its return never reached the
     application: the unavoidable ack-vs-durability window). *)
  let pmlog_crash_consistency =
    QCheck.Test.make ~name:"pmlog: recovery == acknowledged prefix (+<=1)"
      ~count:60
      QCheck.(pair small_int (int_range 5 400))
      (fun (seed, crash_after) ->
        let heap = Pmem.Heap.create ~size:(16 * 1024 * 1024) () in
        let base = ref 0 in
        let prng = Machine.Prng.create seed in
        let ops =
          List.init 60 (fun _ ->
              let k = 1 + Machine.Prng.int prng 10 in
              if Machine.Prng.int prng 4 = 0 then `Delete k
              else `Put (k, Machine.Prng.next_int64 prng))
        in
        let acked = ref 0 in
        ignore
          (S.run ~seed ~crash_after_events:crash_after ~heap (fun ctx ->
               let t = Pmapps.Pmlog.create ctx in
               base := Pmapps.Pmlog.base_addr t;
               List.iter
                 (fun op ->
                   (match op with
                   | `Put (k, v) -> Pmapps.Pmlog.insert t ctx ~key:k ~value:v
                   | `Delete k -> Pmapps.Pmlog.delete t ctx ~key:k);
                   incr acked)
                 ops));
        let model_after n =
          let m : (int, int64 option) Hashtbl.t = Hashtbl.create 32 in
          List.iteri
            (fun i op ->
              if i < n then
                match op with
                | `Put (k, v) -> Hashtbl.replace m k (Some v)
                | `Delete k -> Hashtbl.replace m k None)
            ops;
          m
        in
        let post = Pmem.Heap.of_image (Pmem.Heap.crash_image heap) in
        let matches m =
          let ok = ref true in
          ignore
            (S.run ~heap:post (fun ctx ->
                 let t = Pmapps.Pmlog.recover ctx ~base:!base in
                 for k = 1 to 10 do
                   let expected =
                     Option.join (Hashtbl.find_opt m k)
                   in
                   if Pmapps.Pmlog.get t ctx ~key:k <> expected then ok := false
                 done));
          !ok
        in
        matches (model_after !acked)
        || (!acked < List.length ops && matches (model_after (!acked + 1))))

  let tests =
    [
      Alcotest.test_case "madfs log replay" `Quick madfs_log_replay;
      QCheck_alcotest.to_alcotest pmlog_crash_consistency;
    ]
end

module Clht_common = Common (Pmapps.P_clht)

module P_clht_tests = struct
  let rehash_happens () =
    let heap = Pmem.Heap.create ~size:(64 * 1024 * 1024) () in
    ignore
      (S.run ~heap ~sync_config:Pmapps.P_clht.sync_config (fun ctx ->
           let t = Pmapps.P_clht.create ctx in
           for k = 1 to 800 do
             Pmapps.P_clht.insert t ctx ~key:k ~value:(Int64.of_int k)
           done;
           Alcotest.(check bool) "table grew" true
             (Pmapps.P_clht.bucket_count t ctx > 64);
           for k = 1 to 800 do
             Alcotest.(check (option int64))
               (Printf.sprintf "get %d" k)
               (Some (Int64.of_int k))
               (Pmapps.P_clht.get t ctx ~key:k)
           done))

  let tests =
    Alcotest.test_case "rehash happens" `Quick rehash_happens
    :: Clht_common.tests [ 4 ]
end

module Turbo_common = Common (Pmapps.Turbo_hash)

module Turbo_hash_tests = struct
  let second_line_slots_reached () =
    (* Force one bucket past three entries; the overflow slots are the
       unpersisted ones. *)
    let heap = Pmem.Heap.create ~size:(64 * 1024 * 1024) () in
    ignore
      (S.run ~heap ~sync_config:Pmapps.Turbo_hash.sync_config (fun ctx ->
           let t = Pmapps.Turbo_hash.create ctx in
           (* Insert many keys; some bucket will exceed 3 entries via
              probing collisions. *)
           for k = 1 to 4000 do
             Pmapps.Turbo_hash.insert t ctx ~key:k ~value:(Int64.of_int k)
           done;
           let deep =
             List.exists
               (fun k ->
                 match Pmapps.Turbo_hash.slot_of t ctx ~key:k with
                 | Some i -> i >= 3
                 | None -> false)
               (List.init 4000 (fun i -> i + 1))
           in
           Alcotest.(check bool) "some entry on the second line" true deep;
           for k = 1 to 4000 do
             Alcotest.(check (option int64))
               (Printf.sprintf "get %d" k)
               (Some (Int64.of_int k))
               (Pmapps.Turbo_hash.get t ctx ~key:k)
           done))

  let bug_needs_large_workload () =
    (* The Table 2 narrative: bug #3 is invisible in small workloads and
       appears as buckets fill. *)
    let found ops seed =
      Pmapps.Ground_truth.bug_found ~bugs:Pmapps.Turbo_hash.bugs
        (races_of (module Pmapps.Turbo_hash) ~ops ~seed ())
        3
    in
    Alcotest.(check bool) "found in a large workload" true (found 6000 2)

  let tests =
    [
      Alcotest.test_case "second-line slots reached" `Quick
        second_line_slots_reached;
      Alcotest.test_case "bug #3 needs a large workload" `Quick
        bug_needs_large_workload;
    ]
    @ Turbo_common.tests ~bug_ops:6000 ~bug_seed:2 [ 3 ]
end

module Masstree_common = Common (Pmapps.P_masstree)

module P_masstree_tests = struct
  let splits_and_leaves () =
    let heap = Pmem.Heap.create ~size:(64 * 1024 * 1024) () in
    ignore
      (S.run ~heap (fun ctx ->
           let t = Pmapps.P_masstree.create ctx in
           for k = 1 to 500 do
             Pmapps.P_masstree.insert t ctx ~key:k ~value:(Int64.of_int (2 * k))
           done;
           Alcotest.(check bool) "many leaves" true
             (Pmapps.P_masstree.leaf_count t ctx > 10);
           for k = 1 to 500 do
             Alcotest.(check (option int64))
               (Printf.sprintf "get %d" k)
               (Some (Int64.of_int (2 * k)))
               (Pmapps.P_masstree.get t ctx ~key:k)
           done;
           Pmapps.P_masstree.delete t ctx ~key:250;
           Alcotest.(check (option int64)) "deleted" None
             (Pmapps.P_masstree.get t ctx ~key:250)))

  let scan () =
    let heap = Pmem.Heap.create ~size:(64 * 1024 * 1024) () in
    ignore
      (S.run ~heap (fun ctx ->
           let t = Pmapps.P_masstree.create ctx in
           for k = 1 to 200 do
             Pmapps.P_masstree.insert t ctx ~key:(3 * k) ~value:(Int64.of_int k)
           done;
           Alcotest.(check (list (pair int int64))) "scan window"
             [ (150, 50L); (153, 51L); (156, 52L); (159, 53L) ]
             (Pmapps.P_masstree.scan t ctx ~lo:149 ~hi:160);
           Alcotest.(check int) "full scan" 200
             (List.length (Pmapps.P_masstree.scan t ctx ~lo:0 ~hi:10000));
           Alcotest.(check (list (pair int int64))) "empty" []
             (Pmapps.P_masstree.scan t ctx ~lo:601 ~hi:700)))

  let tests =
    Alcotest.test_case "splits and leaves" `Quick splits_and_leaves
    :: Alcotest.test_case "scan" `Quick scan
    :: Masstree_common.tests ~bug_ops:2000 [ 5; 6; 7 ]
end

module Art_common = Common (Pmapps.P_art)

module P_art_tests = struct
  let node_growth () =
    let heap = Pmem.Heap.create ~size:(128 * 1024 * 1024) () in
    ignore
      (S.run ~heap ~sync_config:Pmapps.P_art.sync_config (fun ctx ->
           let t = Pmapps.P_art.create ctx in
           for k = 1 to 400 do
             Pmapps.P_art.insert t ctx ~key:k ~value:(Int64.of_int k)
           done;
           let n4, _, _, n256 = Pmapps.P_art.node_type_counts t ctx in
           (* Dense keys push every level-7 node all the way to N256. *)
           Alcotest.(check bool) "N4 and N256 present" true (n4 > 0 && n256 > 0);
           for k = 1 to 400 do
             Alcotest.(check (option int64))
               (Printf.sprintf "get %d" k)
               (Some (Int64.of_int k))
               (Pmapps.P_art.get t ctx ~key:k)
           done;
           Pmapps.P_art.delete t ctx ~key:123;
           Alcotest.(check (option int64)) "deleted" None
             (Pmapps.P_art.get t ctx ~key:123);
           Pmapps.P_art.insert t ctx ~key:123 ~value:9L;
           Alcotest.(check (option int64)) "reinserted" (Some 9L)
             (Pmapps.P_art.get t ctx ~key:123)))

  let intermediate_sizes () =
    (* 20 keys under one level-7 parent: N4 -> N16 -> N48 growth without
       reaching N256. *)
    let heap = Pmem.Heap.create ~size:(64 * 1024 * 1024) () in
    ignore
      (S.run ~heap ~sync_config:Pmapps.P_art.sync_config (fun ctx ->
           let t = Pmapps.P_art.create ctx in
           for k = 1 to 20 do
             Pmapps.P_art.insert t ctx ~key:k ~value:(Int64.of_int k)
           done;
           let _, _, n48, n256 = Pmapps.P_art.node_type_counts t ctx in
           Alcotest.(check bool) "grew to N48" true (n48 = 1 && n256 = 0);
           for k = 1 to 20 do
             Alcotest.(check (option int64))
               (Printf.sprintf "get %d" k)
               (Some (Int64.of_int k))
               (Pmapps.P_art.get t ctx ~key:k)
           done))

  let tests =
    Alcotest.test_case "node growth" `Quick node_growth
    :: Alcotest.test_case "intermediate node sizes" `Quick intermediate_sizes
    :: Art_common.tests ~bug_ops:1000 [ 8; 9 ]
end

module Wipe_common = Common (Pmapps.Wipe)

module Wipe_tests = struct
  let expansion () =
    let heap = Pmem.Heap.create ~size:(64 * 1024 * 1024) () in
    ignore
      (S.run ~heap (fun ctx ->
           let t = Pmapps.Wipe.create ctx in
           for k = 1 to 3000 do
             Pmapps.Wipe.insert t ctx ~key:k ~value:(Int64.of_int k)
           done;
           let grew = ref false in
           for slot = 0 to Pmapps.Wipe.slots - 1 do
             if Pmapps.Wipe.bucket_capacity t ctx ~slot > 8 then grew := true
           done;
           Alcotest.(check bool) "buckets expanded" true !grew;
           for k = 1 to 3000 do
             Alcotest.(check (option int64))
               (Printf.sprintf "get %d" k)
               (Some (Int64.of_int k))
               (Pmapps.Wipe.get t ctx ~key:k)
           done))

  let traditional_lockset_misses_wipe () =
    (* All three WIPE bugs have the Figure 1c shape: both accesses hold
       the same bucket mutex. The effective-lockset ablation (traditional
       analysis) must miss all of them. *)
    let report = Pmapps.Driver.run_kv_ycsb (module Pmapps.Wipe) ~seed:5 ~ops:800 () in
    let hawkset = Hawkset.Pipeline.races report.S.trace in
    let eraser =
      Hawkset.Pipeline.races
        ~config:
          { Hawkset.Pipeline.default with
            effective_lockset = false; timestamps = false }
        report.S.trace
    in
    List.iter
      (fun id ->
        Alcotest.(check bool)
          (Printf.sprintf "hawkset finds #%d" id)
          true
          (Pmapps.Ground_truth.bug_found ~bugs:Pmapps.Wipe.bugs hawkset id))
      [ 16; 17; 18 ];
    List.iter
      (fun id ->
        Alcotest.(check bool)
          (Printf.sprintf "traditional lockset misses #%d" id)
          false
          (Pmapps.Ground_truth.bug_found ~bugs:Pmapps.Wipe.bugs eraser id))
      [ 16; 17; 18 ]

  let tests =
    Alcotest.test_case "expansion" `Quick expansion
    :: Alcotest.test_case "traditional lockset misses WIPE" `Quick
         traditional_lockset_misses_wipe
    :: Wipe_common.tests ~bug_ops:800 [ 16; 17; 18 ]
end

module Apex_common = Common (Pmapps.Apex)

module Apex_tests = struct
  let overflow_chains () =
    let heap = Pmem.Heap.create ~size:(64 * 1024 * 1024) () in
    ignore
      (S.run ~heap ~sync_config:Pmapps.Apex.sync_config (fun ctx ->
           let t = Pmapps.Apex.create ctx in
           (* More keys than the primary nodes can hold. *)
           for k = 1 to 10000 do
             Pmapps.Apex.insert t ctx ~key:k ~value:(Int64.of_int k)
           done;
           for k = 1 to 10000 do
             Alcotest.(check (option int64))
               (Printf.sprintf "get %d" k)
               (Some (Int64.of_int k))
               (Pmapps.Apex.get t ctx ~key:k)
           done))

  let tests =
    Alcotest.test_case "overflow chains" `Quick overflow_chains
    :: Apex_common.tests ~bug_ops:800 [ 19; 20 ]
end

module Memcached_tests = struct
  let apply t ctx op =
    match op with
    | Workload.Op.Mc_set (key, value) -> Pmapps.Memcached.set t ctx ~key ~value
    | Workload.Op.Mc_get key -> ignore (Pmapps.Memcached.get t ctx ~key)
    | Workload.Op.Mc_add (key, value) ->
        ignore (Pmapps.Memcached.add t ctx ~key ~value)
    | Workload.Op.Mc_replace (key, value) ->
        ignore (Pmapps.Memcached.replace t ctx ~key ~value)
    | Workload.Op.Mc_append (key, value) ->
        ignore (Pmapps.Memcached.append t ctx ~key ~value)
    | Workload.Op.Mc_prepend (key, value) ->
        ignore (Pmapps.Memcached.prepend t ctx ~key ~value)
    | Workload.Op.Mc_cas (key, expected, desired) ->
        ignore (Pmapps.Memcached.cas_op t ctx ~key ~expected ~desired)
    | Workload.Op.Mc_delete key -> Pmapps.Memcached.delete t ctx ~key
    | Workload.Op.Mc_incr key -> Pmapps.Memcached.incr t ctx ~key
    | Workload.Op.Mc_decr key -> Pmapps.Memcached.decr t ctx ~key

  let run ?(seed = 0) ~ops () =
    let heap = Pmem.Heap.create ~size:(64 * 1024 * 1024) () in
    let per_thread = Workload.Ycsb.memcached_mix ~seed ~ops ~threads:8 in
    let reused = ref 0 in
    let report =
      S.run ~seed ~sync_config:Pmapps.Memcached.sync_config ~heap (fun ctx ->
          let t = Pmapps.Memcached.create ctx in
          let workers =
            Array.to_list
              (Array.map
                 (fun ops ->
                   S.spawn ctx (fun ctx' -> List.iter (apply t ctx') ops))
                 per_thread)
          in
          List.iter (S.join ctx) workers;
          reused := Pmapps.Memcached.reused_items t)
    in
    (report, !reused)

  let semantics () =
    let heap = Pmem.Heap.create ~size:(16 * 1024 * 1024) () in
    ignore
      (S.run ~heap (fun ctx ->
           let t = Pmapps.Memcached.create ctx in
           Pmapps.Memcached.set t ctx ~key:1 ~value:10L;
           Alcotest.(check (option int64)) "get" (Some 10L)
             (Pmapps.Memcached.get t ctx ~key:1);
           Alcotest.(check bool) "add existing" false
             (Pmapps.Memcached.add t ctx ~key:1 ~value:11L);
           Alcotest.(check bool) "add fresh" true
             (Pmapps.Memcached.add t ctx ~key:2 ~value:20L);
           Alcotest.(check bool) "replace missing" false
             (Pmapps.Memcached.replace t ctx ~key:3 ~value:0L);
           Alcotest.(check bool) "replace" true
             (Pmapps.Memcached.replace t ctx ~key:2 ~value:21L);
           Alcotest.(check (option int64)) "replaced" (Some 21L)
             (Pmapps.Memcached.get t ctx ~key:2);
           Pmapps.Memcached.incr t ctx ~key:2;
           Alcotest.(check (option int64)) "incr" (Some 22L)
             (Pmapps.Memcached.get t ctx ~key:2);
           Pmapps.Memcached.decr t ctx ~key:2;
           Alcotest.(check (option int64)) "decr" (Some 21L)
             (Pmapps.Memcached.get t ctx ~key:2);
           Alcotest.(check bool) "append" true
             (Pmapps.Memcached.append t ctx ~key:2 ~value:100L);
           Alcotest.(check (option int64)) "appended" (Some 121L)
             (Pmapps.Memcached.get t ctx ~key:2);
           Pmapps.Memcached.delete t ctx ~key:2;
           Alcotest.(check (option int64)) "deleted" None
             (Pmapps.Memcached.get t ctx ~key:2);
           (* Deleted item gets recycled. *)
           Pmapps.Memcached.set t ctx ~key:4 ~value:40L;
           Alcotest.(check int) "reuse happened" 1
             (Pmapps.Memcached.reused_items t);
           Alcotest.(check (option int64)) "after reuse" (Some 40L)
             (Pmapps.Memcached.get t ctx ~key:4)))

  let bugs_detected () =
    let report, _ = run ~seed:3 ~ops:2000 () in
    let races = Hawkset.Pipeline.races report.S.trace in
    List.iter
      (fun id ->
        Alcotest.(check bool)
          (Printf.sprintf "bug #%d" id)
          true
          (Pmapps.Ground_truth.bug_found ~bugs:Pmapps.Memcached.bugs races id))
      [ 10; 11; 12; 13; 14; 15 ]

  let reuse_defeats_irh () =
    (* The Table 4 signature: even WITH the IRH, memcached keeps false
       positives because recycled items are re-initialized on published
       words (§5.4). *)
    let report, reused = run ~seed:3 ~ops:2000 () in
    Alcotest.(check bool) "items were recycled" true (reused > 0);
    let races = Hawkset.Pipeline.races report.S.trace in
    let fps =
      List.filter
        (fun r ->
          Pmapps.Ground_truth.classify ~bugs:Pmapps.Memcached.bugs
            ~benign:Pmapps.Memcached.benign r
          = Pmapps.Ground_truth.False_positive)
        (Hawkset.Report.sorted races)
    in
    Alcotest.(check bool) "FPs survive the IRH" true (List.length fps > 0)

  let tests =
    [
      Alcotest.test_case "semantics" `Quick semantics;
      Alcotest.test_case "bugs detected" `Quick bugs_detected;
      Alcotest.test_case "reuse defeats IRH" `Quick reuse_defeats_irh;
    ]
end

module Madfs_tests = struct
  let block_of_byte b = Bytes.make Pmapps.Madfs.block_size (Char.chr b)

  let cow_semantics () =
    let heap = Pmem.Heap.create ~size:(64 * 1024 * 1024) () in
    ignore
      (S.run ~heap (fun ctx ->
           let t = Pmapps.Madfs.create ctx ~blocks:16 in
           Pmapps.Madfs.write t ctx ~offset:0 ~data:(block_of_byte 1);
           Pmapps.Madfs.write t ctx ~offset:Pmapps.Madfs.block_size
             ~data:(block_of_byte 2);
           Pmapps.Madfs.write t ctx ~offset:0 ~data:(block_of_byte 3);
           Alcotest.(check int) "log grew" 3 (Pmapps.Madfs.log_length t ctx);
           Alcotest.(check char) "block 0 overwritten" '\003'
             (Bytes.get (Pmapps.Madfs.read t ctx ~offset:0) 0);
           Alcotest.(check char) "block 1 intact" '\002'
             (Bytes.get
                (Pmapps.Madfs.read t ctx ~offset:Pmapps.Madfs.block_size)
                0);
           Pmapps.Madfs.fsync t ctx))

  let concurrent_all_benign () =
    let heap = Pmem.Heap.create ~size:(128 * 1024 * 1024) () in
    let per_thread =
      Workload.Ycsb.madfs_mix ~seed:2 ~ops:400 ~threads:8 ~file_blocks:64
    in
    let report =
      S.run ~seed:2 ~heap (fun ctx ->
          let t = Pmapps.Madfs.create ctx ~blocks:64 in
          let workers =
            Array.to_list
              (Array.map
                 (fun ops ->
                   S.spawn ctx (fun ctx' ->
                       List.iter
                         (fun op ->
                           match op with
                           | Workload.Op.Fs_write (offset, _) ->
                               Pmapps.Madfs.write t ctx' ~offset
                                 ~data:(block_of_byte (offset mod 200))
                           | Workload.Op.Fs_read (offset, _) ->
                               ignore (Pmapps.Madfs.read t ctx' ~offset))
                         ops))
                 per_thread)
          in
          List.iter (S.join ctx) workers)
    in
    let races = Hawkset.Pipeline.races report.S.trace in
    (* Races are expected — and every one is tolerated by design. *)
    Alcotest.(check bool) "some races reported" true
      (Hawkset.Report.count races > 0);
    List.iter
      (fun r ->
        match
          Pmapps.Ground_truth.classify ~bugs:Pmapps.Madfs.bugs
            ~benign:Pmapps.Madfs.benign r
        with
        | Pmapps.Ground_truth.Benign -> ()
        | c ->
            Alcotest.failf "unexpected %a for %a"
              Pmapps.Ground_truth.pp_classification c Hawkset.Report.pp_race r)
      (Hawkset.Report.sorted races)

  let tests =
    [
      Alcotest.test_case "copy-on-write semantics" `Quick cow_semantics;
      Alcotest.test_case "concurrent run: all benign" `Quick
        concurrent_all_benign;
    ]
end

module Pmlog_common = Common (Pmapps.Pmlog)

module Pmlog_tests = struct
  (* The control group: a correct PM program must produce ZERO reports. *)
  let zero_reports () =
    for seed = 0 to 4 do
      let races = races_of (module Pmapps.Pmlog) ~ops:400 ~seed () in
      Alcotest.(check int)
        (Printf.sprintf "no reports at all (seed %d)" seed)
        0 (Hawkset.Report.count races)
    done

  let zero_reports_even_without_irh () =
    let report = Pmapps.Driver.run_kv_ycsb (module Pmapps.Pmlog) ~seed:3 ~ops:400 () in
    Alcotest.(check int) "no reports without IRH either" 0
      (Hawkset.Report.count
         (Hawkset.Pipeline.races ~config:Hawkset.Pipeline.no_irh report.S.trace))

  let nothing_to_observe () =
    (* PMRace-style observation also finds nothing: persists precede
       visibility to other threads. *)
    let report =
      Pmapps.Driver.run_kv_ycsb
        (module Pmapps.Pmlog)
        ~seed:5
        ~policy:(S.Delay_injection { probability = 0.2; duration = 50 })
        ~observe:true ~ops:400 ()
    in
    Alcotest.(check int) "no observations" 0 (List.length report.S.observations)

  let tests =
    [
      Alcotest.test_case "zero reports" `Quick zero_reports;
      Alcotest.test_case "zero reports without IRH" `Quick
        zero_reports_even_without_irh;
      Alcotest.test_case "nothing to observe" `Quick nothing_to_observe;
    ]
    @ Pmlog_common.tests []
end

module Crash_damage_tests = struct
  (* The injected bugs are real: crash images manifest their damage. *)

  let turbo_hash_bitmap_without_entry () =
    (* Fill one bucket past its first cache line, crash before the run
       ends, and look for bug #3's signature in the recovered image: a
       persisted bitmap bit whose entry was lost. *)
    let found = ref false in
    let attempt seed crash_after =
      let heap = Pmem.Heap.create ~size:(64 * 1024 * 1024) () in
      let table = ref 0 in
      let r =
        S.run ~seed ~crash_after_events:crash_after ~heap
          ~sync_config:Pmapps.Turbo_hash.sync_config (fun ctx ->
            let t = Pmapps.Turbo_hash.create ctx in
            table := Pmapps.Turbo_hash.table_addr t;
            let workers =
              List.init 4 (fun w ->
                  S.spawn ctx (fun ctx' ->
                      for k = 1 to 2000 do
                        Pmapps.Turbo_hash.insert t ctx' ~key:((4 * k) + w)
                          ~value:(Int64.of_int k)
                      done))
            in
            List.iter (S.join ctx) workers)
      in
      if r.S.outcome = S.Crashed then begin
        let post = Pmem.Heap.of_image (Pmem.Heap.crash_image heap) in
        ignore
          (S.run ~heap:post ~sync_config:Pmapps.Turbo_hash.sync_config
             (fun ctx ->
               let t = Pmapps.Turbo_hash.recover ctx ~table_addr:!table in
               if Pmapps.Turbo_hash.check_consistency t ctx <> [] then
                 found := true))
      end
    in
    let seed = ref 0 in
    while (not !found) && !seed < 40 do
      attempt !seed (20000 + (7919 * !seed));
      incr seed
    done;
    Alcotest.(check bool) "bug #3 damage manifests in some crash" true !found

  let p_clht_lost_rehash_inserts () =
    (* Bug #4: crash between the root swap and its late persist strands
       post-rehash inserts in the unreachable new table. The runs are
       deterministic in the seed, so a dry run locates the root-swap
       events in the trace and the crash is aimed just after one. *)
    let bug4 = List.hd Pmapps.P_clht.bugs in
    let swap_loc = List.hd bug4.Pmapps.Ground_truth.gt_store_locs in
    let workload ctx t acked =
      let workers =
        List.init 4 (fun w ->
            S.spawn ctx (fun ctx' ->
                for k = 1 to 400 do
                  let key = (4 * k) + w in
                  Pmapps.P_clht.insert t ctx' ~key ~value:(Int64.of_int key);
                  acked := key :: !acked
                done))
      in
      List.iter (S.join ctx) workers
    in
    let found = ref false in
    let seed = ref 0 in
    while (not !found) && !seed < 10 do
      (* Dry run: find the root-swap event indices. *)
      let dry_heap = Pmem.Heap.create ~size:(64 * 1024 * 1024) () in
      let dry =
        S.run ~seed:!seed
          ~policy:(S.Targeted_delay { store_loc = swap_loc; duration = 600 })
          ~sync_config:Pmapps.P_clht.sync_config ~heap:dry_heap (fun ctx ->
            let t = Pmapps.P_clht.create ctx in
            workload ctx t (ref []))
      in
      let swaps = ref [] in
      Trace.Tracebuf.iteri
        (fun i ev ->
          match ev with
          | Trace.Event.Store { site; _ }
            when Trace.Site.location site = swap_loc ->
              swaps := i :: !swaps
          | _ -> ())
        dry.S.trace;
      (* Aim the crash shortly after each swap: the same seed replays the
         same schedule up to the crash point. *)
      List.iter
        (fun swap_idx ->
          List.iter
            (fun k ->
              if not !found then begin
                let heap = Pmem.Heap.create ~size:(64 * 1024 * 1024) () in
                let header = ref 0 in
                let acked = ref [] in
                let r =
                  S.run ~seed:!seed ~crash_after_events:(swap_idx + k)
                    ~policy:
                      (S.Targeted_delay { store_loc = swap_loc; duration = 600 })
                    ~sync_config:Pmapps.P_clht.sync_config ~heap (fun ctx ->
                      let t = Pmapps.P_clht.create ctx in
                      header := Pmapps.P_clht.header_addr t;
                      workload ctx t acked)
                in
                if r.S.outcome = S.Crashed then begin
                  let post = Pmem.Heap.of_image (Pmem.Heap.crash_image heap) in
                  ignore
                    (S.run ~heap:post ~sync_config:Pmapps.P_clht.sync_config
                       (fun ctx ->
                         let t =
                           Pmapps.P_clht.recover ctx ~header_addr:!header
                         in
                         if
                           List.exists
                             (fun key ->
                               Pmapps.P_clht.get t ctx ~key = None)
                             !acked
                         then found := true))
                end
              end)
            [ 20; 60; 150; 400 ])
        !swaps;
      incr seed
    done;
    Alcotest.(check bool) "bug #4 loses acknowledged inserts" true !found

  let memcached_value_lost_key_durable () =
    (* Bug #12's damage: the item's key is persisted at link time but the
       value never is — post-crash the key exists with a zero value. *)
    let found = ref false in
    let attempt seed crash_after =
      let heap = Pmem.Heap.create ~size:(64 * 1024 * 1024) () in
      let acked = ref [] in
      let base = ref 0 in
      let r =
        S.run ~seed ~crash_after_events:crash_after ~heap (fun ctx ->
            let t = Pmapps.Memcached.create ctx in
            (* Peek at the table base through a set+get round trip. *)
            base := 0;
            let workers =
              List.init 4 (fun w ->
                  S.spawn ctx (fun ctx' ->
                      for k = 1 to 200 do
                        let key = (4 * k) + w in
                        Pmapps.Memcached.set t ctx' ~key
                          ~value:(Int64.of_int key);
                        acked := key :: !acked
                      done))
            in
            List.iter (S.join ctx) workers)
      in
      ignore !base;
      if r.S.outcome = S.Crashed then begin
        (* Inspect the raw crash image: find any acked key whose adjacent
           value word is zero (item layout: key at +0, value at +8; keys
           are persisted, values never are — bug #12). *)
        let img = Pmem.Heap.crash_image heap in
        let words = Bytes.length img / 8 in
        let keys = List.sort_uniq compare !acked in
        let rec scan w =
          if w >= words - 1 then ()
          else begin
            let k = Bytes.get_int64_le img (8 * w) in
            let v = Bytes.get_int64_le img (8 * (w + 1)) in
            if
              Int64.to_int k > 0
              && List.mem (Int64.to_int k) keys
              && Int64.equal v 0L
            then found := true
            else scan (w + 1)
          end
        in
        scan 8
      end
    in
    let seed = ref 0 in
    while (not !found) && !seed < 20 do
      attempt !seed (4000 + (1777 * !seed));
      incr seed
    done;
    Alcotest.(check bool) "bug #12 damage: durable key, lost value" true !found

  let p_art_observed_key_vanishes () =
    (* Bug #8's damage, Definition-1 style: the add_child slot store is
       visible immediately but persists only after the critical section.
       Drive the exact scenario: two setup keys put a N4 node at the
       bottom level; the writer adds a third key there and is adversarially
       descheduled between the slot store and its deferred persist; the
       reader observes the key (the side effect) and the machine crashes
       while the window is still open. After recovery the observed key is
       gone. *)
    let found = ref false in
    let bug8 = List.hd Pmapps.P_art.bugs in
    let n4_store_loc = List.hd bug8.Pmapps.Ground_truth.gt_store_locs in
    let attempt seed =
      let heap = Pmem.Heap.create ~size:(64 * 1024 * 1024) () in
      let meta = ref 0 in
      let observed = ref false in
      let r =
        S.run ~seed ~crash_after_events:1500
          ~policy:(S.Targeted_delay { store_loc = n4_store_loc; duration = 100_000 })
          ~sync_config:Pmapps.P_art.sync_config ~heap (fun ctx ->
            let t = Pmapps.P_art.create ctx in
            meta := Pmapps.P_art.meta_addr t;
            (* Keys 1 and 2 share all bytes but the last: their chain ends
               in a bottom-level N4 where key 3 will be added. *)
            Pmapps.P_art.insert t ctx ~key:1 ~value:1L;
            Pmapps.P_art.insert t ctx ~key:2 ~value:2L;
            let writer =
              S.spawn ctx (fun ctx' ->
                  Pmapps.P_art.insert t ctx' ~key:3 ~value:3L)
            in
            let reader =
              S.spawn ctx (fun ctx' ->
                  (* Poll until the key is visible, then keep consuming
                     events until the power cut. *)
                  for _ = 1 to 2000 do
                    if Pmapps.P_art.get t ctx' ~key:3 <> None then
                      observed := true
                  done)
            in
            S.join ctx writer;
            S.join ctx reader)
      in
      if r.S.outcome = S.Crashed && !observed then begin
        let post = Pmem.Heap.of_image (Pmem.Heap.crash_image heap) in
        ignore
          (S.run ~heap:post ~sync_config:Pmapps.P_art.sync_config (fun ctx ->
               let t = Pmapps.P_art.recover_at ctx ~meta_addr:!meta in
               Alcotest.(check (option int64)) "setup keys durable" (Some 1L)
                 (Pmapps.P_art.get t ctx ~key:1);
               if Pmapps.P_art.get t ctx ~key:3 = None then found := true))
      end
    in
    let seed = ref 0 in
    while (not !found) && !seed < 20 do
      attempt !seed;
      incr seed
    done;
    Alcotest.(check bool) "bug #8: an observed key vanishes" true !found

  let wipe_stranded_puts () =
    (* Bug #18's §5.1 description: after an expansion whose pointer swap
       never persists, later (durable!) puts into the new buffer are lost
       when a crash reverts the pointer. *)
    let found = ref false in
    let attempt seed crash_after =
      let heap = Pmem.Heap.create ~size:(64 * 1024 * 1024) () in
      let root = ref 0 in
      let acked = ref [] in
      let r =
        S.run ~seed ~crash_after_events:crash_after ~heap (fun ctx ->
            let t = Pmapps.Wipe.create ctx in
            root := Pmapps.Wipe.root_addr t;
            let workers =
              List.init 4 (fun w ->
                  S.spawn ctx (fun ctx' ->
                      for k = 1 to 600 do
                        Pmapps.Wipe.insert t ctx' ~key:((4 * k) + w)
                          ~value:(Int64.of_int k);
                        acked := ((4 * k) + w) :: !acked
                      done))
            in
            List.iter (S.join ctx) workers)
      in
      if r.S.outcome = S.Crashed then begin
        let post = Pmem.Heap.of_image (Pmem.Heap.crash_image heap) in
        ignore
          (S.run ~heap:post (fun ctx ->
               let t = Pmapps.Wipe.recover ctx ~root_addr:!root in
               if
                 List.exists
                   (fun k -> Pmapps.Wipe.get t ctx ~key:k = None)
                   !acked
               then found := true))
      end
    in
    let seed = ref 0 in
    while (not !found) && !seed < 30 do
      attempt !seed (30000 + (4021 * !seed));
      incr seed
    done;
    Alcotest.(check bool) "bug #18 strands acknowledged puts" true !found

  let eadr_prevents_fast_fair_loss () =
    (* Under eADR the same crash points lose nothing: the bug class is an
       artifact of the volatile cache (§2.1). *)
    for seed = 0 to 5 do
      let heap = Pmem.Heap.create ~eadr:true ~size:(16 * 1024 * 1024) () in
      let meta = ref 0 in
      let acked = ref [] in
      let r =
        S.run ~seed ~crash_after_events:(4000 + (997 * seed)) ~heap (fun ctx ->
            let t = Pmapps.Fast_fair.create ctx in
            meta := Pmapps.Fast_fair.meta_addr t;
            let workers =
              List.init 2 (fun w ->
                  S.spawn ctx (fun ctx' ->
                      for k = 1 to 150 do
                        let key = (2 * k) + w in
                        Pmapps.Fast_fair.insert t ctx' ~key ~value:1L;
                        acked := key :: !acked
                      done))
            in
            List.iter (S.join ctx) workers)
      in
      if r.S.outcome = S.Crashed then begin
        let post = Pmem.Heap.of_image (Pmem.Heap.crash_image heap) in
        ignore
          (S.run ~heap:post (fun ctx ->
               let t = Pmapps.Fast_fair.recover ctx ~meta_addr:!meta in
               let keys = Pmapps.Fast_fair.keys t ctx in
               List.iter
                 (fun k ->
                   Alcotest.(check bool)
                     (Printf.sprintf "key %d survives under eADR (seed %d)" k
                        seed)
                     true (List.mem k keys))
                 !acked))
      end
    done

  let tests =
    [
      Alcotest.test_case "turbo-hash crash damage" `Slow
        turbo_hash_bitmap_without_entry;
      Alcotest.test_case "p-clht lost rehash inserts" `Slow
        p_clht_lost_rehash_inserts;
      Alcotest.test_case "memcached durable key, lost value" `Slow
        memcached_value_lost_key_durable;
      Alcotest.test_case "p-art observed key vanishes" `Slow
        p_art_observed_key_vanishes;
      Alcotest.test_case "wipe stranded puts" `Slow wipe_stranded_puts;
      Alcotest.test_case "eADR prevents the loss" `Slow
        eadr_prevents_fast_fair_loss;
    ]
end

let () =
  Alcotest.run "apps"
    [
      ("fast_fair", Fast_fair_tests.tests);
      ("p_clht", P_clht_tests.tests);
      ("turbo_hash", Turbo_hash_tests.tests);
      ("p_masstree", P_masstree_tests.tests);
      ("p_art", P_art_tests.tests);
      ("wipe", Wipe_tests.tests);
      ("apex", Apex_tests.tests);
      ("memcached", Memcached_tests.tests);
      ("madfs", Madfs_tests.tests);
      ("pmlog", Pmlog_tests.tests);
      ("crash_damage", Crash_damage_tests.tests);
      ("region_scan", Region_and_scan_tests.tests);
      ("recovery", Recovery_tests.tests);
    ]
