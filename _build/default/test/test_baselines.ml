(* Tests for the baseline detectors: Eraser (traditional lockset) and the
   PMRace-style observation-based fuzzer. *)

module S = Machine.Sched

let lid = Trace.Lock_id.of_int
let tid = Trace.Tid.of_int
let site line = Trace.Site.v "b.ml" line

let store ?(t = 1) ~line addr =
  Trace.Event.Store
    { tid = tid t; addr; size = 8; site = site line; non_temporal = false }

let load ?(t = 2) ~line addr =
  Trace.Event.Load { tid = tid t; addr; size = 8; site = site line }

let persist ?(t = 1) addr =
  [
    Trace.Event.Flush
      { tid = tid t; line = Pmem.Layout.line_of addr; kind = Trace.Event.Clwb;
        site = site 0 };
    Trace.Event.Fence { tid = tid t; site = site 0 };
  ]

let acq ?(t = 1) l =
  Trace.Event.Lock_acquire { tid = tid t; lock = lid l; site = site 0 }

let rel ?(t = 1) l =
  Trace.Event.Lock_release { tid = tid t; lock = lid l; site = site 0 }

module Eraser_tests = struct
  let catches_plain_race () =
    let t =
      Trace.Tracebuf.of_list [ store ~t:1 ~line:1 128; load ~t:2 ~line:2 128 ]
    in
    Alcotest.(check int) "unprotected pair reported" 1
      (Hawkset.Report.count (Baselines.Eraser.analyse t))

  let blind_to_figure_1c () =
    (* Same lock on both sides, persist outside the critical section:
       HawkSet reports, Eraser cannot. *)
    let evs =
      [ acq ~t:1 7; store ~t:1 ~line:1 128; rel ~t:1 7 ]
      @ [ acq ~t:2 7; load ~t:2 ~line:2 128; rel ~t:2 7 ]
      @ persist ~t:1 128
    in
    let t = Trace.Tracebuf.of_list evs in
    Alcotest.(check int) "eraser silent" 0
      (Hawkset.Report.count (Baselines.Eraser.analyse t));
    Alcotest.(check int) "hawkset reports" 1
      (Hawkset.Report.count
         (Hawkset.Pipeline.races ~config:Hawkset.Pipeline.no_irh t))

  let respects_locks () =
    let evs =
      [ acq ~t:1 7; store ~t:1 ~line:1 128; rel ~t:1 7; acq ~t:2 7;
        load ~t:2 ~line:2 128; rel ~t:2 7 ]
    in
    Alcotest.(check int) "protected pair not reported" 0
      (Hawkset.Report.count (Baselines.Eraser.analyse (Trace.Tracebuf.of_list evs)))

  let hb_variant () =
    (* An overwritten init store (kept by the IRH, closed before the
       thread creation) ordered before the child's load: silent with the
       happens-before filter, a false positive without it (the original
       Eraser had none). The final store is persisted pre-publication so
       the IRH prunes it. *)
    let evs =
      [ store ~t:1 ~line:1 128; store ~t:1 ~line:3 128 ]
      @ persist ~t:1 128
      @ [ Trace.Event.Thread_create { parent = tid 1; child = tid 2 };
          load ~t:2 ~line:2 128 ]
    in
    let t = Trace.Tracebuf.of_list evs in
    Alcotest.(check int) "with HB: silent" 0
      (Hawkset.Report.count (Baselines.Eraser.analyse t));
    Alcotest.(check int) "without HB: FP" 1
      (Hawkset.Report.count (Baselines.Eraser.analyse_no_hb t))

  let tests =
    [
      Alcotest.test_case "catches plain race" `Quick catches_plain_race;
      Alcotest.test_case "blind to figure 1c" `Quick blind_to_figure_1c;
      Alcotest.test_case "respects locks" `Quick respects_locks;
      Alcotest.test_case "happens-before variant" `Quick hb_variant;
    ]
end

module Pmrace_tests = struct
  (* A deliberately racy micro-app: writer publishes unpersisted data the
     reader polls (lock-free). *)
  let run ~per_thread:_ ~seed ~policy ~observe =
    let heap = Pmem.Heap.create ~size:(1 lsl 16) () in
    S.run ~seed ~policy ~observe ~heap (fun ctx ->
        let a = S.alloc ctx 8 in
        let w =
          S.spawn ctx (fun ctx ->
              for i = 1 to 20 do
                S.store_i64 ctx __POS__ a (Int64.of_int i);
                S.persist ctx __POS__ a 8
              done)
        in
        let r =
          S.spawn ctx (fun ctx ->
              for _ = 1 to 20 do
                ignore (S.load_i64 ctx __POS__ a)
              done)
        in
        S.join ctx w;
        S.join ctx r)

  let observes_with_enough_executions () =
    let seed_workload =
      (Workload.Seeds.corpus ~count:1 ~ops_per_seed:10 ()).(0)
    in
    let report =
      Baselines.Pmrace.fuzz ~run ~seed_workload ~executions:30
        ~delay_probability:0.2 ~delay_duration:50 ()
    in
    Alcotest.(check int) "all executions ran" 30
      report.Baselines.Pmrace.executions;
    Alcotest.(check bool) "observed the race" true
      (report.Baselines.Pmrace.observations <> []);
    Alcotest.(check bool) "time measured" true
      (report.Baselines.Pmrace.seconds > 0.0)

  let observed_matcher () =
    let seed_workload = (Workload.Seeds.corpus ~count:1 ~ops_per_seed:10 ()).(0) in
    let report =
      Baselines.Pmrace.fuzz ~run ~seed_workload ~executions:30
        ~delay_probability:0.2 ~delay_duration:50 ()
    in
    match report.Baselines.Pmrace.observations with
    | [] -> Alcotest.fail "expected observations"
    | o :: _ ->
        let store_loc = Trace.Site.location o.S.obs_store_site in
        let load_loc = Trace.Site.location o.S.obs_load_site in
        Alcotest.(check bool) "matcher finds it" true
          (Baselines.Pmrace.observed report ~store_locs:[ store_loc ]
             ~load_locs:[ load_loc ]);
        Alcotest.(check bool) "matcher rejects others" false
          (Baselines.Pmrace.observed report ~store_locs:[ "nowhere:1" ]
             ~load_locs:[ load_loc ])

  let needs_direct_observation () =
    (* A correct program: no observations regardless of effort. *)
    let quiet ~per_thread:_ ~seed ~policy ~observe =
      let heap = Pmem.Heap.create ~size:(1 lsl 16) () in
      S.run ~seed ~policy ~observe ~heap (fun ctx ->
          let a = S.alloc ctx 8 in
          S.store_i64 ctx __POS__ a 1L;
          S.persist ctx __POS__ a 8;
          let r = S.spawn ctx (fun ctx -> ignore (S.load_i64 ctx __POS__ a)) in
          S.join ctx r)
    in
    let seed_workload = (Workload.Seeds.corpus ~count:1 ~ops_per_seed:5 ()).(0) in
    let report =
      Baselines.Pmrace.fuzz ~run:quiet ~seed_workload ~executions:10 ()
    in
    Alcotest.(check (list reject)) "no observations" []
      (List.map (fun _ -> ()) report.Baselines.Pmrace.observations)

  let tests =
    [
      Alcotest.test_case "observes with enough executions" `Quick
        observes_with_enough_executions;
      Alcotest.test_case "observed matcher" `Quick observed_matcher;
      Alcotest.test_case "correct program stays quiet" `Quick
        needs_direct_observation;
    ]
end

module Durinn_tests = struct
  let fast_fair_serial () = 
    let heap = Pmem.Heap.create ~size:(32 * 1024 * 1024) () in
    let seed_ops = (Workload.Seeds.corpus ~count:1 ~ops_per_seed:300 ()).(0) in
    S.run ~seed:0 ~heap (fun ctx ->
        let t = Pmapps.Fast_fair.create ctx in
        List.iter
          (fun op ->
            match op with
            | Workload.Op.Insert (key, value) | Workload.Op.Update (key, value)
              ->
                Pmapps.Fast_fair.insert t ctx ~key ~value
            | Workload.Op.Get key -> ignore (Pmapps.Fast_fair.get t ctx ~key)
            | Workload.Op.Delete key -> Pmapps.Fast_fair.delete t ctx ~key)
          seed_ops)

  let candidates_from_serial_trace () =
    let r = fast_fair_serial () in
    let cands = Baselines.Durinn.candidates_of_trace r.S.trace in
    (* The racy sibling-pointer store must be among the candidates. *)
    let bug1 = List.hd Pmapps.Fast_fair.bugs in
    Alcotest.(check bool) "bug #1's store site is a candidate" true
      (List.exists
         (fun c ->
           List.mem c.Baselines.Durinn.cand_store_loc
             bug1.Pmapps.Ground_truth.gt_store_locs)
         cands);
    Alcotest.(check bool) "several candidates" true (List.length cands >= 3)

  let targeted_phase_confirms () =
    let seed_ops = (Workload.Seeds.corpus ~count:1 ~ops_per_seed:300 ()).(0) in
    let per_thread = Workload.Seeds.split ~threads:8 seed_ops in
    let report =
      Baselines.Durinn.run
        ~serial_run:(fun () -> fast_fair_serial ())
        ~concurrent_run:(fun ~policy ~seed ->
          Pmapps.Driver.run_kv
            (module Pmapps.Fast_fair)
            ~seed ~policy ~observe:true ~load:[] ~per_thread ())
        ~attempts_per_candidate:8 ~delay:150 ()
    in
    Alcotest.(check bool) "executions bounded" true
      (report.Baselines.Durinn.executions
      <= 8 * List.length report.Baselines.Durinn.candidates);
    (* The targeted search should confirm bug #1 (the targeted delay sits
       exactly on its store). *)
    let bug1 = List.hd Pmapps.Fast_fair.bugs in
    Alcotest.(check bool) "bug #1 confirmed" true
      (Baselines.Durinn.observed_pair report
         ~store_locs:bug1.Pmapps.Ground_truth.gt_store_locs
         ~load_locs:bug1.Pmapps.Ground_truth.gt_load_locs)

  let tests =
    [
      Alcotest.test_case "candidate extraction" `Quick
        candidates_from_serial_trace;
      Alcotest.test_case "targeted phase confirms" `Slow targeted_phase_confirms;
    ]
end

let () =
  Alcotest.run "baselines"
    [
      ("eraser", Eraser_tests.tests);
      ("pmrace", Pmrace_tests.tests);
      ("durinn", Durinn_tests.tests);
    ]
