(* Tests for the instrumented runtime: determinism, event emission,
   scheduling, blocking primitives, crash budgets and observation mode. *)

module S = Machine.Sched

let run ?seed ?policy ?sync_config ?crash_after_events ?observe ?(size = 1 lsl 16)
    main =
  let heap = Pmem.Heap.create ~size () in
  let report =
    S.run ?seed ?policy ?sync_config ?crash_after_events ?observe ~heap main
  in
  (heap, report)

module Basic = struct
  let single_thread_events () =
    let _, r =
      run (fun ctx ->
          let a = S.alloc ctx 8 in
          S.store_i64 ctx __POS__ a 1L;
          S.persist ctx __POS__ a 8;
          ignore (S.load_i64 ctx __POS__ a))
    in
    let st = Trace.Tracebuf.stats r.S.trace in
    Alcotest.(check int) "stores" 1 st.Trace.Tracebuf.stores;
    Alcotest.(check int) "loads" 1 st.Trace.Tracebuf.loads;
    Alcotest.(check int) "flushes" 1 st.Trace.Tracebuf.flushes;
    Alcotest.(check int) "fences" 1 st.Trace.Tracebuf.fences;
    Alcotest.(check bool) "completed" true (r.S.outcome = S.Completed)

  let store_visible_and_persistable () =
    let heap, _ =
      run (fun ctx ->
          let a = S.alloc ctx 8 in
          Alcotest.(check int) "first alloc" 64 a;
          S.store_i64 ctx __POS__ a 77L;
          Alcotest.(check int64) "visible" 77L (S.load_i64 ctx __POS__ a);
          S.persist ctx __POS__ a 8)
    in
    Alcotest.(check int64) "persisted" 77L
      (Bytes.get_int64_le (Pmem.Heap.crash_image heap) 64)

  let spawn_join_order () =
    let order = ref [] in
    let _, r =
      run (fun ctx ->
          let a = S.alloc ctx 8 in
          let child =
            S.spawn ctx (fun ctx' ->
                S.store_i64 ctx' __POS__ a 1L;
                order := "child" :: !order)
          in
          S.join ctx child;
          order := "parent" :: !order)
    in
    Alcotest.(check (list string)) "join ordered after child" [ "parent"; "child" ]
      !order;
    Alcotest.(check int) "two threads" 2 r.S.thread_count;
    (* Trace contains create and join markers. *)
    let st = Trace.Tracebuf.stats r.S.trace in
    Alcotest.(check int) "thread ops" 2 st.Trace.Tracebuf.thread_ops

  let many_threads () =
    let counter = ref 0 in
    let _, r =
      run (fun ctx ->
          let a = S.alloc ctx 8 in
          let children =
            List.init 8 (fun i ->
                S.spawn ctx (fun ctx' ->
                    S.store_i64 ctx' __POS__ (a + (8 * 0)) (Int64.of_int i);
                    incr counter))
          in
          List.iter (S.join ctx) children)
    in
    Alcotest.(check int) "all ran" 8 !counter;
    Alcotest.(check int) "thread count" 9 r.S.thread_count

  let determinism () =
    let trace_of seed =
      let _, r =
        run ~seed (fun ctx ->
            let a = S.alloc ctx 64 in
            let children =
              List.init 4 (fun i ->
                  S.spawn ctx (fun ctx' ->
                      for k = 0 to 20 do
                        S.store_i64 ctx' __POS__ (a + (8 * i)) (Int64.of_int k);
                        ignore (S.load_i64 ctx' __POS__ (a + (8 * ((i + 1) mod 4))))
                      done))
            in
            List.iter (S.join ctx) children)
      in
      List.map (Format.asprintf "%a" Trace.Event.pp)
        (Trace.Tracebuf.to_list r.S.trace)
    in
    Alcotest.(check bool) "same seed, same trace" true
      (trace_of 42 = trace_of 42);
    Alcotest.(check bool) "different seeds diverge" true
      (trace_of 42 <> trace_of 43)

  let exception_propagates () =
    Alcotest.check_raises "child exception surfaces" (Failure "boom") (fun () ->
        ignore
          (run (fun ctx ->
               let child = S.spawn ctx (fun _ -> failwith "boom") in
               S.join ctx child)))

  let with_frame_in_sites () =
    let _, r =
      run (fun ctx ->
          let a = S.alloc ctx 8 in
          S.with_frame ctx "writer" (fun () -> S.store_i64 ctx __POS__ a 1L))
    in
    let found =
      Trace.Tracebuf.fold
        (fun acc ev ->
          match ev with
          | Trace.Event.Store { site; _ } -> site.Trace.Site.frames
          | _ -> acc)
        [] r.S.trace
    in
    Alcotest.(check (list string)) "frame recorded" [ "writer" ] found

  let tests =
    [
      Alcotest.test_case "single thread events" `Quick single_thread_events;
      Alcotest.test_case "store visible and persistable" `Quick
        store_visible_and_persistable;
      Alcotest.test_case "spawn/join order" `Quick spawn_join_order;
      Alcotest.test_case "many threads" `Quick many_threads;
      Alcotest.test_case "determinism" `Quick determinism;
      Alcotest.test_case "exception propagates" `Quick exception_propagates;
      Alcotest.test_case "with_frame" `Quick with_frame_in_sites;
    ]
end

module Locks = struct
  let mutex_mutual_exclusion () =
    (* A counter incremented read-modify-write under a mutex must not lose
       updates under any interleaving. *)
    for seed = 0 to 9 do
      let heap, _ =
        run ~seed (fun ctx ->
            let a = S.alloc ctx 8 in
            let m = Machine.Mutex.create ctx in
            let children =
              List.init 4 (fun _ ->
                  S.spawn ctx (fun ctx' ->
                      for _ = 1 to 25 do
                        Machine.Mutex.with_lock m ctx' __POS__ (fun () ->
                            let v = S.load_i64 ctx' __POS__ a in
                            S.store_i64 ctx' __POS__ a (Int64.add v 1L))
                      done))
            in
            List.iter (S.join ctx) children)
      in
      Alcotest.(check int64)
        (Printf.sprintf "no lost updates (seed %d)" seed)
        100L (Pmem.Heap.read_i64 heap 64)
    done

  let mutex_events () =
    let _, r =
      run (fun ctx ->
          let m = Machine.Mutex.create ctx in
          Machine.Mutex.lock m ctx __POS__;
          Machine.Mutex.unlock m ctx __POS__)
    in
    let st = Trace.Tracebuf.stats r.S.trace in
    Alcotest.(check int) "acquire+release" 2 st.Trace.Tracebuf.lock_ops

  let mutex_errors () =
    ignore
      (run (fun ctx ->
           let m = Machine.Mutex.create ctx in
           Machine.Mutex.lock m ctx __POS__;
           (try
              Machine.Mutex.lock m ctx __POS__;
              Alcotest.fail "expected relock failure"
            with Failure _ -> ());
           Machine.Mutex.unlock m ctx __POS__;
           try
             Machine.Mutex.unlock m ctx __POS__;
             Alcotest.fail "expected unlock failure"
           with Failure _ -> ()))

  let try_lock () =
    ignore
      (run (fun ctx ->
           let m = Machine.Mutex.create ctx in
           Alcotest.(check bool) "free: taken" true
             (Machine.Mutex.try_lock m ctx __POS__);
           Alcotest.(check bool) "held: refused" false
             (Machine.Mutex.try_lock m ctx __POS__);
           Machine.Mutex.unlock m ctx __POS__))

  let rwlock_readers_share_writer_excludes () =
    for seed = 0 to 4 do
      let heap, _ =
        run ~seed (fun ctx ->
            let a = S.alloc ctx 8 in
            let rw = Machine.Rwlock.create ctx in
            let writers =
              List.init 2 (fun _ ->
                  S.spawn ctx (fun ctx' ->
                      for _ = 1 to 20 do
                        Machine.Rwlock.with_write rw ctx' __POS__ (fun () ->
                            let v = S.load_i64 ctx' __POS__ a in
                            S.store_i64 ctx' __POS__ a (Int64.add v 1L))
                      done))
            in
            let readers =
              List.init 2 (fun _ ->
                  S.spawn ctx (fun ctx' ->
                      for _ = 1 to 20 do
                        Machine.Rwlock.with_read rw ctx' __POS__ (fun () ->
                            ignore (S.load_i64 ctx' __POS__ a))
                      done))
            in
            List.iter (S.join ctx) (writers @ readers))
      in
      Alcotest.(check int64)
        (Printf.sprintf "writer exclusion (seed %d)" seed)
        40L (Pmem.Heap.read_i64 heap 64)
    done

  let spinlock_uninstrumented_is_silent () =
    let _, r =
      run (fun ctx ->
          let sl = Machine.Spinlock.create ~primitive:"my_custom_lock" ctx in
          Machine.Spinlock.with_lock sl ctx __POS__ (fun () -> ()))
    in
    let st = Trace.Tracebuf.stats r.S.trace in
    Alcotest.(check int) "no lock events without config" 0
      st.Trace.Tracebuf.lock_ops

  let spinlock_instrumented_with_config () =
    let cfg = Machine.Sync_config.register Machine.Sync_config.builtin
        "my_custom_lock"
    in
    let _, r =
      run ~sync_config:cfg (fun ctx ->
          let sl = Machine.Spinlock.create ~primitive:"my_custom_lock" ctx in
          Machine.Spinlock.with_lock sl ctx __POS__ (fun () -> ()))
    in
    let st = Trace.Tracebuf.stats r.S.trace in
    Alcotest.(check int) "lock events with config" 2 st.Trace.Tracebuf.lock_ops

  let spinlock_mutual_exclusion () =
    let heap, _ =
      run ~seed:3 (fun ctx ->
          let a = S.alloc ctx 8 in
          let sl = Machine.Spinlock.create ~primitive:"spin" ctx in
          let children =
            List.init 4 (fun _ ->
                S.spawn ctx (fun ctx' ->
                    for _ = 1 to 25 do
                      Machine.Spinlock.with_lock sl ctx' __POS__ (fun () ->
                          let v = S.load_i64 ctx' __POS__ a in
                          S.store_i64 ctx' __POS__ a (Int64.add v 1L))
                    done))
          in
          List.iter (S.join ctx) children)
    in
    Alcotest.(check int64) "no lost updates" 100L (Pmem.Heap.read_i64 heap 64)

  let tests =
    [
      Alcotest.test_case "mutex mutual exclusion" `Quick mutex_mutual_exclusion;
      Alcotest.test_case "mutex events" `Quick mutex_events;
      Alcotest.test_case "mutex misuse errors" `Quick mutex_errors;
      Alcotest.test_case "try_lock" `Quick try_lock;
      Alcotest.test_case "rwlock semantics" `Quick
        rwlock_readers_share_writer_excludes;
      Alcotest.test_case "uninstrumented spinlock is silent" `Quick
        spinlock_uninstrumented_is_silent;
      Alcotest.test_case "configured spinlock is instrumented" `Quick
        spinlock_instrumented_with_config;
      Alcotest.test_case "spinlock mutual exclusion" `Quick
        spinlock_mutual_exclusion;
    ]
end

module Sync_config_tests = struct
  let parse () =
    let cfg =
      Machine.Sync_config.of_string
        "# custom primitives\nlock my_spin\ntrylock my_try 1\n\n"
    in
    Alcotest.(check bool) "my_spin" true
      (Machine.Sync_config.is_instrumented cfg "my_spin");
    Alcotest.(check (option int)) "my_try success" (Some 1)
      (Machine.Sync_config.trylock_success cfg "my_try");
    Alcotest.(check bool) "builtin kept" true
      (Machine.Sync_config.is_instrumented cfg "pthread_mutex")

  let parse_errors () =
    (try
       ignore (Machine.Sync_config.of_string "lock");
       Alcotest.fail "expected failure"
     with Failure _ -> ());
    try
      ignore (Machine.Sync_config.of_string "trylock x notanint");
      Alcotest.fail "expected failure"
    with Failure _ -> ()

  let tests =
    [
      Alcotest.test_case "parse" `Quick parse;
      Alcotest.test_case "parse errors" `Quick parse_errors;
    ]
end

module Crash = struct
  let crash_budget_stops_execution () =
    let _, r =
      run ~crash_after_events:10 (fun ctx ->
          let a = S.alloc ctx 8 in
          for i = 1 to 1000 do
            S.store_i64 ctx __POS__ a (Int64.of_int i)
          done)
    in
    Alcotest.(check bool) "crashed" true (r.S.outcome = S.Crashed);
    Alcotest.(check bool) "stopped early" true (r.S.event_count <= 11)

  let crash_drops_unpersisted () =
    let heap, r =
      run ~crash_after_events:1 (fun ctx ->
          let a = S.alloc ctx 8 in
          S.store_i64 ctx __POS__ a 5L;
          (* budget exhausted here: the persist below never runs *)
          S.persist ctx __POS__ a 8)
    in
    Alcotest.(check bool) "crashed" true (r.S.outcome = S.Crashed);
    Alcotest.(check int64) "store lost" 0L
      (Bytes.get_int64_le (Pmem.Heap.crash_image heap) 64)

  let crash_with_parked_threads_is_not_deadlock () =
    let _, r =
      run ~crash_after_events:5 (fun ctx ->
          let m = Machine.Mutex.create ctx in
          let a = S.alloc ctx 8 in
          Machine.Mutex.lock m ctx __POS__;
          let child =
            S.spawn ctx (fun ctx' ->
                Machine.Mutex.lock m ctx' __POS__;
                Machine.Mutex.unlock m ctx' __POS__)
          in
          for i = 1 to 100 do
            S.store_i64 ctx __POS__ a (Int64.of_int i)
          done;
          Machine.Mutex.unlock m ctx __POS__;
          S.join ctx child)
    in
    Alcotest.(check bool) "crashed cleanly" true (r.S.outcome = S.Crashed)

  let tests =
    [
      Alcotest.test_case "crash budget" `Quick crash_budget_stops_execution;
      Alcotest.test_case "crash drops unpersisted" `Quick
        crash_drops_unpersisted;
      Alcotest.test_case "crash with parked threads" `Quick
        crash_with_parked_threads_is_not_deadlock;
    ]
end

module Observation = struct
  let observes_unpersisted_cross_thread_load () =
    let found = ref false in
    (* Retry across seeds: observation requires the racy interleaving. *)
    let seed = ref 0 in
    while (not !found) && !seed < 50 do
      let _, r =
        run ~seed:!seed ~observe:true (fun ctx ->
            let a = S.alloc ctx 8 in
            let child =
              S.spawn ctx (fun ctx' -> ignore (S.load_i64 ctx' __POS__ a))
            in
            S.store_i64 ctx __POS__ a 1L;
            S.persist ctx __POS__ a 8;
            S.join ctx child)
      in
      if r.S.observations <> [] then found := true;
      incr seed
    done;
    Alcotest.(check bool) "observed in some execution" true !found

  let no_observation_when_persisted_first () =
    for seed = 0 to 19 do
      let _, r =
        run ~seed ~observe:true (fun ctx ->
            let a = S.alloc ctx 8 in
            S.store_i64 ctx __POS__ a 1L;
            S.persist ctx __POS__ a 8;
            let child =
              S.spawn ctx (fun ctx' -> ignore (S.load_i64 ctx' __POS__ a))
            in
            S.join ctx child)
      in
      Alcotest.(check int)
        (Printf.sprintf "seed %d" seed)
        0
        (List.length r.S.observations)
    done

  let cas_observed_as_store () =
    let _, r =
      run (fun ctx ->
          let a = S.alloc ctx 8 in
          Alcotest.(check bool) "cas succeeds" true
            (S.cas_i64 ctx __POS__ a ~expected:0L ~desired:9L);
          Alcotest.(check bool) "cas fails" false
            (S.cas_i64 ctx __POS__ a ~expected:0L ~desired:10L);
          Alcotest.(check int64) "value" 9L (S.load_i64 ctx __POS__ a))
    in
    let st = Trace.Tracebuf.stats r.S.trace in
    Alcotest.(check int) "stores: only successful cas" 1 st.Trace.Tracebuf.stores;
    Alcotest.(check int) "loads: both cas + final" 3 st.Trace.Tracebuf.loads

  let tests =
    [
      Alcotest.test_case "observes unpersisted cross-thread load" `Quick
        observes_unpersisted_cross_thread_load;
      Alcotest.test_case "no observation when persisted first" `Quick
        no_observation_when_persisted_first;
      Alcotest.test_case "cas semantics" `Quick cas_observed_as_store;
    ]
end

module Scripted_tests = struct
  (* The Figure 1c program: writer stores under lock, persists after
     unlocking; reader loads under the same lock. *)
  let fig1c_program ctx =
    let a = S.alloc ctx 8 in
    let lock = Machine.Mutex.create ctx in
    let w =
      S.spawn ctx (fun ctx ->
          Machine.Mutex.lock lock ctx __POS__;
          S.store_i64 ctx __POS__ a 1L;
          Machine.Mutex.unlock lock ctx __POS__;
          S.persist ctx __POS__ a 8)
    in
    let r =
      S.spawn ctx (fun ctx ->
          Machine.Mutex.lock lock ctx __POS__;
          ignore (S.load_i64 ctx __POS__ a);
          Machine.Mutex.unlock lock ctx __POS__)
    in
    S.join ctx w;
    S.join ctx r

  let run_script script =
    let heap = Pmem.Heap.create ~size:(1 lsl 12) () in
    S.run ~policy:(S.Scripted script) ~observe:true ~heap fig1c_program

  let replay_deterministic () =
    let script = Array.init 40 (fun i -> i * 7) in
    let t r =
      List.map (Format.asprintf "%a" Trace.Event.pp)
        (Trace.Tracebuf.to_list r.S.trace)
    in
    Alcotest.(check bool) "same script, same trace" true
      (t (run_script script) = t (run_script script))

  let witness_interleaving_exists () =
    (* HawkSet reports the Fig. 1c race from ANY schedule; enumerating
       scripted schedules exhibits a concrete witness in which the load
       really does read the visible-but-not-durable value — the report is
       not hypothetical. *)
    let witness = ref false in
    let no_witness = ref false in
    (* Systematic enumeration of depth-8 ternary choice prefixes (the
       rest defaults to the first runnable thread). *)
    let script = Array.make 8 0 in
    let rec enumerate d =
      if d = 8 then begin
        let r = run_script (Array.copy script) in
        if r.S.observations <> [] then witness := true else no_witness := true
      end
      else
        for c = 0 to 2 do
          script.(d) <- c;
          if not (!witness && !no_witness) then enumerate (d + 1)
        done
    in
    enumerate 0;
    Alcotest.(check bool) "a witness schedule exists" true !witness;
    Alcotest.(check bool) "and a benign schedule exists" true !no_witness

  let tests =
    [
      Alcotest.test_case "scripted replay is deterministic" `Quick
        replay_deterministic;
      Alcotest.test_case "witness interleaving for figure 1c" `Quick
        witness_interleaving_exists;
    ]
end

module Prng_tests = struct
  let determinism () =
    let a = Machine.Prng.create 1 and b = Machine.Prng.create 1 in
    let xs = List.init 100 (fun _ -> Machine.Prng.next_int64 a) in
    let ys = List.init 100 (fun _ -> Machine.Prng.next_int64 b) in
    Alcotest.(check bool) "same stream" true (xs = ys)

  let bounds =
    QCheck.Test.make ~name:"Prng.int respects bounds" ~count:500
      QCheck.(pair small_int (int_range 1 1000))
      (fun (seed, bound) ->
        let p = Machine.Prng.create seed in
        let v = Machine.Prng.int p bound in
        v >= 0 && v < bound)

  let float_bounds =
    QCheck.Test.make ~name:"Prng.float respects bounds" ~count:500
      QCheck.small_int
      (fun seed ->
        let p = Machine.Prng.create seed in
        let v = Machine.Prng.float p 1.0 in
        v >= 0.0 && v < 1.0)

  let tests =
    [
      Alcotest.test_case "determinism" `Quick determinism;
      QCheck_alcotest.to_alcotest bounds;
      QCheck_alcotest.to_alcotest float_bounds;
    ]
end

module Policies = struct
  let round_robin_deterministic () =
    let run_once () =
      let heap = Pmem.Heap.create ~size:(1 lsl 16) () in
      let order = ref [] in
      ignore
        (S.run ~policy:S.Round_robin ~heap (fun ctx ->
             let a = S.alloc ctx 32 in
             let children =
               List.init 3 (fun i ->
                   S.spawn ctx (fun ctx' ->
                       for _ = 1 to 3 do
                         S.store_i64 ctx' __POS__ (a + (8 * i)) 1L;
                         order := i :: !order
                       done))
             in
             List.iter (S.join ctx) children));
      !order
    in
    Alcotest.(check (list int)) "round robin is deterministic" (run_once ())
      (run_once ());
    (* Fair rotation: threads alternate rather than running to
       completion one after the other. *)
    let order = List.rev (run_once ()) in
    let alternations =
      let rec go = function
        | a :: (b :: _ as rest) -> (if a <> b then 1 else 0) + go rest
        | [ _ ] | [] -> 0
      in
      go order
    in
    Alcotest.(check bool)
      (Printf.sprintf "threads alternate (%d alternations)" alternations)
      true (alternations >= 4)

  let deadlock_detected () =
    (* Two threads each park forever on a mutex held by the other. *)
    let heap = Pmem.Heap.create ~size:(1 lsl 12) () in
    let raised = ref false in
    (try
       ignore
         (S.run ~seed:1 ~heap (fun ctx ->
              let m1 = Machine.Mutex.create ctx in
              let m2 = Machine.Mutex.create ctx in
              let a =
                S.spawn ctx (fun ctx' ->
                    Machine.Mutex.lock m1 ctx' __POS__;
                    S.yield ctx';
                    S.yield ctx';
                    Machine.Mutex.lock m2 ctx' __POS__)
              in
              let b =
                S.spawn ctx (fun ctx' ->
                    Machine.Mutex.lock m2 ctx' __POS__;
                    S.yield ctx';
                    S.yield ctx';
                    Machine.Mutex.lock m1 ctx' __POS__)
              in
              S.join ctx a;
              S.join ctx b))
     with S.Deadlock _ -> raised := true);
    Alcotest.(check bool) "deadlock raised" true !raised

  let delay_injection_changes_schedules () =
    let trace_of policy =
      let heap = Pmem.Heap.create ~size:(1 lsl 16) () in
      let r =
        S.run ~seed:5 ~policy ~heap (fun ctx ->
            let a = S.alloc ctx 16 in
            let children =
              List.init 2 (fun i ->
                  S.spawn ctx (fun ctx' ->
                      for _ = 1 to 10 do
                        S.store_i64 ctx' __POS__ (a + (8 * i)) 1L
                      done))
            in
            List.iter (S.join ctx) children)
      in
      List.map
        (fun ev -> Trace.Tid.to_int (Trace.Event.tid ev))
        (Trace.Tracebuf.to_list r.S.trace)
    in
    Alcotest.(check bool) "delay injection perturbs the schedule" true
      (trace_of S.Random_interleave
      <> trace_of (S.Delay_injection { probability = 0.5; duration = 20 }))

  let tests =
    [
      Alcotest.test_case "round robin" `Quick round_robin_deterministic;
      Alcotest.test_case "deadlock detected" `Quick deadlock_detected;
      Alcotest.test_case "delay injection" `Quick
        delay_injection_changes_schedules;
    ]
end

let () =
  Alcotest.run "machine"
    [
      ("basic", Basic.tests);
      ("policies", Policies.tests);
      ("locks", Locks.tests);
      ("sync_config", Sync_config_tests.tests);
      ("crash", Crash.tests);
      ("observation", Observation.tests);
      ("scripted", Scripted_tests.tests);
      ("prng", Prng_tests.tests);
    ]
