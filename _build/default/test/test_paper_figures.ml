(* The paper's didactic figures (Figures 1, 2 and 3) encoded as synthetic
   traces, each checked against the verdict the paper derives for it.
   These are the executable specification of the PM-aware lockset
   analysis. *)

let lid = Trace.Lock_id.of_int
let tid = Trace.Tid.of_int
let s line = Trace.Site.v "fig.ml" line
let x = 128 (* the PM variable X of the figures *)
let y = 256 (* a PM variable on a separate cache line (Figure 3) *)

let store ?(t = 1) ~line addr =
  Trace.Event.Store
    { tid = tid t; addr; size = 8; site = s line; non_temporal = false }

let load ?(t = 2) ~line addr =
  Trace.Event.Load { tid = tid t; addr; size = 8; site = s line }

let persist ?(t = 1) addr =
  [
    Trace.Event.Flush
      { tid = tid t; line = Pmem.Layout.line_of addr; kind = Trace.Event.Clwb;
        site = s 0 };
    Trace.Event.Fence { tid = tid t; site = s 0 };
  ]

let acq ?(t = 1) l =
  Trace.Event.Lock_acquire { tid = tid t; lock = lid l; site = s 0 }

let rel ?(t = 1) l =
  Trace.Event.Lock_release { tid = tid t; lock = lid l; site = s 0 }

let create ~parent ~child =
  Trace.Event.Thread_create { parent = tid parent; child = tid child }

let races evs =
  Hawkset.Report.count
    (Hawkset.Pipeline.races ~config:Hawkset.Pipeline.no_irh
       (Trace.Tracebuf.of_list evs))

let a = 7 (* the mutex A of the figures *)

(* Figure 1a: classic correctly-locked concurrent program (no PM concerns
   modelled: the store is persisted inside the section). Correct. *)
let figure_1a () =
  Alcotest.(check int) "figure 1a is correct" 0
    (races
       ([ acq ~t:1 a; store ~t:1 ~line:1 x ]
       @ persist ~t:1 x
       @ [ rel ~t:1 a; acq ~t:2 a; load ~t:2 ~line:2 x; rel ~t:2 a ]))

(* Figure 1b: single-threaded PM program that stores and persists X.
   Correct: there is no second thread at all. *)
let figure_1b () =
  Alcotest.(check int) "figure 1b is correct" 0
    (races ([ store ~t:1 ~line:1 x ] @ persist ~t:1 x @ [ load ~t:1 ~line:2 x ]))

(* Figure 1c: the persistency-induced race. Both accesses are protected by
   lock A, but the persist happens outside the critical section: T2 can
   load the visible-but-not-durable value. Traditional lockset analysis
   sees {A} ∩ {A} ≠ ∅ and stays silent; the effective lockset is empty and
   HawkSet reports. *)
let figure_1c_events =
  [ acq ~t:1 a; store ~t:1 ~line:1 x; rel ~t:1 a ]
  @ [ acq ~t:2 a; load ~t:2 ~line:2 x; rel ~t:2 a ]
  @ persist ~t:1 x

let figure_1c () =
  Alcotest.(check int) "figure 1c races" 1 (races figure_1c_events)

let figure_1c_traditional_misses () =
  let config =
    { Hawkset.Pipeline.no_irh with effective_lockset = false }
  in
  Alcotest.(check int) "traditional lockset misses figure 1c" 0
    (Hawkset.Report.count
       (Hawkset.Pipeline.races ~config (Trace.Tracebuf.of_list figure_1c_events)))

(* Figure 2a/2c: store protected by A, persist outside any lock. The
   effective lockset is {A} ∩ {} = ∅: race. *)
let figure_2a () =
  Alcotest.(check int) "figure 2a races" 1
    (races
       ([ acq ~t:1 a; store ~t:1 ~line:1 x; rel ~t:1 a ]
       @ persist ~t:1 x
       @ [ acq ~t:2 a; load ~t:2 ~line:2 x; rel ~t:2 a ]))

(* Figure 2b/2d: the lock is released and reacquired between the store and
   the persist. Without timestamps the effective lockset looks like {A};
   the logical clock reveals the two acquisitions are different atomic
   sections, so the effective lockset is empty: race. *)
let figure_2d_events =
  [ acq ~t:1 a; store ~t:1 ~line:1 x; rel ~t:1 a; acq ~t:1 a ]
  @ persist ~t:1 x
  @ [ rel ~t:1 a; acq ~t:2 a; load ~t:2 ~line:2 x; rel ~t:2 a ]

let figure_2d () =
  Alcotest.(check int) "figure 2d races" 1 (races figure_2d_events)

let figure_2d_needs_timestamps () =
  let config = { Hawkset.Pipeline.no_irh with timestamps = false } in
  Alcotest.(check int) "without timestamps the race is missed" 0
    (Hawkset.Report.count
       (Hawkset.Pipeline.races ~config (Trace.Tracebuf.of_list figure_2d_events)))

(* The complement of figure 2d: store and persist inside one continuous
   critical section — protected, no race. *)
let continuous_section_correct () =
  Alcotest.(check int) "single atomic section is correct" 0
    (races
       ([ acq ~t:1 a; store ~t:1 ~line:1 x ]
       @ persist ~t:1 x
       @ [ rel ~t:1 a; acq ~t:2 a; load ~t:2 ~line:2 x; rel ~t:2 a ]))

(* Figure 3: three threads, no locks at all.
   - T1 stores and persists X before creating T2 and T3: those accesses
     can never be concurrent with T2/T3's — no false positive.
   - T2's store to X and T3's load of X are concurrent: race.
   - T1's Store3 to X happens before T3 is created, but Persist3 completes
     after: T3's load can observe the unpersisted value — race.
   - Accesses to Y on a separate cache line don't interfere. *)
let figure_3_ordered_init () =
  Alcotest.(check int) "init before create is ordered" 0
    (races
       ([ store ~t:1 ~line:1 x ]
       @ persist ~t:1 x
       @ [ create ~parent:1 ~child:2; load ~t:2 ~line:2 x ]))

let figure_3_siblings_race () =
  Alcotest.(check int) "T2 and T3 are concurrent" 1
    (races
       [
         create ~parent:1 ~child:2;
         create ~parent:1 ~child:3;
         store ~t:2 ~line:1 x;
         load ~t:3 ~line:2 x;
       ])

let figure_3_persist_window () =
  Alcotest.(check int) "Store3/Persist3 window spans T3's creation" 1
    (races
       ([ store ~t:1 ~line:1 x; create ~parent:1 ~child:3; load ~t:3 ~line:2 x ]
       @ persist ~t:1 x))

let figure_3_separate_lines () =
  Alcotest.(check int) "Y on another line does not interfere" 1
    (races
       ([ store ~t:1 ~line:1 x;
          create ~parent:1 ~child:3;
          store ~t:3 ~line:3 y ]
       @ persist ~t:3 y
       @ [ load ~t:3 ~line:2 x ]
       @ persist ~t:1 x))

let () =
  Alcotest.run "paper_figures"
    [
      ( "figure1",
        [
          Alcotest.test_case "1a concurrency-correct" `Quick figure_1a;
          Alcotest.test_case "1b PM-correct" `Quick figure_1b;
          Alcotest.test_case "1c persistency-induced race" `Quick figure_1c;
          Alcotest.test_case "1c missed by traditional lockset" `Quick
            figure_1c_traditional_misses;
        ] );
      ( "figure2",
        [
          Alcotest.test_case "2a persist outside lock" `Quick figure_2a;
          Alcotest.test_case "2d release/reacquire" `Quick figure_2d;
          Alcotest.test_case "2d needs timestamps" `Quick
            figure_2d_needs_timestamps;
          Alcotest.test_case "continuous section correct" `Quick
            continuous_section_correct;
        ] );
      ( "figure3",
        [
          Alcotest.test_case "ordered init" `Quick figure_3_ordered_init;
          Alcotest.test_case "sibling race" `Quick figure_3_siblings_race;
          Alcotest.test_case "persist window" `Quick figure_3_persist_window;
          Alcotest.test_case "separate cache lines" `Quick
            figure_3_separate_lines;
        ] );
    ]
