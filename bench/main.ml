(* Benchmark and experiment harness.

     dune exec bench/main.exe              -- everything, scaled-down
     dune exec bench/main.exe -- table2    -- one artifact (table2|table3|
                                              table4|figure6|ablation|micro)
     dune exec bench/main.exe -- full      -- paper-scale workloads (slow)

   Every table and figure of the paper's evaluation has (i) a harness
   that prints the same rows/series (lib/harness) and (ii) a Bechamel
   micro-benchmark of its computational kernel below. *)

module S = Machine.Sched

(* ---- Bechamel micro-benchmarks ---- *)

let fast_fair_trace ops seed =
  (Pmapps.Driver.run_kv_ycsb (module Pmapps.Fast_fair) ~seed ~ops ()).S.trace

let seed_workload =
  lazy (Workload.Seeds.corpus ~count:1 ~ops_per_seed:400 ()).(0)

let micro () =
  let open Bechamel in
  (* Pre-generate the inputs outside the measured closures. *)
  let trace_1k = fast_fair_trace 1_000 42 in
  let trace_4k = fast_fair_trace 4_000 42 in
  let seed_ops = Lazy.force seed_workload in
  let per_thread = Workload.Seeds.split ~threads:8 seed_ops in
  let tests =
    [
      (* Table 2 kernel: the full pipeline over an application trace. *)
      Test.make ~name:"table2/pipeline-fast-fair-1k"
        (Staged.stage (fun () -> Hawkset.Pipeline.races trace_1k));
      (* Table 3 kernels: what each tool pays per seed workload. *)
      Test.make ~name:"table3/hawkset-per-seed"
        (Staged.stage (fun () ->
             let report =
               Pmapps.Driver.run_kv
                 (module Pmapps.Fast_fair)
                 ~seed:7 ~load:[] ~per_thread ()
             in
             Hawkset.Pipeline.races report.Machine.Sched.trace));
      Test.make ~name:"table3/pmrace-per-execution"
        (Staged.stage (fun () ->
             Pmapps.Driver.run_kv
               (module Pmapps.Fast_fair)
               ~seed:7
               ~policy:
                 (Machine.Sched.Delay_injection
                    { probability = 0.05; duration = 40 })
               ~observe:true ~load:[] ~per_thread ()));
      (* Table 4 kernels: stage 2 on and off. *)
      Test.make ~name:"table4/analysis-with-irh"
        (Staged.stage (fun () -> Hawkset.Pipeline.races trace_1k));
      Test.make ~name:"table4/analysis-without-irh"
        (Staged.stage (fun () ->
             Hawkset.Pipeline.races ~config:Hawkset.Pipeline.no_irh trace_1k));
      (* Figure 6 kernel: analysis cost vs trace size (sublinearity). *)
      Test.make ~name:"figure6/analysis-4k"
        (Staged.stage (fun () -> Hawkset.Pipeline.races trace_4k));
      (* Ablation kernels. *)
      Test.make ~name:"ablation/traditional-lockset"
        (Staged.stage (fun () -> Baselines.Eraser.analyse trace_1k));
      Test.make ~name:"ablation/no-vector-clocks"
        (Staged.stage (fun () ->
             Hawkset.Pipeline.races
               ~config:
                 { Hawkset.Pipeline.default with vector_clocks = false }
               trace_1k));
    ]
  in
  let grouped = Test.make_grouped ~name:"hawkset" ~fmt:"%s %s" tests in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:None
      ~stabilize:false ()
  in
  let raw = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] grouped in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let ns =
          match Analyze.OLS.estimates ols with
          | Some (v :: _) -> v
          | Some [] | None -> nan
        in
        (name, ns) :: acc)
      results []
    |> List.sort compare
  in
  print_string (Harness.Tables.section "Bechamel micro-benchmarks");
  print_string
    (Harness.Tables.render
       ~headers:[ "Benchmark"; "Time per run" ]
       ~rows:
         (List.map
            (fun (name, ns) ->
              let pretty =
                if Float.is_nan ns then "n/a"
                else if ns > 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
                else if ns > 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
                else if ns > 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
                else Printf.sprintf "%.0f ns" ns
              in
              [ name; pretty ])
            rows))

(* ---- experiment drivers ---- *)

let table1 ~full =
  ignore full;
  print_string (Harness.Table1.to_string ())

let table2 ~full =
  let sizes = if full then [ 1_000; 10_000; 100_000 ] else [ 1_000; 6_000 ] in
  print_string (Harness.Table2.to_string (Harness.Table2.run ~sizes ()))

let table3 ~full =
  let seeds = if full then 240 else 24 in
  let pmrace_executions = if full then 40 else 12 in
  print_string
    (Harness.Table3.to_string (Harness.Table3.run ~seeds ~pmrace_executions ()))

let table4 ~full =
  let ops = if full then 100_000 else 2_000 in
  print_string (Harness.Table4.to_string (Harness.Table4.run ~ops ()))

let figure6 ~full =
  let sizes =
    if full then [ 1_000; 10_000; 100_000 ] else [ 250; 1_000; 4_000 ]
  in
  print_string (Harness.Figure6.to_string (Harness.Figure6.run ~sizes ()))

let ablation ~full =
  let ops = if full then 10_000 else 1_500 in
  print_string (Harness.Ablation.to_string (Harness.Ablation.run ~ops ()))

(* ---- parallel-analysis sweep (the `par` target) ----
   Stage-2 wall clock per --jobs count on the Figure 6 workload (one
   fast-fair trace, collected once). Every run must produce the same
   races and pair count — asserted here, so the bench doubles as an
   end-to-end determinism check. Best-of-3 timings damp scheduler noise. *)

type par_point = {
  pp_jobs : int;
  pp_analyse_s : float;
  pp_speedup : float;
  pp_collect_s : float;
  pp_collect_events_per_s : float;
  pp_ls_hit_rate : float; (* lockset memo: hits / lookups *)
  pp_vc_hit_rate : float; (* vclock memo: hits / lookups *)
}

(* Best-of-N pipeline timing at one jobs setting; also captures the memo
   hit rates from the global counter deltas of the first run (the rates
   are deterministic — asserted identical across jobs by the counter
   differential test, so which run supplies them is immaterial). *)
let timed_point ?(rounds = 3) ~trace jobs =
  let config = { Hawkset.Pipeline.default with jobs } in
  let best_a = ref infinity in
  let best_c = ref infinity in
  let baseline = ref None in
  let rates = ref (nan, nan) in
  for round = 1 to rounds do
    let before = Obs.Registry.counters Obs.Registry.global in
    let r = Hawkset.Pipeline.run ~config trace in
    (if round = 1 then
       let after = Obs.Registry.counters Obs.Registry.global in
       let delta name =
         let v l = Option.value ~default:0 (List.assoc_opt name l) in
         v after - v before
       in
       let rate hits misses =
         let lookups = hits + misses in
         if lookups = 0 then 0. else float_of_int hits /. float_of_int lookups
       in
       rates :=
         ( rate
             (delta "analysis.lockset_memo_hits")
             (delta "analysis.lockset_memo_misses"),
           rate
             (delta "analysis.vclock_memo_hits")
             (delta "analysis.vclock_comparisons") ));
    (match !baseline with
    | None -> baseline := Some r
    | Some b ->
        assert (
          Hawkset.Report.to_json r.Hawkset.Pipeline.races
          = Hawkset.Report.to_json b.Hawkset.Pipeline.races));
    best_a :=
      Float.min !best_a (List.assoc "analyse" r.Hawkset.Pipeline.stage_seconds);
    best_c :=
      Float.min !best_c (List.assoc "collect" r.Hawkset.Pipeline.stage_seconds)
  done;
  let r = Option.get !baseline in
  let events =
    r.Hawkset.Pipeline.collector_stats.Hawkset.Collector.c_events
  in
  let ls_rate, vc_rate = !rates in
  ( {
      pp_jobs = jobs;
      pp_analyse_s = !best_a;
      pp_speedup = 1.0 (* filled by the caller against the jobs=1 point *);
      pp_collect_s = !best_c;
      pp_collect_events_per_s =
        (if !best_c > 0. then float_of_int events /. !best_c else 0.);
      pp_ls_hit_rate = ls_rate;
      pp_vc_hit_rate = vc_rate;
    },
    r )

let par_sweep ~full =
  let ops = if full then 100_000 else 8_000 in
  let trace = fast_fair_trace ops 42 in
  let jobs_list = [ 1; 2; 4; 8 ] in
  let seq_p, seq_r = timed_point ~trace 1 in
  let points =
    List.map
      (fun jobs ->
        let p, r =
          if jobs = 1 then (seq_p, seq_r) else timed_point ~trace jobs
        in
        (* Parallel results must be bit-identical to sequential. *)
        assert (
          Hawkset.Report.to_json r.Hawkset.Pipeline.races
          = Hawkset.Report.to_json seq_r.Hawkset.Pipeline.races);
        assert (
          r.Hawkset.Pipeline.pairs_examined
          = seq_r.Hawkset.Pipeline.pairs_examined);
        { p with pp_speedup = seq_p.pp_analyse_s /. p.pp_analyse_s })
      jobs_list
  in
  (ops, points)

let par_json (ops, points) =
  Obs.Json.obj
    [
      ("app", Obs.Json.str "fast-fair");
      ("ops", Obs.Json.int ops);
      ( "points",
        Obs.Json.arr
          (List.map
             (fun p ->
               Obs.Json.obj
                 [
                   ("jobs", Obs.Json.int p.pp_jobs);
                   ("analyse_seconds", Obs.Json.float p.pp_analyse_s);
                   ("speedup", Obs.Json.float p.pp_speedup);
                   ("collect_seconds", Obs.Json.float p.pp_collect_s);
                   ( "collect_events_per_s",
                     Obs.Json.float p.pp_collect_events_per_s );
                   ("lockset_memo_hit_rate", Obs.Json.float p.pp_ls_hit_rate);
                   ("vclock_memo_hit_rate", Obs.Json.float p.pp_vc_hit_rate);
                 ])
             points) );
    ]

let par ~full =
  let ((_, points) as sweep) = par_sweep ~full in
  print_string (Harness.Tables.section "Parallel analysis (--jobs sweep)");
  print_string
    (Harness.Tables.render
       ~headers:
         [
           "Jobs"; "Analyse stage"; "Speedup vs --jobs 1"; "Collect ev/s";
           "LS memo hit"; "VC memo hit";
         ]
       ~rows:
         (List.map
            (fun p ->
              [
                string_of_int p.pp_jobs;
                Printf.sprintf "%.4f s" p.pp_analyse_s;
                Printf.sprintf "%.2fx" p.pp_speedup;
                Printf.sprintf "%.0f" p.pp_collect_events_per_s;
                Printf.sprintf "%.1f%%" (100. *. p.pp_ls_hit_rate);
                Printf.sprintf "%.1f%%" (100. *. p.pp_vc_hit_rate);
              ])
            points));
  sweep

(* ---- CI perf smoke (the `perf-smoke` target) ----
   The cheap regression guard: on a single run of the Figure 6 workload,
   jobs=4 analysis must not be slower than 1.2x sequential. On a
   multi-core machine parallel analysis should win outright; the 1.2x
   tolerance keeps the gate meaningful on single-core CI runners, where
   the best achievable is parity and the bound catches any return of the
   per-call spawn overhead this PR removed (0.36x speedup = 2.8x slower
   at jobs=4 before the domain pool). Exits non-zero on violation. *)

let perf_smoke ~full =
  let ops = if full then 100_000 else 8_000 in
  let trace = fast_fair_trace ops 42 in
  let rounds = if full then 2 else 5 in
  let median a =
    let a = Array.copy a in
    Array.sort compare a;
    a.(Array.length a / 2)
  in
  (* Median of 3 paired measurements, each timing jobs=1 and jobs=4 back
     to back: one scheduling hiccup (a noisy CI neighbour, a GC major
     landing in exactly one run) can no longer fail the gate on its own,
     where the old single-sample ratio could. *)
  let reps = 3 in
  let samples =
    Array.init reps (fun _ ->
        let seq_p, seq_r = timed_point ~rounds ~trace 1 in
        let par_p, par_r = timed_point ~rounds ~trace 4 in
        assert (
          Hawkset.Report.to_json par_r.Hawkset.Pipeline.races
          = Hawkset.Report.to_json seq_r.Hawkset.Pipeline.races);
        (seq_p.pp_analyse_s, par_p.pp_analyse_s))
  in
  let seq_s = median (Array.map fst samples) in
  let par_s = median (Array.map snd samples) in
  let ratio = median (Array.map (fun (s, p) -> p /. s) samples) in
  print_string (Harness.Tables.section "Perf smoke (jobs=4 vs jobs=1)");
  Printf.printf
    "fast-fair/%d: analyse jobs=1 %.4fs, jobs=4 %.4fs (median ratio of %d \
     reps %.2fx, bound 1.20x)\n"
    ops seq_s par_s reps ratio;
  if ratio > 1.2 then begin
    Printf.eprintf
      "perf-smoke FAIL: jobs=4 analyse %.4fs > 1.2x sequential %.4fs \
       (median of %d reps)\n"
      par_s seq_s reps;
    exit 1
  end;
  (* Timeline overhead gate: the instrumentation must add <= 2% to the
     4000-op pipeline. We compare recording *enabled* against disabled —
     a strictly stronger bound than the no-`--trace-out` claim, since the
     disabled path (one atomic load per stage-granularity site) is a
     subset of the enabled one. Each round times an off run and an on run
     back to back and keeps their *difference*: adjacent runs see the
     same load phase of a shared runner, so drift cancels pairwise where
     a best-of comparison of two separate batches does not. The median
     difference then gates against 2% of the median off time, with a
     10ms floor for timer noise on runs this short. *)
  let tl_ops = if full then 100_000 else 4_000 in
  let tl_trace = fast_fair_trace tl_ops 42 in
  let timed_round enabled =
    Obs.Timeline.reset ();
    Obs.Timeline.set_enabled enabled;
    let r = Hawkset.Pipeline.run tl_trace in
    r.Hawkset.Pipeline.analysis_seconds
  in
  let tl_rounds = if full then 3 else 5 in
  let offs = Array.init tl_rounds (fun _ -> 0.) in
  let deltas = Array.init tl_rounds (fun _ -> 0.) in
  for i = 0 to tl_rounds - 1 do
    let off = timed_round false in
    let on = timed_round true in
    offs.(i) <- off;
    deltas.(i) <- on -. off
  done;
  Obs.Timeline.set_enabled false;
  Obs.Timeline.reset ();
  let med_off = median offs and med_delta = median deltas in
  Printf.printf
    "fast-fair/%d: pipeline timeline-off %.4fs, median on-off delta %+.4fs \
     (bound 2%% + 10ms)\n"
    tl_ops med_off med_delta;
  if med_delta > (med_off *. 0.02) +. 0.01 then begin
    Printf.eprintf
      "perf-smoke FAIL: timeline recording adds %.4fs > 2%% of %.4fs + 10ms\n"
      med_delta med_off;
    exit 1
  end

(* ---- schedule exploration (the `explore` target) ----
   The interleaving-stability gate: a policy/seed sweep over three apps
   must pass the oracle (no erroring schedule, every directly-observed
   inconsistency already reported by the lockset analysis of that trace,
   identical traces identical reports) and reproduce the Table 3 shape —
   at least one injected bug that HawkSet reports in more schedules than
   direct observation catches it. *)

let explore_smoke ~full =
  let config =
    {
      Explore.default_config with
      Explore.schedules = (if full then 32 else 12);
      ops = (if full then 400 else 200);
      jobs = 2;
    }
  in
  let apps = [ "fast-fair"; "p-masstree"; "wipe" ] in
  let ts = Harness.Explore_sweep.run ~config ~apps () in
  print_string (Harness.Explore_sweep.to_string ts);
  print_string (Harness.Explore_sweep.bug_table_string ts);
  if not (Harness.Explore_sweep.stable ts) then begin
    print_string (Harness.Explore_sweep.divergences_string ts);
    failwith "explore: interleaving-stability oracle violated"
  end;
  let pmrace_misses =
    List.exists
      (fun (t : Explore.t) ->
        List.exists
          (fun (b : Explore.bug_hits) ->
            b.Explore.b_hawkset > b.Explore.b_pmrace)
          t.Explore.x_bug_hits)
      ts
  in
  if not pmrace_misses then
    failwith
      "explore: expected at least one bug observed in fewer schedules than \
       HawkSet reports it"

(* ---- crash sweep (the `crash-sweep` target) ----
   Runs the fault-injection sweep on the four bug-target apps named in the
   acceptance criteria plus the pmlog control, hunting across a few seeds
   until each target bug is manifested (damage at a crash point whose
   prefix analysis reports that bug). Then demonstrates the degradation
   contract: an exhausted event budget and a deliberately-failing shard
   both still return a report. Exits non-zero via assert on violation. *)

let crash_sweep ~full =
  let ops = if full then 1_200 else 400 in
  let base = { Crashtest.default_config with Crashtest.c_ops = ops } in
  (* (app, bug that must manifest); None = control, must stay clean. *)
  let targets =
    [ ("fast-fair", Some 1); ("turbo-hash", Some 3); ("p-clht", Some 4);
      ("memcached-pmem", Some 12); ("pmlog", None) ]
  in
  let rows =
    List.map
      (fun (app, want) ->
        let runner =
          match Crashtest.runner_for app with
          | Some r -> r
          | None -> failwith (app ^ " has no crash-sweep runner")
        in
        let rec hunt = function
          | [] -> Crashtest.run_sweep ~config:base runner
          | seed :: rest -> (
              let config = { base with Crashtest.c_seed = seed } in
              let sweep = Crashtest.run_sweep ~config runner in
              match want with
              | Some id
                when (not (List.mem id sweep.Crashtest.sw_manifested))
                     && rest <> [] ->
                  hunt rest
              | Some _ | None -> sweep)
        in
        let sweep = hunt [ 42; 7; 1; 13; 99 ] in
        ({ Harness.Crash_sweep.cs_runner = runner; cs_sweep = sweep }, want))
      targets
  in
  print_string (Harness.Crash_sweep.to_string (List.map fst rows));
  (* Acceptance: the injected bugs are manifested, the control is clean. *)
  List.iter
    (fun ((r : Harness.Crash_sweep.row), want) ->
      let s = r.Harness.Crash_sweep.cs_sweep in
      match want with
      | Some id ->
          if not (List.mem id s.Crashtest.sw_manifested) then
            failwith
              (Printf.sprintf "bug #%d did not manifest on %s" id
                 s.Crashtest.sw_app)
      | None ->
          if s.Crashtest.sw_damaged <> 0 || s.Crashtest.sw_raised <> 0 then
            failwith
              (Printf.sprintf "control %s was damaged (%d) / raised (%d)"
                 s.Crashtest.sw_app s.Crashtest.sw_damaged
                 s.Crashtest.sw_raised))
    rows;
  (* Degradation demo 1: an exhausted event budget still yields a report,
     flagged as truncated. *)
  let trace = fast_fair_trace 4_000 42 in
  let budget = Trace.Tracebuf.length trace / 2 in
  let degraded =
    Hawkset.Pipeline.run
      ~config:
        { Hawkset.Pipeline.default with Hawkset.Pipeline.event_budget = Some budget }
      trace
  in
  assert (
    List.exists
      (fun (t : Hawkset.Pipeline.truncation) ->
        t.Hawkset.Pipeline.trunc_stage = "collect"
        && t.Hawkset.Pipeline.trunc_reason = "event_budget"
        && t.Hawkset.Pipeline.trunc_done = budget)
      degraded.Hawkset.Pipeline.truncated);
  (* Degradation demo 2: a deliberately-failing shard is retried and the
     result is bit-identical to the healthy sequential run. *)
  let collected = Hawkset.Collector.collect trace in
  let seq = Hawkset.Analysis.run collected in
  let before = Obs.Registry.counters Obs.Registry.global in
  let withfail =
    Hawkset.Par_analysis.analyse ~jobs:4
      ~inject_shard_failure:(fun shard -> shard = 1)
      collected
  in
  let after = Obs.Registry.counters Obs.Registry.global in
  let delta name =
    let v l = Option.value ~default:0 (List.assoc_opt name l) in
    v after - v before
  in
  assert (
    Hawkset.Report.to_json withfail.Hawkset.Analysis.report
    = Hawkset.Report.to_json seq.Hawkset.Analysis.report);
  assert (withfail.Hawkset.Analysis.pairs = seq.Hawkset.Analysis.pairs);
  assert (delta "analysis.shard_failures" = 1);
  assert (delta "analysis.shard_retries" = 1);
  print_string (Harness.Tables.section "Degradation contract");
  Printf.printf
    "event budget %d/%d: report returned, truncated=[collect:event_budget]\n\
     injected shard failure: retried sequentially, report bit-identical \
     (%d pairs)\n"
    budget
    (Trace.Tracebuf.length trace)
    withfail.Hawkset.Analysis.pairs

(* ---- supervised batch (the `batch-smoke` target) ----
   The durability contract, in-process: the same declared job set — with
   every fault class injected — run (i) uninterrupted, (ii) killed after
   two jobs and resumed from the journal. The merged reports must be
   byte-identical and the degradation table must show each injected class
   classified and bounded. *)

let batch_smoke ~full =
  let ops = if full then 1_200 else 300 in
  let jobs =
    match
      Supervise.jobs_of
        ~apps:[ "fast-fair"; "p-clht" ]
        ~seeds:[ 42; 43 ] ~policies:[ "round-robin" ] ~ops
    with
    | Ok js -> js
    | Error msg -> failwith msg
  in
  let fault j cls times = { Supervise.f_job = j; f_class = cls; f_times = times } in
  let config =
    {
      Supervise.default_config with
      Supervise.backoff_ms = 0;
      faults =
        [
          fault 0 Supervise.Corrupt_trace 1;
          fault 1 Supervise.Timeout 1;
          fault 2 Supervise.Oom 1;
          fault 3 Supervise.Worker_lost 99;
        ];
    }
  in
  let golden = Supervise.run ~config jobs in
  let journal = Filename.temp_file "hawkset_batch" ".jnl" in
  let killed =
    Supervise.run ~journal
      ~config:{ config with Supervise.stop_after = Some 2 }
      jobs
  in
  assert killed.Supervise.b_interrupted;
  let resumed = Supervise.run ~journal ~resume:true ~config jobs in
  Sys.remove journal;
  print_string (Harness.Batch.degradation_table resumed);
  print_endline (Harness.Batch.summary_line resumed);
  if Supervise.merged_json golden <> Supervise.merged_json resumed then
    failwith "batch-smoke: resumed merged report differs from golden run";
  assert (List.exists (fun jr -> jr.Supervise.jr_replayed) resumed.Supervise.b_results);
  let status i (b : Supervise.batch) =
    Supervise.status_string (List.nth b.Supervise.b_results i).Supervise.jr_status
  in
  assert (status 0 resumed = "ok-retried");
  assert (status 1 resumed = "ok-retried");
  assert (status 2 resumed = "ok-sequential");
  assert (status 3 resumed = "failed");
  let counters = Supervise.counters resumed in
  let c name = Option.value ~default:0 (List.assoc_opt name counters) in
  assert (c "supervise.failures.corrupt_trace" = 1);
  assert (c "supervise.failures.timeout" = 1);
  assert (c "supervise.failures.oom" = 1);
  (* The worker-lost job is bounded: exactly [attempts] tries, no more. *)
  assert (c "supervise.failures.worker_lost" = config.Supervise.attempts);
  Printf.printf
    "batch-smoke: kill+resume merged report byte-identical (%d jobs, %d \
     replayed)\n"
    (List.length resumed.Supervise.b_results)
    (c "supervise.replayed")

(* ---- job-level parallelism + result cache (the `batch-par` target) ----
   The two wall-clock contracts of the concurrency work, gated: a batch
   of four per-app chains at job_workers=4 must produce a merged report
   byte-identical to the sequential walk in <= 0.6x its wall-clock, and
   a duplicate-heavy (round-robin) explore sweep with a result cache
   must record hits while the stability oracle still passes and the
   reports stay identical to the uncached run. Both sweeps also feed the
   `json` target's BENCH_pipeline.json batch/cache sections. *)

type batch_par_point = {
  bp_jobs : int;
  bp_seq_s : float;  (** Median job_workers=1 wall-clock. *)
  bp_par_s : float;  (** Median job_workers=4 wall-clock. *)
  bp_ratio : float;  (** Median per-rep par/seq ratio. *)
}

let batch_par_sweep ~full =
  let ops = if full then 2_000 else 600 in
  (* Four apps, so job_workers=4 gets four per-app chains to spread. *)
  let jobs =
    match
      Supervise.jobs_of
        ~apps:[ "fast-fair"; "p-clht"; "turbo-hash"; "wipe" ]
        ~seeds:[ 42; 43 ] ~policies:[ "round-robin" ] ~ops
    with
    | Ok js -> js
    | Error msg -> failwith msg
  in
  let base = { Supervise.default_config with Supervise.backoff_ms = 0 } in
  let time config =
    let t0 = Unix.gettimeofday () in
    let b = Supervise.run ~config jobs in
    (b, Unix.gettimeofday () -. t0)
  in
  let reps = 3 in
  let samples =
    Array.init reps (fun _ ->
        let b1, t1 = time base in
        let b4, t4 = time { base with Supervise.job_workers = 4 } in
        if Supervise.merged_json b4 <> Supervise.merged_json b1 then
          failwith
            "batch-par: job_workers=4 merged report differs from \
             job_workers=1";
        (t1, t4))
  in
  let median a =
    let a = Array.copy a in
    Array.sort compare a;
    a.(Array.length a / 2)
  in
  {
    bp_jobs = List.length jobs;
    bp_seq_s = median (Array.map fst samples);
    bp_par_s = median (Array.map snd samples);
    bp_ratio = median (Array.map (fun (t1, t4) -> t4 /. t1) samples);
  }

type cache_point = {
  cp_schedules : int;
  cp_hits : int;
  cp_misses : int;
  cp_entries : int;
  cp_bytes : int;
}

let explore_cache_sweep ~full =
  let entry =
    match Pmapps.Registry.find "fast-fair" with
    | Some e -> e
    | None -> failwith "fast-fair not registered"
  in
  (* Round-robin scheduling ignores the schedule seed, so every schedule
     replays the same interleaving: the duplicate-heavy shape where the
     cache pays. Any schedule past the first per worker must hit. *)
  let config =
    {
      Explore.default_config with
      Explore.schedules = (if full then 16 else 8);
      policy = Explore.Round_robin;
      ops = (if full then 400 else 200);
      jobs = 2;
    }
  in
  let plain = Explore.run ~config entry in
  let cache = Hawkset.Result_cache.create () in
  let cached =
    Explore.run ~config:{ config with Explore.cache = Some cache } entry
  in
  if not (Explore.stable cached) then
    failwith "batch-par: stability oracle violated with cache enabled";
  let canon (t : Explore.t) =
    List.map
      (fun (r : Explore.schedule_result) ->
        (r.Explore.s_index, r.Explore.s_canonical))
      t.Explore.x_results
  in
  if canon cached <> canon plain then
    failwith "batch-par: cached explore reports differ from uncached";
  let stats = Hawkset.Result_cache.stats cache in
  let stat name = Option.value ~default:0 (List.assoc_opt name stats) in
  {
    cp_schedules = config.Explore.schedules;
    cp_hits = stat "cache.hits";
    cp_misses = stat "cache.misses";
    cp_entries = stat "cache.entries";
    cp_bytes = stat "cache.bytes";
  }

let batch_par ~full =
  let bp = batch_par_sweep ~full in
  print_string (Harness.Tables.section "Batch job-workers (4 vs 1)");
  (* The speedup gate needs hardware that can actually run four chains
     at once; on fewer cores (dev containers are often 1-2) the byte
     identity asserted inside the sweep is the whole contract and the
     wall-clock ratio is reported without gating — same spirit as
     perf-smoke's 1.2x *overhead* bound, which tolerates parallelism
     that cannot pay on the machine at hand. *)
  let cores = Domain.recommended_domain_count () in
  let gated = cores >= 4 in
  Printf.printf
    "%d jobs: job_workers=1 %.3fs, job_workers=4 %.3fs (median ratio %.2fx, \
     bound 0.60x%s); merged reports byte-identical\n"
    bp.bp_jobs bp.bp_seq_s bp.bp_par_s bp.bp_ratio
    (if gated then ""
     else Printf.sprintf " — not gated, %d core(s)" cores);
  if gated && bp.bp_ratio > 0.6 then begin
    Printf.eprintf
      "batch-par FAIL: job_workers=4 wall-clock %.3fs > 0.6x sequential \
       %.3fs\n"
      bp.bp_par_s bp.bp_seq_s;
    exit 1
  end;
  let cp = explore_cache_sweep ~full in
  Printf.printf
    "explore round-robin x%d with cache: hits=%d misses=%d entries=%d \
     (oracle stable, reports identical to uncached)\n"
    cp.cp_schedules cp.cp_hits cp.cp_misses cp.cp_entries;
  if cp.cp_hits = 0 then begin
    Printf.eprintf "batch-par FAIL: explore cache recorded no hits\n";
    exit 1
  end;
  (bp, cp)

(* ---- pipeline perf-trajectory emitter (BENCH_pipeline.json) ----
   One instrumented fast-fair run per workload size: per-stage seconds,
   peak live heap and the deterministic counter snapshot, machine-readable
   so CI can archive the trajectory per commit. Includes the per-jobs
   parallel-analysis sweep. *)

let bench_json ?sweep ?batch_cache ~full () =
  let sizes = if full then [ 1_000; 10_000; 100_000 ] else [ 1_000; 4_000 ] in
  let entry =
    match Pmapps.Registry.find "fast-fair" with
    | Some e -> e
    | None -> failwith "fast-fair not registered"
  in
  let points =
    List.map
      (fun ops ->
        let r = Harness.Stats.instrumented_run ~entry ~seed:42 ~ops () in
        let m = r.Harness.Stats.manifest in
        Obs.Json.obj
          [
            ("ops", Obs.Json.int ops);
            ( "stages",
              Obs.Json.obj
                (List.map
                   (fun (s : Obs.Manifest.stage) ->
                     (s.Obs.Manifest.stage_name,
                      Obs.Json.float s.Obs.Manifest.stage_seconds))
                   m.Obs.Manifest.stages) );
            ("peak_live_mb", Obs.Json.float r.Harness.Stats.peak_mb);
            ("final_live_mb", Obs.Json.float r.Harness.Stats.final_live_mb);
            ( "counters",
              Obs.Json.obj
                (List.map
                   (fun (k, v) -> (k, Obs.Json.int v))
                   m.Obs.Manifest.counters) );
          ])
      sizes
  in
  let sweep = match sweep with Some s -> s | None -> par_sweep ~full in
  let bp, cp =
    match batch_cache with
    | Some bc -> bc
    | None -> (batch_par_sweep ~full, explore_cache_sweep ~full)
  in
  let doc =
    Obs.Json.obj
      [
        ("schema", Obs.Json.str "hawkset.bench_pipeline/4");
        ("app", Obs.Json.str "fast-fair");
        ("seed", Obs.Json.int 42);
        ("points", Obs.Json.arr points);
        ("parallel", par_json sweep);
        ( "batch",
          Obs.Json.obj
            [
              ("jobs", Obs.Json.int bp.bp_jobs);
              ("job_workers_1_s", Obs.Json.float bp.bp_seq_s);
              ("job_workers_4_s", Obs.Json.float bp.bp_par_s);
              ("ratio", Obs.Json.float bp.bp_ratio);
            ] );
        ( "cache",
          Obs.Json.obj
            [
              ("schedules", Obs.Json.int cp.cp_schedules);
              ("hits", Obs.Json.int cp.cp_hits);
              ("misses", Obs.Json.int cp.cp_misses);
              ("entries", Obs.Json.int cp.cp_entries);
              ("bytes", Obs.Json.int cp.cp_bytes);
            ] );
      ]
  in
  let file = "BENCH_pipeline.json" in
  let oc = open_out file in
  output_string oc doc;
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s (%d points)\n" file (List.length points)

(* ---- conformance fuzz (the `check` target) ----
   A bounded differential-fuzzing pass: production pipeline vs the
   executable specification across the config matrix, with throughput
   reported. Exits non-zero on any divergence — the same gate CI runs
   through `hawkset check`, here sized for the bench driver. *)

let check_smoke ~full =
  let traces = if full then 5_000 else 500 in
  let t0 = Unix.gettimeofday () in
  let r = Check.Conformance.fuzz ~traces ~max_events:64 ~seed:42 () in
  let dt = Unix.gettimeofday () -. t0 in
  print_string (Harness.Tables.section "Conformance fuzz");
  Printf.printf
    "%d traces (%d events), %d comparisons in %.1fs (%.0f traces/s): %d \
     divergent\n"
    r.Check.Conformance.fz_traces r.Check.Conformance.fz_events
    r.Check.Conformance.fz_comparisons dt
    (float_of_int r.Check.Conformance.fz_traces /. dt)
    (List.length r.Check.Conformance.fz_failures);
  match r.Check.Conformance.fz_failures with
  | [] -> ()
  | (seed, _, d) :: _ ->
      Printf.eprintf "check FAIL: seed %d diverged on %s\n" seed
        d.Check.Conformance.d_variant;
      exit 1

let () =
  let args = Array.to_list Sys.argv in
  let full = List.mem "full" args || List.mem "--full" args in
  let wants name = List.mem name args in
  let any =
    List.exists wants
      [ "table1"; "table2"; "table3"; "table4"; "figure6"; "ablation";
        "micro"; "par"; "json"; "--json"; "crash-sweep"; "perf-smoke";
        "explore"; "batch-smoke"; "batch-par"; "check" ]
  in
  let run name f = if (not any) || wants name then f ~full in
  run "table1" table1;
  run "table2" table2;
  run "table3" table3;
  run "table4" table4;
  run "figure6" figure6;
  run "ablation" ablation;
  (* `crash-sweep` is opt-in only: it executes hundreds of cut runs. *)
  if wants "crash-sweep" then crash_sweep ~full;
  (* `explore` is opt-in only: it runs the full pipeline once per
     schedule. *)
  if wants "explore" then explore_smoke ~full;
  (* `perf-smoke` is opt-in only: the CI regression gate. *)
  if wants "perf-smoke" then perf_smoke ~full;
  (* `check` is opt-in only: it runs the full config matrix per trace. *)
  if wants "check" then check_smoke ~full;
  (* `batch-smoke` is opt-in only: it runs the pipeline once per job,
     twice over (golden + kill/resume). *)
  if wants "batch-smoke" then batch_smoke ~full;
  (* `batch-par` is opt-in only: it times the same batch six times over
     (3 reps x 2 widths) plus two explore sweeps. When `json` also runs,
     its measurements are reused for the batch/cache sections. *)
  let batch_cache = if wants "batch-par" then Some (batch_par ~full) else None in
  (* `par` and `json` (or `--json`) are opt-in only: they are not part of
     the default everything-run because they re-execute instrumented
     workloads. `par` prints the jobs sweep and records it in
     BENCH_pipeline.json; `json` runs the sweep silently. *)
  if wants "par" then begin
    let sweep = par ~full in
    bench_json ~sweep ?batch_cache ~full ()
  end
  else if wants "json" || wants "--json" then bench_json ?batch_cache ~full ();
  if (not any) || wants "micro" then micro ()
