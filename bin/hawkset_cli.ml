(* hawkset — command-line front end.

   Subcommands:
     run         run one application under a detector and print reports
     batch       run a declared job set under supervision (retry, resume)
     list-apps   show the registered applications (Table 1)
     table2/table3/table4/figure6/ablation
                 regenerate the paper's tables and figures

   Exit codes (documented in the README): 0 success; 1 usage error or
   oracle violation; 2 damaged input trace; 3 degraded results (truncated
   analysis without --allow-truncated, or a batch with failed/quarantined
   jobs); 10 batch stopped by --kill-after (resumable). *)

open Cmdliner

(* Trace files come from outside the process; a truncated or corrupted one
   must produce a one-line diagnostic and exit 2, not a backtrace. The
   exception carries the file so the top-level handler can say which input
   was bad ({!Trace.Trace_io.Parse_error} only knows the line). *)
exception Trace_error of string * int * string

let load_trace file =
  try Trace.Trace_io.load file
  with Trace.Trace_io.Parse_error (line, msg) ->
    raise (Trace_error (file, line, msg))

let app_arg =
  let doc =
    "Application to analyse. One of: "
    ^ String.concat ", "
        (List.map (fun e -> e.Pmapps.Registry.reg_name) Pmapps.Registry.all)
  in
  Arg.(
    required
    & opt (some string) None
    & info [ "a"; "app" ] ~docv:"APP" ~doc)

let ops_arg default =
  Arg.(
    value & opt int default
    & info [ "n"; "ops" ] ~docv:"N" ~doc:"Main-phase operations.")

let seed_arg =
  Arg.(
    value & opt int 42 & info [ "s"; "seed" ] ~docv:"SEED" ~doc:"Scheduler seed.")

let detector_arg =
  let det =
    Arg.enum [ ("hawkset", `Hawkset); ("eraser", `Eraser); ("pmrace", `Pmrace) ]
  in
  Arg.(
    value & opt det `Hawkset
    & info [ "d"; "detector" ] ~docv:"DETECTOR"
        ~doc:"Detector: $(b,hawkset), $(b,eraser) or $(b,pmrace).")

let no_irh_arg =
  Arg.(
    value & flag
    & info [ "no-irh" ]
        ~doc:"Disable the Initialization Removal Heuristic (stage 2).")

let json_arg =
  Arg.(
    value & flag
    & info [ "json" ] ~doc:"Print race reports as a JSON array.")

let eadr_arg =
  Arg.(
    value & flag
    & info [ "eadr" ]
        ~doc:
          "Analyse assuming eADR hardware (persistent cache, \u{00a7}2.1): \
           the visible-but-not-durable window cannot exist.")

let jobs_arg =
  Arg.(
    value
    & opt int Hawkset.Pipeline.default_jobs
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Analysis domains for stage 3 (default $(b,\\$HAWKSET_JOBS) or 1). \
           Race reports and deterministic counters are bit-identical for \
           every $(docv); only wall-clock time changes.")

let event_budget_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "event-budget" ] ~docv:"N"
        ~doc:
          "Analyse at most the first $(docv) trace events — a deterministic \
           cut, recorded as a truncation (and exiting 3 unless \
           $(b,--allow-truncated)).")

let allow_truncated_arg =
  Arg.(
    value & flag
    & info [ "allow-truncated" ]
        ~doc:
          "Exit 0 even when the analysis was truncated (event budget or \
           deadline hit, shards skipped). Without this flag a truncated \
           result exits 3 so scripted callers cannot mistake a partial \
           report for a complete one.")

(* Exit-code contract: a truncated analysis is a degraded result, not a
   clean success. Runs after stats/timeline emission so the partial
   report is still fully observable. *)
let check_truncated ~allow truncated =
  if truncated <> [] && not allow then begin
    List.iter
      (fun (t : Hawkset.Pipeline.truncation) ->
        Format.eprintf "hawkset: truncated: %s by %s (%d/%d)@."
          t.Hawkset.Pipeline.trunc_stage t.Hawkset.Pipeline.trunc_reason
          t.Hawkset.Pipeline.trunc_done t.Hawkset.Pipeline.trunc_total)
      truncated;
    Format.eprintf
      "hawkset: analysis truncated (%d record%s); pass --allow-truncated to \
       accept partial results@."
      (List.length truncated)
      (if List.length truncated = 1 then "" else "s");
    exit 3
  end

(* --- observability flags --------------------------------------------- *)

let stats_arg =
  Arg.(
    value & flag
    & info [ "stats" ]
        ~doc:
          "Print the run-stats block: per-stage spans, deterministic \
           counters (scheduler, PM cache, collector, analysis) and \
           measured gauges (peak live heap).")

let stats_json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "stats-json" ] ~docv:"FILE"
        ~doc:
          "Write the run manifest (schema hawkset.run_manifest/1) as JSON \
           to $(docv). Counters are byte-identical across runs with the \
           same seed; timings and memory live in separate fields.")

let verbose_arg =
  Arg.(
    value & flag_all
    & info [ "v"; "verbose" ]
        ~doc:"Log to stderr; once for info, twice for debug.")

let log_level_arg =
  let levels =
    [
      ("quiet", Obs.Logger.Quiet);
      ("error", Obs.Logger.Error);
      ("warn", Obs.Logger.Warn);
      ("info", Obs.Logger.Info);
      ("debug", Obs.Logger.Debug);
    ]
  in
  Arg.(
    value
    & opt (some (enum levels)) None
    & info [ "log-level" ] ~docv:"LEVEL"
        ~doc:"Log level: $(b,quiet), $(b,error), $(b,warn), $(b,info) or \
              $(b,debug). Overrides $(b,-v).")

let setup_logging verbose log_level =
  let level =
    match log_level with
    | Some l -> l
    | None -> (
        match List.length verbose with
        | 0 -> Obs.Logger.Quiet
        | 1 -> Obs.Logger.Info
        | _ -> Obs.Logger.Debug)
  in
  Obs.Logger.set_level level;
  Obs.Logger.set_sink Obs.Logger.stderr_sink

let logging_term = Term.(const setup_logging $ verbose_arg $ log_level_arg)

let trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:
          "Write a Chrome-trace-event timeline (loadable in Perfetto or \
           chrome://tracing) to $(docv): one lane per analysis domain, \
           pipeline stages as nested duration events, instants for \
           truncations, shard failures and crash points. Off by default — \
           recording costs nothing when this flag is absent.")

(* Timeline capture brackets a whole subcommand: cleared and enabled up
   front (only when requested), drained into the trace file and into
   gauge-quarantined per-stage duration stats at the end. *)
let start_timeline trace_out =
  if trace_out <> None then begin
    Obs.Timeline.reset ();
    Obs.Timeline.set_enabled true
  end

let finish_timeline trace_out manifest =
  match trace_out with
  | None -> manifest
  | Some file -> (
      Obs.Timeline.set_enabled false;
      try
        let oc = open_out file in
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () -> output_string oc (Obs.Timeline.to_chrome_json ()));
        Format.printf "wrote timeline trace to %s@." file;
        {
          manifest with
          Obs.Manifest.gauges =
            List.sort
              (fun (a, _) (b, _) -> String.compare a b)
              (manifest.Obs.Manifest.gauges @ Obs.Timeline.duration_gauges ());
        }
      with Sys_error msg ->
        Format.eprintf "cannot write timeline trace: %s@." msg;
        exit 1)

let emit_stats ~stats ~stats_json manifest =
  if stats then print_string (Harness.Stats.render manifest);
  match stats_json with
  | Some file -> (
      try
        Obs.Manifest.save file manifest;
        Format.printf "wrote run manifest to %s@." file
      with Sys_error msg ->
        Format.eprintf "cannot write run manifest: %s@." msg;
        exit 1)
  | None -> ()

let classify_races entry races =
  List.iter
    (fun race ->
      let cls =
        Pmapps.Ground_truth.classify ~bugs:entry.Pmapps.Registry.bugs
          ~benign:entry.Pmapps.Registry.benign race
      in
      Format.printf "[%a] %a@.@." Pmapps.Ground_truth.pp_classification cls
        Hawkset.Report.pp_race race)
    (Hawkset.Report.sorted races)

let run_cmd =
  let run () app ops seed detector no_irh eadr jobs json stats stats_json
      trace_out event_budget allow_truncated =
    match Pmapps.Registry.find app with
    | None ->
        Format.eprintf "unknown application %S (try list-apps)@." app;
        exit 1
    | Some entry -> (
        start_timeline trace_out;
        let ops = Pmapps.Registry.clamp_ops entry ops in
        let labels detector =
          Harness.Stats.base_labels ~app:entry.Pmapps.Registry.reg_name
            ~detector ~seed ~ops
        in
        match detector with
        | `Pmrace ->
            (* Observation-based detection needs delay injection and the
               runtime monitor; reports are direct observations. *)
            Obs.Registry.reset Obs.Registry.global;
            let report, peak_mb =
              Harness.Metrics.with_live_mb (fun () ->
                  Obs.Registry.with_span "run" (fun () ->
                      Obs.Registry.with_span "execute" (fun () ->
                          entry.Pmapps.Registry.run ~seed
                            ~policy:
                              (Machine.Sched.Delay_injection
                                 { probability = 0.05; duration = 40 })
                            ~observe:true ~ops ())))
            in
            Format.printf "%d directly-observed inconsistencies:@."
              (List.length report.Machine.Sched.observations);
            List.iter
              (fun (o : Machine.Sched.observation) ->
                Format.printf "  store %a / load %a@." Trace.Site.pp
                  o.Machine.Sched.obs_store_site Trace.Site.pp
                  o.Machine.Sched.obs_load_site)
              report.Machine.Sched.observations;
            emit_stats ~stats ~stats_json
              (finish_timeline trace_out
                 (Obs.Manifest.of_registry ~labels:(labels "pmrace")
                    ~extra_gauges:
                      [
                        ("peak_live_mb", peak_mb);
                        ("final_live_mb", Harness.Metrics.final_live_mb ());
                      ]
                    Obs.Registry.global))
        | `Hawkset ->
            let config =
              { Hawkset.Pipeline.default with irh = not no_irh; eadr; jobs;
                event_budget }
            in
            let r = Harness.Stats.instrumented_run ~config ~entry ~seed ~ops () in
            let races = r.Harness.Stats.pipeline.Hawkset.Pipeline.races in
            if json then print_endline (Hawkset.Report.to_json races)
            else begin
              Format.printf "trace: %d events; %d race reports@.@."
                (Trace.Tracebuf.length
                   r.Harness.Stats.sched_report.Machine.Sched.trace)
                (Hawkset.Report.count races);
              classify_races entry races
            end;
            emit_stats ~stats ~stats_json
              (finish_timeline trace_out r.Harness.Stats.manifest);
            check_truncated ~allow:allow_truncated
              r.Harness.Stats.pipeline.Hawkset.Pipeline.truncated
        | `Eraser ->
            Obs.Registry.reset Obs.Registry.global;
            let (report, races), peak_mb =
              Harness.Metrics.with_live_mb (fun () ->
                  Obs.Registry.with_span "run" (fun () ->
                      let report =
                        Obs.Registry.with_span "execute" (fun () ->
                            entry.Pmapps.Registry.run ~seed ~ops ())
                      in
                      let races =
                        Obs.Registry.with_span "analyse" (fun () ->
                            Baselines.Eraser.analyse
                              report.Machine.Sched.trace)
                      in
                      (report, races)))
            in
            if json then print_endline (Hawkset.Report.to_json races)
            else begin
              Format.printf "trace: %d events; %d race reports@.@."
                (Trace.Tracebuf.length report.Machine.Sched.trace)
                (Hawkset.Report.count races);
              classify_races entry races
            end;
            emit_stats ~stats ~stats_json
              (finish_timeline trace_out
                 (Obs.Manifest.of_registry ~labels:(labels "eraser")
                    ~extra_gauges:
                      [
                        ("peak_live_mb", peak_mb);
                        ("final_live_mb", Harness.Metrics.final_live_mb ());
                      ]
                    Obs.Registry.global)))
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run one application under a detector.")
    Term.(const run $ logging_term $ app_arg $ ops_arg 1000 $ seed_arg
          $ detector_arg $ no_irh_arg $ eadr_arg $ jobs_arg $ json_arg
          $ stats_arg $ stats_json_arg $ trace_out_arg $ event_budget_arg
          $ allow_truncated_arg)

let list_cmd =
  let list () =
    print_string
      (Harness.Tables.render
         ~headers:[ "Application"; "Synchronization"; "Config file needed";
                    "Known bugs" ]
         ~rows:
           (List.map
              (fun e ->
                [
                  e.Pmapps.Registry.reg_name;
                  e.Pmapps.Registry.sync_method;
                  (if e.Pmapps.Registry.needs_sync_config then "yes" else "no");
                  string_of_int (List.length e.Pmapps.Registry.bugs);
                ])
              Pmapps.Registry.all))
  in
  Cmd.v
    (Cmd.info "list-apps" ~doc:"List the registered PM applications.")
    Term.(const list $ const ())

let trace_cmd =
  let go app ops seed out =
    match Pmapps.Registry.find app with
    | None ->
        Format.eprintf "unknown application %S (try list-apps)@." app;
        exit 1
    | Some entry ->
        let ops = Pmapps.Registry.clamp_ops entry ops in
        let report = entry.Pmapps.Registry.run ~seed ~ops () in
        Trace.Trace_io.save out report.Machine.Sched.trace;
        Format.printf "wrote %d events to %s@."
          (Trace.Tracebuf.length report.Machine.Sched.trace)
          out
  in
  let out =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Trace output file.")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Run an application and save its event trace for offline analysis.")
    Term.(const go $ app_arg $ ops_arg 1000 $ seed_arg $ out)

let analyze_cmd =
  let go () file tolerant no_irh eadr jobs eraser json stats stats_json
      trace_out event_budget allow_truncated =
    start_timeline trace_out;
    let trace =
      if not tolerant then load_trace file
      else begin
        let t = Trace.Trace_io.load_tolerant file in
        Format.eprintf "%s: salvaged %d events (%d lines dropped%s; checksum %s)@."
          file t.Trace.Trace_io.salvaged_events t.Trace.Trace_io.dropped_lines
          (match t.Trace.Trace_io.first_error with
          | Some (line, msg) ->
              Printf.sprintf "; first error at line %d: %s" line msg
          | None -> "")
          (match t.Trace.Trace_io.checksum with
          | `Verified -> "verified"
          | `Mismatch -> "MISMATCH"
          | `Absent -> "absent");
        t.Trace.Trace_io.salvaged
      end
    in
    let labels detector =
      [ ("trace", file); ("detector", detector);
        ("events", string_of_int (Trace.Tracebuf.length trace)) ]
      @ (if detector = "hawkset" then [ ("jobs", string_of_int jobs) ] else [])
    in
    let races, manifest, truncated =
      if eraser then begin
        Obs.Registry.reset Obs.Registry.global;
        let races, peak_mb =
          Harness.Metrics.with_live_mb (fun () ->
              Obs.Registry.with_span "analyse" (fun () ->
                  Baselines.Eraser.analyse trace))
        in
        ( races,
          Obs.Manifest.of_registry ~labels:(labels "eraser")
            ~extra_gauges:
              [
                ("peak_live_mb", peak_mb);
                ("final_live_mb", Harness.Metrics.final_live_mb ());
              ]
            Obs.Registry.global,
          [] )
      end
      else
        let config =
          { Hawkset.Pipeline.default with irh = not no_irh; eadr; jobs;
            event_budget }
        in
        let res, peak_mb =
          Harness.Metrics.with_live_mb (fun () ->
              Hawkset.Pipeline.run ~config trace)
        in
        if stats then
          Format.printf "collector: %a@.@." Hawkset.Collector.pp_stats
            res.Hawkset.Pipeline.collector_stats;
        ( res.Hawkset.Pipeline.races,
          Harness.Stats.manifest_of_pipeline ~labels:(labels "hawkset")
            ~extra_gauges:
              [
                ("peak_live_mb", peak_mb);
                ("final_live_mb", Harness.Metrics.final_live_mb ());
              ]
            res,
          res.Hawkset.Pipeline.truncated )
    in
    if json then print_endline (Hawkset.Report.to_json races)
    else begin
      Format.printf "trace: %d events (%a)@.@."
        (Trace.Tracebuf.length trace)
        Trace.Tracebuf.pp_stats
        (Trace.Tracebuf.stats trace);
      Format.printf "%a@." Hawkset.Report.pp races
    end;
    emit_stats ~stats ~stats_json (finish_timeline trace_out manifest);
    check_truncated ~allow:allow_truncated truncated
  in
  let file =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"TRACE" ~doc:"Trace file produced by $(b,trace).")
  in
  let eadr =
    Arg.(
      value & flag
      & info [ "eadr" ]
          ~doc:"Assume eADR hardware (persistent cache): nothing can race.")
  in
  let eraser =
    Arg.(
      value & flag
      & info [ "eraser" ] ~doc:"Use the traditional lockset baseline.")
  in
  let tolerant =
    Arg.(
      value & flag
      & info [ "tolerant" ]
          ~doc:
            "Salvage a damaged trace instead of failing: analyse the longest \
             valid prefix and report (on stderr) how many lines were dropped, \
             where the first error was and whether the checksum trailer \
             verified.")
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Analyse a saved trace — the application-agnostic offline workflow:           the analyser knows nothing about what produced the events.")
    Term.(const go $ logging_term $ file $ tolerant $ no_irh_arg $ eadr
          $ jobs_arg $ eraser $ json_arg $ stats_arg $ stats_json_arg
          $ trace_out_arg $ event_budget_arg $ allow_truncated_arg)

let explain_cmd =
  let go () app ops seed no_irh eadr jobs json =
    match Pmapps.Registry.find app with
    | None ->
        Format.eprintf "unknown application %S (try list-apps)@." app;
        exit 1
    | Some entry ->
        let ops = Pmapps.Registry.clamp_ops entry ops in
        let report = entry.Pmapps.Registry.run ~seed ~ops () in
        let config =
          { Hawkset.Pipeline.default with irh = not no_irh; eadr; jobs }
        in
        let races =
          Hawkset.Pipeline.races ~config report.Machine.Sched.trace
        in
        if json then print_endline (Hawkset.Report.to_json races)
        else begin
          Format.printf "%d race report%s@.@." (Hawkset.Report.count races)
            (if Hawkset.Report.count races = 1 then "" else "s");
          List.iter
            (fun (race : Hawkset.Report.race) ->
              Format.printf "%a@." Hawkset.Report.pp_race race;
              (match race.Hawkset.Report.witness with
              | Some w -> Format.printf "%a@." Hawkset.Report.pp_witness w
              | None -> Format.printf "(no witness recorded)@.");
              Format.printf "@.")
            (Hawkset.Report.sorted races)
        end
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Run the detector and print each report's provenance: the \
          witnessing store/load sites with their locksets (store, \
          effective, load) and vector clocks (store, window end, load) — \
          the exact evidence the analysis used to flag the pair.")
    Term.(const go $ logging_term $ app_arg $ ops_arg 1000 $ seed_arg
          $ no_irh_arg $ eadr_arg $ jobs_arg $ json_arg)

let bugs_cmd =
  let go () =
    List.iter
      (fun (e : Pmapps.Registry.entry) ->
        List.iter
          (fun (b : Pmapps.Ground_truth.bug) ->
            Format.printf "#%-2d %-15s %-4s %-34s stores: %s@.%33s loads:  %s@."
              b.Pmapps.Ground_truth.gt_id e.Pmapps.Registry.reg_name
              (if b.Pmapps.Ground_truth.gt_new then "NEW" else "")
              b.Pmapps.Ground_truth.gt_desc
              (String.concat ", " b.Pmapps.Ground_truth.gt_store_locs)
              ""
              (String.concat ", " b.Pmapps.Ground_truth.gt_load_locs))
          e.Pmapps.Registry.bugs)
      Pmapps.Registry.all
  in
  Cmd.v
    (Cmd.info "bugs"
       ~doc:"Print the ground-truth bug registry (the Table 2 rows).")
    Term.(const go $ const ())

let table2_cmd =
  let go small =
    let sizes = if small then [ 1000; 6000 ] else [ 1000; 10_000; 100_000 ] in
    print_string (Harness.Table2.to_string (Harness.Table2.run ~sizes ()))
  in
  let small =
    Arg.(value & flag & info [ "small" ] ~doc:"Scaled-down workloads.")
  in
  Cmd.v (Cmd.info "table2" ~doc:"Regenerate Table 2.") Term.(const go $ small)

let table3_cmd =
  let go seeds executions =
    print_string
      (Harness.Table3.to_string
         (Harness.Table3.run ~seeds ~pmrace_executions:executions ()))
  in
  let seeds =
    Arg.(value & opt int 24 & info [ "seeds" ] ~doc:"Seed workloads (paper: 240).")
  in
  let executions =
    Arg.(
      value & opt int 12
      & info [ "pmrace-executions" ]
          ~doc:"Fuzzing executions per seed for the PMRace baseline.")
  in
  Cmd.v (Cmd.info "table3" ~doc:"Regenerate Table 3.")
    Term.(const go $ seeds $ executions)

let table4_cmd =
  let go ops =
    print_string (Harness.Table4.to_string (Harness.Table4.run ~ops ()))
  in
  Cmd.v (Cmd.info "table4" ~doc:"Regenerate Table 4.")
    Term.(const go $ ops_arg 2000)

let figure6_cmd =
  let go small =
    let sizes = if small then [ 250; 1000; 4000 ] else [ 1000; 10_000; 100_000 ] in
    let r = Harness.Figure6.run ~sizes () in
    print_string (Harness.Figure6.to_string r)
  in
  let small =
    Arg.(value & flag & info [ "small" ] ~doc:"Scaled-down workloads.")
  in
  Cmd.v (Cmd.info "figure6" ~doc:"Regenerate Figure 6's series.")
    Term.(const go $ small)

let crash_sweep_cmd =
  let go () apps seed ops threads stride max_points no_fences no_attribute
      verify_budget dump_traces details stats stats_json trace_out =
    start_timeline trace_out;
    let config =
      {
        Crashtest.c_seed = seed;
        c_ops = ops;
        c_threads = threads;
        c_stride = stride;
        c_max_points = max_points;
        c_fence_points = not no_fences;
        c_attribute = not no_attribute;
        c_verify_budget = verify_budget;
        c_dump_dir = dump_traces;
      }
    in
    let rows = Harness.Crash_sweep.run ~config ~apps () in
    if rows = [] then begin
      Format.eprintf "no crash-sweep runner matched (try list-apps)@.";
      exit 1
    end;
    print_string (Harness.Crash_sweep.to_string rows);
    if details then
      List.iter
        (fun row -> print_string (Harness.Crash_sweep.details_string row))
        rows;
    emit_stats ~stats ~stats_json
      (finish_timeline trace_out (Harness.Crash_sweep.manifest_of_sweeps rows))
  in
  let apps =
    Arg.(
      value & opt_all string []
      & info [ "a"; "app" ] ~docv:"APP"
          ~doc:
            "Application to sweep (repeatable). Default: every application \
             with a recovery entry point (all but Apex).")
  in
  let threads =
    Arg.(
      value & opt int Crashtest.default_config.Crashtest.c_threads
      & info [ "threads" ] ~docv:"N" ~doc:"Worker threads in the workload.")
  in
  let stride =
    Arg.(
      value & opt int Crashtest.default_config.Crashtest.c_stride
      & info [ "stride" ] ~docv:"N"
          ~doc:"Scheduler-event stride between stride-family crash points.")
  in
  let max_points =
    Arg.(
      value & opt int Crashtest.default_config.Crashtest.c_max_points
      & info [ "max-points" ] ~docv:"N"
          ~doc:"Cap per crash-point family (fence points, stride points).")
  in
  let no_fences =
    Arg.(
      value & flag
      & info [ "no-fence-points" ]
          ~doc:"Skip the fence-boundary crash-point family.")
  in
  let no_attribute =
    Arg.(
      value & flag
      & info [ "no-attribute" ]
          ~doc:
            "Skip running the detector on each damaged prefix (faster; the \
             sweep then reports damage without ground-truth attribution).")
  in
  let verify_budget =
    Arg.(
      value & opt int Crashtest.default_config.Crashtest.c_verify_budget
      & info [ "verify-budget" ] ~docv:"N"
          ~doc:
            "Event budget for each recovery run; a recovery that exceeds it \
             counts as a recovery failure instead of hanging the sweep.")
  in
  let dump_traces =
    Arg.(
      value
      & opt (some string) None
      & info [ "dump-traces" ] ~docv:"DIR"
          ~doc:
            "Dump the crashed prefix trace of damaged or failed points \
             (checksummed, replayable with $(b,analyze); capped at two per \
             application) into $(docv).")
  in
  let details =
    Arg.(
      value & flag
      & info [ "details" ] ~doc:"Print the per-point outcome table per app.")
  in
  Cmd.v
    (Cmd.info "crash-sweep"
       ~doc:
         "Fault injection: cut each application at fence boundaries and \
          event strides, recover the worst-case persistent image and check \
          what acknowledged work survived.")
    Term.(const go $ logging_term $ apps $ seed_arg $ ops_arg 400 $ threads
          $ stride $ max_points $ no_fences $ no_attribute $ verify_budget
          $ dump_traces $ details $ stats_arg $ stats_json_arg
          $ trace_out_arg)

(* Load-or-create the persistent result cache, hand it to [f], then save
   it back and print one grep-friendly summary line (the CI cache smoke
   asserts on it). [None] path: no cache at all. *)
let with_result_cache path f =
  match path with
  | None -> f None
  | Some file ->
      let c = Hawkset.Result_cache.load file in
      let r = f (Some c) in
      Hawkset.Result_cache.save c file;
      let s = Hawkset.Result_cache.stats c in
      let get k = try List.assoc k s with Not_found -> 0 in
      Format.printf "cache: hits=%d misses=%d entries=%d bytes=%d file=%s@."
        (get "cache.hits") (get "cache.misses") (get "cache.entries")
        (get "cache.bytes") file;
      r

let cache_arg cmd =
  Arg.(
    value
    & opt (some string) None
    & info [ "cache" ] ~docv:"FILE"
        ~doc:
          (Printf.sprintf
             "Fingerprint-keyed result cache: within the run, a trace whose \
              fingerprint was already analysed (same analysis config) skips \
              stage 2+3 and reuses the recorded report; across runs the \
              cache is persisted to $(docv) (checksummed journal format; a \
              missing file starts empty, a damaged tail is salvaged). %s \
              results are unchanged — caveat: a hit substitutes a complete \
              result even where per-attempt deadlines would have truncated \
              one."
             cmd))

let explore_cmd =
  let go () apps schedules policy depth jobs seed ops trace_out cache_file
      stats stats_json =
    let policy =
      match Explore.policy_kind_of_string policy with
      | Ok p -> p
      | Error msg ->
          Format.eprintf "explore: %s@." msg;
          exit 1
    in
    let ts =
      with_result_cache cache_file (fun cache ->
          let config =
            {
              Explore.schedules;
              policy;
              depth;
              jobs;
              seed;
              ops;
              dump_dir = trace_out;
              cache;
            }
          in
          Harness.Explore_sweep.run ~config ~apps ())
    in
    if ts = [] then begin
      Format.eprintf "explore: no application matched (try list-apps)@.";
      exit 1
    end;
    print_string (Harness.Explore_sweep.to_string ts);
    print_string (Harness.Explore_sweep.bug_table_string ts);
    let diverged = Harness.Explore_sweep.divergences_string ts in
    if diverged <> "" then print_string diverged;
    emit_stats ~stats ~stats_json (Harness.Explore_sweep.manifest ts);
    if not (Harness.Explore_sweep.stable ts) then exit 1
  in
  let apps =
    Arg.(
      value & opt_all string []
      & info [ "a"; "app" ] ~docv:"APP"
          ~doc:"Application to explore (repeatable). Default: all of them.")
  in
  let schedules =
    Arg.(
      value & opt int Explore.default_config.Explore.schedules
      & info [ "schedules" ] ~docv:"N" ~doc:"Schedules to explore per app.")
  in
  let policy =
    Arg.(
      value & opt string "all"
      & info [ "policy" ] ~docv:"POLICY"
          ~doc:
            "Scheduler policy family: $(b,random), $(b,round-robin), \
             $(b,delay), $(b,pct) or $(b,all) (round-robin once, then a \
             cycle of the randomized families).")
  in
  let depth =
    Arg.(
      value & opt int Explore.default_config.Explore.depth
      & info [ "depth" ] ~docv:"D"
          ~doc:"PCT preemption depth (priority change points per schedule).")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "j"; "jobs"; "job-workers" ] ~docv:"N"
          ~doc:
            "Worker domains exploring schedules in parallel. Results and \
             deterministic counters are identical for every $(docv).")
  in
  let explore_trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"DIR"
          ~doc:
            "On an oracle violation, dump the reference and divergent \
             traces (checksummed, replayable with $(b,analyze)) into \
             $(docv).")
  in
  Cmd.v
    (Cmd.info "explore"
       ~doc:
         "Sweep scheduler policies and seeds, run the detector once per \
          schedule and check the interleaving-stability oracle: every \
          directly-observed inconsistency must already be in that \
          schedule's lockset report, and identical traces must yield \
          identical reports. Exits 1 on any violation.")
    Term.(const go $ logging_term $ apps $ schedules $ policy $ depth $ jobs
          $ seed_arg $ ops_arg Explore.default_config.Explore.ops
          $ explore_trace_out $ cache_arg "Exploration" $ stats_arg
          $ stats_json_arg)

let batch_cmd =
  let go () apps seed nseeds policies ops jobs job_workers attempts backoff_ms
      breaker deadline_s max_heap_mb faults journal resume kill_after
      cache_file out json stats stats_json =
    if resume && journal = None then begin
      Format.eprintf "batch: --resume needs --journal FILE@.";
      exit 1
    end;
    let apps =
      if apps <> [] then apps
      else List.map (fun e -> e.Pmapps.Registry.reg_name) Pmapps.Registry.all
    in
    let seeds = List.init (max 1 nseeds) (fun i -> seed + i) in
    let policies = if policies = [] then [ "round-robin" ] else policies in
    let faults =
      List.map
        (fun s ->
          match Supervise.fault_of_string s with
          | Ok f -> f
          | Error msg ->
              Format.eprintf "batch: %s@." msg;
              exit 1)
        faults
    in
    let config =
      {
        Supervise.default_config with
        Supervise.attempts;
        backoff_ms;
        breaker_threshold = breaker;
        pipeline_jobs = jobs;
        job_workers = max 1 job_workers;
        deadline_s;
        max_heap_mb;
        faults;
        stop_after = kill_after;
      }
    in
    match Supervise.jobs_of ~apps ~seeds ~policies ~ops with
    | Error msg ->
        Format.eprintf "batch: %s@." msg;
        exit 1
    | Ok declared -> (
        Obs.Registry.reset Obs.Registry.global;
        let b =
          try
            with_result_cache cache_file (fun cache ->
                Supervise.run ?journal ~resume ?cache ~config declared)
          with
          | Supervise.Resume_mismatch { expected; found } ->
              Format.eprintf
                "batch: journal records a different batch declaration \
                 (journal %s, declared %s); rerun without --resume to start \
                 over@."
                (Option.value found ~default:"<no batch record>")
                expected;
              exit 1
          | Invalid_argument msg ->
              Format.eprintf "batch: %s@." msg;
              exit 1
        in
        (match out with
        | Some file -> (
            try
              let oc = open_out file in
              Fun.protect
                ~finally:(fun () -> close_out oc)
                (fun () ->
                  output_string oc (Supervise.merged_json b);
                  output_char oc '\n');
              Format.printf "wrote merged batch report to %s@." file
            with Sys_error msg ->
              Format.eprintf "cannot write merged batch report: %s@." msg;
              exit 1)
        | None -> ());
        if json then print_endline (Supervise.merged_json b)
        else begin
          print_string (Harness.Batch.degradation_table b);
          print_endline (Harness.Batch.summary_line b)
        end;
        emit_stats ~stats ~stats_json (Supervise.manifest b);
        if b.Supervise.b_interrupted then begin
          Format.eprintf
            "batch: stopped by --kill-after with jobs remaining; resume with \
             --journal %s --resume@."
            (Option.value journal ~default:"FILE");
          exit 10
        end;
        if Harness.Batch.failed b then exit 3)
  in
  let apps =
    Arg.(
      value & opt_all string []
      & info [ "a"; "app" ] ~docv:"APP"
          ~doc:"Application to include (repeatable). Default: all of them.")
  in
  let nseeds =
    Arg.(
      value & opt int 1
      & info [ "seeds" ] ~docv:"N"
          ~doc:"Consecutive seeds per app starting at $(b,--seed).")
  in
  let policies =
    Arg.(
      value & opt_all string []
      & info [ "policy" ] ~docv:"POLICY"
          ~doc:
            "Scheduler policy per job (repeatable): $(b,round-robin), \
             $(b,random), $(b,delay) or $(b,pct). Default: round-robin.")
  in
  let attempts =
    Arg.(
      value & opt int Supervise.default_config.Supervise.attempts
      & info [ "attempts" ] ~docv:"N" ~doc:"Max attempts per job.")
  in
  let backoff_ms =
    Arg.(
      value & opt int 0
      & info [ "backoff-ms" ] ~docv:"MS"
          ~doc:
            "Base retry backoff; attempt $(i,k) waits $(docv)*2^(k-1) plus \
             seeded jitter. 0 (the default) retries immediately.")
  in
  let breaker =
    Arg.(
      value & opt int Supervise.default_config.Supervise.breaker_threshold
      & info [ "breaker" ] ~docv:"N"
          ~doc:
            "Circuit breaker: consecutive exhausted jobs of one application \
             before its remaining jobs are quarantined.")
  in
  let deadline_s =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline-s" ] ~docv:"SECONDS"
          ~doc:"Per-attempt wall-clock budget (also the pipeline's \
                cooperative stage deadline).")
  in
  let max_heap_mb =
    Arg.(
      value
      & opt (some float) None
      & info [ "max-heap-mb" ] ~docv:"MB"
          ~doc:"Per-attempt live-heap budget, enforced via a GC alarm.")
  in
  let faults =
    Arg.(
      value & opt_all string []
      & info [ "inject" ] ~docv:"JOB:CLASS[:COUNT]"
          ~doc:
            "Chaos testing: make the first COUNT attempts (default 1) of job \
             JOB fail with CLASS ($(b,timeout), $(b,oom), \
             $(b,corrupt-trace), $(b,pipeline-exn) or $(b,worker-lost)). \
             Repeatable.")
  in
  let journal =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal" ] ~docv:"FILE"
          ~doc:
            "Append-only checksummed job journal: every attempt and every \
             completed job's report bytes are recorded durably as the batch \
             runs.")
  in
  let resume =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:
            "Resume from $(b,--journal): jobs already terminal replay their \
             recorded report bytes verbatim, partially-attempted jobs \
             continue from their next attempt. The merged report is \
             byte-identical to an uninterrupted run.")
  in
  let kill_after =
    Arg.(
      value
      & opt (some int) None
      & info [ "kill-after" ] ~docv:"N"
          ~doc:
            "Chaos testing: stop the batch after $(docv) jobs reach a \
             terminal state and exit 10, leaving the journal behind for \
             $(b,--resume).")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE"
          ~doc:"Write the merged batch report JSON to $(docv).")
  in
  let job_workers =
    Arg.(
      value & opt int 1
      & info [ "job-workers" ] ~docv:"N"
          ~doc:
            "Jobs in flight at once: per-application job chains run \
             concurrently on the domain pool, with each job's stage-3 \
             analysis forced sequential so total domains stay bounded by \
             $(docv). The merged report is byte-identical to $(docv)=1 — \
             only wall-clock time changes. Journal records are appended \
             per completed job (replay stays keyed by job id, so \
             $(b,--resume) is unaffected).")
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:
         "Run a declared job set (apps \u{00d7} seeds \u{00d7} policies) \
          under supervision: per-attempt deadlines and heap budgets, a \
          five-class failure taxonomy, deterministic retry with exponential \
          backoff, a per-application circuit breaker, and a durable journal \
          that makes a killed batch resumable with a byte-identical merged \
          report. Exits 3 if any job failed or was quarantined, 10 when \
          stopped by $(b,--kill-after).")
    Term.(const go $ logging_term $ apps $ seed_arg $ nseeds $ policies
          $ ops_arg 400 $ jobs_arg $ job_workers $ attempts $ backoff_ms
          $ breaker $ deadline_s $ max_heap_mb $ faults $ journal $ resume
          $ kill_after $ cache_arg "Batch" $ out $ json_arg $ stats_arg
          $ stats_json_arg)

let ablation_cmd =
  let go ops =
    print_string (Harness.Ablation.to_string (Harness.Ablation.run ~ops ()))
  in
  Cmd.v
    (Cmd.info "ablation" ~doc:"Design-choice ablation study.")
    Term.(const go $ ops_arg 1500)

let check_cmd =
  let pp_divergence d =
    Format.printf "  variant:  %s@." d.Check.Conformance.d_variant;
    (match d.Check.Conformance.d_kind with
    | `Crash ->
        Format.printf "  crashed:  %s@." d.Check.Conformance.d_actual
    | `Report ->
        Format.printf "  expected: %s@." d.Check.Conformance.d_expected;
        Format.printf "  actual:   %s@." d.Check.Conformance.d_actual)
  in
  let fuzz_mode ~traces ~max_events ~seed ~minimize ~fixtures =
    let r = Check.Conformance.fuzz ~traces ~max_events ~seed () in
    Format.printf
      "conformance: %d traces (%d events), %d comparisons, %d divergent@."
      r.Check.Conformance.fz_traces r.Check.Conformance.fz_events
      r.Check.Conformance.fz_comparisons
      (List.length r.Check.Conformance.fz_failures);
    List.iter
      (fun (s, t, d) ->
        Format.printf "@.DIVERGENCE at seed %d (%d events):@." s
          (Trace.Tracebuf.length t);
        pp_divergence d;
        if minimize then begin
          let m = Check.Conformance.minimize t in
          let path =
            Check.Conformance.save_fixture ~dir:fixtures
              ~name:(Printf.sprintf "check-seed%d" s)
              m
          in
          Format.printf "  minimized to %d events -> %s@."
            (Trace.Tracebuf.length m) path
        end)
      r.Check.Conformance.fz_failures;
    r.Check.Conformance.fz_failures = []
  in
  let mutate_mode ~traces ~max_events ~seed ~minimize ~fixtures ~max_minimized
      faults =
    Format.printf "%-28s %-10s %-8s %-7s %-9s %s@." "fault" "layer" "caught"
      "events" "minimized" "clean";
    List.fold_left
      (fun ok fault ->
        let h = Check.Conformance.hunt ~traces ~max_events ~seed fault in
        let caught, events, minimized, clean, this_ok =
          match h.Check.Conformance.h_caught_seed with
          | None -> ("MISSED", "-", "-", "-", false)
          | Some s ->
              let m = Option.get h.Check.Conformance.h_minimized in
              let n = Trace.Tracebuf.length m in
              if minimize then
                ignore
                  (Check.Conformance.save_fixture ~dir:fixtures
                     ~name:
                       ("mutate-" ^ Hawkset.Fault.name fault)
                     m
                    : string);
              let clean = h.Check.Conformance.h_clean_without_fault in
              ( Printf.sprintf "s=%d" s,
                string_of_int h.Check.Conformance.h_original_events,
                string_of_int n,
                (if clean then "yes" else "NO"),
                n <= max_minimized && clean )
        in
        Format.printf "%-28s %-10s %-8s %-7s %-9s %s@."
          (Hawkset.Fault.name fault)
          (Hawkset.Fault.layer fault)
          caught events minimized clean;
        (match h.Check.Conformance.h_divergence with
        | Some d when not this_ok -> pp_divergence d
        | Some _ | None -> ());
        ok && this_ok)
      true faults
  in
  let go () traces max_events seed mutate no_minimize fixtures max_minimized
      stats stats_json trace_out =
    start_timeline trace_out;
    let minimize = not no_minimize in
    Obs.Registry.reset Obs.Registry.global;
    let ok =
      match mutate with
      | [] -> fuzz_mode ~traces ~max_events ~seed ~minimize ~fixtures
      | faults ->
          mutate_mode ~traces ~max_events ~seed ~minimize ~fixtures
            ~max_minimized faults
    in
    let labels =
      [ ("mode", if mutate = [] then "fuzz" else "mutate");
        ("traces", string_of_int traces);
        ("max_events", string_of_int max_events);
        ("seed", string_of_int seed) ]
    in
    emit_stats ~stats ~stats_json
      (finish_timeline trace_out
         (Obs.Manifest.of_registry ~labels Obs.Registry.global));
    if not ok then exit 1
  in
  let traces =
    Arg.(
      value & opt int 1000
      & info [ "traces" ] ~docv:"N"
          ~doc:"Generated traces per fuzzing run (per fault in --mutate).")
  in
  let max_events =
    Arg.(
      value & opt int 64
      & info [ "max-events" ] ~docv:"N"
          ~doc:"Maximum events per generated trace.")
  in
  let mutate =
    let all_names =
      String.concat ", " (List.map Hawkset.Fault.name Hawkset.Fault.all)
    in
    Arg.(
      value & opt_all string []
      & info [ "mutate" ] ~docv:"FAULT"
          ~doc:
            (Printf.sprintf
               "Self-test: arm the named kernel fault and assert the fuzzer \
                catches and minimizes it (repeatable; $(b,all) arms every \
                fault in turn). Faults: %s."
               all_names))
  in
  let no_minimize =
    Arg.(
      value & flag
      & info [ "no-minimize" ]
          ~doc:
            "Report divergences without delta-debugging them down to \
             minimal reproducers (skips fixture writing too).")
  in
  let fixtures =
    Arg.(
      value
      & opt string "test/fixtures"
      & info [ "fixtures" ] ~docv:"DIR"
          ~doc:"Directory minimized reproducers are written to.")
  in
  let max_minimized =
    Arg.(
      value & opt int 30
      & info [ "max-minimized" ] ~docv:"N"
          ~doc:
            "Fail --mutate when a minimized reproducer exceeds $(docv) \
             events.")
  in
  let mutate_resolved =
    let resolve names =
      List.concat_map
        (fun s ->
          if s = "all" then Hawkset.Fault.all
          else
            match Hawkset.Fault.of_name s with
            | Ok f -> [ f ]
            | Error msg ->
                Format.eprintf "hawkset check: %s@." msg;
                exit 2)
        names
    in
    Term.(const resolve $ mutate)
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Differential conformance fuzzing: generate synthetic traces and \
          assert the production pipeline's reports are byte-identical to \
          the naive executable specification across the full configuration \
          matrix (jobs, memo and dedup implementations, result cache, \
          event budgets). Divergent traces are delta-debugged to minimal \
          reproducers. With $(b,--mutate), seeded kernel faults prove the \
          oracle catches real divergences. Exits 1 on any divergence or \
          uncaught fault.")
    Term.(const go $ logging_term $ traces $ max_events $ seed_arg
          $ mutate_resolved $ no_minimize $ fixtures $ max_minimized
          $ stats_arg $ stats_json_arg $ trace_out_arg)

let () =
  let info =
    Cmd.info "hawkset" ~version:"1.0.0"
      ~doc:
        "Automatic, application-agnostic and efficient concurrent PM bug \
         detection (EuroSys'25 reproduction)."
  in
  let group =
    Cmd.group info
      [ run_cmd; batch_cmd; check_cmd; list_cmd; bugs_cmd; explain_cmd;
        trace_cmd; analyze_cmd; explore_cmd; crash_sweep_cmd; table2_cmd;
        table3_cmd; table4_cmd; figure6_cmd; ablation_cmd ]
  in
  (* [~catch:false] so damaged inputs reach this handler: a bad trace file
     is an input problem (exit 2, one-line diagnostic), not a crash. *)
  match Cmd.eval ~catch:false group with
  | code -> exit code
  | exception Trace_error (file, line, msg) ->
      Format.eprintf "hawkset: %s:%d: %s@." file line msg;
      exit 2
  | exception Trace.Trace_io.Parse_error (line, msg) ->
      Format.eprintf "hawkset: trace parse error at line %d: %s@." line msg;
      exit 2
  | exception Sys_error msg ->
      Format.eprintf "hawkset: %s@." msg;
      exit 2
