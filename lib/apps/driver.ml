module S = Machine.Sched

let apply (type a) (module App : App_intf.KV with type t = a) (t : a) ctx op =
  match op with
  | Workload.Op.Insert (key, value) -> App.insert t ctx ~key ~value
  | Workload.Op.Update (key, value) -> App.update t ctx ~key ~value
  | Workload.Op.Get key -> ignore (App.get t ctx ~key)
  | Workload.Op.Delete key -> App.delete t ctx ~key

let run_kv (module App : App_intf.KV) ?(seed = 0) ?sched_seed ?policy ?observe
    ?(heap_mb = 64) ?crash_after_events ~load ~per_thread () =
  let heap = Pmem.Heap.create ~size:(heap_mb * 1024 * 1024) () in
  let nthreads = max 1 (Array.length per_thread) in
  (* The scheduler seed defaults to the workload seed; passing it
     separately explores different interleavings of the same operations
     (the stability-oracle axis in {!Explore}). *)
  let sched_seed = Option.value ~default:seed sched_seed in
  S.run ~seed:sched_seed ?policy ~sync_config:App.sync_config
    ?crash_after_events
    ?observe ~heap (fun ctx ->
      let t = App.create ctx in
      (* The load phase runs on the same worker threads as the main phase
         (the paper's experiments are fully concurrent): structural
         operations — splits, rehashes, expansions — happen under
         contention from the start. *)
      let load_slices = Array.make nthreads [] in
      List.iteri
        (fun i op ->
          let k = i mod nthreads in
          load_slices.(k) <- op :: load_slices.(k))
        load;
      let loaders =
        Array.to_list
          (Array.map
             (fun ops ->
               S.spawn ctx (fun ctx' ->
                   List.iter (apply (module App) t ctx') (List.rev ops)))
             load_slices)
      in
      List.iter (S.join ctx) loaders;
      let workers =
        Array.to_list
          (Array.map
             (fun ops ->
               S.spawn ctx (fun ctx' ->
                   List.iter (apply (module App) t ctx') ops))
             per_thread)
      in
      List.iter (S.join ctx) workers)

let run_kv_ycsb (module App : App_intf.KV) ?(seed = 0) ?sched_seed
    ?(threads = 8) ?policy ?observe ~ops () =
  let spec = { (Workload.Ycsb.paper_mix ~ops) with threads } in
  let w = Workload.Ycsb.generate ~seed spec in
  run_kv
    (module App)
    ~seed ?sched_seed ?policy ?observe ~load:w.Workload.Ycsb.load
    ~per_thread:w.Workload.Ycsb.per_thread ()
