(** Shared execution driver.

    Runs an application under the instrumented runtime with a workload:
    the main thread builds the structure and executes the load phase, then
    the worker threads execute their operation lists concurrently — the
    §5 experimental setup (load phase + 8-thread main phase). The returned
    report carries the trace that HawkSet (or a baseline) analyses. *)

val run_kv :
  (module App_intf.KV) ->
  ?seed:int ->
  ?sched_seed:int ->
  ?policy:Machine.Sched.policy ->
  ?observe:bool ->
  ?heap_mb:int ->
  ?crash_after_events:int ->
  load:Workload.Op.kv list ->
  per_thread:Workload.Op.kv list array ->
  unit ->
  Machine.Sched.report

val run_kv_ycsb :
  (module App_intf.KV) ->
  ?seed:int ->
  ?sched_seed:int ->
  ?threads:int ->
  ?policy:Machine.Sched.policy ->
  ?observe:bool ->
  ops:int ->
  unit ->
  Machine.Sched.report
(** The paper's workload: 1k-insert load phase plus [ops] main-phase
    operations in the 30/30/30/10 mix across [threads] (default 8)
    workers.

    Both functions: [seed] generates the workload and, by default, also
    drives the scheduler; [sched_seed] overrides the latter so the same
    operations can be replayed under a different interleaving. *)
