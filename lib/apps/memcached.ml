module S = Machine.Sched

let name = "memcached-pmem"
let nbuckets = 1024

(* Item layout (one 64-byte slab chunk):
     word 0: key
     word 1: value
     word 2: cas id (metadata)
     word 3: hash-chain next pointer
     word 4: free-list next pointer *)
let item_size = 64
let off_key = 0
let off_value = 8
let off_cas = 16
let off_next = 24
let off_free = 32

(* Table block: word 0 = global cas counter, word 1 = free-list head,
   words 2.. = bucket chain heads. *)
type t = { base : int; mutable reused : int }

let off_cas_counter = 0
let off_free_head = 8
let bucket_addr t i = t.base + 16 + (8 * i)

(* ---- named sites ---- *)

(* #10/#11: the value/metadata stores of an item built by append/prepend
   from an old (possibly unpersisted) item; never flushed. *)
let bug10_store_pos = __POS__
let bug11_store_pos = __POS__

(* #12: set's value store; never flushed. *)
let bug12_store_pos = __POS__

(* #13: set's chain-pointer store; never flushed. *)
let bug13_store_pos = __POS__

(* #14: incr/decr's cas-id store; never flushed. *)
let bug14_store_pos = __POS__

(* #15: the free-list push's next-pointer store; never flushed. *)
let bug15_store_pos = __POS__

(* Load sites. *)
let get_value_load_pos = __POS__ (* get / append read of the value *)
let append_old_load_pos = __POS__ (* append/prepend read of the old item *)
let chain_next_load_pos = __POS__
let chain_key_load_pos = __POS__
let cas_meta_load_pos = __POS__ (* cas_op's read of the cas id *)
let freelist_pop_load_pos = __POS__
let bucket_head_load_pos = __POS__

(* Re-initialization stores of recycled items: persisted, issued without
   a lock. On a first-use item the IRH prunes them; on a recycled item
   the words are already published, so they surface — deliberately left
   OUT of the ground-truth benign rules because they are the false
   positives of Table 4. *)
let reinit_key_store_pos = __POS__
let reinit_cas_store_pos = __POS__

let bugs =
  let l = Ground_truth.loc in
  [
    { Ground_truth.gt_id = 10; gt_new = false;
      gt_desc = "load unpersisted value";
      gt_store_locs = [ l bug10_store_pos ];
      gt_load_locs = [ l get_value_load_pos; l append_old_load_pos ] };
    { Ground_truth.gt_id = 11; gt_new = false;
      gt_desc = "load unpersisted value";
      gt_store_locs = [ l bug11_store_pos ];
      gt_load_locs = [ l cas_meta_load_pos; l append_old_load_pos ] };
    { Ground_truth.gt_id = 12; gt_new = false;
      gt_desc = "load unpersisted value";
      gt_store_locs = [ l bug12_store_pos ];
      gt_load_locs = [ l get_value_load_pos; l append_old_load_pos ] };
    { Ground_truth.gt_id = 13; gt_new = false;
      gt_desc = "load unpersisted pointer";
      gt_store_locs = [ l bug13_store_pos ];
      gt_load_locs = [ l chain_next_load_pos ] };
    { Ground_truth.gt_id = 14; gt_new = false;
      gt_desc = "load unpersisted metadata";
      gt_store_locs = [ l bug14_store_pos ];
      gt_load_locs = [ l cas_meta_load_pos ] };
    { Ground_truth.gt_id = 15; gt_new = false;
      gt_desc = "load unpersisted metadata";
      gt_store_locs = [ l bug15_store_pos ];
      gt_load_locs = [ l freelist_pop_load_pos ] };
  ]

let benign =
  List.map
    (fun pos -> Ground_truth.Load_at (Ground_truth.loc pos))
    [ chain_key_load_pos; bucket_head_load_pos ]

let sync_config = Machine.Sync_config.builtin

let hash key =
  let h = key lxor (key lsr 33) in
  let h = h * 0x2545F4914F6CDD1D in
  (h lxor (h lsr 29)) land max_int land (nbuckets - 1)

let create ctx =
  let base = S.alloc ctx ~align:64 (16 + (8 * nbuckets)) in
  { base; reused = 0 }

let next_cas_id ctx t =
  (* A racy fetch-and-add, like the original's per-item CAS ids. *)
  let rec go () =
    let cur = S.load_i64 ctx __POS__ (t.base + off_cas_counter) in
    if
      S.cas_i64 ctx __POS__ (t.base + off_cas_counter) ~expected:cur
        ~desired:(Int64.add cur 1L)
    then Int64.add cur 1L
    else go ()
  in
  go ()

(* ---- PM free list (lock-free stack; bug #15 + the reuse pattern) ---- *)

let freelist_push t ctx item =
  let rec go () =
    let head = S.load_i64 ctx freelist_pop_load_pos (t.base + off_free_head) in
    (* BUG #15: the next pointer is stored but never flushed. *)
    S.store_i64 ctx bug15_store_pos (item + off_free) head;
    if
      not
        (S.cas_i64 ctx __POS__ (t.base + off_free_head) ~expected:head
           ~desired:(Int64.of_int item))
    then go ()
  in
  go ()

let freelist_pop t ctx =
  let rec go () =
    let head = S.load_i64 ctx freelist_pop_load_pos (t.base + off_free_head) in
    if Int64.equal head 0L then None
    else
      let item = Int64.to_int head in
      let next = S.load_i64 ctx freelist_pop_load_pos (item + off_free) in
      if
        S.cas_i64 ctx __POS__ (t.base + off_free_head) ~expected:head
          ~desired:next
      then Some item
      else go ()
  in
  go ()

let alloc_item t ctx =
  match freelist_pop t ctx with
  | Some item ->
      t.reused <- t.reused + 1;
      item
  | None -> S.alloc ctx ~align:64 item_size

let reused_items t = t.reused
let base_addr t = t.base

(* All state is reachable from the table block: recovery is just a
   reattach. What a post-crash [get] then finds depends entirely on which
   item/chain stores were actually flushed — the never-flushed stores of
   bugs #12/#13/#15 are exactly what the crash sweep observes as damage. *)
let recover _ctx ~base = { base; reused = 0 }

(* ---- chain operations (all lock-free) ---- *)

let find t ctx key =
  let rec walk item =
    if item = 0 then None
    else if
      Int64.to_int (S.load_i64 ctx chain_key_load_pos (item + off_key)) = key
    then Some item
    else
      walk (Int64.to_int (S.load_i64 ctx chain_next_load_pos (item + off_next)))
  in
  walk
    (Int64.to_int
       (S.load_i64 ctx bucket_head_load_pos (bucket_addr t (hash key))))

(* Build and publish a fresh item. Key and cas id are persisted (these
   are the reinit stores that become FPs on recycled items); the value
   (bug #12) and the chain pointer (bug #13) never are. *)
let link_new_item t ctx ~key ~value ~value_pos ~cas_pos =
  let item = alloc_item t ctx in
  S.store_i64 ctx reinit_key_store_pos (item + off_key) (Int64.of_int key);
  S.persist ctx __POS__ (item + off_key) 8;
  S.store_i64 ctx value_pos (item + off_value) value;
  S.store_i64 ctx cas_pos (item + off_cas) (next_cas_id ctx t);
  let bucket = bucket_addr t (hash key) in
  let rec publish () =
    let head = S.load_i64 ctx bucket_head_load_pos bucket in
    (* BUG #13: the chain pointer is never flushed. *)
    S.store_i64 ctx bug13_store_pos (item + off_next) head;
    if
      not
        (S.cas_i64 ctx __POS__ bucket ~expected:head
           ~desired:(Int64.of_int item))
    then publish ()
  in
  publish ()

let set t ctx ~key ~value =
  S.with_frame ctx "mc_set" @@ fun () ->
  match find t ctx key with
  | Some item ->
      (* BUG #12: in-place value update, never flushed. *)
      S.store_i64 ctx bug12_store_pos (item + off_value) value;
      S.store_i64 ctx reinit_cas_store_pos (item + off_cas) (next_cas_id ctx t);
      S.persist ctx __POS__ (item + off_cas) 8
  | None ->
      link_new_item t ctx ~key ~value ~value_pos:bug12_store_pos
        ~cas_pos:reinit_cas_store_pos

let get t ctx ~key =
  S.with_frame ctx "mc_get" @@ fun () ->
  match find t ctx key with
  | Some item -> Some (S.load_i64 ctx get_value_load_pos (item + off_value))
  | None -> None

let add t ctx ~key ~value =
  S.with_frame ctx "mc_add" @@ fun () ->
  match find t ctx key with
  | Some _ -> false
  | None ->
      link_new_item t ctx ~key ~value ~value_pos:bug12_store_pos
        ~cas_pos:reinit_cas_store_pos;
      true

let replace t ctx ~key ~value =
  S.with_frame ctx "mc_replace" @@ fun () ->
  match find t ctx key with
  | Some item ->
      S.store_i64 ctx bug12_store_pos (item + off_value) value;
      true
  | None -> false

(* Append/prepend create a NEW item whose value derives from the old,
   possibly unpersisted one (bugs #10/#11), then publish it at the head
   of the chain (shadowing the old item). *)
let concat op t ctx ~key ~value =
  S.with_frame ctx "mc_concat" @@ fun () ->
  match find t ctx key with
  | None -> false
  | Some old_item ->
      let old_value = S.load_i64 ctx append_old_load_pos (old_item + off_value) in
      let old_cas = S.load_i64 ctx append_old_load_pos (old_item + off_cas) in
      let new_value =
        match op with
        | `Append -> Int64.add old_value value
        | `Prepend -> Int64.add value old_value
      in
      let item = alloc_item t ctx in
      S.store_i64 ctx reinit_key_store_pos (item + off_key) (Int64.of_int key);
      S.persist ctx __POS__ (item + off_key) 8;
      (* BUG #10/#11: value and metadata derived from the old item,
         never flushed. *)
      S.store_i64 ctx bug10_store_pos (item + off_value) new_value;
      S.store_i64 ctx bug11_store_pos (item + off_cas) (Int64.add old_cas 1L);
      (* Swap the new item in place of the old one: find the pointer that
         references [old_item] and CAS it over. *)
      let bucket = bucket_addr t (hash key) in
      let next = S.load_i64 ctx chain_next_load_pos (old_item + off_next) in
      S.store_i64 ctx bug13_store_pos (item + off_next) next;
      let rec swap prev_addr =
        let cur = Int64.to_int (S.load_i64 ctx chain_next_load_pos prev_addr) in
        if cur = 0 then false
        else if cur = old_item then
          if
            S.cas_i64 ctx __POS__ prev_addr ~expected:(Int64.of_int old_item)
              ~desired:(Int64.of_int item)
          then begin
            freelist_push t ctx old_item;
            true
          end
          else false (* concurrent unlink: drop the concat *)
        else swap (cur + off_next)
      in
      swap bucket

let append t ctx ~key ~value = concat `Append t ctx ~key ~value
let prepend t ctx ~key ~value = concat `Prepend t ctx ~key ~value

let cas_op t ctx ~key ~expected ~desired =
  S.with_frame ctx "mc_cas" @@ fun () ->
  match find t ctx key with
  | None -> false
  | Some item ->
      let cas_id = S.load_i64 ctx cas_meta_load_pos (item + off_cas) in
      if Int64.equal cas_id expected then begin
        S.store_i64 ctx bug12_store_pos (item + off_value) desired;
        S.store_i64 ctx reinit_cas_store_pos (item + off_cas)
          (next_cas_id ctx t);
        S.persist ctx __POS__ (item + off_cas) 8;
        true
      end
      else false

let delete t ctx ~key =
  S.with_frame ctx "mc_delete" @@ fun () ->
  let bucket = bucket_addr t (hash key) in
  (* Unlink with CAS on the predecessor's next word (head included). *)
  let rec walk prev_addr =
    let item = Int64.to_int (S.load_i64 ctx chain_next_load_pos prev_addr) in
    if item = 0 then ()
    else if
      Int64.to_int (S.load_i64 ctx chain_key_load_pos (item + off_key)) = key
    then begin
      let next = S.load_i64 ctx chain_next_load_pos (item + off_next) in
      if
        S.cas_i64 ctx __POS__ prev_addr ~expected:(Int64.of_int item)
          ~desired:next
      then freelist_push t ctx item
      else ()
    end
    else walk (item + off_next)
  in
  walk bucket

let bump op t ctx ~key =
  S.with_frame ctx "mc_bump" @@ fun () ->
  match find t ctx key with
  | None -> ()
  | Some item ->
      let v = S.load_i64 ctx get_value_load_pos (item + off_value) in
      let v' = match op with `Incr -> Int64.add v 1L | `Decr -> Int64.sub v 1L in
      S.store_i64 ctx __POS__ (item + off_value) v';
      S.persist ctx __POS__ (item + off_value) 8;
      (* BUG #14: the cas-id metadata update is never flushed. *)
      S.store_i64 ctx bug14_store_pos (item + off_cas) (next_cas_id ctx t)

let incr t ctx ~key = bump `Incr t ctx ~key
let decr t ctx ~key = bump `Decr t ctx ~key
