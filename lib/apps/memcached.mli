(** Memcached-pmem: the Lenovo PM fork of Memcached (§5).

    A lock-free key-value store: items live in PM slabs, hash-bucket
    chains are manipulated with CAS (Table 1: Lock-Free), and freed items
    are recycled through a PM free list — the memory-reuse pattern that
    defeats the Initialization Removal Heuristic (§5.4, §7): a recycled
    item's words were already published to other threads, so its
    re-initialization stores are no longer pruned and surface as the
    false positives of Table 4.

    Injected bugs (Table 2 #10-#15, all known, reported by PMRace):
    - {b #10}/{b #11}: append/prepend build a new item from an old —
      possibly unpersisted — one; the new value and metadata stores are
      never flushed ("load unpersisted value").
    - {b #12}: set stores the item's value without ever flushing it.
    - {b #13}: set stores the item's chain pointer without flushing it
      ("load unpersisted pointer").
    - {b #14}: incr/decr update the CAS-id metadata without flushing it.
    - {b #15}: the free-list push stores the item's next pointer without
      flushing it; the pop reads it ("load unpersisted metadata"). *)

type t

val create : Machine.Sched.ctx -> t
val set : t -> Machine.Sched.ctx -> key:int -> value:int64 -> unit
val get : t -> Machine.Sched.ctx -> key:int -> int64 option

val add : t -> Machine.Sched.ctx -> key:int -> value:int64 -> bool
(** Stores only when the key is absent. *)

val replace : t -> Machine.Sched.ctx -> key:int -> value:int64 -> bool
(** Stores only when the key is present. *)

val append : t -> Machine.Sched.ctx -> key:int -> value:int64 -> bool
val prepend : t -> Machine.Sched.ctx -> key:int -> value:int64 -> bool

val cas_op :
  t -> Machine.Sched.ctx -> key:int -> expected:int64 -> desired:int64 -> bool
(** Memcached's compare-and-swap command: replaces the value only when
    the item's CAS id matches. *)

val delete : t -> Machine.Sched.ctx -> key:int -> unit
val incr : t -> Machine.Sched.ctx -> key:int -> unit
val decr : t -> Machine.Sched.ctx -> key:int -> unit

val bugs : Ground_truth.bug list
val benign : Ground_truth.benign_rule list
val sync_config : Machine.Sync_config.t
val name : string

val reused_items : t -> int
(** How many item allocations were served from the PM free list (testing
    aid: >0 means the IRH-defeating pattern occurred). *)

val base_addr : t -> int

val recover : Machine.Sched.ctx -> base:int -> t
(** Reattaches to the table block of a (post-crash) heap. Memcached-pmem
    keeps no recovery log: whatever subset of the chains and items was
    actually flushed is what a post-crash [get] sees — the never-flushed
    stores of bugs #12/#13/#15 surface here as lost or stale data. *)
