module S = Machine.Sched

let name = "p-clht"
let slots = 3 (* key/value pairs per cache-line bucket *)

(* Bucket layout (one cache line):
     words 0-2: keys (0 = empty)
     words 3-5: values
     word 6:    overflow-chain pointer
     word 7:    padding *)
let bucket_size = Pmem.Layout.line_size
let off_key i = 8 * i
let off_val i = 8 * (slots + i)
let off_next = 8 * (2 * slots)

(* Table descriptor: word 0 = bucket count; buckets start at +64 so each
   is line-aligned. Header block: word 0 = root descriptor pointer. *)
let desc_header = 64

(* ---- named sites ---- *)

(* Bug #4: the rehash's root-pointer swap; persisted only after the
   rehash lock is released. *)
let bug4_store_pos = __POS__

(* The root-pointer load — lock-free, used by both gets and inserts (the
   inserting thread is the one that strands its entry in the new table). *)
let root_load_pos = __POS__

(* Lock-free get loads (benign). *)
let lf_key_load_pos = __POS__
let lf_val_load_pos = __POS__
let lf_next_load_pos = __POS__

(* Rehash's scan of the old table (benign: the global rehash lock does
   not take the per-bucket locks in this simplified port). *)
let rehash_scan_load_pos = __POS__

let bugs =
  [
    {
      Ground_truth.gt_id = 4;
      gt_new = false;
      gt_desc = "load unpersisted pointer";
      gt_store_locs = [ Ground_truth.loc bug4_store_pos ];
      gt_load_locs = [ Ground_truth.loc root_load_pos ];
    };
  ]

let benign =
  List.map
    (fun pos -> Ground_truth.Load_at (Ground_truth.loc pos))
    [
      lf_key_load_pos; lf_val_load_pos; lf_next_load_pos; root_load_pos;
      rehash_scan_load_pos;
    ]

let primitive = "clht_cas_lock"
let sync_config = Machine.Sync_config.register Machine.Sync_config.builtin primitive

(* Volatile view of the current table: the descriptor address paired with
   the per-bucket lock array (the lock words live in the buckets in the
   original; the spinlocks model the wrapped CAS primitives). [retiring]
   is CLHT's resize protocol: once set, writers that acquire a bucket lock
   re-check it and retry on the next table generation, so the rehash can
   drain each bucket with a transient lock/unlock instead of holding every
   lock at once (which would also bloat every lockset the analysis sees). *)
type state = {
  desc : int;
  nbuckets : int;
  locks : Machine.Spinlock.t array;
  mutable retiring : bool;
}

type t = {
  header : int;
  rehash_lock : Machine.Mutex.t;
  mutable state : state;
}

(* Fibonacci hashing with an avalanche finalizer: low bits must depend on
   all key bits or sequential keys would never share a bucket. *)
let hash key nbuckets =
  let h = key lxor (key lsr 33) in
  let h = h * 0x2545F4914F6CDD1D in
  let h = h lxor (h lsr 29) in
  h land max_int land (nbuckets - 1)

let alloc_desc ctx nbuckets =
  let d = S.alloc ctx ~align:64 (desc_header + (nbuckets * bucket_size)) in
  S.store_i64 ctx __POS__ d (Int64.of_int nbuckets);
  (* Buckets are zero on a fresh allocation; persist the descriptor head. *)
  S.persist ctx __POS__ d 8;
  d

let bucket_addr desc i = desc + desc_header + (i * bucket_size)

let mk_state ctx desc nbuckets =
  { desc; nbuckets;
    locks = Array.init nbuckets (fun _ -> Machine.Spinlock.create ~primitive ctx);
    retiring = false }

let create ctx =
  let nbuckets = 64 in
  let header = S.alloc ctx ~align:64 16 in
  let desc = alloc_desc ctx nbuckets in
  S.store_i64 ctx __POS__ header (Int64.of_int desc);
  S.persist ctx __POS__ header 8;
  { header; rehash_lock = Machine.Mutex.create ctx; state = mk_state ctx desc nbuckets }

let load_root ctx t = Int64.to_int (S.load_i64 ctx root_load_pos t.header)

let header_addr t = t.header

let recover ctx ~header_addr =
  let t =
    { header = header_addr;
      rehash_lock = Machine.Mutex.create ctx;
      state = { desc = 0; nbuckets = 0; locks = [||]; retiring = false } }
  in
  let desc = load_root ctx t in
  let nbuckets = Int64.to_int (S.load_i64 ctx __POS__ desc) in
  t.state <- mk_state ctx desc nbuckets;
  t

let bucket_count t ctx =
  let desc = load_root ctx t in
  Int64.to_int (S.load_i64 ctx __POS__ desc)

(* Writer-side bucket operations, under the bucket spinlock. *)

let rec chain_find ctx b key =
  (* Returns [`Found (bucket, slot)], [`Free (bucket, slot)] or
     [`Full last_bucket]. *)
  let rec scan i free =
    if i >= slots then
      let next = Int64.to_int (S.load_i64 ctx __POS__ (b + off_next)) in
      if next <> 0 then
        match chain_find ctx next key with
        | `Full _ as r -> (match free with Some s -> `Free (b, s) | None -> r)
        | r -> r
      else begin
        match free with Some s -> `Free (b, s) | None -> `Full b
      end
    else
      let k = S.load_i64 ctx __POS__ (b + off_key i) in
      if Int64.to_int k = key then `Found (b, i)
      else if Int64.equal k 0L && free = None then scan (i + 1) (Some i)
      else scan (i + 1) free
  in
  scan 0 None

let chain_length ctx b =
  let rec go b n =
    if b = 0 || n > 16 then n
    else go (Int64.to_int (S.load_i64 ctx __POS__ (b + off_next))) (n + 1)
  in
  go b 0

let write_entry ctx b slot ~key ~value =
  S.store_i64 ctx __POS__ (b + off_val slot) value;
  S.store_i64 ctx __POS__ (b + off_key slot) (Int64.of_int key);
  S.persist ctx __POS__ (b + off_key slot) 8;
  S.persist ctx __POS__ (b + off_val slot) 8

(* Insert into the table rooted at [desc]; caller holds the bucket lock. *)
let bucket_insert ctx desc idx ~key ~value =
  let b = bucket_addr desc idx in
  match chain_find ctx b key with
  | `Found (b', slot) ->
      S.store_i64 ctx __POS__ (b' + off_val slot) value;
      S.persist ctx __POS__ (b' + off_val slot) 8
  | `Free (b', slot) -> write_entry ctx b' slot ~key ~value
  | `Full last ->
      let nb = S.alloc ctx ~align:64 bucket_size in
      write_entry ctx nb 0 ~key ~value;
      S.store_i64 ctx __POS__ (last + off_next) (Int64.of_int nb);
      S.persist ctx __POS__ (last + off_next) 8

(* Rehash: double the bucket count. Entries are re-inserted and persisted
   into the new table before the root pointer is swapped; the swap itself
   is persisted only AFTER the critical section (bug #4). *)
let rehash t ctx =
  Machine.Mutex.lock t.rehash_lock ctx __POS__;
  let old_state = t.state in
  (* CLHT's resize protocol: mark the generation as retiring, then drain
     each bucket with a transient lock/unlock. A writer that acquired its
     lock before the mark finishes before the drain passes its bucket; a
     writer that acquires after the mark sees [retiring] and retries on
     the next generation. One lock at a time keeps the rehash's locksets
     small. *)
  old_state.retiring <- true;
  Array.iter
    (fun lock ->
      Machine.Spinlock.lock lock ctx __POS__;
      Machine.Spinlock.unlock lock ctx __POS__)
    old_state.locks;
  let nbuckets = 2 * old_state.nbuckets in
  let desc = alloc_desc ctx nbuckets in
  for i = 0 to old_state.nbuckets - 1 do
    let rec copy_chain b =
      if b <> 0 then begin
        for s = 0 to slots - 1 do
          let k = S.load_i64 ctx rehash_scan_load_pos (b + off_key s) in
          if not (Int64.equal k 0L) then begin
            let v = S.load_i64 ctx rehash_scan_load_pos (b + off_val s) in
            let key = Int64.to_int k in
            bucket_insert ctx desc (hash key nbuckets) ~key ~value:v
          end
        done;
        copy_chain
          (Int64.to_int (S.load_i64 ctx rehash_scan_load_pos (b + off_next)))
      end
    in
    copy_chain (bucket_addr old_state.desc i)
  done;
  (* Publish the new table: the volatile handle first (writers can start
     using the new generation immediately), then the PM root pointer —
     visible now, persisted too late. *)
  t.state <- mk_state ctx desc nbuckets;
  S.store_i64 ctx bug4_store_pos t.header (Int64.of_int desc);
  Machine.Mutex.unlock t.rehash_lock ctx __POS__;
  (* The original retires the old generation before touching the durable
     root: a final pass over the drained buckets (modelled as the scan
     loads; the free itself is volatile bookkeeping). Writers are already
     on the new generation while this runs. *)
  for i = 0 to old_state.nbuckets - 1 do
    ignore
      (S.load_i64 ctx rehash_scan_load_pos
         (bucket_addr old_state.desc i + off_next))
  done;
  (* BUG #4: the root pointer's persist happens outside the lock, after
     the cleanup pass. A crash before this line strands every insert that
     already went into the new table: durable data behind an unpersisted
     root. *)
  S.persist ctx __POS__ t.header 8

let rec with_bucket t ctx key f =
  (* Snapshot the volatile state, lock the bucket, and confirm no rehash
     invalidated the snapshot. The root load is the racy read of bug #4:
     the inserting thread consults the possibly-unpersisted root. *)
  let st = t.state in
  let idx = hash key st.nbuckets in
  Machine.Spinlock.lock st.locks.(idx) ctx __POS__;
  ignore (load_root ctx t);
  if t.state != st || st.retiring then begin
    Machine.Spinlock.unlock st.locks.(idx) ctx __POS__;
    S.yield ctx;
    with_bucket t ctx key f
  end
  else
    Fun.protect
      ~finally:(fun () -> Machine.Spinlock.unlock st.locks.(idx) ctx __POS__)
      (fun () -> f st.desc idx)

let insert t ctx ~key ~value =
  S.with_frame ctx "clht_insert" @@ fun () ->
  let needs_rehash =
    with_bucket t ctx key (fun desc idx ->
        bucket_insert ctx desc idx ~key ~value;
        chain_length ctx (bucket_addr desc idx) > 2)
  in
  if needs_rehash then rehash t ctx

let update = insert

let delete t ctx ~key =
  S.with_frame ctx "clht_delete" @@ fun () ->
  with_bucket t ctx key (fun desc idx ->
      match chain_find ctx (bucket_addr desc idx) key with
      | `Found (b, slot) ->
          S.store_i64 ctx __POS__ (b + off_key slot) 0L;
          S.persist ctx __POS__ (b + off_key slot) 8
      | `Free _ | `Full _ -> ())

let get t ctx ~key =
  S.with_frame ctx "clht_get" @@ fun () ->
  let desc = load_root ctx t in
  let nbuckets = Int64.to_int (S.load_i64 ctx __POS__ desc) in
  let rec scan_chain b =
    if b = 0 then None
    else
      let rec scan i =
        if i >= slots then
          scan_chain (Int64.to_int (S.load_i64 ctx lf_next_load_pos (b + off_next)))
        else if
          Int64.to_int (S.load_i64 ctx lf_key_load_pos (b + off_key i)) = key
        then Some (S.load_i64 ctx lf_val_load_pos (b + off_val i))
        else scan (i + 1)
      in
      scan 0
  in
  scan_chain (bucket_addr desc (hash key nbuckets))
