module S = Machine.Sched

type entry = {
  reg_name : string;
  run :
    ?seed:int ->
    ?sched_seed:int ->
    ?policy:Machine.Sched.policy ->
    ?observe:bool ->
    ops:int ->
    unit ->
    Machine.Sched.report;
  bugs : Ground_truth.bug list;
  benign : Ground_truth.benign_rule list;
  max_ops : int option;
  sync_method : string;
  needs_sync_config : bool;
}

let kv_entry (module App : App_intf.KV) ?max_ops ~sync_method
    ~needs_sync_config () =
  {
    reg_name = App.name;
    run =
      (fun ?seed ?sched_seed ?policy ?observe ~ops () ->
        Driver.run_kv_ycsb (module App) ?seed ?sched_seed ?policy ?observe
          ~ops ());
    bugs = App.bugs;
    benign = App.benign;
    max_ops;
    sync_method;
    needs_sync_config;
  }

let apply_mc t ctx op =
  match op with
  | Workload.Op.Mc_set (key, value) -> Memcached.set t ctx ~key ~value
  | Workload.Op.Mc_get key -> ignore (Memcached.get t ctx ~key)
  | Workload.Op.Mc_add (key, value) -> ignore (Memcached.add t ctx ~key ~value)
  | Workload.Op.Mc_replace (key, value) ->
      ignore (Memcached.replace t ctx ~key ~value)
  | Workload.Op.Mc_append (key, value) ->
      ignore (Memcached.append t ctx ~key ~value)
  | Workload.Op.Mc_prepend (key, value) ->
      ignore (Memcached.prepend t ctx ~key ~value)
  | Workload.Op.Mc_cas (key, expected, desired) ->
      ignore (Memcached.cas_op t ctx ~key ~expected ~desired)
  | Workload.Op.Mc_delete key -> Memcached.delete t ctx ~key
  | Workload.Op.Mc_incr key -> Memcached.incr t ctx ~key
  | Workload.Op.Mc_decr key -> Memcached.decr t ctx ~key

let run_memcached ?(seed = 0) ?sched_seed ?policy ?observe ~ops () =
  let heap = Pmem.Heap.create ~size:(128 * 1024 * 1024) () in
  let per_thread = Workload.Ycsb.memcached_mix ~seed ~ops ~threads:8 in
  let sched_seed = Option.value ~default:seed sched_seed in
  S.run ~seed:sched_seed ?policy ?observe ~sync_config:Memcached.sync_config
    ~heap
    (fun ctx ->
      let t = Memcached.create ctx in
      let workers =
        Array.to_list
          (Array.map
             (fun ops -> S.spawn ctx (fun ctx' -> List.iter (apply_mc t ctx') ops))
             per_thread)
      in
      List.iter (S.join ctx) workers)

let run_madfs ?(seed = 0) ?sched_seed ?policy ?observe ~ops () =
  let heap = Pmem.Heap.create ~size:(256 * 1024 * 1024) () in
  let blocks = 64 in
  let per_thread = Workload.Ycsb.madfs_mix ~seed ~ops ~threads:8 ~file_blocks:blocks in
  let sched_seed = Option.value ~default:seed sched_seed in
  S.run ~seed:sched_seed ?policy ?observe ~sync_config:Madfs.sync_config ~heap
    (fun ctx ->
      let t = Madfs.create ctx ~blocks in
      let payload = Bytes.make Madfs.block_size 'w' in
      let workers =
        Array.to_list
          (Array.map
             (fun ops ->
               S.spawn ctx (fun ctx' ->
                   List.iter
                     (fun op ->
                       match op with
                       | Workload.Op.Fs_write (offset, _) ->
                           Madfs.write t ctx' ~offset ~data:payload
                       | Workload.Op.Fs_read (offset, _) ->
                           ignore (Madfs.read t ctx' ~offset))
                     ops))
             per_thread)
      in
      List.iter (S.join ctx) workers)

let all =
  [
    kv_entry (module Fast_fair) ~sync_method:"Lock/Lock-Free"
      ~needs_sync_config:false ();
    kv_entry (module Turbo_hash) ~sync_method:"Lock/Lock-Free"
      ~needs_sync_config:true ();
    kv_entry (module P_clht) ~sync_method:"Lock" ~needs_sync_config:true ();
    kv_entry (module P_masstree) ~sync_method:"Lock/Lock-Free"
      ~needs_sync_config:false ();
    kv_entry (module P_art) ~max_ops:1000 ~sync_method:"Lock/Lock-Free"
      ~needs_sync_config:true ();
    {
      reg_name = Madfs.name;
      run = run_madfs;
      bugs = Madfs.bugs;
      benign = Madfs.benign;
      max_ops = None;
      sync_method = "Lock-Free";
      needs_sync_config = false;
    };
    {
      reg_name = Memcached.name;
      run = run_memcached;
      bugs = Memcached.bugs;
      benign = Memcached.benign;
      max_ops = None;
      sync_method = "Lock-Free";
      needs_sync_config = false;
    };
    kv_entry (module Wipe) ~sync_method:"Lock" ~needs_sync_config:false ();
    kv_entry (module Apex) ~sync_method:"Lock" ~needs_sync_config:true ();
  ]

(* Registered names use dashes ("fast-fair"); accept the underscore and
   mixed-case spellings users actually type. *)
let canonical name =
  String.map (fun c -> if c = '_' then '-' else c) (String.lowercase_ascii name)

let find name =
  let name = canonical name in
  List.find_opt (fun e -> String.equal (canonical e.reg_name) name) all

let clamp_ops e ops =
  match e.max_ops with Some cap -> min cap ops | None -> ops
