(** Registry of the nine evaluated applications (Table 1).

    Each entry bundles an application's workload driver with its ground
    truth, so the evaluation harness can iterate "run app, analyse trace,
    classify reports" uniformly across structurally different programs. *)

type entry = {
  reg_name : string;
  run :
    ?seed:int ->
    ?sched_seed:int ->
    ?policy:Machine.Sched.policy ->
    ?observe:bool ->
    ops:int ->
    unit ->
    Machine.Sched.report;
      (** Executes the §5 workload for this application ([ops] main-phase
          operations, 8 threads) and returns the instrumented report.
          [seed] fixes the workload (and by default the schedule);
          [sched_seed] replays the same workload under a different
          interleaving — the axis {!Explore} sweeps. *)
  bugs : Ground_truth.bug list;
  benign : Ground_truth.benign_rule list;
  max_ops : int option;
      (** P-ART is capped at 1k operations, like the paper's runs. *)
  sync_method : string;  (** Table 1's "Synchronization Method" column. *)
  needs_sync_config : bool;
      (** Required a custom-primitive configuration entry (§5.5). *)
}

val all : entry list
(** In the order of Table 1. *)

val find : string -> entry option
(** Name lookup, case-insensitive and accepting [_] for [-]
    ("fast_fair" finds "fast-fair"). *)

val clamp_ops : entry -> int -> int
(** [clamp_ops e ops] applies the entry's workload cap. *)
