module S = Machine.Sched

let name = "turbo-hash"
let nbuckets = 8192
let slots = 7

(* Bucket layout (two cache lines, 128 bytes):
     line 0: word 0 = presence bitmap; words 1-6 = entries 0-2 (k,v)
     line 1: words 8-15 = entries 3-6 (k,v)
   Entry i's key is at word 1+2i for i<3 and 8+2(i-3) for i>=3. *)
let bucket_size = 2 * Pmem.Layout.line_size

let off_key i = if i < 3 then 8 * (1 + (2 * i)) else 8 * (8 + (2 * (i - 3)))
let off_val i = off_key i + 8
let off_meta = 0

type t = { table : int; locks : Machine.Spinlock.t array }

(* ---- named sites ---- *)

(* Bug #3: the entry stores; slots >= 3 land on the bucket's second cache
   line, which the insert's flush never covers. *)
let bug3_key_store_pos = __POS__
let bug3_val_store_pos = __POS__

(* Locked scan loads that can observe the unpersisted entries. *)
let scan_key_load_pos = __POS__
let scan_val_load_pos = __POS__

(* Lock-free bitmap probe (benign). *)
let lf_meta_load_pos = __POS__

(* Bitmap store (persisted correctly; benign vs the lock-free probe). *)
let meta_store_pos = __POS__

let bugs =
  [
    {
      Ground_truth.gt_id = 3;
      gt_new = true;
      gt_desc = "load unpersisted value";
      gt_store_locs =
        [ Ground_truth.loc bug3_key_store_pos;
          Ground_truth.loc bug3_val_store_pos ];
      gt_load_locs =
        [ Ground_truth.loc scan_key_load_pos;
          Ground_truth.loc scan_val_load_pos ];
    };
  ]

let benign = [ Ground_truth.Load_at (Ground_truth.loc lf_meta_load_pos) ]
let primitive = "turbo_lock"
let sync_config = Machine.Sync_config.register Machine.Sync_config.builtin primitive

let bucket_addr t i = t.table + (i * bucket_size)
(* Avalanche finalizer: the bucket index must depend on all key bits. *)
let hash key =
  let h = key lxor (key lsr 33) in
  let h = h * 0x2545F4914F6CDD1D in
  let h = h lxor (h lsr 29) in
  h land max_int land (nbuckets - 1)

let create ctx =
  (* A fresh PM region is zero-filled and already durable: empty bitmaps
     need no explicit persist. *)
  let table = S.alloc ctx ~align:64 (nbuckets * bucket_size) in
  { table;
    locks = Array.init nbuckets (fun _ -> Machine.Spinlock.create ~primitive ctx) }

let meta ctx b = S.load_i64 ctx __POS__ (b + off_meta)
let lf_meta ctx b = S.load_i64 ctx lf_meta_load_pos (b + off_meta)

let slot_used m i = Int64.logand m (Int64.shift_left 1L i) <> 0L

(* Under the bucket lock: the slot holding [key], if any. *)
let find_slot ctx b key =
  let m = meta ctx b in
  let rec go i =
    if i >= slots then None
    else if
      slot_used m i
      && Int64.to_int (S.load_i64 ctx scan_key_load_pos (b + off_key i)) = key
    then Some i
    else go (i + 1)
  in
  go 0

let free_slot ctx b =
  let m = meta ctx b in
  let rec go i =
    if i >= slots then None else if slot_used m i then go (i + 1) else Some i
  in
  go 0

(* BUG #3: only the first cache line of the bucket is flushed, so entries
   in slots >= 3 (second line) are left unpersisted while their bitmap bit
   is durable. *)
let persist_first_line_only ctx b =
  S.flush_line ctx __POS__ b;
  S.fence ctx __POS__

let write_entry ctx b i ~key ~value =
  S.store_i64 ctx bug3_key_store_pos (b + off_key i) (Int64.of_int key);
  S.store_i64 ctx bug3_val_store_pos (b + off_val i) value;
  let m = Int64.logor (meta ctx b) (Int64.shift_left 1L i) in
  S.store_i64 ctx meta_store_pos (b + off_meta) m;
  persist_first_line_only ctx b

let with_bucket t ctx idx f =
  Machine.Spinlock.with_lock t.locks.(idx) ctx __POS__ f

(* Linear probing over at most 8 buckets. *)
let rec probe t ctx key idx tries f =
  if tries >= 8 then None
  else
    match with_bucket t ctx idx (fun () -> f (bucket_addr t idx)) with
    | Some r -> Some r
    | None -> probe t ctx key ((idx + 1) land (nbuckets - 1)) (tries + 1) f

let insert t ctx ~key ~value =
  S.with_frame ctx "turbo_insert" @@ fun () ->
  ignore
    (probe t ctx key (hash key) 0 (fun b ->
         match find_slot ctx b key with
         | Some i ->
             (* Out-of-place update: write the value, re-flush line 0 only
                (same bug when i >= 3). *)
             S.store_i64 ctx bug3_val_store_pos (b + off_val i) value;
             persist_first_line_only ctx b;
             Some ()
         | None -> (
             match free_slot ctx b with
             | Some i ->
                 write_entry ctx b i ~key ~value;
                 Some ()
             | None -> None)))

let update = insert

let get t ctx ~key =
  S.with_frame ctx "turbo_get" @@ fun () ->
  let rec go idx tries =
    if tries >= 8 then None
    else begin
      let b = bucket_addr t idx in
      (* Lock-free fast path: skip empty buckets via the bitmap. *)
      if Int64.equal (lf_meta ctx b) 0L then
        go ((idx + 1) land (nbuckets - 1)) (tries + 1)
      else
        match
          with_bucket t ctx idx (fun () ->
              match find_slot ctx b key with
              | Some i -> Some (S.load_i64 ctx scan_val_load_pos (b + off_val i))
              | None -> None)
        with
        | Some v -> Some v
        | None -> go ((idx + 1) land (nbuckets - 1)) (tries + 1)
    end
  in
  go (hash key) 0

let delete t ctx ~key =
  S.with_frame ctx "turbo_delete" @@ fun () ->
  ignore
    (probe t ctx key (hash key) 0 (fun b ->
         match find_slot ctx b key with
         | Some i ->
             let m =
               Int64.logand (meta ctx b)
                 (Int64.lognot (Int64.shift_left 1L i))
             in
             S.store_i64 ctx meta_store_pos (b + off_meta) m;
             persist_first_line_only ctx b;
             Some ()
         | None -> None))

let table_addr t = t.table

let recover ctx ~table_addr =
  { table = table_addr;
    locks = Array.init nbuckets (fun _ -> Machine.Spinlock.create ~primitive ctx) }

let check_consistency t ctx =
  let damage = ref [] in
  for idx = 0 to nbuckets - 1 do
    let b = bucket_addr t idx in
    let m = meta ctx b in
    for i = 0 to slots - 1 do
      if slot_used m i && Int64.equal (S.load_i64 ctx __POS__ (b + off_key i)) 0L
      then
        damage :=
          Printf.sprintf
            "bucket %d slot %d: bitmap bit persisted, entry lost (line %d)"
            idx i (if i < 3 then 0 else 1)
          :: !damage
    done
  done;
  List.rev !damage

let bucket_of_key = hash

let slot_of t ctx ~key =
  let rec go idx tries =
    if tries >= 8 then None
    else
      match find_slot ctx (bucket_addr t idx) key with
      | Some i -> Some i
      | None -> go ((idx + 1) land (nbuckets - 1)) (tries + 1)
  in
  go (hash key) 0
