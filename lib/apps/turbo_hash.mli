(** TurboHash: a PM hash table with two-cache-line buckets (SYSTOR'23).

    A fixed-size table of 128-byte buckets: a presence bitmap and three
    entries on the first cache line, four more entries on the second.
    Writers take a per-bucket custom lock (["turbo_lock"], which needs a
    sync-configuration entry, §5.5); gets probe the bitmap lock-free and
    then scan under the bucket lock. Collisions overflow by linear
    probing.

    Injected bug (Table 2 {b #3}, new): after writing an entry and its
    bitmap bit, the insert flushes only the bucket's {e first} cache line.
    Entries placed in slots 3-6 live on the second line and are never
    persisted — the bitmap says they exist, the data can vanish in a
    crash. The bug only bites once buckets fill past three entries, which
    is why it "manifested only in the largest workload" (§5.1). *)

include App_intf.KV

val slot_of : t -> Machine.Sched.ctx -> key:int -> int option
(** The slot index currently holding [key] (testing aid: slots >= 3 are
    the unpersisted ones). *)

val bucket_of_key : int -> int
(** The home bucket index [key] hashes to (pure; testing aid). Workloads
    that want bug #3 to bite pick keys that collide into few buckets so
    slots 3-6 — the unflushed second cache line — actually get used. *)

val table_addr : t -> int

val recover : Machine.Sched.ctx -> table_addr:int -> t
(** Reopens the table from a (post-crash) heap. *)

val check_consistency : t -> Machine.Sched.ctx -> string list
(** Post-crash integrity check: bug #3's signature is a bitmap bit that
    survived the crash while its second-cache-line entry did not — a used
    slot holding a zero key. Returns one message per damaged slot. *)
