type candidate = {
  cand_store_loc : string;
  cand_load_locs : string list;
}

type report = {
  candidates : candidate list;
  executions : int;
  confirmed : (string * string) list;
  seconds : float;
}

let obs_executions = Obs.Registry.counter "durinn.executions"
let obs_candidates = Obs.Registry.counter "durinn.candidates"
let obs_confirmed = Obs.Registry.counter "durinn.confirmed"

(* Candidate extraction: collect the serialized trace's store windows and
   loads (IRH off: a serial execution publishes nothing, the heuristic
   would discard everything) and pair every window that was not persisted
   immediately with the load sites reading overlapping bytes. *)
let candidates_of_trace trace =
  let c = Hawkset.Collector.collect ~irh:false trace in
  let windows = Hawkset.Collector.all_windows c in
  let loads = Hawkset.Collector.all_loads c in
  let by_store : (string, (string, unit) Hashtbl.t) Hashtbl.t =
    Hashtbl.create 32
  in
  List.iter
    (fun (w : Hawkset.Access.window) ->
      (* A store persisted in place (window closed by its own persist with
         nothing in between) is still a candidate for Durinn: the window
         exists on concurrent re-execution. Only overwritten-dead stores
         are skipped. *)
      match w.Hawkset.Access.w_end with
      | Hawkset.Access.Overwritten_same_thread
      | Hawkset.Access.Overwritten_other_thread ->
          ()
      | Hawkset.Access.Persisted_same_thread
      | Hawkset.Access.Persisted_other_thread | Hawkset.Access.Open_at_exit ->
          let store_loc = Trace.Site.location w.Hawkset.Access.w_site in
          let tbl =
            match Hashtbl.find_opt by_store store_loc with
            | Some t -> t
            | None ->
                let t = Hashtbl.create 8 in
                Hashtbl.add by_store store_loc t;
                t
          in
          List.iter
            (fun (l : Hawkset.Access.load) ->
              if
                Pmem.Layout.ranges_overlap w.Hawkset.Access.w_addr
                  w.Hawkset.Access.w_size l.Hawkset.Access.l_addr
                  l.Hawkset.Access.l_size
              then
                Hashtbl.replace tbl (Trace.Site.location l.Hawkset.Access.l_site)
                  ())
            loads)
    windows;
  Hashtbl.fold
    (fun store_loc tbl acc ->
      let load_locs = List.sort compare (Hashtbl.fold (fun l () a -> l :: a) tbl []) in
      if load_locs = [] then acc
      else { cand_store_loc = store_loc; cand_load_locs = load_locs } :: acc)
    by_store []
  |> List.sort compare

let run ~serial_run ~concurrent_run ?(attempts_per_candidate = 3) ?(delay = 60)
    () =
  let t0 = Unix.gettimeofday () in
  (* Phase 1: serialized execution. *)
  let serial = serial_run () in
  let candidates = candidates_of_trace serial.Machine.Sched.trace in
  Obs.Metric.add obs_candidates (List.length candidates);
  (* Phase 2: targeted adversarial re-executions. *)
  let executions = ref 0 in
  let confirmed : (string * string, unit) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun cand ->
      let found = ref false in
      for attempt = 0 to attempts_per_candidate - 1 do
        if not !found then begin
          incr executions;
          Obs.Metric.incr obs_executions;
          let r =
            concurrent_run
              ~policy:
                (Machine.Sched.Targeted_delay
                   { store_loc = cand.cand_store_loc; duration = delay })
              ~seed:attempt
          in
          List.iter
            (fun (o : Machine.Sched.observation) ->
              let sl = Trace.Site.location o.Machine.Sched.obs_store_site in
              let ll = Trace.Site.location o.Machine.Sched.obs_load_site in
              if String.equal sl cand.cand_store_loc then begin
                Hashtbl.replace confirmed (sl, ll) ();
                found := true
              end)
            r.Machine.Sched.observations
        end
      done)
    candidates;
  Obs.Metric.add obs_confirmed (Hashtbl.length confirmed);
  {
    candidates;
    executions = !executions;
    confirmed =
      List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) confirmed []);
    seconds = Unix.gettimeofday () -. t0;
  }

let observed_pair report ~store_locs ~load_locs =
  List.exists
    (fun (s, l) -> List.mem s store_locs && List.mem l load_locs)
    report.confirmed
