type report = {
  executions : int;
  observations : Machine.Sched.observation list;
  seconds : float;
}

(* PMRace's cost is executions, its yield is direct observations — the
   Table 3 asymmetry, countable per run. *)
let obs_executions = Obs.Registry.counter "pmrace.executions"
let obs_hits = Obs.Registry.counter "pmrace.observation_hits"

let fuzz ~run ~seed_workload ?(threads = 8) ?(executions = 20)
    ?(mutation_seed = 0) ?(delay_probability = 0.05) ?(delay_duration = 40) ()
    =
  let t0 = Unix.gettimeofday () in
  let prng = Machine.Prng.create mutation_seed in
  let seen : (string * string, unit) Hashtbl.t = Hashtbl.create 32 in
  let observations = ref [] in
  let workload = ref seed_workload in
  for exec = 0 to executions - 1 do
    Obs.Metric.incr obs_executions;
    let per_thread = Workload.Seeds.split ~threads !workload in
    let policy =
      Machine.Sched.Delay_injection
        { probability = delay_probability; duration = delay_duration }
    in
    let r = run ~per_thread ~seed:(mutation_seed + exec) ~policy ~observe:true in
    List.iter
      (fun (o : Machine.Sched.observation) ->
        let key =
          ( Trace.Site.location o.Machine.Sched.obs_store_site,
            Trace.Site.location o.Machine.Sched.obs_load_site )
        in
        if not (Hashtbl.mem seen key) then begin
          Hashtbl.add seen key ();
          Obs.Metric.incr obs_hits;
          observations := o :: !observations
        end)
      r.Machine.Sched.observations;
    (* Mutate for the next execution (the first one runs the seed). *)
    workload := Workload.Seeds.mutate prng !workload
  done;
  {
    executions;
    observations = List.rev !observations;
    seconds = Unix.gettimeofday () -. t0;
  }

let observed report ~store_locs ~load_locs =
  List.exists
    (fun (o : Machine.Sched.observation) ->
      List.mem (Trace.Site.location o.Machine.Sched.obs_store_site) store_locs
      && List.mem (Trace.Site.location o.Machine.Sched.obs_load_site) load_locs)
    report.observations
