type divergence = {
  d_variant : string;
  d_kind : [ `Report | `Crash ];
  d_expected : string;
  d_actual : string;
}

(* check.* observability: counters for the CLI's --stats, timeline spans
   so a fuzzing run shows up in the Perfetto export. *)
let obs_traces = Obs.Registry.counter "check.traces"
let obs_events = Obs.Registry.counter "check.events"
let obs_comparisons = Obs.Registry.counter "check.comparisons"
let obs_divergences = Obs.Registry.counter "check.divergences"
let obs_minimize_probes = Obs.Registry.counter "check.minimize_probes"
let obs_faults_caught = Obs.Registry.counter "check.faults_caught"
let obs_faults_missed = Obs.Registry.counter "check.faults_missed"
let tl_fuzz = Obs.Timeline.name "check.fuzz"
let tl_minimize = Obs.Timeline.name "check.minimize"
let tl_hunt = Obs.Timeline.name "check.hunt"
let tl_divergence = Obs.Timeline.name "check.divergence"

(* Comparisons run in this process (mirrors [obs_comparisons], readable
   without a registry snapshot — fuzz reports delta it). *)
let comparisons_run = ref 0

let features = Hawkset.Analysis.all_features

let impl_name = function `Packed -> "packed" | `Tuple -> "tuple"

let check_variant acc ~variant ~expected f =
  incr comparisons_run;
  Obs.Metric.incr obs_comparisons;
  match f () with
  | actual ->
      if String.equal actual expected then acc
      else
        { d_variant = variant; d_kind = `Report; d_expected = expected;
          d_actual = actual }
        :: acc
  | exception e ->
      { d_variant = variant; d_kind = `Crash; d_expected = expected;
        d_actual = Printexc.to_string e }
      :: acc

(* One production run through the collector + parallel analysis, the
   path every front end takes. *)
let produced ~jobs ~memo ~dedup trace =
  let collected = Hawkset.Collector.collect ~dedup trace in
  let outcome =
    Hawkset.Par_analysis.analyse ~features ~jobs ~memo_impl:memo collected
  in
  Hawkset.Report.to_json outcome.Hawkset.Analysis.report

let divergences trace =
  let len = Trace.Tracebuf.length trace in
  (* The event-budget dimension: the full trace plus a truncating prefix
     (the spec applies the same deterministic cut). *)
  let budgets =
    (None, "full")
    :: (if len > 3 then [ (Some (2 * len / 3), "prefix") ] else [])
  in
  let divs =
    List.concat_map
      (fun (budget, bname) ->
        let cut =
          match budget with
          | Some b -> Trace.Tracebuf.prefix trace b
          | None -> trace
        in
        let expected =
          Hawkset.Report.to_json (Hawkset.Reference.pipeline cut)
        in
        let acc = ref [] in
        (* jobs × memo × dedup over the collector + Par_analysis path. *)
        List.iter
          (fun jobs ->
            List.iter
              (fun memo ->
                List.iter
                  (fun dedup ->
                    let variant =
                      Printf.sprintf "jobs=%d memo=%s dedup=%s budget=%s" jobs
                        (impl_name memo) (impl_name dedup) bname
                    in
                    acc :=
                      check_variant !acc ~variant ~expected (fun () ->
                          produced ~jobs ~memo ~dedup cut))
                  [ `Packed; `Tuple ])
              [ `Packed; `Tuple ])
          [ 1; 4 ];
        (* The assembled pipeline (event budget applied inside). *)
        List.iter
          (fun jobs ->
            let variant =
              Printf.sprintf "pipeline jobs=%d budget=%s" jobs bname
            in
            acc :=
              check_variant !acc ~variant ~expected (fun () ->
                  let config =
                    { Hawkset.Pipeline.default with jobs; event_budget = budget }
                  in
                  Hawkset.Report.to_json
                    (Hawkset.Pipeline.run ~config cut).Hawkset.Pipeline.races))
          [ 1; 4 ];
        (* Result cache, cold then warm: a complete run's bytes stored
           under (trace fingerprint, config fingerprint) must come back
           verbatim — and still equal the specification's. Budget runs
           are truncated results, which the cache contract excludes. *)
        if budget = None then begin
          let cache = Hawkset.Result_cache.create () in
          let config = { Hawkset.Pipeline.default with jobs = 1 } in
          let config_fp = Hawkset.Result_cache.config_fingerprint config in
          let trace_fp = Trace.Trace_io.fingerprint cut in
          acc :=
            check_variant !acc ~variant:"cache cold+warm" ~expected (fun () ->
                (match
                   Hawkset.Result_cache.find cache ~trace_fp ~config_fp
                 with
                | Some _ -> failwith "cold cache probe unexpectedly hit"
                | None -> ());
                let races =
                  (Hawkset.Pipeline.run ~config cut).Hawkset.Pipeline.races
                in
                Hawkset.Result_cache.add cache ~trace_fp ~config_fp
                  { Hawkset.Result_cache.e_races_json =
                      Hawkset.Report.to_json races;
                    e_canonical = Hawkset.Report.canonical races;
                    e_counters = [] };
                match
                  Hawkset.Result_cache.find cache ~trace_fp ~config_fp
                with
                | None -> failwith "warm cache probe missed"
                | Some e -> e.Hawkset.Result_cache.e_races_json)
        end;
        List.rev !acc)
      budgets
  in
  if divs <> [] then begin
    Obs.Metric.add obs_divergences (List.length divs);
    Obs.Timeline.instant tl_divergence ~arg:(List.length divs)
  end;
  divs

let failing trace = divergences trace <> []

(* ------------------------------------------------------------------ *)
(* Delta debugging                                                     *)
(* ------------------------------------------------------------------ *)

(* Split [l] into [n] near-equal contiguous chunks. *)
let split_chunks l n =
  let len = List.length l in
  let base = len / n and extra = len mod n in
  let rec go i rest acc =
    if i >= n then List.rev acc
    else
      let take = base + if i < extra then 1 else 0 in
      let rec grab k xs got =
        if k = 0 then (List.rev got, xs)
        else
          match xs with
          | [] -> (List.rev got, [])
          | x :: xs -> grab (k - 1) xs (x :: got)
      in
      let chunk, rest = grab take rest [] in
      go (i + 1) rest (chunk :: acc)
  in
  go 0 l []

let minimize ?failing:(pred = failing) trace =
  let test evs =
    Obs.Metric.incr obs_minimize_probes;
    pred (Trace.Tracebuf.of_list evs)
  in
  let events = Trace.Tracebuf.to_list trace in
  if not (test events) then
    invalid_arg "Conformance.minimize: trace does not fail";
  Obs.Timeline.begin_ tl_minimize ~arg:(List.length events);
  (* Zeller-Hildebrandt ddmin. Termination at granularity = length
     means no single-event removal fails: the result is 1-minimal. *)
  let rec ddmin events n =
    let len = List.length events in
    if len <= 1 then events
    else begin
      let chunks = split_chunks events (min n len) in
      let rec try_subsets = function
        | [] -> try_complements chunks []
        | c :: rest -> if test c then Some (c, 2) else try_subsets rest
      and try_complements todo before =
        match todo with
        | [] -> None
        | c :: rest ->
            let complement = List.concat (List.rev_append before rest) in
            if complement <> [] && test complement then
              Some (complement, max (n - 1) 2)
            else try_complements rest (c :: before)
      in
      match try_subsets chunks with
      | Some (subset, n') -> ddmin subset n'
      | None -> if n < len then ddmin events (min len (2 * n)) else events
    end
  in
  let minimal = ddmin events 2 in
  Obs.Timeline.end_ tl_minimize ~arg:(List.length minimal);
  Trace.Tracebuf.of_list minimal

(* ------------------------------------------------------------------ *)
(* Fuzzing and the mutation self-test                                  *)
(* ------------------------------------------------------------------ *)

type fuzz_report = {
  fz_traces : int;
  fz_events : int;
  fz_comparisons : int;
  fz_failures : (int * Trace.Tracebuf.t * divergence) list;
}

let fuzz ?(traces = 1000) ?(max_events = 64) ?(seed = 42)
    ?(max_failures = 5) () =
  Obs.Timeline.begin_ tl_fuzz ~arg:traces;
  let comparisons0 = !comparisons_run in
  let ran = ref 0 and events = ref 0 and failures = ref [] in
  (try
     for i = 0 to traces - 1 do
       if List.length !failures >= max_failures then raise Exit;
       let t = Gen.trace ~max_events ~seed:(seed + i) () in
       incr ran;
       events := !events + Trace.Tracebuf.length t;
       Obs.Metric.incr obs_traces;
       Obs.Metric.add obs_events (Trace.Tracebuf.length t);
       match divergences t with
       | [] -> ()
       | d :: _ -> failures := (seed + i, t, d) :: !failures
     done
   with Exit -> ());
  Obs.Timeline.end_ tl_fuzz ~arg:!ran;
  {
    fz_traces = !ran;
    fz_events = !events;
    fz_comparisons = !comparisons_run - comparisons0;
    fz_failures = List.rev !failures;
  }

type hunt_report = {
  h_fault : Hawkset.Fault.t;
  h_caught_seed : int option;
  h_original_events : int;
  h_minimized : Trace.Tracebuf.t option;
  h_divergence : divergence option;
  h_clean_without_fault : bool;
}

let hunt ?(traces = 1000) ?(max_events = 64) ?(seed = 42) fault =
  Obs.Timeline.begin_ tl_hunt;
  let result =
    Hawkset.Fault.with_fault fault (fun () ->
        let found = ref None in
        (try
           for i = 0 to traces - 1 do
             let t = Gen.trace ~max_events ~seed:(seed + i) () in
             if failing t then begin
               found := Some (seed + i, t);
               raise Exit
             end
           done
         with Exit -> ());
        match !found with
        | None -> None
        | Some (s, t) ->
            let minimized = minimize t in
            Some (s, t, minimized, divergences minimized))
  in
  let report =
    match result with
    | None ->
        Obs.Metric.incr obs_faults_missed;
        { h_fault = fault; h_caught_seed = None; h_original_events = 0;
          h_minimized = None; h_divergence = None;
          h_clean_without_fault = false }
    | Some (s, t, minimized, divs) ->
        Obs.Metric.incr obs_faults_caught;
        (* Disarmed ([with_fault] restored the previous state), the
           reproducer must be conformant: the divergence isolates the
           fault, not a latent production bug. *)
        let clean = not (failing minimized) in
        { h_fault = fault; h_caught_seed = Some s;
          h_original_events = Trace.Tracebuf.length t;
          h_minimized = Some minimized;
          h_divergence = (match divs with d :: _ -> Some d | [] -> None);
          h_clean_without_fault = clean }
  in
  Obs.Timeline.end_ tl_hunt;
  report

let save_fixture ~dir ~name trace =
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let path = Filename.concat dir (name ^ ".trace") in
  Trace.Trace_io.save path trace;
  path
