(** Differential conformance runner, delta-debugging minimizer and
    mutation self-test.

    The oracle is {!Hawkset.Reference.pipeline} — the naive executable
    specification. [divergences] replays one trace through the
    production pipeline across the full configuration matrix (jobs 1/4 ×
    memo implementation × dedup implementation × result-cache cold/warm
    × event-budget prefix) and reports every variant whose
    {!Hawkset.Report.to_json} bytes differ from the specification's — a
    witness, occurrence-count, ordering or site mismatch all surface, as
    does a production crash.

    [minimize] shrinks a failing trace with ddmin to a locally-minimal
    reproducer: removing any single event makes the failure disappear.

    [hunt] is the self-test: arm one {!Hawkset.Fault} and prove the
    fuzzer catches it, minimizes it and that the minimized trace passes
    clean with the fault disarmed — the oracle has teeth. *)

type divergence = {
  d_variant : string;  (** Which matrix point diverged, e.g. ["jobs=4 memo=tuple dedup=packed budget=full"]. *)
  d_kind : [ `Report | `Crash ];
  d_expected : string;  (** Specification report JSON. *)
  d_actual : string;  (** Production report JSON, or the exception. *)
}

val divergences : Trace.Tracebuf.t -> divergence list
(** Run the full matrix on one trace. Empty means conformant. Never
    raises on a production failure (it becomes a [`Crash] divergence);
    a specification failure does escape — the oracle crashing is a bug
    in the oracle. *)

val failing : Trace.Tracebuf.t -> bool
(** [divergences t <> []]. *)

val minimize :
  ?failing:(Trace.Tracebuf.t -> bool) -> Trace.Tracebuf.t -> Trace.Tracebuf.t
(** Delta-debug (ddmin) the trace down to a locally-minimal failing
    subsequence under the predicate (default {!failing}). The input must
    fail; the result still fails and loses the failure when any single
    event is removed. Event subsequences are always well-formed inputs —
    the collector is total — so no repair pass is needed. *)

type fuzz_report = {
  fz_traces : int;  (** Traces generated and compared. *)
  fz_events : int;  (** Total events across those traces. *)
  fz_comparisons : int;  (** Matrix points compared. *)
  fz_failures : (int * Trace.Tracebuf.t * divergence) list;
      (** (seed, failing trace, first divergence); minimization is the
          caller's choice. *)
}

val fuzz :
  ?traces:int ->
  ?max_events:int ->
  ?seed:int ->
  ?max_failures:int ->
  unit ->
  fuzz_report
(** Generate [traces] traces from consecutive seeds starting at [seed]
    (defaults 1000 / 64 / 42) and run {!divergences} on each; stop early
    after [max_failures] (default 5) failing traces. *)

type hunt_report = {
  h_fault : Hawkset.Fault.t;
  h_caught_seed : int option;  (** Seed of the first diverging trace; [None] = missed. *)
  h_original_events : int;
  h_minimized : Trace.Tracebuf.t option;  (** Minimized reproducer (fault armed). *)
  h_divergence : divergence option;  (** First divergence of the minimized trace. *)
  h_clean_without_fault : bool;
      (** The minimized trace is conformant once the fault is disarmed —
          i.e. the reproducer isolates the fault, not a real bug. *)
}

val hunt :
  ?traces:int -> ?max_events:int -> ?seed:int -> Hawkset.Fault.t -> hunt_report
(** Arm the fault, fuzz until a divergence appears (same defaults as
    {!fuzz}), minimize it with the fault still armed, then re-check the
    reproducer with the fault disarmed. *)

val save_fixture : dir:string -> name:string -> Trace.Tracebuf.t -> string
(** Write the trace to [dir/name.trace] via {!Trace.Trace_io.save}
    (creating [dir] if needed) and return the path. *)
