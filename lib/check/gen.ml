(* The address space is two cache lines, so stores collide, flushes
   cover many unrelated open windows, and word-crossing accesses are
   common. Sites are drawn from small pools shared by all threads so the
   same (store site, load site) pair witnesses repeatedly — exercising
   report aggregation, not just report creation. *)

let base_addr = 128 (* start of line 2 *)
let span = 2 * Pmem.Layout.line_size (* bytes 128..383: lines 2 and 3 *)
let lock_ids = 3
let store_lines = 10 (* store sites: gen:1 .. gen:10 *)
let load_lines = 10 (* load sites: gen:11 .. gen:20 *)

let site_file = "gen"
let store_site rs = Trace.Site.v site_file (1 + Random.State.int rs store_lines)

let load_site rs =
  Trace.Site.v site_file (store_lines + 1 + Random.State.int rs load_lines)

let sizes = [| 1; 2; 4; 8; 8; 8; 16 |]

let pick_addr rs size =
  let addr = base_addr + Random.State.int rs (span - size + 1) in
  (* Half the accesses are word-aligned (the common case in real code);
     the rest land anywhere, crossing word and line boundaries. *)
  if Random.State.bool rs then
    max base_addr (addr - (addr mod Pmem.Layout.word_size))
  else addr

let line_of addr = addr - (addr mod Pmem.Layout.line_size)

let store_ev rs tid =
  let size = sizes.(Random.State.int rs (Array.length sizes)) in
  let addr = pick_addr rs size in
  Trace.Event.Store
    { tid; addr; size; site = store_site rs;
      non_temporal = Random.State.int rs 8 = 0 }

let load_ev rs tid =
  let size = sizes.(Random.State.int rs (Array.length sizes)) in
  let addr = pick_addr rs size in
  Trace.Event.Load { tid; addr; size; site = load_site rs }

let flush_ev rs tid =
  let kinds = [| Trace.Event.Clwb; Trace.Event.Clflushopt; Trace.Event.Clflush |] in
  let addr = base_addr + Random.State.int rs span in
  Trace.Event.Flush
    { tid; line = line_of addr; kind = kinds.(Random.State.int rs 3);
      site = Trace.Site.none }

let fence_ev tid = Trace.Event.Fence { tid; site = Trace.Site.none }

(* One atomic script chunk: a self-contained event run that can be kept
   or dropped whole, so trimming to the event budget never unbalances a
   lock section or splits a persist idiom. *)
let rec chunk rs ~depth tid =
  match Random.State.int rs (if depth >= 2 then 10 else 12) with
  | 0 | 1 | 2 -> [ store_ev rs tid ]
  | 3 | 4 | 5 -> [ load_ev rs tid ]
  | 6 ->
      (* The canonical persist idiom: store, flush its line, fence. *)
      let st = store_ev rs tid in
      let addr =
        match st with Trace.Event.Store { addr; _ } -> addr | _ -> assert false
      in
      [ st;
        Trace.Event.Flush
          { tid; line = line_of addr; kind = Trace.Event.Clwb;
            site = Trace.Site.none };
        fence_ev tid ]
  | 7 -> [ flush_ev rs tid ]
  | 8 -> [ fence_ev tid ]
  | 9 -> [ flush_ev rs tid; fence_ev tid ]
  | _ ->
      (* Lock section (possibly nested, possibly reentrant on the same
         lock): acquire, 1-3 chunks, release. *)
      let lock = Trace.Lock_id.of_int (Random.State.int rs lock_ids) in
      let body =
        List.concat
          (List.init
             (1 + Random.State.int rs 3)
             (fun _ -> chunk rs ~depth:(depth + 1) tid))
      in
      (Trace.Event.Lock_acquire { tid; lock; site = Trace.Site.none } :: body)
      @ [ Trace.Event.Lock_release { tid; lock; site = Trace.Site.none } ]

let gen ?(max_events = 64) rs =
  let workers = 1 + Random.State.int rs 4 in
  let tids = Array.init (workers + 1) Trace.Tid.of_int in
  (* Per-thread scripts (index 0 = main), sized to the budget: every
     worker costs a create (and usually a join), so scripts share what
     remains. *)
  let overhead = 2 * workers in
  let budget = max 4 (max_events - overhead) in
  let scripts =
    Array.init (workers + 1) (fun i ->
        let share = max 2 (budget / (workers + 1)) in
        let q = Queue.create () in
        let n = ref 0 in
        while !n < share do
          let c = chunk rs ~depth:0 tids.(i) in
          if !n = 0 || !n + List.length c <= share then begin
            List.iter (fun e -> Queue.add e q) c;
            n := !n + List.length c
          end
          else n := share (* would overflow: stop this script *)
        done;
        q)
  in
  let buf = Trace.Tracebuf.create () in
  let created = Array.make (workers + 1) false in
  created.(0) <- true;
  let emitted = ref 0 in
  let emit e =
    if !emitted < max_events then begin
      Trace.Tracebuf.push buf e;
      incr emitted
    end
  in
  (* Random fair drain: each step either runs one event of a created
     thread or creates a not-yet-created worker. A worker whose create
     has not been emitted never runs. *)
  let runnable () =
    let r = ref [] in
    for i = workers downto 0 do
      if created.(i) && not (Queue.is_empty scripts.(i)) then r := i :: !r
    done;
    !r
  in
  let uncreated () =
    let r = ref [] in
    for i = workers downto 1 do
      if not created.(i) then r := i :: !r
    done;
    !r
  in
  let continue = ref true in
  while !continue && !emitted < max_events do
    let run = runnable () and mk = uncreated () in
    let choices = List.length run + List.length mk in
    if choices = 0 then continue := false
    else begin
      let k = Random.State.int rs choices in
      if k < List.length run then
        emit (Queue.pop scripts.(List.nth run k))
      else begin
        let i = List.nth mk (k - List.length run) in
        created.(i) <- true;
        emit (Trace.Event.Thread_create { parent = tids.(0); child = tids.(i) })
      end
    end
  done;
  (* Join most created workers (in random order); some stay unjoined —
     their windows are open at exit and concurrent with everything
     later. *)
  for i = 1 to workers do
    if created.(i) && Random.State.int rs 5 > 0 then
      emit (Trace.Event.Thread_join { waiter = tids.(0); joined = tids.(i) })
  done;
  buf

let trace ?max_events ~seed () =
  gen ?max_events (Random.State.make [| 0x9e3779b9; seed |])

let print t =
  String.concat "\n"
    (List.map Trace.Trace_io.event_to_line (Trace.Tracebuf.to_list t))

let arbitrary ?max_events () =
  QCheck.make ~print (fun rs -> gen ?max_events rs)
