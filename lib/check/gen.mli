(** Synthetic trace generator for the conformance fuzzer.

    Generates well-formed event sequences — valid thread ids (every
    worker's events are preceded by its [Thread_create]), balanced lock
    nesting per thread, a bounded address space — that deliberately
    explore shapes no [lib/apps] workload reaches: unaligned and
    word-crossing accesses of mixed sizes, partial overlaps, flushes
    without fences and fences without flushes, flushes of lines nobody
    stored to, reentrant lock sections, unjoined threads, loads of
    never-stored words, and sites shared across threads and operations
    (so reports aggregate multiple witnessing pairs).

    All randomness comes from the supplied [Random.State.t], so a trace
    is a pure function of its seed. *)

val gen : ?max_events:int -> Random.State.t -> Trace.Tracebuf.t
(** Generate one trace of at most [max_events] events (default 64). *)

val trace : ?max_events:int -> seed:int -> unit -> Trace.Tracebuf.t
(** [trace ~seed ()] is the deterministic trace of [seed]. *)

val arbitrary : ?max_events:int -> unit -> Trace.Tracebuf.t QCheck.arbitrary
(** QCheck wrapper around {!gen} (no shrinker — the delta-debugging
    minimizer in {!Check} owns shrinking), printing traces in the
    {!Trace.Trace_io} line format. *)

val print : Trace.Tracebuf.t -> string
(** The trace in {!Trace.Trace_io} line format (what a saved fixture
    contains, minus the trailer). *)
