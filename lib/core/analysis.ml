type features = {
  effective_lockset : bool;
  timestamps : bool;
  vector_clocks : bool;
}

let all_features =
  { effective_lockset = true; timestamps = true; vector_clocks = true }

let traditional =
  { effective_lockset = false; timestamps = false; vector_clocks = true }

type outcome = {
  report : Report.t;
  pairs : int;
  words_analysed : int;
  words_total : int;
}

(* Observability counters for the §4 optimisations: how much work the
   memoisation and happens-before pruning actually save. All bumps happen
   on deterministic control paths — exact values are seed-reproducible.
   The memo hit/miss split is derived from totals (misses = distinct keys,
   hits = lookups - misses), which makes the values independent of both
   the word iteration order and the parallel sharding. *)
let obs_ls_memo_hits = Obs.Registry.counter "analysis.lockset_memo_hits"
let obs_ls_memo_misses = Obs.Registry.counter "analysis.lockset_memo_misses"
let obs_vc_memo_hits = Obs.Registry.counter "analysis.vclock_memo_hits"
let obs_vc_comparisons = Obs.Registry.counter "analysis.vclock_comparisons"

(* These three are bumped through per-domain {!Obs.Buffer} cells and reach
   the registry at flush time; registering them here keeps their zero
   values in snapshots taken before the first analysis. *)
let () =
  List.iter
    (fun name -> ignore (Obs.Registry.counter name : Obs.Metric.counter))
    [
      "analysis.pairs_examined"; "analysis.pairs_pruned_hb";
      "analysis.races_reported";
    ]

module Kernel = struct
  type memo = {
    disjoint_memo : (int * int, bool) Hashtbl.t;
    leq_memo : (int * int, bool) Hashtbl.t;
    mutable ls_lookups : int;
    mutable vc_lookups : int;
  }

  let make_memo () =
    {
      disjoint_memo = Hashtbl.create 256;
      leq_memo = Hashtbl.create 256;
      ls_lookups = 0;
      vc_lookups = 0;
    }

  type stats = {
    buf : Obs.Buffer.t;
    s_pairs : Obs.Buffer.cell;
    s_pruned_hb : Obs.Buffer.cell;
    s_races : Obs.Buffer.cell;
  }

  let make_stats () =
    let buf = Obs.Buffer.create () in
    {
      buf;
      s_pairs = Obs.Buffer.cell buf "analysis.pairs_examined";
      s_pruned_hb = Obs.Buffer.cell buf "analysis.pairs_pruned_hb";
      s_races = Obs.Buffer.cell buf "analysis.races_reported";
    }

  let pairs stats = Obs.Buffer.value stats.s_pairs
  let buffer stats = stats.buf
  let sorted_words = Collector.sorted_load_words

  (* Memoized comparisons on interned ids (§4: "direct comparison"). *)
  let disjoint ~tables ~memo a b =
    memo.ls_lookups <- memo.ls_lookups + 1;
    let key = (a, b) in
    match Hashtbl.find_opt memo.disjoint_memo key with
    | Some r -> r
    | None ->
        let r =
          Lockset.disjoint_locks
            (Access.Ls_table.get tables.Access.ls a)
            (Access.Ls_table.get tables.Access.ls b)
        in
        Hashtbl.add memo.disjoint_memo key r;
        r

  let leq ~tables ~memo a b =
    memo.vc_lookups <- memo.vc_lookups + 1;
    let key = (a, b) in
    match Hashtbl.find_opt memo.leq_memo key with
    | Some r -> r
    | None ->
        let r =
          Vclock.leq
            (Access.Vc_table.get tables.Access.vc a)
            (Access.Vc_table.get tables.Access.vc b)
        in
        Hashtbl.add memo.leq_memo key r;
        r

  (* The load may fall inside the store's visible-but-not-durable window:
     it must not happen-before the store, and the window's end (the
     persistency, §3.1.2's Persist3 discussion) must not happen-before the
     load. A window that never closed can race with anything after the
     store. *)
  let may_overlap_window ~features ~tables ~memo (w : Access.window)
      (l : Access.load) =
    (not features.vector_clocks)
    || (not (leq ~tables ~memo l.Access.l_vec w.Access.w_store_vec))
       &&
       match w.Access.w_end_vec with
       | None -> true
       | Some e -> not (leq ~tables ~memo e l.Access.l_vec)

  let analyse_word ~features ~memo ~stats (c : Collector.result) word report =
    match
      ( Hashtbl.find_opt c.Collector.loads_by_word word,
        Hashtbl.find_opt c.Collector.windows_by_word word )
    with
    | Some loads, Some windows ->
        let tables = c.Collector.tables in
        let report = ref report in
        List.iter
          (fun (l : Access.load) ->
            List.iter
              (fun (w : Access.window) ->
                (* Examine each (window, load) pair at one canonical
                   word even when the ranges share several. *)
                let canonical =
                  Pmem.Layout.word_index (max w.Access.w_addr l.Access.l_addr)
                in
                if
                  canonical = word
                  && w.Access.w_tid <> l.Access.l_tid
                  && Pmem.Layout.ranges_overlap w.Access.w_addr w.Access.w_size
                       l.Access.l_addr l.Access.l_size
                then begin
                  Obs.Buffer.incr stats.s_pairs;
                  if not (may_overlap_window ~features ~tables ~memo w l) then
                    Obs.Buffer.incr stats.s_pruned_hb
                  else
                    let store_ls =
                      if features.effective_lockset then w.Access.w_eff
                      else w.Access.w_store_ls
                    in
                    if disjoint ~tables ~memo store_ls l.Access.l_ls then begin
                      Obs.Buffer.incr stats.s_races;
                      report :=
                        Report.add !report ~store_site:w.Access.w_site
                          ~load_site:l.Access.l_site ~store_tid:w.Access.w_tid
                          ~load_tid:l.Access.l_tid
                          ~addr:(max w.Access.w_addr l.Access.l_addr)
                          ~window_end:w.Access.w_end
                    end
                end)
              windows)
          loads;
        !report
    | _ -> report

  (* Global-registry flush for the memo counters. The split is computed
     from totals so the published values are those of a single shared memo
     table — i.e. the sequential run's — no matter how many per-domain
     tables actually served the lookups. *)
  let flush_memo_counters ~ls_lookups ~ls_misses ~vc_lookups ~vc_misses =
    Obs.Metric.add obs_ls_memo_misses ls_misses;
    Obs.Metric.add obs_ls_memo_hits (ls_lookups - ls_misses);
    Obs.Metric.add obs_vc_comparisons vc_misses;
    Obs.Metric.add obs_vc_memo_hits (vc_lookups - vc_misses)
end

let run ?(features = all_features) ?stop (c : Collector.result) =
  let memo = Kernel.make_memo () in
  let stats = Kernel.make_stats () in
  let words = Kernel.sorted_words c in
  let report = ref Report.empty in
  let analysed = ref 0 in
  (* Word boundaries are the cancellation points: a deadline never tears a
     word's pair enumeration, so a truncated report is exactly the full
     analysis of the words it did visit. *)
  (try
     Array.iter
       (fun word ->
         (match stop with
         | Some f when f () -> raise Exit
         | Some _ | None -> ());
         report := Kernel.analyse_word ~features ~memo ~stats c word !report;
         incr analysed)
       words
   with Exit -> ());
  let pairs = Kernel.pairs stats in
  Obs.Buffer.flush stats.Kernel.buf;
  Kernel.flush_memo_counters
    ~ls_lookups:memo.Kernel.ls_lookups
    ~ls_misses:(Hashtbl.length memo.Kernel.disjoint_memo)
    ~vc_lookups:memo.Kernel.vc_lookups
    ~vc_misses:(Hashtbl.length memo.Kernel.leq_memo);
  Obs.Logger.debug ~section:"analysis" (fun () ->
      Printf.sprintf "analyse: %d pairs examined, %d reports" pairs
        (Report.count !report));
  {
    report = !report;
    pairs;
    words_analysed = !analysed;
    words_total = Array.length words;
  }

let analyse ?features c = (run ?features c).report
