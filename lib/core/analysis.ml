type features = {
  effective_lockset : bool;
  timestamps : bool;
  vector_clocks : bool;
}

let all_features =
  { effective_lockset = true; timestamps = true; vector_clocks = true }

let traditional =
  { effective_lockset = false; timestamps = false; vector_clocks = true }

let last_pairs = ref 0
let pairs_examined () = !last_pairs

(* Observability counters for the §4 optimisations: how much work the
   memoisation and happens-before pruning actually save. All bumps happen
   on deterministic control paths — exact values are seed-reproducible. *)
let obs_pairs = Obs.Registry.counter "analysis.pairs_examined"
let obs_pairs_pruned_hb = Obs.Registry.counter "analysis.pairs_pruned_hb"
let obs_ls_memo_hits = Obs.Registry.counter "analysis.lockset_memo_hits"
let obs_ls_memo_misses = Obs.Registry.counter "analysis.lockset_memo_misses"
let obs_vc_memo_hits = Obs.Registry.counter "analysis.vclock_memo_hits"
let obs_vc_comparisons = Obs.Registry.counter "analysis.vclock_comparisons"
let obs_races = Obs.Registry.counter "analysis.races_reported"

let analyse ?(features = all_features) (c : Collector.result) =
  let tables = c.Collector.tables in
  let pairs = ref 0 in
  (* Memoized comparisons on interned ids (§4: "direct comparison"). *)
  let disjoint_memo : (int * int, bool) Hashtbl.t = Hashtbl.create 256 in
  let disjoint a b =
    let key = (a, b) in
    match Hashtbl.find_opt disjoint_memo key with
    | Some r ->
        Obs.Metric.incr obs_ls_memo_hits;
        r
    | None ->
        Obs.Metric.incr obs_ls_memo_misses;
        let r =
          Lockset.disjoint_locks
            (Access.Ls_table.get tables.Access.ls a)
            (Access.Ls_table.get tables.Access.ls b)
        in
        Hashtbl.add disjoint_memo key r;
        r
  in
  let leq_memo : (int * int, bool) Hashtbl.t = Hashtbl.create 256 in
  let leq a b =
    let key = (a, b) in
    match Hashtbl.find_opt leq_memo key with
    | Some r ->
        Obs.Metric.incr obs_vc_memo_hits;
        r
    | None ->
        Obs.Metric.incr obs_vc_comparisons;
        let r =
          Vclock.leq
            (Access.Vc_table.get tables.Access.vc a)
            (Access.Vc_table.get tables.Access.vc b)
        in
        Hashtbl.add leq_memo key r;
        r
  in
  (* The load may fall inside the store's visible-but-not-durable window:
     it must not happen-before the store, and the window's end (the
     persistency, §3.1.2's Persist3 discussion) must not happen-before the
     load. A window that never closed can race with anything after the
     store. *)
  let may_overlap_window (w : Access.window) (l : Access.load) =
    (not features.vector_clocks)
    || (not (leq l.Access.l_vec w.Access.w_store_vec))
       &&
       match w.Access.w_end_vec with
       | None -> true
       | Some e -> not (leq e l.Access.l_vec)
  in
  let report = ref Report.empty in
  Hashtbl.iter
    (fun word loads ->
      match Hashtbl.find_opt c.Collector.windows_by_word word with
      | None -> ()
      | Some windows ->
          List.iter
            (fun (l : Access.load) ->
              List.iter
                (fun (w : Access.window) ->
                  (* Examine each (window, load) pair at one canonical
                     word even when the ranges share several. *)
                  let canonical =
                    Pmem.Layout.word_index (max w.Access.w_addr l.Access.l_addr)
                  in
                  if
                    canonical = word
                    && w.Access.w_tid <> l.Access.l_tid
                    && Pmem.Layout.ranges_overlap w.Access.w_addr
                         w.Access.w_size l.Access.l_addr l.Access.l_size
                  then begin
                    incr pairs;
                    Obs.Metric.incr obs_pairs;
                    if not (may_overlap_window w l) then
                      Obs.Metric.incr obs_pairs_pruned_hb
                    else
                      let store_ls =
                        if features.effective_lockset then w.Access.w_eff
                        else w.Access.w_store_ls
                      in
                      if disjoint store_ls l.Access.l_ls then begin
                        Obs.Metric.incr obs_races;
                        report :=
                          Report.add !report ~store_site:w.Access.w_site
                            ~load_site:l.Access.l_site ~store_tid:w.Access.w_tid
                            ~load_tid:l.Access.l_tid
                            ~addr:(max w.Access.w_addr l.Access.l_addr)
                            ~window_end:w.Access.w_end
                      end
                  end)
                windows)
            loads)
    c.Collector.loads_by_word;
  last_pairs := !pairs;
  Obs.Logger.debug ~section:"analysis" (fun () ->
      Printf.sprintf "analyse: %d pairs examined, %d reports" !pairs
        (Report.count !report));
  !report
