type features = {
  effective_lockset : bool;
  timestamps : bool;
  vector_clocks : bool;
}

let all_features =
  { effective_lockset = true; timestamps = true; vector_clocks = true }

let traditional =
  { effective_lockset = false; timestamps = false; vector_clocks = true }

type outcome = {
  report : Report.t;
  pairs : int;
  words_analysed : int;
  words_total : int;
}

(* Observability counters for the §4 optimisations: how much work the
   memoisation and happens-before pruning actually save. All bumps happen
   on deterministic control paths — exact values are seed-reproducible.
   The memo hit/miss split is derived from totals (misses = distinct keys,
   hits = lookups - misses), which makes the values independent of both
   the word iteration order and the parallel sharding. *)
let obs_ls_memo_hits = Obs.Registry.counter "analysis.lockset_memo_hits"
let obs_ls_memo_misses = Obs.Registry.counter "analysis.lockset_memo_misses"
let obs_vc_memo_hits = Obs.Registry.counter "analysis.vclock_memo_hits"
let obs_vc_comparisons = Obs.Registry.counter "analysis.vclock_comparisons"

(* These three are bumped through per-domain {!Obs.Buffer} cells and reach
   the registry at flush time; registering them here keeps their zero
   values in snapshots taken before the first analysis. *)
let () =
  List.iter
    (fun name -> ignore (Obs.Registry.counter name : Obs.Metric.counter))
    [
      "analysis.pairs_examined"; "analysis.pairs_pruned_hb";
      "analysis.races_reported";
    ]

module Kernel = struct
  type memo_impl = [ `Packed | `Tuple ]

  (* Memo tables for the interned-id comparisons. With [`Packed], a pair
     of ids becomes one int key ({!Trace.Packed_key.pair}) probed in an
     open-addressing map — no tuple allocation, no polymorphic hashing;
     ids above the packable range (unreachable for dense interner ids,
     but never silently wrong) fall back to the tuple tables, which also
     serve as the whole implementation under [`Tuple] (the reference
     path the differential tests compare against). Truth values are
     stored as 0/1 because {!Trace.Int_tbl.Map.find} returns -1 for
     absent. *)
  type memo = {
    m_packed : bool;
    p_disjoint : Trace.Int_tbl.Map.t;
    p_leq : Trace.Int_tbl.Map.t;
    t_disjoint : (int * int, bool) Hashtbl.t;
    t_leq : (int * int, bool) Hashtbl.t;
    mutable ls_lookups : int;
    mutable vc_lookups : int;
  }

  let make_memo ?(impl = `Packed) () =
    {
      m_packed = (impl = `Packed);
      p_disjoint = Trace.Int_tbl.Map.create ~size:512 ();
      p_leq = Trace.Int_tbl.Map.create ~size:512 ();
      t_disjoint = Hashtbl.create 64;
      t_leq = Hashtbl.create 64;
      ls_lookups = 0;
      vc_lookups = 0;
    }

  let memo_impl m : memo_impl = if m.m_packed then `Packed else `Tuple

  (* Empty the tables but keep their capacity: a pooled domain reusing a
     memo across [analyse] calls probes pre-grown arrays ("warm") while
     still producing the counters of a fresh one. *)
  let reset_memo m =
    Trace.Int_tbl.Map.clear m.p_disjoint;
    Trace.Int_tbl.Map.clear m.p_leq;
    Hashtbl.clear m.t_disjoint;
    Hashtbl.clear m.t_leq;
    m.ls_lookups <- 0;
    m.vc_lookups <- 0

  let ls_lookups m = m.ls_lookups
  let vc_lookups m = m.vc_lookups

  (* Distinct keys probed. A key is packed or not by value alone, so the
     two representations never overlap and the sum is exact. *)
  let ls_misses m =
    Trace.Int_tbl.Map.length m.p_disjoint + Hashtbl.length m.t_disjoint

  let vc_misses m = Trace.Int_tbl.Map.length m.p_leq + Hashtbl.length m.t_leq

  (* Globally distinct keys across several memo tables — the miss count a
     single shared table would have had (see [flush_memo_counters]). *)
  let union_misses memos =
    let union proj_p proj_t =
      let pseen = Trace.Int_tbl.Set.create ~size:1024 () in
      let tseen = Hashtbl.create 64 in
      List.iter
        (fun m ->
          Trace.Int_tbl.Map.iter_keys
            (fun k -> ignore (Trace.Int_tbl.Set.add pseen k : bool))
            (proj_p m);
          Hashtbl.iter
            (fun key _ ->
              if not (Hashtbl.mem tseen key) then Hashtbl.add tseen key ())
            (proj_t m))
        memos;
      Trace.Int_tbl.Set.length pseen + Hashtbl.length tseen
    in
    ( union (fun m -> m.p_disjoint) (fun m -> m.t_disjoint),
      union (fun m -> m.p_leq) (fun m -> m.t_leq) )

  type stats = {
    buf : Obs.Buffer.t;
    s_pairs : Obs.Buffer.cell;
    s_pruned_hb : Obs.Buffer.cell;
    s_races : Obs.Buffer.cell;
  }

  let make_stats () =
    let buf = Obs.Buffer.create () in
    {
      buf;
      s_pairs = Obs.Buffer.cell buf "analysis.pairs_examined";
      s_pruned_hb = Obs.Buffer.cell buf "analysis.pairs_pruned_hb";
      s_races = Obs.Buffer.cell buf "analysis.races_reported";
    }

  let pairs stats = Obs.Buffer.value stats.s_pairs
  let buffer stats = stats.buf
  let sorted_words = Collector.sorted_load_words
  let slot_count (c : Collector.result) = Array.length c.Collector.slots

  (* Estimated cost of a slot = the pair loop + the visit; used by
     {!Par_analysis}'s balanced partition. *)
  let slot_cost (c : Collector.result) i =
    let wi = c.Collector.slots.(i) in
    1
    + Array.length c.Collector.loads_of.(wi)
      * Array.length c.Collector.windows_of.(wi)

  (* Fault injection points for [hawkset check --mutate]. The faulted
     value is what gets memoized, so a seeded fault stays self-consistent
     within one analysis — only the verdicts (or, for the key fault, the
     table addressing) are wrong. Disarmed, each probe is one ref read. *)
  let raw_disjoint ~tables a b =
    Fault.on Fault.Drop_lockset_intersection
    || Lockset.disjoint_locks
         (Access.Ls_table.get tables.Access.ls a)
         (Access.Ls_table.get tables.Access.ls b)

  let pair_key a b =
    let a = if Fault.on Fault.Widen_packed_key then a land 1 else a in
    Trace.Packed_key.pair a b

  (* Memoized comparisons on interned ids (§4: "direct comparison"). *)
  let disjoint ~tables ~memo a b =
    memo.ls_lookups <- memo.ls_lookups + 1;
    if
      memo.m_packed && a <= Trace.Packed_key.pair_max
      && b <= Trace.Packed_key.pair_max
    then begin
      let key = pair_key a b in
      match Trace.Int_tbl.Map.find memo.p_disjoint key with
      | -1 ->
          let r = raw_disjoint ~tables a b in
          Trace.Int_tbl.Map.set memo.p_disjoint key (Bool.to_int r);
          r
      | v -> v <> 0
    end
    else begin
      let key = (a, b) in
      match Hashtbl.find_opt memo.t_disjoint key with
      | Some r -> r
      | None ->
          let r = raw_disjoint ~tables a b in
          Hashtbl.add memo.t_disjoint key r;
          r
    end

  let leq ~tables ~memo a b =
    memo.vc_lookups <- memo.vc_lookups + 1;
    if
      memo.m_packed && a <= Trace.Packed_key.pair_max
      && b <= Trace.Packed_key.pair_max
    then begin
      let key = pair_key a b in
      match Trace.Int_tbl.Map.find memo.p_leq key with
      | -1 ->
          let r =
            Vclock.leq
              (Access.Vc_table.get tables.Access.vc a)
              (Access.Vc_table.get tables.Access.vc b)
          in
          Trace.Int_tbl.Map.set memo.p_leq key (Bool.to_int r);
          r
      | v -> v <> 0
    end
    else begin
      let key = (a, b) in
      match Hashtbl.find_opt memo.t_leq key with
      | Some r -> r
      | None ->
          let r =
            Vclock.leq
              (Access.Vc_table.get tables.Access.vc a)
              (Access.Vc_table.get tables.Access.vc b)
          in
          Hashtbl.add memo.t_leq key r;
          r
    end

  (* The load may fall inside the store's visible-but-not-durable window:
     it must not happen-before the store, and the window's end (the
     persistency, §3.1.2's Persist3 discussion) must not happen-before the
     load. A window that never closed can race with anything after the
     store. *)
  let may_overlap_window ~features ~tables ~memo (w : Access.window)
      (l : Access.load) =
    Fault.on Fault.Skip_vclock_check
    || (not features.vector_clocks)
    || (not (leq ~tables ~memo l.Access.l_vec w.Access.w_store_vec))
       &&
       match w.Access.w_end_vec with
       | None -> true
       | Some e -> not (leq ~tables ~memo e l.Access.l_vec)

  let analyse_slot ~features ~memo ~stats (c : Collector.result) slot report =
    let wi = c.Collector.slots.(slot) in
    let windows = c.Collector.windows_of.(wi) in
    if Array.length windows = 0 then report
    else begin
      let word = c.Collector.words.(wi) in
      let loads = c.Collector.loads_of.(wi) in
      let tables = c.Collector.tables in
      let report = ref report in
      for li = 0 to Array.length loads - 1 do
        let l = loads.(li) in
        for wj = 0 to Array.length windows - 1 do
          let w = windows.(wj) in
          (* Examine each (window, load) pair at one canonical word even
             when the ranges share several. *)
          let canonical =
            Pmem.Layout.word_index (max w.Access.w_addr l.Access.l_addr)
          in
          if
            canonical = word
            && w.Access.w_tid <> l.Access.l_tid
            && Pmem.Layout.ranges_overlap w.Access.w_addr w.Access.w_size
                 l.Access.l_addr l.Access.l_size
          then begin
            Obs.Buffer.incr stats.s_pairs;
            if not (may_overlap_window ~features ~tables ~memo w l) then
              Obs.Buffer.incr stats.s_pruned_hb
            else
              let store_ls =
                if features.effective_lockset then w.Access.w_eff
                else w.Access.w_store_ls
              in
              if disjoint ~tables ~memo store_ls l.Access.l_ls then begin
                Obs.Buffer.incr stats.s_races;
                (* Forced only when this pair opens a new report, so the
                   interning-table resolution is off the per-occurrence
                   path. *)
                let witness () =
                  let locks id =
                    List.map Trace.Lock_id.to_int
                      (Lockset.locks (Access.Ls_table.get tables.Access.ls id))
                  in
                  let vec id =
                    Vclock.to_list (Access.Vc_table.get tables.Access.vc id)
                  in
                  {
                    Report.wt_store_locks = locks w.Access.w_store_ls;
                    wt_eff_locks = locks w.Access.w_eff;
                    wt_load_locks = locks l.Access.l_ls;
                    wt_store_vec = vec w.Access.w_store_vec;
                    wt_end_vec = Option.map vec w.Access.w_end_vec;
                    wt_load_vec = vec l.Access.l_vec;
                  }
                in
                report :=
                  Report.add ~witness !report ~store_site:w.Access.w_site
                    ~load_site:l.Access.l_site ~store_tid:w.Access.w_tid
                    ~load_tid:l.Access.l_tid
                    ~addr:(max w.Access.w_addr l.Access.l_addr)
                    ~window_end:w.Access.w_end
              end
          end
        done
      done;
      !report
    end

  (* Global-registry flush for the memo counters. The split is computed
     from totals so the published values are those of a single shared memo
     table — i.e. the sequential run's — no matter how many per-domain
     tables actually served the lookups. *)
  let flush_memo_counters ~ls_lookups ~ls_misses ~vc_lookups ~vc_misses =
    Obs.Metric.add obs_ls_memo_misses ls_misses;
    Obs.Metric.add obs_ls_memo_hits (ls_lookups - ls_misses);
    Obs.Metric.add obs_vc_comparisons vc_misses;
    Obs.Metric.add obs_vc_memo_hits (vc_lookups - vc_misses)
end

let tl_seq = Obs.Timeline.name "analysis.sequential"

let run ?(features = all_features) ?memo_impl ?stop (c : Collector.result) =
  let memo = Kernel.make_memo ?impl:memo_impl () in
  let stats = Kernel.make_stats () in
  let nslots = Kernel.slot_count c in
  let report = ref Report.empty in
  let analysed = ref 0 in
  Obs.Timeline.begin_ tl_seq ~arg:nslots;
  (* Word boundaries are the cancellation points: a deadline never tears a
     word's pair enumeration, so a truncated report is exactly the full
     analysis of the words it did visit. *)
  (try
     for slot = 0 to nslots - 1 do
       (match stop with
       | Some f when f () -> raise Exit
       | Some _ | None -> ());
       report := Kernel.analyse_slot ~features ~memo ~stats c slot !report;
       incr analysed
     done
   with Exit -> ());
  Obs.Timeline.end_ tl_seq ~arg:!analysed;
  let pairs = Kernel.pairs stats in
  Obs.Buffer.flush stats.Kernel.buf;
  Kernel.flush_memo_counters
    ~ls_lookups:(Kernel.ls_lookups memo)
    ~ls_misses:(Kernel.ls_misses memo)
    ~vc_lookups:(Kernel.vc_lookups memo)
    ~vc_misses:(Kernel.vc_misses memo);
  Obs.Logger.debug ~section:"analysis" (fun () ->
      Printf.sprintf "analyse: %d pairs examined, %d reports" pairs
        (Report.count !report));
  {
    report = !report;
    pairs;
    words_analysed = !analysed;
    words_total = nslots;
  }

let analyse ?features c = (run ?features c).report
