(** Stage 3: the PM-Aware Lockset Analysis (Algorithm 1).

    Pairs every store window with every load on an overlapping address
    range from a different thread that may execute concurrently according
    to the inter-thread happens-before analysis, and reports a
    persistency-induced race when the store's effective lockset and the
    load's lockset are disjoint (ignoring timestamps, which are only
    meaningful thread-locally).

    The implementation uses the optimizations of §4 instead of the
    quadratic presentation: accesses are grouped by word, records are
    deduplicated upstream, lockset/vector-clock comparisons are memoized
    on interned ids — with the id pair packed into a single int key, so a
    memo probe allocates nothing — and each (window, load) pair is
    examined at a single canonical word even when the ranges share
    several.

    Slots (load-bearing words) are visited in ascending word order, so the
    produced report is a deterministic function of the collected records —
    independent of hash-table layout — and {!Par_analysis} can reproduce
    it exactly by sharding contiguous slot ranges across domains.

    The [features] record exposes the design-ablation switches used by the
    evaluation: each corresponds to one step of the §3.1 construction. *)

type features = {
  effective_lockset : bool;
      (** [false]: use the store-time lockset instead of the effective
          lockset — traditional lockset analysis, misses Figure 1c. *)
  timestamps : bool;
      (** [false]: ignore logical-clock timestamps when intersecting the
          store and persist locksets — misses Figure 2d. *)
  vector_clocks : bool;
      (** [false]: skip the happens-before filter — reintroduces the
          Figure 3 false positives. *)
}

val all_features : features
val traditional : features
(** Plain lockset analysis with only the happens-before filter. *)

type outcome = {
  report : Report.t;
  pairs : int;
      (** (window, load) pairs examined — the work metric reported by the
          efficiency benchmarks. *)
  words_analysed : int;
      (** Slots actually visited; < [words_total] only when a [stop]
          predicate cut the run short. *)
  words_total : int;
}

val run :
  ?features:features ->
  ?memo_impl:[ `Packed | `Tuple ] ->
  ?stop:(unit -> bool) ->
  Collector.result ->
  outcome
(** Runs Algorithm 1 over the collected access records, sequentially, and
    returns the report together with the pair count. [stop] is polled at
    word boundaries; when it returns [true] the remaining words are
    skipped and the outcome covers exactly the words visited
    ([words_analysed] of [words_total]) — the pipeline's deadline
    degradation. [memo_impl] (default [`Packed]) selects the memo-key
    implementation; [`Tuple] is the tuple-keyed reference path the
    differential tests compare against. Both produce identical outcomes
    and counters. *)

val analyse : ?features:features -> Collector.result -> Report.t
(** [(run c).report]. *)

(** The slot-level kernel shared by this module's sequential driver and
    {!Par_analysis}'s sharded one. A (memo, stats) pair must only ever be
    used from one domain at a time; the collector result itself is
    read-only and may be shared (see {!Collector.result}). *)
module Kernel : sig
  type memo_impl = [ `Packed | `Tuple ]

  type memo
  (** Memo tables for lockset-disjointness and vector-clock [leq] queries,
      keyed by interned-id pairs. With [`Packed] the pair is packed into
      one int ({!Trace.Packed_key.pair}) probed in an open-addressing map
      (no allocation per probe); ids beyond the packable range fall back
      to tuple-keyed tables, which are the whole implementation under
      [`Tuple]. *)

  val make_memo : ?impl:memo_impl -> unit -> memo
  val memo_impl : memo -> memo_impl

  val reset_memo : memo -> unit
  (** Empty the tables and zero the lookup counters but keep the table
      capacity — a pooled domain reusing a memo across runs probes warm
      pre-grown arrays while producing the counters of a fresh memo. *)

  val ls_lookups : memo -> int  (** Total disjointness queries. *)

  val vc_lookups : memo -> int  (** Total [leq] queries. *)

  val ls_misses : memo -> int
  (** Distinct lockset-pair keys probed (= real computations). *)

  val vc_misses : memo -> int

  val union_misses : memo list -> int * int
  (** [(ls, vc)] counts of {e globally} distinct keys across the given
      memos — the misses one shared table would have had. Feeds
      {!flush_memo_counters} after a sharded run. *)

  type stats
  (** Per-domain deterministic counters (pairs examined, HB prunes, races
      reported), buffered in an {!Obs.Buffer} and flushed by the driver. *)

  val make_stats : unit -> stats
  val pairs : stats -> int
  val buffer : stats -> Obs.Buffer.t

  val sorted_words : Collector.result -> int array
  (** = {!Collector.sorted_load_words}. *)

  val slot_count : Collector.result -> int

  val slot_cost : Collector.result -> int -> int
  (** Estimated cost of a slot: 1 + |loads| × |windows| — the pair loop
      plus the visit. {!Par_analysis} balances shards on it. *)

  val analyse_slot :
    features:features ->
    memo:memo ->
    stats:stats ->
    Collector.result ->
    int ->
    Report.t ->
    Report.t
  (** [analyse_slot ~features ~memo ~stats c slot report] examines every
      (window, load) pair canonical to slot [slot]'s word and returns
      [report] extended with the races found, in the
      loads-outer/windows-inner order of the collected records. *)

  val flush_memo_counters :
    ls_lookups:int -> ls_misses:int -> vc_lookups:int -> vc_misses:int -> unit
  (** Publish the memoisation counters into {!Obs.Registry.global}. The
      hit/miss split must be computed from totals (misses = distinct keys,
      hits = lookups − misses) so the published values are those of one
      shared memo table regardless of how many per-domain tables served
      the lookups — the invariant that keeps counter snapshots identical
      across [jobs] settings. *)
end
