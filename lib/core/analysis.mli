(** Stage 3: the PM-Aware Lockset Analysis (Algorithm 1).

    Pairs every store window with every load on an overlapping address
    range from a different thread that may execute concurrently according
    to the inter-thread happens-before analysis, and reports a
    persistency-induced race when the store's effective lockset and the
    load's lockset are disjoint (ignoring timestamps, which are only
    meaningful thread-locally).

    The implementation uses the optimizations of §4 instead of the
    quadratic presentation: accesses are grouped by word, records are
    deduplicated upstream, lockset/vector-clock comparisons are memoized
    on interned ids, and each (window, load) pair is examined at a single
    canonical word even when the ranges share several.

    Words are visited in ascending order of their canonical index, so the
    produced report is a deterministic function of the collected records —
    independent of hash-table layout — and {!Par_analysis} can reproduce
    it exactly by sharding contiguous word ranges across domains.

    The [features] record exposes the design-ablation switches used by the
    evaluation: each corresponds to one step of the §3.1 construction. *)

type features = {
  effective_lockset : bool;
      (** [false]: use the store-time lockset instead of the effective
          lockset — traditional lockset analysis, misses Figure 1c. *)
  timestamps : bool;
      (** [false]: ignore logical-clock timestamps when intersecting the
          store and persist locksets — misses Figure 2d. *)
  vector_clocks : bool;
      (** [false]: skip the happens-before filter — reintroduces the
          Figure 3 false positives. *)
}

val all_features : features
val traditional : features
(** Plain lockset analysis with only the happens-before filter. *)

type outcome = {
  report : Report.t;
  pairs : int;
      (** (window, load) pairs examined — the work metric reported by the
          efficiency benchmarks. *)
  words_analysed : int;
      (** Canonical words actually visited; < [words_total] only when a
          [stop] predicate cut the run short. *)
  words_total : int;
}

val run : ?features:features -> ?stop:(unit -> bool) -> Collector.result -> outcome
(** Runs Algorithm 1 over the collected access records, sequentially, and
    returns the report together with the pair count. [stop] is polled at
    word boundaries; when it returns [true] the remaining words are
    skipped and the outcome covers exactly the words visited
    ([words_analysed] of [words_total]) — the pipeline's deadline
    degradation. *)

val analyse : ?features:features -> Collector.result -> Report.t
(** [(run c).report]. *)

(** The word-level kernel shared by this module's sequential driver and
    {!Par_analysis}'s sharded one. A (memo, stats) pair must only ever be
    used from one domain; the collector result itself is read-only and may
    be shared (see {!Collector.result}). *)
module Kernel : sig
  type memo = {
    disjoint_memo : (int * int, bool) Hashtbl.t;
        (** Lockset-pair disjointness, keyed by interned ids. *)
    leq_memo : (int * int, bool) Hashtbl.t;
        (** Vector-clock [leq], keyed by interned ids. *)
    mutable ls_lookups : int;  (** Total disjointness queries. *)
    mutable vc_lookups : int;  (** Total [leq] queries. *)
  }

  val make_memo : unit -> memo

  type stats
  (** Per-domain deterministic counters (pairs examined, HB prunes, races
      reported), buffered in an {!Obs.Buffer} and flushed by the driver. *)

  val make_stats : unit -> stats
  val pairs : stats -> int
  val buffer : stats -> Obs.Buffer.t

  val sorted_words : Collector.result -> int array
  (** = {!Collector.sorted_load_words}: the deterministic iteration and
      sharding domain. *)

  val analyse_word :
    features:features ->
    memo:memo ->
    stats:stats ->
    Collector.result ->
    int ->
    Report.t ->
    Report.t
  (** [analyse_word ~features ~memo ~stats c word report] examines every
      (window, load) pair canonical to [word] and returns [report]
      extended with the races found, in the loads-outer/windows-inner
      order of the collected lists. *)

  val flush_memo_counters :
    ls_lookups:int -> ls_misses:int -> vc_lookups:int -> vc_misses:int -> unit
  (** Publish the memoisation counters into {!Obs.Registry.global}. The
      hit/miss split must be computed from totals (misses = distinct keys,
      hits = lookups − misses) so the published values are those of one
      shared memo table regardless of how many per-domain tables served
      the lookups — the invariant that keeps counter snapshots identical
      across [jobs] settings. *)
end
