type stats = {
  c_events : int;
  c_stores : int;
  c_loads : int;
  c_windows : int;
  c_windows_opened : int;
  c_windows_closed : int;
  c_load_records : int;
  c_irh_discarded_stores : int;
  c_irh_discarded_loads : int;
  c_locksets : int;
  c_vclocks : int;
  c_words : int;
}

(* Per-process observability counters (Obs.Registry.global); collection
   adds each run's totals so front ends can snapshot/delta them. *)
let obs_events = Obs.Registry.counter "collector.events"
let obs_stores = Obs.Registry.counter "collector.stores"
let obs_loads = Obs.Registry.counter "collector.loads"
let obs_windows = Obs.Registry.counter "collector.windows_emitted"
let obs_windows_opened = Obs.Registry.counter "collector.windows_opened"
let obs_windows_closed = Obs.Registry.counter "collector.windows_closed"
let obs_load_records = Obs.Registry.counter "collector.load_records"
let obs_irh_stores = Obs.Registry.counter "collector.irh_discarded_stores"
let obs_irh_loads = Obs.Registry.counter "collector.irh_discarded_loads"
let obs_locksets = Obs.Registry.counter "collector.locksets_interned"
let obs_vclocks = Obs.Registry.counter "collector.vclocks_interned"
let obs_words = Obs.Registry.counter "collector.words_touched"

type result = {
  tables : Access.tables;
  windows_by_word : (int, Access.window list) Hashtbl.t;
  loads_by_word : (int, Access.load list) Hashtbl.t;
  stats : stats;
}

(* Per-thread tracking state (Lock Tracking + Thread Tracking components). *)
type thread_state = {
  mutable ls : Lockset.t;
  mutable acq_clock : int; (* logical clock, ticks at each acquisition *)
  mutable vec : Vclock.t;
  mutable vc_dirty : bool; (* batched vector-clock increment pending *)
}

(* Store metadata shared by the per-word open entries of one store. *)
type meta = {
  m_tid : int;
  m_addr : int;
  m_size : int;
  m_site_id : int;
  m_ls : Lockset.t;
  m_vec_id : int;
}

type open_entry = {
  oe_meta : meta;
  oe_word : int;
  oe_lo : int; (* byte subrange of the store within this word *)
  oe_hi : int; (* exclusive *)
  mutable oe_pending : int list; (* tids whose flush covers this entry *)
  mutable oe_closed : bool;
}

type pub_state = First_toucher of int | Published

module Site_table = Trace.Interner.Make (struct
  type t = Trace.Site.t

  let equal = Trace.Site.equal
  let hash = Trace.Site.hash
end)

type state = {
  irh : bool;
  timestamps : bool;
  eadr : bool;
  tables : Access.tables;
  sites : Site_table.t;
  mutable threads : thread_state array;
  mutable nthreads : int;
  open_by_word : (int, open_entry list ref) Hashtbl.t;
  pending_by_tid : (int, open_entry list ref) Hashtbl.t;
  pub : (int, pub_state) Hashtbl.t;
  windows_by_word : (int, Access.window list) Hashtbl.t;
  loads_by_word : (int, Access.load list) Hashtbl.t;
  window_dedup : (int * int * int * int * int * int * int, unit) Hashtbl.t;
  load_dedup : (int * int * int * int * int, unit) Hashtbl.t;
  mutable next_id : int;
  mutable n_windows : int;
  mutable n_opened : int;
  mutable n_closed : int;
  mutable n_load_records : int;
  mutable irh_stores : int;
  mutable irh_loads : int;
  mutable n_stores : int;
  mutable n_loads : int;
}

(* A fresh thread has a batched tick pending: its first PM access gives it
   a non-zero own component, so threads that never synchronized compare as
   concurrent rather than equal. *)
let fresh_thread () =
  { ls = Lockset.empty; acq_clock = 0; vec = Vclock.zero; vc_dirty = true }

let thread st tid =
  let tid = Trace.Tid.to_int tid in
  while tid >= st.nthreads do
    if st.nthreads = Array.length st.threads then begin
      let bigger = Array.make (max 8 (2 * st.nthreads)) (fresh_thread ()) in
      Array.blit st.threads 0 bigger 0 st.nthreads;
      (* Each slot needs its own record. *)
      for i = st.nthreads to Array.length bigger - 1 do
        bigger.(i) <- fresh_thread ()
      done;
      st.threads <- bigger
    end;
    st.nthreads <- st.nthreads + 1
  done;
  st.threads.(tid)

(* Lazy vector-clock tick: the first PM access after a thread create/join
   increments the thread's own component (§4 batching). *)
let touch_vec st tid =
  let th = thread st tid in
  if th.vc_dirty then begin
    th.vec <- Vclock.tick th.vec (Trace.Tid.to_int tid);
    th.vc_dirty <- false
  end;
  th

let publish st tid word =
  let tid = Trace.Tid.to_int tid in
  match Hashtbl.find_opt st.pub word with
  | None -> Hashtbl.replace st.pub word (First_toucher tid)
  | Some (First_toucher t) when t <> tid -> Hashtbl.replace st.pub word Published
  | Some (First_toucher _) | Some Published -> ()

let is_published st word =
  match Hashtbl.find_opt st.pub word with
  | Some Published -> true
  | Some (First_toucher _) | None -> false

let word_entries st word =
  match Hashtbl.find_opt st.open_by_word word with
  | Some r -> r
  | None ->
      let r = ref [] in
      Hashtbl.add st.open_by_word word r;
      r

let end_kind_tag = function
  | Access.Persisted_same_thread -> 0
  | Access.Persisted_other_thread -> 1
  | Access.Overwritten_same_thread -> 2
  | Access.Overwritten_other_thread -> 3
  | Access.Open_at_exit -> 4

let emit_window st entry ~eff ~end_vec ~kind =
  let m = entry.oe_meta in
  (* Timestamps have served their purpose (the same-thread intersection);
     strip them so windows from different atomic sections share ids. *)
  let eff_id = Access.Ls_table.intern st.tables.Access.ls (Lockset.strip_ts eff) in
  let evec = match end_vec with Some v -> v | None -> -1 in
  let key =
    (entry.oe_word, m.m_tid, m.m_site_id, eff_id, m.m_vec_id, evec,
     end_kind_tag kind)
  in
  if not (Hashtbl.mem st.window_dedup key) then begin
    Hashtbl.add st.window_dedup key ();
    let w =
      {
        Access.w_id = st.next_id;
        w_tid = m.m_tid;
        w_addr = m.m_addr;
        w_size = m.m_size;
        w_site = Site_table.get st.sites m.m_site_id;
        w_store_ls =
          Access.Ls_table.intern st.tables.Access.ls (Lockset.strip_ts m.m_ls);
        w_eff = eff_id;
        w_store_vec = m.m_vec_id;
        w_end_vec = end_vec;
        w_end = kind;
      }
    in
    st.next_id <- st.next_id + 1;
    st.n_windows <- st.n_windows + 1;
    let prev =
      Option.value ~default:[] (Hashtbl.find_opt st.windows_by_word entry.oe_word)
    in
    Hashtbl.replace st.windows_by_word entry.oe_word (w :: prev)
  end

(* Close a window. IRH: a store explicitly persisted while its word is
   still unpublished happened during initialization and is discarded. *)
let close_entry st entry ~eff ~end_vec ~kind =
  entry.oe_closed <- true;
  st.n_closed <- st.n_closed + 1;
  let persisted =
    match kind with
    | Access.Persisted_same_thread | Access.Persisted_other_thread -> true
    | Access.Overwritten_same_thread | Access.Overwritten_other_thread
    | Access.Open_at_exit ->
        false
  in
  if st.irh && persisted && not (is_published st entry.oe_word) then
    st.irh_stores <- st.irh_stores + 1
  else emit_window st entry ~eff ~end_vec ~kind

let effective_lockset st m ~closer_tid ~closer_ls =
  if m.m_tid = closer_tid then
    if st.timestamps then Lockset.inter_same_thread m.m_ls closer_ls
    else Lockset.inter_same_thread_no_ts m.m_ls closer_ls
  else
    (* A window closed by another thread cannot be spanned atomically by
       any lock the storing thread held. *)
    Lockset.empty

let on_store st ~tid ~addr ~size ~site =
  st.n_stores <- st.n_stores + 1;
  let th = touch_vec st tid in
  if st.eadr then
    (* eADR: the store is durable the moment it is visible — there is no
       window in which another thread could load unpersisted data. Only
       the publication state needs updating. *)
    List.iter (publish st tid) (Pmem.Layout.words_of_range addr size)
  else begin
  let itid = Trace.Tid.to_int tid in
  let vec_id = Access.Vc_table.intern st.tables.Access.vc th.vec in
  let site_id = Site_table.intern st.sites site in
  let words = Pmem.Layout.words_of_range addr size in
  List.iter (publish st tid) words;
  (* Overwrite: close overlapping open windows. *)
  List.iter
    (fun word ->
      let entries = word_entries st word in
      List.iter
        (fun e ->
          if
            (not e.oe_closed)
            && Pmem.Layout.ranges_overlap e.oe_lo (e.oe_hi - e.oe_lo) addr size
          then
            let kind =
              if e.oe_meta.m_tid = itid then Access.Overwritten_same_thread
              else Access.Overwritten_other_thread
            in
            close_entry st e
              ~eff:
                (effective_lockset st e.oe_meta ~closer_tid:itid
                   ~closer_ls:th.ls)
              ~end_vec:(Some vec_id) ~kind)
        !entries;
      entries := List.filter (fun e -> not e.oe_closed) !entries)
    words;
  (* Open new windows, one per touched word. *)
  let m =
    { m_tid = itid; m_addr = addr; m_size = size; m_site_id = site_id;
      m_ls = th.ls; m_vec_id = vec_id }
  in
  List.iter
    (fun word ->
      let wlo = word * Pmem.Layout.word_size in
      let whi = wlo + Pmem.Layout.word_size in
      let e =
        {
          oe_meta = m;
          oe_word = word;
          oe_lo = max addr wlo;
          oe_hi = min (addr + size) whi;
          oe_pending = [];
          oe_closed = false;
        }
      in
      let entries = word_entries st word in
      entries := e :: !entries;
      st.n_opened <- st.n_opened + 1)
    words
  end

let on_load st ~tid ~addr ~size ~site =
  st.n_loads <- st.n_loads + 1;
  let th = touch_vec st tid in
  let words = Pmem.Layout.words_of_range addr size in
  List.iter (publish st tid) words;
  let keep = (not st.irh) || List.exists (is_published st) words in
  if not keep then st.irh_loads <- st.irh_loads + 1
  else begin
    let site_id = Site_table.intern st.sites site in
    let ls_id =
      Access.Ls_table.intern st.tables.Access.ls (Lockset.strip_ts th.ls)
    in
    let vec_id = Access.Vc_table.intern st.tables.Access.vc th.vec in
    let itid = Trace.Tid.to_int tid in
    let record =
      lazy
        (let l =
           {
             Access.l_id = st.next_id;
             l_tid = itid;
             l_addr = addr;
             l_size = size;
             l_site = Site_table.get st.sites site_id;
             l_ls = ls_id;
             l_vec = vec_id;
           }
         in
         st.next_id <- st.next_id + 1;
         st.n_load_records <- st.n_load_records + 1;
         l)
    in
    List.iter
      (fun word ->
        let key = (word, itid, site_id, ls_id, vec_id) in
        if not (Hashtbl.mem st.load_dedup key) then begin
          Hashtbl.add st.load_dedup key ();
          let l = Lazy.force record in
          let prev =
            Option.value ~default:[] (Hashtbl.find_opt st.loads_by_word word)
          in
          Hashtbl.replace st.loads_by_word word (l :: prev)
        end)
      words
  end

let on_flush st ~tid ~line =
  ignore (touch_vec st tid);
  let itid = Trace.Tid.to_int tid in
  let first_word = line / Pmem.Layout.word_size in
  for w = first_word to first_word + (Pmem.Layout.line_size / Pmem.Layout.word_size) - 1 do
    match Hashtbl.find_opt st.open_by_word w with
    | None -> ()
    | Some entries ->
        List.iter
          (fun e ->
            if (not e.oe_closed) && not (List.mem itid e.oe_pending) then begin
              e.oe_pending <- itid :: e.oe_pending;
              let pl =
                match Hashtbl.find_opt st.pending_by_tid itid with
                | Some r -> r
                | None ->
                    let r = ref [] in
                    Hashtbl.add st.pending_by_tid itid r;
                    r
              in
              pl := e :: !pl
            end)
          !entries
  done

let on_fence st ~tid =
  let th = touch_vec st tid in
  let itid = Trace.Tid.to_int tid in
  match Hashtbl.find_opt st.pending_by_tid itid with
  | None -> ()
  | Some entries ->
      let vec_id = Access.Vc_table.intern st.tables.Access.vc th.vec in
      List.iter
        (fun e ->
          if (not e.oe_closed) && List.mem itid e.oe_pending then
            let kind =
              if e.oe_meta.m_tid = itid then Access.Persisted_same_thread
              else Access.Persisted_other_thread
            in
            close_entry st e
              ~eff:
                (effective_lockset st e.oe_meta ~closer_tid:itid
                   ~closer_ls:th.ls)
              ~end_vec:(Some vec_id) ~kind)
        !entries;
      Hashtbl.remove st.pending_by_tid itid

let on_acquire st ~tid ~lock =
  let th = thread st tid in
  th.acq_clock <- th.acq_clock + 1;
  th.ls <- Lockset.acquire th.ls lock ~ts:th.acq_clock

let on_release st ~tid ~lock =
  let th = thread st tid in
  th.ls <- Lockset.release th.ls lock

(* Thread creation: the parent's counter ticks, the child adopts the
   parent's clock and ticks its own counter (§3.1.2). Both threads also
   get a pending batched tick for their next PM access. *)
let on_create st ~parent ~child =
  let p = thread st parent in
  p.vec <- Vclock.tick p.vec (Trace.Tid.to_int parent);
  p.vc_dirty <- true;
  let c = thread st child in
  c.vec <- Vclock.tick p.vec (Trace.Tid.to_int child);
  c.vc_dirty <- true

let on_join st ~waiter ~joined =
  let j = thread st joined in
  let w = thread st waiter in
  w.vec <- Vclock.merge w.vec j.vec;
  w.vc_dirty <- true

let finalize st =
  (* Windows still open at the end of the trace never persisted: their
     effective lockset is empty and their happens-before window never
     closes. The IRH keeps them (they are exactly the unpersisted
     initialization stores that can race after publication). *)
  Hashtbl.iter
    (fun _word entries ->
      List.iter
        (fun e ->
          if not e.oe_closed then
            close_entry st e ~eff:Lockset.empty ~end_vec:None
              ~kind:Access.Open_at_exit)
        !entries)
    st.open_by_word

let pp_stats ppf s =
  Format.fprintf ppf
    "events=%d stores=%d loads=%d windows=%d (opened=%d closed=%d) \
     load_records=%d irh(st=%d ld=%d) locksets=%d vclocks=%d words=%d"
    s.c_events s.c_stores s.c_loads s.c_windows s.c_windows_opened
    s.c_windows_closed s.c_load_records s.c_irh_discarded_stores
    s.c_irh_discarded_loads s.c_locksets s.c_vclocks s.c_words

let collect ?(irh = true) ?(timestamps = true) ?(eadr = false) ?stop trace =
  let st =
    {
      irh;
      timestamps;
      eadr;
      tables = Access.create_tables ();
      sites = Site_table.create ();
      threads = Array.init 8 (fun _ -> fresh_thread ());
      nthreads = 0;
      open_by_word = Hashtbl.create 4096;
      pending_by_tid = Hashtbl.create 16;
      pub = Hashtbl.create 4096;
      windows_by_word = Hashtbl.create 4096;
      loads_by_word = Hashtbl.create 4096;
      window_dedup = Hashtbl.create 4096;
      load_dedup = Hashtbl.create 4096;
      next_id = 0;
      n_windows = 0;
      n_opened = 0;
      n_closed = 0;
      n_load_records = 0;
      irh_stores = 0;
      irh_loads = 0;
      n_stores = 0;
      n_loads = 0;
    }
  in
  Obs.Logger.debug ~section:"collector" (fun () ->
      Printf.sprintf "collect: %d events (irh=%b ts=%b eadr=%b)"
        (Trace.Tracebuf.length trace) irh timestamps eadr);
  let consumed = ref 0 in
  (* [stop] is polled every 512 events: a tripped deadline abandons the
     rest of the trace and finalizes what was tracked so far — the result
     is exactly the collection of the consumed prefix. *)
  (try
     Trace.Tracebuf.iter
       (fun ev ->
         (match stop with
         | Some f when !consumed land 511 = 0 && f () -> raise Exit
         | Some _ | None -> ());
         incr consumed;
         match ev with
         | Trace.Event.Store { tid; addr; size; site; non_temporal = _ } ->
             on_store st ~tid ~addr ~size ~site
         | Trace.Event.Load { tid; addr; size; site } ->
             on_load st ~tid ~addr ~size ~site
         | Trace.Event.Flush { tid; line; kind = _; site = _ } ->
             on_flush st ~tid ~line
         | Trace.Event.Fence { tid; site = _ } -> on_fence st ~tid
         | Trace.Event.Lock_acquire { tid; lock; site = _ } ->
             on_acquire st ~tid ~lock
         | Trace.Event.Lock_release { tid; lock; site = _ } ->
             on_release st ~tid ~lock
         | Trace.Event.Thread_create { parent; child } ->
             on_create st ~parent ~child
         | Trace.Event.Thread_join { waiter; joined } ->
             on_join st ~waiter ~joined)
       trace
   with Exit -> ());
  finalize st;
  let stats =
    {
      c_events = !consumed;
      c_stores = st.n_stores;
      c_loads = st.n_loads;
      c_windows = st.n_windows;
      c_windows_opened = st.n_opened;
      c_windows_closed = st.n_closed;
      c_load_records = st.n_load_records;
      c_irh_discarded_stores = st.irh_stores;
      c_irh_discarded_loads = st.irh_loads;
      c_locksets = Access.Ls_table.count st.tables.Access.ls;
      c_vclocks = Access.Vc_table.count st.tables.Access.vc;
      c_words = Hashtbl.length st.pub;
    }
  in
  Obs.Metric.add obs_events stats.c_events;
  Obs.Metric.add obs_stores stats.c_stores;
  Obs.Metric.add obs_loads stats.c_loads;
  Obs.Metric.add obs_windows stats.c_windows;
  Obs.Metric.add obs_windows_opened stats.c_windows_opened;
  Obs.Metric.add obs_windows_closed stats.c_windows_closed;
  Obs.Metric.add obs_load_records stats.c_load_records;
  Obs.Metric.add obs_irh_stores stats.c_irh_discarded_stores;
  Obs.Metric.add obs_irh_loads stats.c_irh_discarded_loads;
  Obs.Metric.add obs_locksets stats.c_locksets;
  Obs.Metric.add obs_vclocks stats.c_vclocks;
  Obs.Metric.add obs_words stats.c_words;
  Obs.Logger.debug ~section:"collector" (fun () ->
      Format.asprintf "%a" pp_stats stats);
  {
    tables = st.tables;
    windows_by_word = st.windows_by_word;
    loads_by_word = st.loads_by_word;
    stats;
  }

let sorted_load_words (t : result) =
  let words = Hashtbl.fold (fun w _ acc -> w :: acc) t.loads_by_word [] in
  let arr = Array.of_list words in
  Array.sort Int.compare arr;
  arr

