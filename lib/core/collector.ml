type stats = {
  c_events : int;
  c_stores : int;
  c_loads : int;
  c_windows : int;
  c_windows_opened : int;
  c_windows_closed : int;
  c_load_records : int;
  c_irh_discarded_stores : int;
  c_irh_discarded_loads : int;
  c_locksets : int;
  c_vclocks : int;
  c_words : int;
}

(* Per-process observability counters (Obs.Registry.global); collection
   adds each run's totals so front ends can snapshot/delta them. *)
let obs_events = Obs.Registry.counter "collector.events"
let obs_stores = Obs.Registry.counter "collector.stores"
let obs_loads = Obs.Registry.counter "collector.loads"
let obs_windows = Obs.Registry.counter "collector.windows_emitted"
let obs_windows_opened = Obs.Registry.counter "collector.windows_opened"
let obs_windows_closed = Obs.Registry.counter "collector.windows_closed"
let obs_load_records = Obs.Registry.counter "collector.load_records"
let obs_irh_stores = Obs.Registry.counter "collector.irh_discarded_stores"
let obs_irh_loads = Obs.Registry.counter "collector.irh_discarded_loads"
let obs_locksets = Obs.Registry.counter "collector.locksets_interned"
let obs_vclocks = Obs.Registry.counter "collector.vclocks_interned"
let obs_words = Obs.Registry.counter "collector.words_touched"

type result = {
  tables : Access.tables;
  words : int array;
  windows_of : Access.window array array;
  loads_of : Access.load array array;
  slots : int array;
  stats : stats;
}

(* Per-thread tracking state (Lock Tracking + Thread Tracking components).
   [ls_id]/[vec_id] cache the interned id of the current (stripped)
   lockset / vector clock so the per-event hot paths intern — i.e. hash a
   whole array — only when the value actually changed; -1 means stale. *)
type thread_state = {
  mutable ls : Lockset.t;
  mutable ls_id : int;
  mutable acq_clock : int; (* logical clock, ticks at each acquisition *)
  mutable vec : Vclock.t;
  mutable vec_id : int;
  mutable vc_dirty : bool; (* batched vector-clock increment pending *)
  pending : pending_vec;
}

(* Store metadata shared by the per-word open entries of one store. *)
and meta = {
  m_tid : int;
  m_addr : int;
  m_size : int;
  m_site_id : int;
  m_ls : Lockset.t;
  m_ls_id : int; (* interned id of the stripped store-time lockset *)
  m_vec_id : int;
}

and open_entry = {
  oe_meta : meta;
  oe_word : int;
  oe_lo : int; (* byte subrange of the store within this word *)
  oe_hi : int; (* exclusive *)
  mutable oe_pending_mask : int; (* bit t set: tid t's flush covers this *)
  mutable oe_pending_ovf : int list; (* tids >= mask width (rare) *)
  mutable oe_closed : bool;
}

and pending_vec = open_entry Trace.Vec.t

let pending_mask_width = 62

let pending_mem e tid =
  if tid < pending_mask_width then e.oe_pending_mask land (1 lsl tid) <> 0
  else List.mem tid e.oe_pending_ovf

let pending_add e tid =
  if tid < pending_mask_width then
    e.oe_pending_mask <- e.oe_pending_mask lor (1 lsl tid)
  else e.oe_pending_ovf <- tid :: e.oe_pending_ovf

(* One cell per touched 8-byte word, found with a single int-keyed probe
   per (event, word): publication state, open windows, emitted records
   and both dedup tables live together, where the old representation paid
   one hashtable operation per concern. *)
type cell = {
  cl_word : int;
  mutable cl_pub : int; (* first-toucher tid, or [pub_published] *)
  mutable cl_open : open_entry list;
  cl_windows : Access.window Trace.Vec.t;
  cl_loads : Access.load Trace.Vec.t;
  cl_wdedup : Trace.Int_tbl.Set.t; (* packed window-dedup keys *)
  cl_ldedup : Trace.Int_tbl.Set.t; (* packed load-dedup keys *)
}

let pub_published = -2

module Site_table = Trace.Interner.Make (struct
  type t = Trace.Site.t

  let equal = Trace.Site.equal
  let hash = Trace.Site.hash
end)

type state = {
  irh : bool;
  timestamps : bool;
  eadr : bool;
  packed : bool; (* false: force every key through the tuple spill path *)
  tables : Access.tables;
  sites : Site_table.t;
  mutable threads : thread_state array;
  mutable nthreads : int;
  cell_idx : Trace.Int_tbl.Map.t; (* word -> index into cell_list *)
  cell_list : cell Trace.Vec.t;
  mutable scratch : cell array; (* per-event word cells, reused *)
  (* Keys that exceed a packed field width — and, with [packed = false],
     every key (the reference implementation for the differential
     tests) — fall back to the old tuple-keyed tables. *)
  spill_w : (int * int * int * int * int * int * int, unit) Hashtbl.t;
  spill_l : (int * int * int * int * int, unit) Hashtbl.t;
  mutable next_id : int;
  mutable n_windows : int;
  mutable n_opened : int;
  mutable n_closed : int;
  mutable n_load_records : int;
  mutable irh_stores : int;
  mutable irh_loads : int;
  mutable n_stores : int;
  mutable n_loads : int;
}

(* A fresh thread has a batched tick pending: its first PM access gives it
   a non-zero own component, so threads that never synchronized compare as
   concurrent rather than equal. *)
let fresh_thread () =
  {
    ls = Lockset.empty;
    ls_id = -1;
    acq_clock = 0;
    vec = Vclock.zero;
    vec_id = -1;
    vc_dirty = true;
    pending = Trace.Vec.create ();
  }

let thread st tid =
  let tid = Trace.Tid.to_int tid in
  while tid >= st.nthreads do
    if st.nthreads = Array.length st.threads then begin
      let bigger = Array.make (max 8 (2 * st.nthreads)) (fresh_thread ()) in
      Array.blit st.threads 0 bigger 0 st.nthreads;
      (* Each slot needs its own record. *)
      for i = st.nthreads to Array.length bigger - 1 do
        bigger.(i) <- fresh_thread ()
      done;
      st.threads <- bigger
    end;
    st.nthreads <- st.nthreads + 1
  done;
  st.threads.(tid)

(* Lazy vector-clock tick: the first PM access after a thread create/join
   increments the thread's own component (§4 batching). *)
let touch_vec st tid =
  let th = thread st tid in
  if th.vc_dirty then begin
    th.vec <- Vclock.tick th.vec (Trace.Tid.to_int tid);
    th.vec_id <- -1;
    th.vc_dirty <- false
  end;
  th

let th_vec_id st th =
  if th.vec_id >= 0 then th.vec_id
  else begin
    let id = Access.Vc_table.intern st.tables.Access.vc th.vec in
    th.vec_id <- id;
    id
  end

let th_ls_id st th =
  if th.ls_id >= 0 then th.ls_id
  else begin
    let id =
      Access.Ls_table.intern st.tables.Access.ls (Lockset.strip_ts th.ls)
    in
    th.ls_id <- id;
    id
  end

let make_cell ?(pub = pub_published) word =
  {
    cl_word = word;
    cl_pub = pub;
    cl_open = [];
    cl_windows = Trace.Vec.create ();
    cl_loads = Trace.Vec.create ();
    cl_wdedup = Trace.Int_tbl.Set.create ();
    cl_ldedup = Trace.Int_tbl.Set.create ();
  }

(* Find-or-create the cell for [word], folding the publication update
   (§3.1.3: a word becomes published at its first access by a second
   thread) into the same probe. *)
let get_cell st word ~tid =
  let idx = Trace.Int_tbl.Map.find st.cell_idx word in
  if idx >= 0 then begin
    let c = Trace.Vec.get st.cell_list idx in
    if c.cl_pub <> pub_published && c.cl_pub <> tid then
      c.cl_pub <- pub_published;
    c
  end
  else begin
    let pub = if Fault.on Fault.Publish_before_touch then pub_published else tid in
    let c = make_cell ~pub word in
    Trace.Int_tbl.Map.set st.cell_idx word (Trace.Vec.length st.cell_list);
    Trace.Vec.push st.cell_list c;
    c
  end

let is_published c = c.cl_pub = pub_published

let end_kind_tag = function
  | Access.Persisted_same_thread -> 0
  | Access.Persisted_other_thread -> 1
  | Access.Overwritten_same_thread -> 2
  | Access.Overwritten_other_thread -> 3
  | Access.Open_at_exit -> 4

let spill_window_fresh st cell m ~eff_id ~evec ~tag =
  let key =
    (cell.cl_word, m.m_tid, m.m_site_id, eff_id, m.m_vec_id, evec, tag)
  in
  if Hashtbl.mem st.spill_w key then false
  else begin
    Hashtbl.add st.spill_w key ();
    true
  end

let emit_window st cell entry ~eff ~end_vec ~kind =
  let m = entry.oe_meta in
  (* Timestamps have served their purpose (the same-thread intersection);
     strip them so windows from different atomic sections share ids. *)
  let eff_id = Access.Ls_table.intern st.tables.Access.ls (Lockset.strip_ts eff) in
  let evec = match end_vec with Some v -> v | None -> -1 in
  let tag = end_kind_tag kind in
  let fresh =
    if st.packed then begin
      let key =
        Trace.Packed_key.window_key ~tid:m.m_tid ~site:m.m_site_id ~eff:eff_id
          ~vec:m.m_vec_id ~evec:(evec + 1) ~kind:tag
      in
      if key >= 0 then Trace.Int_tbl.Set.add cell.cl_wdedup key
      else spill_window_fresh st cell m ~eff_id ~evec ~tag
    end
    else spill_window_fresh st cell m ~eff_id ~evec ~tag
  in
  if fresh then begin
    let w =
      {
        Access.w_id = st.next_id;
        w_tid = m.m_tid;
        w_addr = m.m_addr;
        w_size = m.m_size;
        w_site = Site_table.get st.sites m.m_site_id;
        w_store_ls = m.m_ls_id;
        w_eff = eff_id;
        w_store_vec = m.m_vec_id;
        w_end_vec = end_vec;
        w_end = kind;
      }
    in
    st.next_id <- st.next_id + 1;
    st.n_windows <- st.n_windows + 1;
    Trace.Vec.push cell.cl_windows w
  end

(* Close a window. IRH: a store explicitly persisted while its word is
   still unpublished happened during initialization and is discarded. *)
let close_entry st cell entry ~eff ~end_vec ~kind =
  entry.oe_closed <- true;
  st.n_closed <- st.n_closed + 1;
  let persisted =
    match kind with
    | Access.Persisted_same_thread | Access.Persisted_other_thread -> true
    | Access.Overwritten_same_thread | Access.Overwritten_other_thread
    | Access.Open_at_exit ->
        false
  in
  if st.irh && persisted && not (is_published cell) then
    st.irh_stores <- st.irh_stores + 1
  else emit_window st cell entry ~eff ~end_vec ~kind

let effective_lockset st m ~closer_tid ~closer_ls =
  if m.m_tid = closer_tid then
    if st.timestamps then Lockset.inter_same_thread m.m_ls closer_ls
    else Lockset.inter_same_thread_no_ts m.m_ls closer_ls
  else
    (* A window closed by another thread cannot be spanned atomically by
       any lock the storing thread held. *)
    Lockset.empty

let on_store st ~tid ~addr ~size ~site =
  st.n_stores <- st.n_stores + 1;
  let th = touch_vec st tid in
  let itid = Trace.Tid.to_int tid in
  if st.eadr then
    (* eADR: the store is durable the moment it is visible — there is no
       window in which another thread could load unpersisted data. Only
       the publication state needs updating. *)
    Pmem.Layout.iter_words addr size (fun word ->
        ignore (get_cell st word ~tid:itid : cell))
  else begin
    let vec_id = th_vec_id st th in
    let site_id = Site_table.intern st.sites site in
    let ls_id = th_ls_id st th in
    let m =
      { m_tid = itid; m_addr = addr; m_size = size; m_site_id = site_id;
        m_ls = th.ls; m_ls_id = ls_id; m_vec_id = vec_id }
    in
    (* One pass per word: publish, close overlapping open windows
       (overwrite), open the new one. All three queries are word-local,
       so fusing the old three passes is invisible in the result. *)
    Pmem.Layout.iter_words addr size (fun word ->
        let c = get_cell st word ~tid:itid in
        let closed_any = ref false in
        List.iter
          (fun e ->
            if
              (not e.oe_closed)
              && Pmem.Layout.ranges_overlap e.oe_lo (e.oe_hi - e.oe_lo) addr size
            then begin
              let kind =
                if e.oe_meta.m_tid = itid then Access.Overwritten_same_thread
                else Access.Overwritten_other_thread
              in
              close_entry st c e
                ~eff:
                  (effective_lockset st e.oe_meta ~closer_tid:itid
                     ~closer_ls:th.ls)
                ~end_vec:(Some vec_id) ~kind;
              closed_any := true
            end)
          c.cl_open;
        if !closed_any then
          c.cl_open <- List.filter (fun e -> not e.oe_closed) c.cl_open;
        let wlo = word * Pmem.Layout.word_size in
        let whi = wlo + Pmem.Layout.word_size in
        let e =
          {
            oe_meta = m;
            oe_word = word;
            oe_lo = max addr wlo;
            oe_hi = min (addr + size) whi;
            oe_pending_mask = 0;
            oe_pending_ovf = [];
            oe_closed = false;
          }
        in
        c.cl_open <- e :: c.cl_open;
        st.n_opened <- st.n_opened + 1)
  end

let spill_load_fresh st cell ~tid ~site_id ~ls_id ~vec_id =
  let key = (cell.cl_word, tid, site_id, ls_id, vec_id) in
  if Hashtbl.mem st.spill_l key then false
  else begin
    Hashtbl.add st.spill_l key ();
    true
  end

let on_load st ~tid ~addr ~size ~site =
  st.n_loads <- st.n_loads + 1;
  let th = touch_vec st tid in
  let itid = Trace.Tid.to_int tid in
  (* Gather the word cells once (publication folds into the same probe);
     they are reused below without a second lookup. *)
  let nw = ref 0 in
  let any_pub = ref false in
  Pmem.Layout.iter_words addr size (fun word ->
      let c = get_cell st word ~tid:itid in
      if is_published c then any_pub := true;
      if !nw >= Array.length st.scratch then begin
        let bigger = Array.make (2 * Array.length st.scratch) c in
        Array.blit st.scratch 0 bigger 0 !nw;
        st.scratch <- bigger
      end;
      st.scratch.(!nw) <- c;
      incr nw);
  let keep = (not st.irh) || !any_pub in
  if not keep then st.irh_loads <- st.irh_loads + 1
  else begin
    let site_id = Site_table.intern st.sites site in
    let ls_id = th_ls_id st th in
    let vec_id = th_vec_id st th in
    (* The record is built at most once, shared by every word that keeps
       it; fully-deduplicated loads never allocate it. *)
    let record = ref None in
    let get_record () =
      match !record with
      | Some l -> l
      | None ->
          let l =
            {
              Access.l_id = st.next_id;
              l_tid = itid;
              l_addr = addr;
              l_size = size;
              l_site = Site_table.get st.sites site_id;
              l_ls = ls_id;
              l_vec = vec_id;
            }
          in
          st.next_id <- st.next_id + 1;
          st.n_load_records <- st.n_load_records + 1;
          record := Some l;
          l
    in
    for i = 0 to !nw - 1 do
      let c = st.scratch.(i) in
      let fresh =
        if st.packed then begin
          let key =
            Trace.Packed_key.load_key ~tid:itid ~site:site_id ~ls:ls_id
              ~vec:vec_id
          in
          if key >= 0 then Trace.Int_tbl.Set.add c.cl_ldedup key
          else spill_load_fresh st c ~tid:itid ~site_id ~ls_id ~vec_id
        end
        else spill_load_fresh st c ~tid:itid ~site_id ~ls_id ~vec_id
      in
      if fresh then Trace.Vec.push c.cl_loads (get_record ())
    done
  end

let on_flush st ~tid ~line =
  let th = touch_vec st tid in
  let itid = Trace.Tid.to_int tid in
  let first_word = line / Pmem.Layout.word_size in
  for w = first_word to first_word + (Pmem.Layout.line_size / Pmem.Layout.word_size) - 1 do
    let idx = Trace.Int_tbl.Map.find st.cell_idx w in
    if idx >= 0 then
      List.iter
        (fun e ->
          if (not e.oe_closed) && not (pending_mem e itid) then begin
            pending_add e itid;
            Trace.Vec.push th.pending e
          end)
        (Trace.Vec.get st.cell_list idx).cl_open
  done

let on_fence st ~tid =
  let th = touch_vec st tid in
  let itid = Trace.Tid.to_int tid in
  if Trace.Vec.length th.pending > 0 then begin
    let vec_id = th_vec_id st th in
    (* Newest-first: the order of the cons list this vector replaces —
       close order decides window ids and per-word emission order. *)
    for i = Trace.Vec.length th.pending - 1 downto 0 do
      let e = Trace.Vec.get th.pending i in
      if (not e.oe_closed) && pending_mem e itid then begin
        let kind =
          if e.oe_meta.m_tid = itid then Access.Persisted_same_thread
          else Access.Persisted_other_thread
        in
        let idx = Trace.Int_tbl.Map.find st.cell_idx e.oe_word in
        close_entry st
          (Trace.Vec.get st.cell_list idx)
          e
          ~eff:
            (effective_lockset st e.oe_meta ~closer_tid:itid ~closer_ls:th.ls)
          ~end_vec:(Some vec_id) ~kind
      end
    done;
    Trace.Vec.clear th.pending
  end

let on_acquire st ~tid ~lock =
  let th = thread st tid in
  th.acq_clock <- th.acq_clock + 1;
  th.ls <- Lockset.acquire th.ls lock ~ts:th.acq_clock;
  th.ls_id <- -1

let on_release st ~tid ~lock =
  let th = thread st tid in
  th.ls <- Lockset.release th.ls lock;
  th.ls_id <- -1

(* Thread creation: the parent's counter ticks, the child adopts the
   parent's clock and ticks its own counter (§3.1.2). Both threads also
   get a pending batched tick for their next PM access. *)
let on_create st ~parent ~child =
  let p = thread st parent in
  p.vec <- Vclock.tick p.vec (Trace.Tid.to_int parent);
  p.vec_id <- -1;
  p.vc_dirty <- true;
  let c = thread st child in
  c.vec <- Vclock.tick p.vec (Trace.Tid.to_int child);
  c.vec_id <- -1;
  c.vc_dirty <- true

let on_join st ~waiter ~joined =
  let j = thread st joined in
  let w = thread st waiter in
  w.vec <- Vclock.merge w.vec j.vec;
  w.vec_id <- -1;
  w.vc_dirty <- true

let finalize st =
  (* Windows still open at the end of the trace never persisted: their
     effective lockset is empty and their happens-before window never
     closes. The IRH keeps them (they are exactly the unpersisted
     initialization stores that can race after publication). *)
  Trace.Vec.iter
    (fun c ->
      List.iter
        (fun e ->
          if not e.oe_closed then
            close_entry st c e ~eff:Lockset.empty ~end_vec:None
              ~kind:Access.Open_at_exit)
        c.cl_open)
    st.cell_list

(* Freeze the cells into the sorted, immutable arrays stage 3 consumes:
   [words] ascending, per-word records newest-first (the iteration order
   of the cons lists this replaces, so reports are unchanged), [slots]
   the indices of words carrying at least one load record — the
   deterministic iteration and sharding domain. *)
let freeze st stats =
  let keep = ref [] in
  Trace.Vec.iter
    (fun c ->
      if Trace.Vec.length c.cl_windows > 0 || Trace.Vec.length c.cl_loads > 0
      then keep := c :: !keep)
    st.cell_list;
  let cells = Array.of_list !keep in
  Array.sort (fun a b -> Int.compare a.cl_word b.cl_word) cells;
  let words = Array.map (fun c -> c.cl_word) cells in
  let windows_of =
    Array.map (fun c -> Trace.Vec.to_reversed_array c.cl_windows) cells
  in
  let loads_of =
    Array.map (fun c -> Trace.Vec.to_reversed_array c.cl_loads) cells
  in
  let nslots = ref 0 in
  Array.iter
    (fun ls -> if Array.length ls > 0 then incr nslots)
    loads_of;
  let slots = Array.make !nslots 0 in
  let j = ref 0 in
  Array.iteri
    (fun i ls ->
      if Array.length ls > 0 then begin
        slots.(!j) <- i;
        incr j
      end)
    loads_of;
  { tables = st.tables; words; windows_of; loads_of; slots; stats }

let pp_stats ppf s =
  Format.fprintf ppf
    "events=%d stores=%d loads=%d windows=%d (opened=%d closed=%d) \
     load_records=%d irh(st=%d ld=%d) locksets=%d vclocks=%d words=%d"
    s.c_events s.c_stores s.c_loads s.c_windows s.c_windows_opened
    s.c_windows_closed s.c_load_records s.c_irh_discarded_stores
    s.c_irh_discarded_loads s.c_locksets s.c_vclocks s.c_words

let tl_collect = Obs.Timeline.name "collector.collect"

let collect ?(irh = true) ?(timestamps = true) ?(eadr = false)
    ?(dedup = `Packed) ?stop trace =
  Obs.Timeline.begin_ tl_collect ~arg:(Trace.Tracebuf.length trace);
  let st =
    {
      irh;
      timestamps;
      eadr;
      packed = (dedup = `Packed);
      tables = Access.create_tables ();
      sites = Site_table.create ();
      threads = Array.init 8 (fun _ -> fresh_thread ());
      nthreads = 0;
      cell_idx = Trace.Int_tbl.Map.create ~size:4096 ();
      cell_list = Trace.Vec.create ();
      scratch = Array.make 16 (make_cell (-1));
      spill_w = Hashtbl.create 16;
      spill_l = Hashtbl.create 16;
      next_id = 0;
      n_windows = 0;
      n_opened = 0;
      n_closed = 0;
      n_load_records = 0;
      irh_stores = 0;
      irh_loads = 0;
      n_stores = 0;
      n_loads = 0;
    }
  in
  Obs.Logger.debug ~section:"collector" (fun () ->
      Printf.sprintf "collect: %d events (irh=%b ts=%b eadr=%b)"
        (Trace.Tracebuf.length trace) irh timestamps eadr);
  let consumed = ref 0 in
  (* [stop] is polled every 512 events: a tripped deadline abandons the
     rest of the trace and finalizes what was tracked so far — the result
     is exactly the collection of the consumed prefix. *)
  (try
     Trace.Tracebuf.iter
       (fun ev ->
         (match stop with
         | Some f when !consumed land 511 = 0 && f () -> raise Exit
         | Some _ | None -> ());
         incr consumed;
         match ev with
         | Trace.Event.Store { tid; addr; size; site; non_temporal = _ } ->
             on_store st ~tid ~addr ~size ~site
         | Trace.Event.Load { tid; addr; size; site } ->
             on_load st ~tid ~addr ~size ~site
         | Trace.Event.Flush { tid; line; kind = _; site = _ } ->
             on_flush st ~tid ~line
         | Trace.Event.Fence { tid; site = _ } -> on_fence st ~tid
         | Trace.Event.Lock_acquire { tid; lock; site = _ } ->
             on_acquire st ~tid ~lock
         | Trace.Event.Lock_release { tid; lock; site = _ } ->
             on_release st ~tid ~lock
         | Trace.Event.Thread_create { parent; child } ->
             on_create st ~parent ~child
         | Trace.Event.Thread_join { waiter; joined } ->
             on_join st ~waiter ~joined)
       trace
   with Exit -> ());
  finalize st;
  let stats =
    {
      c_events = !consumed;
      c_stores = st.n_stores;
      c_loads = st.n_loads;
      c_windows = st.n_windows;
      c_windows_opened = st.n_opened;
      c_windows_closed = st.n_closed;
      c_load_records = st.n_load_records;
      c_irh_discarded_stores = st.irh_stores;
      c_irh_discarded_loads = st.irh_loads;
      c_locksets = Access.Ls_table.count st.tables.Access.ls;
      c_vclocks = Access.Vc_table.count st.tables.Access.vc;
      c_words = Trace.Vec.length st.cell_list;
    }
  in
  Obs.Metric.add obs_events stats.c_events;
  Obs.Metric.add obs_stores stats.c_stores;
  Obs.Metric.add obs_loads stats.c_loads;
  Obs.Metric.add obs_windows stats.c_windows;
  Obs.Metric.add obs_windows_opened stats.c_windows_opened;
  Obs.Metric.add obs_windows_closed stats.c_windows_closed;
  Obs.Metric.add obs_load_records stats.c_load_records;
  Obs.Metric.add obs_irh_stores stats.c_irh_discarded_stores;
  Obs.Metric.add obs_irh_loads stats.c_irh_discarded_loads;
  Obs.Metric.add obs_locksets stats.c_locksets;
  Obs.Metric.add obs_vclocks stats.c_vclocks;
  Obs.Metric.add obs_words stats.c_words;
  Obs.Logger.debug ~section:"collector" (fun () ->
      Format.asprintf "%a" pp_stats stats);
  Obs.Timeline.end_ tl_collect ~arg:stats.c_events;
  freeze st stats

let sorted_load_words (t : result) = Array.map (fun i -> t.words.(i)) t.slots

let all_windows (t : result) =
  Array.fold_right
    (fun ws acc -> Array.fold_right (fun w acc -> w :: acc) ws acc)
    t.windows_of []

let all_loads (t : result) =
  Array.fold_right
    (fun ls acc -> Array.fold_right (fun l acc -> l :: acc) ls acc)
    t.loads_of []
