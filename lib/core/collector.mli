(** Stages 1 and 2 of HawkSet's pipeline (Figure 4).

    Stage 1 — Instrumentation consumption: replays the event trace through
    the Memory Simulation (worst-case cache: store lifetime windows close
    only on explicit flush+fence or on overwrite), Lock Tracking
    (timestamped locksets, the logical clock bumps at every acquisition)
    and Thread Tracking (vector clocks with the §4 batching optimization:
    only the first PM access after a thread creation/join ticks the local
    clock).

    Stage 2 — Initialization Removal Heuristic (§3.1.3): an 8-byte word
    becomes {e published} at its first access by a second thread; stores
    explicitly persisted while still unpublished are discarded, loads
    issued while unpublished are discarded, and unpersisted stores prior
    to publication are kept (they can still race, as in the
    publish-before-persist pattern). As in the paper's implementation, the
    heuristic runs alongside stage 1 rather than as a separate pass. *)

type stats = {
  c_events : int;
  c_stores : int;  (** Store events in the trace. *)
  c_loads : int;  (** Load events in the trace. *)
  c_windows : int;  (** Window records emitted (after dedup + IRH). *)
  c_windows_opened : int;  (** Open-window entries created (per word). *)
  c_windows_closed : int;  (** Entries closed (persist/overwrite/exit). *)
  c_load_records : int;  (** Load records emitted (after dedup + IRH). *)
  c_irh_discarded_stores : int;
  c_irh_discarded_loads : int;
  c_locksets : int;  (** Distinct locksets interned. *)
  c_vclocks : int;  (** Distinct vector clocks interned. *)
  c_words : int;  (** Distinct PM words touched. *)
}

type result = {
  tables : Access.tables;
  windows_by_word : (int, Access.window list) Hashtbl.t;
  loads_by_word : (int, Access.load list) Hashtbl.t;
  stats : stats;
}
(** A result is frozen once [collect] returns: stage 3 only ever reads it.
    All reads ([Hashtbl.find_opt] on the by-word tables, interner [get]s
    through [tables]) are mutation-free, so one result may be consumed
    concurrently from several domains — the property {!Par_analysis}
    relies on to shard the word space without copying the records. *)

val collect :
  ?irh:bool ->
  ?timestamps:bool ->
  ?eadr:bool ->
  ?stop:(unit -> bool) ->
  Trace.Tracebuf.t ->
  result
(** [collect trace] replays the trace and produces the deduplicated access
    records, grouped by word. [irh] (default [true]) enables stage 2.
    [stop] is polled every 512 events; when it fires, the remaining events
    are abandoned and the result is exactly the collection of the consumed
    prefix ([stats.c_events] counts consumed events, so a truncated
    collection is visible as [c_events < Tracebuf.length trace]).
    [timestamps] (default [true]) makes the effective-lockset intersection
    timestamp-aware (§3.1.2); disabling it is the Figure 2b ablation that
    misses release-and-reacquire races. [eadr] (default [false]) analyses
    the trace under the §2.1 eADR assumption — the cache is persistent, so
    visible-but-not-durable windows cannot exist and no store records are
    produced (persistency-induced races are impossible by construction). *)

val sorted_load_words : result -> int array
(** The canonical word keys of [loads_by_word] in ascending order — the
    deterministic iteration (and sharding) domain of stage 3. Words with
    load records but no windows are included; the analysis skips them. *)

val pp_stats : Format.formatter -> stats -> unit
