(** Stages 1 and 2 of HawkSet's pipeline (Figure 4).

    Stage 1 — Instrumentation consumption: replays the event trace through
    the Memory Simulation (worst-case cache: store lifetime windows close
    only on explicit flush+fence or on overwrite), Lock Tracking
    (timestamped locksets, the logical clock bumps at every acquisition)
    and Thread Tracking (vector clocks with the §4 batching optimization:
    only the first PM access after a thread creation/join ticks the local
    clock).

    Stage 2 — Initialization Removal Heuristic (§3.1.3): an 8-byte word
    becomes {e published} at its first access by a second thread; stores
    explicitly persisted while still unpublished are discarded, loads
    issued while unpublished are discarded, and unpersisted stores prior
    to publication are kept (they can still race, as in the
    publish-before-persist pattern). As in the paper's implementation, the
    heuristic runs alongside stage 1 rather than as a separate pass.

    The per-event hot paths are allocation-light: all per-word state lives
    in one int-keyed cell found with a single probe, record deduplication
    uses packed single-int keys ({!Trace.Packed_key}) in open-addressing
    int sets, and interned lockset/vector-clock ids are cached per thread
    so repeated events hash nothing. *)

type stats = {
  c_events : int;
  c_stores : int;  (** Store events in the trace. *)
  c_loads : int;  (** Load events in the trace. *)
  c_windows : int;  (** Window records emitted (after dedup + IRH). *)
  c_windows_opened : int;  (** Open-window entries created (per word). *)
  c_windows_closed : int;  (** Entries closed (persist/overwrite/exit). *)
  c_load_records : int;  (** Load records emitted (after dedup + IRH). *)
  c_irh_discarded_stores : int;
  c_irh_discarded_loads : int;
  c_locksets : int;  (** Distinct locksets interned. *)
  c_vclocks : int;  (** Distinct vector clocks interned. *)
  c_words : int;  (** Distinct PM words touched. *)
}

type result = {
  tables : Access.tables;
  words : int array;  (** Record-bearing word indexes, ascending. *)
  windows_of : Access.window array array;
      (** [windows_of.(i)] — windows of [words.(i)], newest-first (the
          iteration order of the cons lists this layout replaces, so the
          report order is unchanged). *)
  loads_of : Access.load array array;  (** Loads per word, newest-first. *)
  slots : int array;
      (** Indexes into [words] carrying at least one load record — the
          deterministic iteration (and sharding) domain of stage 3. Slots
          whose word has no windows are included; the analysis skips
          them. *)
  stats : stats;
}
(** A result is frozen once [collect] returns: stage 3 only ever reads it.
    All reads (array indexing, interner [get]s through [tables]) are
    mutation-free, so one result may be consumed concurrently from several
    domains — the property {!Par_analysis} relies on to shard the slot
    space without copying the records. *)

val collect :
  ?irh:bool ->
  ?timestamps:bool ->
  ?eadr:bool ->
  ?dedup:[ `Packed | `Tuple ] ->
  ?stop:(unit -> bool) ->
  Trace.Tracebuf.t ->
  result
(** [collect trace] replays the trace and produces the deduplicated access
    records, grouped by word. [irh] (default [true]) enables stage 2.
    [stop] is polled every 512 events; when it fires, the remaining events
    are abandoned and the result is exactly the collection of the consumed
    prefix ([stats.c_events] counts consumed events, so a truncated
    collection is visible as [c_events < Tracebuf.length trace]).
    [timestamps] (default [true]) makes the effective-lockset intersection
    timestamp-aware (§3.1.2); disabling it is the Figure 2b ablation that
    misses release-and-reacquire races. [eadr] (default [false]) analyses
    the trace under the §2.1 eADR assumption — the cache is persistent, so
    visible-but-not-durable windows cannot exist and no store records are
    produced (persistency-induced races are impossible by construction).
    [dedup] (default [`Packed]) selects the dedup-key implementation:
    [`Packed] packs each key into one int ({!Trace.Packed_key}; keys whose
    fields exceed a packed field width spill to the tuple-keyed tables —
    never a silent collision); [`Tuple] forces every key through the
    tuple-keyed reference path. Both must produce identical results — the
    differential property the packed-key test suite checks. *)

val sorted_load_words : result -> int array
(** The word keys of the slots, ascending — [words.(slots.(i))] for each
    [i]. Kept for presentation layers that report the analysed words. *)

val all_windows : result -> Access.window list
(** Every window record, words ascending, newest-first within a word —
    for baselines and tests that scan the whole record set. *)

val all_loads : result -> Access.load list
(** Every load record, in the same order as {!all_windows}. *)

val pp_stats : Format.formatter -> stats -> unit
