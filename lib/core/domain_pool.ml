(* A small pool of persistent worker domains.

   [Domain.spawn] costs a thread, a minor heap and a handshake with every
   running domain — milliseconds that PR 2 paid on every [analyse] call
   and that dwarfed the sharded work itself on short runs. The pool
   spawns each worker once and hands tasks over a mutex/condition pair;
   per-[map] cost is two lock transitions per worker instead of a spawn
   and a join.

   Task [i] always runs on the same slot — [0] on the caller, [i] on
   worker [i - 1] — so slot-indexed state owned by the callers (e.g.
   {!Par_analysis}'s warm memo tables) is only ever touched by one domain
   per call, without the pool knowing about it. *)

exception Pool_closed

exception Worker_lost of int

type worker = {
  mutex : Mutex.t;
  cond : Condition.t;
  mutable task : (unit -> unit) option;
  mutable busy : bool;
  mutable stop : bool;
  mutable dead : bool; (* the worker's loop exited abnormally *)
  mutable domain : unit Domain.t option; (* set right after spawn *)
}

type t = { lock : Mutex.t; mutable workers : worker array; mutable closed : bool }

let worker_loop w () =
  try
    Mutex.lock w.mutex;
    let rec loop () =
      match w.task with
      | Some f ->
          w.task <- None;
          Mutex.unlock w.mutex;
          (* The task itself never raises: [map] wraps it in a catch-all
             that stores the outcome. *)
          f ();
          Mutex.lock w.mutex;
          w.busy <- false;
          Condition.broadcast w.cond;
          loop ()
      | None ->
          if w.stop then Mutex.unlock w.mutex
          else begin
            Condition.wait w.cond w.mutex;
            loop ()
          end
    in
    loop ()
  with _ ->
    (* Watchdog path: tasks cannot raise here ([map] wraps them), so an
       exception means the loop itself died. Mark the slot lost and wake
       any joiner so [await] returns instead of hanging forever; [map]
       then reports the loss as {!Worker_lost}. The unlocked writes are
       single-writer (this domain is about to exit). *)
    w.dead <- true;
    w.busy <- false;
    (try Condition.broadcast w.cond with _ -> ());
    (try Mutex.unlock w.mutex with _ -> ())

let spawn_worker () =
  let w =
    {
      mutex = Mutex.create ();
      cond = Condition.create ();
      task = None;
      busy = false;
      stop = false;
      dead = false;
      domain = None;
    }
  in
  w.domain <- Some (Domain.spawn (worker_loop w));
  w

let submit w f =
  Mutex.lock w.mutex;
  w.task <- Some f;
  w.busy <- true;
  Condition.broadcast w.cond;
  Mutex.unlock w.mutex

let await w =
  Mutex.lock w.mutex;
  while w.busy && not w.dead do
    Condition.wait w.cond w.mutex
  done;
  Mutex.unlock w.mutex

let create () = { lock = Mutex.create (); workers = [||]; closed = false }

(* Optional per-task wrapper (installed e.g. by the harness to sample
   pool-domain heap peaks). Receives the task's slot index and a thunk it
   MUST run exactly once. Monomorphic on [unit -> unit]: [map]'s
   result-array closure already has that shape. *)
let task_hook : (int -> (unit -> unit) -> unit) option Atomic.t =
  Atomic.make None

let set_task_hook h = Atomic.set task_hook h

(* Every task runs with its slot bound to the matching timeline lane —
   task [i] is always slot [i] (caller or worker [i - 1]), so lane
   assignment is deterministic. *)
let run_task i f =
  Obs.Timeline.with_lane i (fun () ->
      match Atomic.get task_hook with
      | None -> f ()
      | Some h -> (
          let out = ref None in
          h i (fun () -> out := Some (f ()));
          match !out with
          | Some v -> v
          | None -> failwith "Domain_pool: task hook dropped its task"))

let size t = Array.length t.workers

let ensure t n =
  Mutex.lock t.lock;
  if t.closed then begin
    Mutex.unlock t.lock;
    raise Pool_closed
  end;
  let have = Array.length t.workers in
  if n > have then begin
    let ws = Array.init n (fun i -> if i < have then t.workers.(i) else spawn_worker ()) in
    t.workers <- ws
  end;
  Mutex.unlock t.lock

let map t fns =
  let n = Array.length fns in
  if n = 0 then begin
    (* Even a no-op map on a closed pool is a caller bug worth surfacing. *)
    if t.closed then raise Pool_closed;
    [||]
  end
  else begin
    (* Serialise whole [map] calls: workers hold no per-call state, so
       two concurrent callers would otherwise interleave submissions. *)
    Mutex.lock t.lock;
    if t.closed then begin
      Mutex.unlock t.lock;
      raise Pool_closed
    end;
    let have = Array.length t.workers in
    if n - 1 > have then begin
      t.workers <-
        Array.init (n - 1) (fun i ->
            if i < have then t.workers.(i) else spawn_worker ())
    end;
    (* Self-heal slots lost in an earlier call: the previous [map]
       already reported them as {!Worker_lost}; this call gets a fresh
       domain instead of submitting to a corpse (which would hang). *)
    for i = 0 to n - 2 do
      if t.workers.(i).dead then begin
        (match t.workers.(i).domain with
        | Some d -> ( try Domain.join d with _ -> ())
        | None -> ());
        let ws = Array.copy t.workers in
        ws.(i) <- spawn_worker ();
        t.workers <- ws
      end
    done;
    let results = Array.make n (Error Not_found) in
    let run i () =
      results.(i) <- (try Ok (run_task i (fun () -> fns.(i) ())) with e -> Error e)
    in
    for i = 1 to n - 1 do
      submit t.workers.(i - 1) (run i)
    done;
    (* Task 0 runs here: a 1-task map never touches a worker, and the
       caller's domain contributes instead of idling on the join. *)
    run 0 ();
    for i = 1 to n - 1 do
      await t.workers.(i - 1)
    done;
    (* Watchdog: a worker that died mid-call produced no result — report
       the loss rather than hand back [Error Not_found] silently. *)
    let lost = ref (-1) in
    for i = n - 2 downto 0 do
      if t.workers.(i).dead then lost := i + 1
    done;
    Mutex.unlock t.lock;
    if !lost >= 0 then raise (Worker_lost !lost);
    results
  end

(* Two-level scheduling for the batch supervisor: [n] tasks drained by
   [workers] slots pulling indices off a shared atomic counter. Unlike
   [map] there is no task-per-slot bijection — any slot may run any task
   — so callers must not rely on slot-indexed state; what stays
   deterministic is the *result order* (index [i] of the returned array
   is task [i]'s outcome, wherever it ran). Slot 0 is the caller, slot
   [s >= 1] is worker [s - 1]; each task binds its slot's timeline lane. *)
let run_queue t ~workers fns =
  let n = Array.length fns in
  let slots = max 1 (min workers n) in
  if n = 0 then begin
    if t.closed then raise Pool_closed;
    [||]
  end
  else begin
    (* Same serialisation/heal/grow preamble as [map]: the whole drain
       holds [t.lock], so queue tasks must never re-enter the pool. *)
    Mutex.lock t.lock;
    if t.closed then begin
      Mutex.unlock t.lock;
      raise Pool_closed
    end;
    let have = Array.length t.workers in
    if slots - 1 > have then
      t.workers <-
        Array.init (slots - 1) (fun i ->
            if i < have then t.workers.(i) else spawn_worker ());
    for i = 0 to slots - 2 do
      if t.workers.(i).dead then begin
        (match t.workers.(i).domain with
        | Some d -> ( try Domain.join d with _ -> ())
        | None -> ());
        let ws = Array.copy t.workers in
        ws.(i) <- spawn_worker ();
        t.workers <- ws
      end
    done;
    let results = Array.make n (Error Not_found) in
    let next = Atomic.make 0 in
    let rec drain slot () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        results.(i) <-
          (try Ok (run_task slot (fun () -> fns.(i) ())) with e -> Error e);
        drain slot ()
      end
    in
    for s = 1 to slots - 1 do
      submit t.workers.(s - 1) (drain s)
    done;
    drain 0 ();
    for s = 1 to slots - 1 do
      await t.workers.(s - 1)
    done;
    let lost = ref (-1) in
    for i = slots - 2 downto 0 do
      if t.workers.(i).dead then lost := i + 1
    done;
    Mutex.unlock t.lock;
    if !lost >= 0 then raise (Worker_lost !lost);
    results
  end

let shutdown t =
  Mutex.lock t.lock;
  if t.closed then begin
    (* Idempotent: the first call joined everything already. *)
    Mutex.unlock t.lock;
    ()
  end
  else begin
    t.closed <- true;
    let ws = t.workers in
    t.workers <- [||];
    Mutex.unlock t.lock;
    Array.iter
      (fun w ->
        Mutex.lock w.mutex;
        w.stop <- true;
        Condition.broadcast w.cond;
        Mutex.unlock w.mutex)
      ws;
    Array.iter
      (fun w -> match w.domain with Some d -> Domain.join d | None -> ())
      ws
  end

(* The process-wide pool. Shut down on exit so the runtime does not abort
   on still-running domains. *)
let global_pool = lazy (let t = create () in at_exit (fun () -> shutdown t); t)

let global () = Lazy.force global_pool
