(** A pool of persistent worker domains.

    [Domain.spawn] costs a thread, a minor heap and a handshake with
    every running domain — milliseconds that a per-call spawn pays on
    every parallel analysis and that dwarf the sharded work itself on
    short runs. The pool spawns each worker once; a {!map} call costs
    two lock transitions per worker.

    Determinism contract: [map fns] runs [fns.(0)] on the calling domain
    and [fns.(i)] on worker [i - 1] — a stable task-to-domain mapping, so
    slot-indexed state owned by the caller (e.g. {!Par_analysis}'s warm
    per-shard memo tables) is touched by exactly one domain per call. *)

type t

exception Pool_closed
(** Raised by {!map} and {!ensure} after {!shutdown}: submitting to a
    stopped pool would otherwise park the task forever. *)

exception Worker_lost of int
(** Raised by {!map} when a worker domain died mid-call (slot index in
    the failed call's task numbering). The tasks that did complete are
    lost with the call; the slot is respawned transparently on the next
    {!map}, so the caller's retry runs on a healthy pool. *)

val create : unit -> t
(** A pool with no workers; they are spawned by {!ensure} or on demand by
    {!map}. *)

val global : unit -> t
(** The process-wide pool, shut down automatically at exit. *)

val size : t -> int
(** Workers currently spawned. *)

val ensure : t -> int -> unit
(** [ensure t n] grows the pool to at least [n] workers. Call it outside
    timed regions to keep the one-time spawn cost out of them. Raises
    {!Pool_closed} after {!shutdown}. *)

val map : t -> (unit -> 'a) array -> ('a, exn) result array
(** [map t fns] runs every [fns.(i)] concurrently (task 0 on the calling
    domain) and returns their outcomes in order; an exception is captured
    as [Error] for that task only. Grows the pool if it has fewer than
    [length fns - 1] workers. Concurrent [map] calls from different
    domains are serialised — the pool's workers are a shared resource,
    not a scheduler.

    Each task runs with {!Obs.Timeline} lane [i] bound (the stable
    task-to-domain mapping makes lane contents deterministic), wrapped by
    the installed {!set_task_hook} if any.

    Raises {!Pool_closed} after {!shutdown}, and {!Worker_lost} when a
    worker domain died during the call (a supervisor should retry; the
    lost slot respawns on the next call). *)

val run_queue : t -> workers:int -> (unit -> 'a) array -> ('a, exn) result array
(** [run_queue t ~workers fns] drains the [fns] through at most [workers]
    concurrent slots (slot 0 on the calling domain, slot [s >= 1] on
    worker [s - 1]) pulling task indices off a shared counter — the
    two-level scheduling primitive behind job-concurrent batches. Result
    order is deterministic ([i]-th result is [fns.(i)]'s outcome);
    task-to-slot placement is {e not}, so tasks must not rely on
    slot-indexed caller state the way {!map} tasks may. Each task binds
    its slot's {!Obs.Timeline} lane and runs under the {!set_task_hook}
    wrapper. The whole drain is serialised with other pool calls —
    tasks must never re-enter the pool ({!map}/{!run_queue}/{!ensure}
    self-deadlock). Raises {!Pool_closed} after {!shutdown} and
    {!Worker_lost} when a worker died mid-drain (remaining results of
    that call are lost; the slot respawns on the next call). *)

val set_task_hook : (int -> (unit -> unit) -> unit) option -> unit
(** Install (or clear, with [None]) a process-wide per-task wrapper. The
    hook receives the task's slot index and a thunk it must run exactly
    once; {!map} fails that task if the hook drops the thunk. Used by the
    harness to sample pool-domain heap peaks around each task. *)

val shutdown : t -> unit
(** Stop and join every worker, then close the pool: subsequent {!map}
    or {!ensure} calls raise {!Pool_closed} instead of hanging on a
    stopped worker. Idempotent — a second call is a no-op. In-flight
    [map] calls must have returned before the first call. *)
