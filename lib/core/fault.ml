type t =
  | Drop_lockset_intersection
  | Skip_vclock_check
  | Widen_packed_key
  | Publish_before_touch
  | Last_witness_wins

let all =
  [ Drop_lockset_intersection;
    Skip_vclock_check;
    Widen_packed_key;
    Publish_before_touch;
    Last_witness_wins ]

let name = function
  | Drop_lockset_intersection -> "drop-lockset-intersection"
  | Skip_vclock_check -> "skip-vclock-check"
  | Widen_packed_key -> "widen-packed-key"
  | Publish_before_touch -> "publish-before-touch"
  | Last_witness_wins -> "last-witness-wins"

let of_name s =
  match List.find_opt (fun f -> String.equal (name f) s) all with
  | Some f -> Ok f
  | None ->
      Error
        (Printf.sprintf "unknown fault %S (valid: %s)" s
           (String.concat ", " (List.map name all)))

let layer = function
  | Drop_lockset_intersection | Skip_vclock_check -> "analysis"
  | Widen_packed_key -> "memo"
  | Publish_before_touch -> "collector"
  | Last_witness_wins -> "report"

let describe = function
  | Drop_lockset_intersection ->
      "lockset disjointness always passes; common locks no longer \
       suppress reports"
  | Skip_vclock_check ->
      "happens-before window filter skipped; ordered pairs reported as \
       concurrent"
  | Widen_packed_key ->
      "packed memo pair key keeps only the low bit of its first id, \
       colliding distinct pairs"
  | Publish_before_touch ->
      "every word is born published; the initialization removal \
       heuristic never fires"
  | Last_witness_wins ->
      "report aggregation overwrites the witness on merge instead of \
       keeping the first"

let armed : t option ref = ref None
let set f = armed := f
let get () = !armed

let on f = match !armed with None -> false | Some g -> g == f

let with_fault f thunk =
  let saved = !armed in
  armed := Some f;
  Fun.protect ~finally:(fun () -> armed := saved) thunk
