(** Seeded kernel faults for the conformance fuzzer's self-test.

    Each fault names one deliberate, localized corruption of a production
    kernel layer — the collector's publication tracking, the analysis
    kernel's lockset and vector-clock checks, the packed memo keys, the
    report aggregation. [hawkset check --mutate] flips one fault at a
    time and asserts that the differential fuzzer detects and minimizes
    it; a fault that survives fuzzing would mean the executable
    specification ({!Reference}) cannot actually distinguish a broken
    kernel from a correct one.

    The reference specification must never consult this module: a fault
    that corrupted both sides identically would be invisible. Hooks live
    only in {!Collector}, {!Analysis.Kernel} and {!Report}.

    Faults default to off and cost one ref read when probed; production
    paths only probe behind a single [enabled] check. *)

type t =
  | Drop_lockset_intersection
      (** Analysis kernel: the store/load lockset disjointness test
          always passes — common locks no longer suppress a report. *)
  | Skip_vclock_check
      (** Analysis kernel: the happens-before window filter is skipped —
          ordered pairs are reported as concurrent. *)
  | Widen_packed_key
      (** Memo layer: the packed pair key keeps only the low bit of its
          first id, so distinct (lockset, lockset) and (vclock, vclock)
          pairs collide and reuse each other's cached verdicts. *)
  | Publish_before_touch
      (** Collector stage 2: every word is born published, so the
          Initialization Removal Heuristic never discards anything. *)
  | Last_witness_wins
      (** Report aggregation: a repeated (store, load) site pair
          overwrites the stored witness instead of keeping the first. *)

val all : t list
(** Every fault, in declaration order — one per kernel layer. *)

val name : t -> string
(** Stable kebab-case name, e.g. ["drop-lockset-intersection"]. *)

val of_name : string -> (t, string) result
(** Inverse of {!name}; the error lists the valid names. *)

val layer : t -> string
(** The kernel layer the fault corrupts (["collector"], ["analysis"],
    ["memo"], ["report"]). *)

val describe : t -> string

val set : t option -> unit
(** Arm one fault (or disarm with [None]). Not thread-safe; arm before
    spawning analysis domains. *)

val get : unit -> t option

val on : t -> bool
(** [on f] is [true] iff [f] is the armed fault. Cheap enough for hot
    paths: a ref read and an immediate comparison when disarmed. *)

val with_fault : t -> (unit -> 'a) -> 'a
(** Run the thunk with the fault armed, restoring the previous state
    even on exceptions. *)
