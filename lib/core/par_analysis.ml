(* Domain-parallel stage 3: contiguous word-range sharding over the
   Analysis.Kernel, with a deterministic in-order merge. See the .mli for
   the determinism argument; the load balancing below only moves shard
   boundaries, which the merge makes invisible in the result. *)

module K = Analysis.Kernel

type shard_result = {
  sr_report : Report.t;
  sr_memo : K.memo;
  sr_stats : K.stats;
}

let run_shard ~features (c : Collector.result) (words : int array) lo hi =
  let memo = K.make_memo () in
  let stats = K.make_stats () in
  let report = ref Report.empty in
  for i = lo to hi - 1 do
    report := K.analyse_word ~features ~memo ~stats c words.(i) !report
  done;
  { sr_report = !report; sr_memo = memo; sr_stats = stats }

(* Contiguous cost-balanced partition: cut after the word whose cumulative
   estimated cost crosses the next 1/shards-th of the total. Estimated
   cost of a word = |loads| * |windows| (the pair loop) + 1 (the visit).
   Returns (lo, hi) index ranges into [words]; some may be empty. *)
let partition (c : Collector.result) (words : int array) shards =
  let n = Array.length words in
  let cost w =
    let len tbl =
      match Hashtbl.find_opt tbl w with Some l -> List.length l | None -> 0
    in
    1 + (len c.Collector.loads_by_word * len c.Collector.windows_by_word)
  in
  let total = Array.fold_left (fun acc w -> acc + cost w) 0 words in
  let ranges = ref [] in
  let lo = ref 0 in
  let acc = ref 0 in
  let target k = total * k / shards in
  let k = ref 1 in
  Array.iteri
    (fun i w ->
      acc := !acc + cost w;
      if !k < shards && !acc >= target !k then begin
        ranges := (!lo, i + 1) :: !ranges;
        lo := i + 1;
        incr k
      end)
    words;
  ranges := (!lo, n) :: !ranges;
  (* Pad with empty trailing ranges if the costs crossed fewer than
     [shards - 1] boundaries (e.g. one huge word). *)
  let rs = List.rev !ranges in
  rs @ List.init (shards - List.length rs) (fun _ -> (n, n))

let merge_counters shard_results =
  (* Pair/prune/race counts are per-pair sums: flushing each shard's
     buffer adds them up. Flush order is irrelevant (addition), but we
     keep shard order for clarity. *)
  List.iter (fun sr -> Obs.Buffer.flush (K.buffer sr.sr_stats)) shard_results;
  (* The memo split must be that of one shared table: total lookups minus
     the number of *globally* distinct keys. A key first seen by two
     shards cost each of them a real computation, but sequentially it
     would have been one miss plus hits — publish that. *)
  let union_size proj =
    let seen = Hashtbl.create 1024 in
    List.iter
      (fun sr ->
        Hashtbl.iter
          (fun key _ -> if not (Hashtbl.mem seen key) then Hashtbl.add seen key ())
          (proj sr.sr_memo))
      shard_results;
    Hashtbl.length seen
  in
  let sum proj = List.fold_left (fun acc sr -> acc + proj sr.sr_memo) 0 shard_results in
  K.flush_memo_counters
    ~ls_lookups:(sum (fun m -> m.K.ls_lookups))
    ~ls_misses:(union_size (fun m -> m.K.disjoint_memo))
    ~vc_lookups:(sum (fun m -> m.K.vc_lookups))
    ~vc_misses:(union_size (fun m -> m.K.leq_memo))

let analyse ?(features = Analysis.all_features) ?(jobs = 1) (c : Collector.result)
    =
  let words = K.sorted_words c in
  let shards = min (max 1 jobs) (max 1 (Array.length words)) in
  if shards <= 1 then Analysis.run ~features c
  else begin
    let ranges = partition c words shards in
    (* Spawn every shard but the first; the first runs on this domain so a
       2-shard analysis costs one spawn. *)
    let spawned =
      List.map
        (fun (lo, hi) ->
          Domain.spawn (fun () -> run_shard ~features c words lo hi))
        (List.tl ranges)
    in
    let first =
      let lo, hi = List.hd ranges in
      run_shard ~features c words lo hi
    in
    let shard_results = first :: List.map Domain.join spawned in
    let report =
      List.fold_left
        (fun acc sr -> Report.merge acc sr.sr_report)
        Report.empty shard_results
    in
    let pairs =
      List.fold_left (fun acc sr -> acc + K.pairs sr.sr_stats) 0 shard_results
    in
    merge_counters shard_results;
    K.set_last_pairs pairs;
    Obs.Logger.debug ~section:"analysis" (fun () ->
        Printf.sprintf "par analyse: %d shards, %d pairs examined, %d reports"
          shards pairs (Report.count report));
    { Analysis.report; pairs }
  end
