(* Domain-parallel stage 3: contiguous word-range sharding over the
   Analysis.Kernel, with a deterministic in-order merge. See the .mli for
   the determinism argument; the load balancing below only moves shard
   boundaries, which the merge makes invisible in the result. *)

module K = Analysis.Kernel

(* Shard-failure isolation: a domain that raises is recorded and its
   range re-run sequentially on the joining domain; only if the retry
   also raises is the range skipped. All three counters are zero on every
   healthy run, so they never perturb the cross-jobs counter-determinism
   invariant. *)
let obs_shard_failures = Obs.Registry.counter "analysis.shard_failures"
let obs_shard_retries = Obs.Registry.counter "analysis.shard_retries"
let obs_shard_skipped = Obs.Registry.counter "analysis.shard_ranges_skipped"

type shard_result = {
  sr_report : Report.t;
  sr_memo : K.memo;
  sr_stats : K.stats;
  sr_analysed : int;
}

let run_shard ?stop ~features (c : Collector.result) (words : int array) lo hi =
  let memo = K.make_memo () in
  let stats = K.make_stats () in
  let report = ref Report.empty in
  let analysed = ref 0 in
  (try
     for i = lo to hi - 1 do
       (match stop with
       | Some f when f () -> raise Exit
       | Some _ | None -> ());
       report := K.analyse_word ~features ~memo ~stats c words.(i) !report;
       incr analysed
     done
   with Exit -> ());
  {
    sr_report = !report;
    sr_memo = memo;
    sr_stats = stats;
    sr_analysed = !analysed;
  }

(* Contiguous cost-balanced partition: cut after the word whose cumulative
   estimated cost crosses the next 1/shards-th of the total. Estimated
   cost of a word = |loads| * |windows| (the pair loop) + 1 (the visit).
   Returns (lo, hi) index ranges into [words]; some may be empty. *)
let partition (c : Collector.result) (words : int array) shards =
  let n = Array.length words in
  let cost w =
    let len tbl =
      match Hashtbl.find_opt tbl w with Some l -> List.length l | None -> 0
    in
    1 + (len c.Collector.loads_by_word * len c.Collector.windows_by_word)
  in
  let total = Array.fold_left (fun acc w -> acc + cost w) 0 words in
  let ranges = ref [] in
  let lo = ref 0 in
  let acc = ref 0 in
  let target k = total * k / shards in
  let k = ref 1 in
  Array.iteri
    (fun i w ->
      acc := !acc + cost w;
      if !k < shards && !acc >= target !k then begin
        ranges := (!lo, i + 1) :: !ranges;
        lo := i + 1;
        incr k
      end)
    words;
  ranges := (!lo, n) :: !ranges;
  (* Pad with empty trailing ranges if the costs crossed fewer than
     [shards - 1] boundaries (e.g. one huge word). *)
  let rs = List.rev !ranges in
  rs @ List.init (shards - List.length rs) (fun _ -> (n, n))

let merge_counters shard_results =
  (* Pair/prune/race counts are per-pair sums: flushing each shard's
     buffer adds them up. Flush order is irrelevant (addition), but we
     keep shard order for clarity. *)
  List.iter (fun sr -> Obs.Buffer.flush (K.buffer sr.sr_stats)) shard_results;
  (* The memo split must be that of one shared table: total lookups minus
     the number of *globally* distinct keys. A key first seen by two
     shards cost each of them a real computation, but sequentially it
     would have been one miss plus hits — publish that. *)
  let union_size proj =
    let seen = Hashtbl.create 1024 in
    List.iter
      (fun sr ->
        Hashtbl.iter
          (fun key _ -> if not (Hashtbl.mem seen key) then Hashtbl.add seen key ())
          (proj sr.sr_memo))
      shard_results;
    Hashtbl.length seen
  in
  let sum proj = List.fold_left (fun acc sr -> acc + proj sr.sr_memo) 0 shard_results in
  K.flush_memo_counters
    ~ls_lookups:(sum (fun m -> m.K.ls_lookups))
    ~ls_misses:(union_size (fun m -> m.K.disjoint_memo))
    ~vc_lookups:(sum (fun m -> m.K.vc_lookups))
    ~vc_misses:(union_size (fun m -> m.K.leq_memo))

let analyse ?(features = Analysis.all_features) ?(jobs = 1) ?stop
    ?inject_shard_failure (c : Collector.result) =
  let words = K.sorted_words c in
  let shards = min (max 1 jobs) (max 1 (Array.length words)) in
  if shards <= 1 then Analysis.run ~features ?stop c
  else begin
    let ranges = partition c words shards in
    (* A shard's whole body runs inside the guard: any exception — the
       injected test failure or a real one — becomes [Error] instead of
       tearing down the joining domain. The injection fires before any
       work, so a retried shard redoes the full range and merged counters
       stay bit-identical to a failure-free run. *)
    let guarded shard_idx lo hi () =
      try
        (match inject_shard_failure with
        | Some f when f shard_idx ->
            failwith (Printf.sprintf "injected shard failure (shard %d)" shard_idx)
        | Some _ | None -> ());
        Ok (run_shard ?stop ~features c words lo hi)
      with e -> Error e
    in
    (* Spawn every shard but the first; the first runs on this domain so a
       2-shard analysis costs one spawn. *)
    let spawned =
      List.mapi
        (fun i (lo, hi) -> Domain.spawn (guarded (i + 1) lo hi))
        (List.tl ranges)
    in
    let first =
      let lo, hi = List.hd ranges in
      guarded 0 lo hi ()
    in
    let outcomes = first :: List.map Domain.join spawned in
    (* Isolate failures: the failed domain's private report and counter
       buffer are discarded whole (nothing was flushed), and the range is
       re-run sequentially right here. Results stay in shard order. *)
    let shard_results =
      List.map2
        (fun (lo, hi) outcome ->
          match outcome with
          | Ok sr -> Some sr
          | Error e -> (
              Obs.Metric.incr obs_shard_failures;
              Obs.Logger.warn ~section:"analysis" (fun () ->
                  Printf.sprintf
                    "shard [%d,%d) failed (%s); retrying sequentially" lo hi
                    (Printexc.to_string e));
              match run_shard ?stop ~features c words lo hi with
              | sr ->
                  Obs.Metric.incr obs_shard_retries;
                  Some sr
              | exception e2 ->
                  Obs.Metric.incr obs_shard_skipped;
                  Obs.Logger.err ~section:"analysis" (fun () ->
                      Printf.sprintf
                        "shard [%d,%d) failed again (%s); range skipped" lo hi
                        (Printexc.to_string e2));
                  None))
        ranges outcomes
      |> List.filter_map Fun.id
    in
    let report =
      List.fold_left
        (fun acc sr -> Report.merge acc sr.sr_report)
        Report.empty shard_results
    in
    let pairs =
      List.fold_left (fun acc sr -> acc + K.pairs sr.sr_stats) 0 shard_results
    in
    let analysed =
      List.fold_left (fun acc sr -> acc + sr.sr_analysed) 0 shard_results
    in
    merge_counters shard_results;
    Obs.Logger.debug ~section:"analysis" (fun () ->
        Printf.sprintf "par analyse: %d shards, %d pairs examined, %d reports"
          shards pairs (Report.count report));
    {
      Analysis.report;
      pairs;
      words_analysed = analysed;
      words_total = Array.length words;
    }
  end
