(* Domain-parallel stage 3: contiguous slot-range sharding over the
   Analysis.Kernel, with a deterministic in-order merge. See the .mli for
   the determinism argument; the load balancing below only moves shard
   boundaries, which the merge makes invisible in the result.

   Shards run on the persistent {!Domain_pool} rather than on freshly
   spawned domains, and each shard slot keeps its memo tables between
   [analyse] calls ([K.reset_memo] empties them without shrinking), so a
   repeated parallel analysis probes warm pre-grown arrays and pays no
   spawn cost. *)

module K = Analysis.Kernel

(* Shard-failure isolation: a domain that raises is recorded and its
   range re-run sequentially on the joining domain; only if the retry
   also raises is the range skipped. All three counters are zero on every
   healthy run, so they never perturb the cross-jobs counter-determinism
   invariant. *)
let obs_shard_failures = Obs.Registry.counter "analysis.shard_failures"
let obs_shard_retries = Obs.Registry.counter "analysis.shard_retries"
let obs_shard_skipped = Obs.Registry.counter "analysis.shard_ranges_skipped"

(* Timeline events: one begin/end pair per shard on its worker's lane,
   instants on the caller's lane when a shard fails/retries/is skipped.
   All on deterministic control paths with shard-index args, so lane
   signatures stay seed-reproducible. *)
let tl_shard = Obs.Timeline.name "analysis.shard"
let tl_shard_failure = Obs.Timeline.name "analysis.shard_failure"
let tl_shard_retry = Obs.Timeline.name "analysis.shard_retry"
let tl_shard_skipped = Obs.Timeline.name "analysis.shard_skipped"

type shard_result = {
  sr_report : Report.t;
  sr_memo : K.memo;
  sr_stats : K.stats;
  sr_analysed : int;
}

let run_shard ?stop ~features ~memo (c : Collector.result) lo hi =
  let stats = K.make_stats () in
  let report = ref Report.empty in
  let analysed = ref 0 in
  (try
     for slot = lo to hi - 1 do
       (match stop with
       | Some f when f () -> raise Exit
       | Some _ | None -> ());
       report := K.analyse_slot ~features ~memo ~stats c slot !report;
       incr analysed
     done
   with Exit -> ());
  {
    sr_report = !report;
    sr_memo = memo;
    sr_stats = stats;
    sr_analysed = !analysed;
  }

(* Contiguous cost-balanced partition: cut after the slot whose cumulative
   estimated cost crosses the next 1/shards-th of the total. Costs are
   computed once into a flat array (the pair-loop sizes are O(1) array
   lengths now, but the cut scan still reads each twice).
   Returns (lo, hi) index ranges into the slot space; some may be empty. *)
let partition (c : Collector.result) shards =
  let n = K.slot_count c in
  let costs = Array.init n (K.slot_cost c) in
  let total = Array.fold_left ( + ) 0 costs in
  let ranges = ref [] in
  let lo = ref 0 in
  let acc = ref 0 in
  let target k = total * k / shards in
  let k = ref 1 in
  for i = 0 to n - 1 do
    acc := !acc + costs.(i);
    if !k < shards && !acc >= target !k then begin
      ranges := (!lo, i + 1) :: !ranges;
      lo := i + 1;
      incr k
    end
  done;
  ranges := (!lo, n) :: !ranges;
  (* Pad with empty trailing ranges if the costs crossed fewer than
     [shards - 1] boundaries (e.g. one huge slot). *)
  let rs = List.rev !ranges in
  rs @ List.init (shards - List.length rs) (fun _ -> (n, n))

let merge_counters shard_results =
  (* Pair/prune/race counts are per-pair sums: flushing each shard's
     buffer adds them up. Flush order is irrelevant (addition), but we
     keep shard order for clarity. *)
  List.iter (fun sr -> Obs.Buffer.flush (K.buffer sr.sr_stats)) shard_results;
  (* The memo split must be that of one shared table: total lookups minus
     the number of *globally* distinct keys. A key first seen by two
     shards cost each of them a real computation, but sequentially it
     would have been one miss plus hits — publish that. *)
  let memos = List.map (fun sr -> sr.sr_memo) shard_results in
  let ls_misses, vc_misses = K.union_misses memos in
  let sum proj = List.fold_left (fun acc sr -> acc + proj sr.sr_memo) 0 shard_results in
  K.flush_memo_counters
    ~ls_lookups:(sum K.ls_lookups)
    ~ls_misses
    ~vc_lookups:(sum K.vc_lookups)
    ~vc_misses

(* Warm per-shard-slot memo tables, reused across [analyse] calls. The
   pool's stable task-to-domain mapping means slot [i]'s memo is only
   ever probed by one domain per call; the checkout protocol below (take
   the whole set, put it back) keeps a concurrent [analyse] from another
   domain correct — it just runs with cold tables. *)
let warm_lock = Mutex.create ()
let warm_memos : K.memo array ref = ref [||]

let checkout_memos impl shards =
  Mutex.lock warm_lock;
  let cached = !warm_memos in
  warm_memos := [||];
  Mutex.unlock warm_lock;
  Array.init shards (fun i ->
      if i < Array.length cached && K.memo_impl cached.(i) = impl then begin
        K.reset_memo cached.(i);
        cached.(i)
      end
      else K.make_memo ~impl ())

let checkin_memos memos =
  Mutex.lock warm_lock;
  if Array.length memos > Array.length !warm_memos then warm_memos := memos;
  Mutex.unlock warm_lock

let analyse ?(features = Analysis.all_features) ?(jobs = 1) ?memo_impl ?stop
    ?inject_shard_failure (c : Collector.result) =
  let shards = min (max 1 jobs) (max 1 (K.slot_count c)) in
  if shards <= 1 then Analysis.run ~features ?memo_impl ?stop c
  else begin
    let impl = Option.value ~default:`Packed memo_impl in
    let ranges = Array.of_list (partition c shards) in
    let memos = checkout_memos impl shards in
    (* A shard's whole body runs inside the pool's per-task guard: any
       exception — the injected test failure or a real one — becomes
       [Error] instead of tearing down the pool. The injection fires
       before any work, so a retried shard redoes the full range and
       merged counters stay bit-identical to a failure-free run. *)
    let task shard_idx () =
      (match inject_shard_failure with
      | Some f when f shard_idx ->
          failwith
            (Printf.sprintf "injected shard failure (shard %d)" shard_idx)
      | Some _ | None -> ());
      let lo, hi = ranges.(shard_idx) in
      Obs.Timeline.begin_ tl_shard ~arg:shard_idx;
      Fun.protect
        ~finally:(fun () -> Obs.Timeline.end_ tl_shard ~arg:shard_idx)
        (fun () -> run_shard ?stop ~features ~memo:memos.(shard_idx) c lo hi)
    in
    (* Shard 0 runs on this domain (the pool's task 0); workers are
       reused across calls, so a steady-state [analyse] spawns nothing. *)
    let outcomes =
      Domain_pool.map (Domain_pool.global ())
        (Array.init shards (fun i -> task i))
    in
    (* Isolate failures: the failed shard's private report and counter
       buffer are discarded whole (nothing was flushed), and the range is
       re-run sequentially right here — on a reset memo, so the retried
       shard's miss counts are again those of a fresh table. Results stay
       in shard order. *)
    let shard_results =
      List.filter_map Fun.id
        (List.mapi
           (fun i outcome ->
             let lo, hi = ranges.(i) in
             match outcome with
             | Ok sr -> Some sr
             | Error e -> (
                 Obs.Metric.incr obs_shard_failures;
                 Obs.Timeline.instant tl_shard_failure ~arg:i;
                 Obs.Logger.warn ~section:"analysis" (fun () ->
                     Printf.sprintf
                       "shard [%d,%d) failed (%s); retrying sequentially" lo hi
                       (Printexc.to_string e));
                 K.reset_memo memos.(i);
                 match run_shard ?stop ~features ~memo:memos.(i) c lo hi with
                 | sr ->
                     Obs.Metric.incr obs_shard_retries;
                     Obs.Timeline.instant tl_shard_retry ~arg:i;
                     Some sr
                 | exception e2 ->
                     Obs.Metric.incr obs_shard_skipped;
                     Obs.Timeline.instant tl_shard_skipped ~arg:i;
                     Obs.Logger.err ~section:"analysis" (fun () ->
                         Printf.sprintf
                           "shard [%d,%d) failed again (%s); range skipped" lo
                           hi (Printexc.to_string e2));
                     None))
           (Array.to_list outcomes))
    in
    let report =
      List.fold_left
        (fun acc sr -> Report.merge acc sr.sr_report)
        Report.empty shard_results
    in
    let pairs =
      List.fold_left (fun acc sr -> acc + K.pairs sr.sr_stats) 0 shard_results
    in
    let analysed =
      List.fold_left (fun acc sr -> acc + sr.sr_analysed) 0 shard_results
    in
    merge_counters shard_results;
    checkin_memos memos;
    Obs.Logger.debug ~section:"analysis" (fun () ->
        Printf.sprintf "par analyse: %d shards, %d pairs examined, %d reports"
          shards pairs (Report.count report));
    {
      Analysis.report;
      pairs;
      words_analysed = analysed;
      words_total = K.slot_count c;
    }
  end
