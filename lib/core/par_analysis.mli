(** Domain-parallel stage 3.

    Shards the slot space (load-bearing words, ascending) of the collected
    records across OCaml 5 domains and runs the {!Analysis.Kernel} over
    each shard independently: every shard gets its own memo tables, its
    own {!Obs.Buffer} of deterministic counters and its own private
    {!Report.t}, so the hot path touches no shared mutable state (the
    collector result is read-only, see {!Collector.result}).

    The shards run on the persistent {!Domain_pool} — one spawn per
    worker per process, not per call — and each shard slot's memo tables
    are kept and reset between calls, so a steady-state parallel analysis
    probes warm pre-grown arrays and its per-call overhead is two lock
    transitions per worker.

    {2 Determinism}

    The result is {e bit-identical} to {!Analysis.run} for every [jobs]
    value:

    - Slots are partitioned into {e contiguous} ascending ranges, one per
      shard; each shard visits its slots in ascending order, so the global
      visit order is the concatenation of the shard orders — exactly the
      sequential order.
    - Shard reports are merged in shard order with {!Report.merge}, which
      reproduces the sequential [Report.add] sequence: site pairs appear
      in first-witness order and keep the first witness's fields, with
      occurrence counts summed.
    - The deterministic counters are reconstructed at merge time: pair,
      prune and race counts are sums over pairs (shard-independent), and
      the memo hit/miss split is derived from total lookups and the union
      of the per-shard key sets — the values one shared memo table would
      have produced. Warm memo reuse cannot perturb this: tables are
      emptied (capacity kept) before every call. Per-domain buffers are
      flushed into {!Obs.Registry.global} only after every shard has
      finished.

    [jobs = 1] (the default) bypasses sharding entirely and is exactly
    {!Analysis.run}.

    {2 Failure isolation}

    A shard that raises no longer poisons the run: its private report and
    counter buffer are discarded whole (nothing had been flushed), the
    failure is counted in [analysis.shard_failures], and the shard's slot
    range is re-run sequentially on the calling domain
    ([analysis.shard_retries]) with its memo reset first. Only when the
    retry {e also} raises is the range dropped
    ([analysis.shard_ranges_skipped]) — visible as
    [words_analysed < words_total] in the outcome. Because a retried shard
    redoes its full range from scratch, a run with transient failures
    still produces the bit-identical report and counters. All three
    counters are zero on healthy runs. *)

val analyse :
  ?features:Analysis.features ->
  ?jobs:int ->
  ?memo_impl:[ `Packed | `Tuple ] ->
  ?stop:(unit -> bool) ->
  ?inject_shard_failure:(int -> bool) ->
  Collector.result ->
  Analysis.outcome
(** [analyse ~jobs c] runs Algorithm 1 over [c] on [max 1 jobs] domains
    (capped at the number of slots). The returned report and every
    deterministic counter published to {!Obs.Registry.global} are
    identical to the sequential {!Analysis.run} for any [jobs].

    [memo_impl] selects the memo-key implementation (see
    {!Analysis.Kernel.memo}); outcomes are identical for both.
    [stop] is polled at slot boundaries on every shard (deadline
    degradation; a truncated parallel report is {e not} guaranteed
    identical to a truncated sequential one — see DESIGN).
    [inject_shard_failure] is a test hook: shard indices (0-based, in
    range order) for which it returns [true] raise before doing any work,
    exercising the isolation path without perturbing results. *)
