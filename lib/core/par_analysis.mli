(** Domain-parallel stage 3.

    Shards the canonical word keys of the collected records across OCaml 5
    domains and runs the {!Analysis.Kernel} over each shard independently:
    every domain gets its own memo tables, its own {!Obs.Buffer} of
    deterministic counters and its own private {!Report.t}, so the hot
    path touches no shared mutable state (the collector result is
    read-only, see {!Collector.result}).

    {2 Determinism}

    The result is {e bit-identical} to {!Analysis.run} for every [jobs]
    value:

    - Words are sorted and partitioned into {e contiguous} ascending
      ranges, one per shard; each shard visits its words in ascending
      order, so the global visit order is the concatenation of the shard
      orders — exactly the sequential order.
    - Shard reports are merged in shard order with {!Report.merge}, which
      reproduces the sequential [Report.add] sequence: site pairs appear
      in first-witness order and keep the first witness's fields, with
      occurrence counts summed.
    - The deterministic counters are reconstructed at merge time: pair,
      prune and race counts are sums over pairs (shard-independent), and
      the memo hit/miss split is derived from total lookups and the union
      of the per-shard key sets — the values one shared memo table would
      have produced. Per-domain buffers are flushed into
      {!Obs.Registry.global} only after every domain has joined.

    [jobs = 1] (the default) bypasses sharding entirely and is exactly
    {!Analysis.run}. *)

val analyse :
  ?features:Analysis.features ->
  ?jobs:int ->
  Collector.result ->
  Analysis.outcome
(** [analyse ~jobs c] runs Algorithm 1 over [c] on [max 1 jobs] domains
    (capped at the number of words). The returned report and every
    deterministic counter published to {!Obs.Registry.global} are
    identical to the sequential {!Analysis.run} for any [jobs]. *)
