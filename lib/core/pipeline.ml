type config = {
  irh : bool;
  effective_lockset : bool;
  timestamps : bool;
  vector_clocks : bool;
  eadr : bool;
  jobs : int;
  event_budget : int option;
  collect_deadline_s : float option;
  analyse_deadline_s : float option;
}

(* The parallel analysis is bit-identical to the sequential one for every
   jobs value, so an environment default is safe: it can only change
   timings, never results. CI exports HAWKSET_JOBS=4 to exercise the
   sharded path under the whole test suite. *)
let default_jobs =
  match Sys.getenv_opt "HAWKSET_JOBS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | Some _ | None -> 1)
  | None -> 1

let default =
  { irh = true; effective_lockset = true; timestamps = true;
    vector_clocks = true; eadr = false; jobs = default_jobs;
    event_budget = None; collect_deadline_s = None;
    analyse_deadline_s = None }

let no_irh = { default with irh = false }

type truncation = {
  trunc_stage : string;
  trunc_reason : string;
  trunc_done : int;
  trunc_total : int;
}

type result = {
  races : Report.t;
  collector_stats : Collector.stats;
  pairs_examined : int;
  jobs : int;
  analysis_seconds : float;
  stage_seconds : (string * float) list;
  counters : (string * int) list;
  truncated : truncation list;
}

let obs_truncations = Obs.Registry.counter "pipeline.truncations"

let tl_pipeline = Obs.Timeline.name "pipeline"
let tl_truncation = Obs.Timeline.name "pipeline.truncation"

(* One stage: record into the global span aggregate (nested under the
   enclosing span path), bracket the caller's timeline lane with a
   duration event, and return this call's own wall-clock seconds. The
   intern call is two per [run] — nowhere near a hot path. *)
let staged name f =
  let h = Obs.Timeline.name ("pipeline." ^ name) in
  Obs.Timeline.begin_ h;
  Fun.protect
    ~finally:(fun () -> Obs.Timeline.end_ h)
    (fun () ->
      let t0 = Unix.gettimeofday () in
      let r = Obs.Registry.with_span name f in
      (r, Unix.gettimeofday () -. t0))

(* A [stop] predicate that trips once [deadline_s] wall-clock seconds have
   elapsed from its creation. [None] deadline never trips. *)
let deadline_stop = function
  | None -> None
  | Some deadline_s ->
      let t0 = Unix.gettimeofday () in
      Some (fun () -> Unix.gettimeofday () -. t0 > deadline_s)

let run ?(config = default) trace =
  let before = Obs.Registry.counters Obs.Registry.global in
  let t0 = Unix.gettimeofday () in
  let truncated = ref [] in
  let note t =
    Obs.Metric.incr obs_truncations;
    Obs.Timeline.instant tl_truncation ~arg:t.trunc_done;
    Obs.Logger.warn ~section:"pipeline" (fun () ->
        Printf.sprintf "truncated %s (%s): %d of %d" t.trunc_stage
          t.trunc_reason t.trunc_done t.trunc_total);
    truncated := t :: !truncated
  in
  (* Event budget: a deterministic cut — analysing the budget-sized prefix
     of the trace, unlike the wall-clock deadlines below. *)
  let total_events = Trace.Tracebuf.length trace in
  let trace =
    match config.event_budget with
    | Some budget when total_events > budget ->
        note
          { trunc_stage = "collect"; trunc_reason = "event_budget";
            trunc_done = budget; trunc_total = total_events };
        Trace.Tracebuf.prefix trace budget
    | Some _ | None -> trace
  in
  (* Warm the domain pool before the timed region: worker spawn is a
     one-time process cost, not part of any analysis measurement. *)
  if config.jobs > 1 then Domain_pool.ensure (Domain_pool.global ()) (config.jobs - 1);
  Obs.Timeline.begin_ tl_pipeline ~arg:(Trace.Tracebuf.length trace);
  let (collected, outcome), (collect_s, analyse_s) =
    Fun.protect
      ~finally:(fun () -> Obs.Timeline.end_ tl_pipeline)
    @@ fun () ->
    Obs.Registry.with_span "pipeline" (fun () ->
        let collected, collect_s =
          staged "collect" (fun () ->
              Collector.collect ~irh:config.irh ~timestamps:config.timestamps
                ~eadr:config.eadr
                ?stop:(deadline_stop config.collect_deadline_s)
                trace)
        in
        let consumed = collected.Collector.stats.Collector.c_events in
        if consumed < Trace.Tracebuf.length trace then
          note
            { trunc_stage = "collect"; trunc_reason = "deadline";
              trunc_done = consumed;
              trunc_total = Trace.Tracebuf.length trace };
        let features =
          {
            Analysis.effective_lockset = config.effective_lockset;
            timestamps = config.timestamps;
            vector_clocks = config.vector_clocks;
          }
        in
        let outcome, analyse_s =
          staged "analyse" (fun () ->
              Par_analysis.analyse ~features ~jobs:config.jobs
                ?stop:(deadline_stop config.analyse_deadline_s)
                collected)
        in
        if outcome.Analysis.words_analysed < outcome.Analysis.words_total then
          note
            { trunc_stage = "analyse";
              trunc_reason =
                (if config.analyse_deadline_s <> None then "deadline"
                 else "shard_skipped");
              trunc_done = outcome.Analysis.words_analysed;
              trunc_total = outcome.Analysis.words_total };
        ((collected, outcome), (collect_s, analyse_s)))
  in
  let t1 = Unix.gettimeofday () in
  let after = Obs.Registry.counters Obs.Registry.global in
  {
    races = outcome.Analysis.report;
    collector_stats = collected.Collector.stats;
    pairs_examined = outcome.Analysis.pairs;
    jobs = config.jobs;
    analysis_seconds = t1 -. t0;
    stage_seconds = [ ("collect", collect_s); ("analyse", analyse_s) ];
    counters = Obs.Registry.delta ~before ~after;
    truncated = List.rev !truncated;
  }

let races ?config trace = (run ?config trace).races
