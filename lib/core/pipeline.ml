type config = {
  irh : bool;
  effective_lockset : bool;
  timestamps : bool;
  vector_clocks : bool;
  eadr : bool;
  jobs : int;
}

(* The parallel analysis is bit-identical to the sequential one for every
   jobs value, so an environment default is safe: it can only change
   timings, never results. CI exports HAWKSET_JOBS=4 to exercise the
   sharded path under the whole test suite. *)
let default_jobs =
  match Sys.getenv_opt "HAWKSET_JOBS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | Some _ | None -> 1)
  | None -> 1

let default =
  { irh = true; effective_lockset = true; timestamps = true;
    vector_clocks = true; eadr = false; jobs = default_jobs }

let no_irh = { default with irh = false }

type result = {
  races : Report.t;
  collector_stats : Collector.stats;
  pairs_examined : int;
  jobs : int;
  analysis_seconds : float;
  stage_seconds : (string * float) list;
  counters : (string * int) list;
}

(* One stage: record into the global span aggregate (nested under the
   enclosing span path) and return this call's own wall-clock seconds. *)
let staged name f =
  let t0 = Unix.gettimeofday () in
  let r = Obs.Registry.with_span name f in
  (r, Unix.gettimeofday () -. t0)

let run ?(config = default) trace =
  let before = Obs.Registry.counters Obs.Registry.global in
  let t0 = Unix.gettimeofday () in
  let (collected, outcome), (collect_s, analyse_s) =
    Obs.Registry.with_span "pipeline" (fun () ->
        let collected, collect_s =
          staged "collect" (fun () ->
              Collector.collect ~irh:config.irh ~timestamps:config.timestamps
                ~eadr:config.eadr trace)
        in
        let features =
          {
            Analysis.effective_lockset = config.effective_lockset;
            timestamps = config.timestamps;
            vector_clocks = config.vector_clocks;
          }
        in
        let outcome, analyse_s =
          staged "analyse" (fun () ->
              Par_analysis.analyse ~features ~jobs:config.jobs collected)
        in
        ((collected, outcome), (collect_s, analyse_s)))
  in
  let t1 = Unix.gettimeofday () in
  let after = Obs.Registry.counters Obs.Registry.global in
  {
    races = outcome.Analysis.report;
    collector_stats = collected.Collector.stats;
    pairs_examined = outcome.Analysis.pairs;
    jobs = config.jobs;
    analysis_seconds = t1 -. t0;
    stage_seconds = [ ("collect", collect_s); ("analyse", analyse_s) ];
    counters = Obs.Registry.delta ~before ~after;
  }

let races ?config trace = (run ?config trace).races
