type config = {
  irh : bool;
  effective_lockset : bool;
  timestamps : bool;
  vector_clocks : bool;
  eadr : bool;
}

let default =
  { irh = true; effective_lockset = true; timestamps = true;
    vector_clocks = true; eadr = false }

let no_irh = { default with irh = false }

type result = {
  races : Report.t;
  collector_stats : Collector.stats;
  pairs_examined : int;
  analysis_seconds : float;
  stage_seconds : (string * float) list;
  counters : (string * int) list;
}

(* One stage: record into the global span aggregate (nested under the
   enclosing span path) and return this call's own wall-clock seconds. *)
let staged name f =
  let t0 = Unix.gettimeofday () in
  let r = Obs.Registry.with_span name f in
  (r, Unix.gettimeofday () -. t0)

let run ?(config = default) trace =
  let before = Obs.Registry.counters Obs.Registry.global in
  let t0 = Unix.gettimeofday () in
  let (collected, races), (collect_s, analyse_s) =
    Obs.Registry.with_span "pipeline" (fun () ->
        let collected, collect_s =
          staged "collect" (fun () ->
              Collector.collect ~irh:config.irh ~timestamps:config.timestamps
                ~eadr:config.eadr trace)
        in
        let features =
          {
            Analysis.effective_lockset = config.effective_lockset;
            timestamps = config.timestamps;
            vector_clocks = config.vector_clocks;
          }
        in
        let races, analyse_s =
          staged "analyse" (fun () -> Analysis.analyse ~features collected)
        in
        ((collected, races), (collect_s, analyse_s)))
  in
  let t1 = Unix.gettimeofday () in
  let after = Obs.Registry.counters Obs.Registry.global in
  {
    races;
    collector_stats = collected.Collector.stats;
    pairs_examined = Analysis.pairs_examined ();
    analysis_seconds = t1 -. t0;
    stage_seconds = [ ("collect", collect_s); ("analyse", analyse_s) ];
    counters = Obs.Registry.delta ~before ~after;
  }

let races ?config trace = (run ?config trace).races
