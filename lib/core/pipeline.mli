(** HawkSet's end-to-end pipeline (Figure 4): trace in, race reports out.

    The pipeline is application-agnostic: it consumes only the event trace
    and never inspects application state, mirroring the paper's claim that
    any producer of the instrumentation events can be analysed. *)

type config = {
  irh : bool;  (** Stage 2, the Initialization Removal Heuristic. *)
  effective_lockset : bool;  (** §3.1.2's effective lockset (vs. store-time). *)
  timestamps : bool;  (** Logical-clock extension of the lockset. *)
  vector_clocks : bool;  (** Inter-thread happens-before filter. *)
  eadr : bool;
      (** Analyse under the §2.1 eADR assumption (persistent cache):
          no window ever exists, so nothing is reported — the flag shows
          that the whole bug class is an artifact of the volatile cache. *)
  jobs : int;
      (** Stage-3 analysis domains ({!Par_analysis}). [1] runs the exact
          sequential {!Analysis.run}; any value produces a bit-identical
          report and counter snapshot, so the knob only affects wall-clock
          time. *)
}

val default_jobs : int
(** [$HAWKSET_JOBS] when set to a positive integer, else [1]. *)

val default : config
(** Everything on, [jobs = default_jobs] — the configuration evaluated in
    the paper. *)

val no_irh : config
(** [default] with the IRH disabled — the Table 4 comparison point. *)

type result = {
  races : Report.t;
  collector_stats : Collector.stats;
  pairs_examined : int;
      (** From {!Analysis.outcome.pairs} — the per-run value, safe under
          concurrent analyses (unlike the deprecated
          {!Analysis.pairs_examined} global). *)
  jobs : int;  (** Analysis domains this run used ([config.jobs]). *)
  analysis_seconds : float;
      (** Wall-clock time of collection + analysis (the "testing time" the
          efficiency evaluation reports excludes workload generation). *)
  stage_seconds : (string * float) list;
      (** This call's wall clock per stage: [("collect", s); ("analyse", s)].
          Real timings — quarantined from the deterministic counters. *)
  counters : (string * int) list;
      (** Delta of {!Obs.Registry.global} counters across this call, sorted
          by name — the pipeline's own work (events consumed, windows
          opened/closed, locksets interned, vclock comparisons, memo
          hits/misses, pairs pruned). Deterministic for a fixed trace. *)
}

val run : ?config:config -> Trace.Tracebuf.t -> result

val races : ?config:config -> Trace.Tracebuf.t -> Report.t
(** Shorthand for [(run trace).races]. *)
