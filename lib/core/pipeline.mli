(** HawkSet's end-to-end pipeline (Figure 4): trace in, race reports out.

    The pipeline is application-agnostic: it consumes only the event trace
    and never inspects application state, mirroring the paper's claim that
    any producer of the instrumentation events can be analysed. *)

type config = {
  irh : bool;  (** Stage 2, the Initialization Removal Heuristic. *)
  effective_lockset : bool;  (** §3.1.2's effective lockset (vs. store-time). *)
  timestamps : bool;  (** Logical-clock extension of the lockset. *)
  vector_clocks : bool;  (** Inter-thread happens-before filter. *)
  eadr : bool;
      (** Analyse under the §2.1 eADR assumption (persistent cache):
          no window ever exists, so nothing is reported — the flag shows
          that the whole bug class is an artifact of the volatile cache. *)
  jobs : int;
      (** Stage-3 analysis domains ({!Par_analysis}). [1] runs the exact
          sequential {!Analysis.run}; any value produces a bit-identical
          report and counter snapshot, so the knob only affects wall-clock
          time. *)
  event_budget : int option;
      (** Analyse at most this many trace events: an oversized trace is
          cut to its budget-sized prefix (recorded in
          {!result.truncated}). Deterministic — the same trace and budget
          always analyse the same prefix. [None] = unbounded. *)
  collect_deadline_s : float option;
      (** Wall-clock budget for stage 1. On expiry collection stops at the
          next 512-event boundary and the pipeline continues with the
          records gathered so far. Best-effort and {e nondeterministic}
          (see DESIGN: degradation contract). [None] = unbounded. *)
  analyse_deadline_s : float option;
      (** Wall-clock budget for stage 3, polled at word boundaries.
          Same nondeterminism caveat. [None] = unbounded. *)
}

val default_jobs : int
(** [$HAWKSET_JOBS] when set to a positive integer, else [1]. *)

val default : config
(** Everything on, [jobs = default_jobs] — the configuration evaluated in
    the paper. *)

val no_irh : config
(** [default] with the IRH disabled — the Table 4 comparison point. *)

(** One recorded degradation: which stage gave up, why
    (["event_budget"], ["deadline"] or ["shard_skipped"]), and how much of
    its work domain it covered — events for stage 1, canonical words for
    stage 3. *)
type truncation = {
  trunc_stage : string;
  trunc_reason : string;
  trunc_done : int;
  trunc_total : int;
}

type result = {
  races : Report.t;
  collector_stats : Collector.stats;
  pairs_examined : int;
      (** From {!Analysis.outcome.pairs} — the per-run value, safe under
          concurrent analyses. *)
  jobs : int;  (** Analysis domains this run used ([config.jobs]). *)
  analysis_seconds : float;
      (** Wall-clock time of collection + analysis (the "testing time" the
          efficiency evaluation reports excludes workload generation). *)
  stage_seconds : (string * float) list;
      (** This call's wall clock per stage: [("collect", s); ("analyse", s)].
          Real timings — quarantined from the deterministic counters. *)
  counters : (string * int) list;
      (** Delta of {!Obs.Registry.global} counters across this call, sorted
          by name — the pipeline's own work (events consumed, windows
          opened/closed, locksets interned, vclock comparisons, memo
          hits/misses, pairs pruned). Deterministic for a fixed trace. *)
  truncated : truncation list;
      (** Empty on a complete run. Non-empty means the report is a sound
          analysis of {e part} of the trace (each entry says which part):
          races it contains are real findings, but absence of a race is no
          longer evidence of absence. In stage order; the
          [pipeline.truncations] counter mirrors the length. *)
}

val run : ?config:config -> Trace.Tracebuf.t -> result
(** Runs collection then analysis under [config]. Degradation contract:
    with budgets/deadlines set (or a shard range skipped after repeated
    failure) [run] still returns a [result] — work is dropped, never the
    report; every drop is itemized in {!result.truncated}. *)

val races : ?config:config -> Trace.Tracebuf.t -> Report.t
(** Shorthand for [(run trace).races]. *)
