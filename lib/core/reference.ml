(* The executable specification: stages 1-3 transcribed naively.

   Everything here favors auditability over speed: association lists
   instead of interners, linear scans instead of packed-key sets, whole
   values instead of ids, quadratic loops instead of memo tables. The
   production pipeline (Collector + Analysis/Par_analysis) must produce a
   byte-identical [Report.to_json] on every trace; [hawkset check] pits
   the two against each other on generated traces.

   Because it is the oracle, this module must not share the production
   kernel's optimization machinery — and must never consult {!Fault}: a
   seeded kernel fault that corrupted both sides identically would be
   invisible to the differential runner. The only modules it leans on are
   the value-level primitives ({!Lockset}, {!Vclock}, {!Report} record
   construction, {!Pmem.Layout} geometry) whose own algebra is covered by
   dedicated property tests. *)

type config = {
  irh : bool;
  effective_lockset : bool;
  timestamps : bool;
  vector_clocks : bool;
  eadr : bool;
}

let default_config =
  { irh = true; effective_lockset = true; timestamps = true;
    vector_clocks = true; eadr = false }

let config_of_pipeline (c : Pipeline.config) =
  { irh = c.Pipeline.irh; effective_lockset = c.Pipeline.effective_lockset;
    timestamps = c.Pipeline.timestamps;
    vector_clocks = c.Pipeline.vector_clocks; eadr = c.Pipeline.eadr }

(* ------------------------------------------------------------------ *)
(* Stage 1-2 state: memory simulation, lock tracking, thread tracking  *)
(* ------------------------------------------------------------------ *)

(* Store metadata, by value: the full byte range, the site, the
   timestamped lockset and the vector clock at store time. *)
type smeta = {
  s_tid : int;
  s_addr : int;
  s_size : int;
  s_site : Trace.Site.t;
  s_ls : Lockset.t; (* with timestamps *)
  s_vec : Vclock.t;
}

(* One open store window, clamped to one word ([e_lo], [e_hi)). *)
type sentry = {
  e_meta : smeta;
  e_word : int;
  e_lo : int;
  e_hi : int;
  mutable e_flushers : int list; (* tids whose flush covers this entry *)
  mutable e_closed : bool;
}

(* An emitted window record (production: {!Access.window}). *)
type swindow = {
  w_meta : smeta;
  w_eff : Lockset.t; (* stripped *)
  w_end_vec : Vclock.t option;
  w_end : Access.end_kind;
}

(* An emitted load record (production: {!Access.load}). *)
type sload = {
  l_tid : int;
  l_addr : int;
  l_size : int;
  l_site : Trace.Site.t;
  l_ls : Lockset.t; (* stripped *)
  l_vec : Vclock.t;
}

(* The production dedup keys, as whole values. Interner ids are injective
   by value (locksets via {!Lockset.equal}, clocks via {!Vclock.equal},
   sites via {!Trace.Site.equal}), so comparing the values themselves is
   exactly the packed / tuple key comparison. *)
type wkey = {
  wk_tid : int;
  wk_site : Trace.Site.t;
  wk_eff : Lockset.t; (* stripped *)
  wk_vec : Vclock.t;
  wk_end_vec : Vclock.t option;
  wk_kind : Access.end_kind;
}

type lkey = {
  lk_tid : int;
  lk_site : Trace.Site.t;
  lk_ls : Lockset.t; (* stripped *)
  lk_vec : Vclock.t;
}

let wkey_equal a b =
  a.wk_tid = b.wk_tid
  && Trace.Site.equal a.wk_site b.wk_site
  && Lockset.equal a.wk_eff b.wk_eff
  && Vclock.equal a.wk_vec b.wk_vec
  && (match (a.wk_end_vec, b.wk_end_vec) with
     | None, None -> true
     | Some x, Some y -> Vclock.equal x y
     | None, Some _ | Some _, None -> false)
  && a.wk_kind = b.wk_kind

let lkey_equal a b =
  a.lk_tid = b.lk_tid
  && Trace.Site.equal a.lk_site b.lk_site
  && Lockset.equal a.lk_ls b.lk_ls
  && Vclock.equal a.lk_vec b.lk_vec

(* §3.1.3 publication state of a word. *)
type pub = Published | First_touch of int

type sword = {
  sw_word : int;
  mutable sw_pub : pub;
  mutable sw_open : sentry list; (* newest-first *)
  mutable sw_windows : swindow list; (* newest-first *)
  mutable sw_loads : sload list; (* newest-first *)
  mutable sw_wkeys : wkey list;
  mutable sw_lkeys : lkey list;
}

type sthread = {
  mutable t_ls : Lockset.t;
  mutable t_acq : int;
  mutable t_vec : Vclock.t;
  mutable t_dirty : bool; (* batched own-component tick pending *)
  mutable t_pending : sentry list; (* newest-first *)
}

type state = {
  cfg : config;
  mutable threads : (int * sthread) list;
  mutable words : sword list; (* creation order *)
}

let fresh_thread () =
  (* A fresh thread has a batched tick pending: its first PM access gives
     it a non-zero own component. *)
  { t_ls = Lockset.empty; t_acq = 0; t_vec = Vclock.zero; t_dirty = true;
    t_pending = [] }

let thread st tid =
  let tid = Trace.Tid.to_int tid in
  match List.assoc_opt tid st.threads with
  | Some th -> th
  | None ->
      let th = fresh_thread () in
      st.threads <- st.threads @ [ (tid, th) ];
      th

(* Lazy vector-clock tick, consumed by the first PM access (store, load,
   flush or fence — not lock operations) after create/join. *)
let touch st tid =
  let th = thread st tid in
  if th.t_dirty then begin
    th.t_vec <- Vclock.tick th.t_vec (Trace.Tid.to_int tid);
    th.t_dirty <- false
  end;
  th

let lookup_word st word =
  List.find_opt (fun w -> w.sw_word = word) st.words

(* Find-or-create, folding in the publication update: a word becomes
   published at its first access by a second thread. *)
let get_word st word ~tid =
  match lookup_word st word with
  | Some w ->
      (match w.sw_pub with
      | First_touch t when t <> tid -> w.sw_pub <- Published
      | First_touch _ | Published -> ());
      w
  | None ->
      let w =
        { sw_word = word; sw_pub = First_touch tid; sw_open = [];
          sw_windows = []; sw_loads = []; sw_wkeys = []; sw_lkeys = [] }
      in
      st.words <- st.words @ [ w ];
      w

let effective_lockset st (m : smeta) ~closer_tid ~closer_ls =
  if m.s_tid = closer_tid then
    if st.cfg.timestamps then Lockset.inter_same_thread m.s_ls closer_ls
    else Lockset.inter_same_thread_no_ts m.s_ls closer_ls
  else Lockset.empty

(* Emit a window record unless an identical one (same production dedup
   key) already exists for this word. *)
let emit_window w (m : smeta) ~eff ~end_vec ~kind =
  let key =
    { wk_tid = m.s_tid; wk_site = m.s_site; wk_eff = Lockset.strip_ts eff;
      wk_vec = m.s_vec; wk_end_vec = end_vec; wk_kind = kind }
  in
  if not (List.exists (wkey_equal key) w.sw_wkeys) then begin
    w.sw_wkeys <- key :: w.sw_wkeys;
    w.sw_windows <-
      { w_meta = m; w_eff = Lockset.strip_ts eff; w_end_vec = end_vec;
        w_end = kind }
      :: w.sw_windows
  end

(* Close a window. IRH: a store explicitly persisted while its word is
   still unpublished happened during initialization and is discarded. *)
let close st w (e : sentry) ~eff ~end_vec ~kind =
  e.e_closed <- true;
  let persisted =
    match kind with
    | Access.Persisted_same_thread | Access.Persisted_other_thread -> true
    | Access.Overwritten_same_thread | Access.Overwritten_other_thread
    | Access.Open_at_exit ->
        false
  in
  if st.cfg.irh && persisted && w.sw_pub <> Published then ()
  else emit_window w e.e_meta ~eff ~end_vec ~kind

let on_store st ~tid ~addr ~size ~site =
  let th = touch st tid in
  let itid = Trace.Tid.to_int tid in
  if st.cfg.eadr then
    (* eADR: durable on visibility — only publication updates. *)
    Pmem.Layout.iter_words addr size (fun word ->
        ignore (get_word st word ~tid:itid : sword))
  else begin
    let m =
      { s_tid = itid; s_addr = addr; s_size = size; s_site = site;
        s_ls = th.t_ls; s_vec = th.t_vec }
    in
    Pmem.Layout.iter_words addr size (fun word ->
        let w = get_word st word ~tid:itid in
        (* Overwrite: close every open entry of this word whose byte
           subrange the new store overlaps. *)
        List.iter
          (fun e ->
            if
              (not e.e_closed)
              && Pmem.Layout.ranges_overlap e.e_lo (e.e_hi - e.e_lo) addr size
            then
              let kind =
                if e.e_meta.s_tid = itid then Access.Overwritten_same_thread
                else Access.Overwritten_other_thread
              in
              close st w e
                ~eff:(effective_lockset st e.e_meta ~closer_tid:itid
                        ~closer_ls:th.t_ls)
                ~end_vec:(Some th.t_vec) ~kind)
          w.sw_open;
        w.sw_open <- List.filter (fun e -> not e.e_closed) w.sw_open;
        let wlo = word * Pmem.Layout.word_size in
        let whi = wlo + Pmem.Layout.word_size in
        let e =
          { e_meta = m; e_word = word; e_lo = max addr wlo;
            e_hi = min (addr + size) whi; e_flushers = []; e_closed = false }
        in
        w.sw_open <- e :: w.sw_open)
  end

let on_load st ~tid ~addr ~size ~site =
  let th = touch st tid in
  let itid = Trace.Tid.to_int tid in
  (* Gather the word cells in address order; the publication update of
     this very access participates in the IRH keep decision. *)
  let cells = ref [] in
  Pmem.Layout.iter_words addr size (fun word ->
      cells := get_word st word ~tid:itid :: !cells);
  let cells = List.rev !cells in
  let any_pub = List.exists (fun w -> w.sw_pub = Published) cells in
  let keep = (not st.cfg.irh) || any_pub in
  if keep then begin
    let ls = Lockset.strip_ts th.t_ls in
    let record =
      { l_tid = itid; l_addr = addr; l_size = size; l_site = site; l_ls = ls;
        l_vec = th.t_vec }
    in
    let key =
      { lk_tid = itid; lk_site = site; lk_ls = ls; lk_vec = th.t_vec }
    in
    List.iter
      (fun w ->
        if not (List.exists (lkey_equal key) w.sw_lkeys) then begin
          w.sw_lkeys <- key :: w.sw_lkeys;
          w.sw_loads <- record :: w.sw_loads
        end)
      cells
  end

let on_flush st ~tid ~line =
  let th = touch st tid in
  let itid = Trace.Tid.to_int tid in
  let first_word = line / Pmem.Layout.word_size in
  let words_per_line = Pmem.Layout.line_size / Pmem.Layout.word_size in
  for word = first_word to first_word + words_per_line - 1 do
    match lookup_word st word with
    | None -> ()
    | Some w ->
        List.iter
          (fun e ->
            if (not e.e_closed) && not (List.mem itid e.e_flushers) then begin
              e.e_flushers <- itid :: e.e_flushers;
              th.t_pending <- e :: th.t_pending
            end)
          w.sw_open
  done

let on_fence st ~tid =
  let th = touch st tid in
  let itid = Trace.Tid.to_int tid in
  if th.t_pending <> [] then begin
    let vec = th.t_vec in
    (* Newest-first close order (the list is consed). *)
    List.iter
      (fun e ->
        if (not e.e_closed) && List.mem itid e.e_flushers then
          let kind =
            if e.e_meta.s_tid = itid then Access.Persisted_same_thread
            else Access.Persisted_other_thread
          in
          match lookup_word st e.e_word with
          | Some w ->
              close st w e
                ~eff:(effective_lockset st e.e_meta ~closer_tid:itid
                        ~closer_ls:th.t_ls)
                ~end_vec:(Some vec) ~kind
          | None -> assert false (* the entry's word always exists *))
      th.t_pending;
    th.t_pending <- []
  end

let on_acquire st ~tid ~lock =
  let th = thread st tid in
  th.t_acq <- th.t_acq + 1;
  th.t_ls <- Lockset.acquire th.t_ls lock ~ts:th.t_acq

let on_release st ~tid ~lock =
  let th = thread st tid in
  th.t_ls <- Lockset.release th.t_ls lock

let on_create st ~parent ~child =
  let p = thread st parent in
  p.t_vec <- Vclock.tick p.t_vec (Trace.Tid.to_int parent);
  p.t_dirty <- true;
  let c = thread st child in
  c.t_vec <- Vclock.tick p.t_vec (Trace.Tid.to_int child);
  c.t_dirty <- true

let on_join st ~waiter ~joined =
  let j = thread st joined in
  let w = thread st waiter in
  w.t_vec <- Vclock.merge w.t_vec j.t_vec;
  w.t_dirty <- true

let finalize st =
  (* Windows still open at trace end never persisted: empty effective
     lockset, no closing clock, and the IRH keeps them. Words in creation
     order, entries newest-first. *)
  List.iter
    (fun w ->
      List.iter
        (fun e ->
          if not e.e_closed then
            close st w e ~eff:Lockset.empty ~end_vec:None
              ~kind:Access.Open_at_exit)
        w.sw_open)
    st.words

(* ------------------------------------------------------------------ *)
(* Stage 3: PM-aware lockset analysis (Algorithm 1)                    *)
(* ------------------------------------------------------------------ *)

let same_loc (a : Trace.Site.t) (b : Trace.Site.t) =
  a.Trace.Site.line = b.Trace.Site.line
  && String.equal a.Trace.Site.file b.Trace.Site.file

(* Report aggregation, replicated rather than delegated to {!Report.add}:
   merge by (store location, load location), occurrences count witnessing
   pairs, and the first witnessing pair's evidence wins. *)
let add_race races ~store_site ~load_site ~store_tid ~load_tid ~addr
    ~window_end ~witness =
  let rec go = function
    | [] ->
        [ { Report.store_site; load_site; store_tid; load_tid; addr;
            window_end; occurrences = 1; witness = Some (witness ()) } ]
    | (r : Report.race) :: rest
      when same_loc r.Report.store_site store_site
           && same_loc r.Report.load_site load_site ->
        { r with Report.occurrences = r.Report.occurrences + 1 } :: rest
    | r :: rest -> r :: go rest
  in
  go races

(* Line 13-19 of Algorithm 1 over one word's records, in the production
   visit order: loads outer (newest-first), windows inner (newest-first).
   A (window, load) pair sharing several words is examined only at its
   canonical word — the word of the higher start address. *)
let analyse_word cfg word races =
  let races = ref races in
  List.iter
    (fun (l : sload) ->
      List.iter
        (fun (w : swindow) ->
          let m = w.w_meta in
          let canonical = Pmem.Layout.word_index (max m.s_addr l.l_addr) in
          if
            canonical = word.sw_word
            && m.s_tid <> l.l_tid (* line 16 *)
            && Pmem.Layout.ranges_overlap m.s_addr m.s_size l.l_addr l.l_size
               (* line 15 *)
          then begin
            let concurrent (* line 17: the load falls inside the window *) =
              (not cfg.vector_clocks)
              || (not (Vclock.leq l.l_vec m.s_vec))
                 &&
                 match w.w_end_vec with
                 | None -> true
                 | Some e -> not (Vclock.leq e l.l_vec)
            in
            if concurrent then begin
              let store_ls =
                if cfg.effective_lockset then w.w_eff
                else Lockset.strip_ts m.s_ls
              in
              (* line 18: st.effective_set ∩ ld.set = ∅ *)
              if Lockset.disjoint_locks store_ls l.l_ls then begin
                let witness () =
                  let locks ls =
                    List.map Trace.Lock_id.to_int (Lockset.locks ls)
                  in
                  { Report.wt_store_locks = locks m.s_ls;
                    wt_eff_locks = locks w.w_eff;
                    wt_load_locks = locks l.l_ls;
                    wt_store_vec = Vclock.to_list m.s_vec;
                    wt_end_vec = Option.map Vclock.to_list w.w_end_vec;
                    wt_load_vec = Vclock.to_list l.l_vec }
                in
                races :=
                  add_race !races ~store_site:m.s_site ~load_site:l.l_site
                    ~store_tid:m.s_tid ~load_tid:l.l_tid
                    ~addr:(max m.s_addr l.l_addr) ~window_end:w.w_end ~witness
              end
            end
          end)
        word.sw_windows)
    word.sw_loads;
  !races

let analyse_words cfg words =
  (* Words ascending; only words with at least one load record are
     analysis slots, and slots without windows pair nothing. *)
  let slots =
    List.sort
      (fun a b -> Int.compare a.sw_word b.sw_word)
      (List.filter (fun w -> w.sw_loads <> []) words)
  in
  List.fold_left (fun races w -> analyse_word cfg w races) Report.empty slots

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

let pipeline ?(config = default_config) ?event_budget trace =
  let trace =
    match event_budget with
    | Some budget when Trace.Tracebuf.length trace > budget ->
        Trace.Tracebuf.prefix trace budget
    | Some _ | None -> trace
  in
  let st = { cfg = config; threads = []; words = [] } in
  Trace.Tracebuf.iter
    (fun ev ->
      match ev with
      | Trace.Event.Store { tid; addr; size; site; non_temporal = _ } ->
          on_store st ~tid ~addr ~size ~site
      | Trace.Event.Load { tid; addr; size; site } ->
          on_load st ~tid ~addr ~size ~site
      | Trace.Event.Flush { tid; line; kind = _; site = _ } ->
          on_flush st ~tid ~line
      | Trace.Event.Fence { tid; site = _ } -> on_fence st ~tid
      | Trace.Event.Lock_acquire { tid; lock; site = _ } ->
          on_acquire st ~tid ~lock
      | Trace.Event.Lock_release { tid; lock; site = _ } ->
          on_release st ~tid ~lock
      | Trace.Event.Thread_create { parent; child } ->
          on_create st ~parent ~child
      | Trace.Event.Thread_join { waiter; joined } ->
          on_join st ~waiter ~joined)
    trace;
  finalize st;
  analyse_words config st.words

(* Stage 3 alone, on production-collected records: the same naive pair
   loop reading the per-word arrays (already words-ascending with
   newest-first records) through the interning tables. *)
let analyse ?(config = default_config) (c : Collector.result) =
  let tables = c.Collector.tables in
  let vec id = Access.Vc_table.get tables.Access.vc id in
  let ls id = Access.Ls_table.get tables.Access.ls id in
  let races = ref Report.empty in
  Array.iteri
    (fun wi word ->
      let loads = c.Collector.loads_of.(wi) in
      let windows = c.Collector.windows_of.(wi) in
      if Array.length loads > 0 && Array.length windows > 0 then
        Array.iter
          (fun (l : Access.load) ->
            Array.iter
              (fun (w : Access.window) ->
                let canonical =
                  Pmem.Layout.word_index (max w.Access.w_addr l.Access.l_addr)
                in
                if
                  canonical = word
                  && w.Access.w_tid <> l.Access.l_tid
                  && Pmem.Layout.ranges_overlap w.Access.w_addr
                       w.Access.w_size l.Access.l_addr l.Access.l_size
                then begin
                  let concurrent =
                    (not config.vector_clocks)
                    || (not
                          (Vclock.leq (vec l.Access.l_vec)
                             (vec w.Access.w_store_vec)))
                       &&
                       match w.Access.w_end_vec with
                       | None -> true
                       | Some e ->
                           not (Vclock.leq (vec e) (vec l.Access.l_vec))
                  in
                  if concurrent then
                    let store_ls =
                      if config.effective_lockset then ls w.Access.w_eff
                      else ls w.Access.w_store_ls
                    in
                    if Lockset.disjoint_locks store_ls (ls l.Access.l_ls)
                    then begin
                      let witness () =
                        let locks id =
                          List.map Trace.Lock_id.to_int
                            (Lockset.locks (ls id))
                        in
                        let ivec id = Vclock.to_list (vec id) in
                        { Report.wt_store_locks = locks w.Access.w_store_ls;
                          wt_eff_locks = locks w.Access.w_eff;
                          wt_load_locks = locks l.Access.l_ls;
                          wt_store_vec = ivec w.Access.w_store_vec;
                          wt_end_vec = Option.map ivec w.Access.w_end_vec;
                          wt_load_vec = ivec l.Access.l_vec }
                      in
                      races :=
                        add_race !races ~store_site:w.Access.w_site
                          ~load_site:l.Access.l_site
                          ~store_tid:w.Access.w_tid ~load_tid:l.Access.l_tid
                          ~addr:(max w.Access.w_addr l.Access.l_addr)
                          ~window_end:w.Access.w_end ~witness
                    end
                end)
              windows)
          loads)
    c.Collector.words;
  !races

let locs report =
  List.sort_uniq compare
    (List.map
       (fun (r : Report.race) ->
         ( Trace.Site.location r.Report.store_site,
           Trace.Site.location r.Report.load_site ))
       (Report.sorted report))

let same_races a b = locs a = locs b
