(* Records are registered once per touched word; deduplicate by unique id
   so each logical record is considered once. *)
let unique_by key records =
  let seen = Hashtbl.create 64 in
  List.filter
    (fun r ->
      let k = key r in
      if Hashtbl.mem seen k then false
      else begin
        Hashtbl.add seen k ();
        true
      end)
    records

let analyse (c : Collector.result) =
  let tables = c.Collector.tables in
  let stores =
    unique_by
      (fun (w : Access.window) -> w.Access.w_id)
      (Collector.all_windows c)
  in
  let loads =
    unique_by
      (fun (l : Access.load) -> l.Access.l_id)
      (Collector.all_loads c)
  in
  let vec id = Access.Vc_table.get tables.Access.vc id in
  let ls id = Access.Ls_table.get tables.Access.ls id in
  let report = ref Report.empty in
  (* foreach StoreData st ∈ stores do (line 13) *)
  List.iter
    (fun (st : Access.window) ->
      (* foreach LoadData ld ∈ loads (line 14) *)
      List.iter
        (fun (ld : Access.load) ->
          let same_addr (* line 15, with access sizes *) =
            Pmem.Layout.ranges_overlap st.Access.w_addr st.Access.w_size
              ld.Access.l_addr ld.Access.l_size
          in
          let different_tid (* line 16 *) = st.Access.w_tid <> ld.Access.l_tid in
          let concurrent (* line 17: st.vec || ld.vec over the window *) =
            (not (Vclock.leq (vec ld.Access.l_vec) (vec st.Access.w_store_vec)))
            &&
            match st.Access.w_end_vec with
            | None -> true
            | Some e -> not (Vclock.leq (vec e) (vec ld.Access.l_vec))
          in
          if same_addr && different_tid && concurrent then
            (* line 18: st.effective_set ∩ ld.set = ∅ *)
            if Lockset.disjoint_locks (ls st.Access.w_eff) (ls ld.Access.l_ls)
            then begin
              (* line 19: report (st, ld) *)
              let witness () =
                let locks id =
                  List.map Trace.Lock_id.to_int (Lockset.locks (ls id))
                in
                let ivec id = Vclock.to_list (vec id) in
                {
                  Report.wt_store_locks = locks st.Access.w_store_ls;
                  wt_eff_locks = locks st.Access.w_eff;
                  wt_load_locks = locks ld.Access.l_ls;
                  wt_store_vec = ivec st.Access.w_store_vec;
                  wt_end_vec = Option.map ivec st.Access.w_end_vec;
                  wt_load_vec = ivec ld.Access.l_vec;
                }
              in
              report :=
                Report.add ~witness !report ~store_site:st.Access.w_site
                  ~load_site:ld.Access.l_site ~store_tid:st.Access.w_tid
                  ~load_tid:ld.Access.l_tid
                  ~addr:(max st.Access.w_addr ld.Access.l_addr)
                  ~window_end:st.Access.w_end
            end)
        loads)
    stores;
  !report

let locs report =
  List.sort_uniq compare
    (List.map
       (fun (r : Report.race) ->
         ( Trace.Site.location r.Report.store_site,
           Trace.Site.location r.Report.load_site ))
       (Report.sorted report))

let same_races a b = locs a = locs b
