(** The executable specification: stages 1-3, literally.

    A deliberately naive, allocation-happy transcription of the paper's
    pipeline — memory simulation, lock/thread tracking and publication
    (stages 1-2), then the PM-aware lockset analysis of Algorithm 1
    (stage 3) — working on whole values: association lists instead of
    interning tables, linear scans instead of packed-key dedup sets,
    quadratic pair loops instead of memo tables, and witness provenance
    resolved eagerly. Short enough to audit against the paper line by
    line, which makes it the oracle the differential conformance fuzzer
    ([hawkset check]) pits against the production pipeline: the two must
    produce byte-identical {!Report.to_json} output on every trace.

    The specification intentionally shares none of the production
    kernel's optimization machinery and never consults {!Fault} — a
    seeded mutation that corrupted both sides identically would be
    invisible. *)

type config = {
  irh : bool;  (** Initialization removal heuristic (§3.1.3). *)
  effective_lockset : bool;  (** Intersect store/close locksets (§3.1.2). *)
  timestamps : bool;  (** Timestamp-aware same-thread intersection. *)
  vector_clocks : bool;  (** Happens-before window filter. *)
  eadr : bool;  (** eADR: stores durable on visibility. *)
}

val default_config : config
(** All heuristics on, [eadr] off — the semantics of {!Pipeline.default}
    with {!Analysis.all_features}. *)

val config_of_pipeline : Pipeline.config -> config
(** The semantic knobs of a pipeline config (jobs, budgets and deadlines
    do not change what a complete run computes). *)

val pipeline : ?config:config -> ?event_budget:int -> Trace.Tracebuf.t -> Report.t
(** The whole specification: consume the trace (or its [event_budget]
    prefix, mirroring {!Pipeline.run}'s deterministic cut), run stages
    1-3 and aggregate the report. [Report.to_json] of the result must
    equal the production pipeline's byte for byte. *)

val analyse : ?config:config -> Collector.result -> Report.t
(** Stage 3 alone on production-collected records: the same naive pair
    loop reading the per-word record arrays through the interning
    tables. Oracle for {!Analysis.analyse} / {!Par_analysis.analyse} on
    an already-collected result. Only [config]'s [effective_lockset] and
    [vector_clocks] fields are consulted (the rest shaped collection). *)

val locs : Report.t -> (string * string) list
(** Sorted distinct (store location, load location) pairs. *)

val same_races : Report.t -> Report.t -> bool
(** Equality of the reported (store location, load location) sets. *)
