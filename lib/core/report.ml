(* The evidence behind a report: the locksets and vector clocks of the
   witnessing (window, load) pair, resolved from the interning tables at
   report time. Locks are lock ids, clocks per-thread counters. *)
type witness = {
  wt_store_locks : int list;
  wt_eff_locks : int list;
  wt_load_locks : int list;
  wt_store_vec : int list;
  wt_end_vec : int list option;  (* None when the window never closed. *)
  wt_load_vec : int list;
}

type race = {
  store_site : Trace.Site.t;
  load_site : Trace.Site.t;
  store_tid : int;
  load_tid : int;
  addr : int;
  window_end : Access.end_kind;
  occurrences : int;
  witness : witness option;
}

type t = race list

let empty = []

(* Same "file:line" identity as {!Trace.Site.location} equality, compared
   field-wise: [add] runs once per race witness, and building the two
   location strings per comparison dominated its cost. *)
let same_site (a : Trace.Site.t) (b : Trace.Site.t) =
  a.Trace.Site.line = b.Trace.Site.line
  && String.equal a.Trace.Site.file b.Trace.Site.file

let same_pair r ~store_site ~load_site =
  same_site r.store_site store_site && same_site r.load_site load_site

let add ?witness t ~store_site ~load_site ~store_tid ~load_tid ~addr
    ~window_end =
  let rec go acc = function
    | [] ->
        (* The thunk is forced only for the first witnessing pair of a
           site pair — later occurrences merge without resolving it. *)
        List.rev
          ({ store_site; load_site; store_tid; load_tid; addr; window_end;
             occurrences = 1; witness = Option.map (fun f -> f ()) witness }
          :: acc)
    | r :: rest when same_pair r ~store_site ~load_site ->
        let r =
          if Fault.on Fault.Last_witness_wins then
            { r with store_tid; load_tid; addr; window_end;
              witness = Option.map (fun f -> f ()) witness }
          else r
        in
        List.rev_append acc ({ r with occurrences = r.occurrences + 1 } :: rest)
    | r :: rest -> go (r :: acc) rest
  in
  go [] t

(* Like [add], but carrying an already-aggregated race: occurrences sum
   and the earlier report's witness fields win, exactly as if [r]'s
   witnessing pairs had been added one by one after [t]'s. *)
let add_merged t (r : race) =
  let rec go acc = function
    | [] -> List.rev (r :: acc)
    | x :: rest when same_pair x ~store_site:r.store_site ~load_site:r.load_site
      ->
        List.rev_append acc
          ({ x with occurrences = x.occurrences + r.occurrences } :: rest)
    | x :: rest -> go (x :: acc) rest
  in
  go [] t

let merge a b = List.fold_left add_merged a b

let count = List.length

let sorted t =
  List.sort
    (fun a b ->
      let c =
        String.compare
          (Trace.Site.location a.store_site)
          (Trace.Site.location b.store_site)
      in
      if c <> 0 then c
      else
        String.compare
          (Trace.Site.location a.load_site)
          (Trace.Site.location b.load_site))
    t

(* The schedule-insensitive projection of a report set: sorted distinct
   (store location, load location) pairs. Occurrence counts, thread ids,
   addresses and witnesses all legitimately vary across interleavings;
   the site-pair set is what HawkSet claims is stable (Table 3). *)
let canonical t =
  List.map
    (fun r ->
      (Trace.Site.location r.store_site, Trace.Site.location r.load_site))
    (sorted t)

(* Set difference of two canonical lists ([canonical] yields each pair
   once, so list subtraction is set subtraction). *)
let canonical_diff ~expected ~actual =
  let missing = List.filter (fun p -> not (List.mem p actual)) expected in
  let extra = List.filter (fun p -> not (List.mem p expected)) actual in
  (missing, extra)

let mem t ~store_loc ~load_loc =
  List.exists
    (fun r ->
      String.equal (Trace.Site.location r.store_site) store_loc
      && String.equal (Trace.Site.location r.load_site) load_loc)
    t

let end_kind_str = function
  | Access.Persisted_same_thread -> "persist outside atomic section"
  | Access.Persisted_other_thread -> "persisted by another thread"
  | Access.Overwritten_same_thread -> "overwritten before persist"
  | Access.Overwritten_other_thread -> "overwritten by another thread"
  | Access.Open_at_exit -> "never persisted"

let pp_int_set ~opening ~closing ppf xs =
  Format.fprintf ppf "%s%a%s" opening
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
       Format.pp_print_int)
    xs closing

let pp_witness ppf w =
  let locks = pp_int_set ~opening:"{" ~closing:"}" in
  let vec = pp_int_set ~opening:"(" ~closing:")" in
  Format.fprintf ppf
    "@[<v 2>witness:@,\
     store lockset     %a@,\
     effective lockset %a@,\
     load lockset      %a@,\
     store vclock      %a@,\
     window-end vclock %a@,\
     load vclock       %a@]"
    locks w.wt_store_locks locks w.wt_eff_locks locks w.wt_load_locks vec
    w.wt_store_vec
    (fun ppf -> function
      | Some v -> vec ppf v
      | None -> Format.pp_print_string ppf "open (never persisted)")
    w.wt_end_vec vec w.wt_load_vec

let pp_race ppf r =
  Format.fprintf ppf
    "@[<v 2>persistency-induced race (%s, %d occurrence%s):@,\
     store T%d @ %a@,load  T%d @ %a@]"
    (end_kind_str r.window_end) r.occurrences
    (if r.occurrences = 1 then "" else "s")
    r.store_tid Trace.Site.pp_backtrace r.store_site r.load_tid
    Trace.Site.pp_backtrace r.load_site

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let site_json (s : Trace.Site.t) =
  Printf.sprintf {|{"file":"%s","line":%d,"frames":[%s]}|}
    (json_escape s.Trace.Site.file)
    s.Trace.Site.line
    (String.concat ","
       (List.map (fun f -> "\"" ^ json_escape f ^ "\"") s.Trace.Site.frames))

let end_kind_json = function
  | Access.Persisted_same_thread -> "persisted_same_thread"
  | Access.Persisted_other_thread -> "persisted_other_thread"
  | Access.Overwritten_same_thread -> "overwritten_same_thread"
  | Access.Overwritten_other_thread -> "overwritten_other_thread"
  | Access.Open_at_exit -> "never_persisted"

let int_list_json xs =
  "[" ^ String.concat "," (List.map string_of_int xs) ^ "]"

let witness_json = function
  | None -> "null"
  | Some w ->
      Printf.sprintf
        {|{"store_lockset":%s,"effective_lockset":%s,"load_lockset":%s,"store_vclock":%s,"window_end_vclock":%s,"load_vclock":%s}|}
        (int_list_json w.wt_store_locks)
        (int_list_json w.wt_eff_locks)
        (int_list_json w.wt_load_locks)
        (int_list_json w.wt_store_vec)
        (match w.wt_end_vec with
        | Some v -> int_list_json v
        | None -> "null")
        (int_list_json w.wt_load_vec)

let to_json t =
  "["
  ^ String.concat ","
      (List.map
         (fun r ->
           Printf.sprintf
             {|{"store":%s,"load":%s,"store_tid":%d,"load_tid":%d,"addr":%d,"window_end":"%s","occurrences":%d,"witness":%s}|}
             (site_json r.store_site) (site_json r.load_site) r.store_tid
             r.load_tid r.addr (end_kind_json r.window_end) r.occurrences
             (witness_json r.witness))
         (sorted t))
  ^ "]"

let pp ppf t =
  match sorted t with
  | [] -> Format.fprintf ppf "no persistency-induced races detected"
  | races ->
      Format.fprintf ppf "@[<v>%a@]"
        (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_race)
        races
