(** Persistency-induced race reports.

    A report identifies a (store, load) pair of PM sites that can execute
    concurrently with the stored value not guaranteed persisted at load
    time (Definition 1). Reports are aggregated by site pair — the same
    granularity as Table 2 — with occurrence counts and backtraces. *)

type witness = {
  wt_store_locks : int list;  (** Lock ids held at the store. *)
  wt_eff_locks : int list;
      (** The window's effective lockset (§3.2) — the intersection the
          race test actually used. *)
  wt_load_locks : int list;  (** Lock ids held at the load. *)
  wt_store_vec : int list;  (** Vector clock at the store. *)
  wt_end_vec : int list option;
      (** Vector clock when the window closed; [None] when it never did
          ([Open_at_exit]). *)
  wt_load_vec : int list;  (** Vector clock at the load. *)
}
(** The evidence behind a report: effective locksets and vector clocks of
    the first witnessing (window, load) pair, exactly as the analysis
    kernel saw them. Deterministic for a fixed seed, so it serializes
    into [to_json] without breaking report identity across jobs. *)

type race = {
  store_site : Trace.Site.t;
  load_site : Trace.Site.t;
  store_tid : int;  (** Thread ids of one witnessing pair. *)
  load_tid : int;
  addr : int;  (** Address of one witnessing pair. *)
  window_end : Access.end_kind;
      (** How the witnessing store's window ended — [Open_at_exit] means a
          missing persist, the others a persist/overwrite outside the
          common atomic section. *)
  occurrences : int;  (** Distinct witnessing pairs merged into this report. *)
  witness : witness option;
      (** Provenance of the first witnessing pair ([None] for detectors
          that don't record it, e.g. baselines). *)
}

type t = race list

val empty : t

val add :
  ?witness:(unit -> witness) ->
  t ->
  store_site:Trace.Site.t ->
  load_site:Trace.Site.t ->
  store_tid:int ->
  load_tid:int ->
  addr:int ->
  window_end:Access.end_kind ->
  t
(** Adds a witnessing pair, merging with an existing report for the same
    (store location, load location). The [witness] thunk is forced only
    when the pair creates a new report (first witness wins on merge), so
    repeated occurrences cost nothing extra. *)

val merge : t -> t -> t
(** [merge a b] appends [b]'s races to [a] in [b]'s order, combining
    reports for a site pair already present in [a] (occurrence counts
    sum; [a]'s witness fields win). The result is exactly what repeated
    {!add} would have built had [b]'s witnessing pairs been added after
    [a]'s — the property the parallel analysis relies on to make its
    shard-merged report identical to the sequential one. *)

val count : t -> int
(** Number of distinct site-pair reports. *)

val sorted : t -> race list
(** Reports ordered by store location then load location. *)

val mem : t -> store_loc:string -> load_loc:string -> bool
(** Does the report set contain this ["file:line"] pair? Used to match
    against the ground-truth bug registry. *)

val canonical : t -> (string * string) list
(** The schedule-insensitive projection: sorted distinct
    [(store location, load location)] pairs, each appearing once.
    Occurrence counts, thread ids, addresses and witnesses vary across
    interleavings; this set is what the stability oracle compares. *)

val canonical_diff :
  expected:(string * string) list ->
  actual:(string * string) list ->
  (string * string) list * (string * string) list
(** [(missing, extra)]: pairs of [expected] absent from [actual], and
    pairs of [actual] absent from [expected]. Both empty iff the
    canonical sets agree. *)

val pp_race : Format.formatter -> race -> unit

val pp_witness : Format.formatter -> witness -> unit
(** Human-readable witness: locksets as [{...}], vector clocks as
    [(...)]; an open window end prints as "open (never persisted)". *)

val pp : Format.formatter -> t -> unit

val to_json : t -> string
(** Machine-readable reports: a JSON array of objects with
    [store]/[load] site objects ([file], [line], [frames]), thread ids,
    an example address, the window-end kind, the occurrence count and a
    [witness] object (locksets and vector clocks of the first witnessing
    pair; [null] when not recorded). *)
