(* Fingerprint-keyed analysis result cache.

   The paper's headline is efficiency: one execution per workload
   suffices, so the expensive thing — stage 2+3 over a collected trace —
   is a pure function of (trace bytes, analysis feature flags). Sweeps
   exploit that purity: schedule exploration re-runs the pipeline on
   fingerprint-identical traces, and crash sweeps re-analyse identical
   crash prefixes. This cache memoises the canonical outputs under
   [(Trace_io.fingerprint, config_fingerprint)] so a duplicate trace
   costs one hash probe instead of a full analysis.

   Layout: rows live in a {!Trace.Vec} (stable indices, [clear] keeps
   capacity for per-sweep reuse); the index is a {!Trace.Int_tbl.Map}
   from a 60-bit FNV of the combined key to the row index, with the full
   key string stored in the row to confirm the probe (a packed-key
   collision reads as a miss and the later [add] simply repoints the
   slot). All operations take [lock]: sweeps consult the cache from
   worker domains.

   Only *complete* results belong here — a truncated report is a
   property of the run (its budgets), not of the trace, so callers must
   not [add] one. Deadlines and [jobs] are likewise excluded from
   {!config_fingerprint}: any jobs value produces bit-identical reports,
   and deadlines only affect truncated (uncacheable) runs. *)

module J = Trace.Journal

type entry = {
  e_races_json : string;
  e_canonical : (string * string) list;
  e_counters : (string * int) list;
}

type t = {
  lock : Mutex.t;
  index : Trace.Int_tbl.Map.t;
  rows : (string * entry) Trace.Vec.t; (* full key, confirmed on probe *)
  mutable hits : int;
  mutable misses : int;
  mutable bytes : int; (* stored races_json bytes *)
}

let obs_hits = Obs.Registry.counter "cache.hits"
let obs_misses = Obs.Registry.counter "cache.misses"
let obs_bytes = Obs.Registry.counter "cache.bytes"
let tl_hit = Obs.Timeline.name "cache.hit"
let tl_miss = Obs.Timeline.name "cache.miss"
let tl_store = Obs.Timeline.name "cache.store"

let create () =
  {
    lock = Mutex.create ();
    index = Trace.Int_tbl.Map.create ~size:64 ();
    rows = Trace.Vec.create ();
    hits = 0;
    misses = 0;
    bytes = 0;
  }

let key_of ~trace_fp ~config_fp = trace_fp ^ ":" ^ config_fp

(* First 15 hex digits of the key's FNV: a non-negative sub-62-bit int,
   the shape {!Trace.Int_tbl} wants. *)
let packed_of key = int_of_string ("0x" ^ String.sub (J.fnv_hex key) 0 15)

let config_fingerprint (c : Pipeline.config) =
  J.fnv_hex
    (Printf.sprintf "irh=%b;el=%b;ts=%b;vc=%b;eadr=%b;budget=%s" c.irh
       c.effective_lockset c.timestamps c.vector_clocks c.eadr
       (match c.event_budget with None -> "-" | Some n -> string_of_int n))

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* Probe without touching the hit/miss accounting ([add] reuses it). *)
let probe t key =
  let i = Trace.Int_tbl.Map.find t.index (packed_of key) in
  if i < 0 then None
  else
    let k, e = Trace.Vec.get t.rows i in
    if String.equal k key then Some e else None

let find t ~trace_fp ~config_fp =
  let key = key_of ~trace_fp ~config_fp in
  let r = locked t (fun () ->
      let r = probe t key in
      (match r with
      | Some _ -> t.hits <- t.hits + 1
      | None -> t.misses <- t.misses + 1);
      r)
  in
  (match r with
  | Some _ ->
      Obs.Metric.incr obs_hits;
      Obs.Timeline.instant tl_hit
  | None ->
      Obs.Metric.incr obs_misses;
      Obs.Timeline.instant tl_miss);
  r

let add t ~trace_fp ~config_fp entry =
  let key = key_of ~trace_fp ~config_fp in
  let stored = locked t (fun () ->
      match probe t key with
      | Some _ -> false (* entries are deterministic: first wins *)
      | None ->
          Trace.Vec.push t.rows (key, entry);
          Trace.Int_tbl.Map.set t.index (packed_of key)
            (Trace.Vec.length t.rows - 1);
          t.bytes <- t.bytes + String.length entry.e_races_json;
          true)
  in
  if stored then begin
    Obs.Metric.add obs_bytes (String.length entry.e_races_json);
    Obs.Timeline.instant tl_store
  end

let length t = locked t (fun () -> Trace.Vec.length t.rows)

let clear t =
  locked t (fun () ->
      Trace.Int_tbl.Map.clear t.index;
      Trace.Vec.clear t.rows;
      t.bytes <- 0)

let stats t =
  locked t (fun () ->
      [
        ("cache.bytes", t.bytes);
        ("cache.entries", Trace.Vec.length t.rows);
        ("cache.hits", t.hits);
        ("cache.misses", t.misses);
      ])

(* --- persistence (Trace.Journal format) ------------------------------- *)

let schema = "hawkset.result_cache/1"

(* Payload framing: the races JSON is length-prefixed (it contains
   newlines and arbitrary bytes); canonical pairs and counters follow as
   one token-separated line each — locations are "file:line" and counter
   names are dotted identifiers, neither contains whitespace. *)
let frame e =
  let b = Buffer.create (String.length e.e_races_json + 64) in
  Buffer.add_string b (string_of_int (String.length e.e_races_json));
  Buffer.add_char b '\n';
  Buffer.add_string b e.e_races_json;
  Buffer.add_char b '\n';
  List.iter
    (fun (s, l) ->
      Buffer.add_string b (Printf.sprintf "C %s %s\n" s l))
    e.e_canonical;
  List.iter
    (fun (k, v) -> Buffer.add_string b (Printf.sprintf "K %s %d\n" k v))
    e.e_counters;
  Buffer.contents b

let unframe payload =
  match String.index_opt payload '\n' with
  | None -> None
  | Some nl -> (
      match int_of_string_opt (String.sub payload 0 nl) with
      | None -> None
      | Some len
        when len < 0 || nl + 1 + len >= String.length payload
             || payload.[nl + 1 + len] <> '\n' ->
          None
      | Some len ->
          let races = String.sub payload (nl + 1) len in
          let rest =
            String.sub payload (nl + 2 + len)
              (String.length payload - nl - 2 - len)
          in
          let canonical = ref [] and counters = ref [] in
          let ok = ref true in
          List.iter
            (fun line ->
              if line <> "" then
                match String.split_on_char ' ' line with
                | [ "C"; s; l ] -> canonical := (s, l) :: !canonical
                | [ "K"; k; v ] -> (
                    match int_of_string_opt v with
                    | Some v -> counters := (k, v) :: !counters
                    | None -> ok := false)
                | _ -> ok := false)
            (String.split_on_char '\n' rest);
          if not !ok then None
          else
            Some
              {
                e_races_json = races;
                e_canonical = List.rev !canonical;
                e_counters = List.rev !counters;
              })

let save t path =
  let w = J.create path in
  Fun.protect
    ~finally:(fun () -> J.close w)
    (fun () ->
      J.add w { J.tag = "cache"; fields = [ schema ]; payload = None };
      locked t (fun () ->
          Trace.Vec.iter
            (fun (key, e) ->
              match String.split_on_char ':' key with
              | [ trace_fp; config_fp ] ->
                  J.add w
                    {
                      J.tag = "entry";
                      fields = [ trace_fp; config_fp ];
                      payload = Some (frame e);
                    }
              | _ -> ())
            t.rows))

(* Tolerant, like every loader here: a damaged tail (or a record whose
   payload does not unframe) costs those entries, never the load. *)
let load_into t path =
  if not (Sys.file_exists path) then 0
  else begin
    let loaded = J.load path in
    match loaded.J.l_records with
    | { J.tag = "cache"; fields = s :: _; _ } :: records when s = schema ->
        List.fold_left
          (fun n (r : J.record) ->
            match (r.J.tag, r.J.fields, r.J.payload) with
            | "entry", [ trace_fp; config_fp ], Some payload -> (
                match unframe payload with
                | Some e ->
                    add t ~trace_fp ~config_fp e;
                    n + 1
                | None -> n)
            | _ -> n)
          0 records
    | _ -> 0
  end

let load path =
  let t = create () in
  ignore (load_into t path);
  t
