(** Fingerprint-keyed analysis result cache.

    Stage 2+3 output is a pure function of (trace bytes, analysis
    feature flags), so sweeps that revisit a trace — fingerprint-twin
    schedules in exploration, identical crash prefixes in a crash sweep,
    repeated batch declarations — can skip the analysis entirely. The
    cache maps [(Trace.Trace_io.fingerprint, config_fingerprint)] to the
    canonical outputs of one complete run: the verbatim
    {!Report.to_json} bytes (what batch merging embeds, so a hit keeps
    merged reports byte-identical), the {!Report.canonical} pair set
    (what the stability oracle and ground-truth attribution compare) and
    the deterministic pipeline counter delta.

    Only {e complete} results may be added: a truncated report reflects
    the run's budgets, not the trace. Correspondingly [jobs] and the
    stage deadlines are excluded from {!config_fingerprint} — any jobs
    value is bit-identical, and deadlines only shape truncated runs. One
    caveat follows: a hit always substitutes the complete result, so a
    run whose deadlines {e would} have truncated reports clean on a warm
    cache (documented in README "Performance").

    All operations are mutex-protected — sweeps consult the cache from
    worker domains. Hits/misses/stored bytes are mirrored into
    {!Obs.Registry.global} ([cache.hits]/[cache.misses]/[cache.bytes])
    with [cache.hit]/[cache.miss]/[cache.store] timeline instants;
    beware that under job-level concurrency the global counts are
    schedule-dependent (two workers can race to analyse the same new
    fingerprint), which is why they live in manifests and gauges, never
    in byte-compared counter lists. *)

type entry = {
  e_races_json : string;  (** Verbatim {!Report.to_json} bytes. *)
  e_canonical : (string * string) list;  (** {!Report.canonical}. *)
  e_counters : (string * int) list;
      (** The run's deterministic pipeline counter delta. *)
}

type t

val create : unit -> t

val config_fingerprint : Pipeline.config -> string
(** FNV of the semantic analysis knobs (irh, effective lockset,
    timestamps, vector clocks, eADR, event budget) — [jobs] and
    deadlines excluded, see above. 16 hex digits. *)

val find : t -> trace_fp:string -> config_fp:string -> entry option
(** One locked probe; bumps hit/miss accounting (instance and global). *)

val add : t -> trace_fp:string -> config_fp:string -> entry -> unit
(** Insert unless present (entries for one key are deterministic, so
    first wins). Callers must only add complete (untruncated) results. *)

val length : t -> int

val clear : t -> unit
(** Drop every entry, keeping capacity (per-sweep reuse) and the
    hit/miss totals. *)

val stats : t -> (string * int) list
(** [cache.bytes]/[cache.entries]/[cache.hits]/[cache.misses], sorted. *)

val save : t -> string -> unit
(** Persist every entry as a {!Trace.Journal} ([hawkset.result_cache/1]:
    one checksummed record per entry, races JSON as the payload). *)

val load : string -> t
(** Load a journal written by {!save}. Tolerant: a missing file is an
    empty cache; a damaged tail or malformed entry costs those entries
    only. *)

val load_into : t -> string -> int
(** Merge a saved journal into an existing cache; returns the number of
    entries read. *)
