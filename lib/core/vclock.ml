type t = int array
(* Canonical form: no trailing zeros. *)

let zero = [||]

let canonical a =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do
    decr n
  done;
  if !n = Array.length a then a else Array.sub a 0 !n

let get t i = if i < Array.length t then t.(i) else 0

let tick t i =
  let n = max (Array.length t) (i + 1) in
  let out = Array.make n 0 in
  Array.blit t 0 out 0 (Array.length t);
  out.(i) <- out.(i) + 1;
  out

let merge a b =
  let n = max (Array.length a) (Array.length b) in
  canonical (Array.init n (fun i -> max (get a i) (get b i)))

let leq a b =
  let n = max (Array.length a) (Array.length b) in
  let rec go i = i >= n || (get a i <= get b i && go (i + 1)) in
  go 0

let concurrent a b = (not (leq a b)) && not (leq b a)

let equal a b =
  Array.length a = Array.length b
  &&
  let rec go i = i >= Array.length a || (a.(i) = b.(i) && go (i + 1)) in
  go 0

let hash t = Array.fold_left (fun acc c -> (acc * 31) + c) 7 t

let to_list = Array.to_list

let pp ppf t =
  Format.fprintf ppf "(%a)"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
       Format.pp_print_int)
    (Array.to_list t)
