(** Vector clocks for the inter-thread happens-before analysis (§3.1.2).

    One logical counter per thread. The runtime trace orders operations
    through thread creation and joining; the collector maintains each
    thread's clock and stamps PM accesses with it. Two operations are
    concurrent when their clocks are incomparable — only such pairs reach
    the lockset analysis, which removes the Figure 3 class of false
    positives.

    Clocks are immutable and canonical (no trailing zeros), so they can be
    interned and compared by id. *)

type t

val zero : t

val get : t -> int -> int
(** [get v i] is thread [i]'s counter (0 when beyond the clock's width). *)

val tick : t -> int -> t
(** [tick v i] increments thread [i]'s counter. *)

val merge : t -> t -> t
(** Pointwise maximum — the join performed by thread join. *)

val leq : t -> t -> bool
(** Pointwise [<=]: [leq a b] means the operation stamped [a]
    happened-before (or equals) the one stamped [b]. *)

val concurrent : t -> t -> bool
(** Incomparable under {!leq}: there are indexes [i], [j] with
    [a.(i) < b.(i)] and [a.(j) > b.(j)] — the paper's concurrency test. *)

val equal : t -> t -> bool
val hash : t -> int

val to_list : t -> int list
(** Per-thread counters in thread order (canonical: no trailing zeros) —
    how report witnesses serialize the clocks of a racing pair. *)

val pp : Format.formatter -> t -> unit
