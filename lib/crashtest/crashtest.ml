(* Crash-sweep fault injection: run an application workload, cut the
   machine at enumerated crash points, recover each worst-case persistent
   image and compare what survived against what the application
   acknowledged. See the .mli for the model. *)

module S = Machine.Sched

(* Sweep observability. All counts are exact functions of (app, config):
   the machine is deterministic and verification walks acked keys in
   sorted order. *)
let obs_points = Obs.Registry.counter "crashtest.points"
let obs_completed = Obs.Registry.counter "crashtest.points_completed"
let obs_clean = Obs.Registry.counter "crashtest.clean_recoveries"
let obs_damaged = Obs.Registry.counter "crashtest.damaged_recoveries"
let obs_raised = Obs.Registry.counter "crashtest.recovery_failures"
let obs_manifested = Obs.Registry.counter "crashtest.bugs_manifested"

type outcome =
  | Clean
  | Damaged of string list
  | Recovery_raised of string

type crash_spec = [ `No | `After_events of int | `After_fences of int ]

type execution = {
  ex_report : S.report;
  ex_acked : int;
  ex_at_risk_bytes : int;
  ex_verify : budget:int -> outcome;
}

type runner = {
  r_name : string;
  r_bugs : Pmapps.Ground_truth.bug list;
  r_expect_clean : bool;
  r_exec : seed:int -> ops:int -> threads:int -> crash:crash_spec -> execution;
}

let heap_size = 16 * 1024 * 1024
let value_of key = Int64.of_int ((key * 1000) + 7)

let split_crash = function
  | `No -> (None, None)
  | `After_events n -> (Some n, None)
  | `After_fences n -> (None, Some n)

(* ---- generic KV runner ----

   Workload: [threads] workers insert disjoint ascending keys
   (key = 1 + i*threads + ti, so every round interleaves all workers in
   the key space) and acknowledge each insert the moment it returns —
   the point at which a store would answer the client. Every 4th
   operation also issues a lock-free [get] of a peer thread's key, the
   cross-thread read the lockset analysis pairs against the stores.

   Verification recovers the crash image and re-[get]s every
   acknowledged key, in sorted order (the ack table is a hash table; the
   sort keeps damage lists deterministic). [consistency] lets an app add
   structural checks (TurboHash's bitmap-vs-entry scan). [key_map]
   renames the workload's logical keys (injectively) so an app can be
   driven into the regime its bug needs — see [turbo_key] below. *)
let kv_exec (type a) (module App : Pmapps.App_intf.KV with type t = a)
    ~(anchor : a -> int) ~(reopen : S.ctx -> int -> a)
    ?(consistency : (a -> S.ctx -> string list) option)
    ?(key_map : int -> int = Fun.id) () ~seed ~ops ~threads ~crash =
  let crash_after_events, crash_after_fences = split_crash crash in
  let heap = Pmem.Heap.create ~size:heap_size () in
  let anchor_addr = ref 0 in
  let acked : (int, int64) Hashtbl.t = Hashtbl.create 256 in
  let per_thread = max 1 (ops / max 1 threads) in
  let report =
    S.run ~seed ?crash_after_events ?crash_after_fences
      ~sync_config:App.sync_config ~heap (fun ctx ->
        let t = App.create ctx in
        anchor_addr := anchor t;
        let worker ti =
          S.spawn ctx (fun ctx ->
              for i = 0 to per_thread - 1 do
                let key = key_map (1 + (i * threads) + ti) in
                let value = value_of key in
                App.insert t ctx ~key ~value;
                Hashtbl.replace acked key value;
                if i land 3 = 3 then
                  ignore
                    (App.get t ctx
                       ~key:(key_map (1 + (i * threads) + ((ti + 1) mod threads))))
              done)
        in
        let workers = List.init threads worker in
        List.iter (S.join ctx) workers)
  in
  let at_risk = Pmem.Heap.unpersisted_bytes heap in
  let image = Pmem.Heap.crash_image heap in
  let anchor_addr = !anchor_addr in
  let acked_sorted =
    List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) acked [])
  in
  let verify ~budget =
    let post = Pmem.Heap.of_image image in
    let damage = ref [] in
    match
      S.run ~crash_after_events:budget ~sync_config:App.sync_config ~heap:post
        (fun ctx ->
          let t = reopen ctx anchor_addr in
          (match consistency with
          | Some f -> damage := List.rev (f t ctx)
          | None -> ());
          List.iter
            (fun (k, v) ->
              match App.get t ctx ~key:k with
              | Some v' when Int64.equal v v' -> ()
              | Some v' ->
                  damage :=
                    Printf.sprintf
                      "key %d: acknowledged value %Ld survived as %Ld" k v v'
                    :: !damage
              | None ->
                  damage :=
                    Printf.sprintf "key %d: acknowledged insert lost" k
                    :: !damage)
            acked_sorted)
    with
    | r ->
        if r.S.outcome = S.Crashed then
          Recovery_raised
            (Printf.sprintf "recovery exceeded its %d-event budget" budget)
        else if !damage = [] then Clean
        else Damaged (List.rev !damage)
    | exception e -> Recovery_raised (Printexc.to_string e)
  in
  {
    ex_report = report;
    ex_acked = List.length acked_sorted;
    ex_at_risk_bytes = at_risk;
    ex_verify = verify;
  }

(* TurboHash's 8192 buckets see ~0.05 load under a few hundred sequential
   keys, so no bucket ever fills past its first cache line and bug #3 (the
   unflushed slots 3-6) cannot bite — the paper's "manifested only in the
   largest workload". Instead of running a huge workload per crash point,
   funnel the keys into the first 128 home buckets: the mean bucket load
   rises past 3 and the second line gets used. The table is indexed by
   logical key and strictly increasing, so the renaming is injective. *)
let turbo_keys =
  lazy
    (let want = 4096 and target = 128 in
     let keys = Array.make want 0 in
     let n = ref 0 and k = ref 0 in
     while !n < want do
       incr k;
       if Pmapps.Turbo_hash.bucket_of_key !k < target then begin
         keys.(!n) <- !k;
         incr n
       end
     done;
     keys)

let turbo_key lk =
  let keys = Lazy.force turbo_keys in
  if lk >= 0 && lk < Array.length keys then keys.(lk) else lk

(* Memcached-pmem exposes set/get rather than the KV signature; adapt the
   subset the sweep uses. *)
module Mc_kv = struct
  let name = Pmapps.Memcached.name

  type t = Pmapps.Memcached.t

  let create = Pmapps.Memcached.create

  let insert t ctx ~key ~value = Pmapps.Memcached.set t ctx ~key ~value
  let update = insert
  let get = Pmapps.Memcached.get
  let delete = Pmapps.Memcached.delete
  let bugs = Pmapps.Memcached.bugs
  let benign = Pmapps.Memcached.benign
  let sync_config = Pmapps.Memcached.sync_config
end

(* ---- MadFS runner ----

   Block writes instead of KV pairs; a write is acknowledged only after
   [fsync] returns — MadFS's contract makes no promise before that.
   Verification replays the log and re-reads every acknowledged block. *)
let madfs_exec ~seed ~ops ~threads ~crash =
  let crash_after_events, crash_after_fences = split_crash crash in
  let heap = Pmem.Heap.create ~size:heap_size () in
  let blocks = 64 in
  let base = ref 0 in
  let acked : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let per_thread = max 1 (ops / max 1 threads) in
  let block_of i ti = (1 + (i * threads) + ti) mod blocks in
  let pattern b i = Bytes.make 8 (Char.chr (((b * 31) + i) land 0xff)) in
  let report =
    S.run ~seed ?crash_after_events ?crash_after_fences ~heap (fun ctx ->
        let f = Pmapps.Madfs.create ctx ~blocks in
        base := Pmapps.Madfs.base_addr f;
        let worker ti =
          S.spawn ctx (fun ctx ->
              for i = 0 to per_thread - 1 do
                let b = block_of i ti in
                Pmapps.Madfs.write f ctx
                  ~offset:(b * Pmapps.Madfs.block_size)
                  ~data:(pattern b i);
                Pmapps.Madfs.fsync f ctx;
                Hashtbl.replace acked b ((b * 31) + i)
              done)
        in
        let workers = List.init threads worker in
        List.iter (S.join ctx) workers)
  in
  let at_risk = Pmem.Heap.unpersisted_bytes heap in
  let image = Pmem.Heap.crash_image heap in
  let base = !base in
  let acked_sorted =
    List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) acked [])
  in
  let verify ~budget =
    let post = Pmem.Heap.of_image image in
    let damage = ref [] in
    match
      S.run ~crash_after_events:budget ~heap:post (fun ctx ->
          let f = Pmapps.Madfs.recover ctx ~base ~blocks in
          List.iter
            (fun (b, tag) ->
              let data =
                Pmapps.Madfs.read f ctx ~offset:(b * Pmapps.Madfs.block_size)
              in
              let expect = Char.chr (tag land 0xff) in
              if Bytes.length data < 8 || Bytes.get data 0 <> expect then
                damage :=
                  Printf.sprintf "block %d: fsync'd write lost" b :: !damage)
            acked_sorted)
    with
    | r ->
        if r.S.outcome = S.Crashed then
          Recovery_raised
            (Printf.sprintf "recovery exceeded its %d-event budget" budget)
        else if !damage = [] then Clean
        else Damaged (List.rev !damage)
    | exception e -> Recovery_raised (Printexc.to_string e)
  in
  {
    ex_report = report;
    ex_acked = List.length acked_sorted;
    ex_at_risk_bytes = at_risk;
    ex_verify = verify;
  }

(* Acked writes can survive a crash only through what the app persisted:
   the sweep needs a recovery entry point, which every app except Apex
   has. Apex is therefore analysed (run/analyze) but not swept. *)
let runners =
  [
    {
      r_name = "fast-fair";
      r_bugs = Pmapps.Fast_fair.bugs;
      r_expect_clean = false;
      r_exec =
        (fun ~seed ~ops ~threads ~crash ->
          kv_exec
            (module Pmapps.Fast_fair)
            ~anchor:Pmapps.Fast_fair.meta_addr
            ~reopen:(fun ctx a -> Pmapps.Fast_fair.recover ctx ~meta_addr:a)
            () ~seed ~ops ~threads ~crash);
    };
    {
      r_name = "turbo-hash";
      r_bugs = Pmapps.Turbo_hash.bugs;
      r_expect_clean = false;
      r_exec =
        (fun ~seed ~ops ~threads ~crash ->
          kv_exec
            (module Pmapps.Turbo_hash)
            ~anchor:Pmapps.Turbo_hash.table_addr
            ~reopen:(fun ctx a -> Pmapps.Turbo_hash.recover ctx ~table_addr:a)
            ~consistency:Pmapps.Turbo_hash.check_consistency
            ~key_map:turbo_key () ~seed ~ops ~threads ~crash);
    };
    {
      r_name = "p-clht";
      r_bugs = Pmapps.P_clht.bugs;
      r_expect_clean = false;
      r_exec =
        (fun ~seed ~ops ~threads ~crash ->
          kv_exec
            (module Pmapps.P_clht)
            ~anchor:Pmapps.P_clht.header_addr
            ~reopen:(fun ctx a -> Pmapps.P_clht.recover ctx ~header_addr:a)
            () ~seed ~ops ~threads ~crash);
    };
    {
      r_name = "p-masstree";
      r_bugs = Pmapps.P_masstree.bugs;
      r_expect_clean = false;
      r_exec =
        (fun ~seed ~ops ~threads ~crash ->
          kv_exec
            (module Pmapps.P_masstree)
            ~anchor:Pmapps.P_masstree.meta_addr
            ~reopen:(fun ctx a -> Pmapps.P_masstree.recover ctx ~meta_addr:a)
            () ~seed ~ops ~threads ~crash);
    };
    {
      r_name = "p-art";
      r_bugs = Pmapps.P_art.bugs;
      r_expect_clean = false;
      r_exec =
        (fun ~seed ~ops ~threads ~crash ->
          kv_exec
            (module Pmapps.P_art)
            ~anchor:Pmapps.P_art.meta_addr
            ~reopen:(fun ctx a -> Pmapps.P_art.recover_at ctx ~meta_addr:a)
            () ~seed ~ops ~threads ~crash);
    };
    {
      r_name = "wipe";
      r_bugs = Pmapps.Wipe.bugs;
      r_expect_clean = false;
      r_exec =
        (fun ~seed ~ops ~threads ~crash ->
          kv_exec
            (module Pmapps.Wipe)
            ~anchor:Pmapps.Wipe.root_addr
            ~reopen:(fun ctx a -> Pmapps.Wipe.recover ctx ~root_addr:a)
            () ~seed ~ops ~threads ~crash);
    };
    {
      r_name = "memcached-pmem";
      r_bugs = Pmapps.Memcached.bugs;
      r_expect_clean = false;
      r_exec =
        (fun ~seed ~ops ~threads ~crash ->
          kv_exec
            (module Mc_kv)
            ~anchor:Pmapps.Memcached.base_addr
            ~reopen:(fun ctx a -> Pmapps.Memcached.recover ctx ~base:a)
            () ~seed ~ops ~threads ~crash);
    };
    { r_name = "madfs"; r_bugs = []; r_expect_clean = true;
      r_exec = madfs_exec };
    {
      r_name = "pmlog";
      r_bugs = Pmapps.Pmlog.bugs;
      r_expect_clean = true;
      r_exec =
        (fun ~seed ~ops ~threads ~crash ->
          kv_exec
            (module Pmapps.Pmlog)
            ~anchor:Pmapps.Pmlog.base_addr
            ~reopen:(fun ctx a -> Pmapps.Pmlog.recover ctx ~base:a)
            () ~seed ~ops ~threads ~crash);
    };
  ]

let canonical name =
  String.lowercase_ascii (String.map (fun c -> if c = '_' then '-' else c) name)

let runner_for name =
  let name = canonical name in
  List.find_opt (fun r -> r.r_name = name) runners

(* ---- the sweep ---- *)

type config = {
  c_seed : int;
  c_ops : int;
  c_threads : int;
  c_stride : int;
  c_max_points : int;
  c_fence_points : bool;
  c_attribute : bool;
  c_verify_budget : int;
  c_dump_dir : string option;
}

let default_config =
  {
    c_seed = 42;
    c_ops = 400;
    c_threads = 4;
    c_stride = 500;
    c_max_points = 40;
    c_fence_points = true;
    c_attribute = true;
    c_verify_budget = 200_000;
    c_dump_dir = None;
  }

type point = {
  pt_crash : crash_spec;
  pt_events : int;
  pt_acked : int;
  pt_at_risk : int;
  pt_outcome : outcome option;
  pt_bugs : int list;
  pt_fixture : string option;
}

type sweep = {
  sw_app : string;
  sw_config : config;
  sw_full_events : int;
  sw_points : point list;
  sw_completed : int;
  sw_clean : int;
  sw_damaged : int;
  sw_raised : int;
  sw_manifested : int list;
}

let pp_crash ppf = function
  | `No -> Format.fprintf ppf "none"
  | `After_events n -> Format.fprintf ppf "event %d" n
  | `After_fences n -> Format.fprintf ppf "fence %d" n

(* Evenly subsample [l] down to [n] elements, keeping endpoints spread. *)
let subsample n l =
  let len = List.length l in
  if len <= n || n <= 0 then l
  else
    List.filteri (fun i _ -> i * n / len < ((i + 1) * n / len)) l

(* Ground-truth ids reported by the pipeline on the crashed prefix: the
   analysis predicts from the events leading up to this crash point, so a
   match means the damage seen by recovery is the bug the detector
   reports — manifested, not just flagged.

   Attribution matches on (store location, load location) pairs — exactly
   {!Hawkset.Report.canonical} — so identical crash prefixes (two points
   that cut the trace at the same persistent state, e.g. a fence point
   and a stride point landing on the same boundary) are deduplicated
   through the sweep's result cache instead of re-running the pipeline. *)
let attr_config_fp =
  Hawkset.Result_cache.config_fingerprint Hawkset.Pipeline.default

let ids_of_canonical bugs canonical =
  List.filter_map
    (fun (b : Pmapps.Ground_truth.bug) ->
      if
        List.exists
          (fun (s, l) ->
            List.mem s b.Pmapps.Ground_truth.gt_store_locs
            && List.mem l b.Pmapps.Ground_truth.gt_load_locs)
          canonical
      then Some b.Pmapps.Ground_truth.gt_id
      else None)
    bugs

let attribute ?cache runner (report : S.report) =
  match runner.r_bugs with
  | [] -> []
  | bugs -> (
      let analyse () =
        let r = Hawkset.Pipeline.run report.S.trace in
        let canonical = Hawkset.Report.canonical r.Hawkset.Pipeline.races in
        (match cache with
        | Some c when r.Hawkset.Pipeline.truncated = [] ->
            Hawkset.Result_cache.add c
              ~trace_fp:(Trace.Trace_io.fingerprint report.S.trace)
              ~config_fp:attr_config_fp
              {
                Hawkset.Result_cache.e_races_json =
                  Hawkset.Report.to_json r.Hawkset.Pipeline.races;
                e_canonical = canonical;
                e_counters = r.Hawkset.Pipeline.counters;
              }
        | Some _ | None -> ());
        canonical
      in
      match cache with
      | None -> ids_of_canonical bugs (analyse ())
      | Some c -> (
          match
            Hawkset.Result_cache.find c
              ~trace_fp:(Trace.Trace_io.fingerprint report.S.trace)
              ~config_fp:attr_config_fp
          with
          | Some e -> ids_of_canonical bugs e.Hawkset.Result_cache.e_canonical
          | None -> ids_of_canonical bugs (analyse ())))

(* Timeline events: the sweep as one duration bracket (arg = point count)
   with an instant per crash point (arg = point index). Point specs are a
   pure function of the pilot run, so the sequence is seed-deterministic. *)
let tl_sweep = Obs.Timeline.name "crash_sweep"
let tl_point = Obs.Timeline.name "crash_sweep.point"

let run_sweep ?(config = default_config) runner =
  Obs.Registry.with_span "crash_sweep" @@ fun () ->
  let exec crash =
    runner.r_exec ~seed:config.c_seed ~ops:config.c_ops
      ~threads:config.c_threads ~crash
  in
  (* Pilot run: the uncut execution fixes the sweep's coordinate system —
     total events and the fence count. *)
  let pilot = exec `No in
  let full_events = pilot.ex_report.S.event_count in
  let stats = Trace.Tracebuf.stats pilot.ex_report.S.trace in
  let fence_specs =
    if config.c_fence_points then
      List.init stats.Trace.Tracebuf.fences (fun i -> `After_fences (i + 1))
    else []
  in
  let stride = max 1 config.c_stride in
  let stride_specs =
    List.init (max 0 ((full_events - 1) / stride)) (fun i ->
        `After_events ((i + 1) * stride))
  in
  let specs =
    subsample config.c_max_points fence_specs
    @ subsample config.c_max_points stride_specs
  in
  let manifested = Hashtbl.create 8 in
  (* Per-sweep result cache for attribution: fence points and stride
     points frequently cut the trace at the same prefix, and the sweep is
     sequential, so identical-fingerprint prefixes analyse once. *)
  let attr_cache = Hawkset.Result_cache.create () in
  (* Damaged-point traces become golden fixtures: the crashed prefix,
     saved with the checksum trailer so replay (`hawkset analyze`, the
     salvage tests) can verify integrity. Capped per sweep — the first
     few damaged points carry all the evidence. *)
  let dumped = ref 0 in
  let max_dumps = 2 in
  let dump_point spec (report : S.report) =
    match config.c_dump_dir with
    | Some dir when !dumped < max_dumps ->
        incr dumped;
        if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
        let tag =
          match spec with
          | `After_events n -> Printf.sprintf "event%d" n
          | `After_fences n -> Printf.sprintf "fence%d" n
          | `No -> "full"
        in
        let path =
          Filename.concat dir
            (Printf.sprintf "crash-%s-%s.trace" runner.r_name tag)
        in
        Trace.Trace_io.save path report.S.trace;
        Some path
    | Some _ | None -> None
  in
  Obs.Timeline.begin_ tl_sweep ~arg:(List.length specs);
  let points =
    List.mapi
      (fun point_idx spec ->
        Obs.Timeline.instant tl_point ~arg:point_idx;
        Obs.Metric.incr obs_points;
        let ex = exec spec in
        if ex.ex_report.S.outcome = S.Completed then begin
          (* The run finished before the crash point (e.g. a fence count
             reached only transiently): nothing to verify. *)
          Obs.Metric.incr obs_completed;
          {
            pt_crash = spec;
            pt_events = ex.ex_report.S.event_count;
            pt_acked = ex.ex_acked;
            pt_at_risk = ex.ex_at_risk_bytes;
            pt_outcome = None;
            pt_bugs = [];
            pt_fixture = None;
          }
        end
        else begin
          let outcome = ex.ex_verify ~budget:config.c_verify_budget in
          let fixture =
            match outcome with
            | Damaged _ | Recovery_raised _ -> dump_point spec ex.ex_report
            | Clean -> None
          in
          let bugs =
            match outcome with
            | Clean ->
                Obs.Metric.incr obs_clean;
                []
            | Damaged _ | Recovery_raised _ ->
                (match outcome with
                | Damaged _ -> Obs.Metric.incr obs_damaged
                | _ -> Obs.Metric.incr obs_raised);
                if config.c_attribute then
                  attribute ~cache:attr_cache runner ex.ex_report
                else []
          in
          List.iter
            (fun id ->
              if not (Hashtbl.mem manifested id) then begin
                Hashtbl.add manifested id ();
                Obs.Metric.incr obs_manifested
              end)
            bugs;
          {
            pt_crash = spec;
            pt_events = ex.ex_report.S.event_count;
            pt_acked = ex.ex_acked;
            pt_at_risk = ex.ex_at_risk_bytes;
            pt_outcome = Some outcome;
            pt_bugs = bugs;
            pt_fixture = fixture;
          }
        end)
      specs
  in
  Obs.Timeline.end_ tl_sweep ~arg:(List.length specs);
  let count f = List.length (List.filter f points) in
  let sweep =
    {
      sw_app = runner.r_name;
      sw_config = config;
      sw_full_events = full_events;
      sw_points = points;
      sw_completed = count (fun p -> p.pt_outcome = None);
      sw_clean = count (fun p -> p.pt_outcome = Some Clean);
      sw_damaged =
        count (fun p ->
            match p.pt_outcome with Some (Damaged _) -> true | _ -> false);
      sw_raised =
        count (fun p ->
            match p.pt_outcome with
            | Some (Recovery_raised _) -> true
            | _ -> false);
      sw_manifested =
        List.sort compare (Hashtbl.fold (fun id () acc -> id :: acc) manifested []);
    }
  in
  Obs.Logger.info ~section:"crashtest" (fun () ->
      Printf.sprintf
        "%s: %d points (%d clean, %d damaged, %d raised, %d completed), \
         manifested [%s]"
        sweep.sw_app (List.length points) sweep.sw_clean sweep.sw_damaged
        sweep.sw_raised sweep.sw_completed
        (String.concat ";" (List.map string_of_int sweep.sw_manifested)));
  sweep
