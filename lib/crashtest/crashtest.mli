(** Crash-sweep fault injection.

    HawkSet {e predicts} crash-manifestable races from one execution;
    this subsystem shows the damage is real, systematically. For a given
    (application, workload, seed) it enumerates crash points — after
    every fence/persist boundary and at a configurable stride of
    scheduler events — cuts the deterministic run at each point
    ({!Machine.Sched.run}'s [crash_after_events] / [crash_after_fences]),
    takes the worst-case persistent image ({!Pmem.Heap.crash_image}),
    runs the application's own recovery on it and classifies the result:

    - {b clean recovery}: every operation acknowledged before the crash
      survived;
    - {b durable damage}: recovery succeeded but acknowledged data is
      missing or wrong;
    - {b recovery raised}: recovery crashed, deadlocked, or exceeded its
      event budget on the corrupted image.

    Damaged and failed points are cross-referenced against the
    application's {!Pmapps.Ground_truth} by running the HawkSet pipeline
    on the crashed prefix trace: a ground-truth bug whose site pair is
    reported on a prefix whose image recovery found damaged is
    {e manifested} — the detector's prediction and the injected fault
    agree on the same execution.

    Every application of the registry has a runner except Apex, which
    exposes no recovery entry point and is analysed but not swept.
    Sweeps publish [crashtest.*] counters to {!Obs.Registry.global}. *)

(** Classification of one recovered crash image. *)
type outcome =
  | Clean
  | Damaged of string list  (** One message per lost/corrupted datum. *)
  | Recovery_raised of string

type crash_spec = [ `No | `After_events of int | `After_fences of int ]

(** One workload execution, cut (or not) at a crash point. Verification
    is a closure so the sweep can skip it for runs that completed. *)
type execution = {
  ex_report : Machine.Sched.report;
  ex_acked : int;  (** Operations acknowledged before the cut. *)
  ex_at_risk_bytes : int;
      (** {!Pmem.Heap.unpersisted_bytes} at the cut: the data volume a
          crash at this instant puts at risk. *)
  ex_verify : budget:int -> outcome;
      (** Recover the crash image and re-check every acknowledged
          operation. [budget] bounds the recovery run's events so a
          corrupted structure (dangling pointers, cyclic chains) cannot
          hang the sweep — exceeding it classifies as
          {!Recovery_raised}. *)
}

type runner = {
  r_name : string;  (** Canonical registry name. *)
  r_bugs : Pmapps.Ground_truth.bug list;
  r_expect_clean : bool;
      (** Control applications (pmlog, MadFS under its fsync contract):
          any damaged point is a harness bug, not a finding. *)
  r_exec : seed:int -> ops:int -> threads:int -> crash:crash_spec -> execution;
}

val runners : runner list
(** Registry order; Apex excluded (no recovery API). *)

val runner_for : string -> runner option
(** Case-insensitive, [_] accepted for [-]. *)

type config = {
  c_seed : int;
  c_ops : int;  (** Total main-phase operations across all threads. *)
  c_threads : int;
  c_stride : int;  (** Event-stride between scheduler-event crash points. *)
  c_max_points : int;
      (** Cap per point family (fence points and stride points are each
          evenly subsampled to this many). *)
  c_fence_points : bool;  (** Crash after every fence/persist boundary. *)
  c_attribute : bool;
      (** Analyse damaged prefixes with the pipeline and cross-reference
          {!Pmapps.Ground_truth} (the manifested-bug column). Damaged
          points whose crashed prefix has the same trace fingerprint
          (fence and stride points often cut at the same boundary) share
          one analysis through a per-sweep {!Hawkset.Result_cache}. *)
  c_verify_budget : int;  (** Event budget for each recovery run. *)
  c_dump_dir : string option;
      (** Dump the crashed prefix trace of damaged/failed points (capped
          at two per sweep) into this directory as checksummed [.trace]
          fixtures, replayable with the offline analyser. [None] (the
          default): no dumps. *)
}

val default_config : config
(** seed 42, 400 ops on 4 threads, stride 500, 40 points per family,
    fence points and attribution on, 200k-event recovery budget. *)

type point = {
  pt_crash : crash_spec;
  pt_events : int;  (** Events actually traced before the cut. *)
  pt_acked : int;
  pt_at_risk : int;
  pt_outcome : outcome option;  (** [None]: run completed, nothing to verify. *)
  pt_bugs : int list;  (** Ground-truth ids manifested at this point. *)
  pt_fixture : string option;
      (** Where this point's prefix trace was dumped, if it was. *)
}

type sweep = {
  sw_app : string;
  sw_config : config;
  sw_full_events : int;  (** Events of the uncut pilot run. *)
  sw_points : point list;
  sw_completed : int;
  sw_clean : int;
  sw_damaged : int;
  sw_raised : int;
  sw_manifested : int list;
      (** Sorted union of {!point.pt_bugs} — every ground-truth bug that
          both damaged a recovery and was reported on that prefix. *)
}

val run_sweep : ?config:config -> runner -> sweep
(** Pilot-runs the workload uncut to fix the coordinate system (total
    events, fence count), then executes and classifies every enumerated
    crash point. Deterministic for a fixed (runner, config). *)

val pp_crash : Format.formatter -> crash_spec -> unit
