(* Schedule exploration. See the .mli for the oracle being tested.

   Parallelism: schedule [i]'s result is a pure function of
   (entry, config, i) — the machine, collector and analysis share no
   mutable state across runs except the Obs registry, whose counter cells
   all exist before any worker starts (module-initialization time), so
   concurrent bumps are memory-safe lost-update races that never reach
   the results. Workers return compact summaries (fingerprints and
   location-pair sets), never traces; a divergent schedule is re-run
   deterministically when its trace needs dumping. Workers must not call
   {!Hawkset.Pipeline.run} (span accounting is single-domain) nor
   [Par_analysis.analyse ~jobs>1] (a nested {!Hawkset.Domain_pool.map}
   self-deadlocks); they run the collector and the sequential analysis
   directly. *)

module S = Machine.Sched
module R = Pmapps.Registry

type policy_kind = Random | Round_robin | Delay | Pct | All

let policy_kind_of_string = function
  | "random" -> Ok Random
  | "round-robin" | "round_robin" -> Ok Round_robin
  | "delay" -> Ok Delay
  | "pct" -> Ok Pct
  | "all" -> Ok All
  | s ->
      Error
        (Printf.sprintf
           "unknown policy %S (expected random|round-robin|delay|pct|all)" s)

let policy_kind_to_string = function
  | Random -> "random"
  | Round_robin -> "round-robin"
  | Delay -> "delay"
  | Pct -> "pct"
  | All -> "all"

type config = {
  schedules : int;
  policy : policy_kind;
  depth : int;
  jobs : int;
  seed : int;
  ops : int;
  dump_dir : string option;
  cache : Hawkset.Result_cache.t option;
}

let default_config =
  {
    schedules = 64;
    policy = All;
    depth = 3;
    jobs = 1;
    seed = 42;
    ops = 400;
    dump_dir = None;
    cache = None;
  }

type schedule_result = {
  s_index : int;
  s_policy : string;
  s_sched_seed : int;
  s_events : int;
  s_fingerprint : string;
  s_canonical : (string * string) list;
  s_observed : (string * string) list;
  s_racy : (string * string) list;
  s_error : string option;
}

type divergence = {
  d_index : int;
  d_missing : (string * string) list;
  d_extra : (string * string) list;
  d_base_fixture : string option;
  d_fixture : string option;
}

type bug_hits = {
  b_id : int;
  b_desc : string;
  b_hawkset : int;
  b_pmrace : int;
}

type t = {
  x_app : string;
  x_config : config;
  x_results : schedule_result list;
  x_baseline : (string * string) list;
  x_divergences : divergence list;
  x_errors : int;
  x_distinct_traces : int;
  x_report_sets : int;
  x_racing_pairs : int;
  x_observed_pairs : int;
  x_bug_hits : bug_hits list;
  x_seconds : float;
}

(* Coverage counters, registered at module initialization so worker-side
   registry lookups never allocate a table entry. *)
let obs_schedules = Obs.Registry.counter "explore.schedules"
let obs_errors = Obs.Registry.counter "explore.schedule_errors"
let obs_divergences = Obs.Registry.counter "explore.divergences"
let obs_distinct = Obs.Registry.counter "explore.distinct_traces"
let obs_report_sets = Obs.Registry.counter "explore.report_sets"
let obs_pairs = Obs.Registry.counter "explore.racing_pairs"
let obs_observed = Obs.Registry.counter "explore.observed_pairs"

let delay_policy = S.Delay_injection { probability = 0.05; duration = 40 }

(* Schedule [i]'s policy. [All] spends schedule 0 on the one
   deterministic round-robin interleaving and cycles the rest through
   the three randomized families, so every family contributes whatever
   the sweep size. *)
let policy_of config i =
  match config.policy with
  | Random -> S.Random_interleave
  | Round_robin -> S.Round_robin
  | Delay -> delay_policy
  | Pct -> S.Pct { depth = config.depth }
  | All ->
      if i = 0 then S.Round_robin
      else (
        match (i - 1) mod 3 with
        | 0 -> S.Random_interleave
        | 1 -> S.Pct { depth = config.depth }
        | _ -> delay_policy)

let policy_name config i =
  match policy_of config i with
  | S.Random_interleave -> "random"
  | S.Round_robin -> "round-robin"
  | S.Delay_injection { probability; duration } ->
      Printf.sprintf "delay(p=%g,d=%d)" probability duration
  | S.Targeted_delay _ -> "targeted-delay"
  | S.Scripted _ -> "scripted"
  | S.Pct { depth } -> Printf.sprintf "pct(depth=%d)" depth

(* The scheduler seed of schedule [i]: any deterministic injection of
   the index works; the prime stride just decorrelates neighbours. *)
let sched_seed_of config i = config.seed + 0x10000 + (7919 * i)

let pairs_of obs =
  List.sort_uniq compare
    (List.map
       (fun (o : S.observation) ->
         ( Trace.Site.location o.S.obs_store_site,
           Trace.Site.location o.S.obs_load_site ))
       obs)

(* Everything observe mode saw — the PMRace baseline's signal. *)
let observed_pairs (report : S.report) = pairs_of report.S.observations

(* Only the lock-free subset is in scope for the lockset analysis
   (Definition 1), so only these feed the dominance check. *)
let racy_pairs (report : S.report) =
  pairs_of (List.filter (fun (o : S.observation) -> o.S.obs_racy)
      report.S.observations)

(* The analysis below runs the default feature set (collector + the
   sequential kernel), so cached entries share a config fingerprint with
   any other default-config consumer of the same trace. *)
let analysis_config_fp =
  Hawkset.Result_cache.config_fingerprint Hawkset.Pipeline.default

let run_schedule (entry : R.entry) config ~ops i =
  let sched_seed = sched_seed_of config i in
  let name = policy_name config i in
  match
    entry.R.run ~seed:config.seed ~sched_seed ~policy:(policy_of config i)
      ~observe:true ~ops ()
  with
  | report ->
      let trace = report.S.trace in
      let fp = Trace.Trace_io.fingerprint trace in
      (* Stage 2+3 is a pure function of the trace (the determinism half
         of the oracle), so a fingerprint already in the cache skips the
         analysis entirely — previously every duplicate-trace schedule
         was re-analysed and deduplicated only afterwards ([rep_by_fp]).
         The cache is mutex-protected: workers consult it concurrently,
         and two workers racing on a brand-new fingerprint at worst
         both analyse it (first insert wins, entries are identical). *)
      let analyse () =
        let collected = Hawkset.Collector.collect trace in
        let outcome = Hawkset.Par_analysis.analyse ~jobs:1 collected in
        outcome.Hawkset.Analysis.report
      in
      let canonical =
        match config.cache with
        | None -> Hawkset.Report.canonical (analyse ())
        | Some c -> (
            match
              Hawkset.Result_cache.find c ~trace_fp:fp
                ~config_fp:analysis_config_fp
            with
            | Some e -> e.Hawkset.Result_cache.e_canonical
            | None ->
                let races = analyse () in
                let canonical = Hawkset.Report.canonical races in
                Hawkset.Result_cache.add c ~trace_fp:fp
                  ~config_fp:analysis_config_fp
                  {
                    Hawkset.Result_cache.e_races_json =
                      Hawkset.Report.to_json races;
                    e_canonical = canonical;
                    e_counters = [];
                  };
                canonical)
      in
      {
        s_index = i;
        s_policy = name;
        s_sched_seed = sched_seed;
        s_events = report.S.event_count;
        s_fingerprint = fp;
        s_canonical = canonical;
        s_observed = observed_pairs report;
        s_racy = racy_pairs report;
        s_error = None;
      }
  | exception e ->
      {
        s_index = i;
        s_policy = name;
        s_sched_seed = sched_seed;
        s_events = 0;
        s_fingerprint = "-";
        s_canonical = [];
        s_observed = [];
        s_racy = [];
        s_error = Some (Printexc.to_string e);
      }

(* Re-execute one schedule and save its (trailer-checksummed) trace —
   only used for divergence fixtures, so the extra run is rare. *)
let dump_schedule (entry : R.entry) config ~ops i path =
  match
    entry.R.run ~seed:config.seed ~sched_seed:(sched_seed_of config i)
      ~policy:(policy_of config i) ~observe:true ~ops ()
  with
  | report ->
      Trace.Trace_io.save path report.S.trace;
      Some path
  | exception _ -> None

let save_schedule ?(config = default_config) (entry : R.entry) ~index path =
  let ops = R.clamp_ops entry config.ops in
  dump_schedule entry config ~ops index path

let ensure_dir dir = if not (Sys.file_exists dir) then Sys.mkdir dir 0o755

let hits pairs ~stores ~loads =
  List.exists (fun (s, l) -> List.mem s stores && List.mem l loads) pairs

(* Cap on dumped divergent traces per app: the first pair is the golden
   fixture; a systematically unstable app would otherwise fill the disk
   with near-identical evidence. *)
let max_dumps = 2

let run ?(config = default_config) (entry : R.entry) =
  let t0 = Unix.gettimeofday () in
  let schedules = max 1 config.schedules in
  let ops = R.clamp_ops entry config.ops in
  let jobs = min (max 1 config.jobs) schedules in
  let results =
    if jobs = 1 then List.init schedules (run_schedule entry config ~ops)
    else begin
      (* Contiguous index chunks, one per worker; concatenating in chunk
         order restores schedule order, so the merged list is identical
         to the sequential one whatever [jobs] is. *)
      let chunk k =
        let lo = schedules * k / jobs and hi = schedules * (k + 1) / jobs in
        fun () ->
          List.init (hi - lo) (fun j -> run_schedule entry config ~ops (lo + j))
      in
      Hawkset.Domain_pool.map
        (Hawkset.Domain_pool.global ())
        (Array.init jobs chunk)
      |> Array.to_list
      |> List.concat_map (function Ok rows -> rows | Error e -> raise e)
    end
  in
  let ok = List.filter (fun r -> r.s_error = None) results in
  let errors = List.length results - List.length ok in
  (* The stability oracle (see the .mli). Raw report sets legitimately
     vary with dynamic coverage, so equality across schedules is not
     required. What is required, per schedule:
       - dominance: every directly-observed inconsistency (the PMRace
         signal) appears in the lockset report of that same trace —
         no interleaving teaches observation-based detection anything
         the one-trace analysis missed;
       - determinism: schedules with the same trace fingerprint report
         the same canonical set — the analysis itself is a pure
         function of the trace. *)
  let baseline =
    List.sort_uniq compare (List.concat_map (fun r -> r.s_canonical) ok)
  in
  (* Representative report per fingerprint: the first (lowest-index)
     schedule that produced that trace. *)
  let rep_by_fp = Hashtbl.create 64 in
  List.iter
    (fun r ->
      if not (Hashtbl.mem rep_by_fp r.s_fingerprint) then
        Hashtbl.add rep_by_fp r.s_fingerprint r)
    ok;
  let base_index = match ok with [] -> -1 | r :: _ -> r.s_index in
  (* Dump the reference trace (first schedule) lazily, once, on the
     first divergence. *)
  let base_fixture = ref None in
  let dumped = ref 0 in
  let divergences =
    List.filter_map
      (fun r ->
          (* Dominance violations: lock-free observed pairs the analysis
             of this very trace failed to report. Lock-protected
             observations are excluded — a common lock orders the pair
             under Definition 1, so the lockset analysis rightly stays
             silent where observation-based detection still fires. *)
          let missing =
            List.filter
              (fun p -> not (List.mem p r.s_canonical))
              r.s_racy
          in
          (* Determinism violations: disagreement with the fingerprint
             twin's report — pairs present in exactly one of the two. *)
          let extra =
            match Hashtbl.find_opt rep_by_fp r.s_fingerprint with
            | Some rep when rep.s_index <> r.s_index ->
                let m, e =
                  Hawkset.Report.canonical_diff ~expected:rep.s_canonical
                    ~actual:r.s_canonical
                in
                m @ e
            | Some _ | None -> []
          in
          if missing = [] && extra = [] then None
          else begin
            let d_base_fixture, d_fixture =
              match config.dump_dir with
              | Some dir when !dumped < max_dumps ->
                  incr dumped;
                  ensure_dir dir;
                  if !base_fixture = None && base_index >= 0 then
                    base_fixture :=
                      dump_schedule entry config ~ops base_index
                        (Filename.concat dir
                           (Printf.sprintf "explore-%s-base.trace"
                              entry.R.reg_name));
                  ( !base_fixture,
                    dump_schedule entry config ~ops r.s_index
                      (Filename.concat dir
                         (Printf.sprintf "explore-%s-div-%03d.trace"
                            entry.R.reg_name r.s_index)) )
              | Some _ | None -> (None, None)
            in
            Some
              {
                d_index = r.s_index;
                d_missing = missing;
                d_extra = extra;
                d_base_fixture;
                d_fixture;
              }
          end)
      ok
  in
  let distinct_traces =
    List.length
      (List.sort_uniq String.compare (List.map (fun r -> r.s_fingerprint) ok))
  in
  (* Coverage jitter: how many distinct canonical report sets the sweep
     produced. 1 means byte-stable reports; larger values quantify how
     much dynamic coverage moved across interleavings. *)
  let report_sets =
    List.length (List.sort_uniq compare (List.map (fun r -> r.s_canonical) ok))
  in
  let union proj =
    List.sort_uniq compare (List.concat_map proj ok)
  in
  let racing_pairs = union (fun r -> r.s_canonical) in
  let observed = union (fun r -> r.s_observed) in
  let bug_hits =
    List.map
      (fun (b : Pmapps.Ground_truth.bug) ->
        let stores = b.Pmapps.Ground_truth.gt_store_locs in
        let loads = b.Pmapps.Ground_truth.gt_load_locs in
        let count proj =
          List.length
            (List.filter (fun r -> hits (proj r) ~stores ~loads) ok)
        in
        {
          b_id = b.Pmapps.Ground_truth.gt_id;
          b_desc = b.Pmapps.Ground_truth.gt_desc;
          b_hawkset = count (fun r -> r.s_canonical);
          b_pmrace = count (fun r -> r.s_observed);
        })
      (List.sort
         (fun (a : Pmapps.Ground_truth.bug) b ->
           compare a.Pmapps.Ground_truth.gt_id b.Pmapps.Ground_truth.gt_id)
         entry.R.bugs)
  in
  (* Mirror the coverage into the global registry (coordinator-side, so
     the bumps are as deterministic as the results themselves). *)
  Obs.Metric.add obs_schedules (List.length results);
  Obs.Metric.add obs_errors errors;
  Obs.Metric.add obs_divergences (List.length divergences);
  Obs.Metric.add obs_distinct distinct_traces;
  Obs.Metric.add obs_report_sets report_sets;
  Obs.Metric.add obs_pairs (List.length racing_pairs);
  Obs.Metric.add obs_observed (List.length observed);
  {
    x_app = entry.R.reg_name;
    x_config = config;
    x_results = results;
    x_baseline = baseline;
    x_divergences = divergences;
    x_errors = errors;
    x_distinct_traces = distinct_traces;
    x_report_sets = report_sets;
    x_racing_pairs = List.length racing_pairs;
    x_observed_pairs = List.length observed;
    x_bug_hits = bug_hits;
    x_seconds = Unix.gettimeofday () -. t0;
  }

let stable t = t.x_divergences = [] && t.x_errors = 0

let counters ts =
  let sum proj = List.fold_left (fun acc t -> acc + proj t) 0 ts in
  [
    ("explore.distinct_traces", sum (fun t -> t.x_distinct_traces));
    ("explore.divergences", sum (fun t -> List.length t.x_divergences));
    ("explore.observed_pairs", sum (fun t -> t.x_observed_pairs));
    ("explore.racing_pairs", sum (fun t -> t.x_racing_pairs));
    ("explore.report_sets", sum (fun t -> t.x_report_sets));
    ("explore.schedule_errors", sum (fun t -> t.x_errors));
    ("explore.schedules", sum (fun t -> List.length t.x_results));
  ]

let manifest ts =
  let config = match ts with [] -> default_config | t :: _ -> t.x_config in
  let seconds = List.fold_left (fun acc t -> acc +. t.x_seconds) 0.0 ts in
  let schedules =
    List.fold_left (fun acc t -> acc + List.length t.x_results) 0 ts
  in
  let labels =
    [
      ("apps", String.concat "," (List.map (fun t -> t.x_app) ts));
      ("depth", string_of_int config.depth);
      ("detector", "explore");
      ("jobs", string_of_int config.jobs);
      ("ops", string_of_int config.ops);
      ("policy", policy_kind_to_string config.policy);
      ("schedules", string_of_int config.schedules);
      ("seed", string_of_int config.seed);
    ]
  in
  (* Cache hit/miss splits are schedule-dependent under [jobs > 1] (two
     workers can race on a new fingerprint), so they live here among the
     gauges — never in {!counters}, whose byte-identity across jobs
     values is a tested contract. *)
  let gauges =
    (match config.cache with
    | None -> []
    | Some c ->
        List.map
          (fun (k, v) -> (k, float_of_int v))
          (Hawkset.Result_cache.stats c))
    @ [
        ("explore.schedules_per_sec",
         if seconds > 0.0 then float_of_int schedules /. seconds else 0.0);
        ("explore.seconds", seconds);
      ]
  in
  Obs.Manifest.make ~labels ~counters:(counters ts) ~gauges ()
