(** Systematic schedule exploration: the interleaving-stability oracle.

    HawkSet's central claim is that lockset-based PM race detection is
    interleaving-insensitive: one execution per workload suffices,
    because the analysis reports a racing pair from {e any} trace in
    which the pair's instructions execute — where an observation-based
    tool like PMRace must get lucky with the schedule (PAPER.md §3,
    Table 3). This module tests that claim across many schedules: it
    fixes an application and a workload seed, sweeps scheduler policies
    (seed sweeps of every policy, including the PCT random-priority
    mode) and runs the full collect+analyse pipeline once per schedule,
    with the machine's [observe] mode recording the PMRace signal — the
    loads that {e actually} read another thread's
    visible-but-not-durable data in that interleaving.

    The oracle checks, per schedule:
    {ul
    {- {b Dominance}: every {e lock-free} directly-observed
       inconsistency ([obs_racy]) is in the schedule's canonicalized
       HawkSet report ({!Hawkset.Report.canonical}). An interleaving
       lucky enough for observation-based detection never tells
       HawkSet anything new — the analysis of that same trace already
       reported the pair. This is the per-interleaving form of "one
       execution suffices": a schedule where the lockset analysis
       missed an observed race would mean HawkSet's verdict depends on
       scheduling luck. Two observation classes are excluded
       ({!Machine.Sched.observation}[.obs_racy = false]): pairs where
       the storing and loading threads shared an instrumented lock
       (the common lock orders them under Definition 1), and reads
       performed by a successful CAS (the RMW closes the store's
       window itself, with a vector clock equal to the load's, so
       Algorithm 1's clock comparison cannot place the read inside
       the window). In both the lockset analysis correctly stays
       silent even though observation-based detection fires — such
       observations still count in coverage metrics and the per-bug
       table.}
    {- {b Determinism}: schedules with identical trace fingerprints
       ({!Trace.Trace_io.fingerprint}) must produce identical canonical
       reports — the analysis adds no nondeterminism of its own.}
    {- {b No errors}: a schedule that raises (deadlock, application
       failure) is a violation.}}

    Raw report sets are {e not} required to be identical across
    schedules: dynamic coverage legitimately varies with the
    interleaving (a different schedule splits different tree nodes,
    takes different CAS retry paths), so a racing pair may simply not
    execute under some schedules. That variation is reported as
    coverage metrics ([x_distinct_traces], [x_report_sets],
    [x_racing_pairs]) and as the per-bug hit-rate table ([x_bug_hits])
    whose PMRace column reproduces the Table 3 "missed under most
    interleavings" shape.

    Schedules are explored in parallel on the persistent {!Domain_pool}:
    each schedule is a pure function of its index, so results are
    deterministic and independent of [jobs]. Workers run the collector
    and the sequential analysis directly (never {!Hawkset.Pipeline.run},
    whose span accounting is single-domain). *)

(** Which scheduler policies the sweep draws from. [All] (the default)
    spends schedule 0 on the deterministic round-robin schedule and
    cycles the rest through random / PCT / delay-injection. *)
type policy_kind = Random | Round_robin | Delay | Pct | All

val policy_kind_of_string : string -> (policy_kind, string) result
val policy_kind_to_string : policy_kind -> string

type config = {
  schedules : int;  (** Schedules to explore (default 64). *)
  policy : policy_kind;  (** Policy family (default [All]). *)
  depth : int;  (** PCT preemption depth (default 3). *)
  jobs : int;  (** Worker domains (default 1). *)
  seed : int;  (** Workload seed, fixed across schedules (default 42). *)
  ops : int;  (** Main-phase operations per schedule (default 400). *)
  dump_dir : string option;
      (** Where divergent trace pairs are dumped as golden fixtures
          (default [None]: no dumps). *)
  cache : Hawkset.Result_cache.t option;
      (** Result cache consulted per schedule (default [None]): a trace
          whose fingerprint is already cached skips stage 2+3 entirely —
          sound because the determinism half of the oracle is exactly
          the purity the cache assumes, and every cached entry the sweep
          produces was verified against that oracle when first computed.
          Results are unchanged; only wall-clock time (and the
          [cache.*] gauges in {!manifest}) move. *)
}

val default_config : config

(** One explored schedule. Everything here is a pure function of
    (app, config, index) — workers return these, never traces. *)
type schedule_result = {
  s_index : int;
  s_policy : string;  (** Rendered policy, e.g. ["pct(depth=3)"]. *)
  s_sched_seed : int;
  s_events : int;
  s_fingerprint : string;
      (** {!Trace.Trace_io.fingerprint} of the schedule's trace — the
          distinct-interleaving signature. *)
  s_canonical : (string * string) list;
      (** HawkSet's canonical report set for this schedule. *)
  s_observed : (string * string) list;
      (** Sorted distinct directly-observed (store, load) location
          pairs — what a PMRace-style detector can report from this
          interleaving, including lock-protected ones. *)
  s_racy : (string * string) list;
      (** The lock-free subset of [s_observed]
          ({!Machine.Sched.observation}[.obs_racy]) — the pairs the
          dominance check requires in [s_canonical]. *)
  s_error : string option;
      (** The schedule raised (deadlock, app failure) — counted as an
          oracle violation. *)
}

type divergence = {
  d_index : int;  (** The divergent schedule. *)
  d_missing : (string * string) list;
      (** Lock-free observed inconsistencies the lockset analysis did
          not report (dominance violations). *)
  d_extra : (string * string) list;
      (** Report disagreement against a schedule with the same trace
          fingerprint (determinism violations): pairs present in
          exactly one of the two reports. *)
  d_base_fixture : string option;  (** Dumped reference trace, if any. *)
  d_fixture : string option;  (** Dumped divergent trace, if any. *)
}

type bug_hits = {
  b_id : int;
  b_desc : string;
  b_hawkset : int;  (** Schedules whose HawkSet report finds the bug. *)
  b_pmrace : int;  (** Schedules that directly observed the bug. *)
}

type t = {
  x_app : string;
  x_config : config;
  x_results : schedule_result list;  (** In schedule order. *)
  x_baseline : (string * string) list;
      (** The union of every schedule's canonical set — the full racing
          behaviour this exploration exposed for (app, workload seed). *)
  x_divergences : divergence list;
  x_errors : int;
  x_distinct_traces : int;  (** Distinct trace fingerprints. *)
  x_report_sets : int;
      (** Distinct canonical report sets — the coverage jitter across
          interleavings (1 = byte-stable reports). *)
  x_racing_pairs : int;  (** Union of canonical pairs over schedules. *)
  x_observed_pairs : int;  (** Union of observed pairs over schedules. *)
  x_bug_hits : bug_hits list;  (** Per ground-truth bug, in id order. *)
  x_seconds : float;  (** Wall clock (quarantined like every gauge). *)
}

val stable : t -> bool
(** Zero divergences and zero erroring schedules. *)

val run : ?config:config -> Pmapps.Registry.entry -> t
(** Explore one application. [ops] is clamped by the entry's cap.
    Deterministic up to [x_seconds] and fixture paths: same entry and
    config produce the same results whatever [jobs] is. *)

val save_schedule :
  ?config:config -> Pmapps.Registry.entry -> index:int -> string -> string option
(** Re-execute one schedule of the sweep deterministically and save its
    checksummed trace to the given path — the same machinery the oracle
    uses to dump divergence fixtures, usable directly to (re)generate
    golden schedule traces. [None] if the schedule raises. *)

val counters : t list -> (string * int) list
(** The deterministic coverage counters of a sweep, summed over apps:
    [explore.schedules], [explore.schedule_errors],
    [explore.divergences], [explore.distinct_traces],
    [explore.report_sets], [explore.racing_pairs],
    [explore.observed_pairs]. Also bumped into the global registry by
    {!run}. *)

val manifest : t list -> Obs.Manifest.t
(** Obs manifest for a sweep: labels (apps, policy, schedules, depth,
    jobs, seed, ops), the {!counters} and wall-clock gauges
    ([explore.seconds], [explore.schedules_per_sec]). [jobs] is a label,
    never a counter, so the manifest is byte-comparable across [jobs]. *)
