(* Pure presentation on top of {!Supervise}: the degradation table and
   the one-line verdict printed by [hawkset batch]. *)

let failure_history = function
  | [] -> "-"
  | fs -> String.concat "," (List.map Supervise.failure_to_string fs)

let degradation_table (b : Supervise.batch) =
  let row (jr : Supervise.job_result) =
    let j = jr.Supervise.jr_job in
    let attempts, failures, truncations =
      match jr.Supervise.jr_status with
      | Supervise.Done { d_attempts; d_failures; d_truncations; _ } ->
          ( string_of_int d_attempts,
            failure_history d_failures,
            string_of_int d_truncations )
      | Supervise.Gave_up { g_attempts; g_failures } ->
          (string_of_int g_attempts, failure_history g_failures, "-")
      | Supervise.Quarantined -> ("0", "-", "-")
    in
    [
      string_of_int j.Supervise.j_id;
      j.Supervise.j_app;
      string_of_int j.Supervise.j_seed;
      j.Supervise.j_policy;
      Supervise.status_string jr.Supervise.jr_status;
      attempts;
      failures;
      truncations;
      (if jr.Supervise.jr_replayed then "yes" else "no");
    ]
  in
  Tables.section "Batch degradation"
  ^ Tables.render
      ~headers:
        [ "Job"; "Application"; "Seed"; "Policy"; "Status"; "Attempts";
          "Failures"; "Truncations"; "Replayed" ]
      ~rows:(List.map row b.Supervise.b_results)

let summary_line (b : Supervise.batch) =
  let get k =
    match List.assoc_opt k (Supervise.summary b) with Some n -> n | None -> 0
  in
  let qualifiers =
    List.filter_map
      (fun (k, label) ->
        let n = get k in
        if n > 0 then Some (Printf.sprintf "%d %s" n label) else None)
      [
        ("ok_retried", "retried");
        ("ok_sequential", "sequential");
        ("ok_truncated", "truncated");
      ]
  in
  Printf.sprintf "batch: %d jobs, %d ok%s, %d failed, %d quarantined%s"
    (get "jobs") (get "ok")
    (match qualifiers with
    | [] -> ""
    | qs -> " (" ^ String.concat ", " qs ^ ")")
    (get "failed") (get "quarantined")
    (if b.Supervise.b_interrupted then " [interrupted]" else "")

let failed (b : Supervise.batch) =
  b.Supervise.b_interrupted
  || List.exists
       (fun (jr : Supervise.job_result) ->
         match jr.Supervise.jr_status with
         | Supervise.Gave_up _ | Supervise.Quarantined -> true
         | Supervise.Done _ -> false)
       b.Supervise.b_results
