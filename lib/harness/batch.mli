(** Presentation layer for {!Supervise} batches: the degradation table
    and summary line rendered by [hawkset batch]. *)

val degradation_table : Supervise.batch -> string
(** One row per terminal job — id, app, seed, policy, status, attempts,
    failure history, truncations, replayed — under a titled separator. *)

val summary_line : Supervise.batch -> string
(** One-line batch verdict, e.g.
    ["batch: 6 jobs, 4 ok (1 retried, 1 sequential), 1 failed, 1
    quarantined [interrupted]"]. *)

val failed : Supervise.batch -> bool
(** True when any job gave up or was quarantined, or the batch was
    interrupted before its last job — the CLI's exit-3 condition. *)
