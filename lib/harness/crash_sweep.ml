type row = {
  cs_runner : Crashtest.runner;
  cs_sweep : Crashtest.sweep;
}

let run ?config ?(apps = []) () =
  let runners =
    match apps with
    | [] -> Crashtest.runners
    | names ->
        List.filter_map
          (fun n ->
            match Crashtest.runner_for n with
            | Some r -> Some r
            | None ->
                Obs.Logger.warn ~section:"crashtest" (fun () ->
                    Printf.sprintf "no crash-sweep runner for %S (skipped)" n);
                None)
          names
  in
  List.map
    (fun r -> { cs_runner = r; cs_sweep = Crashtest.run_sweep ?config r })
    runners

let manifested_string = function
  | [] -> "-"
  | ids -> String.concat "," (List.map (fun i -> "#" ^ string_of_int i) ids)

let to_string rows =
  let header = Tables.section "Crash sweep (fence + stride fault injection)" in
  let body =
    Tables.render
      ~headers:
        [ "Application"; "Points"; "Clean"; "Damaged"; "Recovery failed";
          "Completed"; "Manifested bugs"; "Control" ]
      ~rows:
        (List.map
           (fun { cs_runner; cs_sweep = s } ->
             [
               s.Crashtest.sw_app;
               string_of_int (List.length s.Crashtest.sw_points);
               string_of_int s.Crashtest.sw_clean;
               string_of_int s.Crashtest.sw_damaged;
               string_of_int s.Crashtest.sw_raised;
               string_of_int s.Crashtest.sw_completed;
               manifested_string s.Crashtest.sw_manifested;
               (if cs_runner.Crashtest.r_expect_clean then
                  if s.Crashtest.sw_damaged = 0 && s.Crashtest.sw_raised = 0
                  then "clean (as expected)"
                  else "DAMAGED (unexpected!)"
                else "-");
             ])
           rows)
  in
  header ^ body

let details_string { cs_sweep = s; _ } =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Tables.section (Printf.sprintf "%s: per-point outcomes" s.Crashtest.sw_app));
  Buffer.add_string buf
    (Tables.render
       ~headers:[ "Crash point"; "Events"; "Acked"; "At-risk B"; "Outcome"; "Bugs" ]
       ~rows:
         (List.map
            (fun (p : Crashtest.point) ->
              [
                Format.asprintf "%a" Crashtest.pp_crash p.Crashtest.pt_crash;
                string_of_int p.Crashtest.pt_events;
                string_of_int p.Crashtest.pt_acked;
                string_of_int p.Crashtest.pt_at_risk;
                (match p.Crashtest.pt_outcome with
                | None -> "completed"
                | Some Crashtest.Clean -> "clean"
                | Some (Crashtest.Damaged msgs) ->
                    Printf.sprintf "damaged (%d)" (List.length msgs)
                | Some (Crashtest.Recovery_raised _) -> "recovery raised");
                manifested_string p.Crashtest.pt_bugs;
              ])
            s.Crashtest.sw_points));
  Buffer.contents buf

let manifest_of_sweeps rows =
  let counters = Obs.Registry.counters Obs.Registry.global in
  let labels =
    ("harness", "crash-sweep")
    :: List.concat_map
         (fun { cs_sweep = s; _ } ->
           [
             ( "sweep." ^ s.Crashtest.sw_app,
               Printf.sprintf "points=%d clean=%d damaged=%d raised=%d \
                               manifested=%s"
                 (List.length s.Crashtest.sw_points) s.Crashtest.sw_clean
                 s.Crashtest.sw_damaged s.Crashtest.sw_raised
                 (manifested_string s.Crashtest.sw_manifested) );
           ])
         rows
  in
  Obs.Manifest.make ~labels ~counters ()
