(** Harness driver for the crash sweep ({!Crashtest}): run sweeps over a
    set of applications, render the summary/detail tables the CLI and
    bench print, and assemble the run manifest. *)

type row = {
  cs_runner : Crashtest.runner;
  cs_sweep : Crashtest.sweep;
}

val run :
  ?config:Crashtest.config -> ?apps:string list -> unit -> row list
(** Sweep the named applications ([apps = []] means every runner —
    the registry minus Apex). Unknown names are warned about and
    skipped. *)

val to_string : row list -> string
(** The per-application summary table: point counts by outcome class,
    manifested ground-truth bugs and the control verdict for
    expect-clean applications. *)

val details_string : row -> string
(** Per-point table for one application (crash point, events, acked
    operations, at-risk bytes, outcome, attributed bugs). *)

val manifest_of_sweeps : row list -> Obs.Manifest.t
(** Manifest carrying the global [crashtest.*] counters plus one
    summary label per swept application. *)
