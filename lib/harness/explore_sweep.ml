(* Multi-application schedule-exploration driver. Pure presentation on
   top of {!Explore}: app selection, the summary/divergence/bug tables
   and the sweep manifest. *)

module R = Pmapps.Registry

let select apps =
  if apps = [] then R.all
  else begin
    List.iter
      (fun name ->
        if R.find name = None then
          Format.eprintf "explore: unknown application %S, skipping@." name)
      apps;
    List.filter (fun (e : R.entry) -> List.mem e.R.reg_name apps) R.all
  end

let run ?(config = Explore.default_config) ?(apps = []) () =
  List.map (Explore.run ~config) (select apps)

let stable ts = List.for_all Explore.stable ts

let to_string ts =
  let row (t : Explore.t) =
    let schedules = List.length t.Explore.x_results in
    [
      t.Explore.x_app;
      string_of_int schedules;
      string_of_int t.Explore.x_errors;
      string_of_int (List.length t.Explore.x_divergences);
      string_of_int t.Explore.x_distinct_traces;
      string_of_int t.Explore.x_report_sets;
      string_of_int t.Explore.x_racing_pairs;
      string_of_int t.Explore.x_observed_pairs;
      (if t.Explore.x_seconds > 0.0 then
         Printf.sprintf "%.1f" (float_of_int schedules /. t.Explore.x_seconds)
       else "-");
      (if Explore.stable t then "stable" else "UNSTABLE");
    ]
  in
  Tables.section "Schedule stability"
  ^ Tables.render
      ~headers:
        [ "Application"; "Schedules"; "Errors"; "Divergences"; "Traces";
          "Report sets"; "Racing pairs"; "Observed"; "Sched/s"; "Verdict" ]
      ~rows:(List.map row ts)

let pp_pairs pairs =
  String.concat ", " (List.map (fun (s, l) -> s ^ " -> " ^ l) pairs)

let divergences_string ts =
  let buf = Buffer.create 256 in
  List.iter
    (fun (t : Explore.t) ->
      List.iter
        (fun (d : Explore.divergence) ->
          let r =
            List.find
              (fun (r : Explore.schedule_result) ->
                r.Explore.s_index = d.Explore.d_index)
              t.Explore.x_results
          in
          Buffer.add_string buf
            (Printf.sprintf "%s: schedule %d (%s, seed %d) violates the oracle\n"
               t.Explore.x_app d.Explore.d_index r.Explore.s_policy
               r.Explore.s_sched_seed);
          if d.Explore.d_missing <> [] then
            Buffer.add_string buf
              (Printf.sprintf "  observed but unreported: %s\n"
                 (pp_pairs d.Explore.d_missing));
          if d.Explore.d_extra <> [] then
            Buffer.add_string buf
              (Printf.sprintf "  disagrees with fingerprint twin on: %s\n"
                 (pp_pairs d.Explore.d_extra));
          (match d.Explore.d_base_fixture with
          | Some p -> Buffer.add_string buf ("  reference trace: " ^ p ^ "\n")
          | None -> ());
          match d.Explore.d_fixture with
          | Some p -> Buffer.add_string buf ("  divergent trace: " ^ p ^ "\n")
          | None -> ())
        t.Explore.x_divergences;
      List.iter
        (fun (r : Explore.schedule_result) ->
          match r.Explore.s_error with
          | Some e ->
              Buffer.add_string buf
                (Printf.sprintf "%s: schedule %d (%s, seed %d) failed: %s\n"
                   t.Explore.x_app r.Explore.s_index r.Explore.s_policy
                   r.Explore.s_sched_seed e)
          | None -> ())
        t.Explore.x_results)
    ts;
  Buffer.contents buf

let bug_table_string ts =
  let rows =
    List.concat_map
      (fun (t : Explore.t) ->
        let schedules = string_of_int (List.length t.Explore.x_results) in
        List.map
          (fun (b : Explore.bug_hits) ->
            [
              t.Explore.x_app;
              "#" ^ string_of_int b.Explore.b_id;
              b.Explore.b_desc;
              Printf.sprintf "%d/%s" b.Explore.b_hawkset schedules;
              Printf.sprintf "%d/%s" b.Explore.b_pmrace schedules;
            ])
          t.Explore.x_bug_hits)
      ts
  in
  if rows = [] then ""
  else
    Tables.section "Known bugs across interleavings"
    ^ Tables.render
        ~headers:
          [ "Application"; "Bug"; "Description"; "HawkSet"; "Observed (PMRace)" ]
        ~rows

let manifest = Explore.manifest
