(** Harness driver for schedule exploration ({!Explore}): run the
    interleaving-stability oracle over a set of applications and render
    the summary, divergence and per-bug hit-rate tables the CLI prints.

    The summary row per application: schedules explored, errors,
    divergences, distinct trace fingerprints, distinct canonical report
    sets (coverage jitter), racing-pair and observed-pair union sizes,
    schedules/second and the verdict ([stable] / [UNSTABLE]). The
    hit-rate table reproduces the Table 3 shape per ground-truth bug:
    how many schedules HawkSet's one-trace analysis reported it in
    versus how many directly observed it (the PMRace signal). *)

val run :
  ?config:Explore.config -> ?apps:string list -> unit -> Explore.t list
(** Explore the named applications in registry order ([apps = []] means
    the whole registry). Unknown names are warned about on stderr and
    skipped. *)

val stable : Explore.t list -> bool
(** Every exploration passed the oracle. *)

val to_string : Explore.t list -> string
(** Summary table over all explored applications. *)

val divergences_string : Explore.t list -> string
(** One block per oracle violation: the schedule, its policy and seed,
    the observed-but-unreported pairs, any determinism disagreement and
    the dumped fixture paths. Empty string when stable. *)

val bug_table_string : Explore.t list -> string
(** Per ground-truth bug: schedules where HawkSet reported it vs
    schedules that directly observed it. *)

val manifest : Explore.t list -> Obs.Manifest.t
(** {!Explore.manifest} of the sweep. *)
