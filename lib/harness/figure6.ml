type point = {
  app : string;
  ops : int;
  events : int;
  exec_seconds : float;
  analysis_seconds : float;
  memory_mb : float; (* peak live MB while executing + analysing *)
  final_live_mb : float; (* live MB after the analysis (old Figure 6b) *)
  races : int;
}

type result = { points : point list }

let run ?(sizes = [ 1_000; 10_000; 100_000 ]) ?(seed = 42) () =
  let points = ref [] in
  List.iter
    (fun (e : Pmapps.Registry.entry) ->
      List.iter
        (fun ops ->
          let ops = Pmapps.Registry.clamp_ops e ops in
          (* Skip duplicate clamped sizes (P-ART). *)
          if
            not
              (List.exists
                 (fun p -> p.app = e.Pmapps.Registry.reg_name && p.ops = ops)
                 !points)
          then begin
            let (report, exec_seconds, res, analysis_seconds), memory_mb =
              Metrics.with_live_mb (fun () ->
                  let report, exec_seconds =
                    Metrics.timed (fun () -> e.Pmapps.Registry.run ~seed ~ops ())
                  in
                  let res, analysis_seconds =
                    Metrics.timed (fun () ->
                        Hawkset.Pipeline.run report.Machine.Sched.trace)
                  in
                  (report, exec_seconds, res, analysis_seconds))
            in
            let final_live_mb = Metrics.final_live_mb () in
            points :=
              {
                app = e.Pmapps.Registry.reg_name;
                ops;
                events = Trace.Tracebuf.length report.Machine.Sched.trace;
                exec_seconds;
                analysis_seconds;
                memory_mb;
                final_live_mb;
                races = Hawkset.Report.count res.Hawkset.Pipeline.races;
              }
              :: !points
          end)
        (List.sort_uniq compare sizes))
    Pmapps.Registry.all;
  { points = List.rev !points }

let to_string r =
  Tables.section "Figure 6: testing time and peak memory vs workload size"
  ^ Tables.render
      ~headers:
        [ "Application"; "Ops"; "Events"; "Exec (s)"; "Analysis (s)";
          "Peak (MB)"; "Final live (MB)"; "Races" ]
      ~rows:
        (List.map
           (fun p ->
             [
               p.app;
               string_of_int p.ops;
               string_of_int p.events;
               Printf.sprintf "%.3f" p.exec_seconds;
               Printf.sprintf "%.3f" p.analysis_seconds;
               Printf.sprintf "%.1f" p.memory_mb;
               Printf.sprintf "%.1f" p.final_live_mb;
               string_of_int p.races;
             ])
           r.points)

let sublinear r ~app =
  let ps =
    List.sort
      (fun a b -> compare a.ops b.ops)
      (List.filter (fun p -> p.app = app) r.points)
  in
  match (ps, List.rev ps) with
  | small :: _, big :: _ when small.ops < big.ops ->
      let workload_factor = float_of_int big.ops /. float_of_int small.ops in
      let time_factor =
        (big.exec_seconds +. big.analysis_seconds)
        /. max 1e-6 (small.exec_seconds +. small.analysis_seconds)
      in
      time_factor < workload_factor *. 1.5
  | _ -> true
