(** Figure 6: HawkSet's testing time (6a) and peak memory (6b) across all
    applications and workload sizes.

    For each application and each size the harness executes the workload,
    runs the full pipeline and records the analysis wall-clock time and a
    live-heap proxy for peak bookkeeping memory. The paper's claim is
    sublinear growth with workload size (both axes logarithmic); the
    series printed here regenerate those curves. *)

type point = {
  app : string;
  ops : int;
  events : int;  (** Trace length — the analysis input size. *)
  exec_seconds : float;  (** Running the instrumented application. *)
  analysis_seconds : float;  (** Stages 1-3. *)
  memory_mb : float;
      (** Peak live heap while executing + analysing, via the
          [Gc.alarm]-sampled {!Metrics.with_live_mb}. *)
  final_live_mb : float;
      (** Live heap after the analysis (the historical Figure 6b value:
          trace + access records + interning tables still live). *)
  races : int;
}

type result = { points : point list }

val run : ?sizes:int list -> ?seed:int -> unit -> result
(** Default sizes: [[1_000; 10_000; 100_000]] scaled down by nothing —
    pass smaller sizes for quick runs. P-ART is clamped to 1k like the
    paper. *)

val to_string : result -> string

val sublinear : result -> app:string -> bool
(** [true] when, for [app], time grows by a smaller factor than the
    workload between the smallest and largest size — the Figure 6a
    claim. *)
