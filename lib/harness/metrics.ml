let timed f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let word_mb words =
  float_of_int words *. float_of_int (Sys.word_size / 8) /. (1024.0 *. 1024.0)

let final_live_mb () =
  Gc.full_major ();
  let s = Gc.stat () in
  word_mb s.Gc.live_words

(* Kept as the end-of-run value; Figure 6b reports peak and final both. *)
let live_mb = final_live_mb

(* Peak live heap across [f], sampled by a [Gc.alarm] at the end of every
   major collection (plus one sample at entry and one at exit). [Gc.stat]
   walks the heap, so the reentrancy flag keeps a sample from observing
   itself; the alarm is always removed, even when [f] raises. *)
let with_live_mb f =
  let peak = ref 0 in
  let inside = ref false in
  let sample () =
    if not !inside then begin
      inside := true;
      Fun.protect
        ~finally:(fun () -> inside := false)
        (fun () ->
          let s = Gc.stat () in
          if s.Gc.live_words > !peak then peak := s.Gc.live_words)
    end
  in
  sample ();
  let alarm = Gc.create_alarm sample in
  let r =
    Fun.protect ~finally:(fun () -> Gc.delete_alarm alarm) (fun () -> f ())
  in
  sample ();
  (r, word_mb !peak)

(* Per-pool-domain peak sampling. [Gc.alarm]s are domain-local in OCaml 5,
   so the caller-domain alarm in [with_live_mb] never sees a worker's
   heap: each pool task installs its own alarm via the {!Domain_pool}
   task hook. A slot is only ever run by one domain per [map] call (the
   pool's stable mapping), so a plain int array needs no atomics. *)
let max_pool_slots = 64

let pool_peak_words = Array.make max_pool_slots 0

let reset_pool_peaks () = Array.fill pool_peak_words 0 max_pool_slots 0

let pool_peak_mbs () =
  let acc = ref [] in
  for i = max_pool_slots - 1 downto 0 do
    if pool_peak_words.(i) > 0 then
      acc := (i, word_mb pool_peak_words.(i)) :: !acc
  done;
  !acc

let pool_task_hook slot task =
  (* Slot 0 is the calling domain — [with_live_mb]'s own alarm already
     covers it. Out-of-range slots are not sampled rather than crashed. *)
  if slot <= 0 || slot >= max_pool_slots then task ()
  else begin
    let inside = ref false in
    let sample () =
      if not !inside then begin
        inside := true;
        Fun.protect
          ~finally:(fun () -> inside := false)
          (fun () ->
            let s = Gc.stat () in
            if s.Gc.live_words > pool_peak_words.(slot) then
              pool_peak_words.(slot) <- s.Gc.live_words)
      end
    in
    sample ();
    let alarm = Gc.create_alarm sample in
    Fun.protect
      ~finally:(fun () ->
        Gc.delete_alarm alarm;
        sample ())
      task
  end

let with_pool_live_mb f =
  reset_pool_peaks ();
  Hawkset.Domain_pool.set_task_hook (Some pool_task_hook);
  let r =
    Fun.protect
      ~finally:(fun () -> Hawkset.Domain_pool.set_task_hook None)
      f
  in
  (r, pool_peak_mbs ())

let avg_time_to_race ~t ~found ~missed =
  if found <= 0 then None
  else Some (t *. ((float_of_int missed /. 2.0) +. 1.0))

let avg_time_to_race_binomial ~t ~found ~missed =
  if found <= 0 then None
  else begin
    (* sum_i C(E,i) * S * T * (i+1) / sum_i C(E,i) * S, with the weights
       kept normalized to avoid overflow: w_i = C(E,i) / 2^E. *)
    let e = missed in
    let num = ref 0.0 and den = ref 0.0 in
    let w = ref (exp (-.float_of_int e *. log 2.0)) in
    for i = 0 to e do
      num := !num +. (!w *. float_of_int (i + 1));
      den := !den +. !w;
      if i < e then w := !w *. float_of_int (e - i) /. float_of_int (i + 1)
    done;
    Some (t *. !num /. !den)
  end
