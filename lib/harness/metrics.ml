let timed f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let word_mb words =
  float_of_int words *. float_of_int (Sys.word_size / 8) /. (1024.0 *. 1024.0)

let final_live_mb () =
  Gc.full_major ();
  let s = Gc.stat () in
  word_mb s.Gc.live_words

(* Kept as the end-of-run value; Figure 6b reports peak and final both. *)
let live_mb = final_live_mb

(* Peak live heap across [f], sampled by a [Gc.alarm] at the end of every
   major collection (plus one sample at entry and one at exit). [Gc.stat]
   walks the heap, so the reentrancy flag keeps a sample from observing
   itself; the alarm is always removed, even when [f] raises. *)
let with_live_mb f =
  let peak = ref 0 in
  let inside = ref false in
  let sample () =
    if not !inside then begin
      inside := true;
      Fun.protect
        ~finally:(fun () -> inside := false)
        (fun () ->
          let s = Gc.stat () in
          if s.Gc.live_words > !peak then peak := s.Gc.live_words)
    end
  in
  sample ();
  let alarm = Gc.create_alarm sample in
  let r =
    Fun.protect ~finally:(fun () -> Gc.delete_alarm alarm) (fun () -> f ())
  in
  sample ();
  (r, word_mb !peak)

let avg_time_to_race ~t ~found ~missed =
  if found <= 0 then None
  else Some (t *. ((float_of_int missed /. 2.0) +. 1.0))

let avg_time_to_race_binomial ~t ~found ~missed =
  if found <= 0 then None
  else begin
    (* sum_i C(E,i) * S * T * (i+1) / sum_i C(E,i) * S, with the weights
       kept normalized to avoid overflow: w_i = C(E,i) / 2^E. *)
    let e = missed in
    let num = ref 0.0 and den = ref 0.0 in
    let w = ref (exp (-.float_of_int e *. log 2.0)) in
    for i = 0 to e do
      num := !num +. (!w *. float_of_int (i + 1));
      den := !den +. !w;
      if i < e then w := !w *. float_of_int (e - i) /. float_of_int (i + 1)
    done;
    Some (t *. !num /. !den)
  end
