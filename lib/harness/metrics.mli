(** Measurement helpers for the efficiency evaluation (Figure 6). *)

val timed : (unit -> 'a) -> 'a * float
(** Result and wall-clock seconds. *)

val with_live_mb : (unit -> 'a) -> 'a * float
(** [with_live_mb f] runs [f] and returns its result with the {e peak}
    live-heap megabytes observed while it ran, sampled by a [Gc.alarm] at
    the end of every major collection (plus entry/exit samples) — the
    Figure 6b peak-memory series. The alarm is removed even if [f]
    raises. *)

val with_pool_live_mb : (unit -> 'a) -> 'a * (int * float) list
(** [with_pool_live_mb f] runs [f] with a {!Hawkset.Domain_pool} task
    hook installed that samples peak live heap inside each pool worker
    (Gc alarms are domain-local, so the caller-domain alarm of
    {!with_live_mb} never observes them). Returns [f]'s result and the
    per-slot peaks [(slot, mb)] for every worker slot that ran a task;
    slot 0 (the calling domain) is covered by {!with_live_mb} instead.
    The hook is uninstalled even if [f] raises. *)

val final_live_mb : unit -> float
(** Live heap megabytes after a full major collection — the end-of-run
    value (the trace, access records and interning tables are all still
    live after an analysis). Reported alongside the peak in Figure 6b. *)

val live_mb : unit -> float
(** Alias of {!final_live_mb}, kept for callers of the historical name. *)

val avg_time_to_race : t:float -> found:int -> missed:int -> float option
(** The §5.2 metric: expected time to find a race when workloads are
    drawn at random without replacement, given the per-workload time [t],
    the number of workloads where the tool finds the race ([found]) and
    where it does not ([missed]). Closed form [t * (missed/2 + 1)]
    (the paper's binomial sum reduces to it); [None] when [found = 0]
    (the race is never found — the paper prints ∞). *)

val avg_time_to_race_binomial : t:float -> found:int -> missed:int -> float option
(** The paper's formula evaluated literally (normalized binomial
    weights), used to cross-check the closed form in tests. *)
