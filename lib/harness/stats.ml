(* Shared observability plumbing for front ends (CLI, bench, tests): one
   instrumented execute+analyse run with the global registry reset at the
   start, peak-heap sampling around the whole thing, and a run manifest
   assembled at the end. Keeping this here (not in bin/) lets tests assert
   the exact artifact the CLI emits. *)

type run = {
  sched_report : Machine.Sched.report;
  pipeline : Hawkset.Pipeline.result;
  peak_mb : float;
  final_live_mb : float;
  manifest : Obs.Manifest.t;
}

let obs_distinct_races = Obs.Registry.counter "report.distinct_races"

let tl_run = Obs.Timeline.name "run"
let tl_execute = Obs.Timeline.name "run.execute"

let base_labels ~app ~detector ~seed ~ops =
  [
    ("app", app);
    ("detector", detector);
    ("seed", string_of_int seed);
    ("ops", string_of_int ops);
  ]

let instrumented_run ?(config = Hawkset.Pipeline.default) ~entry ~seed ~ops ()
    =
  let reg = Obs.Registry.global in
  Obs.Registry.reset reg;
  let ((sched_report, pipeline), pool_peaks), peak_mb =
    Metrics.with_live_mb (fun () ->
        (* Only instrumented runs pay the per-task Gc.stat of the pool
           sampler — raw [Pipeline.run] callers (the perf gates) never
           see the hook. *)
        Metrics.with_pool_live_mb (fun () ->
            Obs.Registry.with_span "run" (fun () ->
                Obs.Timeline.begin_ tl_run;
                Fun.protect
                  ~finally:(fun () -> Obs.Timeline.end_ tl_run)
                @@ fun () ->
                let sched_report =
                  Obs.Registry.with_span "execute" (fun () ->
                      Obs.Timeline.begin_ tl_execute;
                      Fun.protect
                        ~finally:(fun () -> Obs.Timeline.end_ tl_execute)
                        (fun () -> entry.Pmapps.Registry.run ~seed ~ops ()))
                in
                let pipeline =
                  Hawkset.Pipeline.run ~config sched_report.Machine.Sched.trace
                in
                (sched_report, pipeline))))
  in
  Obs.Metric.add obs_distinct_races
    (Hawkset.Report.count pipeline.Hawkset.Pipeline.races);
  let final_live_mb = Metrics.final_live_mb () in
  let manifest =
    Obs.Manifest.of_registry
      ~labels:
        (base_labels ~app:entry.Pmapps.Registry.reg_name ~detector:"hawkset"
           ~seed ~ops
        @ [ ("jobs", string_of_int config.Hawkset.Pipeline.jobs) ])
      ~extra_gauges:
        (("peak_live_mb", peak_mb)
        :: ("final_live_mb", final_live_mb)
        :: List.map
             (fun (slot, mb) ->
               (Printf.sprintf "peak_live_mb.domain_%d" slot, mb))
             pool_peaks)
      reg
  in
  { sched_report; pipeline; peak_mb; final_live_mb; manifest }

(* Offline traces carry no scheduler/cache counters: the manifest is built
   from the pipeline result's own delta so `analyze` prints the same stats
   block as a live run's pipeline section. *)
let manifest_of_pipeline ?(labels = []) ?(extra_gauges = [])
    (res : Hawkset.Pipeline.result) =
  Obs.Manifest.make ~labels
    ~counters:
      (List.sort
         (fun (a, _) (b, _) -> String.compare a b)
         (("report.distinct_races",
           Hawkset.Report.count res.Hawkset.Pipeline.races)
         :: res.Hawkset.Pipeline.counters))
    ~stages:
      (List.map
         (fun (name, seconds) ->
           {
             Obs.Manifest.stage_name = "pipeline/" ^ name;
             stage_count = 1;
             stage_seconds = seconds;
           })
         res.Hawkset.Pipeline.stage_seconds)
    ~gauges:extra_gauges ()

(* --- human rendering -------------------------------------------------- *)

let render (m : Obs.Manifest.t) =
  let b = Buffer.create 1024 in
  Buffer.add_string b (Tables.section "Run stats");
  if m.Obs.Manifest.labels <> [] then begin
    Buffer.add_string b
      (String.concat "  "
         (List.map (fun (k, v) -> k ^ "=" ^ v) m.Obs.Manifest.labels));
    Buffer.add_string b "\n\n"
  end;
  if m.Obs.Manifest.stages <> [] then begin
    (* Span paths are slash-joined; sorting by path puts every span right
       after its ancestors ('/' sorts before any path character we use),
       so the sorted list is a DFS preorder and indentation by depth
       renders the tree. Each row also shows its share of the nearest
       recorded ancestor's time. *)
    let stages =
      List.sort
        (fun (a : Obs.Manifest.stage) b ->
          String.compare a.Obs.Manifest.stage_name b.Obs.Manifest.stage_name)
        m.Obs.Manifest.stages
    in
    let seconds_of = Hashtbl.create 16 in
    List.iter
      (fun (s : Obs.Manifest.stage) ->
        Hashtbl.replace seconds_of s.Obs.Manifest.stage_name
          s.Obs.Manifest.stage_seconds)
      stages;
    let rec parent_seconds path =
      match String.rindex_opt path '/' with
      | None -> None
      | Some i -> (
          let prefix = String.sub path 0 i in
          match Hashtbl.find_opt seconds_of prefix with
          | Some s -> Some s
          | None -> parent_seconds prefix)
    in
    let depth path =
      String.fold_left (fun n c -> if c = '/' then n + 1 else n) 0 path
    in
    let label path =
      let last =
        match String.rindex_opt path '/' with
        | None -> path
        | Some i -> String.sub path (i + 1) (String.length path - i - 1)
      in
      String.make (2 * depth path) ' ' ^ last
    in
    Buffer.add_string b
      (Tables.render
         ~headers:[ "Span"; "Count"; "Seconds"; "% of parent" ]
         ~rows:
           (List.map
              (fun (s : Obs.Manifest.stage) ->
                let pct =
                  match parent_seconds s.Obs.Manifest.stage_name with
                  | Some p when p > 0.0 ->
                      Printf.sprintf "%.1f%%"
                        (100.0 *. s.Obs.Manifest.stage_seconds /. p)
                  | Some _ | None -> "-"
                in
                [
                  label s.Obs.Manifest.stage_name;
                  string_of_int s.Obs.Manifest.stage_count;
                  Printf.sprintf "%.4f" s.Obs.Manifest.stage_seconds;
                  pct;
                ])
              stages))
  end;
  let counter_rows =
    List.map
      (fun (k, v) -> [ k; string_of_int v ])
      m.Obs.Manifest.counters
    @ List.concat_map
        (fun (name, cells) ->
          List.map
            (fun (k, v) -> [ name ^ "/" ^ k; string_of_int v ])
            cells)
        m.Obs.Manifest.histograms
  in
  if counter_rows <> [] then
    Buffer.add_string b
      (Tables.render ~headers:[ "Counter (deterministic)"; "Value" ]
         ~rows:counter_rows);
  if m.Obs.Manifest.gauges <> [] then
    Buffer.add_string b
      (Tables.render ~headers:[ "Gauge (measured)"; "Value" ]
         ~rows:
           (List.map
              (fun (k, v) -> [ k; Printf.sprintf "%.3f" v ])
              m.Obs.Manifest.gauges));
  Buffer.contents b
