(* Shared observability plumbing for front ends (CLI, bench, tests): one
   instrumented execute+analyse run with the global registry reset at the
   start, peak-heap sampling around the whole thing, and a run manifest
   assembled at the end. Keeping this here (not in bin/) lets tests assert
   the exact artifact the CLI emits. *)

type run = {
  sched_report : Machine.Sched.report;
  pipeline : Hawkset.Pipeline.result;
  peak_mb : float;
  final_live_mb : float;
  manifest : Obs.Manifest.t;
}

let obs_distinct_races = Obs.Registry.counter "report.distinct_races"

let base_labels ~app ~detector ~seed ~ops =
  [
    ("app", app);
    ("detector", detector);
    ("seed", string_of_int seed);
    ("ops", string_of_int ops);
  ]

let instrumented_run ?(config = Hawkset.Pipeline.default) ~entry ~seed ~ops ()
    =
  let reg = Obs.Registry.global in
  Obs.Registry.reset reg;
  let (sched_report, pipeline), peak_mb =
    Metrics.with_live_mb (fun () ->
        Obs.Registry.with_span "run" (fun () ->
            let sched_report =
              Obs.Registry.with_span "execute" (fun () ->
                  entry.Pmapps.Registry.run ~seed ~ops ())
            in
            let pipeline =
              Hawkset.Pipeline.run ~config sched_report.Machine.Sched.trace
            in
            (sched_report, pipeline)))
  in
  Obs.Metric.add obs_distinct_races
    (Hawkset.Report.count pipeline.Hawkset.Pipeline.races);
  let final_live_mb = Metrics.final_live_mb () in
  let manifest =
    Obs.Manifest.of_registry
      ~labels:
        (base_labels ~app:entry.Pmapps.Registry.reg_name ~detector:"hawkset"
           ~seed ~ops
        @ [ ("jobs", string_of_int config.Hawkset.Pipeline.jobs) ])
      ~extra_gauges:
        [ ("peak_live_mb", peak_mb); ("final_live_mb", final_live_mb) ]
      reg
  in
  { sched_report; pipeline; peak_mb; final_live_mb; manifest }

(* Offline traces carry no scheduler/cache counters: the manifest is built
   from the pipeline result's own delta so `analyze` prints the same stats
   block as a live run's pipeline section. *)
let manifest_of_pipeline ?(labels = []) ?(extra_gauges = [])
    (res : Hawkset.Pipeline.result) =
  Obs.Manifest.make ~labels
    ~counters:
      (List.sort
         (fun (a, _) (b, _) -> String.compare a b)
         (("report.distinct_races",
           Hawkset.Report.count res.Hawkset.Pipeline.races)
         :: res.Hawkset.Pipeline.counters))
    ~stages:
      (List.map
         (fun (name, seconds) ->
           {
             Obs.Manifest.stage_name = "pipeline/" ^ name;
             stage_count = 1;
             stage_seconds = seconds;
           })
         res.Hawkset.Pipeline.stage_seconds)
    ~gauges:extra_gauges ()

(* --- human rendering -------------------------------------------------- *)

let render (m : Obs.Manifest.t) =
  let b = Buffer.create 1024 in
  Buffer.add_string b (Tables.section "Run stats");
  if m.Obs.Manifest.labels <> [] then begin
    Buffer.add_string b
      (String.concat "  "
         (List.map (fun (k, v) -> k ^ "=" ^ v) m.Obs.Manifest.labels));
    Buffer.add_string b "\n\n"
  end;
  if m.Obs.Manifest.stages <> [] then
    Buffer.add_string b
      (Tables.render
         ~headers:[ "Span"; "Count"; "Seconds" ]
         ~rows:
           (List.map
              (fun (s : Obs.Manifest.stage) ->
                [
                  s.Obs.Manifest.stage_name;
                  string_of_int s.Obs.Manifest.stage_count;
                  Printf.sprintf "%.4f" s.Obs.Manifest.stage_seconds;
                ])
              m.Obs.Manifest.stages));
  let counter_rows =
    List.map
      (fun (k, v) -> [ k; string_of_int v ])
      m.Obs.Manifest.counters
    @ List.concat_map
        (fun (name, cells) ->
          List.map
            (fun (k, v) -> [ name ^ "/" ^ k; string_of_int v ])
            cells)
        m.Obs.Manifest.histograms
  in
  if counter_rows <> [] then
    Buffer.add_string b
      (Tables.render ~headers:[ "Counter (deterministic)"; "Value" ]
         ~rows:counter_rows);
  if m.Obs.Manifest.gauges <> [] then
    Buffer.add_string b
      (Tables.render ~headers:[ "Gauge (measured)"; "Value" ]
         ~rows:
           (List.map
              (fun (k, v) -> [ k; Printf.sprintf "%.3f" v ])
              m.Obs.Manifest.gauges));
  Buffer.contents b
