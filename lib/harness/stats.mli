(** Observability plumbing shared by the CLI, the bench emitter and the
    tests: instrumented runs with the global metric registry reset at the
    start, peak-heap sampling, and {!Obs.Manifest.t} assembly.

    Living in the harness (not [bin/]) means tests assert the exact
    artifact the CLI's [--stats-json] emits. *)

type run = {
  sched_report : Machine.Sched.report;
  pipeline : Hawkset.Pipeline.result;
  peak_mb : float;  (** Peak live heap across execute + analyse. *)
  final_live_mb : float;
  manifest : Obs.Manifest.t;
}

val instrumented_run :
  ?config:Hawkset.Pipeline.config ->
  entry:Pmapps.Registry.entry ->
  seed:int ->
  ops:int ->
  unit ->
  run
(** Reset {!Obs.Registry.global}, execute the application's workload under
    spans ([run/execute], [run/pipeline/...]), analyse the trace, and
    snapshot everything into a manifest (labelled with the app, seed, ops
    and the analysis [jobs] count). Counters in the manifest are
    byte-identical across calls with equal [(entry, seed, ops, config)] —
    and across [config.jobs] values, since the parallel analysis is
    bit-identical to the sequential one. *)

val base_labels :
  app:string -> detector:string -> seed:int -> ops:int ->
  (string * string) list

val manifest_of_pipeline :
  ?labels:(string * string) list ->
  ?extra_gauges:(string * float) list ->
  Hawkset.Pipeline.result ->
  Obs.Manifest.t
(** Manifest for an offline [analyze] run: built from the pipeline
    result's own counter delta and stage timings (no scheduler/cache
    counters exist for a pre-recorded trace). *)

val render : Obs.Manifest.t -> string
(** The human [--stats] block: labels, the span {e tree} (spans indented
    under their slash-path ancestors, each with its percentage of the
    nearest recorded ancestor's seconds), deterministic counter table
    (histogram cells flattened), measured gauge table. *)
