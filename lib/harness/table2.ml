type row = {
  app : string;
  bug_id : int;
  is_new : bool;
  store_locs : string list;
  load_locs : string list;
  desc : string;
  detected : bool;
}

type result = { rows : row list; total_races_reported : int }

let run ?(sizes = [ 1_000; 10_000 ]) ?(seed = 42) () =
  let rows = ref [] in
  let total = ref 0 in
  List.iter
    (fun (e : Pmapps.Registry.entry) ->
      (* Like the artifact's E1, every workload size is analysed and the
         detections are the union: the hard-to-reach bugs (TurboHash #3,
         Fast-Fair #2) only show up in the larger workloads. *)
      let races =
        List.fold_left
          (fun acc ops ->
            let ops = Pmapps.Registry.clamp_ops e ops in
            let report = e.Pmapps.Registry.run ~seed ~ops () in
            let r = Hawkset.Pipeline.races report.Machine.Sched.trace in
            List.fold_left
              (fun acc (race : Hawkset.Report.race) ->
                Hawkset.Report.add
                  ?witness:
                    (Option.map
                       (fun w () -> w)
                       race.Hawkset.Report.witness)
                  acc ~store_site:race.Hawkset.Report.store_site
                  ~load_site:race.Hawkset.Report.load_site
                  ~store_tid:race.Hawkset.Report.store_tid
                  ~load_tid:race.Hawkset.Report.load_tid
                  ~addr:race.Hawkset.Report.addr
                  ~window_end:race.Hawkset.Report.window_end)
              acc (Hawkset.Report.sorted r))
          Hawkset.Report.empty
          (List.sort_uniq compare sizes)
      in
      total := !total + Hawkset.Report.count races;
      List.iter
        (fun (bug : Pmapps.Ground_truth.bug) ->
          rows :=
            {
              app = e.Pmapps.Registry.reg_name;
              bug_id = bug.Pmapps.Ground_truth.gt_id;
              is_new = bug.Pmapps.Ground_truth.gt_new;
              store_locs = bug.Pmapps.Ground_truth.gt_store_locs;
              load_locs = bug.Pmapps.Ground_truth.gt_load_locs;
              desc = bug.Pmapps.Ground_truth.gt_desc;
              detected =
                Pmapps.Ground_truth.bug_found ~bugs:e.Pmapps.Registry.bugs
                  races bug.Pmapps.Ground_truth.gt_id;
            }
            :: !rows)
        e.Pmapps.Registry.bugs)
    Pmapps.Registry.all;
  {
    rows = List.sort (fun a b -> compare a.bug_id b.bug_id) !rows;
    total_races_reported = !total;
  }

let detected_count r = List.length (List.filter (fun x -> x.detected) r.rows)

let to_string r =
  let shorten locs =
    match locs with
    | [] -> "-"
    | l :: rest ->
        let base = Filename.basename l in
        if rest = [] then base
        else Printf.sprintf "%s (+%d)" base (List.length rest)
  in
  Tables.section "Table 2: persistency-induced races detected using HawkSet"
  ^ Tables.render
      ~headers:
        [ "Application"; "#"; "New"; "Store Access"; "Load Access";
          "Description"; "Detected" ]
      ~rows:
        (List.map
           (fun x ->
             [
               x.app;
               string_of_int x.bug_id;
               (if x.is_new then "yes" else "no");
               shorten x.store_locs;
               shorten x.load_locs;
               x.desc;
               (if x.detected then "YES" else "NO");
             ])
           r.rows)
  ^ Printf.sprintf
      "\n%d/%d injected bugs detected; %d distinct race reports in total.\n"
      (detected_count r) (List.length r.rows) r.total_races_reported
