type policy =
  | Random_interleave
  | Round_robin
  | Delay_injection of { probability : float; duration : int }
  | Targeted_delay of { store_loc : string; duration : int }
  | Scripted of int array
  | Pct of { depth : int }

type outcome = Completed | Crashed

type observation = {
  obs_store_site : Trace.Site.t;
  obs_load_site : Trace.Site.t;
  obs_addr : int;
  obs_racy : bool;
      (* no instrumented lock was held by both the storing thread (at
         store time) and the loading thread (at load time) — i.e. the
         pair is concurrent under Definition 1 and in scope for the
         lockset analysis, not just for observation-based detection *)
}

type report = {
  outcome : outcome;
  trace : Trace.Tracebuf.t;
  event_count : int;
  observations : observation list;
  thread_count : int;
}

exception Deadlock of string

(* Scheduler observability (Obs.Registry.global). Every bump sits on a
   deterministic control path, so counts are exact functions of
   (program, seed, policy) — the Table 3 cost asymmetry becomes countable
   rather than asserted. *)
let obs_sched_points = Obs.Registry.counter "sched.points"
let obs_switches = Obs.Registry.counter "sched.context_switches"
let obs_delays = Obs.Registry.counter "sched.delays_injected"
let obs_spawned = Obs.Registry.counter "sched.threads_spawned"
let obs_machine_runs = Obs.Registry.counter "sched.machine_runs"
let obs_pct_changes = Obs.Registry.counter "sched.pct_priority_changes"

let obs_runnable =
  Obs.Registry.histogram ~bounds:[| 1; 2; 4; 8; 16; 32 |] "sched.runnable"

type resume =
  | Start of (unit -> unit)
  | Resume of (unit, unit) Effect.Deep.continuation

type thread = {
  t_tid : int;
  mutable cont : resume option;
  mutable runnable : bool;
  mutable finished : bool;
  mutable delay : int;
  mutable joiners : int list;
  mutable frames : string list;
  mutable priority : int; (* PCT priority; drawn at spawn under [Pct] *)
  mutable held_locks : Trace.Lock_id.t list;
      (* instrumented locks currently held; mirrors what the lockset
         analysis will compute for this thread at the same point *)
}

type t = {
  heap : Pmem.Heap.t;
  pm : Pmem.Region.t; (* which addresses are PM (mmap'ed PM files, §4) *)
  mutable decisions : int; (* scheduling decisions taken (Scripted) *)
  trace : Trace.Tracebuf.t;
  policy : policy;
  sync_config : Sync_config.t;
  prng : Prng.t;
  mutable threads : thread array;
  mutable nthreads : int;
  mutable last_scheduled : int;
  mutable events : int;
  mutable fences : int; (* fences retired, for crash_after_fences *)
  crash_after : int option;
  crash_after_fences : int option;
  mutable crashed : bool;
  mutable failure : exn option;
  mutable next_lock_id : int;
  (* PCT state: change points remaining, and the next (decreasing)
     priority a demoted thread receives — always below every initial
     priority, so a demotion is permanent until the run ends. *)
  mutable pct_changes_left : int;
  mutable pct_low : int;
  observe : bool;
  last_store : (int, Trace.Tid.t * Trace.Site.t * Trace.Lock_id.t list) Hashtbl.t;
  (* word index -> last writer, its site, and its lockset at store time *)
  obs_seen : (string * string * bool, unit) Hashtbl.t;
  mutable observations : observation list;
}

type ctx = { m : t; self : thread }
type pos = string * int * int * int

type _ Effect.t +=
  | Switch : unit Effect.t
  | Park_self : unit Effect.t
  | Crash_stop : unit Effect.t

(* --- scheduler core ------------------------------------------------- *)

let add_thread m thunk =
  let th =
    {
      t_tid = m.nthreads;
      cont = Some (Start thunk);
      runnable = true;
      finished = false;
      delay = 0;
      joiners = [];
      frames = [];
      (* Under PCT every thread draws a random (high, positive) initial
         priority at spawn; other policies never read the field. *)
      priority =
        (match m.policy with
        | Pct _ -> 1 + Prng.int m.prng 0x3FFFFFFF
        | _ -> 0);
      held_locks = [];
    }
  in
  if m.nthreads = Array.length m.threads then begin
    let bigger = Array.make (2 * max 1 m.nthreads) th in
    Array.blit m.threads 0 bigger 0 m.nthreads;
    m.threads <- bigger
  end;
  m.threads.(m.nthreads) <- th;
  m.nthreads <- m.nthreads + 1;
  Obs.Metric.incr obs_spawned;
  th

let eligible m =
  let out = ref [] in
  for i = m.nthreads - 1 downto 0 do
    let th = m.threads.(i) in
    if th.runnable && (not th.finished) && th.cont <> None then
      out := th :: !out
  done;
  !out

(* Highest PCT priority wins; ties (only possible after an improbable
   equal draw) go to the lowest tid, keeping the pick deterministic. *)
let pct_top pool =
  List.fold_left
    (fun best th ->
      if
        th.priority > best.priority
        || (th.priority = best.priority && th.t_tid < best.t_tid)
      then th
      else best)
    (List.hd pool) (List.tl pool)

let pick_next m =
  match eligible m with
  | [] -> None
  | candidates -> (
      (* Delay injection: delayed threads step their counter each round and
         are skipped while other work exists. *)
      let ready = List.filter (fun th -> th.delay = 0) candidates in
      List.iter
        (fun th -> if th.delay > 0 then th.delay <- th.delay - 1)
        candidates;
      let pool = if ready = [] then candidates else ready in
      Obs.Metric.observe obs_runnable (List.length pool);
      match m.policy with
      | Round_robin -> (
          (* Next runnable thread after the last scheduled, wrapping. *)
          match List.filter (fun th -> th.t_tid > m.last_scheduled) pool with
          | th :: _ -> Some th
          | [] -> ( match pool with th :: _ -> Some th | [] -> None))
      | Scripted choices ->
          let i = m.decisions in
          m.decisions <- i + 1;
          let pick =
            if i < Array.length choices then
              choices.(i) mod List.length pool
            else 0
          in
          Some (List.nth pool (abs pick))
      | Pct _ ->
          (* PCT (Burckhardt et al.): run the highest-priority runnable
             thread; at up to [depth - 1] randomly placed change points,
             permanently demote the current top below everyone else. Two
             deviations from strict PCT keep the cooperative machine
             live: the change points are geometric (one chance in 64 per
             decision while budget remains) rather than pre-drawn event
             indices, and one decision in 16 picks uniformly instead of
             by priority — without that escape hatch a top-priority
             thread spinning on a yield-loop lock held by a demoted
             thread would spin forever. *)
          if m.pct_changes_left > 0 && Prng.int m.prng 64 = 0 then begin
            m.pct_changes_left <- m.pct_changes_left - 1;
            let top = pct_top pool in
            top.priority <- m.pct_low;
            m.pct_low <- m.pct_low - 1;
            Obs.Metric.incr obs_pct_changes
          end;
          if Prng.int m.prng 16 = 0 then
            Some (List.nth pool (Prng.int m.prng (List.length pool)))
          else Some (pct_top pool)
      | Random_interleave | Delay_injection _ | Targeted_delay _ ->
          Some (List.nth pool (Prng.int m.prng (List.length pool))))

let rec schedule m =
  if m.crashed || m.failure <> None then begin
    (* Drop every remaining fiber: a crash (or an application exception)
       stops the machine; unresumed continuations are simply abandoned. *)
    for i = 0 to m.nthreads - 1 do
      let th = m.threads.(i) in
      th.cont <- None;
      th.finished <- true
    done
  end
  else
    match pick_next m with
    | None -> ()
    | Some th -> (
        if th.t_tid <> m.last_scheduled then Obs.Metric.incr obs_switches;
        m.last_scheduled <- th.t_tid;
        match th.cont with
        | None -> assert false
        | Some (Start thunk) ->
            th.cont <- None;
            exec_fiber m th thunk
        | Some (Resume k) ->
            th.cont <- None;
            Effect.Deep.continue k ())

and exec_fiber m th thunk =
  let open Effect.Deep in
  match_with thunk ()
    {
      retc =
        (fun () ->
          th.finished <- true;
          th.cont <- None;
          List.iter
            (fun j ->
              let waiter = m.threads.(j) in
              waiter.runnable <- true)
            th.joiners;
          th.joiners <- [];
          schedule m);
      exnc =
        (fun e ->
          if m.failure = None then m.failure <- Some e;
          th.finished <- true;
          th.cont <- None;
          schedule m);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Switch ->
              Some
                (fun (k : (a, unit) continuation) ->
                  th.cont <- Some (Resume k);
                  th.runnable <- true;
                  schedule m)
          | Park_self ->
              Some
                (fun (k : (a, unit) continuation) ->
                  th.cont <- Some (Resume k);
                  th.runnable <- false;
                  schedule m)
          | Crash_stop ->
              Some
                (fun (_k : (a, unit) continuation) ->
                  m.crashed <- true;
                  th.finished <- true;
                  th.cont <- None;
                  schedule m)
          | _ -> None);
    }

(* --- instrumentation ------------------------------------------------ *)

let sched_point _ctx =
  Obs.Metric.incr obs_sched_points;
  Effect.perform Switch

let check_crash m =
  (match m.crash_after with
  | Some budget when m.events >= budget -> Effect.perform Crash_stop
  | Some _ | None -> ());
  match m.crash_after_fences with
  | Some n when m.fences >= n -> Effect.perform Crash_stop
  | Some _ | None -> ()

let emit ctx ev =
  Trace.Tracebuf.push ctx.m.trace ev;
  ctx.m.events <- ctx.m.events + 1

let site ctx ((file, line, _, _) : pos) =
  Trace.Site.v ~frames:ctx.self.frames file line

let tid ctx = Trace.Tid.of_int ctx.self.t_tid
let heap ctx = ctx.m.heap
let random ctx = ctx.m.prng
let yield ctx = sched_point ctx

let spawn ctx body =
  check_crash ctx.m;
  let m = ctx.m in
  let child_slot = m.nthreads in
  let rec th_ref = ref None
  and thunk () =
    match !th_ref with
    | None -> assert false
    | Some th -> body { m; self = th }
  in
  let th = add_thread m thunk in
  th_ref := Some th;
  assert (th.t_tid = child_slot);
  emit ctx
    (Trace.Event.Thread_create
       { parent = tid ctx; child = Trace.Tid.of_int child_slot });
  sched_point ctx;
  Trace.Tid.of_int child_slot

let join ctx target =
  check_crash ctx.m;
  let m = ctx.m in
  let target_i = Trace.Tid.to_int target in
  if target_i < 0 || target_i >= m.nthreads then
    invalid_arg "Sched.join: unknown thread";
  let target_th = m.threads.(target_i) in
  while not target_th.finished do
    target_th.joiners <- ctx.self.t_tid :: target_th.joiners;
    Effect.perform Park_self
  done;
  emit ctx (Trace.Event.Thread_join { waiter = tid ctx; joined = target });
  sched_point ctx

let maybe_delay ctx st =
  match ctx.m.policy with
  | Delay_injection { probability; duration } ->
      if Prng.float ctx.m.prng 1.0 < probability then begin
        Obs.Metric.incr obs_delays;
        ctx.self.delay <- duration
      end
  | Targeted_delay { store_loc; duration } ->
      if String.equal (Trace.Site.location st) store_loc then begin
        Obs.Metric.incr obs_delays;
        ctx.self.delay <- duration
      end
  | Random_interleave | Round_robin | Scripted _ | Pct _ -> ()

let record_store_words ctx ~addr ~size ~site:st =
  if ctx.m.observe then
    let held = ctx.self.held_locks in
    Pmem.Layout.iter_words addr size (fun w ->
        Hashtbl.replace ctx.m.last_store w (tid ctx, st, held))

let check_observation ?(rmw = false) ctx ~addr ~size ~site:load_site =
  if ctx.m.observe then
    let me = tid ctx in
    Pmem.Layout.iter_words addr size (fun w ->
        match Hashtbl.find_opt ctx.m.last_store w with
        | Some (writer, store_site, store_locks)
          when not (Trace.Tid.equal writer me) ->
            if
              not
                (Pmem.Heap.persisted_range ctx.m.heap
                   ~addr:(w * Pmem.Layout.word_size)
                   ~size:Pmem.Layout.word_size)
            then begin
              (* A common instrumented lock means the pair is ordered
                 under Definition 1: still an inter-thread unpersisted
                 read (observation-based detectors flag it), but out of
                 scope for the lockset analysis. A successful CAS
                 ([rmw]) is likewise out of scope: its read closes the
                 store's window itself, with a vector clock equal to
                 the load's, so Algorithm 1's clock comparison cannot
                 place the read inside the window. *)
              let racy =
                (not rmw)
                && not
                     (List.exists
                        (fun l -> List.mem l ctx.self.held_locks)
                        store_locks)
              in
              let key =
                ( Trace.Site.location store_site,
                  Trace.Site.location load_site,
                  racy )
              in
              if not (Hashtbl.mem ctx.m.obs_seen key) then begin
                Hashtbl.add ctx.m.obs_seen key ();
                ctx.m.observations <-
                  {
                    obs_store_site = store_site;
                    obs_load_site = load_site;
                    obs_addr = w * Pmem.Layout.word_size;
                    obs_racy = racy;
                  }
                  :: ctx.m.observations
              end
            end
        | Some _ | None -> ())

let do_store ctx p addr size ~non_temporal write =
  check_crash ctx.m;
  write ctx.m.heap;
  if Pmem.Region.is_pm ctx.m.pm addr then begin
    (* Only accesses inside registered PM regions are instrumented; the
       rest is ordinary volatile memory the analysis never sees (§4). *)
    let st = site ctx p in
    Pmem.Heap.note_store ctx.m.heap ~tid:(tid ctx) ~addr ~size ~non_temporal;
    record_store_words ctx ~addr ~size ~site:st;
    emit ctx
      (Trace.Event.Store { tid = tid ctx; addr; size; site = st; non_temporal });
    maybe_delay ctx st
  end;
  sched_point ctx

let do_load ctx p addr size read =
  check_crash ctx.m;
  let v = read ctx.m.heap in
  if Pmem.Region.is_pm ctx.m.pm addr then begin
    let st = site ctx p in
    check_observation ctx ~addr ~size ~site:st;
    emit ctx (Trace.Event.Load { tid = tid ctx; addr; size; site = st })
  end;
  sched_point ctx;
  v

let store_i64 ctx p addr v =
  do_store ctx p addr 8 ~non_temporal:false (fun h ->
      Pmem.Heap.write_i64 h addr v)

let store_i64_nt ctx p addr v =
  do_store ctx p addr 8 ~non_temporal:true (fun h ->
      Pmem.Heap.write_i64 h addr v)

let load_i64 ctx p addr =
  do_load ctx p addr 8 (fun h -> Pmem.Heap.read_i64 h addr)

let store_u8 ctx p addr v =
  do_store ctx p addr 1 ~non_temporal:false (fun h ->
      Pmem.Heap.write_u8 h addr v)

let load_u8 ctx p addr =
  do_load ctx p addr 1 (fun h -> Pmem.Heap.read_u8 h addr)

let store_bytes ctx p addr b =
  do_store ctx p addr (Bytes.length b) ~non_temporal:false (fun h ->
      Pmem.Heap.write_bytes h addr b)

let load_bytes ctx p addr len =
  do_load ctx p addr len (fun h -> Pmem.Heap.read_bytes h addr len)

let cas_i64 ctx p addr ~expected ~desired =
  check_crash ctx.m;
  let st = site ctx p in
  let current = Pmem.Heap.read_i64 ctx.m.heap addr in
  let success = Int64.equal current expected in
  check_observation ctx ~rmw:success ~addr ~size:8 ~site:st;
  emit ctx (Trace.Event.Load { tid = tid ctx; addr; size = 8; site = st });
  if success then begin
    Pmem.Heap.write_i64 ctx.m.heap addr desired;
    Pmem.Heap.note_store ctx.m.heap ~tid:(tid ctx) ~addr ~size:8
      ~non_temporal:false;
    record_store_words ctx ~addr ~size:8 ~site:st;
    emit ctx
      (Trace.Event.Store
         { tid = tid ctx; addr; size = 8; site = st; non_temporal = false });
    maybe_delay ctx st
  end;
  sched_point ctx;
  success

let flush_line ctx p addr =
  check_crash ctx.m;
  if Pmem.Region.is_pm ctx.m.pm addr then begin
    let line = Pmem.Layout.line_of addr in
    Pmem.Heap.flush ctx.m.heap ~tid:(tid ctx) ~line;
    emit ctx
      (Trace.Event.Flush
         { tid = tid ctx; line; kind = Trace.Event.Clwb; site = site ctx p })
  end;
  sched_point ctx

let flush_range ctx p addr size =
  List.iter
    (fun line -> flush_line ctx p line)
    (Pmem.Layout.lines_of_range addr size)

let fence ctx p =
  check_crash ctx.m;
  Pmem.Heap.fence ctx.m.heap ~tid:(tid ctx);
  emit ctx (Trace.Event.Fence { tid = tid ctx; site = site ctx p });
  ctx.m.fences <- ctx.m.fences + 1;
  sched_point ctx

let persist ctx p addr size =
  flush_range ctx p addr size;
  fence ctx p

let alloc ctx ?align n = Pmem.Heap.alloc ?align ctx.m.heap n
let free ctx ~addr ~size = Pmem.Heap.free ctx.m.heap ~addr ~size

let with_frame ctx name f =
  ctx.self.frames <- name :: ctx.self.frames;
  Fun.protect
    ~finally:(fun () ->
      match ctx.self.frames with
      | _ :: rest -> ctx.self.frames <- rest
      | [] -> ())
    f

let fresh_lock_id ctx =
  let id = ctx.m.next_lock_id in
  ctx.m.next_lock_id <- id + 1;
  Trace.Lock_id.of_int id

(* Acquire/release are scheduling points even for primitives the
   configuration does not instrument: a real lock is a compiled function
   whose execution the OS can preempt — without the yield, a releasing
   thread could atomically re-acquire and starve everyone else. *)
let emit_acquire ctx p ~primitive lock =
  check_crash ctx.m;
  if Sync_config.is_instrumented ctx.m.sync_config primitive then begin
    ctx.self.held_locks <- lock :: ctx.self.held_locks;
    emit ctx
      (Trace.Event.Lock_acquire { tid = tid ctx; lock; site = site ctx p })
  end;
  sched_point ctx

(* Unlike acquisition, releasing must NOT yield between the event and the
   state change: callers free the lock first and then call {!yield}
   themselves, so the scheduler always sees a window in which the lock is
   available — otherwise a tight lock/unlock loop starves every other
   thread deterministically. *)
let emit_release ctx p ~primitive lock =
  check_crash ctx.m;
  if Sync_config.is_instrumented ctx.m.sync_config primitive then begin
    (* drop one occurrence — reentrant acquires stack *)
    let rec drop = function
      | [] -> []
      | l :: rest ->
          if Trace.Lock_id.equal l lock then rest else l :: drop rest
    in
    ctx.self.held_locks <- drop ctx.self.held_locks;
    emit ctx
      (Trace.Event.Lock_release { tid = tid ctx; lock; site = site ctx p })
  end

let park _ctx = Effect.perform Park_self

let unpark ctx target =
  let i = Trace.Tid.to_int target in
  if i < 0 || i >= ctx.m.nthreads then invalid_arg "Sched.unpark";
  ctx.m.threads.(i).runnable <- true

(* --- entry point ----------------------------------------------------- *)

let run ?(seed = 0) ?(policy = Random_interleave)
    ?(sync_config = Sync_config.builtin) ?crash_after_events
    ?crash_after_fences ?(observe = false) ?pm_regions ~heap main =
  let pm =
    match pm_regions with
    | Some r -> r
    | None -> Pmem.Region.all_pm ~size:(Pmem.Heap.size heap)
  in
  let m =
    {
      heap;
      pm;
      decisions = 0;
      trace = Trace.Tracebuf.create ~capacity:4096 ();
      policy;
      sync_config;
      prng = Prng.create seed;
      threads = [||];
      nthreads = 0;
      last_scheduled = -1;
      events = 0;
      fences = 0;
      crash_after = crash_after_events;
      crash_after_fences;
      crashed = false;
      failure = None;
      next_lock_id = 0;
      pct_changes_left =
        (match policy with Pct { depth } -> max 0 (depth - 1) | _ -> 0);
      pct_low = -1;
      observe;
      last_store = Hashtbl.create (if observe then 4096 else 1);
      obs_seen = Hashtbl.create 64;
      observations = [];
    }
  in
  let rec main_ref = ref None
  and thunk () =
    match !main_ref with
    | None -> assert false
    | Some th -> main { m; self = th }
  in
  let th = add_thread m thunk in
  main_ref := Some th;
  Obs.Metric.incr obs_machine_runs;
  Obs.Logger.debug ~section:"sched" (fun () ->
      Printf.sprintf "machine start: seed=%d observe=%b" seed observe);
  schedule m;
  (match m.failure with Some e -> raise e | None -> ());
  if not m.crashed then begin
    let stuck =
      Array.to_list (Array.sub m.threads 0 m.nthreads)
      |> List.filter (fun th -> not th.finished)
    in
    if stuck <> [] then
      raise
        (Deadlock
           (String.concat ", "
              (List.map (fun th -> Printf.sprintf "T%d" th.t_tid) stuck)))
  end;
  {
    outcome = (if m.crashed then Crashed else Completed);
    trace = m.trace;
    event_count = m.events;
    observations = List.rev m.observations;
    thread_count = m.nthreads;
  }
