(** Instrumented concurrent PM runtime.

    This module plays the role of Intel PIN plus the hardware in the
    paper's pipeline (Figure 4, stage 1): applications run as cooperative
    fibers (OCaml effect handlers) on a deterministic seeded scheduler, and
    every PM access, persistency instruction, synchronization operation and
    thread lifecycle event is recorded into a {!Trace.Tracebuf.t} — the
    exact event stream HawkSet's analysis consumes.

    Every instrumented operation is a scheduling point, so thread
    interleavings happen at the granularity that matters for
    persistency-induced races. Executions are replayable: the trace is a
    pure function of (program, heap contents, seed, policy). *)

type t
(** A running machine (scheduler + instrumentation state). *)

type ctx
(** A thread's handle on the machine. Every instrumented operation takes
    the calling thread's [ctx]. *)

(** Scheduling policies. *)
type policy =
  | Random_interleave  (** Uniform choice among runnable threads. *)
  | Round_robin
  | Delay_injection of { probability : float; duration : int }
      (** Random interleaving, plus: after a PM store, with the given
          probability the storing thread is descheduled for [duration]
          scheduling rounds — widening the window in which other threads
          can observe the unpersisted data. This is the PMRace baseline's
          search heuristic (§6.3). *)
  | Targeted_delay of { store_loc : string; duration : int }
      (** Random interleaving, plus: a thread that stores at the
          ["file:line"] location [store_loc] is descheduled for
          [duration] rounds — the Durinn baseline's adversarial
          interleaving around one suspected access (§6.3's
          "breakpoints at the relevant points"). *)
  | Scripted of int array
      (** Fully deterministic replay: at the [i]-th scheduling decision,
          pick runnable thread number [choices.(i) mod runnable_count]
          (first runnable once the script is exhausted). Enumerating
          scripts enumerates interleavings — used to exhibit concrete
          witness schedules for reported races. *)
  | Pct of { depth : int }
      (** Probabilistic concurrency testing (PCT): every thread draws a
          random priority at spawn and the scheduler runs the
          highest-priority runnable thread, demoting the current top
          below everyone else at up to [depth - 1] randomly placed
          change points — biased towards the rare orderings a uniform
          random walk almost never produces. Change points are placed
          geometrically (one chance in 64 per decision) rather than at
          pre-drawn event indices, and one decision in 16 falls back to
          a uniform pick so threads spinning on a yield-loop lock held
          by a demoted thread cannot starve it forever. Like every
          policy, the schedule is a pure function of the seed. *)

type outcome =
  | Completed
  | Crashed  (** The run was cut short by [crash_after_events]. *)

(** A directly-observed inter-thread inconsistency: a load that read bytes
    last written by another thread and not yet guaranteed persistent. The
    PMRace baseline reports races only from these observations. *)
type observation = {
  obs_store_site : Trace.Site.t;
  obs_load_site : Trace.Site.t;
  obs_addr : int;
  obs_racy : bool;
      (** [true] when the read is in scope for the lockset analysis:
          no instrumented lock was held by both the storing thread (at
          store time) and the loading thread (at load time), and the
          read is not a successful CAS. Such observations are
          concurrent under Definition 1 and must also be found by the
          lockset analysis. [false] marks the two exclusions visible
          only to observation-based detection: a common lock orders
          the pair, and a successful CAS's read closes the store's
          window itself, with a vector clock equal to the load's, so
          Algorithm 1's clock comparison prunes it. *)
}

type report = {
  outcome : outcome;
  trace : Trace.Tracebuf.t;
  event_count : int;
  observations : observation list;
      (** Empty unless [observe:true] was passed to {!run}. *)
  thread_count : int;
}

exception Deadlock of string
(** Raised when no thread is runnable but parked threads remain. *)

val run :
  ?seed:int ->
  ?policy:policy ->
  ?sync_config:Sync_config.t ->
  ?crash_after_events:int ->
  ?crash_after_fences:int ->
  ?observe:bool ->
  ?pm_regions:Pmem.Region.t ->
  heap:Pmem.Heap.t ->
  (ctx -> unit) ->
  report
(** [run ~heap main] executes [main] as the initial thread and returns
    once every spawned thread has finished (or the crash budget fired).
    [crash_after_events:n] stops the machine at the first instrumented
    operation once [n] events have been recorded;
    [crash_after_fences:n] at the first instrumented operation after the
    [n]-th fence retires — the crash points the crash sweep enumerates
    (every persist boundary). Both may be given; whichever fires first
    stops the run. Defaults: [seed = 0], [policy = Random_interleave],
    [sync_config = Sync_config.builtin], no crash, [observe = false].
    [pm_regions] registers which address ranges are mmap'ed PM files
    (§4/§A.5): accesses outside them are ordinary volatile memory —
    executed but not traced. By default the whole heap is one PM region.
    Application exceptions propagate to the caller. *)

(** {1 Thread operations} *)

val tid : ctx -> Trace.Tid.t
val heap : ctx -> Pmem.Heap.t

val spawn : ctx -> (ctx -> unit) -> Trace.Tid.t
(** Creates a thread; emits [Thread_create]. The child starts at a later
    scheduling decision. *)

val join : ctx -> Trace.Tid.t -> unit
(** Blocks until the thread finishes; emits [Thread_join] at completion
    time (the point at which the joined thread's history becomes ordered
    before the waiter's, §3.1.2). *)

val yield : ctx -> unit
(** A bare scheduling point (no event emitted). *)

type pos = string * int * int * int
(** [__POS__]: instrumented operations take the source position of the
    access so reports carry real [file:line] sites like Table 2. *)

(** {1 PM accesses}

    All addresses index the machine's heap. Each access writes/reads the
    volatile image, updates the cache simulation, emits its event and
    yields to the scheduler. *)

val store_i64 : ctx -> pos -> int -> int64 -> unit
val store_i64_nt : ctx -> pos -> int -> int64 -> unit
(** Non-temporal store: bypasses the cache; needs only a fence. *)

val load_i64 : ctx -> pos -> int -> int64
val store_u8 : ctx -> pos -> int -> int -> unit
val load_u8 : ctx -> pos -> int -> int
val store_bytes : ctx -> pos -> int -> bytes -> unit
val load_bytes : ctx -> pos -> int -> int -> bytes

val cas_i64 : ctx -> pos -> int -> expected:int64 -> desired:int64 -> bool
(** Atomic compare-and-swap on a PM word: emits a [Load] and, on success,
    a [Store], with no scheduling point in between. *)

(** {1 Persistency instructions} *)

val flush_line : ctx -> pos -> int -> unit
(** [flush_line ctx p addr] issues a [clwb] of the cache line containing
    [addr]. *)

val flush_range : ctx -> pos -> int -> int -> unit
(** Flushes every line touched by [addr, addr+size). *)

val fence : ctx -> pos -> unit
(** [sfence]: completes the calling thread's pending flushes and
    non-temporal stores. *)

val persist : ctx -> pos -> int -> int -> unit
(** [flush_range] followed by [fence] — the canonical persist idiom. *)

(** {1 PM allocation} *)

val alloc : ctx -> ?align:int -> int -> int
val free : ctx -> addr:int -> size:int -> unit

(** {1 Backtraces} *)

val with_frame : ctx -> string -> (unit -> 'a) -> 'a
(** [with_frame ctx "insert" f] runs [f] with ["insert"] pushed on the
    thread's call stack; sites recorded inside carry the stack (the
    paper's cheap call/return instrumentation, §4). *)

(** {1 Internals for synchronization primitives}

    Used by {!Mutex}, {!Rwlock} and {!Spinlock}; applications normally do
    not call these directly. *)

val fresh_lock_id : ctx -> Trace.Lock_id.t

val emit_acquire : ctx -> pos -> primitive:string -> Trace.Lock_id.t -> unit
(** Emits [Lock_acquire] — only when [primitive] is instrumented by the
    machine's {!Sync_config}. *)

val emit_release : ctx -> pos -> primitive:string -> Trace.Lock_id.t -> unit
(** Emits [Lock_release]; does {e not} yield — primitives release their
    state and then {!yield}, so other threads observe the free lock. *)

val park : ctx -> unit
(** Blocks the calling thread until {!unpark}. *)

val unpark : ctx -> Trace.Tid.t -> unit
(** Makes a parked thread runnable again (callable from any thread). *)

val random : ctx -> Prng.t
(** The machine's PRNG (shared); for deterministic in-app randomness. *)
