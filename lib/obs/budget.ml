(* Wall-clock / live-heap budget enforcement from a Gc.alarm. See the
   .mli for the (deliberate) best-effort semantics. *)

exception Exceeded of [ `Wall | `Heap ] * float

let word_mb words =
  float_of_int words *. float_of_int (Sys.word_size / 8) /. (1024.0 *. 1024.0)

let with_guard ?wall_s ?heap_mb f =
  match (wall_s, heap_mb) with
  | None, None -> f ()
  | _ ->
      let t0 = Unix.gettimeofday () in
      (* [armed] gates the alarm so the exception can only surface while
         [f] runs: the finally flips it (no allocation) before deleting
         the alarm. [Gc.stat] walks the heap; the reentrancy flag keeps a
         check from observing itself. *)
      let armed = ref true in
      let inside = ref false in
      let check () =
        if !armed && not !inside then begin
          inside := true;
          Fun.protect
            ~finally:(fun () -> inside := false)
            (fun () ->
              (match wall_s with
              | Some budget ->
                  let dt = Unix.gettimeofday () -. t0 in
                  if dt > budget then begin
                    armed := false;
                    raise (Exceeded (`Wall, dt))
                  end
              | None -> ());
              match heap_mb with
              | Some budget ->
                  let live = word_mb (Gc.stat ()).Gc.live_words in
                  if live > budget then begin
                    armed := false;
                    raise (Exceeded (`Heap, live))
                  end
              | None -> ())
        end
      in
      let alarm = Gc.create_alarm check in
      Fun.protect
        ~finally:(fun () ->
          armed := false;
          Gc.delete_alarm alarm)
        (fun () ->
          check ();
          f ())
