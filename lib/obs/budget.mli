(** Per-run wall-clock and live-heap budgets, polled from a [Gc.alarm].

    The supervisor wraps each batch attempt in {!with_guard}: a
    [Gc.alarm] fires at the end of every major collection and checks the
    elapsed wall clock and the live heap against the budgets, raising
    {!Exceeded} {e asynchronously} (the exception surfaces at whatever
    allocation point triggered the collection) when one is blown. This
    is the same machinery the peak-heap sampler uses, pointed at
    enforcement instead of measurement.

    Best-effort by construction: code that stops allocating is never
    interrupted (the pipeline's own cooperative deadlines cover the
    analysis stages), and the heap check only sees the state at major
    collection boundaries. Both caveats are acceptable for supervision —
    the guard exists to turn a runaway attempt into a classified,
    retryable failure instead of a lost campaign. *)

exception Exceeded of [ `Wall | `Heap ] * float
(** Which budget was blown and the observed value: elapsed seconds for
    [`Wall], live megabytes for [`Heap]. *)

val with_guard : ?wall_s:float -> ?heap_mb:float -> (unit -> 'a) -> 'a
(** [with_guard ?wall_s ?heap_mb f] runs [f] under the budgets. With
    neither budget set this is just [f ()] — no alarm is installed. The
    alarm is disarmed and removed when [f] returns or raises, so
    {!Exceeded} can only surface from inside [f]. Budgets are also
    checked synchronously once on entry. *)
