(* Domain-local counter buffers: cells are private mutable ints keyed by
   counter name; flush drains them into the target registry with
   Metric.add. The hot path (incr/add on a cell) touches no shared state,
   so a buffer can live on a spawned domain while the registry stays on
   the coordinator. *)

type cell = { bc_name : string; mutable bc_value : int }

type t = {
  registry : Registry.t;
  by_name : (string, cell) Hashtbl.t;
  mutable order : cell list; (* creation order, for a stable fold *)
}

let create ?(registry = Registry.global) () =
  { registry; by_name = Hashtbl.create 16; order = [] }

let cell t name =
  match Hashtbl.find_opt t.by_name name with
  | Some c -> c
  | None ->
      let c = { bc_name = name; bc_value = 0 } in
      Hashtbl.add t.by_name name c;
      t.order <- c :: t.order;
      c

let incr c = c.bc_value <- c.bc_value + 1
let add c n = c.bc_value <- c.bc_value + n
let value c = c.bc_value

let cells t =
  Hashtbl.fold (fun name c acc -> (name, c.bc_value) :: acc) t.by_name []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let flush t =
  List.iter
    (fun c ->
      if c.bc_value <> 0 then
        Metric.add (Registry.counter ~registry:t.registry c.bc_name) c.bc_value;
      c.bc_value <- 0)
    (List.rev t.order)
