(** Domain-local counter buffers.

    {!Registry.t} and its {!Metric.counter} cells are plain mutable state:
    bumping them from several domains at once is a data race and makes the
    resulting values depend on the interleaving. A parallel stage instead
    gives each domain its own buffer, bumps cells on the hot path without
    touching any shared state, and the coordinating domain flushes every
    buffer into the global registry after joining the producers. Flushing
    {e adds}, so flush order never affects the resulting counter values —
    the snapshot stays byte-identical to a sequential run that did the
    same logical work. *)

type t
(** A private accumulation area bound to one target registry. *)

type cell
(** One buffered counter, named after the registry counter it feeds. *)

val create : ?registry:Registry.t -> unit -> t
(** A buffer that {!flush} will drain into [registry] (default
    {!Registry.global}). Creation does not touch the registry. *)

val cell : t -> string -> cell
(** Find-or-create the buffered cell for the counter named [name]. *)

val incr : cell -> unit

val add : cell -> int -> unit

val value : cell -> int
(** Pending (unflushed) value of the cell. *)

val cells : t -> (string * int) list
(** Pending values, sorted by name. *)

val flush : t -> unit
(** Add every cell's pending value into the registry counter of the same
    name (find-or-create) and zero the cell. Must run on a domain with
    exclusive access to the target registry — i.e. after the producing
    domains have been joined. *)
