(* Span clock. [Unix.gettimeofday] is the only sub-second clock the
   toolchain ships without third-party stubs; the source is swappable so
   tests (and any embedder with a true monotonic source) can inject one.
   Span arithmetic clamps negative intervals, so a stepped wall clock can
   skew a measurement but never corrupt the aggregate. *)

let source = ref Unix.gettimeofday
let set_source f = source := f
let now () = !source ()
