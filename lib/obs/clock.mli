(** Clock source for spans. Defaults to [Unix.gettimeofday]; injectable for
    deterministic tests or a proper monotonic source. *)

val now : unit -> float
val set_source : (unit -> float) -> unit
