(* Minimal JSON writer — enough for manifests and bench trajectories.
   Emission only: the observability layer never parses JSON. *)

let escape s =
  let b = Stdlib.Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Stdlib.Buffer.add_string b "\\\""
      | '\\' -> Stdlib.Buffer.add_string b "\\\\"
      | '\n' -> Stdlib.Buffer.add_string b "\\n"
      | '\r' -> Stdlib.Buffer.add_string b "\\r"
      | '\t' -> Stdlib.Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Stdlib.Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Stdlib.Buffer.add_char b c)
    s;
  Stdlib.Buffer.contents b

let str s = "\"" ^ escape s ^ "\""
let int = string_of_int

(* Fixed-point, never scientific: stable field shape across platforms. *)
let float f =
  if Float.is_nan f then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%.6f" f

let bool = string_of_bool
let arr items = "[" ^ String.concat "," items ^ "]"

let obj fields =
  "{"
  ^ String.concat "," (List.map (fun (k, v) -> str k ^ ":" ^ v) fields)
  ^ "}"
