(** Minimal JSON emission (no parsing). Floats print in fixed point so
    field shapes are stable across platforms; NaN becomes [null]. *)

val escape : string -> string
val str : string -> string
val int : int -> string
val float : float -> string
val bool : bool -> string
val arr : string list -> string
val obj : (string * string) list -> string
