(* Leveled logger with a silent-by-default sink. Messages are closures so
   disabled levels cost one branch; the sink is a plain function ref so
   the CLI (or a test) can route output anywhere without a dependency. *)

type level = Quiet | Error | Warn | Info | Debug

let severity = function
  | Quiet -> 0
  | Error -> 1
  | Warn -> 2
  | Info -> 3
  | Debug -> 4

let level_name = function
  | Quiet -> "quiet"
  | Error -> "error"
  | Warn -> "warn"
  | Info -> "info"
  | Debug -> "debug"

let level_of_string s =
  match String.lowercase_ascii s with
  | "quiet" | "none" | "off" -> Some Quiet
  | "error" -> Some Error
  | "warn" | "warning" -> Some Warn
  | "info" -> Some Info
  | "debug" -> Some Debug
  | _ -> None

let current = ref Quiet
let set_level l = current := l
let level () = !current

let sink : (level -> string -> string -> unit) ref = ref (fun _ _ _ -> ())
let set_sink f = sink := f

let stderr_sink level section msg =
  Printf.eprintf "[%-5s] %s: %s\n%!" (level_name level) section msg

let enabled l = severity l <= severity !current && severity l > 0

let log l ~section msg = if enabled l then !sink l section (msg ())

let err ?(section = "hawkset") msg = log Error ~section msg
let warn ?(section = "hawkset") msg = log Warn ~section msg
let info ?(section = "hawkset") msg = log Info ~section msg
let debug ?(section = "hawkset") msg = log Debug ~section msg
