(** Leveled logger, silent by default.

    Messages are thunks: below the active level nothing is formatted. The
    default sink drops everything even at high levels — a front end must
    install one (e.g. {!stderr_sink}) for output to appear, keeping
    libraries free of I/O policy. *)

type level = Quiet | Error | Warn | Info | Debug

val set_level : level -> unit
val level : unit -> level
val level_name : level -> string
val level_of_string : string -> level option
val enabled : level -> bool

val set_sink : (level -> string -> string -> unit) -> unit
(** [set_sink f]: [f level section message] receives enabled messages. *)

val stderr_sink : level -> string -> string -> unit

val err : ?section:string -> (unit -> string) -> unit
val warn : ?section:string -> (unit -> string) -> unit
val info : ?section:string -> (unit -> string) -> unit
val debug : ?section:string -> (unit -> string) -> unit
