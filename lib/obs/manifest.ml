(* A run manifest: one machine-readable record per run, splitting what is
   reproducible from what is measured. [counters] and [histograms] are
   deterministic for a fixed scheduler seed — byte-identical across runs —
   while [stages] (span timings) and [gauges] (heap sizes, wall clock)
   carry real measurements and live in separate fields so consumers can
   diff the former and plot the latter. *)

let schema = "hawkset.run_manifest/1"

type stage = { stage_name : string; stage_count : int; stage_seconds : float }

type t = {
  labels : (string * string) list; (* app, detector, seed, ... *)
  counters : (string * int) list;
  histograms : (string * (string * int) list) list;
  stages : stage list;
  gauges : (string * float) list;
}

let make ?(labels = []) ?(counters = []) ?(histograms = []) ?(stages = [])
    ?(gauges = []) () =
  { labels; counters; histograms; stages; gauges }

let of_registry ?(labels = []) ?(extra_gauges = []) reg =
  {
    labels;
    counters = Registry.counters reg;
    histograms = Registry.histograms reg;
    stages =
      List.map
        (fun (path, (count, seconds)) ->
          { stage_name = path; stage_count = count; stage_seconds = seconds })
        (Registry.spans reg);
    gauges =
      List.sort
        (fun (a, _) (b, _) -> String.compare a b)
        (Registry.gauges reg @ extra_gauges);
  }

let label t key = List.assoc_opt key t.labels
let counter t key = List.assoc_opt key t.counters
let gauge t key = List.assoc_opt key t.gauges

(* The deterministic half alone, for byte-comparison in tests and CI. *)
let counters_json t =
  Json.obj
    (List.map (fun (k, v) -> (k, Json.int v)) t.counters
    @ List.map
        (fun (name, cells) ->
          (name, Json.obj (List.map (fun (k, v) -> (k, Json.int v)) cells)))
        t.histograms)

let to_json t =
  Json.obj
    [
      ("schema", Json.str schema);
      ( "labels",
        Json.obj (List.map (fun (k, v) -> (k, Json.str v)) t.labels) );
      ( "counters",
        Json.obj (List.map (fun (k, v) -> (k, Json.int v)) t.counters) );
      ( "histograms",
        Json.obj
          (List.map
             (fun (name, cells) ->
               ( name,
                 Json.obj (List.map (fun (k, v) -> (k, Json.int v)) cells) ))
             t.histograms) );
      ( "stages",
        Json.arr
          (List.map
             (fun s ->
               Json.obj
                 [
                   ("name", Json.str s.stage_name);
                   ("count", Json.int s.stage_count);
                   ("seconds", Json.float s.stage_seconds);
                 ])
             t.stages) );
      ( "gauges",
        Json.obj (List.map (fun (k, v) -> (k, Json.float v)) t.gauges) );
    ]

let save file t =
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_json t);
      output_char oc '\n')
