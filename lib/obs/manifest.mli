(** Run manifests: one machine-readable JSON record per run.

    Schema ["hawkset.run_manifest/1"]:
    {v
    { "schema":   "hawkset.run_manifest/1",
      "labels":   { "app": "fast-fair", "detector": "hawkset",
                    "seed": "42", ... },            // strings
      "counters": { "collector.events": 12034, ... } // deterministic
      "histograms": { "sched.runnable": {"le_1":..,"overflow":..,
                      "count":..,"sum":..,"max":..}, ... } // deterministic
      "stages":   [ {"name":"run/analyse/collect","count":1,
                     "seconds":0.0123}, ... ],       // real wall clock
      "gauges":   { "peak_live_mb": 18.2, ... } }    // real measurements
    v}

    Determinism guarantee: [counters] and [histograms] are functions of the
    (app, workload, seed, policy) tuple only — two runs with the same seed
    serialize them byte-identically. [stages] and [gauges] carry real
    measurements and are quarantined in their own fields. *)

val schema : string

type stage = { stage_name : string; stage_count : int; stage_seconds : float }

type t = {
  labels : (string * string) list;
  counters : (string * int) list;
  histograms : (string * (string * int) list) list;
  stages : stage list;
  gauges : (string * float) list;
}

val make :
  ?labels:(string * string) list ->
  ?counters:(string * int) list ->
  ?histograms:(string * (string * int) list) list ->
  ?stages:stage list ->
  ?gauges:(string * float) list ->
  unit ->
  t

val of_registry :
  ?labels:(string * string) list ->
  ?extra_gauges:(string * float) list ->
  Registry.t ->
  t
(** Snapshot a registry: counters/histograms/spans/gauges, plus
    [extra_gauges] merged into the gauge section. *)

val label : t -> string -> string option
val counter : t -> string -> int option
val gauge : t -> string -> float option

val counters_json : t -> string
(** The deterministic half ([counters] + [histograms]) alone — the byte
    string tests compare across same-seed runs. *)

val to_json : t -> string
val save : string -> t -> unit
