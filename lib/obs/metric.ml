(* Metric primitives. Counters and histograms are bumped on deterministic
   control paths only, so for a fixed scheduler seed their values are a
   pure function of the run — tests assert exact counts. Gauges hold real
   measurements (wall clock, heap sizes) and are quarantined in separate
   manifest fields. *)

type counter = { c_name : string; mutable c_value : int }
type gauge = { g_name : string; mutable g_value : float }

type histogram = {
  h_name : string;
  h_bounds : int array; (* inclusive upper bounds, strictly increasing *)
  h_counts : int array; (* length = Array.length h_bounds + 1 (overflow) *)
  mutable h_count : int;
  mutable h_sum : int;
  mutable h_max : int;
}

let counter name = { c_name = name; c_value = 0 }
let incr c = c.c_value <- c.c_value + 1
let add c n = c.c_value <- c.c_value + n
let value c = c.c_value

let gauge name = { g_name = name; g_value = 0.0 }
let set g v = g.g_value <- v
let gauge_value g = g.g_value

let default_bounds = [| 1; 2; 4; 8; 16; 32; 64; 128; 256; 512; 1024 |]

let histogram ?(bounds = default_bounds) name =
  {
    h_name = name;
    h_bounds = bounds;
    h_counts = Array.make (Array.length bounds + 1) 0;
    h_count = 0;
    h_sum = 0;
    h_max = 0;
  }

let observe h v =
  let rec bucket i =
    if i >= Array.length h.h_bounds then i
    else if v <= h.h_bounds.(i) then i
    else bucket (i + 1)
  in
  h.h_counts.(bucket 0) <- h.h_counts.(bucket 0) + 1;
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum + v;
  if v > h.h_max then h.h_max <- v

(* Flattened, deterministically-ordered view for snapshots/manifests. *)
let cells h =
  let buckets =
    Array.to_list
      (Array.mapi
         (fun i n ->
           if i < Array.length h.h_bounds then
             (Printf.sprintf "le_%d" h.h_bounds.(i), n)
           else ("overflow", n))
         h.h_counts)
  in
  buckets @ [ ("count", h.h_count); ("sum", h.h_sum); ("max", h.h_max) ]

let reset_counter c = c.c_value <- 0
let reset_gauge g = g.g_value <- 0.0

let reset_histogram h =
  Array.fill h.h_counts 0 (Array.length h.h_counts) 0;
  h.h_count <- 0;
  h.h_sum <- 0;
  h.h_max <- 0
