(** Metric primitives: counters, gauges, histograms.

    Counters and histograms must be bumped only on deterministic control
    paths (event counts, cache hits, scheduling decisions): for a fixed
    scheduler seed their values are a pure function of the run, and tests
    assert exact values. Gauges hold real measurements (seconds, megabytes)
    and are quarantined in separate manifest fields. Create metrics through
    {!Registry} so they appear in snapshots. *)

type counter
type gauge
type histogram

val counter : string -> counter
val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int

val gauge : string -> gauge
val set : gauge -> float -> unit
val gauge_value : gauge -> float

val histogram : ?bounds:int array -> string -> histogram
(** [bounds] are inclusive upper bounds, strictly increasing; one overflow
    bucket is added. Default: powers of two up to 1024. *)

val observe : histogram -> int -> unit

val cells : histogram -> (string * int) list
(** Flattened bucket view in bound order ([le_N]..., [overflow]), followed
    by [count], [sum] and [max] — deterministic for deterministic input. *)

val reset_counter : counter -> unit
val reset_gauge : gauge -> unit
val reset_histogram : histogram -> unit
