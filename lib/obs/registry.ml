(* Central metric registry. Modules create named handles once (find-or-
   create, so a name is one cell process-wide) and bump them on their hot
   paths; consumers snapshot sorted association lists. [reset] zeroes the
   values but keeps the handles, so a front end can reset at the start of
   a run and read a per-run snapshot at the end while instrumented
   libraries hold their handles across runs.

   Domain safety: handle *bumps* are plain unsynchronised writes (racy
   but memory-safe, and the supervisor only reads deterministic counters
   derived from results, never the live registry, for gated outputs).
   Handle creation, span recording and snapshots mutate the Hashtbls
   themselves, which OCaml 5 does not make safe across domains — those
   paths take [lock]. Span nesting is tracked per *domain* (keyed on
   [Domain.self]), so concurrent batch jobs each build their own
   "run/collect/..." paths instead of interleaving onto one stack. *)

type span_stat = { mutable sp_count : int; mutable sp_seconds : float }

type t = {
  counters : (string, Metric.counter) Hashtbl.t;
  gauges : (string, Metric.gauge) Hashtbl.t;
  histograms : (string, Metric.histogram) Hashtbl.t;
  spans : (string, span_stat) Hashtbl.t;
  span_stacks : (int, string list) Hashtbl.t; (* domain id -> open paths *)
  lock : Mutex.t;
}

let create () =
  {
    counters = Hashtbl.create 64;
    gauges = Hashtbl.create 16;
    histograms = Hashtbl.create 16;
    spans = Hashtbl.create 16;
    span_stacks = Hashtbl.create 8;
    lock = Mutex.create ();
  }

let global = create ()

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let find_or_create t tbl name make =
  locked t (fun () ->
      match Hashtbl.find_opt tbl name with
      | Some m -> m
      | None ->
          let m = make name in
          Hashtbl.add tbl name m;
          m)

let counter ?(registry = global) name =
  find_or_create registry registry.counters name Metric.counter

let gauge ?(registry = global) name =
  find_or_create registry registry.gauges name Metric.gauge

let histogram ?(registry = global) ?bounds name =
  find_or_create registry registry.histograms name (Metric.histogram ?bounds)

let reset t =
  locked t (fun () ->
      Hashtbl.iter (fun _ c -> Metric.reset_counter c) t.counters;
      Hashtbl.iter (fun _ g -> Metric.reset_gauge g) t.gauges;
      Hashtbl.iter (fun _ h -> Metric.reset_histogram h) t.histograms;
      Hashtbl.reset t.spans;
      Hashtbl.reset t.span_stacks)

let sorted_bindings t tbl value =
  locked t (fun () ->
      Hashtbl.fold (fun name m acc -> (name, value m) :: acc) tbl [])
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let counters t = sorted_bindings t t.counters Metric.value
let gauges t = sorted_bindings t t.gauges Metric.gauge_value

let histogram_cells (h : Metric.histogram) = Metric.cells h

let histograms t = sorted_bindings t t.histograms histogram_cells

(* --- spans ----------------------------------------------------------- *)

(* Nested spans record under their slash-joined path ("run/analyse"), so
   the snapshot reads as a flame-graph outline. Reentrancy under the same
   path accumulates. Nesting is per domain: a worker's spans chain off
   the spans *it* opened, never off another domain's. *)
let with_span ?(registry = global) name f =
  let t = registry in
  let did = (Domain.self () :> int) in
  let path =
    locked t (fun () ->
        let stack =
          Option.value (Hashtbl.find_opt t.span_stacks did) ~default:[]
        in
        let path =
          match stack with [] -> name | top :: _ -> top ^ "/" ^ name
        in
        Hashtbl.replace t.span_stacks did (path :: stack);
        path)
  in
  let t0 = Clock.now () in
  Fun.protect
    ~finally:(fun () ->
      let dt = Float.max 0.0 (Clock.now () -. t0) in
      locked t (fun () ->
          (match Hashtbl.find_opt t.span_stacks did with
          | Some (top :: rest) when String.equal top path ->
              if rest = [] then Hashtbl.remove t.span_stacks did
              else Hashtbl.replace t.span_stacks did rest
          | _ -> () (* unbalanced exit via an effect; leave it alone *));
          let s =
            match Hashtbl.find_opt t.spans path with
            | Some s -> s
            | None ->
                let s = { sp_count = 0; sp_seconds = 0.0 } in
                Hashtbl.add t.spans path s;
                s
          in
          s.sp_count <- s.sp_count + 1;
          s.sp_seconds <- s.sp_seconds +. dt))
    f

let spans t =
  locked t (fun () ->
      Hashtbl.fold
        (fun path s acc -> (path, (s.sp_count, s.sp_seconds)) :: acc)
        t.spans [])
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* --- snapshot arithmetic --------------------------------------------- *)

(* [delta ~before ~after] keeps every [after] key, subtracting the matching
   [before] value — the per-phase view of an accumulating registry. Both
   lists must be sorted by name (as all snapshots here are). *)
let delta ~before ~after =
  let rec go before after acc =
    match (before, after) with
    | _, [] -> List.rev acc
    | [], (k, v) :: a -> go [] a ((k, v) :: acc)
    | (kb, vb) :: b, (ka, va) :: a ->
        let c = String.compare kb ka in
        if c = 0 then go b a ((ka, va - vb) :: acc)
        else if c < 0 then go b after acc
        else go before a ((ka, va) :: acc)
  in
  go before after []
