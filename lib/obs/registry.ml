(* Central metric registry. Modules create named handles once (find-or-
   create, so a name is one cell process-wide) and bump them on their hot
   paths; consumers snapshot sorted association lists. [reset] zeroes the
   values but keeps the handles, so a front end can reset at the start of
   a run and read a per-run snapshot at the end while instrumented
   libraries hold their handles across runs. *)

type span_stat = { mutable sp_count : int; mutable sp_seconds : float }

type t = {
  counters : (string, Metric.counter) Hashtbl.t;
  gauges : (string, Metric.gauge) Hashtbl.t;
  histograms : (string, Metric.histogram) Hashtbl.t;
  spans : (string, span_stat) Hashtbl.t;
  mutable span_stack : string list;
}

let create () =
  {
    counters = Hashtbl.create 64;
    gauges = Hashtbl.create 16;
    histograms = Hashtbl.create 16;
    spans = Hashtbl.create 16;
    span_stack = [];
  }

let global = create ()

let find_or_create tbl name make =
  match Hashtbl.find_opt tbl name with
  | Some m -> m
  | None ->
      let m = make name in
      Hashtbl.add tbl name m;
      m

let counter ?(registry = global) name =
  find_or_create registry.counters name Metric.counter

let gauge ?(registry = global) name =
  find_or_create registry.gauges name Metric.gauge

let histogram ?(registry = global) ?bounds name =
  find_or_create registry.histograms name (Metric.histogram ?bounds)

let reset t =
  Hashtbl.iter (fun _ c -> Metric.reset_counter c) t.counters;
  Hashtbl.iter (fun _ g -> Metric.reset_gauge g) t.gauges;
  Hashtbl.iter (fun _ h -> Metric.reset_histogram h) t.histograms;
  Hashtbl.reset t.spans;
  t.span_stack <- []

let sorted_bindings tbl value =
  Hashtbl.fold (fun name m acc -> (name, value m) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let counters t = sorted_bindings t.counters Metric.value
let gauges t = sorted_bindings t.gauges Metric.gauge_value

let histogram_cells (h : Metric.histogram) = Metric.cells h

let histograms t = sorted_bindings t.histograms histogram_cells

(* --- spans ----------------------------------------------------------- *)

(* Nested spans record under their slash-joined path ("run/analyse"), so
   the snapshot reads as a flame-graph outline. Reentrancy under the same
   path accumulates. *)
let with_span ?(registry = global) name f =
  let t = registry in
  let path =
    match t.span_stack with [] -> name | top :: _ -> top ^ "/" ^ name
  in
  t.span_stack <- path :: t.span_stack;
  let t0 = Clock.now () in
  Fun.protect
    ~finally:(fun () ->
      let dt = Float.max 0.0 (Clock.now () -. t0) in
      (match t.span_stack with
      | top :: rest when String.equal top path -> t.span_stack <- rest
      | _ -> () (* unbalanced exit via an effect; leave the stack alone *));
      let s =
        match Hashtbl.find_opt t.spans path with
        | Some s -> s
        | None ->
            let s = { sp_count = 0; sp_seconds = 0.0 } in
            Hashtbl.add t.spans path s;
            s
      in
      s.sp_count <- s.sp_count + 1;
      s.sp_seconds <- s.sp_seconds +. dt)
    f

let spans t =
  Hashtbl.fold (fun path s acc -> (path, (s.sp_count, s.sp_seconds)) :: acc)
    t.spans []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* --- snapshot arithmetic --------------------------------------------- *)

(* [delta ~before ~after] keeps every [after] key, subtracting the matching
   [before] value — the per-phase view of an accumulating registry. Both
   lists must be sorted by name (as all snapshots here are). *)
let delta ~before ~after =
  let rec go before after acc =
    match (before, after) with
    | _, [] -> List.rev acc
    | [], (k, v) :: a -> go [] a ((k, v) :: acc)
    | (kb, vb) :: b, (ka, va) :: a ->
        let c = String.compare kb ka in
        if c = 0 then go b a ((ka, va - vb) :: acc)
        else if c < 0 then go b after acc
        else go before a ((ka, va) :: acc)
  in
  go before after []
