(** Central metric registry: named counters, gauges, histograms and spans.

    Instrumented libraries create handles once at module initialization
    (find-or-create: one cell per name process-wide) against {!global} and
    bump them on their hot paths. Front ends {!reset} the global registry
    at the start of a run and snapshot it at the end; the snapshot is the
    deterministic half of a {!Manifest.t}. *)

type t

val create : unit -> t

val global : t
(** The registry every built-in subsystem (collector, analysis, scheduler,
    PM cache, baselines) registers into. *)

val counter : ?registry:t -> string -> Metric.counter
val gauge : ?registry:t -> string -> Metric.gauge
val histogram : ?registry:t -> ?bounds:int array -> string -> Metric.histogram

val reset : t -> unit
(** Zero every value and drop recorded spans; handles stay valid. *)

(** {1 Snapshots} — sorted by name, so equal runs produce equal lists. *)

val counters : t -> (string * int) list
val gauges : t -> (string * float) list
val histograms : t -> (string * (string * int) list) list

val with_span : ?registry:t -> string -> (unit -> 'a) -> 'a
(** Times [f] on the {!Clock} and accumulates (count, seconds) under the
    slash-joined path of active spans ("run/analyse" when nested).
    Nesting is tracked per domain, and the span table is mutex-protected,
    so concurrent jobs on worker domains record safely without
    interleaving their paths onto one stack. *)

val spans : t -> (string * (int * float)) list

val delta :
  before:(string * int) list ->
  after:(string * int) list ->
  (string * int) list
(** Per-phase view of an accumulating registry: every [after] key with the
    matching [before] value subtracted. Inputs must be sorted by name. *)
