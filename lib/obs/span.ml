(* Convenience alias over the registry's span machinery. *)

let with_ ?registry name f = Registry.with_span ?registry name f
let snapshot ?(registry = Registry.global) () = Registry.spans registry
