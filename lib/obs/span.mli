(** Monotonic-clock spans with nesting — see {!Registry.with_span}. *)

val with_ : ?registry:Registry.t -> string -> (unit -> 'a) -> 'a
val snapshot : ?registry:Registry.t -> unit -> (string * (int * float)) list
