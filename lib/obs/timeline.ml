(* Timeline profiler: bounded per-lane event rings with a Chrome-trace
   exporter.

   One lane per domain slot (the caller is lane 0, pool worker [i - 1] is
   lane [i], mirroring the domain pool's stable task-to-domain mapping).
   A lane is written only by the domain that owns it, so the hot path is
   lock-free: a bool check when disabled, an array store when enabled.
   Overflow drops the NEW event and bumps the lane's drop counter —
   earlier events are never overwritten, so a truncated ring is a prefix
   of the untruncated one and the determinism contract below survives
   truncation.

   Determinism contract (mirrors the manifest's counter/gauge split): the
   per-lane *sequence* of (kind, name, arg) triples is a pure function of
   the seed and configuration — instrumentation sites only emit on
   deterministic control paths with deterministic args. Timestamps are
   wall-clock measurements and are quarantined exactly like gauges:
   {!signature} zeroes them, and tests byte-compare signatures only.
   Timestamps are clamped monotone per lane ([max] against the lane's
   last), so a stepped clock can skew a duration but never produce an
   out-of-order trace. *)

type handle = int

type kind = Begin | End | Instant

type event = { ev_kind : kind; ev_name : string; ev_arg : int; ev_ts : float }

let max_lanes = 64
let default_capacity = 8192

(* Lanes allocate their arrays on first use, so a process that never
   enables the timeline pays max_lanes records, not max_lanes rings. *)
type lane = {
  mutable l_len : int;
  mutable l_dropped : int;
  mutable l_last_ts : float;
  mutable l_kinds : Bytes.t;
  mutable l_names : int array;
  mutable l_args : int array;
  mutable l_ts : float array;
}

let make_lane () =
  {
    l_len = 0;
    l_dropped = 0;
    l_last_ts = 0.0;
    l_kinds = Bytes.empty;
    l_names = [||];
    l_args = [||];
    l_ts = [||];
  }

let lanes = Array.init max_lanes (fun _ -> make_lane ())

let capacity_ref = ref default_capacity
let capacity () = !capacity_ref

let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b

let clear_lane ln =
  ln.l_len <- 0;
  ln.l_dropped <- 0;
  ln.l_last_ts <- 0.0;
  (* Drop the arrays so the next write allocates at the current capacity;
     keeping them would pin the old capacity forever. *)
  ln.l_kinds <- Bytes.empty;
  ln.l_names <- [||];
  ln.l_args <- [||];
  ln.l_ts <- [||]

(* [reset]/[set_capacity] are quiescent-state operations: the caller must
   ensure no other domain is recording (e.g. between [Domain_pool.map]
   calls, whose join synchronizes). *)
let reset () = Array.iter clear_lane lanes

let set_capacity n =
  capacity_ref := max 1 n;
  reset ()

(* --- lane identity ---------------------------------------------------- *)

let lane_key = Domain.DLS.new_key (fun () -> 0)

let current_lane () = Domain.DLS.get lane_key

let set_lane i =
  if i < 0 || i >= max_lanes then
    invalid_arg (Printf.sprintf "Timeline.set_lane: lane %d (max %d)" i max_lanes);
  Domain.DLS.set lane_key i

let with_lane i f =
  let old = Domain.DLS.get lane_key in
  set_lane i;
  Fun.protect ~finally:(fun () -> Domain.DLS.set lane_key old) f

(* --- name interning --------------------------------------------------- *)

(* Names are interned once, typically at module initialization of the
   instrumentation site; the mutex never sits on a recording hot path. *)
let name_lock = Mutex.create ()
let name_ids : (string, int) Hashtbl.t = Hashtbl.create 32
let name_strs : string array ref = ref (Array.make 32 "")
let name_count = ref 0

let name s =
  Mutex.lock name_lock;
  let id =
    match Hashtbl.find_opt name_ids s with
    | Some id -> id
    | None ->
        let id = !name_count in
        if id >= Array.length !name_strs then begin
          let bigger = Array.make (2 * Array.length !name_strs) "" in
          Array.blit !name_strs 0 bigger 0 id;
          name_strs := bigger
        end;
        !name_strs.(id) <- s;
        incr name_count;
        Hashtbl.add name_ids s id;
        id
  in
  Mutex.unlock name_lock;
  id

let name_of_id id =
  if id >= 0 && id < !name_count then !name_strs.(id) else "?"

(* --- recording -------------------------------------------------------- *)

let kind_byte = function Begin -> 'B' | End -> 'E' | Instant -> 'I'
let kind_of_byte = function 'B' -> Begin | 'E' -> End | _ -> Instant

let ensure_arrays ln =
  if Bytes.length ln.l_kinds = 0 then begin
    let cap = !capacity_ref in
    ln.l_kinds <- Bytes.make cap 'I';
    ln.l_names <- Array.make cap 0;
    ln.l_args <- Array.make cap 0;
    ln.l_ts <- Array.make cap 0.0
  end

let record k h arg =
  if Atomic.get enabled_flag then begin
    let ln = lanes.(Domain.DLS.get lane_key) in
    ensure_arrays ln;
    if ln.l_len >= Bytes.length ln.l_kinds then
      ln.l_dropped <- ln.l_dropped + 1
    else begin
      let ts = Clock.now () in
      let ts = if ts < ln.l_last_ts then ln.l_last_ts else ts in
      ln.l_last_ts <- ts;
      let p = ln.l_len in
      Bytes.set ln.l_kinds p (kind_byte k);
      ln.l_names.(p) <- h;
      ln.l_args.(p) <- arg;
      ln.l_ts.(p) <- ts;
      ln.l_len <- p + 1
    end
  end

let begin_ ?(arg = 0) h = record Begin h arg
let end_ ?(arg = 0) h = record End h arg
let instant ?(arg = 0) h = record Instant h arg

(* --- read side -------------------------------------------------------- *)

let dropped i = lanes.(i).l_dropped

let events i =
  let ln = lanes.(i) in
  List.init ln.l_len (fun p ->
      {
        ev_kind = kind_of_byte (Bytes.get ln.l_kinds p);
        ev_name = name_of_id ln.l_names.(p);
        ev_arg = ln.l_args.(p);
        ev_ts = ln.l_ts.(p);
      })

let used_lanes () =
  let acc = ref [] in
  for i = max_lanes - 1 downto 0 do
    if lanes.(i).l_len > 0 || lanes.(i).l_dropped > 0 then acc := i :: !acc
  done;
  !acc

(* The deterministic half of a lane, one "<kind> <name> <arg>" line per
   event plus a drop-counter trailer — exactly what fixed-seed tests
   byte-compare. Timestamps are excluded by construction. *)
let signature i =
  let ln = lanes.(i) in
  let b = Stdlib.Buffer.create (ln.l_len * 24) in
  for p = 0 to ln.l_len - 1 do
    Stdlib.Buffer.add_char b (Bytes.get ln.l_kinds p);
    Stdlib.Buffer.add_char b ' ';
    Stdlib.Buffer.add_string b (name_of_id ln.l_names.(p));
    Stdlib.Buffer.add_char b ' ';
    Stdlib.Buffer.add_string b (string_of_int ln.l_args.(p));
    Stdlib.Buffer.add_char b '\n'
  done;
  Stdlib.Buffer.add_string b (Printf.sprintf "dropped %d\n" ln.l_dropped);
  Stdlib.Buffer.contents b

(* --- Chrome-trace / Perfetto export ----------------------------------- *)

let lane_label i =
  if i = 0 then "lane 0 (caller)"
  else Printf.sprintf "lane %d (pool worker %d)" i (i - 1)

(* Chrome trace-event JSON: [ts] in microseconds, one [tid] per lane,
   [B]/[E] duration pairs nest, [i] instants are thread-scoped. The time
   origin is the earliest recorded event, keeping timestamps small. *)
let to_chrome_json () =
  let used = used_lanes () in
  let t0 =
    List.fold_left
      (fun acc i ->
        let ln = lanes.(i) in
        if ln.l_len > 0 then Float.min acc ln.l_ts.(0) else acc)
      infinity used
  in
  let t0 = if Float.is_finite t0 then t0 else 0.0 in
  let us ts = Json.float ((ts -. t0) *. 1e6) in
  let evs = ref [] in
  let push e = evs := e :: !evs in
  List.iter
    (fun i ->
      push
        (Json.obj
           [
             ("name", Json.str "thread_name");
             ("ph", Json.str "M");
             ("pid", Json.int 1);
             ("tid", Json.int i);
             ("args", Json.obj [ ("name", Json.str (lane_label i)) ]);
           ]))
    used;
  List.iter
    (fun i ->
      let ln = lanes.(i) in
      for p = 0 to ln.l_len - 1 do
        let base =
          [
            ("name", Json.str (name_of_id ln.l_names.(p)));
            ("ts", us ln.l_ts.(p));
            ("pid", Json.int 1);
            ("tid", Json.int i);
            ("args", Json.obj [ ("arg", Json.int ln.l_args.(p)) ]);
          ]
        in
        match kind_of_byte (Bytes.get ln.l_kinds p) with
        | Begin -> push (Json.obj (("ph", Json.str "B") :: base))
        | End -> push (Json.obj (("ph", Json.str "E") :: base))
        | Instant ->
            push
              (Json.obj (("ph", Json.str "i") :: ("s", Json.str "t") :: base))
      done;
      (* Make ring truncation visible in the trace itself. *)
      if ln.l_dropped > 0 then
        push
          (Json.obj
             [
               ("name", Json.str "timeline.dropped");
               ("ph", Json.str "i");
               ("s", Json.str "t");
               ("ts", us ln.l_last_ts);
               ("pid", Json.int 1);
               ("tid", Json.int i);
               ("args", Json.obj [ ("arg", Json.int ln.l_dropped) ]);
             ]))
    used;
  Json.obj
    [
      ("traceEvents", Json.arr (List.rev !evs));
      ("displayTimeUnit", Json.str "ms");
    ]

(* --- duration derivation ---------------------------------------------- *)

(* Per-name duration stats from matched B/E pairs across all lanes.
   Wall-clock, hence gauge-quarantined in the manifest: only the event
   sequence is deterministic, never these seconds. *)
let duration_gauges () =
  let stats : (string, float ref * float ref * int ref) Hashtbl.t =
    Hashtbl.create 16
  in
  List.iter
    (fun i ->
      let ln = lanes.(i) in
      let stack = ref [] in
      for p = 0 to ln.l_len - 1 do
        match kind_of_byte (Bytes.get ln.l_kinds p) with
        | Begin -> stack := (ln.l_names.(p), ln.l_ts.(p)) :: !stack
        | End -> (
            match !stack with
            | (h, t0) :: rest when h = ln.l_names.(p) ->
                stack := rest;
                let dt = Float.max 0.0 (ln.l_ts.(p) -. t0) in
                let total, mx, count =
                  match Hashtbl.find_opt stats (name_of_id h) with
                  | Some cells -> cells
                  | None ->
                      let cells = (ref 0.0, ref 0.0, ref 0) in
                      Hashtbl.add stats (name_of_id h) cells;
                      cells
                in
                total := !total +. dt;
                mx := Float.max !mx dt;
                incr count
            | _ -> () (* unbalanced: a dropped Begin; skip *))
        | Instant -> ()
      done)
    (used_lanes ());
  Hashtbl.fold
    (fun name (total, mx, count) acc ->
      ("timeline." ^ name ^ ".total_s", !total)
      :: ("timeline." ^ name ^ ".max_s", !mx)
      :: ("timeline." ^ name ^ ".count", float_of_int !count)
      :: acc)
    stats []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
