(** Timeline profiler: bounded per-lane rings of begin/end/instant events
    with a Chrome-trace-event (Perfetto-loadable) exporter.

    Lanes map to domain slots: the caller records on lane 0, pool worker
    [i - 1] on lane [i] (the pool's stable task-to-domain mapping makes
    this assignment deterministic). Each lane is written only by its
    owning domain, so recording is lock-free — a single atomic load when
    disabled, plain array stores when enabled.

    Determinism contract: the per-lane {e sequence} of
    [(kind, name, arg)] triples is a pure function of the seed and
    configuration. Timestamps are wall-clock and quarantined like the
    manifest's gauges — {!signature} excludes them so tests can
    byte-compare sequences. On ring overflow the new event is dropped
    (never an old one) and the lane's drop counter is bumped, so a full
    ring still holds an exact prefix of the untruncated sequence. *)

type handle
(** An interned event name. Intern once at module initialization with
    {!name}; recording takes the handle, not the string. *)

type kind = Begin | End | Instant

type event = { ev_kind : kind; ev_name : string; ev_arg : int; ev_ts : float }

val max_lanes : int
(** Number of lanes (64). [set_lane] beyond this raises. *)

val name : string -> handle
(** Intern an event name (thread-safe; idempotent per string). *)

val enabled : unit -> bool

val set_enabled : bool -> unit
(** Recording is off by default; every record call is a single atomic
    load when disabled. *)

val set_capacity : int -> unit
(** Set the per-lane ring capacity (default 8192) and {!reset}. Call only
    while no other domain is recording. *)

val capacity : unit -> int

val reset : unit -> unit
(** Clear every lane (events and drop counters). Call only while no
    other domain is recording. *)

val current_lane : unit -> int
(** The calling domain's lane (domain-local; defaults to 0). *)

val set_lane : int -> unit
(** Bind the calling domain to a lane. Raises [Invalid_argument] outside
    [0, max_lanes). *)

val with_lane : int -> (unit -> 'a) -> 'a
(** Run [f] with the calling domain bound to the given lane, restoring
    the previous lane afterwards. *)

val begin_ : ?arg:int -> handle -> unit
(** Open a duration event on the calling domain's lane. Matched
    [begin_]/[end_] pairs nest in the exported trace. *)

val end_ : ?arg:int -> handle -> unit

val instant : ?arg:int -> handle -> unit
(** Record a point event (truncation, shard failure, crash point, ...). *)

val events : int -> event list
(** Recorded events of a lane, in recording order. *)

val dropped : int -> int
(** Events dropped by a lane due to ring overflow. *)

val used_lanes : unit -> int list
(** Ascending lanes that recorded (or dropped) at least one event. *)

val signature : int -> string
(** The deterministic half of a lane: one ["<kind> <name> <arg>"] line
    per event plus a ["dropped <n>"] trailer, timestamps excluded. Fixed
    seed, fixed config => byte-identical signature. *)

val to_chrome_json : unit -> string
(** Export all used lanes as Chrome trace-event JSON
    ([{"traceEvents":[...]}]) loadable in Perfetto / chrome://tracing.
    One [tid] per lane with a [thread_name] metadata record; [B]/[E]
    duration events nest; instants are thread-scoped; a lane that
    overflowed gets a trailing ["timeline.dropped"] instant. *)

val duration_gauges : unit -> (string * float) list
(** Per-name duration stats derived from matched begin/end pairs across
    all lanes: [timeline.<name>.count], [timeline.<name>.total_s],
    [timeline.<name>.max_s], sorted by key. Wall-clock — manifest
    gauges, never counters. *)
