(* Per-line cache state. [writers.(i)] is 1 + tid of the thread whose store
   last dirtied byte [i] of the line, or 0 when the byte is clean. [version]
   counts stores to the line so that a fence can tell whether the flushed
   snapshot still covers the latest data. *)
type line_state = {
  writers : int array;
  mutable version : int;
  mutable pending : pending_flush list;
}

and pending_flush = {
  flusher : int;
  snapshot : bytes;
  flushed_version : int;
}

type nt_range = { nt_addr : int; nt_size : int }

type t = {
  heap_name : string;
  heap_eadr : bool;
  volatile : bytes;
  persistent : bytes;
  lines : (int, line_state) Hashtbl.t;
  nt_pending : (int, nt_range list) Hashtbl.t; (* keyed by tid *)
  mutable bump : int;
  free_lists : (int, int list) Hashtbl.t; (* size -> freed addrs, LIFO *)
}

(* Worst-case-cache observability: how much dirtying/flushing/fencing the
   workload actually generates. Deterministic for a fixed scheduler seed. *)
let obs_line_dirties = Obs.Registry.counter "pmem.line_dirties"
let obs_flushes = Obs.Registry.counter "pmem.flushes"
let obs_fences = Obs.Registry.counter "pmem.fences"
let obs_nt_stores = Obs.Registry.counter "pmem.nt_stores"
let obs_crash_images = Obs.Registry.counter "pmem.crash_images"

let create ?(name = "/mnt/pmem/pool") ?(eadr = false) ~size () =
  {
    heap_name = name;
    heap_eadr = eadr;
    volatile = Bytes.make size '\000';
    persistent = Bytes.make size '\000';
    lines = Hashtbl.create 1024;
    nt_pending = Hashtbl.create 16;
    bump = Layout.line_size (* keep address 0 unused as a null pointer *);
    free_lists = Hashtbl.create 16;
  }

let size t = Bytes.length t.volatile
let name t = t.heap_name
let eadr t = t.heap_eadr

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let alloc ?(align = 8) t n =
  if n <= 0 then invalid_arg "Heap.alloc: non-positive size";
  if not (is_power_of_two align) then
    invalid_arg "Heap.alloc: alignment must be a power of two";
  match Hashtbl.find_opt t.free_lists n with
  | Some (addr :: rest) ->
      Hashtbl.replace t.free_lists n rest;
      addr
  | Some [] | None ->
      let addr = (t.bump + align - 1) land lnot (align - 1) in
      if addr + n > Bytes.length t.volatile then raise Out_of_memory;
      t.bump <- addr + n;
      addr

let free t ~addr ~size =
  let prev = Option.value ~default:[] (Hashtbl.find_opt t.free_lists size) in
  Hashtbl.replace t.free_lists size (addr :: prev)

let allocated_bytes t = t.bump

let read_i64 t addr = Bytes.get_int64_le t.volatile addr
let write_i64 t addr v = Bytes.set_int64_le t.volatile addr v
let read_u8 t addr = Char.code (Bytes.get t.volatile addr)
let write_u8 t addr v = Bytes.set t.volatile addr (Char.chr (v land 0xff))
let read_bytes t addr len = Bytes.sub t.volatile addr len
let write_bytes t addr b = Bytes.blit b 0 t.volatile addr (Bytes.length b)

let line_state t line_idx =
  match Hashtbl.find_opt t.lines line_idx with
  | Some s -> s
  | None ->
      let s =
        { writers = Array.make Layout.line_size 0; version = 0; pending = [] }
      in
      Hashtbl.add t.lines line_idx s;
      s

let mark_dirty t ~tid ~addr ~size =
  let mark = Trace.Tid.to_int tid + 1 in
  let stop = addr + size in
  let pos = ref addr in
  while !pos < stop do
    let line_idx = Layout.line_index !pos in
    let s = line_state t line_idx in
    Obs.Metric.incr obs_line_dirties;
    s.version <- s.version + 1;
    let line_base = line_idx * Layout.line_size in
    let upto = min stop (line_base + Layout.line_size) in
    for b = !pos - line_base to upto - line_base - 1 do
      s.writers.(b) <- mark
    done;
    pos := upto
  done

let note_store t ~tid ~addr ~size ~non_temporal =
  if t.heap_eadr then
    (* The cache is part of the persistent domain: stores are durable on
       visibility; nothing is ever dirty. *)
    Bytes.blit t.volatile addr t.persistent addr size
  else if non_temporal then begin
    Obs.Metric.incr obs_nt_stores;
    let key = Trace.Tid.to_int tid in
    let prev = Option.value ~default:[] (Hashtbl.find_opt t.nt_pending key) in
    Hashtbl.replace t.nt_pending key
      ({ nt_addr = addr; nt_size = size } :: prev);
    (* The data sits in the write-combining buffer: it is visible (we wrote
       the volatile image) but not in cache; it persists at the next fence.
       We still mark it dirty so that loads before the fence see it as
       not-yet-guaranteed-persistent. *)
    mark_dirty t ~tid ~addr ~size
  end
  else mark_dirty t ~tid ~addr ~size

let dirty_conflict t ~tid ~addr ~size =
  let me = Trace.Tid.to_int tid + 1 in
  let stop = addr + size in
  let rec scan pos =
    if pos >= stop then None
    else
      let line_idx = Layout.line_index pos in
      let line_base = line_idx * Layout.line_size in
      let upto = min stop (line_base + Layout.line_size) in
      match Hashtbl.find_opt t.lines line_idx with
      | None -> scan upto
      | Some s ->
          let rec bytes b =
            if b >= upto - line_base then scan upto
            else
              let w = s.writers.(b) in
              if w <> 0 && w <> me then Some (Trace.Tid.of_int (w - 1))
              else bytes (b + 1)
          in
          bytes (pos - line_base)
  in
  scan addr

let flush t ~tid ~line =
  if line land (Layout.line_size - 1) <> 0 then
    invalid_arg "Heap.flush: address is not line-aligned";
  Obs.Metric.incr obs_flushes;
  let line_idx = Layout.line_index line in
  match Hashtbl.find_opt t.lines line_idx with
  | None -> () (* clean line: flushing is a no-op *)
  | Some s ->
      let snapshot = Bytes.sub t.volatile line Layout.line_size in
      let p =
        {
          flusher = Trace.Tid.to_int tid;
          snapshot;
          flushed_version = s.version;
        }
      in
      s.pending <- p :: s.pending

let commit_line t line_idx s p =
  let line_base = line_idx * Layout.line_size in
  Bytes.blit p.snapshot 0 t.persistent line_base Layout.line_size;
  if p.flushed_version = s.version then
    (* No store hit the line after the flush: it is now fully clean. *)
    Array.fill s.writers 0 Layout.line_size 0

let fence t ~tid =
  Obs.Metric.incr obs_fences;
  let me = Trace.Tid.to_int tid in
  let completed = ref [] in
  Hashtbl.iter
    (fun line_idx s ->
      let mine, rest = List.partition (fun p -> p.flusher = me) s.pending in
      if mine <> [] then begin
        s.pending <- rest;
        (* Commit oldest first so the newest flushed snapshot wins. *)
        List.iter (commit_line t line_idx s) (List.rev mine);
        if Array.for_all (fun w -> w = 0) s.writers && rest = [] then
          completed := line_idx :: !completed
      end)
    t.lines;
  List.iter (Hashtbl.remove t.lines) !completed;
  (match Hashtbl.find_opt t.nt_pending me with
  | None -> ()
  | Some ranges ->
      Hashtbl.remove t.nt_pending me;
      let commit { nt_addr; nt_size } =
        Bytes.blit t.volatile nt_addr t.persistent nt_addr nt_size;
        let stop = nt_addr + nt_size in
        let pos = ref nt_addr in
        while !pos < stop do
          let line_idx = Layout.line_index !pos in
          let line_base = line_idx * Layout.line_size in
          let upto = min stop (line_base + Layout.line_size) in
          (match Hashtbl.find_opt t.lines line_idx with
          | None -> ()
          | Some s ->
              for b = !pos - line_base to upto - line_base - 1 do
                if s.writers.(b) = me + 1 then s.writers.(b) <- 0
              done;
              if Array.for_all (fun w -> w = 0) s.writers && s.pending = []
              then Hashtbl.remove t.lines line_idx);
          pos := upto
        done
      in
      List.iter commit (List.rev ranges))

let persisted_range t ~addr ~size =
  let stop = addr + size in
  let rec scan pos =
    if pos >= stop then true
    else
      let line_idx = Layout.line_index pos in
      let line_base = line_idx * Layout.line_size in
      let upto = min stop (line_base + Layout.line_size) in
      match Hashtbl.find_opt t.lines line_idx with
      | None -> scan upto
      | Some s ->
          let rec bytes b =
            if b >= upto - line_base then scan upto
            else if s.writers.(b) <> 0 then false
            else bytes (b + 1)
          in
          bytes (pos - line_base)
  in
  scan addr

let dirty_lines t =
  Hashtbl.fold
    (fun _ s acc ->
      if Array.exists (fun w -> w <> 0) s.writers then acc + 1 else acc)
    t.lines 0

let unpersisted_bytes t =
  Hashtbl.fold
    (fun _ s acc ->
      Array.fold_left (fun n w -> if w <> 0 then n + 1 else n) acc s.writers)
    t.lines 0

let crash_image t =
  Obs.Metric.incr obs_crash_images;
  Bytes.copy t.persistent

let of_image ?(name = "/mnt/pmem/pool") img =
  let t = create ~name ~size:(Bytes.length img) () in
  Bytes.blit img 0 t.volatile 0 (Bytes.length img);
  Bytes.blit img 0 t.persistent 0 (Bytes.length img);
  t
