(** Persistent-memory heap with a worst-case cache simulator.

    The heap models a PM region mapped into the address space (the paper's
    [mmap]-of-a-PM-file model, §4) together with the volatile cache that
    sits in front of it. Two byte images are maintained:

    - the {e volatile} image: what loads observe (cache contents — data is
      visible to other threads as soon as it is stored, §2.1);
    - the {e persistent} image: what survives a crash.

    Following the paper's worst-case cache (§3.2, stage 1), data moves from
    volatile to persistent {e only} when a flush of its cache line is
    followed by a fence issued by the flushing thread — never by background
    evictions. Non-temporal stores bypass the cache and persist at the
    issuing thread's next fence.

    The heap also provides an allocator with address reuse (freed blocks
    are recycled LIFO), which reproduces the PM-reuse pattern that defeats
    the Initialization Removal Heuristic in Memcached-pmem (§5.4, §7). *)

type t

val create : ?name:string -> ?eadr:bool -> size:int -> unit -> t
(** [create ~size ()] maps a fresh, zero-initialised PM region of [size]
    bytes. [name] models the PM file path (default ["/mnt/pmem/pool"]).

    [eadr] (default [false]) models extended Asynchronous DRAM Refresh
    (§2.1): the persistent domain extends to the cache, so every store is
    durable the moment it becomes visible — flushes and fences become
    no-ops and crash images lose nothing. The paper's position is that
    applications must NOT rely on it; the flag exists to demonstrate that
    persistency-induced races vanish on such hardware. *)

val eadr : t -> bool

val size : t -> int
val name : t -> string

(** {1 Allocation} *)

val alloc : ?align:int -> t -> int -> int
(** [alloc t n] returns the address of an [n]-byte block, reusing a freed
    block of the same size when one exists (most recently freed first),
    otherwise bumping. [align] (default 8, must be a power of two) aligns
    fresh blocks; recycled blocks keep their original alignment. Reused
    blocks keep their previous contents — PM allocators do not zero.
    Raises [Out_of_memory] when the region is exhausted. *)

val free : t -> addr:int -> size:int -> unit
(** Returns a block to the allocator for reuse. *)

val allocated_bytes : t -> int
(** High-water mark of the bump pointer. *)

(** {1 Data access (volatile image)} *)

val read_i64 : t -> int -> int64
val write_i64 : t -> int -> int64 -> unit
val read_u8 : t -> int -> int
val write_u8 : t -> int -> int -> unit
val read_bytes : t -> int -> int -> bytes
val write_bytes : t -> int -> bytes -> unit

(** {1 Cache simulation} *)

val note_store : t -> tid:Trace.Tid.t -> addr:int -> size:int ->
  non_temporal:bool -> unit
(** Marks the bytes dirty in cache (or queues them in the thread's
    write-combining buffer for non-temporal stores). Call after writing
    the data through the access functions above. *)

val dirty_conflict : t -> tid:Trace.Tid.t -> addr:int -> size:int ->
  Trace.Tid.t option
(** [dirty_conflict t ~tid ~addr ~size] is [Some writer] when some byte of
    the range is dirty in cache and was last written by a thread other
    than [tid] — i.e. this load observes visible-but-not-durable data
    written by another thread. This is the runtime observation the PMRace
    baseline needs to witness directly. *)

val flush : t -> tid:Trace.Tid.t -> line:int -> unit
(** Initiates write-back of the cache line at line-aligned address [line]:
    the line's current contents are snapshotted and will reach the
    persistent image at [tid]'s next fence. A later store to the line
    re-dirties it (the snapshot still persists, but the newer data does
    not). *)

val fence : t -> tid:Trace.Tid.t -> unit
(** Completes all pending flushes and non-temporal stores issued by
    [tid]. *)

val persisted_range : t -> addr:int -> size:int -> bool
(** [true] when no byte of the range is dirty, i.e. the volatile and
    persistent images agree by construction. *)

val dirty_lines : t -> int
(** Number of cache lines currently holding unpersisted data. *)

val unpersisted_bytes : t -> int
(** Number of bytes whose volatile and persistent images may disagree —
    data a crash at this instant would lose. The crash sweep records this
    as the at-risk volume at each crash point. *)

(** {1 Crash simulation} *)

val crash_image : t -> bytes
(** Copy of the persistent image: exactly what a post-crash execution
    would observe. All unpersisted stores are lost. *)

val of_image : ?name:string -> bytes -> t
(** [of_image img] builds the post-crash heap: both images equal [img],
    the cache is clean, the allocator restarts (recovery code re-derives
    structure from the data, as PM applications do). *)
