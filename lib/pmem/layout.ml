let line_size = 64
let word_size = 8
let line_of addr = addr land lnot (line_size - 1)
let line_index addr = addr / line_size
let word_index addr = addr / word_size

let range_of ~unit_size addr size =
  if size <= 0 then []
  else
    let first = addr / unit_size in
    let last = (addr + size - 1) / unit_size in
    List.init (last - first + 1) (fun i -> first + i)

let lines_of_range addr size =
  List.map (fun i -> i * line_size) (range_of ~unit_size:line_size addr size)

let words_of_range addr size = range_of ~unit_size:word_size addr size

(* Non-allocating traversals of the same word range: the collector's
   per-event hot paths call these instead of materialising a list. *)
let iter_words addr size f =
  if size > 0 then
    for w = addr / word_size to (addr + size - 1) / word_size do
      f w
    done

let fold_words addr size init f =
  if size <= 0 then init
  else begin
    let acc = ref init in
    for w = addr / word_size to (addr + size - 1) / word_size do
      acc := f !acc w
    done;
    !acc
  end

let ranges_overlap a1 s1 a2 s2 =
  s1 > 0 && s2 > 0 && a1 < a2 + s2 && a2 < a1 + s1
