(** Memory layout constants and address arithmetic.

    PM persistence is managed at cache-line granularity (flush instructions
    operate on whole lines); the Initialization Removal Heuristic and the
    race matching operate on 8-byte words. *)

val line_size : int
(** Cache line size in bytes (64, as on all x86 implementations). *)

val word_size : int
(** Word granularity used by the analysis (8 bytes). *)

val line_of : int -> int
(** [line_of addr] is the line-aligned base address of [addr]. *)

val line_index : int -> int
(** [line_index addr] is [addr / line_size]. *)

val word_index : int -> int
(** [word_index addr] is [addr / word_size]. *)

val lines_of_range : int -> int -> int list
(** [lines_of_range addr size] lists the line-aligned base addresses of all
    cache lines touched by the byte range [addr, addr+size). Empty when
    [size <= 0]. *)

val words_of_range : int -> int -> int list
(** [words_of_range addr size] lists the word indexes touched by the byte
    range; used by the IRH and by address matching. *)

val iter_words : int -> int -> (int -> unit) -> unit
(** [iter_words addr size f] applies [f] to each word index of
    [words_of_range addr size], ascending, without allocating the list —
    the per-event traversal of the collector and the scheduler. *)

val fold_words : int -> int -> 'a -> ('a -> int -> 'a) -> 'a
(** Non-allocating fold over the same ascending word range. *)

val ranges_overlap : int -> int -> int -> int -> bool
(** [ranges_overlap a1 s1 a2 s2] is [true] when the byte ranges
    [a1, a1+s1) and [a2, a2+s2) intersect. Partial overlaps count: the
    paper's matching "takes into account the size of the PM access, and is
    able to detect partially overlapping races" (§3.2). *)
