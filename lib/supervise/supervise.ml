(* Supervised batch execution. See the .mli for the contract.

   Structure: [run] walks the declared job list in order, executing each
   job under [process] — injected faults, budget guard, bounded retries
   with deterministic backoff, circuit breaker — and records every step
   in the (optional) journal as it happens. Resume is the same walk with
   a prior-state table loaded from the journal: terminal jobs replay
   their recorded status (including the exact report bytes), partial
   jobs continue from their next attempt. Because the walk, the retry
   policy and the jobs themselves are deterministic, the merged report
   of a killed-and-resumed batch is byte-identical to an uninterrupted
   one. *)

module S = Machine.Sched
module R = Pmapps.Registry
module J = Trace.Journal

type failure = Timeout | Oom | Corrupt_trace | Pipeline_exn | Worker_lost

let failure_to_string = function
  | Timeout -> "timeout"
  | Oom -> "oom"
  | Corrupt_trace -> "corrupt-trace"
  | Pipeline_exn -> "pipeline-exn"
  | Worker_lost -> "worker-lost"

let failure_of_string = function
  | "timeout" -> Ok Timeout
  | "oom" -> Ok Oom
  | "corrupt-trace" | "corrupt_trace" -> Ok Corrupt_trace
  | "pipeline-exn" | "pipeline_exn" -> Ok Pipeline_exn
  | "worker-lost" | "worker_lost" -> Ok Worker_lost
  | s ->
      Error
        (Printf.sprintf
           "unknown failure class %S (expected \
            timeout|oom|corrupt-trace|pipeline-exn|worker-lost)"
           s)

let classify_exn = function
  | Obs.Budget.Exceeded (`Wall, _) -> Timeout
  | Obs.Budget.Exceeded (`Heap, _) -> Oom
  | Trace.Trace_io.Parse_error _ -> Corrupt_trace
  | Hawkset.Domain_pool.Worker_lost _ -> Worker_lost
  | _ -> Pipeline_exn

type job = {
  j_id : int;
  j_app : string;
  j_seed : int;
  j_policy : string;
  j_ops : int;
}

let policy_of_string = function
  | "round-robin" | "round_robin" -> Ok S.Round_robin
  | "random" -> Ok S.Random_interleave
  | "delay" -> Ok (S.Delay_injection { probability = 0.05; duration = 40 })
  | "pct" -> Ok (S.Pct { depth = 3 })
  | s ->
      Error
        (Printf.sprintf
           "unknown policy %S (expected round-robin|random|delay|pct)" s)

let jobs_of ~apps ~seeds ~policies ~ops =
  let unknown_app = List.find_opt (fun a -> R.find a = None) apps in
  let bad_policy =
    List.find_map
      (fun p -> match policy_of_string p with Ok _ -> None | Error m -> Some m)
      policies
  in
  match (unknown_app, bad_policy) with
  | Some a, _ -> Error (Printf.sprintf "unknown application %S (try list-apps)" a)
  | None, Some m -> Error m
  | None, None ->
      let id = ref 0 in
      Ok
        (List.concat_map
           (fun app ->
             List.concat_map
               (fun seed ->
                 List.map
                   (fun pol ->
                     let j =
                       {
                         j_id = !id;
                         j_app = app;
                         j_seed = seed;
                         j_policy = pol;
                         j_ops = ops;
                       }
                     in
                     incr id;
                     j)
                   policies)
               seeds)
           apps)

type fault = { f_job : int; f_class : failure; f_times : int }

let fault_of_string s =
  let parse job cls times =
    match (int_of_string_opt job, failure_of_string cls, times) with
    | Some j, Ok c, Some n when j >= 0 && n >= 1 ->
        Ok { f_job = j; f_class = c; f_times = n }
    | _ ->
        Error
          (Printf.sprintf
             "bad fault %S (expected JOB:CLASS[:COUNT], e.g. 2:timeout or \
              0:oom:99)"
             s)
  in
  match String.split_on_char ':' s with
  | [ job; cls ] -> parse job cls (Some 1)
  | [ job; cls; n ] -> parse job cls (int_of_string_opt n)
  | _ ->
      Error
        (Printf.sprintf "bad fault %S (expected JOB:CLASS[:COUNT])" s)

(* The real exception of each class, raised before any work runs: the
   classification, retry, backoff and journaling paths under test are
   the production ones. *)
let inject_exn = function
  | Timeout -> Obs.Budget.Exceeded (`Wall, 0.0)
  | Oom -> Obs.Budget.Exceeded (`Heap, 0.0)
  | Corrupt_trace -> Trace.Trace_io.Parse_error (0, "injected fault: corrupt trace")
  | Worker_lost -> Hawkset.Domain_pool.Worker_lost 1
  | Pipeline_exn -> Failure "injected fault: pipeline exception"

type config = {
  attempts : int;
  backoff_ms : int;
  backoff_seed : int;
  deadline_s : float option;
  max_heap_mb : float option;
  breaker_threshold : int;
  pipeline_jobs : int;
  job_workers : int;
  faults : fault list;
  stop_after : int option;
}

let default_config =
  {
    attempts = 3;
    backoff_ms = 50;
    backoff_seed = 42;
    deadline_s = None;
    max_heap_mb = None;
    breaker_threshold = 2;
    pipeline_jobs = 1;
    job_workers = 1;
    faults = [];
    stop_after = None;
  }

type status =
  | Done of {
      d_attempts : int;
      d_sequential : bool;
      d_truncations : int;
      d_failures : failure list;
      d_races_json : string;
    }
  | Gave_up of { g_attempts : int; g_failures : failure list }
  | Quarantined

let status_string = function
  | Done { d_sequential = true; _ } -> "ok-sequential"
  | Done { d_truncations = n; _ } when n > 0 -> "ok-truncated"
  | Done { d_failures = _ :: _; _ } -> "ok-retried"
  | Done _ -> "ok"
  | Gave_up _ -> "failed"
  | Quarantined -> "quarantined"

type job_result = { jr_job : job; jr_status : status; jr_replayed : bool }

type batch = {
  b_fingerprint : string;
  b_config : config;
  b_jobs : job list;
  b_results : job_result list;
  b_interrupted : bool;
}

exception Resume_mismatch of { expected : string; found : string option }

(* Everything that shapes a job's terminal state goes into the
   fingerprint — [stop_after] deliberately not: a killed batch and its
   uninterrupted twin are the same declaration. [job_workers] is also
   excluded: job-level concurrency changes only wall-clock time (the
   merged report is byte-identical at any width), so a batch journaled
   at one width may be resumed at another. *)
let fingerprint config jobs =
  let b = Buffer.create 256 in
  List.iter
    (fun j ->
      Buffer.add_string b
        (Printf.sprintf "%d %s %d %s %d;" j.j_id j.j_app j.j_seed j.j_policy
           j.j_ops))
    jobs;
  Buffer.add_string b
    (Printf.sprintf "attempts=%d;backoff=%d;bseed=%d;breaker=%d;pjobs=%d;"
       config.attempts config.backoff_ms config.backoff_seed
       config.breaker_threshold config.pipeline_jobs);
  (match config.deadline_s with
  | Some d -> Buffer.add_string b (Printf.sprintf "deadline=%g;" d)
  | None -> ());
  (match config.max_heap_mb with
  | Some m -> Buffer.add_string b (Printf.sprintf "heap=%g;" m)
  | None -> ());
  List.iter
    (fun f ->
      Buffer.add_string b
        (Printf.sprintf "fault=%d:%s:%d;" f.f_job
           (failure_to_string f.f_class)
           f.f_times))
    config.faults;
  J.fnv_hex (Buffer.contents b)

let backoff_delay_ms config ~job ~attempt =
  if config.backoff_ms <= 0 then 0
  else begin
    let exponent = min (max 0 (attempt - 1)) 16 in
    let base = config.backoff_ms * (1 lsl exponent) in
    let prng =
      Machine.Prng.create
        (config.backoff_seed lxor (job * 0x9e3779b9) lxor (attempt * 0x85ebca6))
    in
    base + Machine.Prng.int prng config.backoff_ms
  end

(* --- observability ---------------------------------------------------- *)

let obs_jobs = Obs.Registry.counter "supervise.jobs"
let obs_attempts = Obs.Registry.counter "supervise.attempts"
let obs_retries = Obs.Registry.counter "supervise.retries"
let obs_replayed = Obs.Registry.counter "supervise.replayed"
let obs_quarantined = Obs.Registry.counter "supervise.quarantined"
let obs_gave_up = Obs.Registry.counter "supervise.gave_up"
let obs_fail_timeout = Obs.Registry.counter "supervise.failures.timeout"
let obs_fail_oom = Obs.Registry.counter "supervise.failures.oom"
let obs_fail_corrupt = Obs.Registry.counter "supervise.failures.corrupt_trace"
let obs_fail_exn = Obs.Registry.counter "supervise.failures.pipeline_exn"
let obs_fail_lost = Obs.Registry.counter "supervise.failures.worker_lost"

let obs_failure = function
  | Timeout -> obs_fail_timeout
  | Oom -> obs_fail_oom
  | Corrupt_trace -> obs_fail_corrupt
  | Pipeline_exn -> obs_fail_exn
  | Worker_lost -> obs_fail_lost

let tl_attempt = Obs.Timeline.name "supervise.attempt"
let tl_retry = Obs.Timeline.name "supervise.retry"
let tl_replay = Obs.Timeline.name "supervise.replay"
let tl_quarantine = Obs.Timeline.name "supervise.quarantine"

(* --- one attempt ------------------------------------------------------ *)

(* A [Worker_lost] poisons the pool for the rest of the call and an [Oom]
   indicts the parallel footprint, so both degrade the job's remaining
   attempts to the sequential analysis: smaller, pool-free, and
   bit-identical in its report. *)
let degrades = function Worker_lost | Oom -> true | _ -> false

(* One attempt's product: the report JSON bytes and the truncation count
   — all a terminal [Done] needs, whether the analysis ran or a cache
   hit substituted the recorded bytes of an identical trace. *)
let run_attempt ?cache config (job : job) ~attempt ~sequential ~cap_jobs =
  (match
     List.find_opt
       (fun f -> f.f_job = job.j_id && attempt <= f.f_times)
       config.faults
   with
  | Some f -> raise (inject_exn f.f_class)
  | None -> ());
  let entry =
    match R.find job.j_app with
    | Some e -> e
    | None -> invalid_arg ("Supervise: unknown application " ^ job.j_app)
  in
  let policy =
    match policy_of_string job.j_policy with
    | Ok p -> p
    | Error msg -> invalid_arg ("Supervise: " ^ msg)
  in
  let ops = R.clamp_ops entry job.j_ops in
  Obs.Budget.with_guard ?wall_s:config.deadline_s ?heap_mb:config.max_heap_mb
    (fun () ->
      let report = entry.R.run ~seed:job.j_seed ~policy ~ops () in
      (* The wall budget also feeds the pipeline's cooperative stage
         deadlines: the stages yield at their polling points well before
         the Gc-alarm guard has to fire. [cap_jobs] (job-concurrency > 1)
         forces the stage-3 analysis sequential so the total domain
         count stays bounded by the job width — bit-identical by the
         parallel-analysis contract, and it must not re-enter the pool
         this very job is running on. *)
      let pcfg =
        {
          Hawkset.Pipeline.default with
          jobs =
            (if sequential || cap_jobs then 1 else max 1 config.pipeline_jobs);
          collect_deadline_s = config.deadline_s;
          analyse_deadline_s = config.deadline_s;
        }
      in
      let analyse () =
        let r = Hawkset.Pipeline.run ~config:pcfg report.S.trace in
        ( Hawkset.Report.to_json r.Hawkset.Pipeline.races,
          r.Hawkset.Pipeline.races,
          r.Hawkset.Pipeline.counters,
          List.length r.Hawkset.Pipeline.truncated )
      in
      match cache with
      | None ->
          let json, _, _, truncs = analyse () in
          (json, truncs)
      | Some c -> (
          let trace_fp = Trace.Trace_io.fingerprint report.S.trace in
          let config_fp = Hawkset.Result_cache.config_fingerprint pcfg in
          match Hawkset.Result_cache.find c ~trace_fp ~config_fp with
          | Some e -> (e.Hawkset.Result_cache.e_races_json, 0)
          | None ->
              let json, races, counters, truncs = analyse () in
              if truncs = 0 then
                Hawkset.Result_cache.add c ~trace_fp ~config_fp
                  {
                    Hawkset.Result_cache.e_races_json = json;
                    e_canonical = Hawkset.Report.canonical races;
                    e_counters = counters;
                  };
              (json, truncs)))

(* --- journal records -------------------------------------------------- *)

(* Prior state of one job, reconstructed from the journal. *)
type resume_state = { rs_fails : failure list; rs_terminal : status option }

let restore path =
  let loaded = J.load path in
  let fp = ref None in
  let tbl : (int, resume_state) Hashtbl.t = Hashtbl.create 32 in
  let state id =
    match Hashtbl.find_opt tbl id with
    | Some s -> s
    | None -> { rs_fails = []; rs_terminal = None }
  in
  List.iter
    (fun (r : J.record) ->
      match (r.J.tag, r.J.fields) with
      | "batch", f :: _ -> fp := Some f
      | "start", _ -> ()
      | "fail", [ id; _attempt; cls ] -> (
          match (int_of_string_opt id, failure_of_string cls) with
          | Some id, Ok c ->
              let s = state id in
              Hashtbl.replace tbl id { s with rs_fails = s.rs_fails @ [ c ] }
          | _ -> ())
      | "done", [ id; attempts; seq; truncs ] -> (
          match (int_of_string_opt id, r.J.payload) with
          | Some id, Some races ->
              let s = state id in
              Hashtbl.replace tbl id
                {
                  s with
                  rs_terminal =
                    Some
                      (Done
                         {
                           d_attempts =
                             Option.value (int_of_string_opt attempts)
                               ~default:1;
                           d_sequential = seq = "1";
                           d_truncations =
                             Option.value (int_of_string_opt truncs) ~default:0;
                           d_failures = s.rs_fails;
                           d_races_json = races;
                         })
                }
          | _ -> ())
      | "gaveup", [ id; attempts ] -> (
          match int_of_string_opt id with
          | Some id ->
              let s = state id in
              Hashtbl.replace tbl id
                {
                  s with
                  rs_terminal =
                    Some
                      (Gave_up
                         {
                           g_attempts =
                             Option.value (int_of_string_opt attempts)
                               ~default:0;
                           g_failures = s.rs_fails;
                         })
                }
          | None -> ())
      | "quar", [ id ] -> (
          match int_of_string_opt id with
          | Some id ->
              let s = state id in
              Hashtbl.replace tbl id { s with rs_terminal = Some Quarantined }
          | None -> ())
      | _ -> ())
    loaded.J.l_records;
  (!fp, tbl)

(* --- the batch loop --------------------------------------------------- *)

let run ?journal ?(resume = false) ?cache ?(config = default_config) jobs =
  List.iter
    (fun j ->
      if R.find j.j_app = None then
        invalid_arg ("Supervise.run: unknown application " ^ j.j_app);
      match policy_of_string j.j_policy with
      | Ok _ -> ()
      | Error msg -> invalid_arg ("Supervise.run: " ^ msg))
    jobs;
  let fp = fingerprint config jobs in
  let prior, writer =
    match journal with
    | None -> (Hashtbl.create 0, None)
    | Some path ->
        if resume && Sys.file_exists path then begin
          let jfp, tbl = restore path in
          (match jfp with
          | Some f when f = fp -> ()
          | found -> raise (Resume_mismatch { expected = fp; found }));
          (tbl, Some (J.append path))
        end
        else begin
          let w = J.create path in
          J.add w
            {
              J.tag = "batch";
              fields = [ fp; string_of_int (List.length jobs) ];
              payload = None;
            };
          (Hashtbl.create 0, Some w)
        end
  in
  (* [process ~app_failures ~record job] is shared by both drivers; the
     driver decides where records go (straight to the journal, or a
     per-job buffer flushed at completion) and where the per-app
     consecutive-failure count lives (a shared table, or chain-local). *)
  let cap_jobs = config.job_workers > 1 in
  let process ~app_failures ~record (job : job) =
    Obs.Metric.incr obs_jobs;
    match Hashtbl.find_opt prior job.j_id with
    | Some { rs_terminal = Some st; _ } ->
        Obs.Metric.incr obs_replayed;
        Obs.Timeline.instant tl_replay ~arg:job.j_id;
        { jr_job = job; jr_status = st; jr_replayed = true }
    | prior_state ->
        let prior_fails =
          match prior_state with Some s -> s.rs_fails | None -> []
        in
        if app_failures () >= config.breaker_threshold then begin
          Obs.Metric.incr obs_quarantined;
          Obs.Timeline.instant tl_quarantine ~arg:job.j_id;
          Obs.Logger.warn ~section:"supervise" (fun () ->
              Printf.sprintf "job %d (%s): quarantined by circuit breaker"
                job.j_id job.j_app);
          record "quar" [ string_of_int job.j_id ] None;
          { jr_job = job; jr_status = Quarantined; jr_replayed = false }
        end
        else begin
          let id = string_of_int job.j_id in
          let failures = ref prior_fails in
          let rec go attempt ~sequential =
            if attempt > config.attempts then begin
              Obs.Metric.incr obs_gave_up;
              record "gaveup" [ id; string_of_int config.attempts ] None;
              Gave_up { g_attempts = config.attempts; g_failures = !failures }
            end
            else begin
              Obs.Metric.incr obs_attempts;
              record "start"
                [ id; string_of_int attempt; (if sequential then "1" else "0") ]
                None;
              Obs.Timeline.begin_ tl_attempt ~arg:job.j_id;
              let outcome =
                Fun.protect
                  ~finally:(fun () -> Obs.Timeline.end_ tl_attempt ~arg:job.j_id)
                  (fun () ->
                    match
                      Obs.Registry.with_span "job" (fun () ->
                          run_attempt ?cache config job ~attempt ~sequential
                            ~cap_jobs)
                    with
                    | r -> Ok r
                    | exception e -> Error e)
              in
              match outcome with
              | Ok (races, truncs) ->
                  record "done"
                    [
                      id;
                      string_of_int attempt;
                      (if sequential then "1" else "0");
                      string_of_int truncs;
                    ]
                    (Some races);
                  Done
                    {
                      d_attempts = attempt;
                      d_sequential = sequential;
                      d_truncations = truncs;
                      d_failures = !failures;
                      d_races_json = races;
                    }
              | Error e ->
                  let cls = classify_exn e in
                  Obs.Metric.incr (obs_failure cls);
                  failures := !failures @ [ cls ];
                  record "fail" [ id; string_of_int attempt; failure_to_string cls ]
                    None;
                  Obs.Logger.warn ~section:"supervise" (fun () ->
                      Printf.sprintf "job %d (%s seed %d %s): attempt %d failed: %s (%s)"
                        job.j_id job.j_app job.j_seed job.j_policy attempt
                        (failure_to_string cls) (Printexc.to_string e));
                  if attempt >= config.attempts then go (attempt + 1) ~sequential
                  else begin
                    Obs.Metric.incr obs_retries;
                    Obs.Timeline.instant tl_retry ~arg:job.j_id;
                    let delay =
                      backoff_delay_ms config ~job:job.j_id ~attempt
                    in
                    if delay > 0 then Unix.sleepf (float_of_int delay /. 1000.0);
                    go (attempt + 1) ~sequential:(sequential || degrades cls)
                  end
            end
          in
          let st =
            go
              (List.length prior_fails + 1)
              ~sequential:(List.exists degrades prior_fails)
          in
          { jr_job = job; jr_status = st; jr_replayed = false }
        end
  in
  (* One job at a time, declared order: records stream to the journal as
     they happen, so a killed process keeps even a partial job's failed
     attempts. *)
  let run_sequential () =
    let record tag fields payload =
      match writer with
      | Some w -> J.add w { J.tag; fields; payload }
      | None -> ()
    in
    (* Consecutive exhausted jobs per app; reset by a success, never by a
       quarantined job (once open, the breaker stays open). *)
    let breaker : (string, int) Hashtbl.t = Hashtbl.create 8 in
    let app_failures app =
      Option.value (Hashtbl.find_opt breaker app) ~default:0
    in
    let results = ref [] in
    let processed = ref 0 in
    let interrupted = ref false in
    List.iter
      (fun job ->
        if !interrupted then ()
        else if
          match config.stop_after with
          | Some n -> !processed >= n
          | None -> false
        then interrupted := true
        else begin
          let res =
            process ~app_failures:(fun () -> app_failures job.j_app) ~record job
          in
          incr processed;
          (match res.jr_status with
          | Gave_up _ ->
              Hashtbl.replace breaker job.j_app (app_failures job.j_app + 1)
          | Done _ -> Hashtbl.replace breaker job.j_app 0
          | Quarantined -> ());
          results := res :: !results
        end)
      jobs;
    (List.rev !results, !interrupted)
  in
  (* Up to [job_workers] jobs in flight on the domain pool. The unit of
     scheduling is the per-app *chain* (that app's jobs, declared order):
     the breaker counts consecutive exhausted jobs of one app, so a chain
     owns its count locally and every job's terminal status is exactly
     what the sequential walk computes — which is what makes the merged
     report byte-identical at any width. Journal records are buffered per
     job and appended as one group at job completion (completion order
     across jobs, declared order within one); [restore] keys replay by
     job id, so the interleaving is immaterial. The price of buffering: a
     kill loses in-flight jobs' partial attempts and resume re-runs them
     from attempt 1 — deterministic, hence still byte-identical. *)
  let run_concurrent () =
    let jw = config.job_workers in
    let pos = Hashtbl.create (List.length jobs) in
    List.iteri (fun i j -> Hashtbl.replace pos j.j_id i) jobs;
    let chains =
      let tbl : (string, job list ref) Hashtbl.t = Hashtbl.create 8 in
      let order = ref [] in
      List.iter
        (fun j ->
          match Hashtbl.find_opt tbl j.j_app with
          | Some r -> r := j :: !r
          | None ->
              let r = ref [ j ] in
              Hashtbl.add tbl j.j_app r;
              order := j.j_app :: !order)
        jobs;
      List.rev_map (fun app -> List.rev !(Hashtbl.find tbl app)) !order
    in
    let results = Array.make (List.length jobs) None in
    let processed = Atomic.make 0 in
    let stop = Atomic.make false in
    let interrupted = Atomic.make false in
    let limit =
      match config.stop_after with Some n -> n | None -> max_int
    in
    let journal_lock = Mutex.create () in
    let chain_task chain () =
      let fails = ref 0 in
      List.iter
        (fun (job : job) ->
          if Atomic.get stop || Atomic.get processed >= limit then begin
            (* [stop_after] is a chaos hook: the check is racy across
               chains (a few extra jobs may finish), but any skipped job
               marks the batch interrupted, and resume-is-replay makes
               the merged report independent of where the cut landed. *)
            Atomic.set interrupted true;
            Atomic.set stop true
          end
          else begin
            let buffered = ref [] in
            let record tag fields payload =
              buffered := { J.tag; fields; payload } :: !buffered
            in
            let res = process ~app_failures:(fun () -> !fails) ~record job in
            (match writer with
            | Some w when !buffered <> [] ->
                Mutex.lock journal_lock;
                Fun.protect
                  ~finally:(fun () -> Mutex.unlock journal_lock)
                  (fun () -> List.iter (J.add w) (List.rev !buffered))
            | Some _ | None -> ());
            Atomic.incr processed;
            (match res.jr_status with
            | Gave_up _ -> incr fails
            | Done _ -> fails := 0
            | Quarantined -> ());
            results.(Hashtbl.find pos job.j_id) <- Some res
          end)
        chain
    in
    let outcomes =
      Hawkset.Domain_pool.run_queue
        (Hawkset.Domain_pool.global ())
        ~workers:jw
        (Array.of_list (List.map (fun c -> chain_task c) chains))
    in
    Array.iter (function Error e -> raise e | Ok () -> ()) outcomes;
    ( Array.to_list results |> List.filter_map Fun.id,
      Atomic.get interrupted )
  in
  let results, interrupted =
    Fun.protect
      ~finally:(fun () -> match writer with Some w -> J.close w | None -> ())
      (fun () ->
        Obs.Registry.with_span "batch" (fun () ->
            if config.job_workers > 1 then run_concurrent ()
            else run_sequential ()))
  in
  {
    b_fingerprint = fp;
    b_config = config;
    b_jobs = jobs;
    b_results = results;
    b_interrupted = interrupted;
  }

(* --- merged report and summaries -------------------------------------- *)

let attempts_of = function
  | Done d -> d.d_attempts
  | Gave_up g -> g.g_attempts
  | Quarantined -> 0

let failures_of = function
  | Done d -> d.d_failures
  | Gave_up g -> g.g_failures
  | Quarantined -> []

(* [replayed] stays out of this list (and so out of [merged_json]): it is
   a property of the process, not the declaration, and would break the
   byte-identical-resume contract. It lives in {!counters} instead. *)
let summary b =
  let res = b.b_results in
  let count p = List.length (List.filter p res) in
  let is s jr = status_string jr.jr_status = s in
  let sum f = List.fold_left (fun acc jr -> acc + f jr) 0 res in
  [
    ("jobs", List.length res);
    ("ok", count (fun jr -> match jr.jr_status with Done _ -> true | _ -> false));
    ("ok_clean", count (is "ok"));
    ("ok_retried", count (is "ok-retried"));
    ("ok_sequential", count (is "ok-sequential"));
    ("ok_truncated", count (is "ok-truncated"));
    ("failed", count (is "failed"));
    ("quarantined", count (is "quarantined"));
    ("attempts", sum (fun jr -> attempts_of jr.jr_status));
    ("retries", sum (fun jr -> max 0 (attempts_of jr.jr_status - 1)));
  ]

let merged_json b =
  let module Json = Obs.Json in
  let job_json (jr : job_result) =
    let j = jr.jr_job in
    let races_json =
      match jr.jr_status with Done d -> d.d_races_json | _ -> "null"
    in
    Json.obj
      [
        ("id", Json.int j.j_id);
        ("app", Json.str j.j_app);
        ("seed", Json.int j.j_seed);
        ("policy", Json.str j.j_policy);
        ("ops", Json.int j.j_ops);
        ("status", Json.str (status_string jr.jr_status));
        ("attempts", Json.int (attempts_of jr.jr_status));
        ( "sequential",
          Json.bool
            (match jr.jr_status with Done d -> d.d_sequential | _ -> false) );
        ( "truncations",
          Json.int
            (match jr.jr_status with Done d -> d.d_truncations | _ -> 0) );
        ( "failures",
          Json.arr
            (List.map
               (fun c -> Json.str (failure_to_string c))
               (failures_of jr.jr_status)) );
        ("races", races_json);
      ]
  in
  Json.obj
    [
      ("schema", Json.str "hawkset.batch_report/1");
      ("fingerprint", Json.str b.b_fingerprint);
      ("jobs", Json.arr (List.map job_json b.b_results));
      ( "summary",
        Json.obj (List.map (fun (k, v) -> (k, Json.int v)) (summary b)) );
    ]

let counters b =
  let res = b.b_results in
  let count p = List.length (List.filter p res) in
  let sum f = List.fold_left (fun acc jr -> acc + f jr) 0 res in
  let class_count c =
    sum (fun jr ->
        List.length (List.filter (fun x -> x = c) (failures_of jr.jr_status)))
  in
  [
    ("supervise.attempts", sum (fun jr -> attempts_of jr.jr_status));
    ("supervise.failures.corrupt_trace", class_count Corrupt_trace);
    ("supervise.failures.oom", class_count Oom);
    ("supervise.failures.pipeline_exn", class_count Pipeline_exn);
    ("supervise.failures.timeout", class_count Timeout);
    ("supervise.failures.worker_lost", class_count Worker_lost);
    ( "supervise.gave_up",
      count (fun jr ->
          match jr.jr_status with Gave_up _ -> true | _ -> false) );
    ("supervise.jobs", List.length res);
    ( "supervise.quarantined",
      count (fun jr -> jr.jr_status = Quarantined) );
    ("supervise.replayed", count (fun jr -> jr.jr_replayed));
    ("supervise.retries", sum (fun jr -> max 0 (attempts_of jr.jr_status - 1)));
  ]

let manifest b =
  let uniq proj =
    String.concat ","
      (List.sort_uniq String.compare (List.map proj b.b_jobs))
  in
  Obs.Manifest.make
    ~labels:
      [
        ("apps", uniq (fun j -> j.j_app));
        ("attempts", string_of_int b.b_config.attempts);
        ("breaker", string_of_int b.b_config.breaker_threshold);
        ("fingerprint", b.b_fingerprint);
        ("job_workers", string_of_int b.b_config.job_workers);
        ("pipeline_jobs", string_of_int b.b_config.pipeline_jobs);
        ("policies", uniq (fun j -> j.j_policy));
        ("seeds", uniq (fun j -> string_of_int j.j_seed));
      ]
    ~counters:(counters b)
    ~gauges:
      [ ("supervise.interrupted", if b.b_interrupted then 1.0 else 0.0) ]
    ()
