(** Supervised batch execution: a declared job set run to completion.

    The paper's headline — one execution per workload suffices — makes
    the production shape of HawkSet a large batch of independent
    analyses (app × seed × schedule policy × pipeline config) rather
    than a single run. At that scale the failure modes change: one hung
    shard, OOM, corrupt trace or SIGKILL must cost one job (or one
    attempt), never the campaign. This module is the supervision layer
    above {!Hawkset.Pipeline}:

    {ul
    {- {b Budgets}: each attempt runs under a wall-clock deadline and a
       live-heap budget ({!Obs.Budget}, the [Gc.alarm] machinery), with
       the deadline also threaded into the pipeline's cooperative
       stage deadlines.}
    {- {b Failure taxonomy}: every failed attempt is classified as
       {!failure} ([Timeout | Oom | Corrupt_trace | Pipeline_exn |
       Worker_lost]) by {!classify_exn}.}
    {- {b Retry}: deterministic exponential backoff with seeded jitter
       ({!backoff_delay_ms} is a pure function of (config, job,
       attempt)) and a bounded attempt count. [Worker_lost] and [Oom]
       failures degrade the remaining attempts to sequential analysis
       ([jobs = 1]) — less parallelism, smaller footprint, no pool.}
    {- {b Circuit breaker}: after [breaker_threshold] consecutive jobs
       of the same application exhaust their attempts, the app's
       remaining jobs are quarantined without running.}
    {- {b Graceful degradation}: the batch always terminates with a
       merged report plus a degradation table — work is dropped job by
       job, never the campaign.}
    {- {b Durability}: an append-only FNV-checksummed journal
       ({!Trace.Journal}) records every attempt and embeds each
       completed job's {!Hawkset.Report.to_json} bytes, so a killed
       batch resumed with [resume:true] replays completed jobs verbatim
       and produces a merged report {e byte-identical} to an
       uninterrupted run.}} *)

(** The failure taxonomy. Every way an attempt can die maps onto one of
    these five classes; the class drives the retry policy and the
    degradation table. *)
type failure = Timeout | Oom | Corrupt_trace | Pipeline_exn | Worker_lost

val failure_to_string : failure -> string
(** ["timeout" | "oom" | "corrupt-trace" | "pipeline-exn" |
    "worker-lost"]. *)

val failure_of_string : string -> (failure, string) result

val classify_exn : exn -> failure
(** [Obs.Budget.Exceeded `Wall] is a [Timeout], [`Heap] an [Oom];
    {!Trace.Trace_io.Parse_error} is a [Corrupt_trace];
    {!Hawkset.Domain_pool.Worker_lost} a [Worker_lost]; anything else a
    [Pipeline_exn]. *)

type job = {
  j_id : int;  (** Position in the batch's deterministic enumeration. *)
  j_app : string;
  j_seed : int;  (** Workload (and schedule) seed. *)
  j_policy : string;
      (** Scheduler policy: ["round-robin" | "random" | "delay" |
          "pct"]. *)
  j_ops : int;
}

val policy_of_string : string -> (Machine.Sched.policy, string) result

val jobs_of :
  apps:string list ->
  seeds:int list ->
  policies:string list ->
  ops:int ->
  (job list, string) result
(** The cross product (apps outermost, then seeds, then policies) with
    ids assigned in enumeration order — the batch's declared job set.
    [Error] on an unknown application or policy name. *)

(** An injected fault (for chaos testing and the CI kill/resume smoke):
    the first [f_times] attempts of job [f_job] raise the real exception
    of class [f_class] before any work runs, so classification, retry,
    backoff and journaling all exercise their production paths. *)
type fault = { f_job : int; f_class : failure; f_times : int }

val fault_of_string : string -> (fault, string) result
(** ["JOB:CLASS[:COUNT]"], e.g. ["2:timeout"] (fails once) or
    ["0:oom:99"] (fails every attempt). *)

type config = {
  attempts : int;  (** Max attempts per job (default 3). *)
  backoff_ms : int;
      (** Base backoff; attempt [k] waits [backoff_ms * 2^(k-1)] plus
          seeded jitter in [\[0, backoff_ms)]. [0] disables sleeping
          (tests, CI). *)
  backoff_seed : int;  (** Jitter seed (default 42). *)
  deadline_s : float option;  (** Per-attempt wall-clock budget. *)
  max_heap_mb : float option;  (** Per-attempt live-heap budget. *)
  breaker_threshold : int;
      (** Consecutive exhausted jobs of one app before quarantine
          (default 2). *)
  pipeline_jobs : int;  (** Stage-3 analysis domains per job. *)
  job_workers : int;
      (** Jobs in flight at once (default 1). With [> 1], per-app job
          chains run concurrently on the domain pool and every job's
          stage-3 analysis is forced sequential so total domains stay
          bounded by the width; the merged report is byte-identical to
          the [job_workers = 1] run (see DESIGN), so this knob — like
          [pipeline_jobs] — trades only wall-clock time and is excluded
          from the batch {!fingerprint}. *)
  faults : fault list;
  stop_after : int option;
      (** Chaos hook: stop the batch loop after this many jobs reach a
          terminal state (the in-process analogue of a mid-batch kill;
          the CLI's [--kill-after] exits the process on top of it). *)
}

val default_config : config

(** A job's terminal state. *)
type status =
  | Done of {
      d_attempts : int;
      d_sequential : bool;  (** Succeeded after degrading to [jobs=1]. *)
      d_truncations : int;
          (** {!Hawkset.Pipeline.result.truncated} entries of the
              successful attempt (0 = complete analysis). *)
      d_failures : failure list;  (** Failures survived, attempt order. *)
      d_races_json : string;  (** {!Hawkset.Report.to_json} bytes. *)
    }
  | Gave_up of { g_attempts : int; g_failures : failure list }
      (** Attempts exhausted; the job's report is dropped, the batch
          continues. *)
  | Quarantined  (** Circuit breaker: never attempted. *)

val status_string : status -> string
(** ["ok" | "ok-retried" | "ok-sequential" | "ok-truncated" | "failed"
    | "quarantined"] (sequential wins over truncated wins over
    retried). *)

type job_result = {
  jr_job : job;
  jr_status : status;
  jr_replayed : bool;  (** Restored from the journal, not executed. *)
}

type batch = {
  b_fingerprint : string;
      (** FNV hash of the declared job set + supervision knobs; a resume
          against a journal with a different fingerprint is refused. *)
  b_config : config;
  b_jobs : job list;
  b_results : job_result list;
      (** Declared job order; a prefix when [b_interrupted] (with
          [job_workers > 1] an interrupted batch keeps whichever jobs
          reached a terminal state, still in declared order). *)
  b_interrupted : bool;  (** [stop_after] fired before the last job. *)
}

exception Resume_mismatch of { expected : string; found : string option }
(** [resume:true] against a journal recorded for a different batch
    declaration (or with an unreadable header record). *)

val fingerprint : config -> job list -> string

val backoff_delay_ms : config -> job:int -> attempt:int -> int
(** Delay before retrying [attempt] (the attempt that just failed) of
    [job]: [backoff_ms * 2^(attempt-1)] plus jitter drawn from a PRNG
    seeded with (backoff_seed, job, attempt) — deterministic, so two
    runs of the same batch back off identically. [0] when
    [backoff_ms = 0]. *)

val run :
  ?journal:string ->
  ?resume:bool ->
  ?cache:Hawkset.Result_cache.t ->
  ?config:config ->
  job list ->
  batch
(** Execute the batch under supervision — one job at a time by default,
    up to [config.job_workers] per-app chains concurrently otherwise.
    With [journal] set, every attempt is recorded durably (sequential
    mode streams records as they happen; concurrent mode appends each
    job's records as one group at job completion, so completion order
    across jobs is nondeterministic while replay stays keyed by job id);
    with [resume:true] as well, jobs already terminal in the journal are
    replayed from their recorded bytes (partially-attempted jobs
    continue from their next attempt in sequential mode; concurrent mode
    re-runs them from attempt 1 — deterministic, so the merged report is
    unchanged), and the journal is extended in place. A damaged journal
    tail (mid-write kill) is salvaged: valid records are kept, the rest
    re-executed. With [cache] set, an attempt whose workload trace
    fingerprint (plus analysis-config fingerprint) is cached skips
    stages 2–3 and embeds the recorded report bytes — byte-identical,
    since the cached bytes came from an identical trace. Raises
    {!Resume_mismatch} when the journal belongs to a different
    declaration, [Invalid_argument] on an unknown app or policy in
    [jobs]. *)

val merged_json : batch -> string
(** The merged batch report (schema ["hawkset.batch_report/1"]): one
    entry per terminal job with its status, attempt count, failure
    history and verbatim race-report JSON, plus a summary block.
    Deterministic — and byte-identical between an uninterrupted run and
    a kill + resume of the same declaration, because replayed entries
    are the recorded bytes themselves. *)

val summary : batch -> (string * int) list
(** Degradation summary, in rendering order: jobs, ok, ok-clean,
    ok-retried, ok-sequential, ok-truncated, failed, quarantined,
    attempts, retries, replayed. *)

val counters : batch -> (string * int) list
(** The [supervise.*] counters for this batch (also bumped into
    {!Obs.Registry.global} while it runs): jobs, attempts, retries,
    replayed, quarantined, gave_up, and one [supervise.failures.*] per
    taxonomy class. *)

val manifest : batch -> Obs.Manifest.t
(** Labels (apps, seeds, policies, attempts, pipeline_jobs, breaker),
    the {!counters}, and a [supervise.interrupted] gauge. *)
