(* Open-addressing hash tables specialised to non-negative int keys.

   The stdlib [Hashtbl] allocates a bucket cell per insertion and (for
   the tuple keys these tables replace) a key tuple per probe. These
   tables store keys (and values) in flat int arrays with linear
   probing: probes and insertions never allocate, and [clear] retains
   the capacity — which is what makes the analysis memo tables "warm"
   when a domain pool reuses them across runs. Empty slots are marked
   with -1, so keys must be >= 0 (packed keys always are).

   Deletion uses tombstones (-2): a removed slot keeps probe chains
   intact (lookups walk through it, inserts may reuse it), and the load
   trigger counts live + dead slots so heavy delete/insert churn rehashes
   — purging tombstones at the same capacity when the live count alone
   would not justify doubling — instead of degrading probes to O(n). *)

let empty_key = -1
let tomb_key = -2

(* Fibonacci-style multiplicative mixing; [land mask] of the result is
   well distributed even for sequential keys. The multiplier is the
   64-bit golden-ratio constant truncated to an OCaml int. *)
let hash k = k * 0x2545F4914F6CDD1D

module Set = struct
  type t = {
    mutable keys : int array;
    mutable mask : int;
    mutable count : int;
    mutable dead : int; (* tombstoned slots still occupying the array *)
  }

  let rec ceil_pow2 n c = if c >= n then c else ceil_pow2 n (c * 2)

  let create ?(size = 8) () =
    let cap = ceil_pow2 (max 8 size) 8 in
    { keys = Array.make cap empty_key; mask = cap - 1; count = 0; dead = 0 }

  let length t = t.count

  (* Lookup probe: stops at a match or a genuinely-empty slot. A
     tombstone (-2) matches neither (keys are >= 0), so chains walk
     through deleted slots without a dedicated branch. *)
  let rec probe keys mask k i =
    let slot = keys.(i) in
    if slot = empty_key || slot = k then i else probe keys mask k ((i + 1) land mask)

  let index t k = probe t.keys t.mask k (hash k land t.mask)

  (* Insert probe: like [probe] but remembers the first tombstone passed,
     so a miss lands on it instead of extending the chain. *)
  let rec insert_slot keys mask k i tomb =
    let slot = keys.(i) in
    if slot = k then i
    else if slot = empty_key then (if tomb >= 0 then tomb else i)
    else
      let tomb = if slot = tomb_key && tomb < 0 then i else tomb in
      insert_slot keys mask k ((i + 1) land mask) tomb

  (* Rehash when live + dead slots crowd the array: double if the live
     count alone trips the load factor, otherwise rebuild at the same
     capacity purely to purge tombstones. *)
  let grow t =
    let old = t.keys in
    let cap =
      if 2 * t.count > t.mask then 2 * Array.length old else Array.length old
    in
    t.keys <- Array.make cap empty_key;
    t.mask <- cap - 1;
    t.dead <- 0;
    Array.iter
      (fun k ->
        if k >= 0 then
          t.keys.(probe t.keys t.mask k (hash k land t.mask)) <- k)
      old

  let mem t k = t.keys.(index t k) = k

  (* [add t k] inserts [k] and reports whether it was absent — the dedup
     hot path, one probe for both the membership test and the insert. *)
  let add t k =
    let i = insert_slot t.keys t.mask k (hash k land t.mask) (-1) in
    if t.keys.(i) = k then false
    else begin
      if t.keys.(i) = tomb_key then t.dead <- t.dead - 1;
      t.keys.(i) <- k;
      t.count <- t.count + 1;
      if 2 * (t.count + t.dead) > t.mask then grow t;
      true
    end

  let remove t k =
    let i = index t k in
    if t.keys.(i) = k then begin
      t.keys.(i) <- tomb_key;
      t.count <- t.count - 1;
      t.dead <- t.dead + 1;
      true
    end
    else false

  let clear t =
    if t.count > 0 || t.dead > 0 then begin
      Array.fill t.keys 0 (Array.length t.keys) empty_key;
      t.count <- 0;
      t.dead <- 0
    end

  let iter f t =
    Array.iter (fun k -> if k >= 0 then f k) t.keys
end

module Map = struct
  type t = {
    mutable keys : int array;
    mutable vals : int array;
    mutable mask : int;
    mutable count : int;
    mutable dead : int;
  }

  let create ?(size = 8) () =
    let cap = Set.ceil_pow2 (max 8 size) 8 in
    {
      keys = Array.make cap empty_key;
      vals = Array.make cap 0;
      mask = cap - 1;
      count = 0;
      dead = 0;
    }

  let length t = t.count

  let index t k = Set.probe t.keys t.mask k (hash k land t.mask)

  let grow t =
    let okeys = t.keys and ovals = t.vals in
    let cap =
      if 2 * t.count > t.mask then 2 * Array.length okeys
      else Array.length okeys
    in
    t.keys <- Array.make cap empty_key;
    t.vals <- Array.make cap 0;
    t.mask <- cap - 1;
    t.dead <- 0;
    Array.iteri
      (fun i k ->
        if k >= 0 then begin
          let j = Set.probe t.keys t.mask k (hash k land t.mask) in
          t.keys.(j) <- k;
          t.vals.(j) <- ovals.(i)
        end)
      okeys

  (* Values must be >= 0: [find] returns -1 for an absent key so the
     memo lookup is a single probe with no option allocation. *)
  let find t k =
    let i = index t k in
    if t.keys.(i) = k then t.vals.(i) else -1

  let set t k v =
    let i = Set.insert_slot t.keys t.mask k (hash k land t.mask) (-1) in
    if t.keys.(i) = k then t.vals.(i) <- v
    else begin
      if t.keys.(i) = tomb_key then t.dead <- t.dead - 1;
      t.keys.(i) <- k;
      t.vals.(i) <- v;
      t.count <- t.count + 1;
      if 2 * (t.count + t.dead) > t.mask then grow t
    end

  let remove t k =
    let i = index t k in
    if t.keys.(i) = k then begin
      t.keys.(i) <- tomb_key;
      t.count <- t.count - 1;
      t.dead <- t.dead + 1;
      true
    end
    else false

  let clear t =
    if t.count > 0 || t.dead > 0 then begin
      Array.fill t.keys 0 (Array.length t.keys) empty_key;
      t.count <- 0;
      t.dead <- 0
    end

  let iter_keys f t =
    Array.iter (fun k -> if k >= 0 then f k) t.keys
end
