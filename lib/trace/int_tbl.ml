(* Open-addressing hash tables specialised to non-negative int keys.

   The stdlib [Hashtbl] allocates a bucket cell per insertion and (for
   the tuple keys these tables replace) a key tuple per probe. These
   tables store keys (and values) in flat int arrays with linear
   probing: probes and insertions never allocate, and [clear] retains
   the capacity — which is what makes the analysis memo tables "warm"
   when a domain pool reuses them across runs. Empty slots are marked
   with -1, so keys must be >= 0 (packed keys always are). *)

let empty_key = -1

(* Fibonacci-style multiplicative mixing; [land mask] of the result is
   well distributed even for sequential keys. The multiplier is the
   64-bit golden-ratio constant truncated to an OCaml int. *)
let hash k = k * 0x2545F4914F6CDD1D

module Set = struct
  type t = { mutable keys : int array; mutable mask : int; mutable count : int }

  let rec ceil_pow2 n c = if c >= n then c else ceil_pow2 n (c * 2)

  let create ?(size = 8) () =
    let cap = ceil_pow2 (max 8 size) 8 in
    { keys = Array.make cap empty_key; mask = cap - 1; count = 0 }

  let length t = t.count

  let rec probe keys mask k i =
    let slot = keys.(i) in
    if slot = empty_key || slot = k then i else probe keys mask k ((i + 1) land mask)

  let index t k = probe t.keys t.mask k (hash k land t.mask)

  let grow t =
    let old = t.keys in
    let cap = 2 * Array.length old in
    t.keys <- Array.make cap empty_key;
    t.mask <- cap - 1;
    Array.iter
      (fun k ->
        if k <> empty_key then
          t.keys.(probe t.keys t.mask k (hash k land t.mask)) <- k)
      old

  let mem t k = t.keys.(index t k) = k

  (* [add t k] inserts [k] and reports whether it was absent — the dedup
     hot path, one probe for both the membership test and the insert. *)
  let add t k =
    let i = index t k in
    if t.keys.(i) = k then false
    else begin
      t.keys.(i) <- k;
      t.count <- t.count + 1;
      if 2 * t.count > t.mask then grow t;
      true
    end

  let clear t =
    if t.count > 0 then begin
      Array.fill t.keys 0 (Array.length t.keys) empty_key;
      t.count <- 0
    end

  let iter f t =
    Array.iter (fun k -> if k <> empty_key then f k) t.keys
end

module Map = struct
  type t = {
    mutable keys : int array;
    mutable vals : int array;
    mutable mask : int;
    mutable count : int;
  }

  let create ?(size = 8) () =
    let cap = Set.ceil_pow2 (max 8 size) 8 in
    {
      keys = Array.make cap empty_key;
      vals = Array.make cap 0;
      mask = cap - 1;
      count = 0;
    }

  let length t = t.count

  let index t k = Set.probe t.keys t.mask k (hash k land t.mask)

  let grow t =
    let okeys = t.keys and ovals = t.vals in
    let cap = 2 * Array.length okeys in
    t.keys <- Array.make cap empty_key;
    t.vals <- Array.make cap 0;
    t.mask <- cap - 1;
    Array.iteri
      (fun i k ->
        if k <> empty_key then begin
          let j = Set.probe t.keys t.mask k (hash k land t.mask) in
          t.keys.(j) <- k;
          t.vals.(j) <- ovals.(i)
        end)
      okeys

  (* Values must be >= 0: [find] returns -1 for an absent key so the
     memo lookup is a single probe with no option allocation. *)
  let find t k =
    let i = index t k in
    if t.keys.(i) = k then t.vals.(i) else -1

  let set t k v =
    let i = index t k in
    if t.keys.(i) = k then t.vals.(i) <- v
    else begin
      t.keys.(i) <- k;
      t.vals.(i) <- v;
      t.count <- t.count + 1;
      if 2 * t.count > t.mask then grow t
    end

  let clear t =
    if t.count > 0 then begin
      Array.fill t.keys 0 (Array.length t.keys) empty_key;
      t.count <- 0
    end

  let iter_keys f t =
    Array.iter (fun k -> if k <> empty_key then f k) t.keys
end
