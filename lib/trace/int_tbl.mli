(** Open-addressing hash tables for non-negative int keys.

    Allocation-free probes and inserts (flat int arrays, linear
    probing); [clear] keeps the capacity, so a table reused across runs
    stays "warm". Keys must be [>= 0] — packed keys ({!Packed_key})
    always are; -1 is the internal empty-slot marker and -2 the
    tombstone left by {!Set.remove}/{!Map.remove}. Tombstones keep probe
    chains intact, are reused by later inserts, and count toward the
    load trigger, so heavy delete/insert churn rehashes (purging them)
    instead of degrading probes. *)

module Set : sig
  type t

  val create : ?size:int -> unit -> t
  val length : t -> int

  val add : t -> int -> bool
  (** [add t k] inserts [k]; [true] iff it was absent (the dedup test
      and the insert in a single probe). *)

  val mem : t -> int -> bool

  val remove : t -> int -> bool
  (** [remove t k] tombstones [k]'s slot; [true] iff it was present.
      Capacity is retained; the slot is reused by later inserts. *)

  val clear : t -> unit
  val iter : (int -> unit) -> t -> unit
end

module Map : sig
  type t

  val create : ?size:int -> unit -> t
  val length : t -> int

  val find : t -> int -> int
  (** [find t k] is the value bound to [k], or [-1] when absent — values
      must therefore be [>= 0] (the memo tables store 0/1). *)

  val set : t -> int -> int -> unit

  val remove : t -> int -> bool
  (** [remove t k] tombstones [k]'s slot; [true] iff it was present. *)

  val clear : t -> unit
  val iter_keys : (int -> unit) -> t -> unit
end
