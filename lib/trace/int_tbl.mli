(** Open-addressing hash tables for non-negative int keys.

    Allocation-free probes and inserts (flat int arrays, linear
    probing); [clear] keeps the capacity, so a table reused across runs
    stays "warm". Keys must be [>= 0] — packed keys ({!Packed_key})
    always are; -1 is the internal empty-slot marker. *)

module Set : sig
  type t

  val create : ?size:int -> unit -> t
  val length : t -> int

  val add : t -> int -> bool
  (** [add t k] inserts [k]; [true] iff it was absent (the dedup test
      and the insert in a single probe). *)

  val mem : t -> int -> bool
  val clear : t -> unit
  val iter : (int -> unit) -> t -> unit
end

module Map : sig
  type t

  val create : ?size:int -> unit -> t
  val length : t -> int

  val find : t -> int -> int
  (** [find t k] is the value bound to [k], or [-1] when absent — values
      must therefore be [>= 0] (the memo tables store 0/1). *)

  val set : t -> int -> int -> unit
  val clear : t -> unit
  val iter_keys : (int -> unit) -> t -> unit
end
