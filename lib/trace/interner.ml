module Make (H : Hashtbl.HashedType) = struct
  module Tbl = Hashtbl.Make (H)

  type t = {
    ids : int Tbl.t;
    mutable values : H.t array;
    mutable count : int;
  }

  let create ?(size = 64) () =
    { ids = Tbl.create size; values = [||]; count = 0 }

  (* [Tbl.find] + exception instead of [find_opt]: the hit path (the
     overwhelmingly common one — collection interns per event, values
     repeat per thread) allocates nothing. *)
  let intern t v =
    match Tbl.find t.ids v with
    | id -> id
    | exception Not_found ->
        let id = t.count in
        Tbl.add t.ids v id;
        let cap = Array.length t.values in
        if id = cap then begin
          let values = Array.make (max 8 (2 * cap)) v in
          Array.blit t.values 0 values 0 cap;
          t.values <- values
        end;
        t.values.(id) <- v;
        t.count <- id + 1;
        id

  let get t id =
    if id < 0 || id >= t.count then
      invalid_arg "Interner.get: unknown id";
    t.values.(id)

  let count t = t.count

  let iter f t =
    for id = 0 to t.count - 1 do
      f id t.values.(id)
    done
end
