(* Append-only checksummed record journal. See the .mli for the wire
   format. Integrity is per record (the Trace_io trailer guards a whole
   file; a journal must stay readable after a mid-write kill), so each
   line carries the FNV-1a hash of its own tag, fields and payload. *)

let header = "# hawkset-journal 1"

type record = { tag : string; fields : string list; payload : string option }

(* FNV-1a 64, the Trace_io trailer's constants. *)
let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let fnv_fold h s =
  let h = ref h in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) fnv_prime)
    s;
  !h

let fnv_hex s = Printf.sprintf "%016Lx" (fnv_fold fnv_offset s)

(* The checksummed body: tokens joined by spaces, then the payload behind
   a separator no token can contain. *)
let body_string r =
  String.concat " " (r.tag :: r.fields)
  ^ (match r.payload with None -> "" | Some p -> "|" ^ p)

let is_token s =
  s <> ""
  && String.for_all (fun c -> Char.code c > 0x20 && Char.code c <> 0x7f) s

let validate r =
  if not (is_token r.tag) then
    invalid_arg (Printf.sprintf "Journal.add: bad tag %S" r.tag);
  List.iter
    (fun f ->
      if not (is_token f) then
        invalid_arg (Printf.sprintf "Journal.add: bad field %S" f))
    r.fields

type writer = { oc : out_channel }

let create path =
  let oc = open_out_gen [ Open_wronly; Open_creat; Open_trunc ] 0o644 path in
  output_string oc header;
  output_char oc '\n';
  flush oc;
  { oc }

let append path =
  if not (Sys.file_exists path) then create path
  else begin
    let oc = open_out_gen [ Open_wronly; Open_append ] 0o644 path in
    { oc }
  end

let add w r =
  validate r;
  let plen = match r.payload with None -> -1 | Some p -> String.length p in
  output_string w.oc
    (Printf.sprintf "R %s %d%s %d %s\n" r.tag (List.length r.fields)
       (List.fold_left (fun acc f -> acc ^ " " ^ f) "" r.fields)
       plen
       (fnv_hex (body_string r)));
  (match r.payload with
  | None -> ()
  | Some p ->
      output_string w.oc p;
      output_char w.oc '\n');
  flush w.oc

let close w = close_out w.oc

type load_result = {
  l_records : record list;
  l_complete : bool;
  l_first_error : (int * string) option;
}

(* [take n xs] is [Some (first n, rest)] or [None] when [xs] is short. *)
let rec take n xs =
  if n = 0 then Some ([], xs)
  else
    match xs with
    | [] -> None
    | x :: tl -> (
        match take (n - 1) tl with
        | Some (pre, rest) -> Some (x :: pre, rest)
        | None -> None)

let load path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let lineno = ref 0 in
      let records = ref [] in
      let error = ref None in
      let fail l msg = error := Some (l, msg) in
      (match input_line ic with
      | l ->
          incr lineno;
          if String.trim l <> header then fail 1 "bad journal header"
      | exception End_of_file -> fail 0 "empty journal");
      (try
         while !error = None do
           match input_line ic with
           | exception End_of_file -> raise Exit
           | line -> (
               incr lineno;
               let t = String.trim line in
               if t = "" || t.[0] = '#' then ()
               else
                 let fields =
                   List.filter (fun s -> s <> "") (String.split_on_char ' ' t)
                 in
                 match fields with
                 | "R" :: tag :: n :: rest -> (
                     match int_of_string_opt n with
                     | None -> fail !lineno "bad field count"
                     | Some n when n < 0 -> fail !lineno "bad field count"
                     | Some n -> (
                         match take n rest with
                         | Some (fs, [ plen; sum ]) -> (
                             match int_of_string_opt plen with
                             | None -> fail !lineno "bad payload length"
                             | Some plen -> (
                                 let payload =
                                   if plen < 0 then Ok None
                                   else begin
                                     let buf = Bytes.create plen in
                                     match
                                       really_input ic buf 0 plen;
                                       (* the payload's trailing newline *)
                                       input_char ic
                                     with
                                     | '\n' ->
                                         incr lineno;
                                         Ok (Some (Bytes.to_string buf))
                                     | _ -> Error "payload not newline-terminated"
                                     | exception End_of_file ->
                                         Error "truncated payload"
                                   end
                                 in
                                 match payload with
                                 | Error msg -> fail !lineno msg
                                 | Ok payload ->
                                     let r = { tag; fields = fs; payload } in
                                     if fnv_hex (body_string r) <> sum then
                                       fail !lineno "record checksum mismatch"
                                     else records := r :: !records))
                         | Some _ | None ->
                             fail !lineno "malformed record line"))
                 | _ -> fail !lineno "malformed record line")
         done
       with Exit -> ());
      {
        l_records = List.rev !records;
        l_complete = !error = None;
        l_first_error = !error;
      })
