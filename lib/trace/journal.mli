(** Append-only checksummed record journal.

    The durability layer under the supervised batch runner: one record
    per line, each carrying its own FNV-1a 64-bit checksum (the same
    hash the {!Trace_io} trailer uses), with an optional length-prefixed
    binary payload for embedded documents (report JSON bytes). The
    format survives being killed mid-write the way a trace file
    survives truncation: {!load} salvages the longest valid prefix and
    reports where the damage starts, it never raises on corruption.

    {v
    # hawkset-journal 1
    R <tag> <nfields> <field>... <payload-len|-1> <fnv16hex>
    <payload-len raw bytes>          (only when payload-len >= 0)
    v}

    Tags and fields are single tokens (no whitespace); payloads are
    arbitrary bytes. The checksum covers the tag, the fields and the
    payload, so a record whose line survived but whose payload was cut
    is rejected along with everything after it. *)

type record = {
  tag : string;  (** Single token naming the record kind. *)
  fields : string list;  (** Tokens; no spaces, newlines or empties. *)
  payload : string option;  (** Arbitrary bytes, length-prefixed on disk. *)
}

val fnv_hex : string -> string
(** FNV-1a 64-bit hash of a byte string as 16 hex digits — the
    {!Trace_io} trailer's hash, exposed for fingerprinting journal-level
    identities (e.g. a batch's job-set declaration). *)

type writer

val create : string -> writer
(** Truncate (or create) the file and write the journal header. *)

val append : string -> writer
(** Open an existing journal for appending; equivalent to {!create}
    when the file does not exist. The caller is responsible for having
    validated the existing contents (normally via {!load}). *)

val add : writer -> record -> unit
(** Append one record and flush it to the OS, so a killed process loses
    at most the record being written. Raises [Invalid_argument] if the
    tag or a field is not a single non-empty token. *)

val close : writer -> unit

(** Result of a tolerant load: the longest valid prefix. *)
type load_result = {
  l_records : record list;  (** Records up to the first damage, in order. *)
  l_complete : bool;  (** [true] when the whole file parsed and verified. *)
  l_first_error : (int * string) option;
      (** Line number and message of the first damaged record, if any. *)
}

val load : string -> load_result
(** Salvage what can be salvaged: stops at the first malformed line,
    checksum mismatch or truncated payload and returns everything before
    it. Only [Sys_error] (file unreadable) escapes. *)
