(* Packed single-int keys over interned ids.

   Deduplication and memoisation tables used to key on OCaml tuples of
   small ints, paying one tuple allocation plus a polymorphic-hash
   traversal per probe. All the fields involved are either interner ids
   (dense, starting at 0), thread ids, or tiny tags, so a whole key fits
   in one immediate int — hashable and comparable without touching the
   heap. The packers below never produce a colliding key silently: a
   field that exceeds its bit budget makes the packer return [unfit]
   (callers fall back to the tuple-keyed spill path), and [pair] raises.
   Widths are exported so the boundary behaviour is testable. *)

let unfit = -1

(* Field widths for the collector's dedup keys. The per-word dedup tables
   do not include the word itself (each word cell owns its table), which
   is what makes the remaining fields fit comfortably in 62 bits. *)
let tid_bits = 9 (* threads *)
let site_bits = 17 (* distinct static program locations *)
let ls_bits = 9 (* distinct (stripped) locksets *)
let vc_bits = 12 (* distinct vector clocks *)
let kind_bits = 3 (* window end kinds, 0..4 *)

(* Logical shift: any negative [v] keeps high bits set and fails too. *)
let fits v bits = v lsr bits = 0

(* (tid, site, eff lockset, store vclock, end vclock + 1, end kind):
   9 + 17 + 9 + 12 + 12 + 3 = 62 bits. [evec] is the end-vector id plus
   one so that "no end vector" (-1) packs as 0. *)
let window_key ~tid ~site ~eff ~vec ~evec ~kind =
  if
    fits tid tid_bits && fits site site_bits && fits eff ls_bits
    && fits vec vc_bits && fits evec vc_bits && fits kind kind_bits
  then
    ((((((((tid lsl site_bits) lor site) lsl ls_bits) lor eff) lsl vc_bits)
       lor vec)
      lsl vc_bits)
     lor evec)
    lsl kind_bits
    lor kind
  else unfit

(* (tid, site, lockset, vclock): 9 + 17 + 9 + 12 = 47 bits. *)
let load_key ~tid ~site ~ls ~vec =
  if fits tid tid_bits && fits site site_bits && fits ls ls_bits
     && fits vec vc_bits
  then ((((tid lsl site_bits) lor site) lsl ls_bits) lor ls) lsl vc_bits lor vec
  else unfit

(* Lossless pair packing at 31 bits per component — the memo-table keys.
   Interner ids are dense, so 2^31 distinct values is unreachable (the
   interned values themselves would not fit in memory first); the check
   turns the impossible case into a loud error instead of a collision. *)
let pair_bits = 31
let pair_max = (1 lsl pair_bits) - 1

let pair a b =
  if fits a pair_bits && fits b pair_bits then (a lsl pair_bits) lor b
  else invalid_arg "Packed_key.pair: component exceeds 31 bits"
