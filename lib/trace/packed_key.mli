(** Packed single-int keys over interned ids.

    Replaces tuple keys (one allocation + a polymorphic hash traversal
    per table probe) with immediate ints in the collector's dedup tables
    and the analysis memo tables. Packing is collision-free by
    construction: each field gets a fixed bit budget, and a field that
    does not fit makes the packer return {!unfit} — callers must then
    fall back to a tuple-keyed spill table, never truncate. *)

val unfit : int
(** Sentinel (-1) returned when a field exceeds its width. Valid packed
    keys are always non-negative, so the sentinel cannot collide. *)

val tid_bits : int
val site_bits : int
val ls_bits : int
val vc_bits : int
val kind_bits : int
(** Field widths, exported for the boundary property tests. *)

val fits : int -> int -> bool
(** [fits v bits] is [true] iff [0 <= v < 2^bits]. *)

val window_key :
  tid:int -> site:int -> eff:int -> vec:int -> evec:int -> kind:int -> int
(** Packed window-dedup key (the word is implicit: each word cell owns
    its dedup table). [evec] must be the end-vector id {e plus one} so
    that "never closed" packs as [0]. Returns {!unfit} when any field is
    out of range. *)

val load_key : tid:int -> site:int -> ls:int -> vec:int -> int
(** Packed load-dedup key; {!unfit} when out of range. *)

val pair_bits : int
val pair_max : int

val pair : int -> int -> int
(** [pair a b] packs two ids losslessly at 31 bits each (memo-table
    keys). Raises [Invalid_argument] if a component exceeds 31 bits —
    unreachable for dense interner ids, but checked so an overflow can
    never silently collide. *)
