exception Parse_error of int * string

let header = "# hawkset-trace 1"

(* Sites: "<file>:<line>" plus an optional ";"-joined frame list. File
   names may not contain spaces, ':' is split from the right. *)
let site_to_string (s : Site.t) =
  let base = Printf.sprintf "%s:%d" s.Site.file s.Site.line in
  match s.Site.frames with
  | [] -> base
  | frames -> base ^ " " ^ String.concat ";" frames

(* [err] must be let-bound inside (a function parameter would be
   monomorphic and is used at several types). *)
let site_of_fields ~lineno fields =
  let err msg = raise (Parse_error (lineno, msg)) in
  match fields with
  | [] -> err "missing site"
  | locstr :: rest ->
      let file, line =
        match String.rindex_opt locstr ':' with
        | None -> err "site has no ':'"
        | Some i -> (
            let file = String.sub locstr 0 i in
            let l = String.sub locstr (i + 1) (String.length locstr - i - 1) in
            match int_of_string_opt l with
            | Some n -> (file, n)
            | None -> err "bad line number")
      in
      let frames =
        match rest with
        | [] -> []
        | [ fs ] -> String.split_on_char ';' fs
        | _ :: _ :: _ -> err "trailing fields"
      in
      Site.v ~frames file line

let flush_kind_to_string = function
  | Event.Clwb -> "clwb"
  | Event.Clflushopt -> "clflushopt"
  | Event.Clflush -> "clflush"

let flush_kind_of_string ~lineno = function
  | "clwb" -> Event.Clwb
  | "clflushopt" -> Event.Clflushopt
  | "clflush" -> Event.Clflush
  | s -> raise (Parse_error (lineno, Printf.sprintf "unknown flush kind %S" s))

let event_to_line ev =
  let t tid = string_of_int (Tid.to_int tid) in
  match ev with
  | Event.Store { tid; addr; size; site; non_temporal } ->
      Printf.sprintf "S %s %d %d %d %s" (t tid) addr size
        (if non_temporal then 1 else 0)
        (site_to_string site)
  | Event.Load { tid; addr; size; site } ->
      Printf.sprintf "L %s %d %d %s" (t tid) addr size (site_to_string site)
  | Event.Flush { tid; line; kind; site } ->
      Printf.sprintf "F %s %d %s %s" (t tid) line (flush_kind_to_string kind)
        (site_to_string site)
  | Event.Fence { tid; site } ->
      Printf.sprintf "M %s %s" (t tid) (site_to_string site)
  | Event.Lock_acquire { tid; lock; site } ->
      Printf.sprintf "A %s %d %s" (t tid) (Lock_id.to_int lock)
        (site_to_string site)
  | Event.Lock_release { tid; lock; site } ->
      Printf.sprintf "R %s %d %s" (t tid) (Lock_id.to_int lock)
        (site_to_string site)
  | Event.Thread_create { parent; child } ->
      Printf.sprintf "C %s %s" (t parent) (t child)
  | Event.Thread_join { waiter; joined } ->
      Printf.sprintf "J %s %s" (t waiter) (t joined)

let event_of_line_at lineno line =
  let err msg = raise (Parse_error (lineno, msg)) in
  let int s =
    match int_of_string_opt s with
    | Some v -> v
    | None -> err (Printf.sprintf "expected integer, got %S" s)
  in
  let tid s = Tid.of_int (int s) in
  let fields =
    List.filter (fun s -> s <> "") (String.split_on_char ' ' line)
  in
  match fields with
  | "S" :: t :: addr :: size :: nt :: site ->
      Event.Store
        {
          tid = tid t;
          addr = int addr;
          size = int size;
          non_temporal = int nt <> 0;
          site = site_of_fields ~lineno site;
        }
  | "L" :: t :: addr :: size :: site ->
      Event.Load
        { tid = tid t; addr = int addr; size = int size;
          site = site_of_fields ~lineno site }
  | "F" :: t :: line_addr :: kind :: site ->
      Event.Flush
        {
          tid = tid t;
          line = int line_addr;
          kind = flush_kind_of_string ~lineno kind;
          site = site_of_fields ~lineno site;
        }
  | "M" :: t :: site -> Event.Fence { tid = tid t; site = site_of_fields ~lineno site }
  | "A" :: t :: lock :: site ->
      Event.Lock_acquire
        { tid = tid t; lock = Lock_id.of_int (int lock);
          site = site_of_fields ~lineno site }
  | "R" :: t :: lock :: site ->
      Event.Lock_release
        { tid = tid t; lock = Lock_id.of_int (int lock);
          site = site_of_fields ~lineno site }
  | [ "C"; parent; child ] ->
      Event.Thread_create { parent = tid parent; child = tid child }
  | [ "J"; waiter; joined ] ->
      Event.Thread_join { waiter = tid waiter; joined = tid joined }
  | tag :: _ -> err (Printf.sprintf "unknown event tag %S" tag)
  | [] -> err "empty line"

let event_of_line line = event_of_line_at 0 line

(* ---- checksum trailer ----

   [write] appends "# trailer events=<n> fnv1a=<16-hex>" after the last
   event: an FNV-1a 64-bit hash of the canonical serialization of every
   event (each [event_to_line ev] followed by '\n'). Readers re-hash the
   canonical form of each *parsed* event, so verification is independent
   of insignificant whitespace but catches content corruption. Being a
   comment line, the trailer is invisible to pre-trailer readers. *)

let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let fnv1a_string h s =
  let h = ref h in
  String.iter
    (fun c -> h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) fnv_prime)
    s;
  Int64.mul (Int64.logxor !h 0x0aL) fnv_prime (* the trailing '\n' *)

(* The same hash the trailer records, computed in memory: a 16-hex-digit
   schedule signature. Two traces fingerprint equal iff their canonical
   serializations are byte-identical. *)
let fingerprint trace =
  let hash = ref fnv_offset in
  Tracebuf.iter (fun ev -> hash := fnv1a_string !hash (event_to_line ev)) trace;
  Printf.sprintf "%016Lx" !hash

let trailer_tag = "# trailer "

let trailer_line ~events ~hash =
  Printf.sprintf "# trailer events=%d fnv1a=%016Lx" events hash

(* [Some (events, hash)] when [trimmed] is a well-formed trailer,
   [None] when it is some other comment. A line that starts with the
   trailer tag but does not scan is reported as malformed. *)
let parse_trailer trimmed =
  if not (String.length trimmed >= String.length trailer_tag
          && String.sub trimmed 0 (String.length trailer_tag) = trailer_tag)
  then Ok None
  else
    match
      Scanf.sscanf_opt trimmed "# trailer events=%d fnv1a=%Lx%!" (fun n h ->
          (n, h))
    with
    | Some (n, h) -> Ok (Some (n, h))
    | None -> Error "malformed trailer"

let write oc trace =
  output_string oc header;
  output_char oc '\n';
  let hash = ref fnv_offset in
  Tracebuf.iter
    (fun ev ->
      let line = event_to_line ev in
      hash := fnv1a_string !hash line;
      output_string oc line;
      output_char oc '\n')
    trace;
  output_string oc (trailer_line ~events:(Tracebuf.length trace) ~hash:!hash);
  output_char oc '\n'

(* Shared scanning loop. [on_event lineno trimmed] may raise (strict) or
   record-and-stop (tolerant); [on_trailer lineno result] decides what a
   (possibly malformed) trailer means. *)
let scan_lines ic ~on_event ~on_trailer =
  let lineno = ref 0 in
  (try
     while true do
       let line = input_line ic in
       incr lineno;
       let trimmed = String.trim line in
       if trimmed <> "" then
         if trimmed.[0] = '#' then on_trailer !lineno (parse_trailer trimmed)
         else on_event !lineno trimmed
     done
   with End_of_file -> ());
  !lineno

let read ic =
  let trace = Tracebuf.create () in
  let hash = ref fnv_offset in
  let _lines =
    scan_lines ic
      ~on_event:(fun lineno trimmed ->
        let ev = event_of_line_at lineno trimmed in
        hash := fnv1a_string !hash (event_to_line ev);
        Tracebuf.push trace ev)
      ~on_trailer:(fun lineno -> function
        | Ok None -> ()
        | Error msg -> raise (Parse_error (lineno, msg))
        | Ok (Some (events, h)) ->
            if events <> Tracebuf.length trace then
              raise
                (Parse_error
                   ( lineno,
                     Printf.sprintf
                       "trailer event count mismatch: trailer says %d, trace \
                        has %d"
                       events (Tracebuf.length trace) ));
            if h <> !hash then
              raise
                (Parse_error
                   ( lineno,
                     Printf.sprintf
                       "trailer checksum mismatch: trailer says %016Lx, \
                        events hash to %016Lx"
                       h !hash )))
  in
  trace

type tolerant = {
  salvaged : Tracebuf.t;
  salvaged_events : int;
  dropped_lines : int;
  first_error : (int * string) option;
  checksum : [ `Verified | `Mismatch | `Absent ];
}

let read_tolerant ic =
  let trace = Tracebuf.create () in
  let hash = ref fnv_offset in
  let first_error = ref None in
  let dropped = ref 0 in
  let checksum = ref `Absent in
  let _lines =
    scan_lines ic
      ~on_event:(fun lineno trimmed ->
        match !first_error with
        | Some _ -> incr dropped
        | None -> (
            match event_of_line_at lineno trimmed with
            | ev ->
                hash := fnv1a_string !hash (event_to_line ev);
                Tracebuf.push trace ev
            | exception Parse_error (l, msg) ->
                first_error := Some (l, msg);
                incr dropped))
      ~on_trailer:(fun lineno -> function
        | Ok None -> ()
        | Error _ ->
            ignore lineno;
            checksum := `Mismatch
        | Ok (Some (events, h)) ->
            checksum :=
              if events = Tracebuf.length trace && h = !hash then `Verified
              else `Mismatch)
  in
  {
    salvaged = trace;
    salvaged_events = Tracebuf.length trace;
    dropped_lines = !dropped;
    first_error = !first_error;
    checksum = !checksum;
  }

let save path trace =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> write oc trace)

let load path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> read ic)

let load_tolerant path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> read_tolerant ic)
