(** Trace serialization.

    A simple line-oriented text format, one event per line, so traces can
    be collected once and analysed offline (or by other tools) — the
    workflow of the paper's pipeline, where instrumentation and analysis
    are separate stages. The format is stable and human-greppable:

    {v
    # hawkset-trace 1
    S <tid> <addr> <size> <nt:0|1> <file>:<line> [frame;frame...]
    L <tid> <addr> <size> <file>:<line> [frames]
    F <tid> <line-addr> <clwb|clflushopt|clflush> <file>:<line> [frames]
    M <tid> <file>:<line> [frames]            (sfence)
    A <tid> <lock> <file>:<line> [frames]     (acquire)
    R <tid> <lock> <file>:<line> [frames]     (release)
    C <parent> <child>                        (thread create)
    J <waiter> <joined>                       (thread join)
    # trailer events=<n> fnv1a=<16-hex>       (integrity trailer)
    v}

    [write] appends an integrity trailer: the event count plus an FNV-1a
    64-bit hash of the canonical serialization of every event. Strict
    readers verify it when present; {!load_tolerant} downgrades any
    corruption to a report and salvages the valid prefix. Traces written
    before the trailer existed (no trailer line) still load. *)

exception Parse_error of int * string
(** Line number and message. *)

val write : out_channel -> Tracebuf.t -> unit

val read : in_channel -> Tracebuf.t
(** Strict read: raises {!Parse_error} on the first malformed line, and
    at the trailer's line number when the trailer is present but its
    event count or checksum does not match the events read. *)

val save : string -> Tracebuf.t -> unit
(** [save path trace] writes the trace to [path]. *)

val load : string -> Tracebuf.t
(** Raises {!Parse_error} on malformed input and [Sys_error] on IO
    failure. *)

(** Result of a tolerant load: the longest valid prefix plus an account
    of everything that had to be dropped. Never raises {!Parse_error}. *)
type tolerant = {
  salvaged : Tracebuf.t;  (** Events up to (not including) the first bad line. *)
  salvaged_events : int;  (** [Tracebuf.length salvaged]. *)
  dropped_lines : int;
      (** Non-blank, non-comment lines not salvaged — the malformed line
          itself plus everything after it. [0] on a clean trace. *)
  first_error : (int * string) option;
      (** Line number and message of the first malformed line, if any. *)
  checksum : [ `Verified | `Mismatch | `Absent ];
      (** Trailer status: [`Verified] when present and matching the
          salvaged events, [`Mismatch] when present but disagreeing
          (corruption, or events were dropped), [`Absent] when the file
          has no trailer (pre-trailer trace, or truncated before it). *)
}

val read_tolerant : in_channel -> tolerant

val load_tolerant : string -> tolerant
(** Salvage what can be salvaged. Only [Sys_error] (file unreadable)
    escapes. *)

val event_to_line : Event.t -> string
val event_of_line : string -> Event.t
(** Raises {!Parse_error} (with line number 0). *)

val fingerprint : Tracebuf.t -> string
(** The trailer's FNV-1a hash as 16 hex digits, computed without
    serializing to disk. Equal iff the canonical serializations are
    byte-identical — a compact schedule signature for interleaving
    exploration. *)
