type t = {
  mutable events : Event.t array;
  mutable len : int;
}

let dummy =
  Event.Fence { tid = Tid.main; site = Site.none }

let create ?(capacity = 1024) () =
  { events = Array.make (max capacity 1) dummy; len = 0 }

let grow t =
  let cap = Array.length t.events in
  let events = Array.make (2 * cap) dummy in
  Array.blit t.events 0 events 0 t.len;
  t.events <- events

let push t ev =
  if t.len = Array.length t.events then grow t;
  t.events.(t.len) <- ev;
  t.len <- t.len + 1

let length t = t.len

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Tracebuf.get: index out of bounds";
  t.events.(i)

let iter f t =
  for i = 0 to t.len - 1 do
    f t.events.(i)
  done

let iteri f t =
  for i = 0 to t.len - 1 do
    f i t.events.(i)
  done

let fold f acc t =
  let acc = ref acc in
  for i = 0 to t.len - 1 do
    acc := f !acc t.events.(i)
  done;
  !acc

let to_list t = List.init t.len (fun i -> t.events.(i))

let prefix t n =
  let n = max 0 (min n t.len) in
  let events = Array.make (max n 1) dummy in
  Array.blit t.events 0 events 0 n;
  { events; len = n }

let of_list evs =
  let t = create ~capacity:(max 1 (List.length evs)) () in
  List.iter (push t) evs;
  t

type stats = {
  stores : int;
  loads : int;
  flushes : int;
  fences : int;
  lock_ops : int;
  thread_ops : int;
}

let stats t =
  let s =
    ref { stores = 0; loads = 0; flushes = 0; fences = 0; lock_ops = 0;
          thread_ops = 0 }
  in
  iter
    (fun ev ->
      let c = !s in
      s :=
        (match ev with
        | Event.Store _ -> { c with stores = c.stores + 1 }
        | Event.Load _ -> { c with loads = c.loads + 1 }
        | Event.Flush _ -> { c with flushes = c.flushes + 1 }
        | Event.Fence _ -> { c with fences = c.fences + 1 }
        | Event.Lock_acquire _ | Event.Lock_release _ ->
            { c with lock_ops = c.lock_ops + 1 }
        | Event.Thread_create _ | Event.Thread_join _ ->
            { c with thread_ops = c.thread_ops + 1 }))
    t;
  !s

let pp_stats ppf s =
  Format.fprintf ppf
    "stores=%d loads=%d flushes=%d fences=%d lock_ops=%d thread_ops=%d"
    s.stores s.loads s.flushes s.fences s.lock_ops s.thread_ops
