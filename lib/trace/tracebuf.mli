(** Execution traces.

    A trace is the append-only sequence of events collected while running
    an application under the instrumented runtime. Positions in the trace
    define a total order per execution; the analysis refers back to events
    by index. *)

type t

val create : ?capacity:int -> unit -> t
val push : t -> Event.t -> unit
val length : t -> int

val get : t -> int -> Event.t
(** [get t i] is the [i]-th event. Raises [Invalid_argument] when out of
    bounds. *)

val iter : (Event.t -> unit) -> t -> unit
val iteri : (int -> Event.t -> unit) -> t -> unit
val fold : ('a -> Event.t -> 'a) -> 'a -> t -> 'a
val to_list : t -> Event.t list

val of_list : Event.t list -> t
(** Builds a trace directly, used by tests that hand-craft executions. *)

val prefix : t -> int -> t
(** [prefix t n] is a fresh trace holding the first [n] events of [t]
    ([t] itself when [n >= length t]). Used by the pipeline's event
    budget to analyse a bounded prefix of an oversized trace. *)

(** Per-kind event counts, used by trace statistics and the evaluation
    harness. *)
type stats = {
  stores : int;
  loads : int;
  flushes : int;
  fences : int;
  lock_ops : int;
  thread_ops : int;
}

val stats : t -> stats
val pp_stats : Format.formatter -> stats -> unit
