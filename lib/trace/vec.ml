(* Growable arrays: the allocation-light replacement for the collector's
   cons-list accumulation (one cell per record) and rebuild-on-replace
   Hashtbl chains. Push is amortised O(1) and allocates only on growth. *)

type 'a t = { mutable data : 'a array; mutable len : int }

let create () = { data = [||]; len = 0 }
let length t = t.len

let push t v =
  let cap = Array.length t.data in
  if t.len = cap then begin
    let data = Array.make (max 4 (2 * cap)) v in
    Array.blit t.data 0 data 0 t.len;
    t.data <- data
  end;
  t.data.(t.len) <- v;
  t.len <- t.len + 1

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Vec.get";
  t.data.(i)

let clear t = t.len <- 0

let iter f t =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done

(* Newest-first, matching the order of the cons lists this replaces. *)
let to_reversed_array t = Array.init t.len (fun i -> t.data.(t.len - 1 - i))
