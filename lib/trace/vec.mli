(** Growable arrays (amortised O(1) push, allocation only on growth). *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val push : 'a t -> 'a -> unit
val get : 'a t -> int -> 'a

val clear : 'a t -> unit
(** Resets the length; capacity (and element references up to it) are
    retained for reuse. *)

val iter : ('a -> unit) -> 'a t -> unit

val to_reversed_array : 'a t -> 'a array
(** The elements newest-first — the iteration order of the cons lists
    this type replaces in the collector. *)
