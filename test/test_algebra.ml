(* Algebraic property tests for the two foundational lattices of the
   analysis: timestamped locksets (§3.1.2) and vector clocks.  Every law
   here is one the kernel silently relies on — e.g. lockset-intersection
   commutativity is what makes the effective lockset independent of
   whether the store or its persist is folded first, and vclock join
   being a least upper bound is what makes thread join sound. *)

module Lockset = Hawkset.Lockset
module Vclock = Hawkset.Vclock

(* Deep QCheck runs bump the iteration count via the environment (the
   @fuzz alias sets it); tier-1 stays fast and fixed-seed. *)
let count =
  match Sys.getenv_opt "HAWKSET_QCHECK_COUNT" with
  | Some s -> (try int_of_string s with _ -> 200)
  | None -> 200

(* Tier-1 is deterministic without any CI plumbing: the QCheck seed is
   fixed here, QCHECK_SEED still overrides for reproducing a report. *)
let rand =
  let seed =
    match Sys.getenv_opt "QCHECK_SEED" with
    | Some s -> (try int_of_string s with _ -> 1844674407)
    | None -> 1844674407
  in
  Random.State.make [| seed |]

let to_alcotest t = QCheck_alcotest.to_alcotest ~rand t

(* --- generators ------------------------------------------------------- *)

(* Locksets built through the public API only: a fold of acquires (with
   small timestamps, so same-lock-same-ts collisions actually happen)
   and releases over a small lock universe. *)
let lockset_of_ops ops =
  List.fold_left
    (fun ls op ->
      match op with
      | `Acq (l, ts) -> Lockset.acquire ls (Trace.Lock_id.of_int l) ~ts
      | `Rel l -> Lockset.release ls (Trace.Lock_id.of_int l))
    Lockset.empty ops

let gen_lockset =
  QCheck.Gen.(
    let op =
      frequency
        [
          (3, map2 (fun l ts -> `Acq (l, ts)) (int_bound 7) (int_bound 5));
          (1, map (fun l -> `Rel l) (int_bound 7));
        ]
    in
    map lockset_of_ops (list_size (int_bound 12) op))

let arb_lockset = QCheck.make ~print:(Format.asprintf "%a" Lockset.pp) gen_lockset
let arb_ls2 = QCheck.pair arb_lockset arb_lockset
let arb_ls3 = QCheck.triple arb_lockset arb_lockset arb_lockset

(* Vector clocks built from tick/merge over a handful of threads.  Pairs
   share a random common prefix so comparable, equal and concurrent
   clocks all appear with useful frequency. *)
let vclock_of_ticks ticks = List.fold_left Vclock.tick Vclock.zero ticks

let gen_ticks = QCheck.Gen.(list_size (int_bound 10) (int_bound 4))

let gen_vclock_pair =
  QCheck.Gen.(
    map3
      (fun common a b ->
        let base = vclock_of_ticks common in
        (List.fold_left Vclock.tick base a, List.fold_left Vclock.tick base b))
      gen_ticks gen_ticks gen_ticks)

let print_vc v = Format.asprintf "%a" Vclock.pp v

let arb_vclock =
  QCheck.make ~print:print_vc (QCheck.Gen.map vclock_of_ticks gen_ticks)

let arb_vc2 = QCheck.make ~print:(QCheck.Print.pair print_vc print_vc) gen_vclock_pair

let arb_vc3 =
  QCheck.make
    ~print:(fun (a, b, c) ->
      QCheck.Print.triple print_vc print_vc print_vc (a, b, c))
    QCheck.Gen.(
      map2
        (fun (a, b) c -> (a, b, c))
        gen_vclock_pair
        (map vclock_of_ticks gen_ticks))

let locks_of ls = List.map Trace.Lock_id.to_int (Lockset.locks ls)

(* --- lockset laws ----------------------------------------------------- *)

module Lockset_laws = struct
  let t name arb f = QCheck.Test.make ~name ~count arb f

  let inter_commutative =
    t "inter_same_thread commutative" arb_ls2 (fun (a, b) ->
        Lockset.equal (Lockset.inter_same_thread a b)
          (Lockset.inter_same_thread b a))

  let inter_associative =
    t "inter_same_thread associative" arb_ls3 (fun (a, b, c) ->
        Lockset.equal
          (Lockset.inter_same_thread a (Lockset.inter_same_thread b c))
          (Lockset.inter_same_thread (Lockset.inter_same_thread a b) c))

  let inter_idempotent =
    t "inter_same_thread idempotent" arb_lockset (fun a ->
        Lockset.equal (Lockset.inter_same_thread a a) a)

  let inter_empty_absorbing =
    t "empty absorbs intersection" arb_lockset (fun a ->
        Lockset.is_empty (Lockset.inter_same_thread a Lockset.empty)
        && Lockset.is_empty (Lockset.inter_same_thread Lockset.empty a))

  (* Monotonicity: intersecting can only shrink the lockset, and every
     survivor was a member of both sides. *)
  let inter_monotone =
    t "inter_same_thread monotone (result within both)" arb_ls2
      (fun (a, b) ->
        let i = Lockset.inter_same_thread a b in
        Lockset.cardinal i <= min (Lockset.cardinal a) (Lockset.cardinal b)
        && List.for_all
             (fun l ->
               Lockset.mem a (Trace.Lock_id.of_int l)
               && Lockset.mem b (Trace.Lock_id.of_int l))
             (locks_of i))

  let inter_no_ts_commutative =
    t "inter_same_thread_no_ts commutative on lock sets" arb_ls2
      (fun (a, b) ->
        locks_of (Lockset.inter_same_thread_no_ts a b)
        = locks_of (Lockset.inter_same_thread_no_ts b a))

  (* The ts-aware intersection refines the identity-only one: dropping
     timestamps first makes the two agree. *)
  let inter_refines_no_ts =
    t "inter_same_thread refines no_ts variant" arb_ls2 (fun (a, b) ->
        let with_ts = locks_of (Lockset.inter_same_thread a b) in
        let no_ts = locks_of (Lockset.inter_same_thread_no_ts a b) in
        List.for_all (fun l -> List.mem l no_ts) with_ts
        && locks_of
             (Lockset.inter_same_thread (Lockset.strip_ts a)
                (Lockset.strip_ts b))
           = no_ts)

  let disjoint_symmetric =
    t "disjoint_locks symmetric" arb_ls2 (fun (a, b) ->
        Lockset.disjoint_locks a b = Lockset.disjoint_locks b a)

  (* disjoint_locks ignores timestamps: it agrees with emptiness of the
     identity-only intersection (Algorithm 1 line 18). *)
  let disjoint_is_empty_inter =
    t "disjoint_locks = empty no_ts intersection" arb_ls2 (fun (a, b) ->
        Lockset.disjoint_locks a b
        = Lockset.is_empty (Lockset.inter_same_thread_no_ts a b))

  let strip_preserves_locks =
    t "strip_ts preserves lock identity" arb_lockset (fun a ->
        locks_of (Lockset.strip_ts a) = locks_of a
        && Lockset.equal
             (Lockset.strip_ts (Lockset.strip_ts a))
             (Lockset.strip_ts a))

  let hash_respects_equal =
    t "hash respects equality" arb_ls2 (fun (a, b) ->
        (not (Lockset.equal a b)) || Lockset.hash a = Lockset.hash b)

  (* Reentrant acquire keeps the outermost timestamp (the atomic-section
     delimiter of §3.1.2). *)
  let reacquire_keeps_ts =
    t "reacquire keeps the original timestamp" arb_lockset (fun a ->
        let l = Trace.Lock_id.of_int 0 in
        let first = Lockset.acquire a l ~ts:1 in
        Lockset.equal first (Lockset.acquire first l ~ts:99))

  let tests =
    List.map to_alcotest
      [
        inter_commutative; inter_associative; inter_idempotent;
        inter_empty_absorbing; inter_monotone; inter_no_ts_commutative;
        inter_refines_no_ts; disjoint_symmetric; disjoint_is_empty_inter;
        strip_preserves_locks; hash_respects_equal; reacquire_keeps_ts;
      ]
end

(* --- vclock laws ------------------------------------------------------ *)

module Vclock_laws = struct
  let t name arb f = QCheck.Test.make ~name ~count arb f

  let merge_commutative =
    t "merge commutative" arb_vc2 (fun (a, b) ->
        Vclock.equal (Vclock.merge a b) (Vclock.merge b a))

  let merge_associative =
    t "merge associative" arb_vc3 (fun (a, b, c) ->
        Vclock.equal
          (Vclock.merge a (Vclock.merge b c))
          (Vclock.merge (Vclock.merge a b) c))

  let merge_idempotent =
    t "merge idempotent" arb_vclock (fun a ->
        Vclock.equal (Vclock.merge a a) a)

  let merge_zero_identity =
    t "zero is merge identity" arb_vclock (fun a ->
        Vclock.equal (Vclock.merge a Vclock.zero) a
        && Vclock.equal (Vclock.merge Vclock.zero a) a)

  let leq_reflexive = t "leq reflexive" arb_vclock (fun a -> Vclock.leq a a)

  (* Happens-before antisymmetry: mutual ordering collapses to equality,
     so "a happened before b" and "b happened before a" can never both
     hold of distinct operations. *)
  let leq_antisymmetric =
    t "leq antisymmetric (happens-before)" arb_vc2 (fun (a, b) ->
        (not (Vclock.leq a b && Vclock.leq b a)) || Vclock.equal a b)

  let leq_transitive =
    t "leq transitive" arb_vc3 (fun (a, b, c) ->
        (not (Vclock.leq a b && Vclock.leq b c)) || Vclock.leq a c)

  (* Join is a least upper bound, not just any upper bound. *)
  let merge_is_lub =
    t "merge is the least upper bound" arb_vc3 (fun (a, b, c) ->
        let j = Vclock.merge a b in
        Vclock.leq a j && Vclock.leq b j
        && ((not (Vclock.leq a c && Vclock.leq b c)) || Vclock.leq j c))

  let tick_strictly_increases =
    t "tick strictly increases" arb_vclock (fun a ->
        let a' = Vclock.tick a 2 in
        Vclock.leq a a'
        && (not (Vclock.leq a' a))
        && Vclock.get a' 2 = Vclock.get a 2 + 1)

  let concurrent_symmetric =
    t "concurrent symmetric" arb_vc2 (fun (a, b) ->
        Vclock.concurrent a b = Vclock.concurrent b a)

  let concurrent_iff_incomparable =
    t "concurrent = incomparable under leq" arb_vc2 (fun (a, b) ->
        Vclock.concurrent a b
        = ((not (Vclock.leq a b)) && not (Vclock.leq b a)))

  let never_self_concurrent =
    t "never concurrent with itself" arb_vclock (fun a ->
        not (Vclock.concurrent a a))

  let canonical_no_trailing_zeros =
    t "to_list is canonical (no trailing zeros)" arb_vclock (fun a ->
        match List.rev (Vclock.to_list a) with
        | [] -> true
        | last :: _ -> last <> 0)

  let hash_respects_equal =
    t "hash respects equality" arb_vc2 (fun (a, b) ->
        (not (Vclock.equal a b)) || Vclock.hash a = Vclock.hash b)

  let tests =
    List.map to_alcotest
      [
        merge_commutative; merge_associative; merge_idempotent;
        merge_zero_identity; leq_reflexive; leq_antisymmetric; leq_transitive;
        merge_is_lub; tick_strictly_increases; concurrent_symmetric;
        concurrent_iff_incomparable; never_self_concurrent;
        canonical_no_trailing_zeros; hash_respects_equal;
      ]
end

let () =
  Alcotest.run "algebra"
    [
      ("lockset", Lockset_laws.tests);
      ("vclock", Vclock_laws.tests);
    ]
