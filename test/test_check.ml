(* Tests for the conformance fuzzer itself: the generated-trace fuzz
   smoke (production == executable specification on every config
   variant), the ddmin minimizer's contract, replay of the committed
   mutated-kernel reproducers, a live fault hunt, and the nine registry
   applications checked against the specification end to end. *)

module Conformance = Check.Conformance
module Gen = Check.Gen

let traces_budget =
  match Sys.getenv_opt "HAWKSET_CHECK_TRACES" with
  | Some s -> (try int_of_string s with _ -> 40)
  | None -> 40

(* --- generator sanity ------------------------------------------------- *)

module Gen_tests = struct
  (* Well-formedness the differential runner depends on: every lock
     released, children only run after their create, valid tids. *)
  let well_formed () =
    for seed = 0 to 49 do
      let t = Gen.trace ~seed () in
      let held = Hashtbl.create 8 in
      let started = Hashtbl.create 8 in
      Hashtbl.replace started (Trace.Tid.to_int Trace.Tid.main) ();
      let check_started tid =
        let tid = Trace.Tid.to_int tid in
        Alcotest.(check bool)
          (Printf.sprintf "seed %d: tid %d started" seed tid)
          true
          (Hashtbl.mem started tid)
      in
      List.iter
        (fun ev ->
          match (ev : Trace.Event.t) with
          | Trace.Event.Thread_create { parent; child } ->
              check_started parent;
              Hashtbl.replace started (Trace.Tid.to_int child) ()
          | Trace.Event.Thread_join { waiter; joined } ->
              check_started waiter;
              check_started joined
          | Trace.Event.Lock_acquire { tid; lock; _ } ->
              check_started tid;
              let k = (Trace.Tid.to_int tid, lock) in
              let d = Option.value ~default:0 (Hashtbl.find_opt held k) in
              Hashtbl.replace held k (d + 1)
          | Trace.Event.Lock_release { tid; lock; _ } ->
              (* Reentrant sections are legal; a release below depth 0
                 is not. *)
              let k = (Trace.Tid.to_int tid, lock) in
              let d = Option.value ~default:0 (Hashtbl.find_opt held k) in
              Alcotest.(check bool)
                (Printf.sprintf "seed %d: release of held lock" seed)
                true (d > 0);
              if d = 1 then Hashtbl.remove held k
              else Hashtbl.replace held k (d - 1)
          | Trace.Event.Store { tid; _ }
          | Trace.Event.Load { tid; _ }
          | Trace.Event.Flush { tid; _ }
          | Trace.Event.Fence { tid; _ } -> check_started tid)
        (Trace.Tracebuf.to_list t);
      Alcotest.(check int)
        (Printf.sprintf "seed %d: all locks released" seed)
        0 (Hashtbl.length held)
    done

  let deterministic () =
    let lines t =
      String.concat "\n"
        (List.map Trace.Trace_io.event_to_line (Trace.Tracebuf.to_list t))
    in
    Alcotest.(check string)
      "same seed, same trace"
      (lines (Gen.trace ~seed:7 ()))
      (lines (Gen.trace ~seed:7 ()))

  let tests =
    [
      Alcotest.test_case "generated traces are well-formed" `Quick well_formed;
      Alcotest.test_case "generator is deterministic" `Quick deterministic;
    ]
end

(* --- fuzz smoke ------------------------------------------------------- *)

module Fuzz_tests = struct
  let zero_divergences () =
    let r = Conformance.fuzz ~traces:traces_budget ~seed:1000 () in
    Alcotest.(check int) "traces run" traces_budget r.Conformance.fz_traces;
    Alcotest.(check bool)
      "comparisons happened" true
      (r.Conformance.fz_comparisons >= 21 * traces_budget);
    (match r.Conformance.fz_failures with
    | [] -> ()
    | (seed, _, d) :: _ ->
        Alcotest.fail
          (Printf.sprintf "seed %d diverged on %s" seed d.Conformance.d_variant))

  let tests =
    [ Alcotest.test_case "production == specification" `Slow zero_divergences ]
end

(* --- minimizer -------------------------------------------------------- *)

module Minimize_tests = struct
  (* A synthetic predicate exercises ddmin in isolation: "contains a
     store at 128 and a load at 136".  Minimal failing traces have
     exactly those two events, whatever padding surrounds them. *)
  let pred trace =
    let evs = Trace.Tracebuf.to_list trace in
    List.exists
      (function Trace.Event.Store { addr = 128; _ } -> true | _ -> false)
      evs
    && List.exists
         (function Trace.Event.Load { addr = 136; _ } -> true | _ -> false)
         evs

  let reduces_to_minimum () =
    let t = Gen.trace ~max_events:48 ~seed:5 () in
    (* Plant the two needles among the generated haystack. *)
    let site = Trace.Site.v "plant.ml" 1 in
    let tid = Trace.Tid.main in
    let evs =
      Trace.Event.Store { tid; addr = 128; size = 8; site; non_temporal = false }
      :: Trace.Tracebuf.to_list t
      @ [ Trace.Event.Load { tid; addr = 136; size = 8; site } ]
    in
    let minimal = Conformance.minimize ~failing:pred (Trace.Tracebuf.of_list evs) in
    Alcotest.(check int) "exactly the two needles" 2
      (Trace.Tracebuf.length minimal);
    Alcotest.(check bool) "still fails" true (pred minimal)

  let rejects_passing_input () =
    let t = Trace.Tracebuf.of_list [] in
    match Conformance.minimize ~failing:pred t with
    | _ -> Alcotest.fail "minimize accepted a passing trace"
    | exception Invalid_argument _ -> ()

  (* 1-minimality on a real divergence: removing any single event from a
     committed reproducer makes it pass again. *)
  let committed_fixture_is_1_minimal () =
    let fault = Hawkset.Fault.Publish_before_touch in
    let path = "fixtures/mutate-" ^ Hawkset.Fault.name fault ^ ".trace" in
    let t = Trace.Trace_io.load path in
    Hawkset.Fault.with_fault fault (fun () ->
        Alcotest.(check bool) "fixture diverges armed" true
          (Conformance.failing t);
        let evs = Trace.Tracebuf.to_list t in
        List.iteri
          (fun i _ ->
            let without =
              List.filteri (fun j _ -> j <> i) evs |> Trace.Tracebuf.of_list
            in
            Alcotest.(check bool)
              (Printf.sprintf "dropping event %d makes it pass" i)
              false
              (Conformance.failing without))
          evs)

  let tests =
    [
      Alcotest.test_case "ddmin finds the 2-event core" `Quick
        reduces_to_minimum;
      Alcotest.test_case "rejects passing input" `Quick rejects_passing_input;
      Alcotest.test_case "committed fixture is 1-minimal" `Slow
        committed_fixture_is_1_minimal;
    ]
end

(* --- mutation self-test ----------------------------------------------- *)

module Mutation_tests = struct
  (* The committed reproducers stay honest: each is conformant with the
     production kernel as-is, and diverges the moment its fault is
     armed.  This is the regression net for the fuzzer itself — if a
     kernel change silently fixes or masks a fault path, this fails. *)
  let replay_fixture fault () =
    let path = "fixtures/mutate-" ^ Hawkset.Fault.name fault ^ ".trace" in
    let t = Trace.Trace_io.load path in
    Alcotest.(check bool)
      "within the minimization budget" true
      (Trace.Tracebuf.length t <= 30);
    Alcotest.(check bool) "conformant disarmed" false (Conformance.failing t);
    Hawkset.Fault.with_fault fault (fun () ->
        match Conformance.divergences t with
        | [] -> Alcotest.fail "armed fault not detected on its reproducer"
        | d :: _ ->
            Alcotest.(check bool)
              "divergence is a report mismatch or crash" true
              (match d.Conformance.d_kind with `Report | `Crash -> true))

  (* A live hunt, end to end: find a failing trace, minimize it, confirm
     the reproducer is clean without the fault.  One cheap fault keeps
     tier-1 fast; the CLI's --mutate all covers the rest in CI. *)
  let live_hunt () =
    let r =
      Conformance.hunt ~traces:30 ~seed:42 Hawkset.Fault.Publish_before_touch
    in
    (match r.Conformance.h_caught_seed with
    | None -> Alcotest.fail "hunt missed the armed fault"
    | Some _ -> ());
    (match r.Conformance.h_minimized with
    | None -> Alcotest.fail "no minimized reproducer"
    | Some m ->
        Alcotest.(check bool)
          "minimized to <= 30 events" true
          (Trace.Tracebuf.length m <= 30));
    Alcotest.(check bool) "clean without fault" true
      r.Conformance.h_clean_without_fault

  let tests =
    List.map
      (fun fault ->
        Alcotest.test_case
          ("replay " ^ Hawkset.Fault.name fault)
          `Quick (replay_fixture fault))
      Hawkset.Fault.all
    @ [ Alcotest.test_case "live hunt catches and minimizes" `Slow live_hunt ]
end

(* --- registry applications vs the specification ----------------------- *)

module Apps_tests = struct
  (* The fuzzer's synthetic traces are deliberately adversarial; the
     nine evaluated applications are the realistic complement.  Reports
     — witnesses included — must be byte-identical between production
     and specification on every app at several seeds. *)
  let app_conforms entry () =
    List.iter
      (fun seed ->
        let ops = Pmapps.Registry.clamp_ops entry 150 in
        let report = entry.Pmapps.Registry.run ~seed ~ops () in
        let trace = report.Machine.Sched.trace in
        let config = { Hawkset.Pipeline.default with Hawkset.Pipeline.jobs = 1 } in
        let expected =
          Hawkset.Report.to_json
            (Hawkset.Reference.pipeline
               ~config:(Hawkset.Reference.config_of_pipeline config) trace)
        in
        let actual =
          Hawkset.Report.to_json
            (Hawkset.Pipeline.run ~config trace).Hawkset.Pipeline.races
        in
        Alcotest.(check string)
          (Printf.sprintf "%s seed %d: production == specification"
             entry.Pmapps.Registry.reg_name seed)
          expected actual)
      [ 0; 1; 2 ]

  let tests =
    List.map
      (fun entry ->
        Alcotest.test_case entry.Pmapps.Registry.reg_name `Slow
          (app_conforms entry))
      Pmapps.Registry.all
end

let () =
  Alcotest.run "check"
    [
      ("gen", Gen_tests.tests);
      ("fuzz", Fuzz_tests.tests);
      ("minimize", Minimize_tests.tests);
      ("mutation", Mutation_tests.tests);
      ("apps", Apps_tests.tests);
    ]
