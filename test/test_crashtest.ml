(* Crash-sweep fault injection and the degradation contract: cut runs
   really crash where asked, verification is deterministic, the control
   app survives every cut, and a pipeline whose budget runs out — or
   whose analysis shard dies — still returns a report instead of dying. *)

module S = Machine.Sched

let runner name =
  match Crashtest.runner_for name with
  | Some r -> r
  | None -> Alcotest.failf "no crash-sweep runner for %s" name

let small =
  {
    Crashtest.default_config with
    Crashtest.c_ops = 80;
    c_threads = 2;
    c_stride = 400;
    c_max_points = 5;
    c_verify_budget = 100_000;
  }

let fast_fair_trace ops seed =
  (Pmapps.Driver.run_kv_ycsb (module Pmapps.Fast_fair) ~seed ~ops ()).S.trace

module Crash_spec_tests = struct
  let cut_at_events () =
    let r = runner "fast-fair" in
    let ex =
      r.Crashtest.r_exec ~seed:3 ~ops:80 ~threads:2 ~crash:(`After_events 200)
    in
    Alcotest.(check bool) "crashed" true
      (ex.Crashtest.ex_report.S.outcome = S.Crashed);
    Alcotest.(check int) "stopped at the budget" 200
      ex.Crashtest.ex_report.S.event_count

  let cut_at_fences () =
    let r = runner "fast-fair" in
    let ex =
      r.Crashtest.r_exec ~seed:3 ~ops:80 ~threads:2 ~crash:(`After_fences 5)
    in
    Alcotest.(check bool) "crashed" true
      (ex.Crashtest.ex_report.S.outcome = S.Crashed);
    let st = Trace.Tracebuf.stats ex.Crashtest.ex_report.S.trace in
    Alcotest.(check int) "exactly five fences in the prefix" 5
      st.Trace.Tracebuf.fences

  let uncut_completes () =
    let r = runner "pmlog" in
    let ex = r.Crashtest.r_exec ~seed:3 ~ops:40 ~threads:2 ~crash:`No in
    Alcotest.(check bool) "completed" true
      (ex.Crashtest.ex_report.S.outcome = S.Completed);
    Alcotest.(check bool) "acked work" true (ex.Crashtest.ex_acked > 0)

  let tests =
    [
      Alcotest.test_case "cut at an event budget" `Quick cut_at_events;
      Alcotest.test_case "cut at a fence budget" `Quick cut_at_fences;
      Alcotest.test_case "uncut run completes" `Quick uncut_completes;
    ]
end

module Verify_tests = struct
  (* The same cut verified twice must classify identically: the machine
     is deterministic and the damage walk is sorted. *)
  let deterministic () =
    let r = runner "memcached-pmem" in
    let once () =
      let ex =
        r.Crashtest.r_exec ~seed:7 ~ops:80 ~threads:2
          ~crash:(`After_events 1_500)
      in
      ex.Crashtest.ex_verify ~budget:100_000
    in
    let a = once () and b = once () in
    Alcotest.(check bool) "same classification" true (a = b)

  (* Memcached-pmem never flushes its values: any mid-run cut that acked
     work must show durable damage. *)
  let memcached_damaged () =
    let r = runner "memcached-pmem" in
    let ex =
      r.Crashtest.r_exec ~seed:7 ~ops:80 ~threads:2 ~crash:(`After_events 1_500)
    in
    Alcotest.(check bool) "acked before the cut" true (ex.Crashtest.ex_acked > 0);
    match ex.Crashtest.ex_verify ~budget:100_000 with
    | Crashtest.Damaged msgs ->
        Alcotest.(check bool) "damage messages" true (msgs <> [])
    | Crashtest.Clean -> Alcotest.fail "expected durable damage, got clean"
    | Crashtest.Recovery_raised msg ->
        Alcotest.failf "recovery raised: %s" msg

  (* A verify budget too small for recovery classifies as a recovery
     failure instead of hanging the sweep. *)
  let budget_exhaustion_is_a_failure () =
    let r = runner "fast-fair" in
    let ex =
      r.Crashtest.r_exec ~seed:3 ~ops:80 ~threads:2 ~crash:(`After_events 400)
    in
    match ex.Crashtest.ex_verify ~budget:5 with
    | Crashtest.Recovery_raised _ -> ()
    | Crashtest.Clean | Crashtest.Damaged _ ->
        Alcotest.fail "a 5-event recovery budget cannot succeed"

  let tests =
    [
      Alcotest.test_case "verification is deterministic" `Quick deterministic;
      Alcotest.test_case "memcached cut shows damage" `Quick memcached_damaged;
      Alcotest.test_case "tiny verify budget raises" `Quick
        budget_exhaustion_is_a_failure;
    ]
end

module Sweep_tests = struct
  let control_is_clean () =
    let s = Crashtest.run_sweep ~config:small (runner "pmlog") in
    Alcotest.(check bool) "swept some points" true (s.Crashtest.sw_points <> []);
    Alcotest.(check int) "no damage" 0 s.Crashtest.sw_damaged;
    Alcotest.(check int) "no recovery failures" 0 s.Crashtest.sw_raised;
    Alcotest.(check (list int)) "nothing manifested" [] s.Crashtest.sw_manifested

  let outcome_counts_partition () =
    let s = Crashtest.run_sweep ~config:small (runner "fast-fair") in
    Alcotest.(check int) "classes partition the points"
      (List.length s.Crashtest.sw_points)
      (s.Crashtest.sw_clean + s.Crashtest.sw_damaged + s.Crashtest.sw_raised
     + s.Crashtest.sw_completed)

  let harness_rows () =
    let rows = Harness.Crash_sweep.run ~config:small ~apps:[ "pmlog"; "nope" ] () in
    Alcotest.(check int) "unknown app skipped" 1 (List.length rows);
    let summary = Harness.Crash_sweep.to_string rows in
    Alcotest.(check bool) "summary mentions the control verdict" true
      (let open Str in
       string_match (regexp ".*clean (as expected).*")
         (global_replace (regexp_string "\n") " " summary) 0)

  let tests =
    [
      Alcotest.test_case "pmlog control survives every cut" `Quick
        control_is_clean;
      Alcotest.test_case "outcome classes partition" `Quick
        outcome_counts_partition;
      Alcotest.test_case "harness driver and summary" `Quick harness_rows;
    ]
end

module Degradation_tests = struct
  let trace = lazy (fast_fair_trace 800 42)

  let event_budget_truncates () =
    let trace = Lazy.force trace in
    let budget = Trace.Tracebuf.length trace / 2 in
    let r =
      Hawkset.Pipeline.run
        ~config:
          { Hawkset.Pipeline.default with
            Hawkset.Pipeline.event_budget = Some budget }
        trace
    in
    Alcotest.(check bool) "truncation recorded" true
      (List.exists
         (fun (t : Hawkset.Pipeline.truncation) ->
           t.Hawkset.Pipeline.trunc_stage = "collect"
           && t.Hawkset.Pipeline.trunc_reason = "event_budget"
           && t.Hawkset.Pipeline.trunc_done = budget
           && t.Hawkset.Pipeline.trunc_total = Trace.Tracebuf.length trace)
         r.Hawkset.Pipeline.truncated);
    (* The degraded run equals the honest run over the prefix: the budget
       is a deterministic cut, not a best-effort race. *)
    let honest =
      Hawkset.Pipeline.run (Trace.Tracebuf.prefix trace budget)
    in
    Alcotest.(check string) "same races as the prefix"
      (Hawkset.Report.to_json honest.Hawkset.Pipeline.races)
      (Hawkset.Report.to_json r.Hawkset.Pipeline.races)

  let no_budget_no_truncation () =
    let trace = Lazy.force trace in
    let r = Hawkset.Pipeline.run trace in
    Alcotest.(check int) "no truncations" 0
      (List.length r.Hawkset.Pipeline.truncated)

  let shard_failure_is_isolated () =
    let trace = Lazy.force trace in
    let collected = Hawkset.Collector.collect trace in
    let seq = Hawkset.Analysis.run collected in
    Obs.Registry.reset Obs.Registry.global;
    let withfail =
      Hawkset.Par_analysis.analyse ~jobs:4
        ~inject_shard_failure:(fun shard -> shard = 1)
        collected
    in
    let counters = Obs.Registry.counters Obs.Registry.global in
    let v name = Option.value ~default:0 (List.assoc_opt name counters) in
    Alcotest.(check string) "report bit-identical"
      (Hawkset.Report.to_json seq.Hawkset.Analysis.report)
      (Hawkset.Report.to_json withfail.Hawkset.Analysis.report);
    Alcotest.(check int) "same pair count" seq.Hawkset.Analysis.pairs
      withfail.Hawkset.Analysis.pairs;
    Alcotest.(check int) "failure counted" 1 (v "analysis.shard_failures");
    Alcotest.(check int) "retried sequentially" 1 (v "analysis.shard_retries");
    Alcotest.(check int) "no range skipped" 0 (v "analysis.shard_ranges_skipped")

  let stop_predicate_cuts_analysis () =
    let trace = Lazy.force trace in
    let collected = Hawkset.Collector.collect trace in
    let full = Hawkset.Analysis.run collected in
    let stopped = Hawkset.Analysis.run ~stop:(fun () -> true) collected in
    Alcotest.(check bool) "full run analyses everything" true
      (full.Hawkset.Analysis.words_analysed = full.Hawkset.Analysis.words_total);
    Alcotest.(check bool) "stopped run analyses less" true
      (stopped.Hawkset.Analysis.words_analysed
      < stopped.Hawkset.Analysis.words_total)

  let stop_predicate_cuts_collection () =
    let trace = Lazy.force trace in
    let c = Hawkset.Collector.collect ~stop:(fun () -> true) trace in
    Alcotest.(check bool) "collection cut short" true
      (c.Hawkset.Collector.stats.Hawkset.Collector.c_events
      < Trace.Tracebuf.length trace)

  let tests =
    [
      Alcotest.test_case "event budget truncates deterministically" `Quick
        event_budget_truncates;
      Alcotest.test_case "no budget, no truncation" `Quick no_budget_no_truncation;
      Alcotest.test_case "injected shard failure is isolated" `Quick
        shard_failure_is_isolated;
      Alcotest.test_case "analysis stop predicate" `Quick
        stop_predicate_cuts_analysis;
      Alcotest.test_case "collector stop predicate" `Quick
        stop_predicate_cuts_collection;
    ]
end

let () =
  Alcotest.run "crashtest"
    [
      ("crash specs", Crash_spec_tests.tests);
      ("verification", Verify_tests.tests);
      ("sweep", Sweep_tests.tests);
      ("degradation", Degradation_tests.tests);
    ]
