(* Schedule exploration: scheduler determinism per policy (including the
   PCT random-priority mode), the interleaving-stability oracle, and the
   dumped-fixture replay path with checksum salvage. *)

module S = Machine.Sched
module R = Pmapps.Registry

let policies =
  [
    ("random", S.Random_interleave);
    ("round-robin", S.Round_robin);
    ("delay", S.Delay_injection { probability = 0.05; duration = 40 });
    ("pct", S.Pct { depth = 3 });
  ]

let entry name =
  match R.find name with
  | Some e -> e
  | None -> Alcotest.failf "%s not registered" name

module Determinism_tests = struct
  (* The determinism contract behind the whole exploration design: the
     trace is a pure function of (workload seed, scheduler seed, policy).
     [Trace_io.fingerprint] hashes the rendered event lines — the exact
     bytes [save] writes — so equal fingerprints mean byte-identical
     traces. Checked for every registered app under all four policies. *)
  let app_deterministic (e : R.entry) () =
    let ops = R.clamp_ops e 40 in
    List.iteri
      (fun i (name, policy) ->
        let fingerprint () =
          Trace.Trace_io.fingerprint
            (e.R.run ~seed:7 ~sched_seed:(100 + i) ~policy ~ops ()).S.trace
        in
        Alcotest.(check string)
          (name ^ ": same trace bytes")
          (fingerprint ()) (fingerprint ()))
      policies

  (* Same scheduler seed under a different policy must not (for these
     seeds) collapse to the same interleaving — the sweep's policy axis
     actually moves the schedule. *)
  let policies_differ () =
    let e = entry "fast-fair" in
    let ops = R.clamp_ops e 40 in
    let fp policy =
      Trace.Trace_io.fingerprint
        (e.R.run ~seed:7 ~sched_seed:100 ~policy ~ops ()).S.trace
    in
    let fps = List.map (fun (_, p) -> fp p) policies in
    Alcotest.(check int)
      "4 policies, 4 distinct traces" 4
      (List.length (List.sort_uniq String.compare fps))

  (* Round-trip: save + load preserves every event byte. *)
  let roundtrip () =
    let e = entry "fast-fair" in
    let ops = R.clamp_ops e 40 in
    let trace =
      (e.R.run ~seed:7 ~sched_seed:3 ~policy:(S.Pct { depth = 3 }) ~ops ())
        .S.trace
    in
    let file = Filename.temp_file "hawkset_pct" ".trace" in
    Fun.protect
      ~finally:(fun () -> Sys.remove file)
      (fun () ->
        Trace.Trace_io.save file trace;
        let back = Trace.Trace_io.load file in
        Alcotest.(check int)
          "same event count"
          (Trace.Tracebuf.length trace)
          (Trace.Tracebuf.length back);
        Alcotest.(check string)
          "same bytes"
          (Trace.Trace_io.fingerprint trace)
          (Trace.Trace_io.fingerprint back))

  (* The property, seed-randomized: QCheck picks the app, the policy and
     the seeds; two runs must agree. QCHECK_SEED pins the cases in CI. *)
  let qcheck_pure_function =
    QCheck.Test.make ~name:"trace is a pure function of (seeds, policy)"
      ~count:12
      QCheck.(
        triple
          (int_range 0 (List.length R.all - 1))
          (int_range 0 (List.length policies - 1))
          small_int)
      (fun (ai, pi, seed) ->
        let e = List.nth R.all ai in
        let ops = R.clamp_ops e 30 in
        let _, policy = List.nth policies pi in
        let fingerprint () =
          Trace.Trace_io.fingerprint
            (e.R.run ~seed ~sched_seed:(seed + 1) ~policy ~ops ()).S.trace
        in
        String.equal (fingerprint ()) (fingerprint ()))

  (* PCT bookkeeping: priority changes happen, are bounded by depth-1 per
     schedule, and the counter is deterministic. *)
  let pct_changes_bounded () =
    let e = entry "fast-fair" in
    let ops = R.clamp_ops e 40 in
    let counter_value () =
      Option.value ~default:0
        (List.assoc_opt "sched.pct_priority_changes"
           (Obs.Registry.counters Obs.Registry.global))
    in
    let changes sched_seed depth =
      let before = counter_value () in
      ignore (e.R.run ~seed:7 ~sched_seed ~policy:(S.Pct { depth }) ~ops ());
      counter_value () - before
    in
    List.iter
      (fun seed ->
        let c = changes seed 3 in
        Alcotest.(check bool)
          (Printf.sprintf "seed %d: 0 <= changes (%d) <= 2" seed c)
          true
          (c >= 0 && c <= 2))
      [ 1; 2; 3; 4; 5 ]

  let tests =
    List.map
      (fun (e : R.entry) ->
        Alcotest.test_case
          ("pure trace: " ^ e.R.reg_name)
          `Slow (app_deterministic e))
      R.all
    @ [
        Alcotest.test_case "policies move the schedule" `Quick policies_differ;
        Alcotest.test_case "save/load round-trip" `Quick roundtrip;
        QCheck_alcotest.to_alcotest qcheck_pure_function;
        Alcotest.test_case "pct change budget" `Quick pct_changes_bounded;
      ]
end

module Oracle_tests = struct
  (* A small sweep must pass the oracle: no erroring schedule, every
     directly-observed inconsistency already in that schedule's report,
     identical traces identical reports. *)
  let sweep_passes app () =
    let config =
      { Explore.default_config with Explore.schedules = 6; ops = 120 }
    in
    let t = Explore.run ~config (entry app) in
    Alcotest.(check int) "all schedules ran" 6
      (List.length t.Explore.x_results);
    Alcotest.(check int) "no errors" 0 t.Explore.x_errors;
    Alcotest.(check int) "no divergences" 0
      (List.length t.Explore.x_divergences);
    Alcotest.(check bool) "stable" true (Explore.stable t);
    Alcotest.(check bool)
      "policy sweep reaches distinct interleavings" true
      (t.Explore.x_distinct_traces >= 2);
    (* The baseline union is at least as large as any schedule's set. *)
    List.iter
      (fun (r : Explore.schedule_result) ->
        List.iter
          (fun p ->
            Alcotest.(check bool) "canonical within baseline" true
              (List.mem p t.Explore.x_baseline))
          r.Explore.s_canonical)
      t.Explore.x_results

  (* A PCT-only sweep (fresh priorities every schedule) obeys the same
     oracle — the new policy introduces no detector instability. *)
  let pct_sweep_passes () =
    let config =
      {
        Explore.default_config with
        Explore.schedules = 4;
        policy = Explore.Pct;
        ops = 120;
      }
    in
    let t = Explore.run ~config (entry "fast-fair") in
    Alcotest.(check bool) "stable under pct" true (Explore.stable t)

  (* Fixed schedule count and seed: the sweep's coverage counters are a
     pure function of the config. *)
  let sweep_deterministic () =
    let config =
      { Explore.default_config with Explore.schedules = 4; ops = 120 }
    in
    let c () = Explore.counters [ Explore.run ~config (entry "wipe") ] in
    let a = c () and b = c () in
    Alcotest.(check (list (pair string int))) "same counters" a b

  (* A cache-enabled sweep must change nothing but wall-clock: same
     per-schedule canonical reports, same coverage counters, oracle
     still passing. A round-robin sweep (every schedule replays the same
     interleaving) guarantees the cache actually hits. *)
  let cache_changes_nothing () =
    let config =
      {
        Explore.default_config with
        Explore.schedules = 5;
        policy = Explore.Round_robin;
        ops = 120;
      }
    in
    let plain = Explore.run ~config (entry "fast-fair") in
    let cache = Hawkset.Result_cache.create () in
    let cached =
      Explore.run
        ~config:{ config with Explore.cache = Some cache }
        (entry "fast-fair")
    in
    Alcotest.(check bool) "stable with cache" true (Explore.stable cached);
    Alcotest.(check (list (pair string int)))
      "coverage counters identical"
      (Explore.counters [ plain ])
      (Explore.counters [ cached ]);
    List.iter2
      (fun (a : Explore.schedule_result) (b : Explore.schedule_result) ->
        Alcotest.(check (list (pair string string)))
          (Printf.sprintf "schedule %d canonical identical" a.Explore.s_index)
          a.Explore.s_canonical b.Explore.s_canonical)
      plain.Explore.x_results cached.Explore.x_results;
    let stat name =
      Option.value ~default:0
        (List.assoc_opt name (Hawkset.Result_cache.stats cache))
    in
    (* Sequential sweep of 5 identical schedules: 1 miss, 4 hits. *)
    Alcotest.(check int) "hits" 4 (stat "cache.hits");
    Alcotest.(check int) "misses" 1 (stat "cache.misses");
    Alcotest.(check int) "entries" 1 (stat "cache.entries")

  let policy_kind_strings () =
    List.iter
      (fun s ->
        match Explore.policy_kind_of_string s with
        | Ok k ->
            Alcotest.(check string)
              "round-trips" s
              (Explore.policy_kind_to_string k)
        | Error e -> Alcotest.fail e)
      [ "random"; "round-robin"; "delay"; "pct"; "all" ];
    Alcotest.(check bool) "unknown rejected" true
      (Result.is_error (Explore.policy_kind_of_string "fifo"))

  let tests =
    [
      Alcotest.test_case "oracle: fast-fair" `Slow (sweep_passes "fast-fair");
      Alcotest.test_case "oracle: p-masstree" `Slow (sweep_passes "p-masstree");
      Alcotest.test_case "oracle: pct-only" `Slow pct_sweep_passes;
      Alcotest.test_case "sweep deterministic" `Slow sweep_deterministic;
      Alcotest.test_case "cache changes nothing" `Slow cache_changes_nothing;
      Alcotest.test_case "policy kind strings" `Quick policy_kind_strings;
    ]
end

module Fixture_tests = struct
  let fixture f = Filename.concat "fixtures" f

  let fixtures =
    [
      "crash-fast-fair-fence74.trace";
      "explore-madfs-s0.trace";
      "explore-madfs-s2.trace";
    ]

  (* Every committed dump fixture carries a checksum trailer that still
     verifies, and the strict loader accepts it. *)
  let checksums_verify () =
    List.iter
      (fun f ->
        let t = Trace.Trace_io.load_tolerant (fixture f) in
        Alcotest.(check bool) (f ^ ": trailer verified") true
          (t.Trace.Trace_io.checksum = `Verified);
        Alcotest.(check int) (f ^ ": nothing dropped") 0
          t.Trace.Trace_io.dropped_lines;
        Alcotest.(check bool) (f ^ ": non-empty") true
          (t.Trace.Trace_io.salvaged_events > 0);
        Alcotest.(check int)
          (f ^ ": strict load agrees")
          t.Trace.Trace_io.salvaged_events
          (Trace.Tracebuf.length (Trace.Trace_io.load (fixture f))))
      fixtures

  (* The crash fixture is a damaged-point prefix: the pipeline must still
     report fast-fair's sibling-pointer race from it — the detector's
     prediction on the very trace whose image recovery found damaged. *)
  let crash_fixture_attributes () =
    let trace = Trace.Trace_io.load (fixture "crash-fast-fair-fence74.trace") in
    let races = Hawkset.Pipeline.races trace in
    Alcotest.(check bool) "bug1 reported on the crashed prefix" true
      (Pmapps.Ground_truth.bug_found ~bugs:(entry "fast-fair").R.bugs races 1)

  (* Truncation (lost trailer) downgrades to a salvage, not a failure,
     and the salvaged prefix still analyses. *)
  let with_mangled f ~mangle k =
    let ic = open_in_bin (fixture f) in
    let n = in_channel_length ic in
    let bytes = really_input_string ic n in
    close_in ic;
    let mangled = mangle bytes in
    let tmp = Filename.temp_file "hawkset_mangled" ".trace" in
    Fun.protect
      ~finally:(fun () -> Sys.remove tmp)
      (fun () ->
        let oc = open_out_bin tmp in
        output_string oc mangled;
        close_out oc;
        k (Trace.Trace_io.load_tolerant tmp))

  let salvages_truncation () =
    List.iter
      (fun f ->
        let full = Trace.Tracebuf.length (Trace.Trace_io.load (fixture f)) in
        with_mangled f
          ~mangle:(fun s -> String.sub s 0 (String.length s * 7 / 10))
          (fun t ->
            Alcotest.(check bool) (f ^ ": trailer gone") true
              (t.Trace.Trace_io.checksum <> `Verified);
            Alcotest.(check bool) (f ^ ": salvaged a prefix") true
              (t.Trace.Trace_io.salvaged_events > 0
              && t.Trace.Trace_io.salvaged_events < full);
            (* The salvaged prefix is still a valid trace. *)
            let races =
              Hawkset.Pipeline.races t.Trace.Trace_io.salvaged
            in
            ignore (Hawkset.Report.count races)))
      fixtures

  let salvages_corruption () =
    (* Overwrite a byte mid-file: the loader keeps the prefix before the
       malformed line and reports what it dropped. *)
    with_mangled "explore-madfs-s0.trace"
      ~mangle:(fun s ->
        let b = Bytes.of_string s in
        Bytes.set b (Bytes.length b / 2) '\001';
        Bytes.to_string b)
      (fun t ->
        Alcotest.(check bool) "something dropped" true
          (t.Trace.Trace_io.dropped_lines > 0);
        Alcotest.(check bool) "checksum not verified" true
          (t.Trace.Trace_io.checksum <> `Verified);
        Alcotest.(check bool) "prefix salvaged" true
          (t.Trace.Trace_io.salvaged_events > 0))

  (* The explore fixtures regenerate bit-for-bit from their (app, config,
     index) coordinates — the dump machinery is as deterministic as the
     schedules it records. *)
  let fixture_regenerates () =
    let config = { Explore.default_config with Explore.ops = 20 } in
    let tmp = Filename.temp_file "hawkset_regen" ".trace" in
    Fun.protect
      ~finally:(fun () -> Sys.remove tmp)
      (fun () ->
        match Explore.save_schedule ~config (entry "madfs") ~index:0 tmp with
        | None -> Alcotest.fail "schedule 0 failed to re-run"
        | Some _ ->
            let read f =
              let ic = open_in_bin f in
              let s = really_input_string ic (in_channel_length ic) in
              close_in ic;
              s
            in
            Alcotest.(check bool) "byte-identical to committed fixture" true
              (String.equal (read tmp) (read (fixture "explore-madfs-s0.trace"))))

  let tests =
    [
      Alcotest.test_case "fixture checksums verify" `Quick checksums_verify;
      Alcotest.test_case "crash fixture attributes bug1" `Quick
        crash_fixture_attributes;
      Alcotest.test_case "truncation salvages" `Quick salvages_truncation;
      Alcotest.test_case "corruption salvages" `Quick salvages_corruption;
      Alcotest.test_case "fixtures regenerate byte-identically" `Slow
        fixture_regenerates;
    ]
end

let () =
  Alcotest.run "explore"
    [
      ("determinism", Determinism_tests.tests);
      ("oracle", Oracle_tests.tests);
      ("fixtures", Fixture_tests.tests);
    ]
