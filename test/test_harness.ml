(* Tests for the evaluation harness: table rendering, the avg-time-to-race
   metric (checked against the paper's own numbers), and small-scale runs
   of each experiment driver. *)

module Metric_tests = struct
  let paper_numbers () =
    (* Table 3, PMRace row: T=600s, 9 racy out of 240 -> 69900.00 s. *)
    (match Harness.Metrics.avg_time_to_race ~t:600.0 ~found:9 ~missed:231 with
    | Some v -> Alcotest.(check (float 0.5)) "PMRace bug #1" 69900.0 v
    | None -> Alcotest.fail "expected a value");
    (* HawkSet row: T=6.65s, 110 racy out of 240 -> ~439 s. *)
    (match Harness.Metrics.avg_time_to_race ~t:6.65 ~found:110 ~missed:130 with
    | Some v -> Alcotest.(check (float 1.0)) "HawkSet bug #1" 438.9 v
    | None -> Alcotest.fail "expected a value");
    (* Bug #2, PMRace: never found -> infinity. *)
    Alcotest.(check bool) "never found = infinity" true
      (Harness.Metrics.avg_time_to_race ~t:600.0 ~found:0 ~missed:240 = None)

  let closed_form_matches_binomial =
    QCheck.Test.make ~name:"closed form equals the paper's binomial sum"
      ~count:200
      QCheck.(triple (float_bound_inclusive 100.0) (int_range 1 50) (int_range 0 60))
      (fun (t, found, missed) ->
        match
          ( Harness.Metrics.avg_time_to_race ~t ~found ~missed,
            Harness.Metrics.avg_time_to_race_binomial ~t ~found ~missed )
        with
        | Some a, Some b -> Float.abs (a -. b) <= 1e-6 *. (1.0 +. Float.abs a)
        | None, None -> true
        | Some _, None | None, Some _ -> false)

  let speedup_shape () =
    (* The headline: 600*(231/2+1) / (6.65*(130/2+1)) ~ 159x. *)
    match
      ( Harness.Metrics.avg_time_to_race ~t:600.0 ~found:9 ~missed:231,
        Harness.Metrics.avg_time_to_race ~t:6.65 ~found:110 ~missed:130 )
    with
    | Some pm, Some hk ->
        Alcotest.(check (float 2.0)) "paper speedup" 159.2 (pm /. hk)
    | _ -> Alcotest.fail "expected values"

  let tests =
    [
      Alcotest.test_case "paper numbers" `Quick paper_numbers;
      QCheck_alcotest.to_alcotest closed_form_matches_binomial;
      Alcotest.test_case "159x reconstruction" `Quick speedup_shape;
    ]
end

module Tables_tests = struct
  let render () =
    let s =
      Harness.Tables.render ~headers:[ "A"; "Bee" ]
        ~rows:[ [ "xx"; "y" ]; [ "z" ] ]
    in
    let lines = String.split_on_char '\n' (String.trim s) in
    Alcotest.(check int) "4 lines" 4 (List.length lines);
    (* All lines align to the same width. *)
    match lines with
    | header :: _ ->
        Alcotest.(check bool) "header contains names" true
          (String.length header >= 6)
    | [] -> Alcotest.fail "empty render"

  let tests = [ Alcotest.test_case "render" `Quick render ]
end

module Experiment_tests = struct
  (* Small-scale runs: check invariants, not absolute values. *)

  let table2_small () =
    let r = Harness.Table2.run ~sizes:[ 600 ] ~seed:11 () in
    Alcotest.(check int) "20 ground-truth rows" 20 (List.length r.Harness.Table2.rows);
    (* Even a small workload finds most bugs; the full sizes find all. *)
    Alcotest.(check bool) "most bugs detected" true
      (Harness.Table2.detected_count r >= 14)

  let table4_small () =
    let r = Harness.Table4.run ~ops:600 ~seed:11 () in
    Alcotest.(check int) "one row per app" 9 (List.length r.Harness.Table4.rows);
    Alcotest.(check bool) "IRH preserves malign bugs" true
      (Harness.Table4.irh_never_drops_malign r);
    List.iter
      (fun row ->
        Alcotest.(check bool)
          (row.Harness.Table4.app ^ ": IRH only removes")
          true
          (row.Harness.Table4.after_irh <= row.Harness.Table4.reported_races);
        Alcotest.(check int)
          (row.Harness.Table4.app ^ ": manual counts sum")
          row.Harness.Table4.reported_races
          (row.Harness.Table4.malign + row.Harness.Table4.benign
          + row.Harness.Table4.false_positives))
      r.Harness.Table4.rows;
    (* The memcached reuse pattern keeps FPs even with the IRH. *)
    let mc =
      List.find
        (fun x -> x.Harness.Table4.app = "memcached-pmem")
        r.Harness.Table4.rows
    in
    Alcotest.(check bool) "memcached FPs" true
      (mc.Harness.Table4.false_positives > 0)

  let table3_tiny () =
    let r = Harness.Table3.run ~seeds:4 ~ops_per_seed:300 ~pmrace_executions:3 () in
    Alcotest.(check int) "four rows" 4 (List.length r.Harness.Table3.rows);
    let hk1 =
      List.find
        (fun x -> x.Harness.Table3.tool = "HawkSet" && x.Harness.Table3.bug_id = 1)
        r.Harness.Table3.rows
    in
    Alcotest.(check bool) "hawkset finds bug 1 in every seed" true
      (hk1.Harness.Table3.racy = 4);
    let pm1 =
      List.find
        (fun x -> x.Harness.Table3.tool = "PMRace" && x.Harness.Table3.bug_id = 1)
        r.Harness.Table3.rows
    in
    Alcotest.(check bool) "pmrace finds at most as many" true
      (pm1.Harness.Table3.racy <= hk1.Harness.Table3.racy)

  let figure6_small () =
    let r = Harness.Figure6.run ~sizes:[ 200; 800 ] ~seed:11 () in
    Alcotest.(check bool) "points for every app" true
      (List.length r.Harness.Figure6.points >= 17);
    List.iter
      (fun (e : Pmapps.Registry.entry) ->
        Alcotest.(check bool)
          (e.Pmapps.Registry.reg_name ^ " sublinear-ish")
          true
          (Harness.Figure6.sublinear r ~app:e.Pmapps.Registry.reg_name))
      Pmapps.Registry.all

  let ablation_small () =
    let r = Harness.Ablation.run ~ops:600 ~seed:11 () in
    let find name =
      List.find (fun x -> x.Harness.Ablation.config_name = name)
        r.Harness.Ablation.rows
    in
    let full = find "full (HawkSet)" in
    let trad = find "traditional lockset" in
    let no_irh = find "no IRH" in
    Alcotest.(check bool) "full detects more than traditional" true
      (full.Harness.Ablation.detected_bugs > trad.Harness.Ablation.detected_bugs);
    Alcotest.(check bool) "IRH reduces reports" true
      (full.Harness.Ablation.total_reports <= no_irh.Harness.Ablation.total_reports)

  let tests =
    [
      Alcotest.test_case "table2 small" `Slow table2_small;
      Alcotest.test_case "table4 small" `Slow table4_small;
      Alcotest.test_case "table3 tiny" `Slow table3_tiny;
      Alcotest.test_case "figure6 small" `Slow figure6_small;
      Alcotest.test_case "ablation small" `Slow ablation_small;
    ]
end

module Stats_tests = struct
  let contains = Test_util.contains

  let entry =
    match Pmapps.Registry.find "fast-fair" with
    | Some e -> e
    | None -> Alcotest.fail "fast-fair not registered"

  (* The ISSUE acceptance criterion: two instrumented runs with the same
     seed serialize the deterministic half of the manifest byte-identically;
     the manifest carries per-stage spans, >= 10 distinct counters and the
     peak-memory gauge. *)
  let deterministic_counters () =
    let r1 = Harness.Stats.instrumented_run ~entry ~seed:7 ~ops:400 () in
    let r2 = Harness.Stats.instrumented_run ~entry ~seed:7 ~ops:400 () in
    Alcotest.(check string)
      "counters byte-identical across same-seed runs"
      (Obs.Manifest.counters_json r1.Harness.Stats.manifest)
      (Obs.Manifest.counters_json r2.Harness.Stats.manifest)

  (* The parallel analysis must not perturb the deterministic half: the
     same run sharded over 4 domains serializes the very same counter
     snapshot, byte for byte. *)
  let parallel_counters_identical () =
    let run jobs =
      Harness.Stats.instrumented_run
        ~config:{ Hawkset.Pipeline.default with Hawkset.Pipeline.jobs = jobs }
        ~entry ~seed:7 ~ops:400 ()
    in
    let r1 = run 1 in
    let r4 = run 4 in
    Alcotest.(check string)
      "counters byte-identical across jobs=1 and jobs=4"
      (Obs.Manifest.counters_json r1.Harness.Stats.manifest)
      (Obs.Manifest.counters_json r4.Harness.Stats.manifest);
    Alcotest.(check (option string))
      "jobs label recorded" (Some "4")
      (Obs.Manifest.label r4.Harness.Stats.manifest "jobs")

  let manifest_shape () =
    let r = Harness.Stats.instrumented_run ~entry ~seed:7 ~ops:400 () in
    let m = r.Harness.Stats.manifest in
    Alcotest.(check bool)
      ">= 10 distinct counters" true
      (List.length m.Obs.Manifest.counters >= 10);
    (* Every instrumented subsystem shows up. *)
    List.iter
      (fun name ->
        Alcotest.(check bool) (name ^ " present") true
          (Obs.Manifest.counter m name <> None))
      [
        "collector.events"; "collector.windows_opened";
        "collector.windows_closed"; "collector.locksets_interned";
        "analysis.pairs_examined"; "analysis.pairs_pruned_hb";
        "analysis.vclock_comparisons"; "sched.points";
        "sched.context_switches"; "pmem.flushes"; "pmem.fences";
        "report.distinct_races";
      ];
    Alcotest.(check bool)
      "stage spans recorded" true
      (List.exists
         (fun s -> s.Obs.Manifest.stage_name = "run/execute")
         m.Obs.Manifest.stages
      && List.exists
           (fun s -> contains ~needle:"collect" s.Obs.Manifest.stage_name)
           m.Obs.Manifest.stages);
    (match Obs.Manifest.gauge m "peak_live_mb" with
    | Some v -> Alcotest.(check bool) "peak > 0" true (v > 0.)
    | None -> Alcotest.fail "peak_live_mb gauge missing");
    Alcotest.(check bool)
      "peak >= final" true
      (r.Harness.Stats.peak_mb >= r.Harness.Stats.final_live_mb);
    (* Round-trip through a parser rather than grepping the serialization:
       the schema tag, a non-empty stage array and the peak-memory gauge
       must all survive emission. *)
    let module J = Test_util.Mini_json in
    let j = J.parse (Obs.Manifest.to_json m) in
    Alcotest.(check string)
      "schema tag" "hawkset.run_manifest/1" (J.str_mem "schema" j);
    Alcotest.(check bool)
      "stages array non-empty" true
      (J.to_list (J.member "stages" j) <> []);
    Alcotest.(check bool)
      "peak_live_mb emitted" true
      (J.member_opt "peak_live_mb" (J.member "gauges" j) <> None)

  let render_has_sections () =
    let r = Harness.Stats.instrumented_run ~entry ~seed:7 ~ops:400 () in
    let s = Harness.Stats.render r.Harness.Stats.manifest in
    List.iter
      (fun needle ->
        Alcotest.(check bool) ("render has " ^ needle) true (contains ~needle s))
      [ "Counter (deterministic)"; "Gauge (measured)"; "app=fast-fair" ]

  (* The span table renders the DFS tree: children indented under their
     parent, each with its share of the nearest recorded ancestor. *)
  let render_span_tree () =
    let r = Harness.Stats.instrumented_run ~entry ~seed:7 ~ops:400 () in
    let s = Harness.Stats.render r.Harness.Stats.manifest in
    List.iter
      (fun needle ->
        Alcotest.(check bool) ("render has " ^ needle) true (contains ~needle s))
      [
        "% of parent";
        (* "run" is a root: no parent share. *)
        "run "; "  execute";
        (* "pipeline/collect" is one level below "pipeline", itself below
           "run" — two levels of indentation and a percentage. *)
        "    collect"; "%";
      ];
    (* Roots render "-" in the percentage column, children a number. *)
    Alcotest.(check bool) "roots have no parent share" true
      (contains ~needle:"-" s)

  let tests =
    [
      Alcotest.test_case "same seed, same counters" `Slow deterministic_counters;
      Alcotest.test_case "jobs=4, same counters" `Slow
        parallel_counters_identical;
      Alcotest.test_case "manifest shape" `Slow manifest_shape;
      Alcotest.test_case "stats render" `Slow render_has_sections;
      Alcotest.test_case "span tree render" `Slow render_span_tree;
    ]
end

module Explore_jobs_tests = struct
  (* The schedule sweep extends the counter byte-identity contract: the
     same exploration sharded over 4 worker domains must reach the same
     verdict, the same per-schedule rows and the same deterministic
     counter snapshot as the sequential run — byte for byte once
     serialized ([jobs] itself is a manifest label, not a counter). *)
  let jobs_differential () =
    let explore jobs =
      let config =
        { Explore.default_config with Explore.schedules = 6; ops = 120; jobs }
      in
      Harness.Explore_sweep.run ~config ~apps:[ "fast-fair"; "madfs" ] ()
    in
    let t1 = explore 1 and t4 = explore 4 in
    Alcotest.(check bool) "same stability verdict"
      (Harness.Explore_sweep.stable t1)
      (Harness.Explore_sweep.stable t4);
    List.iter2
      (fun (a : Explore.t) (b : Explore.t) ->
        Alcotest.(check string) "same app" a.Explore.x_app b.Explore.x_app;
        Alcotest.(check bool)
          (a.Explore.x_app ^ ": identical schedule rows") true
          (a.Explore.x_results = b.Explore.x_results);
        Alcotest.(check bool)
          (a.Explore.x_app ^ ": identical baseline") true
          (a.Explore.x_baseline = b.Explore.x_baseline))
      t1 t4;
    Alcotest.(check (list (pair string int)))
      "same coverage counters"
      (Explore.counters t1) (Explore.counters t4);
    Alcotest.(check string)
      "manifest counters byte-identical across jobs=1 and jobs=4"
      (Obs.Manifest.counters_json (Harness.Explore_sweep.manifest t1))
      (Obs.Manifest.counters_json (Harness.Explore_sweep.manifest t4));
    Alcotest.(check (option string))
      "jobs label recorded" (Some "4")
      (Obs.Manifest.label (Harness.Explore_sweep.manifest t4) "jobs")

  let summary_renders () =
    let config =
      { Explore.default_config with Explore.schedules = 4; ops = 120 }
    in
    let ts = Harness.Explore_sweep.run ~config ~apps:[ "fast-fair" ] () in
    let s = Harness.Explore_sweep.to_string ts in
    List.iter
      (fun needle ->
        Alcotest.(check bool) ("summary has " ^ needle) true
          (Stats_tests.contains ~needle s))
      [ "Schedule stability"; "fast-fair"; "stable" ];
    let b = Harness.Explore_sweep.bug_table_string ts in
    Alcotest.(check bool) "bug table has fast-fair bug row" true
      (Stats_tests.contains ~needle:"#1" b);
    Alcotest.(check string) "no divergence text when stable" ""
      (Harness.Explore_sweep.divergences_string ts)

  let tests =
    [
      Alcotest.test_case "explore jobs=4, same rows and counters" `Slow
        jobs_differential;
      Alcotest.test_case "explore summary renders" `Slow summary_renders;
    ]
end

let () =
  Alcotest.run "harness"
    [
      ("metrics", Metric_tests.tests);
      ("tables", Tables_tests.tests);
      ("stats", Stats_tests.tests);
      ("explore", Explore_jobs_tests.tests);
      ("experiments", Experiment_tests.tests);
    ]
